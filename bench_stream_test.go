// Streaming delivery benchmarks: the time-to-first-result pipeline through
// wfserved. BenchmarkServe_SweepStreamTTFR runs one cold streaming sweep
// per iteration and reports, alongside ns/op for the whole stream, the
// measured time to the first partial aggregate (ttfr_ms/op) against the
// full-stream wall time (total_ms/op) — the headline claim is that the
// first snapshot lands in a small fraction of the full-sweep latency.
// allocs/op is the frozen O(chunk) buffering evidence: the encoder reuses
// one buffer per stream, so allocations stay flat as the ensemble grows.
//
//	go test . -run XXX -bench BenchmarkServe_SweepStreamTTFR -benchmem
package wroofline

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wroofline/internal/serve"
)

// ttfrWriter discards the response body but timestamps the first body
// byte, which for the streaming endpoint is the first partial aggregate.
type ttfrWriter struct {
	h     http.Header
	code  int
	n     int
	first time.Time
}

func (w *ttfrWriter) Header() http.Header { return w.h }
func (w *ttfrWriter) Write(p []byte) (int, error) {
	if w.n == 0 && len(p) > 0 {
		w.first = time.Now()
	}
	w.n += len(p)
	return len(p), nil
}
func (w *ttfrWriter) WriteHeader(code int) { w.code = code }
func (w *ttfrWriter) Flush()               {}

func (w *ttfrWriter) reset() {
	clear(w.h)
	w.code = 0
	w.n = 0
	w.first = time.Time{}
}

// BenchmarkServe_SweepStreamTTFR measures one cold streaming sweep per
// iteration: a 65536-trial Monte Carlo ensemble delivered over NDJSON.
// The cache is flushed each iteration so every stream pays the full
// evaluation; ttfr_ms/op vs total_ms/op is the delivered speedup of
// streaming over buffered delivery for a dashboard that acts on the first
// snapshot.
func BenchmarkServe_SweepStreamTTFR(b *testing.B) {
	s := serve.New(serve.Config{})
	h := s.Handler()
	const spec = `{"kind":"montecarlo","case":"lcls-cori","trials":65536,"seed":11,"batch":256,` +
		`"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`
	w := &ttfrWriter{h: make(http.Header, 8)}
	var ttfr, total time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.FlushCache()
		rd := strings.NewReader(spec)
		req := httptest.NewRequest("POST", "/v1/sweep/stream", rd)
		w.reset()
		b.StartTimer()
		start := time.Now()
		h.ServeHTTP(w, req)
		total += time.Since(start)
		if w.code != 0 && w.code != http.StatusOK {
			b.Fatalf("stream status %d", w.code)
		}
		if w.first.IsZero() {
			b.Fatal("stream produced no body")
		}
		ttfr += w.first.Sub(start)
	}
	b.ReportMetric(float64(ttfr.Milliseconds())/float64(b.N), "ttfr_ms/op")
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "total_ms/op")
	if total > 0 {
		b.ReportMetric(100*float64(ttfr)/float64(total), "ttfr_pct")
	}
}
