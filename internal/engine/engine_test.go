package engine

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := New()
	var order []int
	for i, d := range []float64{3, 1, 2} {
		i := i
		if _, err := e.Schedule(d, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("final time = %v, want 3", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("processed = %d, want 3", e.Processed())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := New()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		if _, err := e.Schedule(5, func() { order = append(order, name) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("ties must fire in scheduling order, got %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var times []float64
	var recurse func()
	n := 0
	recurse = func() {
		times = append(times, e.Now())
		n++
		if n < 5 {
			if _, err := e.Schedule(2, recurse); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := e.Schedule(1, recurse); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5, 7, 9}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev, err := e.Schedule(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	ev.Cancel()
	if !ev.Canceled() {
		t.Error("Canceled() should be true")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	// Clock must not advance for cancelled events.
	if e.Now() != 0 {
		t.Errorf("clock advanced to %v for a cancelled event", e.Now())
	}
}

func TestScheduleErrors(t *testing.T) {
	e := New()
	if _, err := e.Schedule(-1, func() {}); err == nil {
		t.Error("negative delay should fail")
	}
	if _, err := e.Schedule(math.NaN(), func() {}); err == nil {
		t.Error("NaN delay should fail")
	}
	if _, err := e.Schedule(1, nil); err == nil {
		t.Error("nil callback should fail")
	}
	if _, err := e.At(5, func() {}); err != nil {
		t.Error("future At should work")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.At(1, func() {}); err == nil {
		t.Error("At in the past should fail")
	}
}

func TestInfiniteEventTerminatesRun(t *testing.T) {
	e := New()
	fired := false
	if _, err := e.Schedule(math.Inf(1), func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := e.Schedule(1, func() { count++ }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("+Inf event must never fire")
	}
	if count != 1 {
		t.Error("finite event should fire before +Inf terminates")
	}
	if e.Now() != 1 {
		t.Errorf("clock = %v, want 1", e.Now())
	}
}

func TestMaxEventsGuard(t *testing.T) {
	e := New()
	e.MaxEvents = 100
	var loop func()
	loop = func() {
		if _, err := e.Schedule(1, loop); err != nil {
			t.Error(err)
		}
	}
	if _, err := e.Schedule(1, loop); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Error("runaway loop should trip MaxEvents")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []float64
	for _, d := range []float64{1, 2, 3, 4, 5} {
		if _, err := e.Schedule(d, func() { fired = append(fired, e.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Errorf("clock = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	// Advancing past the last event moves the clock.
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 10 {
		t.Errorf("clock = %v, want 10", e.Now())
	}
	if len(fired) != 5 {
		t.Errorf("fired %d events total, want 5", len(fired))
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	e := New()
	ev, err := e.Schedule(1, func() { t.Error("cancelled event fired") })
	if err != nil {
		t.Fatal(err)
	}
	ev.Cancel()
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 5 {
		t.Errorf("clock = %v", e.Now())
	}
}

func TestEventTime(t *testing.T) {
	e := New()
	ev, err := e.Schedule(2.5, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Time() != 2.5 {
		t.Errorf("Time = %v", ev.Time())
	}
}

// Property: any batch of random non-negative delays fires in nondecreasing
// time order and the clock ends at the max delay.
func TestQuickEventOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		e := New()
		delays := make([]float64, count)
		var fired []float64
		for i := range delays {
			delays[i] = rng.Float64() * 100
			if _, err := e.Schedule(delays[i], func() { fired = append(fired, e.Now()) }); err != nil {
				return false
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(fired) != count {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		maxDelay := 0.0
		for _, d := range delays {
			if d > maxDelay {
				maxDelay = d
			}
		}
		return e.Now() == maxDelay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRunUntilMaxEvents(t *testing.T) {
	e := New()
	e.MaxEvents = 10
	var loop func()
	loop = func() {
		if _, err := e.Schedule(0.5, loop); err != nil {
			t.Error(err)
		}
	}
	if _, err := e.Schedule(0.5, loop); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(100); err == nil {
		t.Error("RunUntil should trip MaxEvents on a runaway loop")
	}
}

func TestZeroDelayEventsRunInOrder(t *testing.T) {
	e := New()
	var order []int
	var chain func(i int) func()
	chain = func(i int) func() {
		return func() {
			order = append(order, i)
			if i < 4 {
				if _, err := e.Schedule(0, chain(i+1)); err != nil {
					t.Error(err)
				}
			}
		}
	}
	if _, err := e.Schedule(0, chain(0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 0 {
		t.Errorf("zero-delay chain advanced the clock to %v", e.Now())
	}
}
