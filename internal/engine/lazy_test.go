package engine

import (
	"math"
	"testing"
)

// TestPendingExcludesCancelled is the regression test for Pending() counting
// lazily-deleted events: cancel half a large queue and the live count must
// drop immediately, before any event is popped.
func TestPendingExcludesCancelled(t *testing.T) {
	e := New()
	const n = 1000
	events := make([]*Event, 0, n)
	for i := 0; i < n; i++ {
		ev, err := e.Schedule(float64(i+1), func() {})
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if got := e.Pending(); got != n {
		t.Fatalf("Pending before cancel = %d, want %d", got, n)
	}
	for i := 0; i < n; i += 2 {
		events[i].Cancel()
	}
	if got := e.Pending(); got != n/2 {
		t.Fatalf("Pending after cancelling half = %d, want %d", got, n/2)
	}
	// Double-cancel must not double-count.
	for i := 0; i < n; i += 2 {
		events[i].Cancel()
	}
	if got := e.Pending(); got != n/2 {
		t.Fatalf("Pending after double-cancel = %d, want %d", got, n/2)
	}
	fired := 0
	for e.Step() {
		fired++
	}
	if fired != n/2 {
		t.Fatalf("fired %d events, want %d", fired, n/2)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

// TestCompaction drives the cancelled population past half the queue and
// checks the heap still fires the survivors in order.
func TestCompaction(t *testing.T) {
	e := New()
	const n = 4096
	events := make([]*Event, 0, n)
	for i := 0; i < n; i++ {
		ev, err := e.Schedule(float64(i+1), func() {})
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	// Cancel all but every 8th event: crosses the half-cancelled threshold
	// several times, triggering compaction mid-loop.
	for i, ev := range events {
		if i%8 != 0 {
			ev.Cancel()
		}
	}
	want := n / 8
	if got := e.Pending(); got != want {
		t.Fatalf("Pending = %d, want %d", got, want)
	}
	// After compaction the physical queue should be close to the live count,
	// not still holding thousands of corpses.
	if len(e.events) > 2*want+compactMin {
		t.Fatalf("heap not compacted: len=%d live=%d", len(e.events), want)
	}
	last := 0.0
	fired := 0
	for e.Step() {
		if e.Now() < last {
			t.Fatalf("events out of order: %v after %v", e.Now(), last)
		}
		last = e.Now()
		fired++
	}
	if fired != want {
		t.Fatalf("fired %d, want %d", fired, want)
	}
}

// TestCancelAfterPopIsNoop covers the free-list safety contract: Cancel on
// an event that already fired (index < 0, possibly recycled) must not poison
// a later event that reused the same allocation.
func TestCancelAfterPopIsNoop(t *testing.T) {
	e := New()
	ev1, err := e.Schedule(1, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Step() {
		t.Fatal("Step returned false")
	}
	ev1.Cancel() // stale cancel after fire: must be a no-op
	ev2, err := e.Schedule(1, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if ev2 != ev1 {
		t.Log("free list did not recycle the event; contract still holds")
	}
	if ev2.Canceled() {
		t.Fatal("recycled event inherited cancellation from stale Cancel")
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	if !e.Step() {
		t.Fatal("recycled event did not fire")
	}
}

// TestSteadyStateAllocFree checks the free list actually recycles: a long
// schedule/fire/cancel loop must not allocate new events once warm.
func TestSteadyStateAllocFree(t *testing.T) {
	e := New()
	allocs := testing.AllocsPerRun(1000, func() {
		ev, err := e.Schedule(1, func() {})
		if err != nil {
			t.Fatal(err)
		}
		dead, err := e.Schedule(2, func() {})
		if err != nil {
			t.Fatal(err)
		}
		dead.Cancel()
		_ = ev
		for e.Step() {
		}
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state event loop allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestReset(t *testing.T) {
	e := New()
	for i := 0; i < 100; i++ {
		if _, err := e.Schedule(float64(i+1), func() {}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if !e.Step() {
			t.Fatal("Step returned false")
		}
	}
	if _, err := e.Schedule(math.Inf(1), func() {}); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Processed() != 0 {
		t.Fatalf("Reset left state: now=%v pending=%d processed=%d", e.Now(), e.Pending(), e.Processed())
	}
	// A reset engine must behave like a fresh one, including seq restart.
	order := []float64{}
	for _, at := range []float64{3, 1, 2} {
		at := at
		if _, err := e.At(at, func() { order = append(order, at) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("post-Reset run order = %v", order)
	}
	// And the free list should make the re-run allocation-light.
	allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		for i := 0; i < 50; i++ {
			if _, err := e.Schedule(float64(i+1), func() {}); err != nil {
				t.Fatal(err)
			}
		}
		for e.Step() {
		}
	})
	if allocs > 0.5 {
		t.Fatalf("Reset+rerun allocates %.1f allocs/op, want 0", allocs)
	}
}
