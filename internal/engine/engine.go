// Package engine is a minimal discrete-event simulation kernel: a virtual
// clock and a priority queue of scheduled callbacks. Resources (shared
// bandwidth links, node pools) and the workflow simulator are built on top
// of it in internal/resources and internal/sim.
//
// The engine is single-threaded by design: discrete-event simulation needs a
// total order over events, and callback execution is the ordering point.
// Determinism is guaranteed by breaking time ties with a monotonically
// increasing sequence number.
package engine

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. It can be cancelled until it fires.
type Event struct {
	time     float64
	seq      uint64
	index    int // heap index, -1 once removed
	fn       func()
	canceled bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the simulation kernel. The zero value is not usable; create
// engines with New.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	// processed counts fired events, a cheap runaway-simulation guard.
	processed uint64
	// MaxEvents aborts Run after this many fired events (0 = no limit).
	MaxEvents uint64
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still queued (including cancelled
// ones not yet drained).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is an error.
func (e *Engine) At(t float64, fn func()) (*Event, error) {
	if math.IsNaN(t) {
		return nil, fmt.Errorf("engine: schedule at NaN")
	}
	if t < e.now {
		return nil, fmt.Errorf("engine: schedule at %v before now %v", t, e.now)
	}
	if fn == nil {
		return nil, fmt.Errorf("engine: nil callback")
	}
	ev := &Event{time: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev, nil
}

// Schedule schedules fn to run delay seconds from now. Negative delays are
// errors; +Inf delays are accepted and never fire (useful for "no next
// completion" placeholders that will be cancelled).
func (e *Engine) Schedule(delay float64, fn func()) (*Event, error) {
	if delay < 0 || math.IsNaN(delay) {
		return nil, fmt.Errorf("engine: negative or NaN delay %v", delay)
	}
	return e.At(e.now+delay, fn)
}

// Step fires the earliest pending non-cancelled event and returns true, or
// returns false when the queue is empty. Events scheduled at +Inf are never
// fired; they terminate the run as if the queue were empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		if math.IsInf(ev.time, 1) {
			// Nothing real left to simulate.
			return false
		}
		e.now = ev.time
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty (or only +Inf/cancelled events
// remain). It returns an error if MaxEvents is exceeded, which almost
// always indicates a scheduling loop in the model.
func (e *Engine) Run() error {
	for e.Step() {
		if e.MaxEvents > 0 && e.processed > e.MaxEvents {
			return fmt.Errorf("engine: exceeded %d events at t=%v; likely a scheduling loop", e.MaxEvents, e.now)
		}
	}
	return nil
}

// RunUntil fires events with time <= t, then advances the clock to t if it
// is ahead of the last event. Events after t remain queued.
func (e *Engine) RunUntil(t float64) error {
	for len(e.events) > 0 {
		// Peek.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.time > t {
			break
		}
		if !e.Step() {
			break
		}
		if e.MaxEvents > 0 && e.processed > e.MaxEvents {
			return fmt.Errorf("engine: exceeded %d events at t=%v; likely a scheduling loop", e.MaxEvents, e.now)
		}
	}
	if t > e.now && !math.IsInf(t, 1) {
		e.now = t
	}
	return nil
}
