// Package engine is a minimal discrete-event simulation kernel: a virtual
// clock and a priority queue of scheduled callbacks. Resources (shared
// bandwidth links, node pools) and the workflow simulator are built on top
// of it in internal/resources and internal/sim.
//
// The engine is single-threaded by design: discrete-event simulation needs a
// total order over events, and callback execution is the ordering point.
// Determinism is guaranteed by breaking time ties with a monotonically
// increasing sequence number.
//
// The kernel is built for steady-state zero allocation: fired and cancelled
// events return to a free list and are reused by later Schedule/At calls,
// and cancellation is lazy — a cancelled event stays in the heap until it
// is popped or until cancelled events outnumber live ones, at which point
// the heap is compacted in one pass.
package engine

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. It can be cancelled until it fires.
//
// Events are recycled: once an event has fired (or been cancelled and
// drained) the engine may hand the same *Event back out from a later
// Schedule/At call. Holders must therefore drop their reference when the
// callback runs and must not call Cancel on an event that has already
// fired. Cancel on an already-popped event is a no-op, so the common
// "cancel the pending completion, if any" pattern stays safe as long as the
// callback clears the holder's pointer first.
type Event struct {
	time     float64
	seq      uint64
	index    int // heap index, -1 once removed
	fn       func()
	canceled bool
	owner    *Engine
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Cancel prevents the event from firing. Cancelling an already-fired,
// already-drained, or already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e.canceled || e.index < 0 {
		return
	}
	e.canceled = true
	if e.owner != nil {
		e.owner.canceledLive++
		e.owner.maybeCompact()
	}
}

// Canceled reports whether Cancel was called while the event was queued.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// compactMin is the queue size below which lazy deletion is left alone:
// compacting tiny heaps buys nothing and the drain loops handle the corpses.
const compactMin = 64

// maxFree bounds the event free list; beyond it, drained events are left to
// the garbage collector. The bound only matters after a burst far above the
// steady-state pending count.
const maxFree = 8192

// Engine is the simulation kernel. The zero value is not usable; create
// engines with New.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	// canceledLive counts cancelled events still sitting in the heap.
	canceledLive int
	// free is the recycled-event stack (see Event).
	free []*Event
	// processed counts fired events, a cheap runaway-simulation guard.
	processed uint64
	// MaxEvents aborts Run after this many fired events (0 = no limit).
	MaxEvents uint64
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Reset returns the engine to time zero with an empty queue, dropping any
// still-queued events. The event free list and heap capacity are retained,
// so a pooled engine's steady state allocates nothing across runs.
func (e *Engine) Reset() {
	for _, ev := range e.events {
		ev.index = -1
		e.release(ev)
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.canceledLive = 0
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of live (non-cancelled) events still queued.
func (e *Engine) Pending() int { return len(e.events) - e.canceledLive }

// alloc takes an event from the free list (or the heap's allocator) and
// initializes it.
func (e *Engine) alloc(t float64, fn func()) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.time = t
		ev.fn = fn
		ev.canceled = false
	} else {
		ev = &Event{time: t, fn: fn}
	}
	ev.seq = e.seq
	ev.owner = e
	e.seq++
	return ev
}

// release puts a popped event on the free list. The callback reference is
// dropped immediately so cancelled closures do not outlive their event.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	if len(e.free) < maxFree {
		e.free = append(e.free, ev)
	}
}

// maybeCompact rebuilds the heap without the cancelled events once they
// outnumber the live ones, keeping Step/RunUntil drains O(live).
func (e *Engine) maybeCompact() {
	if len(e.events) < compactMin || e.canceledLive <= len(e.events)/2 {
		return
	}
	live := e.events[:0]
	for _, ev := range e.events {
		if ev.canceled {
			ev.index = -1
			e.release(ev)
		} else {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	e.canceledLive = 0
	for i, ev := range e.events {
		ev.index = i
	}
	heap.Init(&e.events)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is an error.
func (e *Engine) At(t float64, fn func()) (*Event, error) {
	if math.IsNaN(t) {
		return nil, fmt.Errorf("engine: schedule at NaN")
	}
	if t < e.now {
		return nil, fmt.Errorf("engine: schedule at %v before now %v", t, e.now)
	}
	if fn == nil {
		return nil, fmt.Errorf("engine: nil callback")
	}
	ev := e.alloc(t, fn)
	heap.Push(&e.events, ev)
	return ev, nil
}

// Schedule schedules fn to run delay seconds from now. Negative delays are
// errors; +Inf delays are accepted and never fire (useful for "no next
// completion" placeholders that will be cancelled).
func (e *Engine) Schedule(delay float64, fn func()) (*Event, error) {
	if delay < 0 || math.IsNaN(delay) {
		return nil, fmt.Errorf("engine: negative or NaN delay %v", delay)
	}
	return e.At(e.now+delay, fn)
}

// Step fires the earliest pending non-cancelled event and returns true, or
// returns false when the queue is empty. Events scheduled at +Inf are never
// fired; they terminate the run as if the queue were empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			e.canceledLive--
			e.release(ev)
			continue
		}
		if math.IsInf(ev.time, 1) {
			// Nothing real left to simulate. The placeholder is consumed
			// but not recycled: its holder may still Cancel it later.
			return false
		}
		e.now = ev.time
		e.processed++
		ev.fn()
		e.release(ev)
		return true
	}
	return false
}

// Run fires events until the queue is empty (or only +Inf/cancelled events
// remain). It returns an error if MaxEvents is exceeded, which almost
// always indicates a scheduling loop in the model.
func (e *Engine) Run() error {
	for e.Step() {
		if e.MaxEvents > 0 && e.processed > e.MaxEvents {
			return fmt.Errorf("engine: exceeded %d events at t=%v; likely a scheduling loop", e.MaxEvents, e.now)
		}
	}
	return nil
}

// RunUntil fires events with time <= t, then advances the clock to t if it
// is ahead of the last event. Events after t remain queued.
func (e *Engine) RunUntil(t float64) error {
	for len(e.events) > 0 {
		// Peek.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			e.canceledLive--
			e.release(next)
			continue
		}
		if next.time > t {
			break
		}
		if !e.Step() {
			break
		}
		if e.MaxEvents > 0 && e.processed > e.MaxEvents {
			return fmt.Errorf("engine: exceeded %d events at t=%v; likely a scheduling loop", e.MaxEvents, e.now)
		}
	}
	if t > e.now && !math.IsInf(t, 1) {
		e.now = t
	}
	return nil
}
