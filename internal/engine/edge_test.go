package engine

import (
	"math"
	"testing"
)

// TestScheduleAtEdgeCases pins the engine's contract around +Inf "no next
// completion" placeholders and cancelled events, table-driven over the
// drain paths (Run and RunUntil). These are the shapes the resource pools
// lean on: park a placeholder at +Inf, cancel it when a real completion
// shows up, and let the drain loops skip the corpses.
func TestScheduleAtEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		// setup schedules events and returns the drain to use.
		setup       func(t *testing.T, e *Engine, fired *[]float64) func() error
		wantFired   []float64
		wantNow     float64
		wantPending int
	}{
		{
			name: "cancelled +Inf placeholder is drained silently",
			setup: func(t *testing.T, e *Engine, fired *[]float64) func() error {
				inf, err := e.Schedule(math.Inf(1), func() { t.Error("placeholder fired") })
				if err != nil {
					t.Fatal(err)
				}
				mustSchedule(t, e, 2, fired)
				inf.Cancel()
				return e.Run
			},
			wantFired:   []float64{2},
			wantNow:     2,
			wantPending: 0,
		},
		{
			name: "live +Inf placeholder terminates Run and is consumed",
			setup: func(t *testing.T, e *Engine, fired *[]float64) func() error {
				if _, err := e.Schedule(math.Inf(1), func() { t.Error("placeholder fired") }); err != nil {
					t.Fatal(err)
				}
				mustSchedule(t, e, 1, fired)
				return e.Run
			},
			wantFired: []float64{1},
			wantNow:   1,
			// Step pops the +Inf event to inspect it and does not requeue:
			// the placeholder is consumed by the run that it terminates.
			wantPending: 0,
		},
		{
			name: "second +Inf placeholder survives the first's termination",
			setup: func(t *testing.T, e *Engine, fired *[]float64) func() error {
				for i := 0; i < 2; i++ {
					if _, err := e.Schedule(math.Inf(1), func() { t.Error("placeholder fired") }); err != nil {
						t.Fatal(err)
					}
				}
				return e.Run
			},
			wantFired:   nil,
			wantNow:     0,
			wantPending: 1,
		},
		{
			name: "RunUntil drains cancelled heads without firing them",
			setup: func(t *testing.T, e *Engine, fired *[]float64) func() error {
				for _, d := range []float64{1, 2} {
					ev, err := e.Schedule(d, func() { t.Error("cancelled event fired") })
					if err != nil {
						t.Fatal(err)
					}
					ev.Cancel()
				}
				mustSchedule(t, e, 3, fired)
				return func() error { return e.RunUntil(2.5) }
			},
			wantFired:   nil,
			wantNow:     2.5,
			wantPending: 1, // the live event at t=3 stays queued
		},
		{
			name: "RunUntil drains cancelled heads even past the horizon",
			setup: func(t *testing.T, e *Engine, fired *[]float64) func() error {
				ev, err := e.Schedule(100, func() { t.Error("cancelled event fired") })
				if err != nil {
					t.Fatal(err)
				}
				ev.Cancel()
				return func() error { return e.RunUntil(5) }
			},
			wantFired:   nil,
			wantNow:     5,
			wantPending: 0,
		},
		{
			name: "RunUntil(+Inf) stops at a live placeholder without an infinite clock",
			setup: func(t *testing.T, e *Engine, fired *[]float64) func() error {
				if _, err := e.Schedule(math.Inf(1), func() { t.Error("placeholder fired") }); err != nil {
					t.Fatal(err)
				}
				mustSchedule(t, e, 4, fired)
				return func() error { return e.RunUntil(math.Inf(1)) }
			},
			wantFired:   []float64{4},
			wantNow:     4,
			wantPending: 0,
		},
		{
			name: "cancel inside a callback kills a later event",
			setup: func(t *testing.T, e *Engine, fired *[]float64) func() error {
				victim, err := e.Schedule(2, func() { t.Error("victim fired") })
				if err != nil {
					t.Fatal(err)
				}
				if _, err := e.Schedule(1, func() {
					*fired = append(*fired, e.Now())
					victim.Cancel()
				}); err != nil {
					t.Fatal(err)
				}
				mustSchedule(t, e, 3, fired)
				return e.Run
			},
			wantFired:   []float64{1, 3},
			wantNow:     3,
			wantPending: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New()
			var fired []float64
			drain := tc.setup(t, e, &fired)
			if err := drain(); err != nil {
				t.Fatal(err)
			}
			if len(fired) != len(tc.wantFired) {
				t.Fatalf("fired = %v, want %v", fired, tc.wantFired)
			}
			for i := range fired {
				if fired[i] != tc.wantFired[i] {
					t.Fatalf("fired = %v, want %v", fired, tc.wantFired)
				}
			}
			if e.Now() != tc.wantNow {
				t.Errorf("clock = %v, want %v", e.Now(), tc.wantNow)
			}
			if e.Pending() != tc.wantPending {
				t.Errorf("pending = %d, want %d", e.Pending(), tc.wantPending)
			}
		})
	}
}

// mustSchedule queues a callback at delay d that records its firing time.
func mustSchedule(t *testing.T, e *Engine, d float64, fired *[]float64) {
	t.Helper()
	if _, err := e.Schedule(d, func() { *fired = append(*fired, e.Now()) }); err != nil {
		t.Fatal(err)
	}
}
