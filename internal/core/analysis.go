package core

import (
	"fmt"
	"math"
)

// Analysis is the structured, JSON-serializable result of evaluating a
// model: the Eq. (1) bound sampled along the parallelism axis, plus the
// classification and optimization advice for every empirical point. It is
// the machine-readable counterpart of Model.Report, and the reusable
// evaluation entry point behind the wfserved /v1/model endpoint — the JSON
// field set is part of the service's response contract.
type Analysis struct {
	// Title and Wall echo the model identity.
	Title string `json:"title"`
	Wall  int    `json:"wall"`
	// BoundAtWallTPS is the best attainable throughput, with the ceiling
	// that binds there.
	BoundAtWallTPS float64 `json:"bound_at_wall_tps"`
	WallLimitedBy  string  `json:"wall_limited_by"`
	// Model is the full ceiling set in its canonical JSON form.
	Model *Model `json:"model"`
	// Curve samples the bound envelope at log-spaced parallelism values in
	// [1, wall] — enough for a client to plot the roofline without
	// re-deriving the model.
	Curve []CurveSample `json:"curve,omitempty"`
	// Points analyzes each empirical observation.
	Points []PointAnalysis `json:"points,omitempty"`
}

// CurveSample is one point of the attainable-TPS envelope.
type CurveSample struct {
	P        float64 `json:"p"`
	BoundTPS float64 `json:"bound_tps"`
	Limiting string  `json:"limiting"`
}

// PointAnalysis is the classification and advice for one empirical point.
type PointAnalysis struct {
	Label           string  `json:"label"`
	P               float64 `json:"p"`
	TPS             float64 `json:"tps"`
	MakespanSeconds float64 `json:"makespan_s,omitempty"`
	BoundTPS        float64 `json:"bound_tps"`
	LimitedBy       string  `json:"limited_by"`
	// Efficiency is achieved/attainable at this p; Headroom its inverse
	// (0 when not finite).
	Efficiency float64 `json:"efficiency"`
	Headroom   float64 `json:"headroom,omitempty"`
	// Zone is the Fig 2a target classification (omitted without targets);
	// BoundClass is the Fig 3 node/system/parallelism split.
	Zone       string           `json:"zone,omitempty"`
	BoundClass string           `json:"bound_class"`
	Advice     []Recommendation `json:"advice,omitempty"`
}

// finite maps non-finite values to 0 so the analysis always marshals to
// valid JSON (encoding/json rejects IEEE infinities).
func finite(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}

// Analyze evaluates the model into its structured form. curveSamples
// controls the envelope resolution (<= 0 selects 64); the wall itself is
// always the last sample, so BoundAtWallTPS appears on the curve.
func (m *Model) Analyze(points []Point, curveSamples int) (*Analysis, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if curveSamples <= 0 {
		curveSamples = 64
	}
	atWall, wallLimit := m.BoundAtWall()
	a := &Analysis{
		Title:          m.Title,
		Wall:           m.Wall,
		BoundAtWallTPS: finite(atWall),
		WallLimitedBy:  wallLimit.Name,
		Model:          m,
	}

	// Log-spaced samples over [1, wall]; a wall of 1 degenerates to a single
	// sample.
	logWall := math.Log(float64(m.Wall))
	for i := 0; i < curveSamples; i++ {
		var p float64
		if curveSamples == 1 || m.Wall == 1 {
			p = float64(m.Wall)
		} else {
			p = math.Exp(logWall * float64(i) / float64(curveSamples-1))
		}
		bound, limit := m.Bound(p)
		a.Curve = append(a.Curve, CurveSample{P: p, BoundTPS: finite(bound), Limiting: limit.Name})
		if m.Wall == 1 {
			break
		}
	}

	for _, pt := range points {
		if pt.ParallelTasks <= 0 {
			return nil, fmt.Errorf("core: point %q has non-positive parallelism %v", pt.Label, pt.ParallelTasks)
		}
		bound, limit := m.Bound(pt.ParallelTasks)
		pa := PointAnalysis{
			Label:           pt.Label,
			P:               pt.ParallelTasks,
			TPS:             pt.TPS,
			MakespanSeconds: pt.MakespanSeconds,
			BoundTPS:        finite(bound),
			LimitedBy:       limit.Name,
			Efficiency:      finite(m.Efficiency(pt)),
			Headroom:        finite(m.Headroom(pt)),
			BoundClass:      m.ClassifyBound(pt).String(),
		}
		if z := m.ClassifyZone(pt); z != ZoneNoTargets {
			pa.Zone = z.String()
		}
		for _, rec := range m.Advise(pt) {
			rec.ProjectedSpeedup = finite(rec.ProjectedSpeedup)
			pa.Advice = append(pa.Advice, rec)
		}
		a.Points = append(a.Points, pa)
	}
	return a, nil
}
