package core

import (
	"math"
	"testing"
	"testing/quick"
)

// quickModel decodes a small random roofline from raw fuzz-style integers:
// a wall that is a multiple of 16 (so power-of-two intra-task factors divide
// it) and 2-5 ceilings with mixed scopes and per-task times in (0, 100].
func quickModel(wallRaw uint8, ceilRaw []uint16) *Model {
	m := &Model{Title: "quick", Wall: int(wallRaw%64+1) * 16}
	n := len(ceilRaw)%4 + 2
	for i := 0; i < n; i++ {
		var raw uint16
		if i < len(ceilRaw) {
			raw = ceilRaw[i]
		} else {
			raw = uint16(i*37 + 1)
		}
		scope := ScopeNode
		if raw%2 == 1 {
			scope = ScopeSystem
		}
		m.AddCeiling(Ceiling{
			Name:        "c",
			Resource:    Resource(int(raw/2) % int(ResOverhead+1)),
			Scope:       scope,
			TimePerTask: float64(raw%1000+1) / 10,
		})
	}
	return m
}

// Eq.(1) property: the attainable bound min_c(Peak-limited terms) is
// monotone non-decreasing in every Peak_c. Raising one resource's peak
// divides that ceiling's time-per-task, which can only raise (or leave
// unchanged) the min over ceilings, at every parallelism level.
func TestQuickBoundMonotoneInEveryPeak(t *testing.T) {
	f := func(wallRaw uint8, ceilRaw []uint16, whichRaw uint8, factorRaw uint16, pRaw uint16) bool {
		m := quickModel(wallRaw, ceilRaw)
		which := int(whichRaw) % len(m.Ceilings)
		factor := 1 + float64(factorRaw%1000)/100 // peak scale in [1, 11)
		p := float64(pRaw%2048) + 0.5

		faster := &Model{Title: m.Title, Wall: m.Wall}
		for i, c := range m.Ceilings {
			if i == which {
				c.TimePerTask /= factor // Peak_c up by factor
			}
			faster.AddCeiling(c)
		}
		b0, _ := m.Bound(p)
		b1, _ := faster.Bound(p)
		return b1 >= b0*(1-1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The bound is also monotone non-decreasing in p itself (more parallel
// tasks never lower the attainable TPS; past the wall it plateaus).
func TestQuickBoundMonotoneInP(t *testing.T) {
	f := func(wallRaw uint8, ceilRaw []uint16, pRaw, dpRaw uint16) bool {
		m := quickModel(wallRaw, ceilRaw)
		p := float64(pRaw%2048) + 0.5
		dp := float64(dpRaw%512) / 4
		b0, _ := m.Bound(p)
		b1, _ := m.Bound(p + dp)
		return b1 >= b0*(1-1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ScaleIntraTask(k) followed by ScaleIntraTask(1/k) at perfect efficiency
// is the identity (within float tolerance) whenever k divides the wall:
// the wall and every ceiling's time-per-task round-trip exactly.
func TestQuickIntraTaskRoundTrip(t *testing.T) {
	f := func(wallRaw uint8, ceilRaw []uint16, kRaw uint8) bool {
		m := quickModel(wallRaw, ceilRaw)
		k := float64(int(1) << (kRaw%5 + 1)) // 2, 4, ..., 32; wall%16 == 0 but
		if m.Wall%int(k) != 0 {              // wall may be < k's multiple — skip
			return true
		}
		down, err := m.ScaleIntraTask(k, 1)
		if err != nil {
			return false
		}
		back, err := down.ScaleIntraTask(1/k, 1)
		if err != nil {
			return false
		}
		if back.Wall != m.Wall {
			t.Logf("wall %d -> %d -> %d (k=%v)", m.Wall, down.Wall, back.Wall, k)
			return false
		}
		for i, c := range m.Ceilings {
			rc := back.Ceilings[i]
			if rc.Scope != c.Scope || rc.Resource != c.Resource {
				return false
			}
			if !almost(rc.TimePerTask, c.TimePerTask, 1e-12) {
				t.Logf("ceiling %d time %v -> %v (k=%v)", i, c.TimePerTask, rc.TimePerTask, k)
				return false
			}
		}
		// The bound at the wall round-trips with the model.
		b0, _ := m.BoundAtWall()
		b1, _ := back.BoundAtWall()
		return almost(b0, b1, 1e-12) || (math.IsInf(b0, 1) && math.IsInf(b1, 1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
