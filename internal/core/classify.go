package core

import (
	"fmt"
	"math"
	"strings"
)

// Zone is the four-way target classification of Fig 2a.
type Zone int

// Zones: makespan goal x throughput goal.
const (
	// ZoneGoodGood: meets both targets (green).
	ZoneGoodGood Zone = iota
	// ZoneGoodMakespanPoorThroughput: deadline met, throughput short (yellow).
	ZoneGoodMakespanPoorThroughput
	// ZonePoorMakespanGoodThroughput: throughput met, deadline missed (orange).
	ZonePoorMakespanGoodThroughput
	// ZonePoorPoor: misses both targets (red).
	ZonePoorPoor
	// ZoneNoTargets: the workflow declares no targets; use BoundClass instead.
	ZoneNoTargets
)

// String names the zone with the paper's colour words.
func (z Zone) String() string {
	switch z {
	case ZoneGoodGood:
		return "good makespan, good throughput (green)"
	case ZoneGoodMakespanPoorThroughput:
		return "good makespan, poor throughput (yellow)"
	case ZonePoorMakespanGoodThroughput:
		return "poor makespan, good throughput (orange)"
	case ZonePoorPoor:
		return "poor makespan, poor throughput (red)"
	case ZoneNoTargets:
		return "no targets declared"
	default:
		return fmt.Sprintf("Zone(%d)", int(z))
	}
}

// ClassifyZone places an empirical point into the Fig 2a zones. Makespan is
// judged against the deadline directly; throughput against the target TPS.
func (m *Model) ClassifyZone(pt Point) Zone {
	t := m.Targets
	if t == nil || (t.MakespanSeconds <= 0 && t.ThroughputTPS <= 0) {
		return ZoneNoTargets
	}
	goodMakespan := t.MakespanSeconds <= 0 || pt.MakespanSeconds <= t.MakespanSeconds
	goodThroughput := t.ThroughputTPS <= 0 || pt.TPS >= t.ThroughputTPS
	switch {
	case goodMakespan && goodThroughput:
		return ZoneGoodGood
	case goodMakespan:
		return ZoneGoodMakespanPoorThroughput
	case goodThroughput:
		return ZonePoorMakespanGoodThroughput
	default:
		return ZonePoorPoor
	}
}

// BoundClass is the Fig 3 split for workflows without explicit targets.
type BoundClass int

// Bound classes.
const (
	// NodeBound: the limiting ceiling at the point's x is node-scoped (blue
	// zone in Fig 3a).
	NodeBound BoundClass = iota
	// SystemBound: the limiting ceiling is system-scoped (orange zone in
	// Fig 3b).
	SystemBound
	// ParallelismBound: the point sits at the wall and the nearest bound is
	// the wall itself.
	ParallelismBound
)

// String names the bound class.
func (b BoundClass) String() string {
	switch b {
	case NodeBound:
		return "node bound"
	case SystemBound:
		return "system bound"
	case ParallelismBound:
		return "parallelism bound"
	default:
		return fmt.Sprintf("BoundClass(%d)", int(b))
	}
}

// NodeResource reports whether the resource is node-local (compute, memory,
// PCIe, serialized overhead) as opposed to a shared system path (network,
// file system, external, fabric bisection). The distinction drives Fig 3's node-bound vs
// system-bound split; it is about what the resource *is*, not how its
// ceiling is drawn — a per-stream-capped external path plots as a diagonal
// but is still a system resource.
func NodeResource(r Resource) bool {
	switch r {
	case ResCompute, ResMemory, ResPCIe, ResOverhead:
		return true
	default:
		return false
	}
}

// ClassifyBound determines which class of ceiling limits the point. A point
// at (or beyond) the wall whose throughput is within wallSlack of the bound
// at the wall, with a node ceiling binding there, is parallelism bound;
// otherwise the kind of the limiting resource decides.
func (m *Model) ClassifyBound(pt Point) BoundClass {
	const wallSlack = 0.5 // within 2x of the wall-limited bound counts
	_, limit := m.Bound(pt.ParallelTasks)
	if pt.ParallelTasks >= float64(m.Wall) && limit.Scope == ScopeNode && NodeResource(limit.Resource) {
		bound, _ := m.BoundAtWall()
		if !math.IsInf(bound, 1) && pt.TPS >= bound*wallSlack {
			return ParallelismBound
		}
	}
	if NodeResource(limit.Resource) {
		return NodeBound
	}
	return SystemBound
}

// Recommendation is one optimization direction the model motivates. The
// JSON tags are part of the wfserved /v1/model response contract.
type Recommendation struct {
	// Title is the short direction, e.g. "increase task parallelism".
	Title string `json:"title"`
	// Detail explains the expected movement on the roofline.
	Detail string `json:"detail"`
	// Feasible is false when a wall or ceiling blocks the direction (the
	// "infeasible optimization" of Fig 2c).
	Feasible bool `json:"feasible"`
	// ProjectedSpeedup is the multiplicative gain if the direction is taken
	// to its limit (0 when not quantifiable).
	ProjectedSpeedup float64 `json:"projected_speedup,omitempty"`
}

// String renders the recommendation on one line.
func (r Recommendation) String() string {
	feas := "feasible"
	if !r.Feasible {
		feas = "INFEASIBLE"
	}
	s := fmt.Sprintf("[%s] %s — %s", feas, r.Title, r.Detail)
	if r.ProjectedSpeedup > 1 {
		s += fmt.Sprintf(" (up to %.3gx)", r.ProjectedSpeedup)
	}
	return s
}

// Advise produces the optimization directions of Section III-C for an
// empirical point: latency improvement toward the limiting ceiling,
// parallelism increase toward the wall, and—when the workflow is system
// bound—the warning that faster compute will not help.
func (m *Model) Advise(pt Point) []Recommendation {
	var recs []Recommendation
	bound, limit := m.Bound(pt.ParallelTasks)
	headroom := m.Headroom(pt)
	class := m.ClassifyBound(pt)

	// Direction 1 (Fig 2b (1)): reduce makespan at iso-parallelism.
	if headroom > 1.05 && !math.IsInf(headroom, 1) {
		recs = append(recs, Recommendation{
			Title: "improve latency at current parallelism",
			Detail: fmt.Sprintf("achieved %.3g TPS vs attainable %.3g TPS; the binding ceiling is %s",
				pt.TPS, bound, limit.Name),
			Feasible:         true,
			ProjectedSpeedup: headroom,
		})
	}

	// Direction 2 (Fig 2b (2)): increase the number of parallel tasks.
	if pt.ParallelTasks < float64(m.Wall) {
		gain := float64(m.Wall) / pt.ParallelTasks
		// Diagonal ceilings scale with p; horizontal ones cap the gain.
		atWall, wallLimit := m.BoundAtWall()
		if atWall > bound {
			if !math.IsInf(atWall, 1) && bound > 0 {
				gain = math.Min(gain, atWall/bound)
			}
			recs = append(recs, Recommendation{
				Title: "increase task parallelism",
				Detail: fmt.Sprintf("wall allows %d parallel tasks (currently %.4g); at the wall the bound becomes %s",
					m.Wall, pt.ParallelTasks, wallLimit.Name),
				Feasible:         true,
				ProjectedSpeedup: gain,
			})
		} else {
			recs = append(recs, Recommendation{
				Title:    "increase task parallelism",
				Detail:   fmt.Sprintf("a system ceiling (%s) already binds; more parallel tasks cannot raise throughput", limit.Name),
				Feasible: false,
			})
		}
	} else {
		recs = append(recs, Recommendation{
			Title:    "increase task parallelism",
			Detail:   fmt.Sprintf("already at the system parallelism wall (%d tasks); a bigger machine or queue is required", m.Wall),
			Feasible: false,
		})
	}

	// The system architects' insight (Section V): when system bound, faster
	// nodes do not help.
	if class == SystemBound {
		recs = append(recs, Recommendation{
			Title: "do not buy faster compute",
			Detail: fmt.Sprintf("the workflow is system bound by %s; raising node compute peak leaves the bound unchanged — invest in network/storage QOS instead",
				limit.Name),
			Feasible: true,
		})
	}

	// Overhead ceilings call for control-flow restructuring (GPTune insight).
	if limit.Resource == ResOverhead {
		recs = append(recs, Recommendation{
			Title:            "reduce control-flow overhead",
			Detail:           "serialized per-task overhead binds (e.g. interpreter/launcher startup); keep state in memory, use spawned processes or containers",
			Feasible:         true,
			ProjectedSpeedup: headroom,
		})
	}
	return recs
}

// Infeasible reports whether the direction "increase parallel tasks" is
// blocked for a point (at or beyond the wall).
func (m *Model) Infeasible(pt Point) bool {
	return pt.ParallelTasks >= float64(m.Wall)
}

// Report renders a full analysis of points against the model as text.
func (m *Model) Report(points []Point) string {
	var b strings.Builder
	b.WriteString(m.String())
	for _, pt := range points {
		bound, limit := m.Bound(pt.ParallelTasks)
		fmt.Fprintf(&b, "point %q: p=%.4g TPS=%.4g (makespan %.4gs)\n",
			pt.Label, pt.ParallelTasks, pt.TPS, pt.MakespanSeconds)
		fmt.Fprintf(&b, "  attainable: %.4g TPS, limited by %s\n", bound, limit.Name)
		fmt.Fprintf(&b, "  efficiency: %.1f%%  bound class: %s\n", 100*m.Efficiency(pt), m.ClassifyBound(pt))
		if z := m.ClassifyZone(pt); z != ZoneNoTargets {
			fmt.Fprintf(&b, "  zone: %s\n", z)
		}
		for _, r := range m.Advise(pt) {
			fmt.Fprintf(&b, "  advice: %s\n", r)
		}
	}
	return b.String()
}
