// Package core implements the Workflow Roofline model from "A Workflow
// Roofline Model for End-to-End Workflow Performance Analysis" (SC24).
//
// The model bounds a workflow's throughput, in tasks per second (TPS), as a
// function of its number of parallel tasks p:
//
//	TPS(p) <= min over ceilings c of  p / T_c        (node-scoped, diagonal)
//	TPS(p) <= min over ceilings c of  Peak_c / W_c   (system-scoped, horizontal)
//	p      <= parallelism wall = floor(nodes_avail / nodes_per_task)
//
// where T_c = per-task work / per-node peak for node ceilings and W_c is the
// per-task volume through a shared system resource with aggregate peak
// Peak_c (Eq. (1) of the paper). Node ceilings are diagonal lines of slope 1
// in log-log space; system ceilings are horizontal because the shared
// resource does not grow with p.
//
// Beyond the bound itself, the package provides the paper's interpretation
// machinery: empirical points (Section III-B), the four-zone target
// classification of Fig 2a, the node-bound/system-bound split of Fig 3, the
// intra-task-parallelism rescaling of Fig 2c, and an optimization advisor
// that produces the directions discussed in Section III-C.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"wroofline/internal/machine"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// Scope distinguishes how a ceiling scales with the number of parallel
// tasks.
type Scope int

const (
	// ScopeNode marks per-node resources (compute, memory, PCIe): adding a
	// parallel task adds nodes, so attainable TPS grows linearly with p and
	// the ceiling is a diagonal in log-log space.
	ScopeNode Scope = iota
	// ScopeSystem marks shared system resources (file system, network
	// fabric, external/DTN links): the aggregate peak is fixed, so the
	// ceiling is horizontal.
	ScopeSystem
)

// String names the scope.
func (s Scope) String() string {
	switch s {
	case ScopeNode:
		return "node"
	case ScopeSystem:
		return "system"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// Resource identifies which physical resource a ceiling models.
type Resource int

// Resources in the order the paper discusses them.
const (
	ResCompute    Resource = iota // node FLOPS
	ResMemory                     // node DRAM/HBM bandwidth
	ResPCIe                       // node host<->device bandwidth
	ResNetwork                    // interconnect / MPI bytes
	ResFileSystem                 // shared parallel file system
	ResExternal                   // external staging (DTN / WAN)
	ResOverhead                   // serialized control-flow overhead (e.g. Python, bash)
	ResBisection                  // fabric bisection bandwidth (Ridgeline's second network dimension)
)

// String names the resource.
func (r Resource) String() string {
	switch r {
	case ResCompute:
		return "compute"
	case ResMemory:
		return "memory"
	case ResPCIe:
		return "pcie"
	case ResNetwork:
		return "network"
	case ResFileSystem:
		return "filesystem"
	case ResExternal:
		return "external"
	case ResOverhead:
		return "overhead"
	case ResBisection:
		return "bisection"
	default:
		return fmt.Sprintf("Resource(%d)", int(r))
	}
}

// Ceiling is one attainable-performance bound. TimePerTask is the seconds a
// single task spends on this resource at peak; for node-scoped ceilings the
// attainable TPS at p parallel tasks is p/TimePerTask, for system-scoped
// ceilings it is 1/TimePerTask independent of p.
type Ceiling struct {
	// Name is the display label, e.g. "File System: loading 70 GB @ 5.6 TB/s".
	Name string
	// Resource identifies the underlying resource.
	Resource Resource
	// Scope determines diagonal (node) vs horizontal (system) behaviour.
	Scope Scope
	// TimePerTask is the per-task time at peak on this resource, seconds.
	TimePerTask float64
	// Scenario marks an alternative what-if ceiling (e.g. the "5x
	// contention" line the paper overlays in Fig 5a and Fig 6). Scenario
	// ceilings are plotted but excluded from Bound and classification.
	Scenario bool
}

// TPSAt returns the attainable tasks-per-second this ceiling allows at p
// parallel tasks. A zero TimePerTask means the resource is unused and the
// ceiling is +Inf.
func (c Ceiling) TPSAt(p float64) float64 {
	if c.TimePerTask <= 0 {
		return math.Inf(1)
	}
	if c.Scope == ScopeNode {
		return p / c.TimePerTask
	}
	return 1 / c.TimePerTask
}

// String renders "name (scope, T=...s)".
func (c Ceiling) String() string {
	return fmt.Sprintf("%s (%s, T=%.4gs)", c.Name, c.Scope, c.TimePerTask)
}

// Model is a Workflow Roofline: a set of ceilings plus the system
// parallelism wall and optional targets.
type Model struct {
	// Title labels the model, e.g. "LCLS on Cori-HSW".
	Title string
	// Ceilings is the bound set; order is presentation order.
	Ceilings []Ceiling
	// Wall is the system parallelism wall in tasks (vertical bound).
	Wall int
	// Targets optionally holds the makespan/throughput goals converted into
	// model terms (see SetTargets).
	Targets *TargetLines
}

// TargetLines are the dotted goal lines of Fig 2a: a throughput floor
// (horizontal) and a makespan deadline, which for a workflow with a fixed
// total task count is also a horizontal TPS line at totalTasks/deadline.
type TargetLines struct {
	// ThroughputTPS is the target tasks-per-second; 0 when unset.
	ThroughputTPS float64
	// MakespanSeconds is the deadline; 0 when unset.
	MakespanSeconds float64
	// TotalTasks converts the deadline into a TPS line.
	TotalTasks int
}

// MakespanTPS returns the TPS equivalent of finishing TotalTasks within the
// deadline, or 0 when no deadline is set.
func (t *TargetLines) MakespanTPS() float64 {
	if t == nil || t.MakespanSeconds <= 0 || t.TotalTasks <= 0 {
		return 0
	}
	return float64(t.TotalTasks) / t.MakespanSeconds
}

// AddCeiling appends a bound, skipping unused (zero-time) resources.
func (m *Model) AddCeiling(c Ceiling) {
	if c.TimePerTask <= 0 {
		return
	}
	m.Ceilings = append(m.Ceilings, c)
}

// Validate checks the model has at least one ceiling and a positive wall.
func (m *Model) Validate() error {
	if len(m.Ceilings) == 0 {
		return fmt.Errorf("core: model %q has no ceilings", m.Title)
	}
	if m.Wall < 1 {
		return fmt.Errorf("core: model %q has wall %d, need >= 1", m.Title, m.Wall)
	}
	for _, c := range m.Ceilings {
		if c.TimePerTask <= 0 || math.IsNaN(c.TimePerTask) || math.IsInf(c.TimePerTask, 0) {
			return fmt.Errorf("core: model %q ceiling %q has invalid time %v", m.Title, c.Name, c.TimePerTask)
		}
	}
	return nil
}

// Bound evaluates Eq. (1): the attainable TPS at p parallel tasks and the
// ceiling that limits it. p is clipped at the wall first (the region beyond
// the wall is unattainable), and the trivial bound TPS <= p/0s never
// applies — with no ceilings the bound is +Inf.
func (m *Model) Bound(p float64) (tps float64, limit Ceiling) {
	if p <= 0 {
		return 0, Ceiling{}
	}
	if wall := float64(m.Wall); m.Wall > 0 && p > wall {
		p = wall
	}
	tps = math.Inf(1)
	for _, c := range m.Ceilings {
		if c.Scenario {
			continue
		}
		if v := c.TPSAt(p); v < tps {
			tps, limit = v, c
		}
	}
	return tps, limit
}

// BoundAtWall returns the attainable TPS at the parallelism wall — the best
// throughput the system allows for this workflow.
func (m *Model) BoundAtWall() (float64, Ceiling) {
	return m.Bound(float64(m.Wall))
}

// LimitingResource returns the resource that bounds performance at p
// parallel tasks.
func (m *Model) LimitingResource(p float64) Resource {
	_, c := m.Bound(p)
	return c.Resource
}

// Crossover returns the number of parallel tasks at which a node-scoped
// ceiling meets a system-scoped ceiling: p* = T_node / T_system. Below p*
// the node ceiling binds; above it the system ceiling binds. It returns an
// error when the ceilings' scopes are not (node, system).
func Crossover(node, system Ceiling) (float64, error) {
	if node.Scope != ScopeNode || system.Scope != ScopeSystem {
		return 0, fmt.Errorf("core: crossover needs a node and a system ceiling, got %s and %s",
			node.Scope, system.Scope)
	}
	if node.TimePerTask <= 0 || system.TimePerTask <= 0 {
		return 0, fmt.Errorf("core: crossover needs positive ceiling times")
	}
	return node.TimePerTask / system.TimePerTask, nil
}

// SetTargets installs target lines from workflow targets.
func (m *Model) SetTargets(t workflow.Targets, totalTasks int) {
	if t.MakespanSeconds <= 0 && t.ThroughputTPS <= 0 {
		m.Targets = nil
		return
	}
	m.Targets = &TargetLines{
		ThroughputTPS:   t.ThroughputTPS,
		MakespanSeconds: t.MakespanSeconds,
		TotalTasks:      totalTasks,
	}
}

// ScaleIntraTask models Fig 2c: multiplying each task's intra-task
// parallelism (nodes per task) by k > 0 with perfect scalability moves the
// wall left by k (fewer concurrent tasks fit) and node ceilings up by k
// (per-node work drops by k, so per-task time at peak drops by k). A
// fractional k coarsens instead: wider walls, slower tasks — the inverse
// transform, so scaling by k then 1/k at perfect efficiency is the identity
// whenever k divides the wall evenly.
// System-scoped ceilings are unchanged: the same bytes cross the same shared
// resource. The receiver is not mutated. efficiency in (0,1] models
// imperfect strong scaling of the node phases: time scales by 1/(k*eff).
func (m *Model) ScaleIntraTask(k float64, efficiency float64) (*Model, error) {
	if k <= 0 || math.IsInf(k, 0) || math.IsNaN(k) {
		return nil, fmt.Errorf("core: intra-task scale factor must be a positive finite number, got %v", k)
	}
	if efficiency <= 0 || efficiency > 1 {
		return nil, fmt.Errorf("core: efficiency must be in (0,1], got %v", efficiency)
	}
	out := &Model{
		Title:   m.Title + fmt.Sprintf(" (intra-task x%g)", k),
		Wall:    int(math.Max(1, math.Floor(float64(m.Wall)/k))),
		Targets: m.Targets,
	}
	for _, c := range m.Ceilings {
		nc := c
		if c.Scope == ScopeNode {
			nc.TimePerTask = c.TimePerTask / (k * efficiency)
		}
		out.Ceilings = append(out.Ceilings, nc)
	}
	return out, nil
}

// Point is an empirical workflow observation placed on the roofline.
type Point struct {
	// Label names the observation, e.g. "Good Days" or "Spawn".
	Label string
	// ParallelTasks is the x coordinate.
	ParallelTasks float64
	// TPS is the y coordinate (achieved tasks per second).
	TPS float64
	// MakespanSeconds is the observed end-to-end time (informational).
	MakespanSeconds float64
	// TotalTasks is the number of tasks completed in the makespan.
	TotalTasks int
}

// NewPoint builds an empirical point from the quantities the paper's
// methodology collects: total task count, observed makespan, and the number
// of parallel tasks from the workflow description.
func NewPoint(label string, totalTasks int, parallelTasks int, makespanSeconds float64) (Point, error) {
	if totalTasks <= 0 {
		return Point{}, fmt.Errorf("core: point %q needs a positive task count, got %d", label, totalTasks)
	}
	if parallelTasks <= 0 {
		return Point{}, fmt.Errorf("core: point %q needs positive parallel tasks, got %d", label, parallelTasks)
	}
	if makespanSeconds <= 0 {
		return Point{}, fmt.Errorf("core: point %q needs a positive makespan, got %v", label, makespanSeconds)
	}
	return Point{
		Label:           label,
		ParallelTasks:   float64(parallelTasks),
		TPS:             float64(totalTasks) / makespanSeconds,
		MakespanSeconds: makespanSeconds,
		TotalTasks:      totalTasks,
	}, nil
}

// Efficiency returns achieved TPS over attainable TPS at the point's x
// coordinate — e.g. BGW's "42% of node peak" annotation in Fig 7a.
func (m *Model) Efficiency(pt Point) float64 {
	bound, _ := m.Bound(pt.ParallelTasks)
	if math.IsInf(bound, 1) || bound <= 0 {
		return 0
	}
	return pt.TPS / bound
}

// Headroom returns the multiplicative speedup still available at the
// point's x coordinate (attainable/achieved), e.g. GPTune's "12x" arrow.
func (m *Model) Headroom(pt Point) float64 {
	e := m.Efficiency(pt)
	if e <= 0 {
		return math.Inf(1)
	}
	return 1 / e
}

// String summarizes the model.
func (m *Model) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Workflow Roofline: %s\n", m.Title)
	fmt.Fprintf(&b, "  parallelism wall: %d tasks\n", m.Wall)
	for _, c := range m.Ceilings {
		fmt.Fprintf(&b, "  ceiling: %s\n", c)
	}
	if m.Targets != nil {
		if m.Targets.MakespanSeconds > 0 {
			fmt.Fprintf(&b, "  target makespan: %.4gs (TPS %.4g)\n",
				m.Targets.MakespanSeconds, m.Targets.MakespanTPS())
		}
		if m.Targets.ThroughputTPS > 0 {
			fmt.Fprintf(&b, "  target throughput: %.4g TPS\n", m.Targets.ThroughputTPS)
		}
	}
	return b.String()
}

// SortCeilings orders ceilings by ascending attainable TPS at p, i.e. most
// restrictive first, returning a copy.
func (m *Model) SortCeilings(p float64) []Ceiling {
	out := make([]Ceiling, len(m.Ceilings))
	copy(out, m.Ceilings)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].TPSAt(p) < out[j].TPSAt(p)
	})
	return out
}

// BuildOptions tunes automatic model construction.
type BuildOptions struct {
	// AvailableNodes overrides the partition node count used for the wall
	// (e.g. CosmoFlow excludes 256 large-memory nodes: 1536 of 1792).
	AvailableNodes int
	// ExternalBW overrides the machine's external bandwidth (contention
	// scenarios). Zero keeps the machine value.
	ExternalBW units.ByteRate
	// OverheadSeconds adds a serialized per-task overhead ceiling (GPTune's
	// Python/bash time). Zero adds none.
	OverheadSeconds float64
	// OverheadName labels the overhead ceiling.
	OverheadName string
}

// Build derives a Workflow Roofline model from a machine and a workflow,
// following Section III-A/III-B: node ceilings from per-node work over
// per-node peaks, system ceilings from per-task shared-resource volumes
// over aggregate peaks, and the wall from node counts.
func Build(m *machine.Machine, w *workflow.Workflow, opts BuildOptions) (*Model, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	part, err := m.Partition(w.Partition)
	if err != nil {
		return nil, err
	}
	nodes := part.Nodes
	if opts.AvailableNodes > 0 {
		nodes = opts.AvailableNodes
	}
	req := w.MaxTaskNodes()
	if req > nodes {
		return nil, fmt.Errorf("core: workflow %s needs %d nodes per task but only %d are available",
			w.Name, req, nodes)
	}
	wall := nodes / req

	work := w.MaxWorkPerTask()
	model := &Model{
		Title: fmt.Sprintf("%s on %s/%s", w.Name, m.Name, part.Name),
		Wall:  wall,
	}

	model.AddCeiling(Ceiling{
		Name:        fmt.Sprintf("Compute: %v @ %v", work.Flops, part.NodeFlops),
		Resource:    ResCompute,
		Scope:       ScopeNode,
		TimePerTask: units.TimeToCompute(work.Flops, part.NodeFlops),
	})
	// NUMA topologies lower the memory peak below the flat node aggregate;
	// for machines without a NUMA block EffectiveMemBW is exactly NodeMemBW.
	memBW := part.EffectiveMemBW()
	model.AddCeiling(Ceiling{
		Name:        fmt.Sprintf("Memory: %v @ %v", work.MemBytes, memBW),
		Resource:    ResMemory,
		Scope:       ScopeNode,
		TimePerTask: units.TimeToMove(work.MemBytes, memBW),
	})
	model.AddCeiling(Ceiling{
		Name:        fmt.Sprintf("PCIe: %v @ %v", work.PCIeBytes, part.NodePCIeBW),
		Resource:    ResPCIe,
		Scope:       ScopeNode,
		TimePerTask: units.TimeToMove(work.PCIeBytes, part.NodePCIeBW),
	})
	// Network bytes are characterized per node and ride the per-node NIC
	// injection bandwidth, but the paper draws the network as a shared
	// system ceiling (Fig 1); the per-node ratio is p-invariant either way.
	model.AddCeiling(Ceiling{
		Name:        fmt.Sprintf("Network: %v/node @ %v", work.NetworkBytes, part.NodeNICBW),
		Resource:    ResNetwork,
		Scope:       ScopeSystem,
		TimePerTask: units.TimeToMove(work.NetworkBytes, part.NodeNICBW),
	})
	// Ridgeline-style fabrics add a second network ceiling: the per-task
	// bisection load (the task's injected bytes across all its nodes, of
	// which BisectionShare crosses the cut) over the fabric's aggregate
	// bisection bandwidth. Machines without a bisection entry model a
	// full-bisection fabric and add nothing.
	if bisBW, ok := m.BisectionBW[w.Partition]; ok && work.NetworkBytes > 0 {
		vol := units.Bytes(float64(work.NetworkBytes) * float64(req) * machine.BisectionShare)
		model.AddCeiling(Ceiling{
			Name:        fmt.Sprintf("Bisection: %v/task @ %v", vol, bisBW),
			Resource:    ResBisection,
			Scope:       ScopeSystem,
			TimePerTask: units.TimeToMove(vol, bisBW),
		})
	}
	if work.FSBytes > 0 {
		fsBW, err := m.FSBandwidth(w.Partition)
		if err != nil {
			return nil, err
		}
		model.AddCeiling(Ceiling{
			Name:        fmt.Sprintf("File System: %v @ %v", work.FSBytes, fsBW),
			Resource:    ResFileSystem,
			Scope:       ScopeSystem,
			TimePerTask: units.TimeToMove(work.FSBytes, fsBW),
		})
	}
	if work.ExternalBytes > 0 {
		ext := m.ExternalBW
		if opts.ExternalBW > 0 {
			ext = opts.ExternalBW
		}
		if ext <= 0 {
			return nil, fmt.Errorf("core: workflow %s stages external data but machine %s has no external bandwidth",
				w.Name, m.Name)
		}
		model.AddCeiling(Ceiling{
			Name:        fmt.Sprintf("System External: %v @ %v", work.ExternalBytes, ext),
			Resource:    ResExternal,
			Scope:       ScopeSystem,
			TimePerTask: units.TimeToMove(work.ExternalBytes, ext),
		})
	}
	if opts.OverheadSeconds > 0 {
		name := opts.OverheadName
		if name == "" {
			name = "Control-flow overhead"
		}
		model.AddCeiling(Ceiling{
			Name:        fmt.Sprintf("%s: %.4gs/task", name, opts.OverheadSeconds),
			Resource:    ResOverhead,
			Scope:       ScopeNode,
			TimePerTask: opts.OverheadSeconds,
		})
	}

	model.SetTargets(w.Targets, w.TotalTasks())
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return model, nil
}
