package core

import (
	"encoding/json"
	"strings"
	"testing"

	"wroofline/internal/workflow"
)

func TestModelJSONRoundTrip(t *testing.T) {
	m := fig1Model(t)
	m.SetTargets(workflow.Targets{MakespanSeconds: 600, ThroughputTPS: 0.01}, 6)
	m.Ceilings[1].Scenario = true
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"resource":"filesystem"`, `"scope":"system"`, `"scenario":true`, `"wall":28`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s:\n%s", want, data)
		}
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != m.Title || back.Wall != m.Wall {
		t.Errorf("identity lost: %q/%d", back.Title, back.Wall)
	}
	if len(back.Ceilings) != len(m.Ceilings) {
		t.Fatalf("ceilings = %d, want %d", len(back.Ceilings), len(m.Ceilings))
	}
	for i := range m.Ceilings {
		if back.Ceilings[i] != m.Ceilings[i] {
			t.Errorf("ceiling %d: %+v vs %+v", i, back.Ceilings[i], m.Ceilings[i])
		}
	}
	if back.Targets == nil || back.Targets.MakespanSeconds != 600 {
		t.Errorf("targets lost: %+v", back.Targets)
	}
	// Bounds survive the round trip bit-for-bit.
	b1, _ := m.Bound(5)
	b2, _ := back.Bound(5)
	if b1 != b2 {
		t.Errorf("bound changed: %v vs %v", b1, b2)
	}
}

func TestModelJSONRejectsBad(t *testing.T) {
	cases := []string{
		`not json`,
		`{"title":"x","wall":1,"ceilings":[{"name":"c","resource":"frobnicator","scope":"node","time_per_task_s":1}]}`,
		`{"title":"x","wall":1,"ceilings":[{"name":"c","resource":"compute","scope":"diagonal","time_per_task_s":1}]}`,
		`{"title":"x","wall":0,"ceilings":[{"name":"c","resource":"compute","scope":"node","time_per_task_s":1}]}`,
		`{"title":"x","wall":1,"ceilings":[]}`,
		`{"title":"x","wall":1,"ceilings":[{"name":"c","resource":"compute","scope":"node","time_per_task_s":-1}]}`,
	}
	for _, c := range cases {
		var m Model
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Errorf("decode should fail: %s", c)
		}
	}
}

func TestAllResourcesSerializable(t *testing.T) {
	for r := ResCompute; r <= ResOverhead; r++ {
		m := &Model{Title: "t", Wall: 1}
		m.AddCeiling(Ceiling{Name: "c", Resource: r, Scope: ScopeNode, TimePerTask: 1})
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		var back Model
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if back.Ceilings[0].Resource != r {
			t.Errorf("resource %v did not round-trip", r)
		}
	}
}
