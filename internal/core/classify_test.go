package core

import (
	"strings"
	"testing"

	"wroofline/internal/workflow"
)

// targetedModel builds a model with a node ceiling (1 s/task), a system
// ceiling (0.05 s/task -> 20 TPS flat), wall 100, and targets.
func targetedModel() *Model {
	m := &Model{Title: "t", Wall: 100}
	m.AddCeiling(Ceiling{Name: "node", Resource: ResCompute, Scope: ScopeNode, TimePerTask: 1})
	m.AddCeiling(Ceiling{Name: "sys", Resource: ResFileSystem, Scope: ScopeSystem, TimePerTask: 0.05})
	m.SetTargets(workflow.Targets{MakespanSeconds: 100, ThroughputTPS: 5}, 500)
	return m
}

func TestClassifyZone(t *testing.T) {
	m := targetedModel()
	cases := []struct {
		name string
		pt   Point
		want Zone
	}{
		{"green", Point{MakespanSeconds: 50, TPS: 10}, ZoneGoodGood},
		{"yellow", Point{MakespanSeconds: 50, TPS: 1}, ZoneGoodMakespanPoorThroughput},
		{"orange", Point{MakespanSeconds: 500, TPS: 10}, ZonePoorMakespanGoodThroughput},
		{"red", Point{MakespanSeconds: 500, TPS: 1}, ZonePoorPoor},
		{"boundary both", Point{MakespanSeconds: 100, TPS: 5}, ZoneGoodGood},
	}
	for _, c := range cases {
		if got := m.ClassifyZone(c.pt); got != c.want {
			t.Errorf("%s: zone = %v, want %v", c.name, got, c.want)
		}
	}
	noTargets := &Model{Wall: 10}
	noTargets.AddCeiling(Ceiling{Name: "n", Scope: ScopeNode, TimePerTask: 1})
	if got := noTargets.ClassifyZone(Point{TPS: 1}); got != ZoneNoTargets {
		t.Errorf("zone without targets = %v", got)
	}
}

func TestClassifyZonePartialTargets(t *testing.T) {
	// Only a deadline: throughput always "good".
	m := &Model{Wall: 10}
	m.AddCeiling(Ceiling{Name: "n", Scope: ScopeNode, TimePerTask: 1})
	m.SetTargets(workflow.Targets{MakespanSeconds: 100}, 10)
	if got := m.ClassifyZone(Point{MakespanSeconds: 50, TPS: 0.001}); got != ZoneGoodGood {
		t.Errorf("deadline-only met = %v", got)
	}
	if got := m.ClassifyZone(Point{MakespanSeconds: 500, TPS: 0.001}); got != ZonePoorMakespanGoodThroughput {
		t.Errorf("deadline-only missed = %v", got)
	}
	// Only a throughput floor: makespan always "good".
	m.SetTargets(workflow.Targets{ThroughputTPS: 5}, 10)
	if got := m.ClassifyZone(Point{MakespanSeconds: 1e9, TPS: 10}); got != ZoneGoodGood {
		t.Errorf("throughput-only met = %v", got)
	}
	if got := m.ClassifyZone(Point{MakespanSeconds: 1, TPS: 1}); got != ZoneGoodMakespanPoorThroughput {
		t.Errorf("throughput-only missed = %v", got)
	}
}

func TestClassifyBound(t *testing.T) {
	m := targetedModel()
	// At p=2 the node ceiling gives 2 TPS < 20 TPS system: node bound.
	if got := m.ClassifyBound(Point{ParallelTasks: 2, TPS: 1}); got != NodeBound {
		t.Errorf("p=2 = %v, want node bound", got)
	}
	// At p=50 node gives 50 > 20: system bound.
	if got := m.ClassifyBound(Point{ParallelTasks: 50, TPS: 15}); got != SystemBound {
		t.Errorf("p=50 = %v, want system bound", got)
	}
	// At the wall with a binding node ceiling and near-bound throughput:
	// parallelism bound.
	m2 := &Model{Wall: 10}
	m2.AddCeiling(Ceiling{Name: "node", Resource: ResCompute, Scope: ScopeNode, TimePerTask: 1})
	if got := m2.ClassifyBound(Point{ParallelTasks: 10, TPS: 9}); got != ParallelismBound {
		t.Errorf("at wall near bound = %v, want parallelism bound", got)
	}
	// At the wall but far below the bound: still node bound (inefficiency,
	// not the wall, is the story).
	if got := m2.ClassifyBound(Point{ParallelTasks: 10, TPS: 0.5}); got != NodeBound {
		t.Errorf("at wall far below bound = %v, want node bound", got)
	}
}

func TestBoundClassStrings(t *testing.T) {
	if NodeBound.String() != "node bound" || SystemBound.String() != "system bound" ||
		ParallelismBound.String() != "parallelism bound" {
		t.Error("bound class names wrong")
	}
	if BoundClass(9).String() == "" || Zone(9).String() == "" {
		t.Error("unknown enums should print")
	}
	for _, z := range []Zone{ZoneGoodGood, ZoneGoodMakespanPoorThroughput, ZonePoorMakespanGoodThroughput, ZonePoorPoor, ZoneNoTargets} {
		if z.String() == "" {
			t.Errorf("zone %d has empty name", int(z))
		}
	}
}

func TestAdviseYellowZone(t *testing.T) {
	// Fig 2b: good makespan, poor throughput, below the wall -> two
	// feasible directions.
	m := &Model{Wall: 100}
	m.AddCeiling(Ceiling{Name: "node", Resource: ResCompute, Scope: ScopeNode, TimePerTask: 1})
	m.SetTargets(workflow.Targets{MakespanSeconds: 100, ThroughputTPS: 50}, 500)
	pt := Point{Label: "wf", ParallelTasks: 10, TPS: 5, MakespanSeconds: 50}
	recs := m.Advise(pt)
	var latency, parallel *Recommendation
	for i := range recs {
		switch {
		case strings.Contains(recs[i].Title, "latency"):
			latency = &recs[i]
		case strings.Contains(recs[i].Title, "parallelism"):
			parallel = &recs[i]
		}
	}
	if latency == nil || !latency.Feasible {
		t.Fatalf("expected feasible latency direction, got %+v", recs)
	}
	if latency.ProjectedSpeedup < 1.9 || latency.ProjectedSpeedup > 2.1 {
		t.Errorf("latency headroom = %v, want about 2 (achieved 5 of 10)", latency.ProjectedSpeedup)
	}
	if parallel == nil || !parallel.Feasible {
		t.Fatalf("expected feasible parallelism direction, got %+v", recs)
	}
	if parallel.ProjectedSpeedup < 9.9 || parallel.ProjectedSpeedup > 10.1 {
		t.Errorf("parallelism gain = %v, want about 10 (wall 100 vs p 10)", parallel.ProjectedSpeedup)
	}
}

func TestAdviseAtWall(t *testing.T) {
	// Fig 2c: at the wall, the parallelism direction must be infeasible.
	m := &Model{Wall: 10}
	m.AddCeiling(Ceiling{Name: "node", Resource: ResCompute, Scope: ScopeNode, TimePerTask: 1})
	pt := Point{Label: "wf", ParallelTasks: 10, TPS: 5, MakespanSeconds: 50}
	recs := m.Advise(pt)
	foundInfeasible := false
	for _, r := range recs {
		if strings.Contains(r.Title, "parallelism") && !r.Feasible {
			foundInfeasible = true
		}
	}
	if !foundInfeasible {
		t.Errorf("at-wall advice should mark parallelism infeasible: %+v", recs)
	}
	if !m.Infeasible(pt) {
		t.Error("Infeasible should be true at the wall")
	}
	if m.Infeasible(Point{ParallelTasks: 3}) {
		t.Error("Infeasible should be false below the wall")
	}
}

func TestAdviseSystemBound(t *testing.T) {
	// LCLS-style: system ceiling binds -> "do not buy faster compute" and
	// parallelism increase marked infeasible (horizontal ceiling).
	m := &Model{Wall: 74}
	m.AddCeiling(Ceiling{Name: "CPU", Resource: ResMemory, Scope: ScopeNode, TimePerTask: 0.25})
	m.AddCeiling(Ceiling{Name: "External", Resource: ResExternal, Scope: ScopeSystem, TimePerTask: 1000})
	pt := Point{Label: "Good Days", ParallelTasks: 5, TPS: 6.0 / 1020.0, MakespanSeconds: 1020}
	recs := m.Advise(pt)
	var noFaster, parallel bool
	for _, r := range recs {
		if strings.Contains(r.Title, "faster compute") {
			noFaster = true
		}
		if strings.Contains(r.Title, "parallelism") && !r.Feasible {
			parallel = true
		}
	}
	if !noFaster {
		t.Errorf("system-bound advice should warn against faster compute: %+v", recs)
	}
	if !parallel {
		t.Errorf("system-bound advice should mark parallelism useless: %+v", recs)
	}
}

func TestAdviseOverheadBound(t *testing.T) {
	// GPTune-style: a serialized overhead ceiling binds.
	m := &Model{Wall: 3072}
	m.AddCeiling(Ceiling{Name: "Python", Resource: ResOverhead, Scope: ScopeNode, TimePerTask: 12})
	m.AddCeiling(Ceiling{Name: "CPU", Resource: ResMemory, Scope: ScopeNode, TimePerTask: 0.016})
	pt := Point{Label: "Spawn", ParallelTasks: 1, TPS: 40.0 / 228.0, MakespanSeconds: 228}
	recs := m.Advise(pt)
	found := false
	for _, r := range recs {
		if strings.Contains(r.Title, "control-flow overhead") {
			found = true
		}
	}
	if !found {
		t.Errorf("overhead-bound advice missing: %+v", recs)
	}
}

func TestRecommendationString(t *testing.T) {
	r := Recommendation{Title: "x", Detail: "y", Feasible: true, ProjectedSpeedup: 2.5}
	s := r.String()
	if !strings.Contains(s, "feasible") || !strings.Contains(s, "2.5x") {
		t.Errorf("String = %q", s)
	}
	r.Feasible = false
	if !strings.Contains(r.String(), "INFEASIBLE") {
		t.Errorf("String = %q", r.String())
	}
}

func TestReport(t *testing.T) {
	m := targetedModel()
	pt := Point{Label: "run1", ParallelTasks: 2, TPS: 1, MakespanSeconds: 50, TotalTasks: 50}
	s := m.Report([]Point{pt})
	for _, want := range []string{"run1", "attainable", "efficiency", "zone", "advice"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
