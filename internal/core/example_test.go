package core_test

import (
	"fmt"

	"wroofline/internal/core"
	"wroofline/internal/machine"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// Example builds a Workflow Roofline for a small workflow on Perlmutter and
// classifies a measured run.
func Example() {
	pm := machine.Perlmutter()
	w := workflow.New("demo", machine.PartGPU)
	if err := w.AddTask(&workflow.Task{
		ID: "solve", Nodes: 64,
		Work: workflow.Work{
			Flops:   388 * units.TFLOP, // 10 s per task at the node peak
			FSBytes: 5.6 * units.TB,    // 1 s through the shared file system
		},
	}); err != nil {
		fmt.Println(err)
		return
	}
	model, err := core.Build(pm, w, core.BuildOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("wall:", model.Wall)
	bound, limit := model.Bound(1)
	fmt.Printf("bound at p=1: %.2f TPS (%s)\n", bound, limit.Resource)
	bound, limit = model.BoundAtWall()
	fmt.Printf("bound at the wall: %.2f TPS (%s)\n", bound, limit.Resource)
	// Output:
	// wall: 28
	// bound at p=1: 0.10 TPS (compute)
	// bound at the wall: 1.00 TPS (filesystem)
}

// ExampleModel_ClassifyZone places a measured point in the Fig 2a zones.
func ExampleModel_ClassifyZone() {
	m := &core.Model{Title: "t", Wall: 10}
	m.AddCeiling(core.Ceiling{Name: "node", Resource: core.ResCompute, Scope: core.ScopeNode, TimePerTask: 1})
	m.SetTargets(workflow.Targets{MakespanSeconds: 100, ThroughputTPS: 2}, 100)
	pt, _ := core.NewPoint("run", 100, 4, 50) // 2 TPS, 50 s
	fmt.Println(m.ClassifyZone(pt))
	late, _ := core.NewPoint("late", 100, 4, 500)
	fmt.Println(m.ClassifyZone(late))
	// Output:
	// good makespan, good throughput (green)
	// poor makespan, poor throughput (red)
}

// ExampleModel_ScaleIntraTask shows the Fig 2c tradeoff: doubling nodes per
// task halves the wall.
func ExampleModel_ScaleIntraTask() {
	m := &core.Model{Title: "t", Wall: 28}
	m.AddCeiling(core.Ceiling{Name: "node", Resource: core.ResCompute, Scope: core.ScopeNode, TimePerTask: 10})
	scaled, _ := m.ScaleIntraTask(2, 1.0)
	fmt.Println("wall:", m.Wall, "->", scaled.Wall)
	fmt.Println("per-task seconds:", m.Ceilings[0].TimePerTask, "->", scaled.Ceilings[0].TimePerTask)
	// Output:
	// wall: 28 -> 14
	// per-task seconds: 10 -> 5
}
