package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"wroofline/internal/machine"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

func almost(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= relTol*math.Max(math.Abs(a), math.Abs(b))
}

// fig1Model reproduces the example of Fig 1: 1 TB per task via the file
// system at 5.6 TB/s, 1 TB per node via NICs at 100 GB/s, 4 GB PCIe per
// node at 100 GB/s, 100 GFLOP per node at 38.8 TFLOPS, 64-node tasks on the
// 1792-node GPU partition (wall 28).
func fig1Model(t *testing.T) *Model {
	t.Helper()
	m := &Model{Title: "Fig 1 example", Wall: 28}
	m.AddCeiling(Ceiling{
		Name: "File System Bytes: Loading 1TB @ 5.6 TB/s", Resource: ResFileSystem,
		Scope: ScopeSystem, TimePerTask: units.TimeToMove(1*units.TB, 5.6*units.TBPS),
	})
	m.AddCeiling(Ceiling{
		Name: "Network bytes: 1TB @ 100 GB/s", Resource: ResNetwork,
		Scope: ScopeSystem, TimePerTask: units.TimeToMove(1*units.TB, 100*units.GBPS),
	})
	m.AddCeiling(Ceiling{
		Name: "PCIe Bytes: 4GB @ 100 GB/s", Resource: ResPCIe,
		Scope: ScopeNode, TimePerTask: units.TimeToMove(4*units.GB, 100*units.GBPS),
	})
	m.AddCeiling(Ceiling{
		Name: "Compute Flops: 100 GFLOPs @ 38.8 TFLOPS", Resource: ResCompute,
		Scope: ScopeNode, TimePerTask: units.TimeToCompute(100*units.GFLOP, 38.8*units.TFLOPS),
	})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCeilingTPSAt(t *testing.T) {
	node := Ceiling{Scope: ScopeNode, TimePerTask: 2}
	if got := node.TPSAt(1); got != 0.5 {
		t.Errorf("node TPS(1) = %v", got)
	}
	if got := node.TPSAt(10); got != 5 {
		t.Errorf("node TPS(10) = %v (diagonal must scale with p)", got)
	}
	sys := Ceiling{Scope: ScopeSystem, TimePerTask: 2}
	if got := sys.TPSAt(1); got != 0.5 {
		t.Errorf("system TPS(1) = %v", got)
	}
	if got := sys.TPSAt(10); got != 0.5 {
		t.Errorf("system TPS(10) = %v (horizontal must not scale)", got)
	}
	unused := Ceiling{Scope: ScopeNode, TimePerTask: 0}
	if !math.IsInf(unused.TPSAt(5), 1) {
		t.Errorf("unused ceiling should be +Inf")
	}
}

func TestFig1Bounds(t *testing.T) {
	m := fig1Model(t)
	// At p=1 the network ceiling binds: 1 TB @ 100 GB/s = 10 s -> 0.1 TPS.
	tps, limit := m.Bound(1)
	if !almost(tps, 0.1, 1e-9) {
		t.Errorf("bound(1) = %v, want 0.1", tps)
	}
	if limit.Resource != ResNetwork {
		t.Errorf("limit at p=1 = %v, want network", limit.Resource)
	}
	// The network ceiling stays binding out to the wall (PCIe diagonal at
	// p=28 gives 28/0.04 = 700 TPS, far above 0.1).
	tps, limit = m.BoundAtWall()
	if !almost(tps, 0.1, 1e-9) || limit.Resource != ResNetwork {
		t.Errorf("bound at wall = %v by %v", tps, limit.Resource)
	}
	// Beyond the wall the bound is clipped to the wall value.
	tpsBeyond, _ := m.Bound(1000)
	if tpsBeyond != tps {
		t.Errorf("bound beyond wall = %v, want clipped %v", tpsBeyond, tps)
	}
	// Non-positive p.
	if tps, _ := m.Bound(0); tps != 0 {
		t.Errorf("bound(0) = %v, want 0", tps)
	}
	if tps, _ := m.Bound(-2); tps != 0 {
		t.Errorf("bound(-2) = %v, want 0", tps)
	}
}

func TestFig1FileSystemCeiling(t *testing.T) {
	m := fig1Model(t)
	var fs Ceiling
	for _, c := range m.Ceilings {
		if c.Resource == ResFileSystem {
			fs = c
		}
	}
	// 1 TB @ 5.6 TB/s = 0.1786 s -> 5.6 TPS horizontal.
	if !almost(fs.TPSAt(1), 5.6, 1e-9) || !almost(fs.TPSAt(28), 5.6, 1e-9) {
		t.Errorf("FS ceiling = %v / %v, want 5.6 TPS flat", fs.TPSAt(1), fs.TPSAt(28))
	}
}

func TestCrossover(t *testing.T) {
	node := Ceiling{Scope: ScopeNode, TimePerTask: 10}
	sys := Ceiling{Scope: ScopeSystem, TimePerTask: 2}
	p, err := Crossover(node, sys)
	if err != nil {
		t.Fatal(err)
	}
	if p != 5 {
		t.Errorf("crossover = %v, want 5", p)
	}
	// Below p* node binds, above p* system binds.
	if node.TPSAt(4) >= sys.TPSAt(4) {
		t.Errorf("below crossover the node ceiling should bind")
	}
	if node.TPSAt(6) <= sys.TPSAt(6) {
		t.Errorf("above crossover the system ceiling should bind")
	}
	if _, err := Crossover(sys, node); err == nil {
		t.Error("swapped scopes should fail")
	}
	if _, err := Crossover(Ceiling{Scope: ScopeNode}, sys); err == nil {
		t.Error("zero-time ceiling should fail")
	}
}

func TestAddCeilingSkipsUnused(t *testing.T) {
	m := &Model{Wall: 1}
	m.AddCeiling(Ceiling{Name: "zero", TimePerTask: 0})
	m.AddCeiling(Ceiling{Name: "neg", TimePerTask: -3})
	if len(m.Ceilings) != 0 {
		t.Errorf("unused ceilings should be skipped, got %d", len(m.Ceilings))
	}
}

func TestModelValidate(t *testing.T) {
	m := &Model{Wall: 1}
	if err := m.Validate(); err == nil {
		t.Error("no ceilings should fail")
	}
	m.AddCeiling(Ceiling{Name: "c", TimePerTask: 1})
	m.Wall = 0
	if err := m.Validate(); err == nil {
		t.Error("zero wall should fail")
	}
	m.Wall = 1
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	m.Ceilings[0].TimePerTask = math.NaN()
	if err := m.Validate(); err == nil {
		t.Error("NaN ceiling should fail")
	}
}

func TestScaleIntraTask(t *testing.T) {
	m := fig1Model(t)
	scaled, err := m.ScaleIntraTask(2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Wall != 14 {
		t.Errorf("wall after 2x intra-task = %d, want 14", scaled.Wall)
	}
	for i, c := range scaled.Ceilings {
		orig := m.Ceilings[i]
		switch c.Scope {
		case ScopeNode:
			if !almost(c.TimePerTask, orig.TimePerTask/2, 1e-12) {
				t.Errorf("node ceiling %q not halved: %v vs %v", c.Name, c.TimePerTask, orig.TimePerTask)
			}
		case ScopeSystem:
			if c.TimePerTask != orig.TimePerTask {
				t.Errorf("system ceiling %q changed: %v vs %v", c.Name, c.TimePerTask, orig.TimePerTask)
			}
		}
	}
	// The receiver must be untouched.
	if m.Wall != 28 {
		t.Errorf("original mutated: wall %d", m.Wall)
	}
	// Imperfect scaling: time shrinks less.
	imperfect, err := m.ScaleIntraTask(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(imperfect.Ceilings[2].TimePerTask, m.Ceilings[2].TimePerTask, 1e-12) {
		t.Errorf("2x at 50%% efficiency should leave node time unchanged")
	}
	// Fractional k coarsens: the wall widens and node tasks slow down.
	half, err := m.ScaleIntraTask(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if half.Wall != 56 {
		t.Errorf("0.5x wall = %d, want 56", half.Wall)
	}
	if _, err := m.ScaleIntraTask(0, 1); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, err := m.ScaleIntraTask(-2, 1); err == nil {
		t.Error("negative k should fail")
	}
	if _, err := m.ScaleIntraTask(math.NaN(), 1); err == nil {
		t.Error("NaN k should fail")
	}
	if _, err := m.ScaleIntraTask(2, 0); err == nil {
		t.Error("zero efficiency should fail")
	}
	if _, err := m.ScaleIntraTask(2, 1.5); err == nil {
		t.Error("efficiency > 1 should fail")
	}
}

// Fig 2c invariant: with perfect scalability the TPS bound at the wall from
// a node ceiling is unchanged by intra-task rescaling (wall/k tasks, each
// k-times faster), so the makespan-wall intercept is preserved.
func TestQuickIntraTaskWallIntercept(t *testing.T) {
	f := func(kRaw uint8, timeRaw uint16) bool {
		k := float64(kRaw%6 + 1)
		tt := float64(timeRaw%1000+1) / 10
		m := &Model{Title: "q", Wall: 1024}
		m.AddCeiling(Ceiling{Name: "node", Scope: ScopeNode, TimePerTask: tt})
		scaled, err := m.ScaleIntraTask(k, 1.0)
		if err != nil {
			return false
		}
		b0, _ := m.BoundAtWall()
		b1, _ := scaled.BoundAtWall()
		// floor(wall/k)*k <= wall, so the scaled bound can be at most the
		// original and equal when k divides the wall.
		if b1 > b0*(1+1e-9) {
			return false
		}
		if math.Mod(1024, k) == 0 && !almost(b0, b1, 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPoint(t *testing.T) {
	pt, err := NewPoint("Good Days", 6, 5, 17*60)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pt.TPS, 6.0/1020.0, 1e-12) {
		t.Errorf("TPS = %v", pt.TPS)
	}
	if pt.ParallelTasks != 5 {
		t.Errorf("x = %v", pt.ParallelTasks)
	}
	for _, bad := range []struct {
		tot, par int
		mk       float64
	}{
		{0, 5, 10}, {6, 0, 10}, {6, 5, 0}, {-1, 5, 10}, {6, -2, 10}, {6, 5, -1},
	} {
		if _, err := NewPoint("bad", bad.tot, bad.par, bad.mk); err == nil {
			t.Errorf("NewPoint(%+v) should fail", bad)
		}
	}
}

func TestEfficiencyAndHeadroom(t *testing.T) {
	m := &Model{Title: "e", Wall: 10}
	m.AddCeiling(Ceiling{Name: "node", Scope: ScopeNode, TimePerTask: 1})
	pt := Point{ParallelTasks: 4, TPS: 2} // attainable 4
	if e := m.Efficiency(pt); !almost(e, 0.5, 1e-12) {
		t.Errorf("efficiency = %v", e)
	}
	if h := m.Headroom(pt); !almost(h, 2, 1e-12) {
		t.Errorf("headroom = %v", h)
	}
	empty := &Model{Wall: 10}
	if e := empty.Efficiency(pt); e != 0 {
		t.Errorf("efficiency without ceilings = %v, want 0", e)
	}
	if h := empty.Headroom(pt); !math.IsInf(h, 1) {
		t.Errorf("headroom without ceilings = %v, want +Inf", h)
	}
}

func TestSortCeilings(t *testing.T) {
	m := fig1Model(t)
	sorted := m.SortCeilings(1)
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].TPSAt(1) > sorted[i].TPSAt(1) {
			t.Errorf("ceilings not sorted at index %d", i)
		}
	}
	if sorted[0].Resource != ResNetwork {
		t.Errorf("most restrictive at p=1 should be network, got %v", sorted[0].Resource)
	}
}

func TestTargetLines(t *testing.T) {
	var nilT *TargetLines
	if nilT.MakespanTPS() != 0 {
		t.Error("nil targets should give 0")
	}
	tl := &TargetLines{MakespanSeconds: 600, TotalTasks: 6}
	if !almost(tl.MakespanTPS(), 0.01, 1e-12) {
		t.Errorf("makespan TPS = %v, want 0.01", tl.MakespanTPS())
	}
	m := &Model{Wall: 1}
	m.SetTargets(workflow.Targets{}, 6)
	if m.Targets != nil {
		t.Error("empty targets should clear Targets")
	}
	m.SetTargets(workflow.Targets{MakespanSeconds: 600, ThroughputTPS: 0.01}, 6)
	if m.Targets == nil || m.Targets.TotalTasks != 6 {
		t.Errorf("targets not installed: %+v", m.Targets)
	}
}

func TestStringOutput(t *testing.T) {
	m := fig1Model(t)
	m.SetTargets(workflow.Targets{MakespanSeconds: 600, ThroughputTPS: 0.01}, 6)
	s := m.String()
	for _, want := range []string{"Fig 1 example", "wall: 28", "File System", "target makespan", "target throughput"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	c := Ceiling{Name: "x", Scope: ScopeSystem, TimePerTask: 2}
	if got := c.String(); !strings.Contains(got, "system") {
		t.Errorf("ceiling String = %q", got)
	}
}

func TestScopeResourceStrings(t *testing.T) {
	if ScopeNode.String() != "node" || ScopeSystem.String() != "system" {
		t.Error("scope names wrong")
	}
	if Scope(99).String() == "" || Resource(99).String() == "" {
		t.Error("unknown enums should still print")
	}
	names := map[Resource]string{
		ResCompute: "compute", ResMemory: "memory", ResPCIe: "pcie",
		ResNetwork: "network", ResFileSystem: "filesystem",
		ResExternal: "external", ResOverhead: "overhead",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
}

// Build against real machine/workflow specs: the LCLS-on-Cori model of
// Fig 5a.
func TestBuildLCLSCori(t *testing.T) {
	cori := machine.CoriHaswell()
	w := workflow.New("LCLS", machine.PartHaswell)
	w.Targets = workflow.Targets{MakespanSeconds: 600, ThroughputTPS: 0.01}
	for _, id := range []string{"A", "B", "C", "D", "E"} {
		if err := w.AddTask(&workflow.Task{
			ID: id, Nodes: 32, Procs: 1024,
			Work: workflow.Work{
				MemBytes:      32 * units.GB,
				FSBytes:       1 * units.TB,
				ExternalBytes: 1 * units.TB,
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AddTask(&workflow.Task{ID: "F", Nodes: 1, Work: workflow.Work{FSBytes: 5 * units.GB}}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"A", "B", "C", "D", "E"} {
		if err := w.AddDep(id, "F"); err != nil {
			t.Fatal(err)
		}
	}
	model, err := Build(cori, w, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if model.Wall != 74 {
		t.Errorf("wall = %d, want 74 (2388/32)", model.Wall)
	}
	// External ceiling: 1 TB per task @ 1 GB/s = 1000 s -> 0.001 TPS flat.
	foundExt := false
	for _, c := range model.Ceilings {
		if c.Resource == ResExternal {
			foundExt = true
			if c.Scope != ScopeSystem {
				t.Errorf("external ceiling scope = %v", c.Scope)
			}
			if !almost(c.TPSAt(5), 0.001, 1e-9) {
				t.Errorf("external ceiling = %v TPS, want 0.001", c.TPSAt(5))
			}
		}
	}
	if !foundExt {
		t.Fatal("no external ceiling built")
	}
	// At p=5 the external ceiling must bind (the paper's core LCLS claim).
	_, limit := model.Bound(5)
	if limit.Resource != ResExternal {
		t.Errorf("limiting resource = %v, want external", limit.Resource)
	}
	if model.Targets == nil || model.Targets.TotalTasks != 6 {
		t.Errorf("targets not derived: %+v", model.Targets)
	}
}

func TestBuildErrors(t *testing.T) {
	pm := machine.Perlmutter()
	// Oversized task.
	w := workflow.New("big", machine.PartGPU)
	if err := w.AddTask(&workflow.Task{ID: "t", Nodes: 4000, Work: workflow.Work{Flops: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(pm, w, BuildOptions{}); err == nil {
		t.Error("task larger than partition should fail")
	}
	// Unknown partition.
	w2 := workflow.New("x", "nope")
	if err := w2.AddTask(&workflow.Task{ID: "t", Nodes: 1, Work: workflow.Work{Flops: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(pm, w2, BuildOptions{}); err == nil {
		t.Error("unknown partition should fail")
	}
	// External bytes with no external bandwidth anywhere.
	noExt := pm.WithExternalBW(0)
	w3 := workflow.New("ext", machine.PartGPU)
	if err := w3.AddTask(&workflow.Task{ID: "t", Nodes: 1, Work: workflow.Work{ExternalBytes: 1 * units.TB}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(noExt, w3, BuildOptions{}); err == nil {
		t.Error("external bytes without external bandwidth should fail")
	}
	// Empty workflow.
	if _, err := Build(pm, workflow.New("empty", machine.PartGPU), BuildOptions{}); err == nil {
		t.Error("empty workflow should fail")
	}
}

func TestBuildOptionsOverrides(t *testing.T) {
	pm := machine.Perlmutter()
	w := workflow.New("cosmo", machine.PartGPU)
	if err := w.AddTask(&workflow.Task{
		ID: "i0", Nodes: 128,
		Work: workflow.Work{MemBytes: 26.2 * units.TB / 128, FSBytes: 2 * units.TB},
	}); err != nil {
		t.Fatal(err)
	}
	m, err := Build(pm, w, BuildOptions{AvailableNodes: 1536})
	if err != nil {
		t.Fatal(err)
	}
	if m.Wall != 12 {
		t.Errorf("wall with 1536 available nodes = %d, want 12", m.Wall)
	}
	// Overhead ceiling.
	m2, err := Build(pm, w, BuildOptions{OverheadSeconds: 5, OverheadName: "Python"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range m2.Ceilings {
		if c.Resource == ResOverhead {
			found = true
			if c.TimePerTask != 5 || !strings.Contains(c.Name, "Python") {
				t.Errorf("overhead ceiling = %+v", c)
			}
		}
	}
	if !found {
		t.Error("overhead ceiling missing")
	}
	// External override.
	w4 := workflow.New("ext", machine.PartGPU)
	if err := w4.AddTask(&workflow.Task{ID: "t", Nodes: 1, Work: workflow.Work{ExternalBytes: 1 * units.TB}}); err != nil {
		t.Fatal(err)
	}
	m3, err := Build(pm, w4, BuildOptions{ExternalBW: 5 * units.GBPS})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m3.Ceilings {
		if c.Resource == ResExternal && !almost(c.TimePerTask, 200, 1e-9) {
			t.Errorf("external override: time = %v, want 200", c.TimePerTask)
		}
	}
}

// Property: Bound is monotone non-decreasing in p and never exceeds the
// minimum single ceiling evaluated directly.
func TestQuickBoundMonotone(t *testing.T) {
	f := func(tNode, tSys uint16, p1, p2 uint8) bool {
		m := &Model{Wall: 256}
		m.AddCeiling(Ceiling{Name: "n", Scope: ScopeNode, TimePerTask: float64(tNode%500) + 0.5})
		m.AddCeiling(Ceiling{Name: "s", Scope: ScopeSystem, TimePerTask: float64(tSys%500) + 0.5})
		a, b := float64(p1%200)+1, float64(p2%200)+1
		if a > b {
			a, b = b, a
		}
		ba, _ := m.Bound(a)
		bb, _ := m.Bound(b)
		if ba > bb+1e-12 {
			return false
		}
		for _, c := range m.Ceilings {
			if v, _ := m.Bound(a); v > c.TPSAt(math.Min(a, float64(m.Wall)))+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
