package core

import (
	"encoding/json"
	"fmt"
)

// jsonCeiling is the serialized ceiling form with symbolic enums.
type jsonCeiling struct {
	Name        string  `json:"name"`
	Resource    string  `json:"resource"`
	Scope       string  `json:"scope"`
	TimePerTask float64 `json:"time_per_task_s"`
	Scenario    bool    `json:"scenario,omitempty"`
}

// jsonModel is the serialized model form.
type jsonModel struct {
	Title    string        `json:"title"`
	Wall     int           `json:"wall"`
	Ceilings []jsonCeiling `json:"ceilings"`
	Targets  *TargetLines  `json:"targets,omitempty"`
}

// resourceNames maps enums to stable strings (String() output).
var resourceByName = func() map[string]Resource {
	out := make(map[string]Resource)
	for r := ResCompute; r <= ResBisection; r++ {
		out[r.String()] = r
	}
	return out
}()

// ParseResource maps a symbolic resource name ("compute", "memory", "pcie",
// "network", "filesystem", "external", "overhead", "bisection") back to its
// enum — the inverse of Resource.String, shared by the JSON codec and the
// CLIs.
func ParseResource(name string) (Resource, error) {
	if r, ok := resourceByName[name]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("core: unknown resource %q", name)
}

// MarshalJSON serializes the model with symbolic resource and scope names,
// so external tooling (or a future non-Go plotter) can consume it.
func (m *Model) MarshalJSON() ([]byte, error) {
	jm := jsonModel{Title: m.Title, Wall: m.Wall, Targets: m.Targets}
	for _, c := range m.Ceilings {
		jm.Ceilings = append(jm.Ceilings, jsonCeiling{
			Name:        c.Name,
			Resource:    c.Resource.String(),
			Scope:       c.Scope.String(),
			TimePerTask: c.TimePerTask,
			Scenario:    c.Scenario,
		})
	}
	return json.Marshal(jm)
}

// UnmarshalJSON parses and validates a serialized model.
func (m *Model) UnmarshalJSON(data []byte) error {
	var jm jsonModel
	if err := json.Unmarshal(data, &jm); err != nil {
		return fmt.Errorf("core: decode model: %w", err)
	}
	nm := Model{Title: jm.Title, Wall: jm.Wall, Targets: jm.Targets}
	for _, jc := range jm.Ceilings {
		res, ok := resourceByName[jc.Resource]
		if !ok {
			return fmt.Errorf("core: unknown resource %q in model %q", jc.Resource, jm.Title)
		}
		var scope Scope
		switch jc.Scope {
		case "node":
			scope = ScopeNode
		case "system":
			scope = ScopeSystem
		default:
			return fmt.Errorf("core: unknown scope %q in model %q", jc.Scope, jm.Title)
		}
		nm.Ceilings = append(nm.Ceilings, Ceiling{
			Name:        jc.Name,
			Resource:    res,
			Scope:       scope,
			TimePerTask: jc.TimePerTask,
			Scenario:    jc.Scenario,
		})
	}
	if err := nm.Validate(); err != nil {
		return err
	}
	*m = nm
	return nil
}
