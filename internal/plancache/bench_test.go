package plancache

import (
	"testing"

	"wroofline/internal/wfgen"
)

func benchSpec() *wfgen.Spec {
	return &wfgen.Spec{Family: "diamond", Width: 5, Depth: 3, Payload: "512 MB"}
}

// BenchmarkPlanCache_HitParallel measures the steady-state hit path — the
// per-request overhead every plan-cache-enabled evaluation pays — under
// parallel load across a warm working set. Tracked in BENCH_9.json.
func BenchmarkPlanCache_HitParallel(b *testing.B) {
	c := New(512, 0)
	const working = 64
	keys := make([]Key, working)
	for i := range keys {
		keys[i] = key(i)
		c.Put(keys[i], i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i%working]
			i++
			if _, ok := c.Get(k); !ok {
				b.Fatal("miss on warm key")
			}
		}
	})
}

// BenchmarkPlanCache_KeyScenario measures scenario-key construction (one
// per corpus scenario, up to 1,000 per request).
func BenchmarkPlanCache_KeyScenario(b *testing.B) {
	spec := benchSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ScenarioKey(spec, "perlmutter-numa")
	}
}
