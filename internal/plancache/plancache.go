// Package plancache is the second-level evaluation cache: a sharded,
// size-bounded, content-addressed LRU keyed by the SHA-256 of a canonical
// evaluation identity, holding the expensive *construction* artifacts —
// compiled sim.Plans, built core.Models, and generated corpus scenarios —
// that the response cache above it cannot reuse.
//
// The serve tier's response cache (internal/serve) only helps when the
// request bytes recur exactly: a sweep that differs only in seed, trial
// count, batch, or snapshot cadence misses it and pays the full
// generate → build → compile pipeline again. But since compiled plans are
// immutable and safe for concurrent Run calls, and model analysis is
// read-only, the construction half of every evaluation is shareable across
// requests whose *evaluation identity* — workflow source, machine, failure
// configuration — matches. This package holds that identity → artifact map;
// internal/study consults it inside the evaluation (below admission and the
// response cache) so requests varying only per-trial knobs skip generation,
// build, and compile entirely.
//
// Correctness rests on the same determinism argument as the response cache:
// equal keys imply equal construction inputs, construction is a pure
// function of those inputs, and the cached artifacts are immutable — so a
// cache-hit evaluation is bit-identical to a fresh-compile one at any
// worker x batch geometry. The differential walls in internal/study and
// internal/serve prove it under -race.
package plancache

import (
	"crypto/sha256"
	"encoding/json"
	"sync"
	"sync/atomic"

	"wroofline/internal/sim"
	"wroofline/internal/wfgen"
)

// Key is a content address: the SHA-256 of an artifact kind plus the
// canonical evaluation identity.
type Key = [sha256.Size]byte

// Scenario is one generated corpus scenario's construction output: the
// workflow metadata and derived figures the corpus tables consume, plus the
// compiled plan itself. Everything in it is immutable after insertion —
// corpus aggregation reads the scalar fields and never touches Plan again
// (the makespan is already evaluated), but the plan rides along so future
// trial-varying corpus kinds can rerun it without recompiling.
type Scenario struct {
	// Tasks is the generated workflow's task count.
	Tasks int
	// BoundTPS and Limiting are the roofline bound at the wall and the
	// resource that binds it.
	BoundTPS float64
	Limiting string
	// Makespan is the contention-free simulated makespan.
	Makespan float64
	// Plan is the compiled simulation plan (immutable, concurrent-safe).
	Plan *sim.Plan
}

// keyPool recycles the concatenation buffer behind the key constructors so
// steady-state key hashing does not allocate (a corpus request computes one
// key per scenario — up to 1,000 per request).
var keyPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// finish hashes the assembled identity bytes and returns the buffer to the
// pool.
func finish(bp *[]byte, b []byte) Key {
	k := Key(sha256.Sum256(b))
	*bp = b[:0]
	keyPool.Put(bp)
	return k
}

// CaseKey addresses the compiled plan of a built-in case study. The case
// name alone is the evaluation identity: workloads.ByName constructs the
// same workflow, machine, and simulation configuration (including any
// baked-in failure model) for a given name every time, so one entry serves
// every trials/seed/workers/batch variation over that case.
func CaseKey(name string) Key {
	bp := keyPool.Get().(*[]byte)
	b := append((*bp)[:0], "case\x00"...)
	b = append(b, name...)
	return finish(bp, b)
}

// ScenarioKey addresses one generated corpus scenario on a machine. The
// identity is the resolved machine name plus the canonical JSON of the
// *normalized* generator spec, so written specs that differ only by
// spelled-out defaults share an entry.
//
// When CV == 0 the seed is normalized away: the generator provably never
// consults its random stream for constant-variation work (builder.factor
// returns 1 without a draw), so every seed generates the same tasks, edges,
// and volumes. The one seed-dependent output is the workflow's display
// name ("gen-<family>-w<w>-d<d>-s<seed>"), which no corpus table reads —
// scenario aggregation keys on family, not name. This is what lets
// seed-rotated corpus requests (the seed-vary mix) hit ~100%.
func ScenarioKey(spec *wfgen.Spec, machineName string) Key {
	n := spec.Normalized()
	if n.CV <= 0 {
		n.Seed = 0
	}
	data, err := json.Marshal(&n)
	if err != nil {
		// A wfgen.Spec is plain scalars and strings; Marshal cannot fail.
		panic("plancache: marshal normalized wfgen spec: " + err.Error())
	}
	bp := keyPool.Get().(*[]byte)
	b := append((*bp)[:0], "scenario\x00"...)
	b = append(b, machineName...)
	b = append(b, 0)
	b = append(b, data...)
	return finish(bp, b)
}

// ModelKey addresses a built core.Model for an inline workflow: the
// resolved machine name, the canonical external-bandwidth override (empty
// when absent), and the compacted workflow JSON. Analysis over the model
// (Analyze, Bound, BoundAtWall) is read-only, so one built model serves any
// operating-point or curve-sample variation.
func ModelKey(machineName, externalBW string, workflowJSON []byte) Key {
	bp := keyPool.Get().(*[]byte)
	b := append((*bp)[:0], "model\x00"...)
	b = append(b, machineName...)
	b = append(b, 0)
	b = append(b, externalBW...)
	b = append(b, 0)
	b = append(b, workflowJSON...)
	return finish(bp, b)
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Entries and Capacity describe occupancy.
	Entries  int
	Capacity int
	// Hits, Misses, and Evictions are cumulative since construction; Flush
	// resets none of them (a flush is an operational event, not a new cache).
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Cache is the sharded LRU. All methods are safe for concurrent use and
// safe on a nil receiver — a nil *Cache is the disabled cache (every Get
// misses without counting, every Put is dropped), so call sites thread one
// pointer through unconditionally.
type Cache struct {
	mask   byte
	shards []shard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// shard is one independently locked slice of the cache, an intrusive LRU
// list plus its index. The trailing pad keeps neighbouring shards' mutexes
// off the same cache line.
type shard struct {
	mu    sync.Mutex
	cap   int
	items map[Key]*entry
	// head.next is most recently used; head.prev least. The sentinel makes
	// every link operation branch-free.
	head entry
	_    [40]byte
}

// entry is one cache slot on its shard's intrusive ring.
type entry struct {
	key        Key
	val        any
	prev, next *entry
}

// shardCount normalizes a requested shard count exactly as the serve-layer
// response cache does: clamp to [1, 256] (the selector is one key byte),
// round up to a power of two, then halve until every shard owns at least
// two entries so small caches keep strict global LRU order.
func shardCount(capacity, requested int) int {
	n := 1
	for n < requested && n < 256 {
		n <<= 1
	}
	for n > 1 && capacity/n < 2 {
		n >>= 1
	}
	return n
}

// New creates a cache holding up to entries values in total (minimum 1),
// split across shardCount(entries, shards) shards.
func New(entries, shards int) *Cache {
	if entries < 1 {
		entries = 1
	}
	n := shardCount(entries, shards)
	c := &Cache{mask: byte(n - 1), shards: make([]shard, n)}
	base, rem := entries/n, entries%n
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cap = base
		if i < rem {
			sh.cap++
		}
		sh.head.prev = &sh.head
		sh.head.next = &sh.head
		sh.items = make(map[Key]*entry)
	}
	return c
}

// shard maps a key to its home shard by the first SHA-256 byte.
func (c *Cache) shard(k Key) *shard {
	return &c.shards[k[0]&c.mask]
}

// unlink removes e from its ring.
func unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

// pushFront inserts e as most recently used.
func (sh *shard) pushFront(e *entry) {
	e.prev = &sh.head
	e.next = sh.head.next
	e.next.prev = e
	sh.head.next = e
}

// Get returns the cached artifact and marks it most recently used. A nil
// receiver always misses (and counts nothing).
func (c *Cache) Get(k Key) (any, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shard(k)
	sh.mu.Lock()
	e, ok := sh.items[k]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	unlink(e)
	sh.pushFront(e)
	v := e.val
	sh.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores an artifact, evicting the shard's least recently used entry
// when the shard is full. Storing an existing key refreshes its recency and
// keeps the incumbent value: equal keys address equal artifacts by
// construction, so there is nothing to overwrite (and concurrent fillers
// racing on one key converge on a single shared instance). A nil receiver
// drops the value.
func (c *Cache) Put(k Key, v any) {
	if c == nil {
		return
	}
	sh := c.shard(k)
	evicted := 0
	sh.mu.Lock()
	if e, ok := sh.items[k]; ok {
		unlink(e)
		sh.pushFront(e)
		sh.mu.Unlock()
		return
	}
	e := &entry{key: k, val: v}
	sh.items[k] = e
	sh.pushFront(e)
	for len(sh.items) > sh.cap {
		last := sh.head.prev
		unlink(last)
		delete(sh.items, last.key)
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
}

// Len reports the number of cached artifacts across all shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Capacity reports the configured total capacity across shards.
func (c *Cache) Capacity() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		n += c.shards[i].cap
	}
	return n
}

// Flush empties every shard. Counters are preserved; see Stats.
func (c *Cache) Flush() {
	if c == nil {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.head.prev = &sh.head
		sh.head.next = &sh.head
		clear(sh.items)
		sh.mu.Unlock()
	}
}

// Stats snapshots the counters. A nil receiver reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Entries:   c.Len(),
		Capacity:  c.Capacity(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}
