package plancache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"wroofline/internal/wfgen"
)

// key returns a distinct test key; CaseKey is as good a generator as any.
func key(i int) Key {
	return CaseKey(fmt.Sprintf("case-%d", i))
}

func TestGetPutBasics(t *testing.T) {
	c := New(8, 1)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(key(1), "one")
	v, ok := c.Get(key(1))
	if !ok || v.(string) != "one" {
		t.Fatalf("Get(1) = %v, %v; want one, true", v, ok)
	}
	// Re-putting an existing key keeps the incumbent value.
	c.Put(key(1), "other")
	if v, _ := c.Get(key(1)); v.(string) != "one" {
		t.Fatalf("re-Put overwrote incumbent: got %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v; want 2 hits, 1 miss, 0 evictions", st)
	}
	if st.Entries != 1 || st.Capacity != 8 {
		t.Fatalf("stats = %+v; want 1 entry, capacity 8", st)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	c.Put(key(1), "x")
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("nil cache reported a hit")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v; want zeros", st)
	}
	if c.Len() != 0 || c.Capacity() != 0 {
		t.Fatal("nil cache reported occupancy")
	}
	c.Flush() // must not panic
}

// TestStrictLRUSingleShard pins the recency semantics: with one shard the
// cache is a strict global LRU, so a refreshed key survives an eviction
// that claims its colder sibling.
func TestStrictLRUSingleShard(t *testing.T) {
	c := New(4, 1)
	for i := 1; i <= 4; i++ {
		c.Put(key(i), i)
	}
	if _, ok := c.Get(key(1)); !ok { // refresh 1; 2 is now coldest
		t.Fatal("key 1 missing before eviction")
	}
	c.Put(key(5), 5)
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("key 2 should have been evicted as LRU")
	}
	for _, i := range []int{1, 3, 4, 5} {
		if _, ok := c.Get(key(i)); !ok {
			t.Fatalf("key %d evicted; want it retained", i)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d; want 1", st.Evictions)
	}
}

// TestEvictionCapacityProperty drives random put/get sequences through
// random cache geometries and checks the structural invariants the LRU
// must hold: occupancy never exceeds capacity, the items index and the
// recency rings agree, a present key round-trips its value, and the
// eviction counter balances insertions against retained entries.
func TestEvictionCapacityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		capacity := 1 + rng.Intn(40)
		shards := 1 << rng.Intn(5)
		c := New(capacity, shards)
		if got := c.Capacity(); got != capacity {
			t.Fatalf("capacity = %d; want %d", got, capacity)
		}
		inserted := 0
		for op := 0; op < 400; op++ {
			i := rng.Intn(60)
			k := key(i)
			if rng.Intn(3) == 0 {
				if v, ok := c.Get(k); ok && v.(int) != i {
					t.Fatalf("trial %d: Get(%d) returned %v", trial, i, v)
				}
				continue
			}
			// A Put only inserts when the key is absent (an evicted key
			// re-Put later is a fresh insertion); probe first so the
			// eviction balance below can count true insertions.
			if _, present := c.Get(k); !present {
				inserted++
			}
			c.Put(k, i)
		}
		st := c.Stats()
		if st.Entries > capacity {
			t.Fatalf("trial %d: %d entries over capacity %d", trial, st.Entries, capacity)
		}
		if want := uint64(inserted - st.Entries); st.Evictions != want {
			t.Fatalf("trial %d: evictions = %d; want inserted(%d) - retained(%d) = %d",
				trial, st.Evictions, inserted, st.Entries, want)
		}
		// Per-shard: index and ring must agree in size and membership.
		for si := range c.shards {
			sh := &c.shards[si]
			n := 0
			for e := sh.head.next; e != &sh.head; e = e.next {
				if sh.items[e.key] != e {
					t.Fatalf("trial %d shard %d: ring entry not in index", trial, si)
				}
				n++
			}
			if n != len(sh.items) {
				t.Fatalf("trial %d shard %d: ring %d entries, index %d", trial, si, n, len(sh.items))
			}
			if n > sh.cap {
				t.Fatalf("trial %d shard %d: %d entries over shard cap %d", trial, si, n, sh.cap)
			}
		}
		c.Flush()
		if c.Len() != 0 {
			t.Fatalf("trial %d: flush left %d entries", trial, c.Len())
		}
		if after := c.Stats(); after.Hits != st.Hits || after.Misses != st.Misses || after.Evictions != st.Evictions {
			t.Fatalf("trial %d: flush reset counters: %+v vs %+v", trial, after, st)
		}
	}
}

// TestConcurrentAccess hammers one cache from many goroutines; run under
// -race (the check.sh plancache gate does) it is the data-race proof.
func TestConcurrentAccess(t *testing.T) {
	c := New(64, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for op := 0; op < 2000; op++ {
				i := rng.Intn(200)
				if op%4 == 0 {
					c.Put(key(i), i)
				} else if v, ok := c.Get(key(i)); ok && v.(int) != i {
					t.Errorf("Get(%d) = %v", i, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > c.Capacity() {
		t.Fatalf("len %d over capacity %d", c.Len(), c.Capacity())
	}
}

func TestCaseKeyDistinct(t *testing.T) {
	if CaseKey("lcls-cori") == CaseKey("bgw-64") {
		t.Fatal("distinct cases share a key")
	}
	if CaseKey("lcls-cori") != CaseKey("lcls-cori") {
		t.Fatal("equal cases disagree")
	}
}

// TestScenarioKeySeedNormalization pins the CV==0 rule: constant-variation
// specs share one key across seeds (the generator never consults its random
// stream), while any positive CV makes the seed significant.
func TestScenarioKeySeedNormalization(t *testing.T) {
	flat := wfgen.Spec{Family: "diamond", Width: 5, Depth: 3, Payload: "512 MB"}
	a, b := flat, flat
	a.Seed, b.Seed = 1, 999
	if ScenarioKey(&a, "perlmutter") != ScenarioKey(&b, "perlmutter") {
		t.Fatal("CV==0 scenario keys differ across seeds")
	}
	noisy := flat
	noisy.CV = 0.4
	na, nb := noisy, noisy
	na.Seed, nb.Seed = 1, 999
	if ScenarioKey(&na, "perlmutter") == ScenarioKey(&nb, "perlmutter") {
		t.Fatal("CV>0 scenario keys collide across seeds")
	}
	if ScenarioKey(&a, "perlmutter") == ScenarioKey(&a, "frontier") {
		t.Fatal("scenario keys ignore the machine")
	}
	if ScenarioKey(&a, "perlmutter") == ScenarioKey(&na, "perlmutter") {
		t.Fatal("scenario keys ignore CV")
	}
}

// TestScenarioKeyNormalizedDefaults pins that spelled-out defaults and
// omitted fields address the same entry.
func TestScenarioKeyNormalizedDefaults(t *testing.T) {
	implicit := wfgen.Spec{Family: "chain"}
	explicit := wfgen.Spec{
		Family: "chain", Width: 4, Depth: 3, Partition: "cpu", NodesPerTask: 1,
		Flops: "200 GFLOP", Mem: "50 GB", Net: "1 GB", FS: "10 GB",
	}
	if ScenarioKey(&implicit, "perlmutter") != ScenarioKey(&explicit, "perlmutter") {
		t.Fatal("defaulted and spelled-out specs disagree")
	}
}

func TestModelKey(t *testing.T) {
	wf := []byte(`{"name":"w","partition":"cpu","tasks":[]}`)
	if ModelKey("perlmutter", "", wf) != ModelKey("perlmutter", "", wf) {
		t.Fatal("equal identities disagree")
	}
	if ModelKey("perlmutter", "", wf) == ModelKey("frontier", "", wf) {
		t.Fatal("model keys ignore the machine")
	}
	if ModelKey("perlmutter", "", wf) == ModelKey("perlmutter", "5 GB/s", wf) {
		t.Fatal("model keys ignore the external override")
	}
	if ModelKey("perlmutter", "", wf) == ModelKey("perlmutter", "", []byte(`{"name":"x"}`)) {
		t.Fatal("model keys ignore the workflow")
	}
}
