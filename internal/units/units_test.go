package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestConstants(t *testing.T) {
	if TB != 1e12 {
		t.Fatalf("TB = %v, want 1e12", float64(TB))
	}
	if GBPS != 1e9 {
		t.Fatalf("GBPS = %v, want 1e9", float64(GBPS))
	}
	if PFLOP != 1e15 {
		t.Fatalf("PFLOP = %v, want 1e15", float64(PFLOP))
	}
	if TFLOPS != 1e12 {
		t.Fatalf("TFLOPS = %v, want 1e12", float64(TFLOPS))
	}
}

func TestTimeToMove(t *testing.T) {
	cases := []struct {
		b    Bytes
		r    ByteRate
		want Seconds
	}{
		{1 * TB, 1 * GBPS, 1000},
		{5 * TB, 5.6 * TBPS, 5.0 / 5.6},
		{80 * GB, 100 * GBPS, 0.8},
		{0, 0, 0},
		{0, 100 * GBPS, 0},
	}
	for _, c := range cases {
		got := TimeToMove(c.b, c.r)
		if math.Abs(got-c.want) > 1e-12*math.Max(1, c.want) {
			t.Errorf("TimeToMove(%v, %v) = %v, want %v", c.b, c.r, got, c.want)
		}
	}
	if !math.IsInf(TimeToMove(1*GB, 0), 1) {
		t.Errorf("TimeToMove with zero rate should be +Inf")
	}
}

func TestTimeToCompute(t *testing.T) {
	// BGW 64-node node-ceiling check from the paper: (1164+3226) PFLOP over
	// 64 nodes at 38.8 TFLOPS/node is about 1768 s (quoted as ~1800 s).
	perNode := (1164*PFLOP + 3226*PFLOP) / 64
	got := TimeToCompute(perNode, 38.8*TFLOPS)
	if math.Abs(got-1768.0) > 1.0 {
		t.Errorf("BGW 64-node ceiling time = %.2f s, want about 1768 s", got)
	}
	if !math.IsInf(TimeToCompute(1*GFLOP, 0), 1) {
		t.Errorf("TimeToCompute with zero rate should be +Inf")
	}
}

func TestDurationRoundTrip(t *testing.T) {
	for _, s := range []Seconds{0, 0.25, 1, 17 * 60, 5100} {
		d := Duration(s)
		if got := SecondsOf(d); math.Abs(got-s) > 1e-9 {
			t.Errorf("round trip %v -> %v -> %v", s, d, got)
		}
	}
	if Duration(math.Inf(1)) != time.Duration(math.MaxInt64) {
		t.Errorf("Duration(+Inf) should saturate at MaxInt64")
	}
	if Duration(math.Inf(-1)) != time.Duration(math.MinInt64) {
		t.Errorf("Duration(-Inf) should saturate at MinInt64")
	}
}

func TestStringFormatting(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{(5.6 * TBPS).String(), "5.6 TB/s"},
		{(100 * GBPS).String(), "100 GB/s"},
		{(38.8 * TFLOPS).String(), "38.8 TFLOPS"},
		{(4 * GB).String(), "4 GB"},
		{(45 * MB).String(), "45 MB"},
		{Bytes(0).String(), "0 B"},
		{(910 * GBPS).String(), "910 GB/s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"4 GB", 4 * GB},
		{"2TB", 2 * TB},
		{"45 MB", 45 * MB},
		{"3344 MB", 3344 * MB},
		{"1024", 1024},
		{"0.5 KB", 500},
		{"1e3 B", 1000},
		{"70 gb", 70 * GB},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-6 {
			t.Errorf("ParseBytes(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
	for _, bad := range []string{"", "GB", "4 XB", "4 G", "4 GiB"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) should fail", bad)
		}
	}
}

func TestParseByteRate(t *testing.T) {
	cases := []struct {
		in   string
		want ByteRate
	}{
		{"5.6 TB/s", 5.6 * TBPS},
		{"100 GB/s", 100 * GBPS},
		{"910GB/s", 910 * GBPS},
		{"0.2 GB/s", 0.2 * GBPS},
		{"25 gb/s", 25 * GBPS},
	}
	for _, c := range cases {
		got, err := ParseByteRate(c.in)
		if err != nil {
			t.Errorf("ParseByteRate(%q): %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-3 {
			t.Errorf("ParseByteRate(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
	if _, err := ParseByteRate("5.6 TB"); err == nil {
		t.Errorf("ParseByteRate without /s should fail")
	}
}

func TestParseFlops(t *testing.T) {
	cases := []struct {
		in   string
		want Flops
	}{
		{"1164 PFLOP", 1164 * PFLOP},
		{"100 GFLOP", 100 * GFLOP},
		{"3226 PFLOPs", 3226 * PFLOP},
		{"42", 42},
	}
	for _, c := range cases {
		got, err := ParseFlops(c.in)
		if err != nil {
			t.Errorf("ParseFlops(%q): %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-3 {
			t.Errorf("ParseFlops(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
}

func TestParseFlopRate(t *testing.T) {
	cases := []struct {
		in   string
		want FlopRate
	}{
		{"38.8 TFLOPS", 38.8 * TFLOPS},
		{"9.7 TFLOP/s", 9.7 * TFLOPS},
		{"5 TFLOPS", 5 * TFLOPS},
	}
	for _, c := range cases {
		got, err := ParseFlopRate(c.in)
		if err != nil {
			t.Errorf("ParseFlopRate(%q): %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-3 {
			t.Errorf("ParseFlopRate(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
	if _, err := ParseFlopRate("38.8 TB/s"); err == nil {
		t.Errorf("ParseFlopRate of a byte rate should fail")
	}
}

// Property: formatting then parsing a byte quantity is the identity within
// rounding error introduced by the 3-decimal mantissa.
func TestQuickFormatParseBytes(t *testing.T) {
	f := func(mant uint16, scale uint8) bool {
		v := Bytes(float64(mant)) * Bytes(math.Pow(10, float64(scale%16)))
		s := v.String()
		got, err := ParseBytes(s)
		if err != nil {
			return false
		}
		if v == 0 {
			return got == 0
		}
		rel := math.Abs(float64(got-v)) / float64(v)
		return rel < 5e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TimeToMove is linear in volume and inverse in rate.
func TestQuickTimeToMoveScaling(t *testing.T) {
	f := func(volKB uint32, rateKB uint32, k uint8) bool {
		if rateKB == 0 || k == 0 {
			return true
		}
		b := Bytes(volKB) * KB
		r := ByteRate(rateKB) * KBPS
		kk := float64(k)
		t1 := TimeToMove(b, r)
		t2 := TimeToMove(Bytes(kk)*b, r)
		t3 := TimeToMove(b, ByteRate(kk)*r)
		okLinear := math.Abs(t2-kk*t1) <= 1e-9*math.Max(1, kk*t1)
		okInverse := math.Abs(t3*kk-t1) <= 1e-9*math.Max(1, t1)
		return okLinear && okInverse
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatSubUnit(t *testing.T) {
	s := Bytes(0.5).String()
	if !strings.Contains(s, "B") {
		t.Errorf("sub-unit byte format %q should mention B", s)
	}
}
