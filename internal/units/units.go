// Package units provides typed physical quantities used throughout the
// workflow roofline toolkit: byte counts, byte rates (bandwidth),
// floating-point operation counts, and floating-point rates.
//
// All quantities are SI-decimal (1 KB = 1e3 B, 1 TFLOP = 1e12 FLOP) to match
// the arithmetic in the Workflow Roofline paper (e.g. 4 x 9.7 TFLOPS = 38.8
// TFLOPS per Perlmutter GPU node, 14 x 4 x 100 GB/s = 5.6 TB/s file-system
// peak). Durations use the standard library's time.Duration; helpers convert
// to and from float64 seconds, which is the natural unit when dividing work
// by a peak rate.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Bytes is a data volume in bytes. It is a float64 so analytical models may
// express fractional averages (e.g. bytes per sample).
type Bytes float64

// ByteRate is a bandwidth in bytes per second.
type ByteRate float64

// Flops is a count of floating-point operations.
type Flops float64

// FlopRate is a floating-point execution rate in FLOP per second.
type FlopRate float64

// SI-decimal byte multiples.
const (
	B  Bytes = 1
	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12
	PB Bytes = 1e15
	EB Bytes = 1e18
)

// SI-decimal byte-rate multiples.
const (
	BPS  ByteRate = 1
	KBPS ByteRate = 1e3
	MBPS ByteRate = 1e6
	GBPS ByteRate = 1e9
	TBPS ByteRate = 1e12
	PBPS ByteRate = 1e15
)

// SI-decimal FLOP multiples.
const (
	FLOP  Flops = 1
	KFLOP Flops = 1e3
	MFLOP Flops = 1e6
	GFLOP Flops = 1e9
	TFLOP Flops = 1e12
	PFLOP Flops = 1e15
	EFLOP Flops = 1e18
)

// SI-decimal FLOP-rate multiples.
const (
	FLOPS  FlopRate = 1
	KFLOPS FlopRate = 1e3
	MFLOPS FlopRate = 1e6
	GFLOPS FlopRate = 1e9
	TFLOPS FlopRate = 1e12
	PFLOPS FlopRate = 1e15
	EFLOPS FlopRate = 1e18
)

// siPrefixes are ordered largest first for formatting.
var siPrefixes = []struct {
	symbol string
	factor float64
}{
	{"E", 1e18},
	{"P", 1e15},
	{"T", 1e12},
	{"G", 1e9},
	{"M", 1e6},
	{"K", 1e3},
	{"", 1},
}

// formatSI renders v with the largest SI prefix that keeps the mantissa >= 1,
// using up to three significant decimals and trimming trailing zeros.
func formatSI(v float64, unit string) string {
	if v == 0 {
		return "0 " + unit
	}
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	for _, p := range siPrefixes {
		if v >= p.factor {
			m := v / p.factor
			s := strconv.FormatFloat(m, 'f', 3, 64)
			s = strings.TrimRight(s, "0")
			s = strings.TrimRight(s, ".")
			return neg + s + " " + p.symbol + unit
		}
	}
	// Sub-unit values: print raw.
	s := strconv.FormatFloat(v, 'g', 4, 64)
	return neg + s + " " + unit
}

// String renders the byte count with an SI prefix, e.g. "5.6 TB".
func (b Bytes) String() string { return formatSI(float64(b), "B") }

// String renders the rate with an SI prefix, e.g. "100 GB/s".
func (r ByteRate) String() string { return formatSI(float64(r), "B/s") }

// String renders the FLOP count with an SI prefix, e.g. "1164 PFLOP" prints
// as "1.164 EFLOP".
func (f Flops) String() string { return formatSI(float64(f), "FLOP") }

// String renders the rate with an SI prefix, e.g. "38.8 TFLOPS".
func (r FlopRate) String() string { return formatSI(float64(r), "FLOPS") }

// Seconds is a convenience alias for durations expressed as float64 seconds,
// the natural result of dividing work by a peak rate.
type Seconds = float64

// TimeToMove returns the seconds needed to move b bytes at rate r.
// It returns +Inf when the rate is zero and the volume is positive, and 0
// when the volume is zero (even at zero rate).
func TimeToMove(b Bytes, r ByteRate) Seconds {
	return divideWork(float64(b), float64(r))
}

// TimeToCompute returns the seconds needed to execute f FLOPs at rate r,
// with the same zero/zero conventions as TimeToMove.
func TimeToCompute(f Flops, r FlopRate) Seconds {
	return divideWork(float64(f), float64(r))
}

func divideWork(work, rate float64) Seconds {
	if work == 0 {
		return 0
	}
	if rate == 0 {
		return math.Inf(1)
	}
	return work / rate
}

// Duration converts float64 seconds into a time.Duration, saturating at the
// representable range.
func Duration(s Seconds) time.Duration {
	if math.IsInf(s, 1) || s > math.MaxInt64/1e9 {
		return time.Duration(math.MaxInt64)
	}
	if math.IsInf(s, -1) || s < math.MinInt64/1e9 {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(s * float64(time.Second))
}

// SecondsOf converts a time.Duration into float64 seconds.
func SecondsOf(d time.Duration) Seconds { return d.Seconds() }

// parse splits a quantity string like "5.6 TB/s" into value 5.6e12 given the
// base unit ("B/s"). Accepted forms: optional whitespace between mantissa and
// unit, case-insensitive prefix and unit, and an optional "i" (binary) prefix
// is rejected since the toolkit is SI-decimal only.
func parse(s, unit string) (float64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty quantity")
	}
	// Find the split point between the numeric mantissa and the unit text.
	i := 0
	for i < len(t) {
		c := t[i]
		if (c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' || c == 'e' || c == 'E' {
			// "E" is both an exponent marker and the exa prefix. Treat a
			// trailing E followed by a letter (unit text) as the prefix.
			if c == 'e' || c == 'E' {
				if i+1 < len(t) {
					n := t[i+1]
					if (n >= '0' && n <= '9') || n == '+' || n == '-' {
						i++
						continue
					}
				}
				break
			}
			i++
			continue
		}
		break
	}
	mantissa := strings.TrimSpace(t[:i])
	rest := strings.TrimSpace(t[i:])
	if mantissa == "" {
		return 0, fmt.Errorf("units: %q has no numeric value", s)
	}
	v, err := strconv.ParseFloat(mantissa, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad number in %q: %w", s, err)
	}
	if rest == "" {
		return v, nil // bare number: base unit
	}
	lu := strings.ToLower(unit)
	lr := strings.ToLower(rest)
	if !strings.HasSuffix(lr, lu) {
		return 0, fmt.Errorf("units: %q does not end in unit %q", s, unit)
	}
	prefix := strings.TrimSpace(lr[:len(lr)-len(lu)])
	factor, ok := map[string]float64{
		"": 1, "k": 1e3, "m": 1e6, "g": 1e9, "t": 1e12, "p": 1e15, "e": 1e18,
	}[prefix]
	if !ok {
		return 0, fmt.Errorf("units: unknown SI prefix %q in %q", prefix, s)
	}
	return v * factor, nil
}

// ParseBytes parses strings like "4 GB", "2TB", "45 MB", or "1024" (bare
// numbers are bytes).
func ParseBytes(s string) (Bytes, error) {
	v, err := parse(s, "B")
	return Bytes(v), err
}

// ParseByteRate parses strings like "5.6 TB/s", "100 GB/s", or "910GB/s".
func ParseByteRate(s string) (ByteRate, error) {
	v, err := parse(s, "B/s")
	return ByteRate(v), err
}

// ParseFlops parses strings like "1164 PFLOP", "100 GFLOP", or bare FLOP
// counts. The plural "FLOPs" spelling is also accepted.
func ParseFlops(s string) (Flops, error) {
	t := strings.TrimSpace(s)
	lower := strings.ToLower(t)
	if strings.HasSuffix(lower, "flops") {
		t = t[:len(t)-1] // drop plural 's' so the unit is "FLOP"
	}
	v, err := parse(t, "FLOP")
	return Flops(v), err
}

// ParseFlopRate parses strings like "38.8 TFLOPS" or "9.7 TFLOP/s".
func ParseFlopRate(s string) (FlopRate, error) {
	t := strings.TrimSpace(s)
	lower := strings.ToLower(t)
	switch {
	case strings.HasSuffix(lower, "flop/s"):
		v, err := parse(t, "FLOP/s")
		return FlopRate(v), err
	case strings.HasSuffix(lower, "flops"):
		v, err := parse(t, "FLOPS")
		return FlopRate(v), err
	default:
		return 0, fmt.Errorf("units: %q does not end in FLOPS or FLOP/s", s)
	}
}
