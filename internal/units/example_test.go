package units_test

import (
	"fmt"

	"wroofline/internal/units"
)

// Example computes the paper's BGW node-ceiling arithmetic with typed
// quantities.
func Example() {
	perNode := (1164*units.PFLOP + 3226*units.PFLOP) / 64
	secs := units.TimeToCompute(perNode, 4*9.7*units.TFLOPS)
	fmt.Printf("%.0f s\n", secs)

	load := units.TimeToMove(70*units.GB, 5.6*units.TBPS)
	fmt.Printf("%.4f s\n", load)
	// Output:
	// 1768 s
	// 0.0125 s
}

// ExampleParseByteRate parses a bandwidth string.
func ExampleParseByteRate() {
	r, err := units.ParseByteRate("5.6 TB/s")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(r)
	// Output:
	// 5.6 TB/s
}
