package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"

	"wroofline/internal/breakdown"
	"wroofline/internal/core"
	"wroofline/internal/gantt"
	"wroofline/internal/trace"
	"wroofline/internal/workflow"
)

// wellFormed checks the SVG parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg[:min(len(svg), 2000)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func testModel() *core.Model {
	m := &core.Model{Title: "Test Roofline", Wall: 28}
	m.AddCeiling(core.Ceiling{Name: "FS 1TB @ 5.6 TB/s", Resource: core.ResFileSystem, Scope: core.ScopeSystem, TimePerTask: 0.1786})
	m.AddCeiling(core.Ceiling{Name: "Compute 100 GFLOP", Resource: core.ResCompute, Scope: core.ScopeNode, TimePerTask: 0.00258})
	m.SetTargets(workflow.Targets{MakespanSeconds: 600, ThroughputTPS: 0.01}, 6)
	return m
}

func TestRooflineSVG(t *testing.T) {
	m := testModel()
	points := []core.Point{{Label: "Good Days", ParallelTasks: 5, TPS: 0.0059, MakespanSeconds: 1020}}
	svg, err := RooflineSVG(m, points, Options{ShowZones: true})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	for _, want := range []string{
		"Test Roofline",
		"parallelism wall: 28",
		"FS 1TB @ 5.6 TB/s",
		"Compute 100 GFLOP",
		"Good Days",
		"Number of Parallel Tasks",
		"target throughput",
		"target makespan",
		"<circle",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestRooflineSVGEscapesXML(t *testing.T) {
	m := &core.Model{Title: `A <b> & "c"`, Wall: 2}
	m.AddCeiling(core.Ceiling{Name: "x<y>&", Scope: core.ScopeSystem, TimePerTask: 1})
	svg, err := RooflineSVG(m, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	if strings.Contains(svg, "x<y>") {
		t.Error("unescaped angle brackets in output")
	}
}

func TestRooflineSVGInvalidModel(t *testing.T) {
	if _, err := RooflineSVG(&core.Model{Wall: 1}, nil, Options{}); err == nil {
		t.Error("model without ceilings should fail")
	}
}

func TestRooflineSVGExplicitRanges(t *testing.T) {
	m := testModel()
	svg, err := RooflineSVG(m, nil, Options{XMin: 1, XMax: 100, YMin: 0.001, YMax: 100})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	// Bad explicit ranges must error, not panic.
	if _, err := RooflineSVG(m, nil, Options{XMin: 100, XMax: 100}); err == nil {
		t.Error("degenerate x range should fail")
	}
}

func TestRooflineASCII(t *testing.T) {
	m := testModel()
	points := []core.Point{{Label: "run", ParallelTasks: 5, TPS: 0.0059}}
	out, err := RooflineASCII(m, points, 60, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Test Roofline", "|", "o run", "parallelism wall: 28"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII missing %q:\n%s", want, out)
		}
	}
	// The envelope must contain both a diagonal segment and a horizontal
	// segment (node then system bound).
	if !strings.Contains(out, "/") {
		t.Errorf("ASCII missing node-bound envelope marks:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("ASCII missing system-bound envelope marks:\n%s", out)
	}
	if _, err := RooflineASCII(&core.Model{Wall: 1}, nil, 60, 16); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestLogScale(t *testing.T) {
	s := LogScale{Min: 1, Max: 100, PixMin: 0, PixMax: 200}
	if !s.Valid() {
		t.Fatal("scale should be valid")
	}
	if got := s.Pos(1); got != 0 {
		t.Errorf("Pos(1) = %v", got)
	}
	if got := s.Pos(100); got != 200 {
		t.Errorf("Pos(100) = %v", got)
	}
	if got := s.Pos(10); math.Abs(got-100) > 1e-9 {
		t.Errorf("Pos(10) = %v, want 100 (log midpoint)", got)
	}
	// Clamping.
	if got := s.Pos(0.001); got != 0 {
		t.Errorf("Pos below min = %v", got)
	}
	if got := s.Pos(1e9); got != 200 {
		t.Errorf("Pos above max = %v", got)
	}
	ticks := s.Ticks()
	if len(ticks) != 3 || ticks[0] != 1 || ticks[1] != 10 || ticks[2] != 100 {
		t.Errorf("ticks = %v", ticks)
	}
	bad := LogScale{Min: 0, Max: 10, PixMin: 0, PixMax: 1}
	if bad.Valid() {
		t.Error("zero min should be invalid")
	}
	inverted := LogScale{Min: 1, Max: 10, PixMin: 100, PixMax: 0}
	if got := inverted.Pos(10); got != 0 {
		t.Errorf("inverted Pos(10) = %v", got)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		1:       "1",
		0.01:    "0.01",
		5.6:     "5.6",
		1000:    "1000",
		10000:   "1e4",
		0.001:   "1e-3",
		1000000: "1e6",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestGanttSVG(t *testing.T) {
	rec := trace.NewRecorder()
	for _, s := range []trace.Span{
		{Task: "epsilon", Phase: "compute", Start: 0, End: 490},
		{Task: "sigma", Phase: "compute", Start: 490, End: 1779},
	} {
		if err := rec.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	ch, err := gantt.FromRecorder("BGW Gantt", rec, []string{"epsilon", "sigma"})
	if err != nil {
		t.Fatal(err)
	}
	svg, err := GanttSVG(ch, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	for _, want := range []string{"BGW Gantt", "epsilon", "sigma", "Time (s)", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("Gantt SVG missing %q", want)
		}
	}
	if _, err := GanttSVG(&gantt.Chart{}, 0, 0); err == nil {
		t.Error("empty chart should fail")
	}
	if _, err := GanttSVG(nil, 0, 0); err == nil {
		t.Error("nil chart should fail")
	}
}

func TestBreakdownSVG(t *testing.T) {
	ch := breakdown.New("GPTune breakdown", "python", "load data", "bash", "application", "model and search")
	if err := ch.Add("RCI", map[string]float64{"python": 290, "load data": 30, "bash": 210, "application": 13, "model and search": 10}); err != nil {
		t.Fatal(err)
	}
	if err := ch.Add("Spawn", map[string]float64{"python": 205, "load data": 0.02, "application": 13, "model and search": 10}); err != nil {
		t.Fatal(err)
	}
	svg, err := BreakdownSVG(ch, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	for _, want := range []string{"GPTune breakdown", "RCI", "Spawn", "python", "Time (s)"} {
		if !strings.Contains(svg, want) {
			t.Errorf("breakdown SVG missing %q", want)
		}
	}
	if _, err := BreakdownSVG(breakdown.New("e"), 0, 0); err == nil {
		t.Error("empty chart should fail")
	}
}

func TestCanvasPrimitives(t *testing.T) {
	c := NewCanvas(10, 10) // clamped to 64x64
	if c.Width() != 64 || c.Height() != 64 {
		t.Errorf("clamp: %dx%d", c.Width(), c.Height())
	}
	c.Line(0, 0, 10, 10, "red", 1, "2 2")
	c.Rect(1, 1, 5, 5, "blue", "black", 0.5)
	c.Circle(3, 3, 2, "green", "")
	c.Text(1, 1, "hi & <bye>", 10, "black", "middle")
	c.Polyline([]float64{0, 1, 2}, []float64{0, 1, 0}, "gray", 1)
	c.Polygon([]float64{0, 1, 2}, []float64{0, 1, 0}, "gray", 0.2)
	// Degenerate shapes are dropped, not emitted.
	c.Polyline([]float64{0}, []float64{0}, "gray", 1)
	c.Polygon([]float64{0, 1}, []float64{0, 1}, "gray", 0.2)
	svg := c.String()
	wellFormed(t, svg)
	for _, want := range []string{"<line", "<rect", "<circle", "<text", "<polyline", "<polygon", "hi &amp; &lt;bye&gt;"} {
		if !strings.Contains(svg, want) {
			t.Errorf("canvas missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 1 {
		t.Error("degenerate polyline should be dropped")
	}
	if strings.Count(svg, "<polygon") != 1 {
		t.Error("degenerate polygon should be dropped")
	}
}

func TestFnumHandlesNonFinite(t *testing.T) {
	if fnum(math.NaN()) != "0" || fnum(math.Inf(1)) != "0" {
		t.Error("non-finite pixel values should collapse to 0, not break the SVG")
	}
	if fnum(2.5) != "2.5" || fnum(3) != "3" {
		t.Errorf("fnum formatting: %q %q", fnum(2.5), fnum(3))
	}
}

func TestShadeBoundClass(t *testing.T) {
	m := testModel()
	svg, err := RooflineSVG(m, nil, Options{ShadeBoundClass: true})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	// Both strip colors appear: blue (node bound at small p) and orange
	// (system bound toward the wall).
	if !strings.Contains(svg, "#2a78d6") {
		t.Error("node-bound strips missing")
	}
	if !strings.Contains(svg, "#eb6834") {
		t.Error("system-bound strips missing")
	}
	// Strips are many small rects; without the flag their count drops.
	plain, err := RooflineSVG(m, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg, "<rect") <= strings.Count(plain, "<rect")+10 {
		t.Error("bound-class shading should add strip rects")
	}
}
