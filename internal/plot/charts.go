package plot

import (
	"fmt"

	"wroofline/internal/breakdown"
	"wroofline/internal/gantt"
)

// GanttSVG renders a Gantt chart (Fig 7d): one row per task, critical-path
// bars in the accent hue, a time axis in seconds.
func GanttSVG(ch *gantt.Chart, width, height int) (string, error) {
	if ch == nil || len(ch.Bars) == 0 {
		return "", fmt.Errorf("plot: empty gantt chart")
	}
	if width <= 0 {
		width = 860
	}
	if height <= 0 {
		height = 80 + 34*len(ch.Bars)
	}
	const (
		marginL = 110.0
		marginR = 24.0
		marginT = 40.0
		marginB = 44.0
	)
	c := NewCanvas(width, height)
	w, h := float64(c.Width()), float64(c.Height())

	minStart, maxEnd := ch.Bars[0].Start, ch.Bars[0].End
	for _, b := range ch.Bars {
		if b.Start < minStart {
			minStart = b.Start
		}
		if b.End > maxEnd {
			maxEnd = b.End
		}
	}
	span := maxEnd - minStart
	if span <= 0 {
		span = 1
	}
	xpos := func(t float64) float64 {
		return marginL + (t-minStart)/span*(w-marginL-marginR)
	}

	// Time axis with five ticks.
	for i := 0; i <= 5; i++ {
		t := minStart + span*float64(i)/5
		px := xpos(t)
		c.Line(px, marginT, px, h-marginB, colGrid, 1, "")
		c.Text(px, h-marginB+16, fmt.Sprintf("%.4g", t), 11, colTextMuted, "middle")
	}

	rowH := (h - marginT - marginB) / float64(len(ch.Bars))
	barH := rowH * 0.6
	for i, b := range ch.Bars {
		y := marginT + rowH*float64(i) + (rowH-barH)/2
		col := seriesColors[0]
		if b.OnCriticalPath {
			col = seriesColors[5] // accent for the critical path
		}
		bw := xpos(b.End) - xpos(b.Start)
		if bw < 2 {
			bw = 2 // always visible
		}
		c.Rect(xpos(b.Start), y, bw, barH, col, "white", 0.9)
		c.Text(marginL-8, y+barH/2+4, b.Task, 11, colText, "end")
		c.Text(xpos(b.End)+4, y+barH/2+4, fmt.Sprintf("%.4gs", b.Duration()), 10, colTextMuted, "start")
	}

	c.Text(w/2, 20, ch.Title, 14, colText, "middle")
	c.Text(w/2, h-8, "Time (s)", 12, colText, "middle")
	return c.String(), nil
}

// BreakdownSVG renders a stacked time breakdown (Fig 5b, Fig 10b): one
// column per scenario, segments in fixed category order with 2px surface
// gaps, totals labeled above each stack.
func BreakdownSVG(ch *breakdown.Chart, width, height int) (string, error) {
	bars := ch.Bars()
	if len(bars) == 0 {
		return "", fmt.Errorf("plot: empty breakdown chart")
	}
	if width <= 0 {
		width = 520
	}
	if height <= 0 {
		height = 420
	}
	const (
		marginL = 64.0
		marginR = 24.0
		marginT = 44.0
		marginB = 88.0
	)
	c := NewCanvas(width, height)
	w, h := float64(c.Width()), float64(c.Height())
	maxTotal := ch.MaxTotal()
	if maxTotal <= 0 {
		maxTotal = 1
	}
	plotH := h - marginT - marginB
	ypix := func(v float64) float64 { return v / maxTotal * plotH }

	// Y grid.
	for i := 0; i <= 4; i++ {
		v := maxTotal * float64(i) / 4
		py := h - marginB - ypix(v)
		c.Line(marginL, py, w-marginR, py, colGrid, 1, "")
		c.Text(marginL-6, py+4, fmt.Sprintf("%.4g", v), 11, colTextMuted, "end")
	}

	cats := ch.CategoryOrder()
	colW := (w - marginL - marginR) / float64(len(bars))
	barW := colW * 0.5
	for i, b := range bars {
		x := marginL + colW*float64(i) + (colW-barW)/2
		yCursor := h - marginB
		for ci, cat := range cats {
			v := b.Segments[cat]
			if v <= 0 {
				continue
			}
			segH := ypix(v)
			yCursor -= segH
			// 2px surface gap between stacked segments.
			drawH := segH - 2
			if drawH < 1 {
				drawH = segH
			}
			c.Rect(x, yCursor, barW, drawH, seriesColors[ci%len(seriesColors)], "", 0.95)
		}
		c.Text(x+barW/2, yCursor-6, fmt.Sprintf("%.4gs", b.Total()), 11, colText, "middle")
		c.Text(x+barW/2, h-marginB+16, b.Label, 12, colText, "middle")
	}

	// Legend row under the bar labels (>= 2 categories always legended).
	lx := marginL
	ly := h - marginB + 40
	for ci, cat := range cats {
		c.Rect(lx, ly-9, 10, 10, seriesColors[ci%len(seriesColors)], "", 0.95)
		c.Text(lx+14, ly, cat, 11, colText, "start")
		lx += 18 + 7*float64(len(cat)) + 16
	}

	c.Text(w/2, 20, ch.Title, 14, colText, "middle")
	c.Text(16, marginT-14, "Time (s)", 12, colText, "start")
	return c.String(), nil
}
