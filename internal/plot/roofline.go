package plot

import (
	"fmt"
	"math"
	"strings"

	"wroofline/internal/core"
)

// Palette roles (validated categorical palette, light mode). Ceilings take
// series hues in fixed slot order; zones use low-opacity status fills; text
// wears ink tokens, never series colors.
const (
	colText      = "#0b0b0b"
	colTextMuted = "#52514e"
	colGrid      = "#d9d8d4"
	colWall      = "#0b0b0b"
	colPoint     = "#0b0b0b"
	colUnattain  = "#52514e"
	colZoneGood  = "#008300" // good makespan + good throughput
	colZoneWarn  = "#eda100" // one target met
	colZoneBad   = "#e34948" // neither met
	colTarget    = "#52514e"
)

// seriesColors is the fixed categorical order for ceilings.
var seriesColors = []string{
	"#2a78d6", // blue
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
	"#e87ba4", // magenta
	"#eb6834", // orange
}

// Options tunes roofline rendering.
type Options struct {
	// Width and Height are the SVG pixel size (defaults 860x560).
	Width, Height int
	// XMin, XMax, YMin, YMax override the automatic log ranges (0 = auto).
	XMin, XMax, YMin, YMax float64
	// ShowZones shades the four target zones of Fig 2a when the model has
	// targets.
	ShowZones bool
	// ShadeBoundClass colors the attainable area below the envelope by the
	// kind of the binding resource — node-local (blue) vs shared-system
	// (orange) — reproducing the Fig 3 interpretation view.
	ShadeBoundClass bool
}

// autoRange derives plot ranges covering the wall, ceilings, points, and
// targets with a decade of headroom.
func autoRange(m *core.Model, points []core.Point, o *Options) {
	if o.Width <= 0 {
		o.Width = 860
	}
	if o.Height <= 0 {
		o.Height = 560
	}
	if o.XMin <= 0 {
		o.XMin = 0.5
	}
	if o.XMax <= 0 {
		o.XMax = float64(m.Wall) * 4
		for _, p := range points {
			if p.ParallelTasks*2 > o.XMax {
				o.XMax = p.ParallelTasks * 2
			}
		}
	}
	if o.YMin <= 0 || o.YMax <= 0 {
		lo, hi := math.Inf(1), math.Inf(-1)
		consider := func(v float64) {
			if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				return
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		for _, c := range m.Ceilings {
			consider(c.TPSAt(1))
			consider(c.TPSAt(float64(m.Wall)))
		}
		for _, p := range points {
			consider(p.TPS)
		}
		if m.Targets != nil {
			consider(m.Targets.ThroughputTPS)
			consider(m.Targets.MakespanTPS())
		}
		if math.IsInf(lo, 1) {
			lo, hi = 0.001, 10
		}
		if o.YMin <= 0 {
			o.YMin = lo / 10
		}
		if o.YMax <= 0 {
			o.YMax = hi * 10
		}
	}
}

// RooflineSVG renders the model and empirical points as an SVG document.
func RooflineSVG(m *core.Model, points []core.Point, opts Options) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	autoRange(m, points, &opts)

	const (
		marginL = 74.0
		marginR = 24.0
		marginT = 34.0
		marginB = 52.0
	)
	c := NewCanvas(opts.Width, opts.Height)
	w, h := float64(c.Width()), float64(c.Height())
	xs := LogScale{Min: opts.XMin, Max: opts.XMax, PixMin: marginL, PixMax: w - marginR}
	ys := LogScale{Min: opts.YMin, Max: opts.YMax, PixMin: h - marginB, PixMax: marginT}
	if !xs.Valid() || !ys.Valid() {
		return "", fmt.Errorf("plot: invalid ranges x=[%g,%g] y=[%g,%g]",
			opts.XMin, opts.XMax, opts.YMin, opts.YMax)
	}

	// Grid and ticks.
	for _, tv := range xs.Ticks() {
		px := xs.Pos(tv)
		c.Line(px, marginT, px, h-marginB, colGrid, 1, "")
		c.Text(px, h-marginB+16, formatTick(tv), 11, colTextMuted, "middle")
	}
	for _, tv := range ys.Ticks() {
		py := ys.Pos(tv)
		c.Line(marginL, py, w-marginR, py, colGrid, 1, "")
		c.Text(marginL-6, py+4, formatTick(tv), 11, colTextMuted, "end")
	}

	wallX := xs.Pos(float64(m.Wall))

	// Zones (Fig 2a) or the unattainable region beyond the wall.
	if opts.ShowZones && m.Targets != nil {
		drawZones(c, m, xs, ys, marginT, h-marginB, wallX)
	}
	// Grey the region beyond the wall.
	c.Rect(wallX, marginT, xs.PixMax-wallX, h-marginB-marginT, colUnattain, "", 0.15)

	if opts.ShadeBoundClass {
		shadeBoundClass(c, m, xs, ys, h-marginB, wallX)
	}

	// Ceilings: solid up to the wall, dashed beyond (unreachable).
	for i, ceil := range m.Ceilings {
		col := seriesColors[i%len(seriesColors)]
		drawCeiling(c, ceil, xs, ys, wallX, col)
	}

	// Wall.
	c.Line(wallX, marginT, wallX, h-marginB, colWall, 2, "")
	c.Text(wallX+4, marginT+12, fmt.Sprintf("parallelism wall: %d", m.Wall), 11, colText, "start")

	// Targets (dashed).
	if m.Targets != nil {
		if tp := m.Targets.ThroughputTPS; tp > 0 {
			py := ys.Pos(tp)
			c.Line(marginL, py, w-marginR, py, colTarget, 1.5, "6 4")
			c.Text(w-marginR-4, py-4, fmt.Sprintf("target throughput %.3g TPS", tp), 11, colTextMuted, "end")
		}
		if mt := m.Targets.MakespanTPS(); mt > 0 {
			py := ys.Pos(mt)
			c.Line(marginL, py, w-marginR, py, colTarget, 1.5, "2 3")
			c.Text(w-marginR-4, py+12, fmt.Sprintf("target makespan %.4gs", m.Targets.MakespanSeconds), 11, colTextMuted, "end")
		}
	}

	// Points.
	for _, p := range points {
		px, py := xs.Pos(p.ParallelTasks), ys.Pos(p.TPS)
		c.Circle(px, py, 5, colPoint, "white")
		label := p.Label
		if p.MakespanSeconds > 0 {
			label = fmt.Sprintf("%s (%.4gs)", p.Label, p.MakespanSeconds)
		}
		c.Text(px+8, py-6, label, 11, colText, "start")
	}

	// Axis labels and title.
	c.Text(w/2, h-10, "Number of Parallel Tasks", 13, colText, "middle")
	c.Text(14, marginT-14, "Throughput [tasks/sec]", 13, colText, "start")
	c.Text(w/2, 18, m.Title, 14, colText, "middle")

	return c.String(), nil
}

// drawCeiling renders one bound: node ceilings are diagonals, system
// ceilings horizontals; both turn dashed beyond the wall, and scenario
// (what-if) ceilings are dashed throughout.
func drawCeiling(c *Canvas, ceil core.Ceiling, xs, ys LogScale, wallX float64, col string) {
	y := func(x float64) float64 { return ys.Pos(ceil.TPSAt(x)) }
	wall := wallAt(xs, wallX)
	if ceil.Scenario {
		c.Line(xs.Pos(xs.Min), y(xs.Min), wallX, y(wall), col, 1.5, "7 3")
	} else {
		// Solid segment [xmin, wall].
		c.Polyline(
			[]float64{xs.Pos(xs.Min), wallX},
			[]float64{y(xs.Min), y(wall)},
			col, 2)
	}
	// Dashed segment beyond the wall.
	if wallX < xs.PixMax-1 {
		c.Line(wallX, y(wall), xs.PixMax, y(xs.Max), col, 1.5, "4 4")
	}
	// Label near the left end, just above the line.
	c.Text(xs.Pos(xs.Min)+6, y(xs.Min)-5, ceil.Name, 11, col, "start")
}

// wallAt inverts the pixel position of the wall back into data space.
func wallAt(xs LogScale, wallX float64) float64 {
	f := (wallX - xs.PixMin) / (xs.PixMax - xs.PixMin)
	return math.Pow(10, math.Log10(xs.Min)+f*(math.Log10(xs.Max)-math.Log10(xs.Min)))
}

// drawZones shades the Fig 2a quadrants: the two horizontal target lines
// split the y range into bands (above both = green, between = amber, below
// both = red).
func drawZones(c *Canvas, m *core.Model, xs, ys LogScale, top, bottom, wallX float64) {
	t1 := m.Targets.ThroughputTPS
	t2 := m.Targets.MakespanTPS()
	ysOf := func(v float64) float64 {
		if v <= 0 {
			return bottom
		}
		return ys.Pos(v)
	}
	hi, lo := math.Max(t1, t2), math.Min(t1, t2)
	if lo <= 0 {
		lo = hi
	}
	if hi <= 0 {
		return
	}
	left := xs.PixMin
	width := wallX - left
	yHi, yLo := ysOf(hi), ysOf(lo)
	// Above both targets.
	c.Rect(left, top, width, math.Max(0, yHi-top), colZoneGood, "", 0.10)
	// Between the targets.
	if yLo > yHi {
		c.Rect(left, yHi, width, yLo-yHi, colZoneWarn, "", 0.10)
	}
	// Below both targets.
	c.Rect(left, yLo, width, math.Max(0, bottom-yLo), colZoneBad, "", 0.10)
}

// shadeBoundClass fills the attainable region (under the bound envelope,
// left of the wall) in per-column strips colored by the binding resource
// kind: blue where a node-local resource binds, orange where a shared
// system resource does (the paper's Fig 3 split).
func shadeBoundClass(c *Canvas, m *core.Model, xs, ys LogScale, bottom, wallX float64) {
	const strips = 96
	left := xs.PixMin
	width := wallX - left
	if width <= 0 {
		return
	}
	stripW := width / strips
	for i := 0; i < strips; i++ {
		px := left + stripW*float64(i)
		// Invert the strip midpoint back to data space.
		f := (px + stripW/2 - xs.PixMin) / (xs.PixMax - xs.PixMin)
		x := math.Pow(10, math.Log10(xs.Min)+f*(math.Log10(xs.Max)-math.Log10(xs.Min)))
		bound, limit := m.Bound(x)
		if math.IsInf(bound, 1) || bound <= 0 {
			continue
		}
		top := ys.Pos(bound)
		if top >= bottom {
			continue
		}
		col := seriesColors[0] // blue: node bound
		if !core.NodeResource(limit.Resource) {
			col = seriesColors[7] // orange: system bound
		}
		c.Rect(px, top, stripW+0.5, bottom-top, col, "", 0.12)
	}
}

// RooflineASCII renders a compact terminal view: the attainable envelope
// ('*'), the wall ('|'), and empirical points ('o'), with a legend of
// ceilings below.
func RooflineASCII(m *core.Model, points []core.Point, width, height int) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	if width < 20 {
		width = 60
	}
	if height < 8 {
		height = 18
	}
	opts := Options{Width: 860, Height: 560}
	autoRange(m, points, &opts)
	xs := LogScale{Min: opts.XMin, Max: opts.XMax, PixMin: 0, PixMax: float64(width - 1)}
	ys := LogScale{Min: opts.YMin, Max: opts.YMax, PixMin: float64(height - 1), PixMax: 0}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	// Envelope per column.
	for colIdx := 0; colIdx < width; colIdx++ {
		f := float64(colIdx) / float64(width-1)
		x := math.Pow(10, math.Log10(xs.Min)+f*(math.Log10(xs.Max)-math.Log10(xs.Min)))
		bound, limit := m.Bound(x)
		if math.IsInf(bound, 1) {
			continue
		}
		row := int(math.Round(ys.Pos(bound)))
		if row < 0 || row >= height {
			continue
		}
		mark := byte('*')
		if x > float64(m.Wall) {
			mark = '.'
		} else if limit.Scope == core.ScopeNode {
			mark = '/'
		} else {
			mark = '-'
		}
		grid[row][colIdx] = mark
	}
	// Wall column.
	wallCol := int(math.Round(xs.Pos(float64(m.Wall))))
	if wallCol >= 0 && wallCol < width {
		for r := 0; r < height; r++ {
			if grid[r][wallCol] == ' ' {
				grid[r][wallCol] = '|'
			}
		}
	}
	// Points.
	for _, p := range points {
		colIdx := int(math.Round(xs.Pos(p.ParallelTasks)))
		row := int(math.Round(ys.Pos(p.TPS)))
		if colIdx >= 0 && colIdx < width && row >= 0 && row < height {
			grid[row][colIdx] = 'o'
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  [y: %.3g..%.3g TPS, x: %.3g..%.3g tasks, log-log]\n",
		m.Title, opts.YMin, opts.YMax, opts.XMin, opts.XMax)
	for _, row := range grid {
		sb.WriteString(string(row))
		sb.WriteByte('\n')
	}
	for _, ceil := range m.Ceilings {
		kind := "-"
		if ceil.Scope == core.ScopeNode {
			kind = "/"
		}
		fmt.Fprintf(&sb, "%s %s\n", kind, ceil.Name)
	}
	fmt.Fprintf(&sb, "| parallelism wall: %d tasks\n", m.Wall)
	for _, p := range points {
		fmt.Fprintf(&sb, "o %s: p=%.4g, %.4g TPS\n", p.Label, p.ParallelTasks, p.TPS)
	}
	return sb.String(), nil
}
