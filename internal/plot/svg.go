// Package plot renders Workflow Roofline charts, Gantt charts, and stacked
// time-breakdown bars as SVG, plus an ASCII roofline for terminals. It uses
// only the standard library: the paper's artifact is a set of matplotlib
// scripts, and this package is their native-Go replacement.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// ContentTypeSVG is the MIME type every renderer in this package produces;
// HTTP consumers (the wfserved figure endpoint) serve it verbatim.
const ContentTypeSVG = "image/svg+xml"

// Canvas is a minimal SVG surface with pixel coordinates: (0,0) top-left.
type Canvas struct {
	width, height int
	body          strings.Builder
}

// NewCanvas creates a canvas of the given pixel size (clamped to >= 64).
func NewCanvas(width, height int) *Canvas {
	if width < 64 {
		width = 64
	}
	if height < 64 {
		height = 64
	}
	return &Canvas{width: width, height: height}
}

// Width returns the canvas width in pixels.
func (c *Canvas) Width() int { return c.width }

// Height returns the canvas height in pixels.
func (c *Canvas) Height() int { return c.height }

// esc escapes text for XML attribute/content positions.
var esc = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

// fnum formats a pixel coordinate compactly.
func fnum(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
}

// Line draws a stroked segment. dash is an SVG dash pattern ("" = solid).
func (c *Canvas) Line(x1, y1, x2, y2 float64, stroke string, width float64, dash string) {
	d := ""
	if dash != "" {
		d = fmt.Sprintf(` stroke-dasharray="%s"`, esc.Replace(dash))
	}
	fmt.Fprintf(&c.body, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="%s"%s/>`+"\n",
		fnum(x1), fnum(y1), fnum(x2), fnum(y2), esc.Replace(stroke), fnum(width), d)
}

// Rect draws a filled rectangle with optional stroke ("" = none).
func (c *Canvas) Rect(x, y, w, h float64, fill, stroke string, opacity float64) {
	s := ""
	if stroke != "" {
		s = fmt.Sprintf(` stroke="%s"`, esc.Replace(stroke))
	}
	fmt.Fprintf(&c.body, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s" fill-opacity="%s"%s/>`+"\n",
		fnum(x), fnum(y), fnum(w), fnum(h), esc.Replace(fill), fnum(opacity), s)
}

// Circle draws a filled circle.
func (c *Canvas) Circle(cx, cy, r float64, fill, stroke string) {
	s := ""
	if stroke != "" {
		s = fmt.Sprintf(` stroke="%s"`, esc.Replace(stroke))
	}
	fmt.Fprintf(&c.body, `<circle cx="%s" cy="%s" r="%s" fill="%s"%s/>`+"\n",
		fnum(cx), fnum(cy), fnum(r), esc.Replace(fill), s)
}

// Text draws a label. anchor is "start", "middle", or "end".
func (c *Canvas) Text(x, y float64, s string, size float64, fill, anchor string) {
	if anchor == "" {
		anchor = "start"
	}
	fmt.Fprintf(&c.body,
		`<text x="%s" y="%s" font-size="%s" font-family="sans-serif" fill="%s" text-anchor="%s">%s</text>`+"\n",
		fnum(x), fnum(y), fnum(size), esc.Replace(fill), esc.Replace(anchor), esc.Replace(s))
}

// Polyline draws a connected stroke through the points.
func (c *Canvas) Polyline(xs, ys []float64, stroke string, width float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return
	}
	var pts strings.Builder
	for i := range xs {
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%s,%s", fnum(xs[i]), fnum(ys[i]))
	}
	fmt.Fprintf(&c.body, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%s"/>`+"\n",
		pts.String(), esc.Replace(stroke), fnum(width))
}

// Polygon draws a filled closed shape.
func (c *Canvas) Polygon(xs, ys []float64, fill string, opacity float64) {
	if len(xs) != len(ys) || len(xs) < 3 {
		return
	}
	var pts strings.Builder
	for i := range xs {
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%s,%s", fnum(xs[i]), fnum(ys[i]))
	}
	fmt.Fprintf(&c.body, `<polygon points="%s" fill="%s" fill-opacity="%s"/>`+"\n",
		pts.String(), esc.Replace(fill), fnum(opacity))
}

// String assembles the complete SVG document.
func (c *Canvas) String() string {
	return fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n"+
			`<rect x="0" y="0" width="%d" height="%d" fill="white"/>`+"\n%s</svg>\n",
		c.width, c.height, c.width, c.height, c.width, c.height, c.body.String())
}

// LogScale maps a positive data range onto a pixel range logarithmically.
// PixMin may exceed PixMax (SVG y grows downward).
type LogScale struct {
	// Min and Max bound the data range (both must be positive, Min < Max).
	Min, Max float64
	// PixMin and PixMax are the pixel positions of Min and Max.
	PixMin, PixMax float64
}

// Valid reports whether the scale is usable.
func (s LogScale) Valid() bool {
	return s.Min > 0 && s.Max > s.Min &&
		!math.IsInf(s.Max, 0) && !math.IsNaN(s.Min) && !math.IsNaN(s.Max) &&
		s.PixMin != s.PixMax
}

// Pos maps a data value to a pixel position, clamping to the range.
func (s LogScale) Pos(v float64) float64 {
	if v < s.Min {
		v = s.Min
	}
	if v > s.Max {
		v = s.Max
	}
	f := (math.Log10(v) - math.Log10(s.Min)) / (math.Log10(s.Max) - math.Log10(s.Min))
	return s.PixMin + f*(s.PixMax-s.PixMin)
}

// Ticks returns decade tick values within [Min, Max].
func (s LogScale) Ticks() []float64 {
	var out []float64
	lo := math.Ceil(math.Log10(s.Min) - 1e-9)
	hi := math.Floor(math.Log10(s.Max) + 1e-9)
	for e := lo; e <= hi; e++ {
		out = append(out, math.Pow(10, e))
	}
	return out
}

// formatTick renders a tick value compactly (1e-3 style below 0.01 and
// above 10000).
func formatTick(v float64) string {
	if v >= 0.01 && v < 10000 {
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	}
	return fmt.Sprintf("1e%d", int(math.Round(math.Log10(v))))
}
