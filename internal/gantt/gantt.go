// Package gantt builds Gantt-chart models from execution spans (the
// paper's Fig 7d) and renders them as text. SVG rendering lives in
// internal/plot.
package gantt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"wroofline/internal/trace"
)

// Bar is one task's contiguous window on the chart.
type Bar struct {
	// Task is the task id.
	Task string
	// Start and End are in seconds.
	Start, End float64
	// OnCriticalPath marks bars belonging to the critical path.
	OnCriticalPath bool
}

// Duration returns End - Start.
func (b Bar) Duration() float64 { return b.End - b.Start }

// Chart is an ordered set of bars (one per task, ordered by start time,
// then task id).
type Chart struct {
	// Title labels the chart.
	Title string
	// Bars holds one bar per task.
	Bars []Bar
	// Makespan is the overall duration.
	Makespan float64
}

// FromRecorder builds a chart from recorded spans, one bar per task
// spanning its earliest start to latest end. criticalPath (optional) marks
// the named tasks.
func FromRecorder(title string, rec *trace.Recorder, criticalPath []string) (*Chart, error) {
	if rec == nil || rec.Len() == 0 {
		return nil, fmt.Errorf("gantt: no spans recorded")
	}
	onCP := make(map[string]bool, len(criticalPath))
	for _, id := range criticalPath {
		onCP[id] = true
	}
	c := &Chart{Title: title, Makespan: rec.Makespan()}
	for _, task := range rec.Tasks() {
		start, end, ok := rec.TaskWindow(task)
		if !ok {
			continue
		}
		c.Bars = append(c.Bars, Bar{Task: task, Start: start, End: end, OnCriticalPath: onCP[task]})
	}
	sort.Slice(c.Bars, func(i, j int) bool {
		if c.Bars[i].Start != c.Bars[j].Start {
			return c.Bars[i].Start < c.Bars[j].Start
		}
		return c.Bars[i].Task < c.Bars[j].Task
	})
	return c, nil
}

// CriticalPathBars returns the bars on the critical path in start order.
func (c *Chart) CriticalPathBars() []Bar {
	var out []Bar
	for _, b := range c.Bars {
		if b.OnCriticalPath {
			out = append(out, b)
		}
	}
	return out
}

// Render draws the chart as fixed-width text, e.g.:
//
//	epsilon  |#####================              |  0.0 - 490.0
//	sigma    |     ###############################| 490.0 - 1779.0
//
// '#' marks critical-path bars, '=' the others. width is the number of
// character cells for the time axis (minimum 10).
func (c *Chart) Render(width int) string {
	if width < 10 {
		width = 10
	}
	if len(c.Bars) == 0 {
		return ""
	}
	minStart, maxEnd := math.Inf(1), math.Inf(-1)
	nameWidth := 0
	for _, b := range c.Bars {
		if b.Start < minStart {
			minStart = b.Start
		}
		if b.End > maxEnd {
			maxEnd = b.End
		}
		if len(b.Task) > nameWidth {
			nameWidth = len(b.Task)
		}
	}
	span := maxEnd - minStart
	if span <= 0 {
		span = 1
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s (makespan %.4gs)\n", c.Title, c.Makespan)
	}
	for _, b := range c.Bars {
		lo := int(math.Round((b.Start - minStart) / span * float64(width)))
		hi := int(math.Round((b.End - minStart) / span * float64(width)))
		if hi <= lo {
			hi = lo + 1 // always visible
		}
		if hi > width {
			hi = width
		}
		mark := byte('=')
		if b.OnCriticalPath {
			mark = '#'
		}
		row := make([]byte, width)
		for i := range row {
			if i >= lo && i < hi {
				row[i] = mark
			} else {
				row[i] = ' '
			}
		}
		fmt.Fprintf(&sb, "%-*s |%s| %8.1f - %8.1f\n", nameWidth, b.Task, row, b.Start, b.End)
	}
	return sb.String()
}
