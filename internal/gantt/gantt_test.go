package gantt

import (
	"strings"
	"testing"

	"wroofline/internal/trace"
)

func bgwRecorder(t *testing.T) *trace.Recorder {
	t.Helper()
	rec := trace.NewRecorder()
	for _, s := range []trace.Span{
		{Task: "epsilon", Phase: "compute", Start: 0, End: 490},
		{Task: "sigma", Phase: "compute", Start: 490, End: 1779},
	} {
		if err := rec.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	return rec
}

func TestFromRecorder(t *testing.T) {
	c, err := FromRecorder("BGW 64 nodes", bgwRecorder(t), []string{"epsilon", "sigma"})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Bars) != 2 {
		t.Fatalf("bars = %d", len(c.Bars))
	}
	if c.Bars[0].Task != "epsilon" || c.Bars[1].Task != "sigma" {
		t.Errorf("bar order: %+v", c.Bars)
	}
	if c.Bars[0].Duration() != 490 || c.Bars[1].Duration() != 1289 {
		t.Errorf("durations: %v, %v", c.Bars[0].Duration(), c.Bars[1].Duration())
	}
	if c.Makespan != 1779 {
		t.Errorf("makespan = %v", c.Makespan)
	}
	if !c.Bars[0].OnCriticalPath || !c.Bars[1].OnCriticalPath {
		t.Error("both BGW tasks are on the critical path")
	}
	if got := c.CriticalPathBars(); len(got) != 2 {
		t.Errorf("critical path bars = %d", len(got))
	}
}

func TestFromRecorderEmpty(t *testing.T) {
	if _, err := FromRecorder("x", trace.NewRecorder(), nil); err == nil {
		t.Error("empty recorder should fail")
	}
	if _, err := FromRecorder("x", nil, nil); err == nil {
		t.Error("nil recorder should fail")
	}
}

func TestMultiSpanTaskMergesWindow(t *testing.T) {
	rec := trace.NewRecorder()
	for _, s := range []trace.Span{
		{Task: "a", Phase: "load", Start: 0, End: 10},
		{Task: "a", Phase: "compute", Start: 10, End: 30},
	} {
		if err := rec.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	c, err := FromRecorder("x", rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Bars) != 1 || c.Bars[0].Start != 0 || c.Bars[0].End != 30 {
		t.Errorf("bars = %+v", c.Bars)
	}
}

func TestRender(t *testing.T) {
	c, err := FromRecorder("BGW", bgwRecorder(t), []string{"sigma"})
	if err != nil {
		t.Fatal(err)
	}
	out := c.Render(40)
	if !strings.Contains(out, "BGW (makespan 1779s)") {
		t.Errorf("missing title/makespan:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "=") {
		t.Errorf("epsilon row should use '=': %q", lines[1])
	}
	if !strings.Contains(lines[2], "#") {
		t.Errorf("sigma row should use '#': %q", lines[2])
	}
	// Sigma's bar must begin after epsilon's.
	epsStart := strings.IndexAny(lines[1], "=#")
	sigStart := strings.IndexAny(lines[2], "=#")
	if sigStart <= epsStart {
		t.Errorf("sigma bar (%d) should start after epsilon (%d)", sigStart, epsStart)
	}
}

func TestRenderTinyBarsVisible(t *testing.T) {
	rec := trace.NewRecorder()
	for _, s := range []trace.Span{
		{Task: "big", Phase: "x", Start: 0, End: 1000},
		{Task: "tiny", Phase: "x", Start: 500, End: 500.01},
	} {
		if err := rec.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	c, err := FromRecorder("", rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := c.Render(40)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "tiny") && !strings.Contains(line, "=") {
			t.Errorf("tiny bar invisible: %q", line)
		}
	}
}

func TestRenderMinWidthAndEmpty(t *testing.T) {
	c := &Chart{}
	if out := c.Render(5); out != "" {
		t.Errorf("empty chart render = %q", out)
	}
	c2, err := FromRecorder("", bgwRecorder(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out := c2.Render(1); out == "" {
		t.Error("tiny width should clamp, not vanish")
	}
}
