package serve

import (
	"context"
	"sync/atomic"
	"testing"
)

// BenchmarkAdmissionWFQ is the admission-control hot path under
// multi-tenant contention: every proc cycles acquire/release across four
// weighted tenants with enough slots that nothing parks, so the measured
// cost is the scheduler itself — token bucket, virtual-time bookkeeping,
// tenant map — not queueing.
func BenchmarkAdmissionWFQ(b *testing.B) {
	a := newAdmission(Config{
		QueueDepth: 64, MaxWaiters: 64,
		TenantWeights: map[string]float64{"a": 1, "b": 2, "c": 4, "d": 8},
	})
	names := []string{"a", "b", "c", "d"}
	var seq atomic.Uint64
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := seq.Add(1)
		for pb.Next() {
			rel, aerr := a.acquire(ctx, names[i%4])
			if aerr != nil {
				b.Fatalf("acquire shed: %+v", aerr)
			}
			rel()
			i++
		}
	})
}
