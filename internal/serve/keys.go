package serve

import (
	"encoding/hex"
	"fmt"

	"wroofline/internal/study"
)

// The routing seam for cluster mode: wfgate computes the same canonical
// content address a replica would, so requests for one spec always land on
// one owner replica, and the internal peer cache-fill API addresses cached
// responses by the hex form of that key.

// PeerOwnerHeader names the request header wfgate sets when it routes a
// request away from the key's primary owner (failover or ring change): the
// value is the owner's base URL, and the handling replica may ask it for a
// cache fill before evaluating locally. Honoured only for URLs in the
// server's Peers allowlist.
const PeerOwnerHeader = "X-Peer-Owner"

// PeerFillPath is the internal peer cache-fill route prefix; the hex
// content address is appended.
const PeerFillPath = "/peer/v1/fill/"

// ModelKey canonicalizes a /v1/model request body and returns its content
// address — the same key the serving path caches under.
func ModelKey(body []byte) (Key, error) {
	_, canonical, err := canonicalModelRequest(body)
	if err != nil {
		return Key{}, err
	}
	return ContentKey("model", canonical), nil
}

// SweepKey canonicalizes a /v1/sweep spec and returns its content address.
func SweepKey(body []byte) (Key, error) {
	spec, err := study.ParseSpec(body)
	if err != nil {
		return Key{}, err
	}
	canonical, err := spec.Canonical()
	if err != nil {
		return Key{}, err
	}
	return ContentKey("sweep", canonical), nil
}

// FigureKey returns the content address of a /v1/figures/{name} response.
func FigureKey(name string) Key {
	return contentKeyString("figure", name)
}

// HexKey renders a content address as lowercase hex (the peer API's wire
// form).
func HexKey(k Key) string { return hexKey(k) }

// ParseHexKey parses the hex wire form back into a content address.
func ParseHexKey(s string) (Key, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Key{}, fmt.Errorf("content key: %v", err)
	}
	if len(raw) != len(Key{}) {
		return Key{}, fmt.Errorf("content key: %d hex bytes, want %d", len(raw), len(Key{}))
	}
	return Key(raw), nil
}
