package serve

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// TenantHeader names the admission principal on a request; absent means the
// shared "default" tenant. The gate forwards it unchanged so per-tenant
// fairness holds through the cluster.
const TenantHeader = "X-Tenant"

// DeadlineHeader carries a client-declared evaluation budget in
// milliseconds. The effective deadline is min(server Timeout, this value);
// it bounds both the queue wait and the evaluation, and an evaluation is
// never started once it has passed.
const DeadlineHeader = "X-Deadline-Ms"

// admitKind classifies why acquire rejected a request; evaluate maps each
// kind to its metric counter and problem document.
type admitKind int

const (
	// admitTimeout: the request waited in its tenant queue until its
	// deadline expired without receiving a slot.
	admitTimeout admitKind = iota
	// admitQueueFull: the tenant's waiter queue was already at MaxWaiters —
	// shed immediately rather than growing the backlog.
	admitQueueFull
	// admitRateLimited: the tenant's token bucket was empty — shed
	// immediately with the bucket's refill horizon as the retry hint.
	admitRateLimited
)

// admitError reports a rejected admission: its kind and how long the client
// should back off before retrying.
type admitError struct {
	kind       admitKind
	retryAfter time.Duration
}

// admission is the weighted-fair evaluation scheduler that replaces the
// single FIFO slot channel. Evaluation slots (Config.QueueDepth of them)
// are granted across per-tenant FIFO queues by virtual-time weighted-fair
// queueing: each grant charges the tenant 1/weight of virtual time, and
// free slots always go to the queued tenant with the least virtual time —
// so a tenant of weight 2 gets twice the slots of a weight-1 tenant under
// contention, and a heavy tenant's backlog cannot starve a light one.
//
// Two load-shedding gates run before a request may wait: a per-tenant token
// bucket (rate/burst; rate 0 disables) rejects sustained overload at
// arrival, and a per-tenant waiter bound (maxWaiters) caps the backlog.
// Both reject immediately with a Retry-After hint instead of letting the
// request consume a doomed queue slot.
type admission struct {
	mu         sync.Mutex
	slots      int // free evaluation slots
	maxWaiters int
	rate       float64 // tokens/sec per tenant; 0 = unlimited
	burst      float64
	weights    map[string]float64
	tenants    map[string]*tenant
	vtime      float64 // virtual time of the most recent grant
	now        func() time.Time
}

// tenant is one admission principal: its weight, virtual-time account,
// waiter queue, and token bucket.
type tenant struct {
	name   string
	weight float64
	vlast  float64 // virtual finish time of the tenant's latest grant
	queue  []*waiter
	tokens float64
	last   time.Time
	active int // granted slots not yet released
}

// waiter is one parked request. granted flips under the admission lock when
// a release hands the waiter a slot; the waiter that instead observes its
// context expire uses it to decide whether it must give the slot back.
type waiter struct {
	ready   chan struct{}
	granted bool
}

// newAdmission builds the scheduler from the resolved config.
func newAdmission(cfg Config) *admission {
	weights := make(map[string]float64, len(cfg.TenantWeights))
	for name, w := range cfg.TenantWeights {
		if w > 0 {
			weights[name] = w
		}
	}
	burst := cfg.TenantBurst
	if burst < 1 {
		burst = 1
		if cfg.TenantRate > burst {
			burst = cfg.TenantRate
		}
	}
	return &admission{
		slots:      cfg.QueueDepth,
		maxWaiters: cfg.MaxWaiters,
		rate:       cfg.TenantRate,
		burst:      burst,
		weights:    weights,
		tenants:    make(map[string]*tenant),
		now:        time.Now,
	}
}

// tenantFor returns (lazily creating) the named tenant's state. Callers
// hold the lock.
func (a *admission) tenantFor(name string) *tenant {
	t := a.tenants[name]
	if t == nil {
		w := a.weights[name]
		if w <= 0 {
			w = 1
		}
		t = &tenant{name: name, weight: w, tokens: a.burst, last: a.now()}
		a.tenants[name] = t
	}
	return t
}

// refill advances the tenant's token bucket to now. Callers hold the lock.
func (a *admission) refill(t *tenant) {
	if a.rate <= 0 {
		return
	}
	now := a.now()
	t.tokens += a.rate * now.Sub(t.last).Seconds()
	if t.tokens > a.burst {
		t.tokens = a.burst
	}
	t.last = now
}

// charge advances the tenant's virtual-time account for one grant. The max
// with the global virtual time forgives idle periods: a tenant that sat out
// resumes at the current virtual time rather than cashing in unbounded
// credit. Callers hold the lock.
func (a *admission) charge(t *tenant) {
	if t.vlast < a.vtime {
		t.vlast = a.vtime
	}
	a.vtime = t.vlast
	t.vlast += 1 / t.weight
	t.active++
}

// acquire requests one evaluation slot for the tenant, waiting until ctx
// expires. On success the returned release must be called exactly once; on
// rejection the admitError says why and how long to back off.
func (a *admission) acquire(ctx context.Context, tenantName string) (func(), *admitError) {
	a.mu.Lock()
	t := a.tenantFor(tenantName)
	if a.rate > 0 {
		a.refill(t)
		if t.tokens < 1 {
			retry := time.Duration((1 - t.tokens) / a.rate * float64(time.Second))
			a.mu.Unlock()
			return nil, &admitError{kind: admitRateLimited, retryAfter: retry}
		}
		t.tokens--
	}
	if a.slots > 0 {
		// Invariant: a free slot implies no waiters anywhere (release hands
		// slots to waiters before freeing them), so taking it is fair.
		a.slots--
		a.charge(t)
		a.mu.Unlock()
		return func() { a.release(t) }, nil
	}
	if len(t.queue) >= a.maxWaiters {
		a.mu.Unlock()
		return nil, &admitError{kind: admitQueueFull}
	}
	w := &waiter{ready: make(chan struct{})}
	t.queue = append(t.queue, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return func() { a.release(t) }, nil
	case <-ctx.Done():
	}
	a.mu.Lock()
	if w.granted {
		// The grant raced the deadline: the slot is ours, but the request is
		// dead. Pass the slot on rather than leaking it.
		a.mu.Unlock()
		a.release(t)
		return nil, &admitError{kind: admitTimeout}
	}
	for i, q := range t.queue {
		if q == w {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			break
		}
	}
	a.mu.Unlock()
	return nil, &admitError{kind: admitTimeout}
}

// release returns the tenant's slot: it goes to the queued tenant with the
// least virtual time if anyone is waiting, otherwise back to the free pool.
// Idle tenants with default state are dropped so the tenant map stays
// bounded by the active principal set.
func (a *admission) release(t *tenant) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t.active--
	if t.active == 0 && len(t.queue) == 0 && a.rate <= 0 {
		delete(a.tenants, t.name)
	}
	next := a.minVTimeTenant()
	if next == nil {
		a.slots++
		return
	}
	w := next.queue[0]
	next.queue = next.queue[1:]
	w.granted = true
	a.charge(next)
	close(w.ready)
}

// minVTimeTenant picks the tenant owed the next slot: the one with waiters
// whose virtual-time account is smallest, ties broken by name for
// determinism. Callers hold the lock.
func (a *admission) minVTimeTenant() *tenant {
	var best *tenant
	for _, t := range a.tenants {
		if len(t.queue) == 0 {
			continue
		}
		if best == nil || t.vlast < best.vlast || (t.vlast == best.vlast && t.name < best.name) {
			best = t
		}
	}
	return best
}

// tenantOf extracts the admission principal from a request: the X-Tenant
// header, defaulting to "default" so unlabelled traffic shares one fair
// queue.
func tenantOf(h http.Header) string {
	if t := h.Get(TenantHeader); t != "" {
		return t
	}
	return "default"
}

// requestBudget reads the client-declared deadline from DeadlineHeader;
// zero means none. Malformed or non-positive values are ignored rather than
// rejected — the header is advisory and the server Timeout still applies.
func requestBudget(h http.Header) time.Duration {
	v := h.Get(DeadlineHeader)
	if v == "" {
		return 0
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}
