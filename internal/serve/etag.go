package serve

import "strings"

// ETagMatch reports whether an If-None-Match header field matches a
// response's entity-tag per RFC 9110 §13.1.2. The field is either "*"
// (matches any current representation) or a comma-separated list of
// entity-tags, each optionally weak (a "W/" prefix); the comparison is
// member-wise and weak, so a W/ prefix on either side is ignored. Commas
// inside a quoted opaque-tag are part of the tag, not separators, which is
// why this scans entity-tags instead of splitting on commas.
//
// A malformed member stops the scan without matching: the conservative
// failure mode is to return the full 200 response rather than a wrong 304.
// The gate applies the same matching to coalesced upstream responses, so it
// is exported alongside the key helpers.
func ETagMatch(header, etag string) bool {
	if etag == "" {
		return false
	}
	etag = strings.TrimPrefix(etag, "W/")
	rest := header
	for {
		rest = strings.TrimLeft(rest, " \t,")
		if rest == "" {
			return false
		}
		if rest[0] == '*' {
			return true
		}
		member := strings.TrimPrefix(rest, "W/")
		if member == "" || member[0] != '"' {
			return false
		}
		end := strings.IndexByte(member[1:], '"')
		if end < 0 {
			return false
		}
		if member[:end+2] == etag {
			return true
		}
		rest = member[end+2:]
	}
}
