package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestSweepCorpusContentAddressed proves a generated-scenario corpus flows
// through /v1/sweep like any other study kind: the first POST evaluates cold,
// a reformatted re-POST with a different worker count is a byte-identical
// cache hit (corpus generation is deterministic per seed at any pool size),
// and changing the seed is a different content address.
func TestSweepCorpusContentAddressed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := `{"kind":"corpus","machine":"perlmutter-numa","count":40,"seed":11,"workers":2,
		"template":{"width":5,"depth":3,"cv":0.4,"payload":"512 MB"}}`
	status, cold, hdr := post(t, ts.URL+"/v1/sweep", spec)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, cold)
	}
	if hdr.Get("X-Cache") != "cold" {
		t.Errorf("first corpus request X-Cache = %q", hdr.Get("X-Cache"))
	}
	var parsed SweepResponse
	if err := json.Unmarshal(cold, &parsed); err != nil {
		t.Fatalf("response is not a SweepResponse: %v", err)
	}
	if parsed.Kind != "corpus" || len(parsed.Tables) != 3 {
		t.Fatalf("kind=%q tables=%d, want corpus/3", parsed.Kind, len(parsed.Tables))
	}

	// Different formatting and worker count, same content address.
	reworked := "{\n  " + strings.TrimPrefix(
		strings.Replace(spec, `"workers":2`, `"workers":9`, 1), "{")
	_, cached, hdr := post(t, ts.URL+"/v1/sweep", reworked)
	if hdr.Get("X-Cache") != "hit" {
		t.Errorf("reworked corpus request X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(cold, cached) {
		t.Error("cached corpus bytes differ from cold")
	}

	// A different seed is a different corpus: must not hit the same entry.
	reseeded := strings.Replace(spec, `"seed":11`, `"seed":12`, 1)
	_, other, hdr := post(t, ts.URL+"/v1/sweep", reseeded)
	if hdr.Get("X-Cache") != "cold" {
		t.Errorf("reseeded corpus request X-Cache = %q, want cold", hdr.Get("X-Cache"))
	}
	if bytes.Equal(cold, other) {
		t.Error("different seed returned identical corpus bytes")
	}
}

// TestModelGeneratedCaseAndMachines exercises the registry's generated cases
// and the widened machine catalog over /v1/model: a gen-* case evaluates and
// caches, and a workflow POST naming the NUMA machine resolves via the
// machine registry (an unknown name is still a 400).
func TestModelGeneratedCaseAndMachines(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, cold, _ := post(t, ts.URL+"/v1/model", `{"case":"gen-montage"}`)
	if status != http.StatusOK {
		t.Fatalf("gen-montage status = %d, body %s", status, cold)
	}
	_, cached, hdr := post(t, ts.URL+"/v1/model", `{"case":"gen-montage"}`)
	if hdr.Get("X-Cache") != "hit" || !bytes.Equal(cold, cached) {
		t.Errorf("gen-montage second request X-Cache = %q", hdr.Get("X-Cache"))
	}

	wf := `{"machine":"perlmutter-numa","workflow":{"name":"w","partition":"cpu",
		"tasks":[{"id":"a","nodes":2,"work":{"flops":2e12,"mem_bytes":5e10}}]}}`
	status, body, _ := post(t, ts.URL+"/v1/model", wf)
	if status != http.StatusOK {
		t.Fatalf("numa workflow status = %d, body %s", status, body)
	}

	status, body, _ = post(t, ts.URL+"/v1/model", `{"machine":"summit","workflow":{"name":"w","partition":"cpu","tasks":[{"id":"a","nodes":1}]}}`)
	if status != http.StatusBadRequest || !strings.Contains(string(body), "unknown machine") {
		t.Fatalf("unknown machine: status = %d, body %s", status, body)
	}
}
