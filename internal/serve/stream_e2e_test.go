package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// streamTrialsSpec builds a fresh montecarlo spec; callers vary trials (and
// optionally seed) to control evaluation length and cache identity.
func streamTrialsSpec(trials int, seed uint64) string {
	return fmt.Sprintf(`{"kind":"montecarlo","case":"lcls-cori","trials":%d,"seed":%d,"batch":16,`+
		`"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`, trials, seed)
}

// progressEvent decodes the NDJSON/SSE progress payloads.
type progressEvent struct {
	Event   string `json:"event"`
	Done    int    `json:"done"`
	Total   int    `json:"total"`
	Summary struct {
		N    int     `json:"n"`
		Mean float64 `json:"mean"`
		P99  float64 `json:"p99"`
	} `json:"summary"`
}

// streamLines POSTs a body with the given Accept header and returns the
// response plus all lines read until EOF.
func streamLines(t *testing.T, url, body, accept string) (*http.Response, []string) {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return resp, lines
}

// TestSweepStreamDifferential is the tentpole identity contract: the final
// NDJSON line of a cold /v1/sweep/stream response is byte-identical to the
// buffered /v1/sweep body for the same spec, the preceding progress events
// are strictly increasing prefixes, and the stream fills the same cache.
func TestSweepStreamDifferential(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	spec := streamTrialsSpec(192, 21)

	status, buffered, _ := post(t, ts.URL+"/v1/sweep", spec)
	if status != http.StatusOK {
		t.Fatalf("buffered status %d: %s", status, buffered)
	}
	s.FlushCache()

	resp, lines := streamLines(t, ts.URL+"/v1/sweep/stream", spec, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != ContentTypeNDJSON {
		t.Errorf("Content-Type = %q, want %q", got, ContentTypeNDJSON)
	}
	if got := resp.Header.Get("X-Cache"); got != "cold" {
		t.Errorf("X-Cache = %q, want cold", got)
	}
	if len(lines) < 2 {
		t.Fatalf("stream produced %d lines, want progress + result", len(lines))
	}

	// Final line: the exact buffered bytes (the buffered body ends in \n,
	// which the line scanner strips).
	wantFinal := strings.TrimSuffix(string(buffered), "\n")
	if lines[len(lines)-1] != wantFinal {
		t.Errorf("final stream line differs from buffered body:\n%s\nvs\n%s",
			lines[len(lines)-1], wantFinal)
	}

	prevDone := 0
	for _, line := range lines[:len(lines)-1] {
		var p progressEvent
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("progress line is not JSON: %q: %v", line, err)
		}
		if p.Event != "progress" || p.Total != 192 {
			t.Errorf("bad progress event: %+v", p)
		}
		if p.Done <= prevDone || p.Done >= p.Total {
			t.Errorf("done = %d after %d, want strictly increasing below total", p.Done, prevDone)
		}
		if p.Summary.N != p.Done {
			t.Errorf("summary n = %d, done = %d", p.Summary.N, p.Done)
		}
		prevDone = p.Done
	}

	// The stream populated the shared cache: a buffered request is now a
	// hit with the same bytes.
	status, cached, hdr := post(t, ts.URL+"/v1/sweep", spec)
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("post-stream buffered request: status %d X-Cache %q, want 200 hit",
			status, hdr.Get("X-Cache"))
	}
	if !bytes.Equal(cached, buffered) {
		t.Error("cache filled by the stream differs from the buffered rendering")
	}
}

// TestSweepStreamCachedSingleEvent checks a warm-cache stream: exactly one
// line (the result), X-Cache hit, no evaluation.
func TestSweepStreamCachedSingleEvent(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	spec := streamTrialsSpec(32, 5)
	_, buffered, _ := post(t, ts.URL+"/v1/sweep", spec)
	evals := s.Evaluations()

	resp, lines := streamLines(t, ts.URL+"/v1/sweep/stream", spec, "")
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("X-Cache = %q, want hit", got)
	}
	if len(lines) != 1 {
		t.Fatalf("cached stream produced %d lines, want exactly 1", len(lines))
	}
	if lines[0] != strings.TrimSuffix(string(buffered), "\n") {
		t.Error("cached stream result differs from buffered body")
	}
	if got := s.Evaluations(); got != evals {
		t.Errorf("cached stream ran %d extra evaluations", got-evals)
	}
}

// TestSweepStreamAcceptNegotiation checks /v1/sweep itself streams when the
// client asks for NDJSON, and stays buffered JSON otherwise.
func TestSweepStreamAcceptNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := streamTrialsSpec(64, 6)

	resp, lines := streamLines(t, ts.URL+"/v1/sweep", spec, ContentTypeNDJSON)
	if got := resp.Header.Get("Content-Type"); got != ContentTypeNDJSON {
		t.Errorf("negotiated Content-Type = %q, want %q", got, ContentTypeNDJSON)
	}
	if len(lines) == 0 {
		t.Fatal("negotiated stream produced no lines")
	}

	status, _, hdr := post(t, ts.URL+"/v1/sweep", spec)
	if status != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Errorf("plain request: status %d Content-Type %q, want buffered JSON",
			status, hdr.Get("Content-Type"))
	}
}

// TestSweepStreamSSEFraming checks the SSE wire format: event-typed frames,
// and a result frame whose data is the canonical buffered body.
func TestSweepStreamSSEFraming(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	spec := streamTrialsSpec(128, 8)
	_, buffered, _ := post(t, ts.URL+"/v1/sweep", spec)
	s.FlushCache()

	resp, lines := streamLines(t, ts.URL+"/v1/sweep", spec, ContentTypeSSE)
	if got := resp.Header.Get("Content-Type"); got != ContentTypeSSE {
		t.Fatalf("Content-Type = %q, want %q", got, ContentTypeSSE)
	}
	text := strings.Join(lines, "\n")
	if !strings.Contains(text, "event: progress\ndata: ") {
		t.Error("no SSE progress frame")
	}
	idx := strings.Index(text, "event: result\ndata: ")
	if idx < 0 {
		t.Fatal("no SSE result frame")
	}
	data := text[idx+len("event: result\ndata: "):]
	if nl := strings.IndexByte(data, '\n'); nl >= 0 {
		data = data[:nl]
	}
	if data != strings.TrimSuffix(string(buffered), "\n") {
		t.Error("SSE result data differs from buffered body")
	}
}

// TestSweepStreamDisconnectCancelsEval pins prompt cancellation: a client
// abandoning a large streaming sweep mid-flight cancels the evaluation
// (visible as a stream abort) instead of burning the slot to completion.
func TestSweepStreamDisconnectCancelsEval(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := streamTrialsSpec(2_000_000, 9)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep/stream",
		strings.NewReader(spec))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one progress event to prove the stream is live, then vanish.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first stream byte: %v", err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		var snap Snapshot
		status, body, _ := get(t, ts.URL+"/metrics")
		if status != http.StatusOK || json.Unmarshal(body, &snap) != nil {
			t.Fatalf("metrics fetch failed: %d", status)
		}
		if snap.StreamAborts >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("disconnect did not cancel the streaming evaluation (no stream abort counted)")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueueFullRetryAfter is the shed-semantics regression test: with the
// slot busy and the waiter queue at its bound, the next request gets an
// immediate 503 whose body says the queue was full — not a timeout it
// never waited out — and carries a Retry-After hint. The parked waiter
// then times out with the timeout body, also with Retry-After.
func TestQueueFullRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 1, MaxWaiters: 1, Timeout: 300 * time.Millisecond})
	s.evalDelay = 600 * time.Millisecond

	// Occupy the slot with a cold evaluation.
	hold := make(chan struct{})
	go func() {
		defer close(hold)
		post(t, ts.URL+"/v1/model", `{"case":"example"}`)
	}()
	waitForCond(t, func() bool { return s.Evaluations() >= 1 }, "holder never started")

	// Park one waiter (fills MaxWaiters=1).
	parked := make(chan struct {
		status int
		body   []byte
		hdr    http.Header
	}, 1)
	go func() {
		status, body, hdr := post(t, ts.URL+"/v1/model", `{"case":"lcls-cori"}`)
		parked <- struct {
			status int
			body   []byte
			hdr    http.Header
		}{status, body, hdr}
	}()
	waitForCond(t, func() bool {
		s.adm.mu.Lock()
		defer s.adm.mu.Unlock()
		tn := s.adm.tenants["default"]
		return tn != nil && len(tn.queue) >= 1
	}, "waiter never parked")

	// Third request: queue full, shed now.
	start := time.Now()
	status, body, hdr := post(t, ts.URL+"/v1/model", `{"case":"bgw-64"}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("queue-full status = %d, want 503", status)
	}
	if time.Since(start) > 250*time.Millisecond {
		t.Error("queue-full shed was not immediate")
	}
	if got := hdr.Get("Retry-After"); got == "" {
		t.Error("queue-full 503 has no Retry-After")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("queue-full body = %s, want a queue-full cause", body)
	}
	if strings.Contains(string(body), "within") {
		t.Errorf("queue-full body misreports a timeout cause: %s", body)
	}

	// The parked waiter times out against the 300ms budget with the
	// timeout body and its own Retry-After.
	res := <-parked
	if res.status != http.StatusServiceUnavailable {
		t.Fatalf("queue-timeout status = %d, want 503", res.status)
	}
	if !strings.Contains(string(res.body), "within") {
		t.Errorf("queue-timeout body = %s, want the timeout cause", res.body)
	}
	if res.hdr.Get("Retry-After") == "" {
		t.Error("queue-timeout 503 has no Retry-After")
	}
	<-hold

	var snap Snapshot
	_, mbody, _ := get(t, ts.URL+"/metrics")
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.QueueSheds != 1 {
		t.Errorf("queue_sheds = %d, want 1", snap.QueueSheds)
	}
	if snap.QueueTimeouts != 1 {
		t.Errorf("queue_timeouts = %d, want 1", snap.QueueTimeouts)
	}
}

// TestRateShedRetryAfter checks a rate-limited tenant is shed with 503 and
// a Retry-After derived from the bucket refill horizon.
func TestRateShedRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantRate: 0.5, TenantBurst: 1})

	status, _, _ := post(t, ts.URL+"/v1/model", `{"case":"example"}`)
	if status != http.StatusOK {
		t.Fatalf("first request status %d", status)
	}
	status, body, hdr := post(t, ts.URL+"/v1/model", `{"case":"example2"}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("over-rate status = %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("rate-shed 503 has no Retry-After")
	}
	if !strings.Contains(string(body), "over admission rate") {
		t.Errorf("rate-shed body = %s", body)
	}
}

// TestDeadlineNeverStartsEval is the zero-evals-past-deadline contract: a
// request whose declared X-Deadline-Ms expires in the queue is refused
// without ever starting its evaluation, and a grant that arrives after the
// deadline is handed back (504 + deadline_skips) rather than used.
func TestDeadlineNeverStartsEval(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 1})
	s.evalDelay = 400 * time.Millisecond

	hold := make(chan struct{})
	go func() {
		defer close(hold)
		post(t, ts.URL+"/v1/model", `{"case":"example"}`)
	}()
	waitForCond(t, func() bool { return s.Evaluations() >= 1 }, "holder never started")

	// This request's 100ms budget expires while the 400ms holder owns the
	// only slot: it must be refused without evaluating.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/model", strings.NewReader(`{"case":"lcls-cori"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, "100")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-deadline status = %d, want 503 or 504", resp.StatusCode)
	}
	<-hold
	if got := s.Evaluations(); got != 1 {
		t.Errorf("evaluations = %d, want 1 — the dead request must never start", got)
	}
	// Its spec must not have been evaluated into the cache either.
	_, _, hdr := post(t, ts.URL+"/v1/model", `{"case":"lcls-cori"}`)
	if got := hdr.Get("X-Cache"); got != "cold" {
		t.Errorf("expired request's spec X-Cache = %q, want cold (never evaluated)", got)
	}

	// Direct grant-race probe: a context already expired at admit time is
	// turned back at the last gate.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.admit(ctx, "default"); err == nil {
		t.Fatal("admit with expired context succeeded")
	}
	var snap Snapshot
	_, mbody, _ := get(t, ts.URL+"/metrics")
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.DeadlineSkips < 1 {
		t.Errorf("deadline_skips = %d, want >= 1", snap.DeadlineSkips)
	}
}
