// Package serve is the Workflow Roofline analysis service: a long-running
// HTTP front end over the model (internal/core), the ensemble engine
// (internal/study on internal/sweep), and the figure catalog
// (internal/figures).
//
// The hot path exploits the toolkit's end-to-end determinism. Every request
// is canonicalized (strict parse, fixed-order re-encoding, worker counts
// normalized away) and hashed; the SHA-256 content address keys an LRU of
// fully rendered responses. Because identical specs evaluate to identical
// bytes, a cache hit, a coalesced flight, and a cold evaluation are
// indistinguishable to the client — the tests assert byte equality across
// all three paths. Concurrent identical requests collapse onto one
// evaluation (singleflight), and distinct evaluations run under a bounded
// queue with a per-request timeout, so a burst of heavyweight sweeps
// degrades into orderly 503s instead of unbounded goroutines.
//
// The request path is built to scale with cores: the response cache, a
// raw-request memo (byte-identical request bodies skip JSON parsing
// entirely), and the singleflight table are all sharded by the first byte
// of the SHA-256 key, metrics are atomics on a pre-registered route table,
// and the hit path recycles its buffers, hash scratch, and status recorders
// through pools — concurrent hits on distinct keys share no mutex and
// allocate nothing in the serve layer.
//
// Endpoints:
//
//	POST /v1/model          bounds + classification + advice for a spec
//	POST /v1/sweep          montecarlo/grid/survey studies (wfsweep specs)
//	GET  /v1/figures/{name} paper figures as SVG (e.g. example.svg)
//	GET  /healthz           liveness
//	GET  /metrics           counters, latency histograms + percentiles,
//	                        cache hit ratio
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"wroofline/internal/core"
	"wroofline/internal/failure"
	"wroofline/internal/figures"
	"wroofline/internal/machine"
	"wroofline/internal/plancache"
	"wroofline/internal/plot"
	"wroofline/internal/report"
	"wroofline/internal/study"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
	"wroofline/internal/workloads"
)

// Config tunes the service.
type Config struct {
	// Workers caps the sweep pool per evaluation (0 = GOMAXPROCS). It
	// overrides the worker count in submitted specs: results are identical
	// at any pool size, so the server, not the client, owns the parallelism
	// budget.
	Workers int
	// CacheEntries bounds the content-addressed LRU (default 512).
	CacheEntries int
	// PlanCacheEntries bounds the second-level plan cache (internal/plancache):
	// compiled sim.Plans, built core.Models, and generated corpus scenarios,
	// keyed by evaluation identity and shared across requests that vary only
	// trials/seed/workers/batch/streaming. 0 selects the default (512);
	// negative disables the plan cache entirely, restoring fresh
	// generate/build/compile on every evaluation (the differential tests run
	// both ways and assert byte-identical responses).
	PlanCacheEntries int
	// Shards sets the shard count for the response cache, the raw-request
	// memo, and the singleflight table (default 16). Rounded up to a power
	// of two and clamped to [1, 256]; small caches fall back to fewer
	// shards so each shard keeps at least two entries, and a tiny cache to
	// exactly one shard (strict global LRU).
	Shards int
	// QueueDepth bounds concurrent evaluations; requests beyond it wait for
	// a slot until their timeout (default 4). Slots are granted across
	// per-tenant queues by weighted-fair scheduling — see MaxWaiters,
	// TenantWeights, TenantRate, and TenantBurst.
	QueueDepth int
	// MaxWaiters bounds each tenant's waiter queue (default 64): arrivals
	// beyond it are shed immediately with 503 + Retry-After instead of
	// deepening a backlog that cannot drain in time.
	MaxWaiters int
	// TenantWeights sets per-tenant weighted-fair shares (X-Tenant header
	// values; unlisted tenants get weight 1). A weight-2 tenant receives
	// twice the evaluation slots of a weight-1 tenant under contention.
	TenantWeights map[string]float64
	// TenantRate, when positive, enables a token bucket per tenant: each
	// admission costs one token, refilled at this rate per second up to
	// TenantBurst (default max(1, TenantRate)). Empty buckets shed with
	// 503 + a computed Retry-After. Zero disables rate shedding.
	TenantRate  float64
	TenantBurst float64
	// RetryAfterHint is the Retry-After value stamped on queue-full and
	// queue-timeout sheds, where no better estimate exists (default 1s).
	// Rate-limit sheds compute their hint from the bucket refill horizon.
	RetryAfterHint time.Duration
	// Timeout is the per-request evaluation budget, covering both the queue
	// wait and the evaluation itself (default 30s). A request may declare a
	// shorter budget via the X-Deadline-Ms header; evaluations are never
	// started past the effective deadline.
	Timeout time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// CurveSamples is the default /v1/model envelope resolution (default 64).
	CurveSamples int
	// Logger receives one structured record per request; nil discards.
	Logger *slog.Logger
	// Peers lists the base URLs of sibling replicas this server may fetch
	// cache fills from over the internal /peer/v1/fill API. Outbound fills
	// only ever target a listed peer (the X-Peer-Owner request header is
	// checked against this allowlist, so clients cannot steer the server at
	// arbitrary origins); empty disables outbound fills. The inbound fill
	// endpoint is always mounted — it only serves already-rendered cached
	// bytes by content address.
	Peers []string
	// PeerTimeout bounds one outbound peer cache-fill fetch (default 2s).
	// A fill is an optimization: on timeout or error the server just
	// evaluates locally.
	PeerTimeout time.Duration
	// PeerClient overrides the HTTP client for outbound fills (tests inject
	// the in-process transport); nil builds one from PeerTimeout.
	PeerClient *http.Client
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.PlanCacheEntries == 0 {
		c.PlanCacheEntries = 512
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4
	}
	if c.MaxWaiters <= 0 {
		c.MaxWaiters = 64
	}
	if c.RetryAfterHint <= 0 {
		c.RetryAfterHint = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.CurveSamples <= 0 {
		c.CurveSamples = 64
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	return c
}

// Server is the analysis service. Create with New, mount via Handler.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	cache   *shardedLRU[Response]
	rawKeys *shardedLRU[Key]
	plans   *plancache.Cache
	flight  *flightGroup
	adm     *admission
	metrics *metrics

	// Precomputed error responses for the hot rejection paths, rendered
	// once at construction; figureNames is the figure catalog resolved
	// once.
	errQueueFull    *httpError
	errQueueTimeout *httpError
	errDeadline     *httpError
	errTooLarge     *httpError
	figureNames     []string

	// peerAllowed is the outbound cache-fill allowlist resolved from
	// Config.Peers; peerClient the client those fills go out on.
	peerAllowed map[string]bool
	peerClient  *http.Client

	// evalDelay is a test hook: it stretches every evaluation so tests can
	// provoke request pile-ups deterministically. Zero in production.
	evalDelay time.Duration
}

// New builds a server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		cache: newShardedLRU[Response](cfg.CacheEntries, cfg.Shards),
		// The raw memo holds 32-byte pointers into the response cache;
		// several formattings of one spec may share a canonical entry, so
		// it runs larger than the cache it fronts.
		rawKeys: newShardedLRU[Key](4*cfg.CacheEntries, cfg.Shards),
		flight:  newFlightGroup(cfg.Shards),
		adm:     newAdmission(cfg),
		metrics: newMetrics("healthz", "metrics", "model", "sweep", "sweep_stream", "figures", "peer"),
	}
	// The plan cache sits below admission and the response cache: it is only
	// consulted inside evaluations, so hits still pay admission (they are
	// real evaluations, just cheaper) and never bypass tenant fairness.
	if cfg.PlanCacheEntries > 0 {
		s.plans = plancache.New(cfg.PlanCacheEntries, cfg.Shards)
	}
	s.figureNames = figures.Names()
	if len(cfg.Peers) > 0 {
		s.peerAllowed = make(map[string]bool, len(cfg.Peers))
		for _, p := range cfg.Peers {
			s.peerAllowed[strings.TrimSuffix(p, "/")] = true
		}
		s.peerClient = cfg.PeerClient
		if s.peerClient == nil {
			s.peerClient = &http.Client{Timeout: cfg.PeerTimeout}
		}
	}
	// The queue-full body names overload, not the timeout: a shed request
	// never waited out the budget, it was rejected on arrival because the
	// tenant's backlog was already hopeless. The timeout belongs only in
	// the queue-timeout body, where it really is the cause.
	s.errQueueFull = retryableError(http.StatusServiceUnavailable,
		"evaluation queue full, request shed", cfg.RetryAfterHint)
	s.errQueueTimeout = retryableError(http.StatusServiceUnavailable,
		fmt.Sprintf("no evaluation slot became available within %v", cfg.Timeout), cfg.RetryAfterHint)
	s.errDeadline = precomputedError(http.StatusGatewayTimeout,
		"deadline expired before evaluation started")
	s.errTooLarge = precomputedError(http.StatusRequestEntityTooLarge,
		fmt.Sprintf("request body exceeds %d bytes", cfg.MaxBodyBytes))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("POST /v1/model", s.instrument("model", s.handleModel))
	s.mux.HandleFunc("POST /v1/sweep", s.instrument("sweep", s.handleSweep))
	s.mux.HandleFunc("POST /v1/sweep/stream", s.instrument("sweep_stream", s.handleSweepStream))
	s.mux.HandleFunc("GET /v1/figures/{name}", s.instrument("figures", s.handleFigure))
	s.mux.HandleFunc("GET "+PeerFillPath+"{key}", s.instrument("peer", s.handlePeerFill))
	return s
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Evaluations reports how many cold evaluations have run — the number the
// coalescing tests pin to exactly one under 64-way identical load.
func (s *Server) Evaluations() uint64 { return s.metrics.evaluations.Load() }

// MetricsSnapshot returns the current counters (the /metrics payload).
func (s *Server) MetricsSnapshot() Snapshot {
	snap := s.metrics.snapshot(s.cache.len())
	if s.plans != nil {
		st := s.plans.Stats()
		snap.PlanCacheEntries = st.Entries
		snap.PlanCacheHits = st.Hits
		snap.PlanCacheMisses = st.Misses
		snap.PlanCacheEvictions = st.Evictions
	}
	return snap
}

// PlanCacheStats reports the second-level plan cache counters; enabled is
// false (with zero stats) when the cache is disabled.
func (s *Server) PlanCacheStats() (stats plancache.Stats, enabled bool) {
	return s.plans.Stats(), s.plans != nil
}

// FlushCache empties the result cache and the raw-request memo, forcing the
// next request of each shape down the cold path (benchmarks and
// cache-bypass testing). The plan cache is deliberately left warm: it holds
// construction artifacts, not rendered responses, and the differential
// tests use exactly this split — flush responses, re-request, and prove the
// plan-cache-served evaluation re-renders the same bytes.
func (s *Server) FlushCache() {
	s.cache.flush()
	s.rawKeys.flush()
}

// CacheGeometry reports the effective response-cache layout after shard
// normalization: total entry capacity and independently locked shard count.
// The raw-request memo and the singleflight table use the same shard count.
func (s *Server) CacheGeometry() (entries, shards int) {
	return s.cache.capacity(), len(s.cache.shards)
}

// httpError carries a status code through the evaluation path; body, when
// non-nil, is the prerendered problem document, and retryAfter, when
// positive, becomes a Retry-After header so shed clients know when to come
// back.
type httpError struct {
	status     int
	msg        string
	body       []byte
	retryAfter time.Duration
}

// Error implements error.
func (e *httpError) Error() string { return e.msg }

// badRequest wraps a client error as 400.
func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// problemBody renders the JSON problem document for an error response.
func problemBody(status int, msg string) []byte {
	body, _ := json.Marshal(map[string]any{"error": msg, "status": status})
	return append(body, '\n')
}

// precomputedError builds an httpError whose response body is rendered once
// up front, so hot rejection paths (queue full, body too large) write
// static bytes.
func precomputedError(status int, msg string) *httpError {
	return &httpError{status: status, msg: msg, body: problemBody(status, msg)}
}

// retryableError is precomputedError plus a Retry-After hint.
func retryableError(status int, msg string, retryAfter time.Duration) *httpError {
	e := precomputedError(status, msg)
	e.retryAfter = retryAfter
	return e
}

// retryAfterSeconds renders a Retry-After duration as whole seconds,
// rounded up so the client never retries early; the minimum is 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// statusClientClosedRequest is the nginx-convention status for a client
// that hung up before the response was ready. It never reaches the wire
// (the connection is gone) but keeps the metrics honest: a cancelled
// waiter is not a client error and not a server fault.
const statusClientClosedRequest = 499

// statusOf maps an evaluation error to its HTTP status. Everything the
// evaluators reject is a property of the submitted spec, so unrecognized
// errors default to 400 rather than 500 — the server's own invariants are
// covered by the explicit cases.
func statusOf(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) {
		return statusClientClosedRequest
	}
	return http.StatusBadRequest
}

// statusRecorder captures the status code written by a handler. Recorders
// are pooled: instrument resets and recycles them per request.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

// recorderPool recycles statusRecorders across requests.
var recorderPool = sync.Pool{New: func() any { return new(statusRecorder) }}

// WriteHeader records the status.
func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Write counts body bytes (and implies 200 when WriteHeader was skipped).
func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// Flush forwards to the underlying writer when it supports mid-response
// flushing, so streaming handlers (and the gate proxying through this
// layer) can push partial bodies to the client; wrapping a non-flushing
// writer makes Flush a no-op rather than a panic.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom forwards to the underlying io.ReaderFrom when present (net/http's
// response writer uses it for sendfile/copy optimizations), counting the
// copied bytes like Write; a plain writer falls back to io.Copy.
func (r *statusRecorder) ReadFrom(src io.Reader) (int64, error) {
	var (
		n   int64
		err error
	)
	if rf, ok := r.ResponseWriter.(io.ReaderFrom); ok {
		n, err = rf.ReadFrom(src)
	} else {
		n, err = io.Copy(r.ResponseWriter, src)
	}
	r.bytes += int(n)
	return n, err
}

// instrument wraps a handler with metrics and structured request logging.
// The route's stats are resolved once here, at registration: the per-request
// observe path is pure atomics on that pointer.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	st := s.metrics.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		rec := recorderPool.Get().(*statusRecorder)
		rec.ResponseWriter, rec.status, rec.bytes = w, http.StatusOK, 0
		start := time.Now()
		// Cleanup runs deferred so a panicking handler still returns the
		// recorder (and its ResponseWriter reference) to the pool and still
		// observes the request — as the 500 the server's recovery will turn
		// it into. The panic itself propagates past this frame untouched.
		panicked := true
		defer func() {
			if panicked {
				rec.status = http.StatusInternalServerError
			}
			dur := time.Since(start)
			st.observe(rec.status, dur)
			// Building the log record costs more than a cache hit; skip it
			// entirely when the handler is disabled (the slog.DiscardHandler
			// default).
			if s.cfg.Logger.Enabled(r.Context(), slog.LevelInfo) {
				s.cfg.Logger.Info("request",
					"endpoint", name,
					"method", r.Method,
					"path", r.URL.Path,
					"status", rec.status,
					"dur_ms", float64(dur)/float64(time.Millisecond),
					"bytes", rec.bytes,
					"cache", rec.Header().Get("X-Cache"),
				)
			}
			rec.ResponseWriter = nil
			recorderPool.Put(rec)
		}()
		h(rec, r)
		panicked = false
	}
}

// healthzBody is the static liveness payload.
var healthzBody = []byte("{\"status\":\"ok\"}\n")

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(healthzBody)
}

// handleMetrics renders the counter snapshot as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	data, err := json.MarshalIndent(s.MetricsSnapshot(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// bodyScratch is the pooled per-request read state: the accumulation buffer
// and the limit reader that caps it.
type bodyScratch struct {
	buf bytes.Buffer
	lr  io.LimitedReader
}

// bodyPool recycles request-body buffers across requests.
var bodyPool = sync.Pool{New: func() any { return new(bodyScratch) }}

// putBody returns a scratch to the pool (nil is a no-op, so callers can
// defer it unconditionally).
func putBody(sc *bodyScratch) {
	if sc == nil {
		return
	}
	sc.lr.R = nil
	bodyPool.Put(sc)
}

// readBody drains a capped request body into a pooled buffer. On success
// the returned bytes alias the scratch, which the caller must release with
// putBody once the bytes are dead; on error the scratch is already
// released.
func (s *Server) readBody(r *http.Request) ([]byte, *bodyScratch, error) {
	sc := bodyPool.Get().(*bodyScratch)
	sc.buf.Reset()
	sc.lr.R = r.Body
	sc.lr.N = s.cfg.MaxBodyBytes + 1
	if _, err := sc.buf.ReadFrom(&sc.lr); err != nil {
		putBody(sc)
		return nil, nil, badRequest("read body: %v", err)
	}
	if int64(sc.buf.Len()) > s.cfg.MaxBodyBytes {
		putBody(sc)
		return nil, nil, s.errTooLarge
	}
	return sc.buf.Bytes(), sc, nil
}

// Precomputed X-Cache header values, one per disposition.
var (
	xcacheHit       = []string{"hit"}
	xcacheCold      = []string{"cold"}
	xcacheCoalesced = []string{"coalesced"}
	xcachePeer      = []string{"peer"}
)

// xcacheVals maps a disposition to its shared header value slice.
func xcacheVals(disposition string) []string {
	switch disposition {
	case "hit":
		return xcacheHit
	case "cold":
		return xcacheCold
	case "coalesced":
		return xcacheCoalesced
	case "peer":
		return xcachePeer
	}
	return []string{disposition}
}

// respond writes a rendered response, honouring If-None-Match, and stamps
// the cache disposition ("cold", "hit", or "coalesced") for observability
// and the e2e tests. Fixed headers are assigned under their canonical
// textproto keys from the response's precomputed value slices, so a cache
// hit writes zero serve-layer allocations; responses that never passed
// through evaluate (direct construction in tests) fall back to Set.
func respond(w http.ResponseWriter, r *http.Request, resp Response, disposition string) {
	h := w.Header()
	h["X-Cache"] = xcacheVals(disposition)
	if resp.ETag != "" {
		if resp.etagVals != nil {
			h["Etag"] = resp.etagVals
		} else {
			h.Set("ETag", resp.ETag)
		}
		if match := r.Header.Get("If-None-Match"); match != "" && ETagMatch(match, resp.ETag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	if resp.ctVals != nil {
		h["Content-Type"] = resp.ctVals
		h["Content-Length"] = resp.clenVals
	} else {
		h.Set("Content-Type", resp.ContentType)
		h.Set("Content-Length", strconv.Itoa(len(resp.Body)))
	}
	w.Write(resp.Body)
}

// fail writes an error as a JSON problem document, reusing the prerendered
// body when the error carries one and stamping Retry-After when the error
// names a backoff.
func fail(w http.ResponseWriter, err error) {
	status := statusOf(err)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	var he *httpError
	hasHE := errors.As(err, &he)
	if hasHE && he.retryAfter > 0 {
		h.Set("Retry-After", retryAfterSeconds(he.retryAfter))
	}
	w.WriteHeader(status)
	if hasHE && he.body != nil {
		w.Write(he.body)
		return
	}
	w.Write(problemBody(status, err.Error()))
}

// serveRawHit is the fast half of the hot path: if this exact request body
// has been seen before (raw memo) and its canonical response is still
// cached, serve it without parsing a byte of JSON. Reports whether it
// served.
func (s *Server) serveRawHit(w http.ResponseWriter, r *http.Request, rawKey Key) bool {
	key, ok := s.rawKeys.get(rawKey)
	if !ok {
		return false
	}
	resp, ok := s.cache.get(key)
	if !ok {
		return false
	}
	s.metrics.cacheHits.Add(1)
	respond(w, r, resp, "hit")
	return true
}

// serveCached is the shared hot path: look up the content address, coalesce
// concurrent misses onto one evaluation, and fill the cache. compute runs
// under the bounded queue with the per-request timeout already applied.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key Key, compute func(ctx context.Context) (Response, error)) {
	if resp, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		respond(w, r, resp, "hit")
		return
	}
	disposition := "cold"
	resp, err, shared := s.flight.do(r.Context(), key, func() (Response, error) {
		// Re-check under the flight: a request that lost the race between
		// its cache miss and its flight entry finds the winner's result.
		if resp, ok := s.cache.get(key); ok {
			s.metrics.cacheHits.Add(1)
			return resp, nil
		}
		// A rerouted cluster request names the key's owner replica: ask it
		// for the rendered bytes before paying for a local evaluation.
		if resp, ok := s.peerFill(r, key); ok {
			disposition = "peer"
			return resp, nil
		}
		s.metrics.cacheMisses.Add(1)
		resp, err := s.evaluate(r, compute)
		if err != nil {
			return Response{}, err
		}
		s.cache.put(key, resp)
		return resp, nil
	})
	if shared {
		s.metrics.coalesced.Add(1)
		disposition = "coalesced"
	}
	if err != nil {
		fail(w, err)
		return
	}
	respond(w, r, resp, disposition)
}

// evalContext derives the evaluation context for the buffered path:
// detached from any one client — N coalesced requests share the work, so
// the first client hanging up must not cancel the result the other N-1 are
// waiting for — but bounded by the effective deadline, the smaller of the
// server Timeout and the request's declared X-Deadline-Ms budget.
func (s *Server) evalContext(r *http.Request) (context.Context, context.CancelFunc) {
	budget := s.cfg.Timeout
	if d := requestBudget(r.Header); d > 0 && d < budget {
		budget = d
	}
	return context.WithTimeout(context.Background(), budget)
}

// admit acquires an evaluation slot for the tenant under ctx, translating
// rejections into their problem documents and metrics. On success the
// caller owns the returned release; a grant that arrives past the deadline
// is handed straight back — an evaluation is never started once its
// deadline has expired.
func (s *Server) admit(ctx context.Context, tenant string) (func(), error) {
	release, aerr := s.adm.acquire(ctx, tenant)
	if aerr != nil {
		switch aerr.kind {
		case admitQueueFull:
			s.metrics.queueSheds.Add(1)
			return nil, s.errQueueFull
		case admitRateLimited:
			s.metrics.rateSheds.Add(1)
			retry := aerr.retryAfter
			if retry <= 0 {
				retry = s.cfg.RetryAfterHint
			}
			msg := fmt.Sprintf("tenant %q over admission rate, request shed", tenant)
			return nil, &httpError{
				status:     http.StatusServiceUnavailable,
				msg:        msg,
				body:       problemBody(http.StatusServiceUnavailable, msg),
				retryAfter: retry,
			}
		default: // admitTimeout
			s.metrics.queueTimeouts.Add(1)
			return nil, s.errQueueTimeout
		}
	}
	if ctx.Err() != nil {
		release()
		s.metrics.deadlineSkips.Add(1)
		return nil, s.errDeadline
	}
	return release, nil
}

// evaluate runs compute under the weighted-fair admission scheduler and the
// effective deadline (see evalContext).
func (s *Server) evaluate(r *http.Request, compute func(ctx context.Context) (Response, error)) (Response, error) {
	ctx, cancel := s.evalContext(r)
	defer cancel()
	release, err := s.admit(ctx, tenantOf(r.Header))
	if err != nil {
		return Response{}, err
	}
	defer release()
	s.metrics.evaluations.Add(1)
	if s.evalDelay > 0 {
		time.Sleep(s.evalDelay)
	}
	resp, err := compute(ctx)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.metrics.evalTimeouts.Add(1)
		}
		return Response{}, err
	}
	resp.ETag = etagOf(resp.Body)
	resp.stampHeaders()
	return resp, nil
}

// etagOf derives the strong validator from the body's content address.
func etagOf(body []byte) string {
	k := ContentKey("body", body)
	return fmt.Sprintf("%q", "sha256-"+hexKey(k))
}

// hexKey renders a key as lowercase hex.
func hexKey(k Key) string {
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 2*len(k))
	for i, b := range k {
		out[2*i] = hexdigits[b>>4]
		out[2*i+1] = hexdigits[b&0xf]
	}
	return string(out)
}

// ModelRequest is the /v1/model body: either a built-in case study by name
// ("example" or any workloads registry entry), or an inline workflow to
// build against a named machine.
type ModelRequest struct {
	// Case selects a built-in case study, or "example" for the Fig 1 model.
	Case string `json:"case,omitempty"`
	// Machine names the system for inline workflows: any built-in machine
	// name (see machine.Names(); "" defaults to perlmutter).
	Machine string `json:"machine,omitempty"`
	// Workflow is an inline workflow spec (see internal/workflow JSON).
	Workflow json.RawMessage `json:"workflow,omitempty"`
	// ExternalBW overrides the machine's external staging bandwidth,
	// e.g. "5 GB/s".
	ExternalBW string `json:"external_bw,omitempty"`
	// CurveSamples overrides the bound-envelope resolution.
	CurveSamples int `json:"curve_samples,omitempty"`
	// Failure optionally adds a failure-aware analysis: the analytic
	// expected-attempts / work-factor / effective-TPS block computed from the
	// model's bound at the wall. Part of the canonical bytes, so requests
	// differing only in failure parameters get distinct cache entries.
	Failure *failure.Spec `json:"failure,omitempty"`
}

// canonicalModelRequest strictly parses and canonicalizes a model request.
func canonicalModelRequest(data []byte) (*ModelRequest, []byte, error) {
	var req ModelRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, badRequest("parse model request: %v", err)
	}
	if req.Case == "" && len(req.Workflow) == 0 {
		return nil, nil, badRequest("model request needs a case name or an inline workflow")
	}
	if req.Case != "" && len(req.Workflow) != 0 {
		return nil, nil, badRequest("model request takes a case or a workflow, not both")
	}
	// Canonical form: compact the raw workflow JSON so formatting-only
	// variants of the same request share a content address.
	if len(req.Workflow) > 0 {
		var buf bytes.Buffer
		if err := json.Compact(&buf, req.Workflow); err != nil {
			return nil, nil, badRequest("compact workflow: %v", err)
		}
		req.Workflow = buf.Bytes()
	}
	canonical, err := json.Marshal(&req)
	if err != nil {
		return nil, nil, badRequest("canonicalize model request: %v", err)
	}
	return &req, canonical, nil
}

// handleModel serves bounds + classification + advice.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	body, sc, err := s.readBody(r)
	if err != nil {
		fail(w, err)
		return
	}
	defer putBody(sc)
	rawKey := ContentKey("raw-model", body)
	if s.serveRawHit(w, r, rawKey) {
		return
	}
	req, canonical, err := canonicalModelRequest(body)
	if err != nil {
		fail(w, err)
		return
	}
	key := ContentKey("model", canonical)
	s.rawKeys.put(rawKey, key)
	s.serveCached(w, r, key, func(ctx context.Context) (Response, error) {
		return s.evaluateModel(req)
	})
}

// evaluateModel builds and analyzes the requested model.
func (s *Server) evaluateModel(req *ModelRequest) (Response, error) {
	var (
		model  *core.Model
		points []core.Point
	)
	switch {
	case req.Case == "example":
		m, err := workloads.ExampleModel()
		if err != nil {
			return Response{}, err
		}
		model = m
	case req.Case != "":
		cs, err := workloads.ByName(req.Case)
		if err != nil {
			return Response{}, badRequest("%v", err)
		}
		model, points = cs.Model, cs.Points
	default:
		built, err := s.buildInlineModel(req)
		if err != nil {
			return Response{}, err
		}
		model = built
	}
	samples := req.CurveSamples
	if samples <= 0 {
		samples = s.cfg.CurveSamples
	}
	analysis, err := model.Analyze(points, samples)
	if err != nil {
		return Response{}, badRequest("%v", err)
	}
	// Requests without a failure block marshal the bare analysis, keeping
	// their response bytes identical to the pre-failure contract.
	var payload any = analysis
	if req.Failure != nil {
		fm, err := req.Failure.Compile()
		if err != nil {
			return Response{}, badRequest("failure: %v", err)
		}
		fa := fm.Analyze(analysis.BoundAtWallTPS)
		payload = &modelAnalysis{Analysis: analysis, Failure: &fa}
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return Response{}, err
	}
	return Response{Body: append(data, '\n'), ContentType: "application/json"}, nil
}

// buildInlineModel resolves an inline-workflow model request, consulting the
// plan cache for an already-built core.Model before parsing and building.
// The key is (resolved machine name, canonical external override, compacted
// workflow JSON) — everything Build reads — and model analysis is read-only,
// so one built model serves any curve_samples, operating-point, or failure
// variation over the same workflow. Only valid combinations ever get cached
// (a build error is never stored), so a hit skips the workflow unmarshal
// and the build outright and implies both would have succeeded.
func (s *Server) buildInlineModel(req *ModelRequest) (*core.Model, error) {
	m, err := machine.ByName(req.Machine)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	opts := core.BuildOptions{}
	extKey := ""
	if req.ExternalBW != "" {
		bw, err := units.ParseByteRate(req.ExternalBW)
		if err != nil {
			return nil, badRequest("external_bw: %v", err)
		}
		opts.ExternalBW = bw
		// Key on the parsed rate, not the spelling, so "5 GB/s" and "5GB/s"
		// share an entry.
		extKey = strconv.FormatFloat(float64(bw), 'g', -1, 64)
	}
	var key plancache.Key
	if s.plans != nil {
		key = plancache.ModelKey(m.Name, extKey, req.Workflow)
		if v, ok := s.plans.Get(key); ok {
			return v.(*core.Model), nil
		}
	}
	var wf workflow.Workflow
	if err := json.Unmarshal(req.Workflow, &wf); err != nil {
		return nil, badRequest("parse workflow: %v", err)
	}
	built, err := core.Build(m, &wf, opts)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	s.plans.Put(key, built)
	return built, nil
}

// modelAnalysis is the /v1/model response when the request carries a failure
// block: the standard analysis fields flattened in place, plus the analytic
// failure block.
type modelAnalysis struct {
	*core.Analysis
	Failure *failure.Analysis `json:"failure"`
}

// SweepResponse is the /v1/sweep body: the study's report tables in print
// order, in the canonical table JSON of internal/report.
type SweepResponse struct {
	Kind   string          `json:"kind"`
	Tables []*report.Table `json:"tables"`
}

// handleSweep runs a wfsweep spec and returns its tables as JSON. Requests
// accepting NDJSON or SSE negotiate onto the streaming path instead —
// same spec format, same cache, progressive delivery.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if wantsStream(r) {
		s.handleSweepStream(w, r)
		return
	}
	body, sc, err := s.readBody(r)
	if err != nil {
		fail(w, err)
		return
	}
	defer putBody(sc)
	rawKey := ContentKey("raw-sweep", body)
	if s.serveRawHit(w, r, rawKey) {
		return
	}
	spec, err := study.ParseSpec(body)
	if err != nil {
		fail(w, badRequest("%v", err))
		return
	}
	canonical, err := spec.Canonical()
	if err != nil {
		fail(w, badRequest("%v", err))
		return
	}
	key := ContentKey("sweep", canonical)
	s.rawKeys.put(rawKey, key)
	s.serveCached(w, r, key, func(ctx context.Context) (Response, error) {
		// The server owns the parallelism budget; results are identical at
		// any worker count, so this never changes the bytes.
		spec.Workers = s.cfg.Workers
		tables, err := study.RunCached(ctx, spec, s.plans)
		if err != nil {
			return Response{}, err
		}
		data, err := json.Marshal(SweepResponse{Kind: spec.Kind, Tables: tables})
		if err != nil {
			return Response{}, err
		}
		return Response{Body: append(data, '\n'), ContentType: "application/json"}, nil
	})
}

// handleFigure renders one paper figure as SVG. The catalog's name list is
// resolved once (figures.Names sorts a fresh slice per call).
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !slices.Contains(s.figureNames, name) {
		fail(w, &httpError{status: http.StatusNotFound,
			msg: fmt.Sprintf("unknown figure %q (have %v)", name, s.figureNames)})
		return
	}
	s.serveCached(w, r, contentKeyString("figure", name), func(ctx context.Context) (Response, error) {
		fig, err := figures.Render(name)
		if err != nil {
			return Response{}, err
		}
		return Response{Body: []byte(fig.SVG), ContentType: plot.ContentTypeSVG}, nil
	})
}
