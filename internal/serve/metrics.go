package serve

import (
	"sync/atomic"
	"time"
)

// latencyBucketsMS are the upper bounds (milliseconds, inclusive) of the
// request-latency histogram; the implicit final bucket is +Inf. The range
// spans a cache hit (~10 µs) to a heavyweight Monte Carlo sweep (minutes).
var latencyBucketsMS = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 30000, 60000,
}

// Status codes are folded into statusSlots fixed atomic slots: 100..599
// map to code-100, everything else to the final "other" slot. A fixed
// array keeps the observe path free of maps and mutexes.
const (
	statusSlotMin   = 100
	statusSlotMax   = 599
	statusSlots     = statusSlotMax - statusSlotMin + 2
	statusSlotOther = statusSlots - 1
)

// statusSlot maps an HTTP status code to its atomic counter index.
func statusSlot(code int) int {
	if code < statusSlotMin || code > statusSlotMax {
		return statusSlotOther
	}
	return code - statusSlotMin
}

// metrics aggregates service counters. Everything on the observe path is
// an atomic on pre-registered state: the route table is built once at
// construction and never mutated, handlers resolve their *endpointStats a
// single time at registration, and each observation is a handful of
// atomic adds — no mutex, no map write, no allocation.
type metrics struct {
	start     time.Time
	names     []string // registration order, for deterministic iteration
	endpoints map[string]*endpointStats

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	coalesced   atomic.Uint64
	evaluations atomic.Uint64
	peerFills   atomic.Uint64

	queueTimeouts atomic.Uint64
	evalTimeouts  atomic.Uint64

	// Admission-control and streaming counters (PR 10): requests shed
	// because a tenant's waiter queue was full, shed by a tenant token
	// bucket, grants handed back because the deadline had already passed,
	// streaming responses served, and streams aborted by the client
	// mid-flight.
	queueSheds    atomic.Uint64
	rateSheds     atomic.Uint64
	deadlineSkips atomic.Uint64
	streams       atomic.Uint64
	streamAborts  atomic.Uint64
}

// endpointStats is the per-route slice of the counters: a request count,
// fixed per-status slots, and a fixed-bucket latency histogram, all atomic.
type endpointStats struct {
	count    atomic.Uint64
	byStatus [statusSlots]atomic.Uint64
	latency  []atomic.Uint64 // one slot per bucket + overflow
}

// newMetrics builds the immutable registry for the given route names.
// Observing an unregistered name is impossible by construction: handlers
// hold the *endpointStats they were registered with.
func newMetrics(names ...string) *metrics {
	m := &metrics{
		start:     time.Now(),
		names:     names,
		endpoints: make(map[string]*endpointStats, len(names)),
	}
	for _, name := range names {
		m.endpoints[name] = &endpointStats{
			latency: make([]atomic.Uint64, len(latencyBucketsMS)+1),
		}
	}
	return m
}

// endpoint returns the stats for a registered route name (nil if unknown).
func (m *metrics) endpoint(name string) *endpointStats { return m.endpoints[name] }

// observe records one completed request: three atomic adds and a short
// linear scan over the 19 bucket bounds.
func (st *endpointStats) observe(status int, dur time.Duration) {
	st.count.Add(1)
	st.byStatus[statusSlot(status)].Add(1)
	ms := float64(dur) / float64(time.Millisecond)
	slot := len(latencyBucketsMS)
	for i, le := range latencyBucketsMS {
		if ms <= le {
			slot = i
			break
		}
	}
	st.latency[slot].Add(1)
}

// Snapshot is the JSON shape of /metrics.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Requests      map[string]EndpointSnapshot `json:"requests"`
	Cache         CacheSnapshot               `json:"cache"`
	Coalesced     uint64                      `json:"coalesced"`
	Evaluations   uint64                      `json:"evaluations"`
	QueueTimeouts uint64                      `json:"queue_timeouts"`
	EvalTimeouts  uint64                      `json:"eval_timeouts"`
	// PeerFills counts misses satisfied from a peer replica's cache instead
	// of a local evaluation (cluster mode; omitted when zero so the
	// single-process snapshot shape is unchanged).
	PeerFills uint64 `json:"peer_fills,omitempty"`
	// Admission-control and streaming counters, all omitted when zero so
	// earlier snapshot shapes are unchanged: QueueSheds are immediate
	// rejections on a full tenant queue, RateSheds token-bucket rejections,
	// DeadlineSkips slot grants returned unused because the request's
	// deadline had passed, Streams completed streaming responses, and
	// StreamAborts streams the client abandoned mid-flight.
	QueueSheds    uint64 `json:"queue_sheds,omitempty"`
	RateSheds     uint64 `json:"rate_sheds,omitempty"`
	DeadlineSkips uint64 `json:"deadline_skips,omitempty"`
	Streams       uint64 `json:"streams,omitempty"`
	StreamAborts  uint64 `json:"stream_aborts,omitempty"`
	// Second-level plan cache counters (construction artifacts: compiled
	// plans, built models, generated corpus scenarios), filled by the Server
	// from the plancache stats. All omitted when zero / when the cache is
	// disabled, so earlier snapshot shapes are unchanged.
	PlanCacheEntries   int    `json:"plan_cache_entries,omitempty"`
	PlanCacheHits      uint64 `json:"plan_cache_hits,omitempty"`
	PlanCacheMisses    uint64 `json:"plan_cache_misses,omitempty"`
	PlanCacheEvictions uint64 `json:"plan_cache_evictions,omitempty"`
}

// EndpointSnapshot summarizes one route.
type EndpointSnapshot struct {
	Count     uint64            `json:"count"`
	ByStatus  map[string]uint64 `json:"by_status"`
	LatencyMS []LatencyBucket   `json:"latency_ms"`
	// Percentiles estimates p50/p95/p99 from the latency histogram; nil
	// until the route has served a request. A new field — the rest of the
	// snapshot shape is unchanged from earlier releases.
	Percentiles *PercentileSnapshot `json:"percentiles_ms,omitempty"`
}

// PercentileSnapshot carries histogram-derived latency percentiles in
// milliseconds. Each value interpolates linearly inside its bucket, so the
// error is bounded by the bucket width; observations past the last finite
// bound (60 s) report that bound.
type PercentileSnapshot struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// LatencyBucket is one histogram bar: requests at or under LE milliseconds
// (cumulative-free, per-bucket counts; LE 0 marks the +Inf overflow bucket).
type LatencyBucket struct {
	LE    float64 `json:"le,omitempty"`
	Count uint64  `json:"count"`
}

// CacheSnapshot reports the content-addressed cache's effectiveness.
type CacheSnapshot struct {
	Entries  int     `json:"entries"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

// histogramPercentile estimates the q-th percentile (0 < q < 1) from
// per-bucket counts, interpolating linearly between bucket bounds. The
// overflow bucket is clamped to the last finite bound.
func histogramPercentile(counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	lo := 0.0
	for i, n := range counts {
		if n == 0 {
			if i < len(latencyBucketsMS) {
				lo = latencyBucketsMS[i]
			}
			continue
		}
		next := cum + float64(n)
		if next >= target {
			if i >= len(latencyBucketsMS) { // overflow bucket
				return latencyBucketsMS[len(latencyBucketsMS)-1]
			}
			hi := latencyBucketsMS[i]
			frac := (target - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum = next
		if i < len(latencyBucketsMS) {
			lo = latencyBucketsMS[i]
		}
	}
	return latencyBucketsMS[len(latencyBucketsMS)-1]
}

// snapshot copies the counters into their serializable form. Empty latency
// buckets are elided to keep /metrics readable; atomic loads mean the
// snapshot is a near-point-in-time view, never a blocked observe path.
func (m *metrics) snapshot(cacheEntries int) Snapshot {
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	snap := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      make(map[string]EndpointSnapshot, len(m.endpoints)),
		Cache: CacheSnapshot{
			Entries: cacheEntries,
			Hits:    hits,
			Misses:  misses,
		},
		Coalesced:     m.coalesced.Load(),
		Evaluations:   m.evaluations.Load(),
		QueueTimeouts: m.queueTimeouts.Load(),
		EvalTimeouts:  m.evalTimeouts.Load(),
		PeerFills:     m.peerFills.Load(),
		QueueSheds:    m.queueSheds.Load(),
		RateSheds:     m.rateSheds.Load(),
		DeadlineSkips: m.deadlineSkips.Load(),
		Streams:       m.streams.Load(),
		StreamAborts:  m.streamAborts.Load(),
	}
	if total := hits + misses; total > 0 {
		snap.Cache.HitRatio = float64(hits) / float64(total)
	}
	for _, name := range m.names {
		st := m.endpoints[name]
		count := st.count.Load()
		if count == 0 {
			continue
		}
		es := EndpointSnapshot{Count: count, ByStatus: make(map[string]uint64)}
		for slot := range st.byStatus {
			if n := st.byStatus[slot].Load(); n > 0 {
				code := slot + statusSlotMin
				if slot == statusSlotOther {
					code = 0
				}
				es.ByStatus[statusLabel(code)] = n
			}
		}
		counts := make([]uint64, len(st.latency))
		var mass uint64
		for i := range st.latency {
			counts[i] = st.latency[i].Load()
			mass += counts[i]
		}
		for i, n := range counts {
			if n == 0 {
				continue
			}
			b := LatencyBucket{Count: n}
			if i < len(latencyBucketsMS) {
				b.LE = latencyBucketsMS[i]
			}
			es.LatencyMS = append(es.LatencyMS, b)
		}
		if mass > 0 {
			es.Percentiles = &PercentileSnapshot{
				P50: histogramPercentile(counts, mass, 0.50),
				P95: histogramPercentile(counts, mass, 0.95),
				P99: histogramPercentile(counts, mass, 0.99),
			}
		}
		snap.Requests[name] = es
	}
	return snap
}

// statusLabel renders an HTTP status code as a JSON map key.
func statusLabel(code int) string {
	const digits = "0123456789"
	if code < 100 || code > 999 {
		return "other"
	}
	return string([]byte{digits[code/100], digits[code/10%10], digits[code%10]})
}
