package serve

import (
	"sync"
	"time"
)

// latencyBucketsMS are the upper bounds (milliseconds, inclusive) of the
// request-latency histogram; the implicit final bucket is +Inf. The range
// spans a cache hit (~10 µs) to a heavyweight Monte Carlo sweep (minutes).
var latencyBucketsMS = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 30000, 60000,
}

// metrics aggregates service counters. One mutex guards everything: the
// request path touches it twice (once per counter family), which is noise
// next to a SHA-256 of the body, let alone an evaluation.
type metrics struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*endpointStats

	cacheHits   uint64
	cacheMisses uint64
	coalesced   uint64
	evaluations uint64

	queueTimeouts uint64
	evalTimeouts  uint64
}

// endpointStats is the per-route slice of the counters.
type endpointStats struct {
	count    uint64
	byStatus map[int]uint64
	latency  []uint64 // one slot per bucket + overflow
}

// newMetrics creates an empty registry.
func newMetrics() *metrics {
	return &metrics{start: time.Now(), endpoints: make(map[string]*endpointStats)}
}

// observe records one completed request.
func (m *metrics) observe(endpoint string, status int, dur time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.endpoints[endpoint]
	if !ok {
		st = &endpointStats{
			byStatus: make(map[int]uint64),
			latency:  make([]uint64, len(latencyBucketsMS)+1),
		}
		m.endpoints[endpoint] = st
	}
	st.count++
	st.byStatus[status]++
	ms := float64(dur) / float64(time.Millisecond)
	slot := len(latencyBucketsMS)
	for i, le := range latencyBucketsMS {
		if ms <= le {
			slot = i
			break
		}
	}
	st.latency[slot]++
}

// counter bumps one of the named scalar counters.
func (m *metrics) counter(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch name {
	case "cache_hit":
		m.cacheHits++
	case "cache_miss":
		m.cacheMisses++
	case "coalesced":
		m.coalesced++
	case "evaluation":
		m.evaluations++
	case "queue_timeout":
		m.queueTimeouts++
	case "eval_timeout":
		m.evalTimeouts++
	}
}

// Snapshot is the JSON shape of /metrics.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Requests      map[string]EndpointSnapshot `json:"requests"`
	Cache         CacheSnapshot               `json:"cache"`
	Coalesced     uint64                      `json:"coalesced"`
	Evaluations   uint64                      `json:"evaluations"`
	QueueTimeouts uint64                      `json:"queue_timeouts"`
	EvalTimeouts  uint64                      `json:"eval_timeouts"`
}

// EndpointSnapshot summarizes one route.
type EndpointSnapshot struct {
	Count     uint64            `json:"count"`
	ByStatus  map[string]uint64 `json:"by_status"`
	LatencyMS []LatencyBucket   `json:"latency_ms"`
}

// LatencyBucket is one histogram bar: requests at or under LE milliseconds
// (cumulative-free, per-bucket counts; LE 0 marks the +Inf overflow bucket).
type LatencyBucket struct {
	LE    float64 `json:"le,omitempty"`
	Count uint64  `json:"count"`
}

// CacheSnapshot reports the content-addressed cache's effectiveness.
type CacheSnapshot struct {
	Entries  int     `json:"entries"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

// snapshot copies the counters into their serializable form. Empty latency
// buckets are elided to keep /metrics readable.
func (m *metrics) snapshot(cacheEntries int) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      make(map[string]EndpointSnapshot, len(m.endpoints)),
		Cache: CacheSnapshot{
			Entries: cacheEntries,
			Hits:    m.cacheHits,
			Misses:  m.cacheMisses,
		},
		Coalesced:     m.coalesced,
		Evaluations:   m.evaluations,
		QueueTimeouts: m.queueTimeouts,
		EvalTimeouts:  m.evalTimeouts,
	}
	if total := m.cacheHits + m.cacheMisses; total > 0 {
		snap.Cache.HitRatio = float64(m.cacheHits) / float64(total)
	}
	for name, st := range m.endpoints {
		es := EndpointSnapshot{Count: st.count, ByStatus: make(map[string]uint64, len(st.byStatus))}
		for code, n := range st.byStatus {
			es.ByStatus[statusLabel(code)] = n
		}
		for i, n := range st.latency {
			if n == 0 {
				continue
			}
			b := LatencyBucket{Count: n}
			if i < len(latencyBucketsMS) {
				b.LE = latencyBucketsMS[i]
			}
			es.LatencyMS = append(es.LatencyMS, b)
		}
		snap.Requests[name] = es
	}
	return snap
}

// statusLabel renders an HTTP status code as a JSON map key.
func statusLabel(code int) string {
	const digits = "0123456789"
	if code < 100 || code > 999 {
		return "other"
	}
	return string([]byte{digits[code/100], digits[code/10%10], digits[code%10]})
}
