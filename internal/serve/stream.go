// Streaming sweep delivery: the /v1/sweep/stream endpoint (also reachable
// via Accept negotiation on /v1/sweep) runs ensemble studies through
// study.RunStream and pushes partial aggregates to the client as the
// completed-trial frontier advances, instead of buffering the whole
// response. Time-to-first-result becomes one chunk of trials rather than
// the full sweep, and peak response memory is O(event), not O(trials).
//
// Two wire formats are negotiated from the Accept header:
//
//	application/x-ndjson (default)  one JSON object per line: progress
//	                                events, then the final result line
//	text/event-stream               SSE frames: "event: progress" /
//	                                "event: result" / "event: error"
//
// The final result line is the exact byte sequence the buffered /v1/sweep
// endpoint returns for the same spec — both render through the same runner
// and marshal once — so a client keeping only the last line has the
// canonical response, and the cache they fill is shared between paths.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"wroofline/internal/study"
	"wroofline/internal/sweep"
)

// Streaming content types.
const (
	ContentTypeNDJSON = "application/x-ndjson"
	ContentTypeSSE    = "text/event-stream"
)

// wantsStream reports whether a /v1/sweep request negotiated a streaming
// response via Accept.
func wantsStream(r *http.Request) bool {
	a := r.Header.Get("Accept")
	return strings.Contains(a, ContentTypeNDJSON) || strings.Contains(a, ContentTypeSSE)
}

// handleSweepStream runs a wfsweep spec and streams partial aggregates as
// NDJSON lines or SSE frames, ending with the canonical buffered response
// bytes as the final event.
func (s *Server) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	sse := strings.Contains(r.Header.Get("Accept"), ContentTypeSSE)
	body, sc, err := s.readBody(r)
	if err != nil {
		fail(w, err)
		return
	}
	defer putBody(sc)
	rawKey := ContentKey("raw-sweep", body)
	// The raw-memo fast path mirrors the buffered endpoint: a cached final
	// is streamed as a single result event with zero parsing.
	if key, ok := s.rawKeys.get(rawKey); ok {
		if resp, ok := s.cache.get(key); ok {
			s.metrics.cacheHits.Add(1)
			s.streamCached(w, resp, sse)
			return
		}
	}
	spec, err := study.ParseSpec(body)
	if err != nil {
		fail(w, badRequest("%v", err))
		return
	}
	canonical, err := spec.Canonical()
	if err != nil {
		fail(w, badRequest("%v", err))
		return
	}
	key := ContentKey("sweep", canonical)
	s.rawKeys.put(rawKey, key)
	if resp, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		s.streamCached(w, resp, sse)
		return
	}

	// Unlike the buffered path, the evaluation context is the client's: a
	// stream has exactly one consumer, so a mid-stream disconnect cancels
	// the remaining trials promptly instead of burning slot time on an
	// answer nobody will read. The effective deadline still caps it.
	budget := s.cfg.Timeout
	if d := requestBudget(r.Header); d > 0 && d < budget {
		budget = d
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	release, err := s.admit(ctx, tenantOf(r.Header))
	if err != nil {
		fail(w, err)
		return
	}
	defer release()
	s.metrics.cacheMisses.Add(1)
	s.metrics.evaluations.Add(1)
	if s.evalDelay > 0 {
		time.Sleep(s.evalDelay)
	}

	enc := newStreamEncoder(w, sse)
	enc.head("cold")

	// The server owns the parallelism budget; results are identical at any
	// worker count, so this never changes the bytes.
	spec.Workers = s.cfg.Workers
	// Progress callbacks arrive on sweep worker goroutines, serialized by
	// the completion-frontier lock; the handler goroutine blocks inside
	// RunStream until they are done, so writes to the ResponseWriter never
	// interleave.
	tables, err := study.RunStreamCached(ctx, spec, s.plans, func(p study.Progress) {
		enc.progress(p)
	})
	if err != nil {
		if r.Context().Err() != nil {
			s.metrics.streamAborts.Add(1)
			return
		}
		enc.fail(statusOf(err), err)
		return
	}
	data, err := json.Marshal(SweepResponse{Kind: spec.Kind, Tables: tables})
	if err != nil {
		enc.fail(http.StatusInternalServerError, err)
		return
	}
	resp := Response{Body: append(data, '\n'), ContentType: "application/json"}
	resp.ETag = etagOf(resp.Body)
	resp.stampHeaders()
	s.cache.put(key, resp)
	enc.result(resp.Body)
	s.metrics.streams.Add(1)
}

// streamCached serves an already-rendered response as a one-event stream:
// the result arrives in the negotiated framing with X-Cache: hit, so
// streaming clients hit the same cache as buffered ones.
func (s *Server) streamCached(w http.ResponseWriter, resp Response, sse bool) {
	enc := newStreamEncoder(w, sse)
	enc.head("hit")
	enc.result(resp.Body)
	s.metrics.streams.Add(1)
}

// streamEncoder writes progress/result/error events in the negotiated
// framing, flushing after every event so each reaches the client
// immediately. Progress lines are appended into a reused scratch buffer
// with strconv — no per-event allocation once the buffer has grown. The
// first write error latches: a gone client turns the rest of the stream
// into no-ops while the evaluation context does the actual cancelling.
type streamEncoder struct {
	w   http.ResponseWriter
	f   http.Flusher
	sse bool
	buf []byte
	err error
}

// newStreamEncoder wraps the response writer; a writer without Flusher
// (some test doubles) degrades to buffered writes rather than panicking.
func newStreamEncoder(w http.ResponseWriter, sse bool) *streamEncoder {
	f, _ := w.(http.Flusher)
	return &streamEncoder{w: w, f: f, sse: sse, buf: make([]byte, 0, 256)}
}

// head writes the stream headers and pushes them to the client before the
// first trial completes — time-to-first-byte is connection setup, not sweep
// progress.
func (e *streamEncoder) head(disposition string) {
	h := e.w.Header()
	if e.sse {
		h.Set("Content-Type", ContentTypeSSE)
	} else {
		h.Set("Content-Type", ContentTypeNDJSON)
	}
	h.Set("Cache-Control", "no-store")
	h["X-Cache"] = xcacheVals(disposition)
	e.w.WriteHeader(http.StatusOK)
	e.flush()
}

// flush pushes buffered bytes to the client when the writer supports it.
func (e *streamEncoder) flush() {
	if e.f != nil {
		e.f.Flush()
	}
}

// write sends one fully framed event, latching the first error.
func (e *streamEncoder) write(p []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.w.Write(p); err != nil {
		e.err = err
		return
	}
	e.flush()
}

// progress appends one partial-aggregate event to the scratch buffer and
// sends it. The JSON field names match study.Progress / sweep.Summary tags,
// so clients decode events with the same structs the server defines.
func (e *streamEncoder) progress(p study.Progress) {
	if e.err != nil {
		return
	}
	b := e.buf[:0]
	if e.sse {
		b = append(b, "event: progress\ndata: "...)
	}
	b = append(b, `{"event":"progress","done":`...)
	b = strconv.AppendInt(b, int64(p.Done), 10)
	b = append(b, `,"total":`...)
	b = strconv.AppendInt(b, int64(p.Total), 10)
	b = append(b, `,"summary":`...)
	b = appendSummary(b, p.Summary)
	b = append(b, '}')
	if e.sse {
		b = append(b, '\n', '\n')
	} else {
		b = append(b, '\n')
	}
	e.buf = b
	e.write(b)
}

// result sends the final event: the canonical buffered response body,
// byte-identical to what POST /v1/sweep returns for the same spec. NDJSON
// emits it verbatim as the last line; SSE wraps it in a result frame.
func (e *streamEncoder) result(body []byte) {
	if e.err != nil {
		return
	}
	if !e.sse {
		e.write(body)
		return
	}
	b := e.buf[:0]
	b = append(b, "event: result\ndata: "...)
	b = append(b, bytes.TrimSuffix(body, []byte{'\n'})...)
	b = append(b, '\n', '\n')
	e.buf = b
	e.write(b)
}

// fail reports an evaluation error in-band: headers are long gone on a
// stream, so the error travels as a terminal event instead of a status
// code.
func (e *streamEncoder) fail(status int, err error) {
	payload, merr := json.Marshal(map[string]any{
		"event":  "error",
		"status": status,
		"error":  err.Error(),
	})
	if merr != nil {
		return
	}
	b := e.buf[:0]
	if e.sse {
		b = append(b, "event: error\ndata: "...)
	}
	b = append(b, payload...)
	if e.sse {
		b = append(b, '\n', '\n')
	} else {
		b = append(b, '\n')
	}
	e.buf = b
	e.write(b)
}

// appendSummary renders a sweep.Summary with the same field names and
// ordering as its struct tags, using strconv appends to keep the per-event
// path allocation-free.
func appendSummary(b []byte, s sweep.Summary) []byte {
	b = append(b, `{"n":`...)
	b = strconv.AppendInt(b, int64(s.N), 10)
	b = append(b, `,"min":`...)
	b = appendFloat(b, s.Min)
	b = append(b, `,"max":`...)
	b = appendFloat(b, s.Max)
	b = append(b, `,"mean":`...)
	b = appendFloat(b, s.Mean)
	b = append(b, `,"p50":`...)
	b = appendFloat(b, s.P50)
	b = append(b, `,"p90":`...)
	b = appendFloat(b, s.P90)
	b = append(b, `,"p99":`...)
	b = appendFloat(b, s.P99)
	b = append(b, `,"tail_ratio":`...)
	b = appendFloat(b, s.TailRatio)
	return append(b, '}')
}

// appendFloat renders a float in the shortest round-trippable form.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
