package serve

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// testKey derives a deterministic content key from an integer.
func testKey(i uint64) Key {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return ContentKey("t", b[:])
}

// TestShardCountNormalization pins the shard-geometry rules: power of two,
// clamped to [1, 256], degraded until every shard holds at least two
// entries, and exactly one shard for tiny caches (strict global LRU).
func TestShardCountNormalization(t *testing.T) {
	cases := []struct {
		capacity, requested, want int
	}{
		{512, 16, 16},
		{512, 12, 16},    // round up to a power of two
		{512, 1000, 256}, // clamp to one key byte
		{512, 0, 1},
		{32, 16, 16},
		{16, 16, 8}, // halve until >= 2 entries per shard
		{2, 16, 1},  // tiny cache: one shard, exact LRU
		{1, 16, 1},
		{3, 2, 1},
		{4, 2, 2},
	}
	for _, tc := range cases {
		if got := shardCount(tc.capacity, tc.requested); got != tc.want {
			t.Errorf("shardCount(%d, %d) = %d, want %d", tc.capacity, tc.requested, got, tc.want)
		}
	}
}

// TestShardedCapacityPreserved checks that the per-shard capacities sum to
// exactly the configured total for a spread of geometries.
func TestShardedCapacityPreserved(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 5, 16, 17, 100, 512, 513} {
		for _, shards := range []int{1, 2, 4, 16, 64, 256} {
			c := newShardedLRU[Response](capacity, shards)
			if got := c.capacity(); got != capacity {
				t.Errorf("capacity(%d, %d shards): shards sum to %d", capacity, shards, got)
			}
		}
	}
}

// TestShardedProperties drives the three testing/quick invariants the issue
// pins: total entries never exceed configured capacity, the same key always
// maps to the same shard, and put-then-get round-trips the value.
func TestShardedProperties(t *testing.T) {
	t.Run("entries never exceed capacity", func(t *testing.T) {
		prop := func(capRaw uint8, shardsRaw uint8, ops []uint16) bool {
			capacity := int(capRaw%64) + 1
			c := newShardedLRU[Response](capacity, int(shardsRaw%32)+1)
			for _, op := range ops {
				c.put(testKey(uint64(op%256)), Response{Body: []byte{byte(op)}})
				if c.len() > capacity {
					return false
				}
			}
			return c.len() <= capacity
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("same key maps to same shard", func(t *testing.T) {
		c := newShardedLRU[Response](512, 16)
		prop := func(i uint64) bool {
			k := testKey(i)
			return c.shard(k) == c.shard(k) && c.shard(k) == &c.shards[k[0]&c.mask]
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("put then get round-trips", func(t *testing.T) {
		c := newShardedLRU[Response](512, 16)
		prop := func(i uint64, body []byte) bool {
			k := testKey(i)
			c.put(k, Response{Body: body, ContentType: "t"})
			got, ok := c.get(k)
			return ok && string(got.Body) == string(body) && got.ContentType == "t"
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})
}

// TestShardedSpread sanity-checks that sequential content keys actually
// land on more than one shard (SHA-256 first bytes are uniform).
func TestShardedSpread(t *testing.T) {
	c := newShardedLRU[Response](512, 16)
	seen := map[byte]bool{}
	for i := uint64(0); i < 256; i++ {
		k := testKey(i)
		seen[k[0]&c.mask] = true
	}
	if len(seen) != 16 {
		t.Errorf("256 keys touched %d/16 shards", len(seen))
	}
}

// TestShardedStress hammers get/put/flush/len across every shard from many
// goroutines; run under -race this is the concurrency proof for the sharded
// cache. The capacity invariant is re-checked after the storm.
func TestShardedStress(t *testing.T) {
	const (
		capacity   = 128
		goroutines = 16
		keys       = 512
	)
	c := newShardedLRU[Response](capacity, 16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := testKey(uint64(rng.Intn(keys)))
				switch i % 8 {
				case 0:
					c.put(k, Response{Body: []byte(fmt.Sprintf("v%d", g))})
				case 5:
					if c.len() > capacity {
						t.Errorf("len %d exceeds capacity %d", c.len(), capacity)
						return
					}
				case 7:
					if g == 0 && i%1024 == 7 {
						c.flush()
					}
				default:
					c.get(k)
				}
			}
		}(g)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if c.len() > capacity {
		t.Errorf("post-stress len %d exceeds capacity %d", c.len(), capacity)
	}
}

// TestFlightShardedStress coalesces concurrent work across many keys and
// shards at once; each key's computation must run while racing flights on
// other keys proceed independently.
func TestFlightShardedStress(t *testing.T) {
	g := newFlightGroup(16)
	const keys = 64
	var evals [keys]int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for i := 0; i < keys; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				k := testKey(uint64(i))
				resp, err, _ := g.do(context.Background(), k, func() (Response, error) {
					mu.Lock()
					evals[i]++
					mu.Unlock()
					return Response{Body: []byte{byte(i)}}, nil
				})
				if err != nil || len(resp.Body) != 1 || resp.Body[0] != byte(i) {
					t.Errorf("key %d: resp=%v err=%v", i, resp.Body, err)
				}
			}(i)
		}
		wg.Wait()
	}
	for i, n := range evals {
		if n == 0 || n > 4 {
			t.Errorf("key %d evaluated %d times over 4 rounds", i, n)
		}
	}
}

// TestHitPathZeroAllocs asserts the serve-layer hot path — raw-key hash,
// raw memo lookup, cache hit, and the metrics observe — allocates nothing.
// This is the machinery between net/http and the cached bytes; the PR's
// acceptance floor is 0 allocs/op here.
func TestHitPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s := New(Config{})
	body := []byte(`{"case":"example"}`)
	canonicalKey := ContentKey("model", body)
	rawKey := ContentKey("raw-model", body)
	s.rawKeys.put(rawKey, canonicalKey)
	s.cache.put(canonicalKey, Response{Body: []byte("resp"), ContentType: "application/json", clen: "4"})
	st := s.metrics.endpoint("model")
	allocs := testing.AllocsPerRun(1000, func() {
		rk := ContentKey("raw-model", body)
		key, ok := s.rawKeys.get(rk)
		if !ok {
			t.Fatal("raw memo miss")
		}
		if _, ok := s.cache.get(key); !ok {
			t.Fatal("cache miss")
		}
		s.metrics.cacheHits.Add(1)
		st.observe(200, 42*time.Microsecond)
	})
	if allocs != 0 {
		t.Errorf("hit path allocates %.1f per op, want 0", allocs)
	}
}
