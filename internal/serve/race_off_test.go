//go:build !race

package serve

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation assertions are skipped under -race because instrumentation
// allocates.
const raceEnabled = false
