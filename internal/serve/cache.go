package serve

import (
	"container/list"
	"crypto/sha256"
	"sync"
)

// Key is a content address: the SHA-256 of an endpoint tag plus the
// canonicalized request. Because every evaluation in the toolkit is
// deterministic (internal/sweep seeds per trial, internal/plot renders pure
// functions of the model), equal keys imply byte-equal responses — a cached
// body is indistinguishable from a recomputed one.
type Key = [sha256.Size]byte

// ContentKey hashes an endpoint kind and a canonical request body into a
// cache key. The kind prefix keeps, say, a sweep spec and a model spec with
// identical bytes from colliding.
func ContentKey(kind string, canonical []byte) Key {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(canonical)
	var k Key
	h.Sum(k[:0])
	return k
}

// Response is a fully rendered response body, ready to serve.
type Response struct {
	// Body is the exact byte payload; ContentType its MIME type.
	Body        []byte
	ContentType string
	// ETag is the strong validator derived from the body hash.
	ETag string
}

// lruCache is a fixed-capacity, mutex-guarded LRU keyed by content address.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[Key]*list.Element
}

// lruEntry is one cache slot.
type lruEntry struct {
	key  Key
	resp Response
}

// newLRUCache creates a cache holding up to capacity responses (minimum 1).
func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[Key]*list.Element),
	}
}

// get returns the cached response and marks it most recently used.
func (c *lruCache) get(k Key) (Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return Response{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).resp, true
}

// put stores a response, evicting the least recently used entry when full.
// Storing an existing key refreshes its recency; the body is identical by
// construction (same content address), so there is nothing to overwrite.
func (c *lruCache) put(k Key, resp Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&lruEntry{key: k, resp: resp})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// len reports the number of cached responses.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flush empties the cache (used by cold-path benchmarks and tests).
func (c *lruCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.items)
}
