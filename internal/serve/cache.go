package serve

import (
	"container/list"
	"crypto/sha256"
	"strconv"
	"sync"
)

// Key is a content address: the SHA-256 of an endpoint tag plus the
// canonicalized request. Because every evaluation in the toolkit is
// deterministic (internal/sweep seeds per trial, internal/plot renders pure
// functions of the model), equal keys imply byte-equal responses — a cached
// body is indistinguishable from a recomputed one.
type Key = [sha256.Size]byte

// keyScratch recycles the concatenation buffer behind ContentKey so the
// hot path hashes without allocating.
type keyScratch struct{ buf []byte }

// keyPool holds keyScratch buffers across requests.
var keyPool = sync.Pool{New: func() any { return &keyScratch{buf: make([]byte, 0, 4096)} }}

// ContentKey hashes an endpoint kind and a canonical request body into a
// cache key. The kind prefix keeps, say, a sweep spec and a model spec with
// identical bytes from colliding. The digest is SHA-256 over
// kind || 0x00 || canonical, assembled in a pooled buffer and hashed with
// the one-shot Sum256 — zero heap allocations at steady state.
func ContentKey(kind string, canonical []byte) Key {
	s := keyPool.Get().(*keyScratch)
	b := append(s.buf[:0], kind...)
	b = append(b, 0)
	b = append(b, canonical...)
	k := Key(sha256.Sum256(b))
	s.buf = b[:0]
	keyPool.Put(s)
	return k
}

// contentKeyString is ContentKey for a string payload, skipping the []byte
// conversion on hot GET paths.
func contentKeyString(kind, canonical string) Key {
	s := keyPool.Get().(*keyScratch)
	b := append(s.buf[:0], kind...)
	b = append(b, 0)
	b = append(b, canonical...)
	k := Key(sha256.Sum256(b))
	s.buf = b[:0]
	keyPool.Put(s)
	return k
}

// Response is a fully rendered response body, ready to serve.
type Response struct {
	// Body is the exact byte payload; ContentType its MIME type.
	Body        []byte
	ContentType string
	// ETag is the strong validator derived from the body hash.
	ETag string

	// clen is len(Body) pre-rendered as a decimal string, and the *Vals
	// slices are the single-element header values for the response's fixed
	// headers — all stamped once at evaluation time so a cache hit writes
	// its headers into the response map without allocating.
	clen     string
	ctVals   []string
	etagVals []string
	clenVals []string
}

// stampHeaders precomputes the Content-Length string and the header value
// slices. Called once per evaluation; every later hit reuses them.
func (r *Response) stampHeaders() {
	r.clen = strconv.Itoa(len(r.Body))
	r.ctVals = []string{r.ContentType}
	r.etagVals = []string{r.ETag}
	r.clenVals = []string{r.clen}
}

// shardedLRU is a fixed-total-capacity LRU keyed by content address and
// sharded by the first byte of the SHA-256 key: concurrent hits on distinct
// keys land on distinct shards (power-of-two count) and never contend on a
// shared mutex. Each shard owns its mutex, its slice of the total capacity,
// and strict LRU order within the shard; len and flush iterate shards.
type shardedLRU[V any] struct {
	mask   byte
	shards []lruShard[V]
}

// lruShard is one independently locked slice of the cache. The trailing pad
// keeps neighbouring shards' mutexes off the same cache line.
type lruShard[V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[Key]*list.Element
	_     [40]byte
}

// lruEntry is one cache slot.
type lruEntry[V any] struct {
	key Key
	val V
}

// shardCount normalizes a requested shard count: clamp to [1, 256] (the
// selector is one key byte), round up to a power of two, then halve until
// every shard owns at least two entries — a cache smaller than twice the
// shard count degenerates to fewer shards, and a tiny cache to exactly one,
// which preserves strict global LRU order for small configurations.
func shardCount(capacity, requested int) int {
	n := 1
	for n < requested && n < 256 {
		n <<= 1
	}
	for n > 1 && capacity/n < 2 {
		n >>= 1
	}
	return n
}

// newShardedLRU creates a cache holding up to capacity values in total
// (minimum 1), split across shardCount(capacity, shards) shards.
func newShardedLRU[V any](capacity, shards int) *shardedLRU[V] {
	if capacity < 1 {
		capacity = 1
	}
	n := shardCount(capacity, shards)
	c := &shardedLRU[V]{mask: byte(n - 1), shards: make([]lruShard[V], n)}
	base, rem := capacity/n, capacity%n
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cap = base
		if i < rem {
			sh.cap++
		}
		sh.order = list.New()
		sh.items = make(map[Key]*list.Element)
	}
	return c
}

// shard maps a key to its home shard: the first byte of the SHA-256 masked
// down to the power-of-two shard count. SHA-256 output is uniform, so keys
// spread evenly.
func (c *shardedLRU[V]) shard(k Key) *lruShard[V] {
	return &c.shards[k[0]&c.mask]
}

// get returns the cached value and marks it most recently used in its shard.
func (c *shardedLRU[V]) get(k Key) (V, bool) {
	sh := c.shard(k)
	sh.mu.Lock()
	el, ok := sh.items[k]
	if !ok {
		sh.mu.Unlock()
		var zero V
		return zero, false
	}
	sh.order.MoveToFront(el)
	v := el.Value.(*lruEntry[V]).val
	sh.mu.Unlock()
	return v, true
}

// put stores a value, evicting the shard's least recently used entry when
// the shard is full. Storing an existing key refreshes its recency; the
// value is identical by construction (same content address), so there is
// nothing to overwrite.
func (c *shardedLRU[V]) put(k Key, v V) {
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[k]; ok {
		sh.order.MoveToFront(el)
		return
	}
	sh.items[k] = sh.order.PushFront(&lruEntry[V]{key: k, val: v})
	for sh.order.Len() > sh.cap {
		last := sh.order.Back()
		sh.order.Remove(last)
		delete(sh.items, last.Value.(*lruEntry[V]).key)
	}
}

// len reports the number of cached values across all shards.
func (c *shardedLRU[V]) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}

// capacity reports the configured total capacity across shards.
func (c *shardedLRU[V]) capacity() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].cap
	}
	return n
}

// flush empties every shard (used by cold-path benchmarks and tests).
func (c *shardedLRU[V]) flush() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.order.Init()
		clear(sh.items)
		sh.mu.Unlock()
	}
}
