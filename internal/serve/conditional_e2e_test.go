package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// postConditional sends a JSON body with an If-None-Match validator.
func postConditional(t *testing.T, url, body, etag string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// testConditionalEndpoint drives the ETag contract for one POST endpoint:
// the first response carries a strong validator, replaying it in
// If-None-Match yields an empty 304 with the same validator, and a stale
// validator yields the full 200 body again.
func testConditionalEndpoint(t *testing.T, url, body string) {
	status, full, hdr := post(t, url, body)
	if status != http.StatusOK {
		t.Fatalf("cold request: status %d, body %s", status, full)
	}
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on response")
	}

	resp := postConditional(t, url, body, etag)
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("matching If-None-Match: status %d, want 304", resp.StatusCode)
	}
	if len(data) != 0 {
		t.Errorf("304 carried %d body bytes", len(data))
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}

	resp = postConditional(t, url, body, `"stale"`)
	data, _ = io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stale If-None-Match: status %d, want 200", resp.StatusCode)
	}
	if string(data) != string(full) {
		t.Errorf("stale-validator body differs from cold body")
	}
}

// TestModelConditionalRequests pins ETag emission and If-None-Match -> 304
// on /v1/model.
func TestModelConditionalRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	testConditionalEndpoint(t, ts.URL+"/v1/model", `{"case":"example"}`)
}

// TestSweepConditionalRequests pins the same contract on /v1/sweep.
func TestSweepConditionalRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := `{"kind":"montecarlo","case":"lcls-cori","trials":8,"seed":3,` +
		`"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`
	testConditionalEndpoint(t, ts.URL+"/v1/sweep", spec)
}

// TestConditionalAcrossRawMemo checks the fast raw-body path honours
// If-None-Match too: the second identical request short-circuits JSON
// parsing via the raw memo, and must still answer 304.
func TestConditionalAcrossRawMemo(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{"case":"example"}`
	_, _, hdr := post(t, ts.URL+"/v1/model", body)
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on cold response")
	}
	// Populate the raw memo with a plain repeat, then go conditional.
	post(t, ts.URL+"/v1/model", body)
	evalsBefore := s.Evaluations()
	resp := postConditional(t, ts.URL+"/v1/model", body, etag)
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("raw-memo conditional: status %d, want 304", resp.StatusCode)
	}
	if got := s.Evaluations(); got != evalsBefore {
		t.Errorf("conditional hit re-evaluated: %d -> %d", evalsBefore, got)
	}
}
