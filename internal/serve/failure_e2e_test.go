package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestModelFailureBlock(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// A request without a failure block keeps the pre-failure contract: no
	// "failure" key in the response.
	status, plain, _ := post(t, ts.URL+"/v1/model", `{"case": "lcls-cori"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, plain)
	}
	var plainDoc map[string]json.RawMessage
	if err := json.Unmarshal(plain, &plainDoc); err != nil {
		t.Fatal(err)
	}
	if _, ok := plainDoc["failure"]; ok {
		t.Fatal("failure key present without a failure block")
	}

	// With a failure block, the standard fields stay in place and the
	// analytic failure block appears.
	status, body, _ := post(t, ts.URL+"/v1/model",
		`{"case": "lcls-cori", "failure": {"task_fail_prob": 0.02, "retry": {"max_attempts": 3}}}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var doc struct {
		Title   string          `json:"title"`
		Failure json.RawMessage `json:"failure"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Title == "" {
		t.Error("analysis fields not flattened into the failure response")
	}
	var fa struct {
		ExpectedAttempts   float64 `json:"expected_attempts"`
		ExpectedWorkFactor float64 `json:"expected_work_factor"`
		EffectiveTPS       float64 `json:"effective_tps"`
	}
	if err := json.Unmarshal(doc.Failure, &fa); err != nil {
		t.Fatalf("failure block: %v in %s", err, doc.Failure)
	}
	if fa.ExpectedAttempts <= 1 || fa.ExpectedWorkFactor <= 1 || fa.EffectiveTPS <= 0 {
		t.Errorf("implausible failure analysis: %+v", fa)
	}

	// Invalid failure specs are client errors.
	status, _, _ = post(t, ts.URL+"/v1/model", `{"case": "lcls-cori", "failure": {"task_fail_prob": 2}}`)
	if status != http.StatusBadRequest {
		t.Errorf("invalid failure prob: status = %d", status)
	}
	status, _, _ = post(t, ts.URL+"/v1/model", `{"case": "lcls-cori", "failure": {"task_fail_probability": 0.1}}`)
	if status != http.StatusBadRequest {
		t.Errorf("unknown failure field: status = %d", status)
	}
	_ = s
}

// TestModelFailureParamsKeyTheCache pins cache-key correctness: requests
// differing only in failure parameters must evaluate separately, and repeats
// of each shape must hit the cache.
func TestModelFailureParamsKeyTheCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	bodies := []string{
		`{"case": "lcls-cori"}`,
		`{"case": "lcls-cori", "failure": {"task_fail_prob": 0.02}}`,
		`{"case": "lcls-cori", "failure": {"task_fail_prob": 0.05}}`,
		`{"case": "lcls-cori", "failure": {"task_fail_prob": 0.02, "retry": {"max_attempts": 3}}}`,
	}
	responses := make([]string, len(bodies))
	for i, b := range bodies {
		status, data, h := post(t, ts.URL+"/v1/model", b)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, data)
		}
		if h.Get("X-Cache") != "cold" {
			t.Errorf("request %d: disposition %q, want cold", i, h.Get("X-Cache"))
		}
		responses[i] = string(data)
	}
	if got := s.Evaluations(); got != uint64(len(bodies)) {
		t.Errorf("evaluations = %d, want %d (one per distinct failure shape)", got, len(bodies))
	}
	for i := range responses {
		for j := i + 1; j < len(responses); j++ {
			if responses[i] == responses[j] {
				t.Errorf("requests %d and %d returned identical bytes", i, j)
			}
		}
	}
	// Identical repeats are cache hits with identical bytes.
	for i, b := range bodies {
		status, data, h := post(t, ts.URL+"/v1/model", b)
		if status != http.StatusOK {
			t.Fatalf("repeat %d: status %d", i, status)
		}
		if h.Get("X-Cache") != "hit" {
			t.Errorf("repeat %d: disposition %q, want hit", i, h.Get("X-Cache"))
		}
		if string(data) != responses[i] {
			t.Errorf("repeat %d: bytes differ from the cold evaluation", i)
		}
	}
}

func TestSweepFailuresKind(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	spec := `{"kind": "failures", "case": "lcls-cori", "trials": 8, "seed": 7,
		"failure": {"task_fail_prob": 0.05, "restage_rate": "1 GB/s",
		            "retry": {"max_attempts": 5, "backoff_seconds": 1}}}`
	status, cold, _ := post(t, ts.URL+"/v1/sweep", spec)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, cold)
	}
	var resp SweepResponse
	if err := json.Unmarshal(cold, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "failures" || len(resp.Tables) != 4 {
		t.Fatalf("kind = %q, tables = %d", resp.Kind, len(resp.Tables))
	}
	if !strings.Contains(resp.Tables[0].Title, "Failure-ensemble makespan") {
		t.Errorf("first table = %q", resp.Tables[0].Title)
	}
	// Same spec with different formatting and an explicit worker count is
	// the same content address: a cache hit with identical bytes.
	reordered := `{"seed": 7, "workers": 3, "trials": 8, "case": "lcls-cori", "kind": "failures",
		"failure": {"task_fail_prob": 0.05, "restage_rate": "1 GB/s",
		            "retry": {"max_attempts": 5, "backoff_seconds": 1}}}`
	status, hit, h := post(t, ts.URL+"/v1/sweep", reordered)
	if status != http.StatusOK {
		t.Fatalf("reordered: status %d", status)
	}
	if h.Get("X-Cache") != "hit" {
		t.Errorf("reordered spec disposition = %q, want hit", h.Get("X-Cache"))
	}
	if string(hit) != string(cold) {
		t.Error("reordered spec bytes differ")
	}
	// A different failure probability is a different content address.
	bumped := strings.Replace(spec, "0.05", "0.06", 1)
	status, other, h2 := post(t, ts.URL+"/v1/sweep", bumped)
	if status != http.StatusOK {
		t.Fatalf("bumped: status %d: %s", status, other)
	}
	if h2.Get("X-Cache") != "cold" {
		t.Errorf("bumped spec disposition = %q, want cold", h2.Get("X-Cache"))
	}
	if string(other) == string(cold) {
		t.Error("different failure probability returned identical bytes")
	}
	if got := s.Evaluations(); got != 2 {
		t.Errorf("evaluations = %d, want 2", got)
	}
}
