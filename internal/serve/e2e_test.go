package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"wroofline/internal/core"
)

// newTestServer mounts a Server on an httptest listener. The returned Server
// is the same instance behind the handler, so tests can reach FlushCache,
// Evaluations, and the evalDelay hook.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns the status, response bytes, and headers.
func post(t *testing.T, url, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data, resp.Header
}

// get fetches a URL and returns the status, response bytes, and headers.
func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data, resp.Header
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if got := strings.TrimSpace(string(body)); got != `{"status":"ok"}` {
		t.Errorf("body = %s", got)
	}
}

// TestModelColdVsCached is the core determinism proof for /v1/model: a cold
// evaluation, a cache hit, and a post-flush re-evaluation all produce the
// exact same bytes, at GOMAXPROCS=1 and at the default.
func TestModelColdVsCached(t *testing.T) {
	for _, procs := range []int{1, 0} {
		name := "default GOMAXPROCS"
		if procs == 1 {
			name = "GOMAXPROCS=1"
		}
		t.Run(name, func(t *testing.T) {
			if procs > 0 {
				old := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(old)
			}
			s, ts := newTestServer(t, Config{})
			for _, body := range []string{
				`{"case":"example"}`,
				`{"case":"lcls-cori"}`,
				`{"case":"bgw-64"}`,
			} {
				status, cold, hdr := post(t, ts.URL+"/v1/model", body)
				if status != http.StatusOK {
					t.Fatalf("%s: status = %d, body %s", body, status, cold)
				}
				if hdr.Get("X-Cache") != "cold" {
					t.Errorf("%s: first request X-Cache = %q", body, hdr.Get("X-Cache"))
				}
				_, cached, hdr := post(t, ts.URL+"/v1/model", body)
				if hdr.Get("X-Cache") != "hit" {
					t.Errorf("%s: second request X-Cache = %q", body, hdr.Get("X-Cache"))
				}
				if !bytes.Equal(cold, cached) {
					t.Errorf("%s: cached bytes differ from cold", body)
				}
				s.FlushCache()
				_, recomputed, hdr := post(t, ts.URL+"/v1/model", body)
				if hdr.Get("X-Cache") != "cold" {
					t.Errorf("%s: post-flush X-Cache = %q", body, hdr.Get("X-Cache"))
				}
				if !bytes.Equal(cold, recomputed) {
					t.Errorf("%s: recomputed bytes differ from first evaluation", body)
				}
			}
		})
	}
}

// TestModelFormattingSharesCache asserts that whitespace-only differences in
// the request body map to the same content address.
func TestModelFormattingSharesCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, cold, _ := post(t, ts.URL+"/v1/model", `{"case":"example"}`)
	_, cached, hdr := post(t, ts.URL+"/v1/model", "{\n\t\"case\":   \"example\"\n}")
	if hdr.Get("X-Cache") != "hit" {
		t.Errorf("reformatted request X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(cold, cached) {
		t.Error("reformatted request returned different bytes")
	}
}

// TestSweepDeterminismAndWorkerInvariance proves the /v1/sweep pipeline end
// to end: cold, cached, and recomputed responses are byte-identical, and the
// "workers" field is canonicalized away — a client asking for a different
// pool size hits the same cache entry, because the sweep engine is
// deterministic at any worker count.
func TestSweepDeterminismAndWorkerInvariance(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	spec := `{"kind":"montecarlo","case":"lcls-cori","trials":64,"seed":7,"workers":2,
		"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`
	status, cold, _ := post(t, ts.URL+"/v1/sweep", spec)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, cold)
	}
	var parsed SweepResponse
	if err := json.Unmarshal(cold, &parsed); err != nil {
		t.Fatalf("response is not a SweepResponse: %v", err)
	}
	if parsed.Kind != "montecarlo" || len(parsed.Tables) == 0 {
		t.Fatalf("kind=%q tables=%d", parsed.Kind, len(parsed.Tables))
	}

	reworked := strings.Replace(spec, `"workers":2`, `"workers":13`, 1)
	_, other, hdr := post(t, ts.URL+"/v1/sweep", reworked)
	if hdr.Get("X-Cache") != "hit" {
		t.Errorf("different workers field missed the cache: X-Cache = %q", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(cold, other) {
		t.Error("worker count changed the response bytes")
	}

	s.FlushCache()
	_, recomputed, _ := post(t, ts.URL+"/v1/sweep", spec)
	if !bytes.Equal(cold, recomputed) {
		t.Error("recomputed sweep differs from first evaluation")
	}
}

// TestCoalescing fires 64 concurrent identical requests at a cold cache with
// evaluations stretched by the test hook, and requires exactly one
// evaluation: every other request either rode the flight or hit the cache.
func TestCoalescing(t *testing.T) {
	const clients = 64
	s, ts := newTestServer(t, Config{})
	s.evalDelay = 50 * time.Millisecond

	var wg sync.WaitGroup
	start := make(chan struct{})
	bodies := make([][]byte, clients)
	statuses := make([]int, clients)
	dispositions := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/model", "application/json",
				strings.NewReader(`{"case":"example"}`))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("client %d: read: %v", i, err)
				return
			}
			statuses[i] = resp.StatusCode
			bodies[i] = data
			dispositions[i] = resp.Header.Get("X-Cache")
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d: status %d, body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("client %d received different bytes", i)
		}
	}
	if n := s.Evaluations(); n != 1 {
		t.Errorf("evaluations = %d, want exactly 1", n)
	}
	snap := s.MetricsSnapshot()
	if got := snap.Cache.Hits + snap.Coalesced; got != clients-1 {
		t.Errorf("hits(%d) + coalesced(%d) = %d, want %d",
			snap.Cache.Hits, snap.Coalesced, got, clients-1)
	}
	seen := map[string]int{}
	for _, d := range dispositions {
		seen[d]++
	}
	if seen["cold"] != 1 {
		t.Errorf("dispositions = %v, want exactly one cold", seen)
	}
}

// TestFigures checks SVG rendering, caching, and conditional requests.
func TestFigures(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, hdr := get(t, ts.URL+"/v1/figures/example.svg")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if ct := hdr.Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "<svg") {
		t.Error("body is not SVG")
	}
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on figure response")
	}

	_, cached, hdr := get(t, ts.URL+"/v1/figures/example.svg")
	if hdr.Get("X-Cache") != "hit" {
		t.Errorf("second fetch X-Cache = %q", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(body, cached) {
		t.Error("cached figure differs")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/figures/example.svg", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match status = %d, want 304", resp.StatusCode)
	}
}

// TestClientErrors is the 4xx table: every malformed request maps to the
// right status and a JSON problem document, and none of them panic or get
// cached as successes.
func TestClientErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	// evaluates marks specs that parse cleanly but fail semantically inside
	// the evaluator — those consume an evaluation slot (and must still not be
	// cached); pure parse errors are rejected before any evaluation runs.
	cases := []struct {
		name      string
		method    string
		path      string
		body      string
		status    int
		evaluates bool
	}{
		{"model bad json", "POST", "/v1/model", `{`, http.StatusBadRequest, false},
		{"model unknown field", "POST", "/v1/model", `{"case":"example","bogus":1}`, http.StatusBadRequest, false},
		{"model unknown case", "POST", "/v1/model", `{"case":"nope"}`, http.StatusBadRequest, true},
		{"model empty", "POST", "/v1/model", `{}`, http.StatusBadRequest, false},
		{"model case and workflow", "POST", "/v1/model", `{"case":"example","workflow":{}}`, http.StatusBadRequest, false},
		{"model bad machine", "POST", "/v1/model", `{"machine":"summit","workflow":{"name":"w","partition":"cpu","tasks":[{"id":"a","nodes":1,"work":{"flops":1}}]}}`, http.StatusBadRequest, true},
		{"model oversized", "POST", "/v1/model", `{"case":"` + strings.Repeat("x", 2048) + `"}`, http.StatusRequestEntityTooLarge, false},
		{"sweep bad kind", "POST", "/v1/sweep", `{"kind":"quantum","case":"lcls-cori"}`, http.StatusBadRequest, true},
		{"sweep unknown field", "POST", "/v1/sweep", `{"kind":"montecarlo","case":"lcls-cori","wat":1}`, http.StatusBadRequest, false},
		{"sweep no sampler", "POST", "/v1/sweep", `{"kind":"montecarlo","case":"lcls-cori","trials":4,"seed":1}`, http.StatusBadRequest, true},
		{"figure unknown", "GET", "/v1/figures/nope.svg", "", http.StatusNotFound, false},
		{"figure traversal", "GET", "/v1/figures/..%2Fsecret", "", http.StatusNotFound, false},
		{"model wrong method", "GET", "/v1/model", "", http.StatusMethodNotAllowed, false},
		{"figures wrong method", "POST", "/v1/figures/example.svg", "x", http.StatusMethodNotAllowed, false},
		{"unknown route", "GET", "/v2/anything", "", http.StatusNotFound, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d; body %s", resp.StatusCode, tc.status, data)
			}
			// Our own error paths return a JSON problem document; the mux's
			// built-in 404/405 responses are plain text.
			if ct := resp.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
				var problem struct {
					Error  string `json:"error"`
					Status int    `json:"status"`
				}
				if err := json.Unmarshal(data, &problem); err != nil {
					t.Fatalf("error body is not JSON: %v (%s)", err, data)
				}
				if problem.Status != tc.status || problem.Error == "" {
					t.Errorf("problem document = %+v", problem)
				}
			}
		})
	}
	var wantEvals uint64
	for _, tc := range cases {
		if tc.evaluates {
			wantEvals++
		}
	}
	if n := s.Evaluations(); n != wantEvals {
		t.Errorf("malformed requests triggered %d evaluations, want %d", n, wantEvals)
	}
	if snap := s.MetricsSnapshot(); snap.Cache.Entries != 0 {
		t.Errorf("cache holds %d entries after error-only traffic", snap.Cache.Entries)
	}
}

// TestErrorsAreNotCached makes sure a failed evaluation leaves the cache
// empty, so a later fix (or retry) is not poisoned.
func TestErrorsAreNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, _, _ := post(t, ts.URL+"/v1/model", `{"case":"nope"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d", status)
	}
	if snap := s.MetricsSnapshot(); snap.Cache.Entries != 0 {
		t.Errorf("cache holds %d entries after a failed request", snap.Cache.Entries)
	}
}

// TestMetricsEndpoint drives some traffic and checks that /metrics reports
// coherent counters: request counts by endpoint, statuses, latency mass, and
// the cache hit ratio.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/model", `{"case":"example"}`)
	post(t, ts.URL+"/v1/model", `{"case":"example"}`)
	post(t, ts.URL+"/v1/model", `{bad`)
	get(t, ts.URL+"/healthz")

	status, body, hdr := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics is not a Snapshot: %v", err)
	}
	model := snap.Requests["model"]
	if model.Count != 3 {
		t.Errorf("model count = %d, want 3", model.Count)
	}
	if model.ByStatus["200"] != 2 || model.ByStatus["400"] != 1 {
		t.Errorf("model by_status = %v", model.ByStatus)
	}
	var latencyMass uint64
	for _, b := range model.LatencyMS {
		latencyMass += b.Count
	}
	if latencyMass != 3 {
		t.Errorf("model latency histogram holds %d observations, want 3", latencyMass)
	}
	if snap.Requests["healthz"].Count != 1 {
		t.Errorf("healthz count = %d", snap.Requests["healthz"].Count)
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 || snap.Cache.HitRatio != 0.5 {
		t.Errorf("cache = %+v, want 1 hit / 1 miss", snap.Cache)
	}
	if snap.Evaluations != 1 {
		t.Errorf("evaluations = %d", snap.Evaluations)
	}
}

// TestQueueSaturation fills the bounded queue with slow distinct evaluations
// and checks that an extra distinct request times out as 503 rather than
// piling up, while the in-flight work still completes.
func TestQueueSaturation(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 1, Timeout: 100 * time.Millisecond})
	s.evalDelay = 300 * time.Millisecond

	done := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL+"/v1/model", `{"case":"example"}`)
		done <- status
	}()
	time.Sleep(50 * time.Millisecond) // let the first request take the slot
	status, body, _ := post(t, ts.URL+"/v1/model", `{"case":"lcls-cori"}`)
	if status != http.StatusServiceUnavailable {
		t.Errorf("saturated queue status = %d, body %s", status, body)
	}
	if first := <-done; first != http.StatusOK {
		t.Errorf("in-flight request finished %d", first)
	}
	if snap := s.MetricsSnapshot(); snap.QueueTimeouts != 1 {
		t.Errorf("queue_timeouts = %d, want 1", snap.QueueTimeouts)
	}
}

// TestGracefulDrain serves one slow request through a real http.Server,
// starts a shutdown while it is in flight, and requires both a complete 200
// for the client and a nil return from Shutdown.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{})
	s.evalDelay = 200 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()

	url := fmt.Sprintf("http://%s/v1/model", ln.Addr())
	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(url, "application/json", strings.NewReader(`{"case":"example"}`))
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		if err == nil && len(body) == 0 {
			err = fmt.Errorf("empty body")
		}
		reqDone <- err
	}()

	time.Sleep(50 * time.Millisecond) // request is now inside the evaluation
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		t.Errorf("Shutdown = %v, want clean drain", err)
	}
	if err := <-reqDone; err != nil {
		t.Errorf("in-flight request during drain: %v", err)
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v", err)
	}

	// The drained listener refuses new work.
	if _, err := http.Post(url, "application/json", strings.NewReader(`{"case":"example"}`)); err == nil {
		t.Error("request after shutdown succeeded")
	}
}

// TestCacheEviction bounds the cache at two entries and walks three distinct
// requests through it: the oldest is re-evaluated, the newest is served hot.
func TestCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: 2})
	for _, c := range []string{"example", "lcls-cori", "bgw-64"} {
		post(t, ts.URL+"/v1/model", `{"case":"`+c+`"}`)
	}
	if snap := s.MetricsSnapshot(); snap.Cache.Entries != 2 {
		t.Fatalf("cache entries = %d, want 2", snap.Cache.Entries)
	}
	_, _, hdr := post(t, ts.URL+"/v1/model", `{"case":"example"}`)
	if hdr.Get("X-Cache") != "cold" {
		t.Errorf("evicted entry X-Cache = %q, want cold", hdr.Get("X-Cache"))
	}
	_, _, hdr = post(t, ts.URL+"/v1/model", `{"case":"bgw-64"}`)
	if hdr.Get("X-Cache") != "hit" {
		t.Errorf("fresh entry X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}
}

// TestInlineWorkflow exercises the build-from-JSON path end to end.
func TestInlineWorkflow(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"machine":"perlmutter","workflow":{
		"name":"inline",
		"partition":"cpu",
		"tasks":[
			{"id":"a","nodes":1,"work":{"flops":1e12,"mem_bytes":1e11}},
			{"id":"b","nodes":1,"work":{"flops":1e12,"mem_bytes":1e11}},
			{"id":"merge","nodes":1,"work":{"fs_bytes":5e9}}
		],
		"deps":[["a","merge"],["b","merge"]]
	}}`
	status, cold, _ := post(t, ts.URL+"/v1/model", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, cold)
	}
	var analysis core.Analysis
	if err := json.Unmarshal(cold, &analysis); err != nil {
		t.Fatalf("response is not an analysis: %v", err)
	}
	if analysis.Title == "" || analysis.Wall <= 0 || len(analysis.Curve) == 0 {
		t.Errorf("analysis = title %q wall %v curve %d", analysis.Title, analysis.Wall, len(analysis.Curve))
	}
	_, cached, hdr := post(t, ts.URL+"/v1/model", body)
	if hdr.Get("X-Cache") != "hit" || !bytes.Equal(cold, cached) {
		t.Error("inline workflow did not cache deterministically")
	}
}
