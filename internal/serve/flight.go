package serve

import "sync"

// flightGroup coalesces concurrent work on the same content address: while
// one goroutine computes a key, later arrivals for that key block and share
// the single result instead of evaluating again. Hand-rolled single-flight —
// the stdlib has no exported equivalent and the toolkit takes no external
// dependencies.
type flightGroup struct {
	mu    sync.Mutex
	calls map[Key]*flightCall
}

// flightCall is one in-progress computation.
type flightCall struct {
	done    chan struct{}
	waiters int
	resp    Response
	err     error
}

// newFlightGroup creates an empty group.
func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[Key]*flightCall)}
}

// do runs fn for the key, unless a call for the same key is already in
// flight, in which case it waits for that call and shares its result.
// shared reports whether this caller rode an existing flight. Errors are
// shared too: N identical malformed requests cost one failed evaluation.
func (g *flightGroup) do(k Key, fn func() (Response, error)) (resp Response, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[k]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return c.resp, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[k] = c
	g.mu.Unlock()

	c.resp, c.err = fn()
	g.mu.Lock()
	delete(g.calls, k)
	g.mu.Unlock()
	close(c.done)
	return c.resp, c.err, false
}

// waiting reports how many callers are parked on the key's in-flight call
// (0 when no call is in flight). Tests use it to sequence coalescing races.
func (g *flightGroup) waiting(k Key) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[k]; ok {
		return c.waiters
	}
	return 0
}
