package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent work on the same content address: while
// one goroutine computes a key, later arrivals for that key block and share
// the single result instead of evaluating again. Hand-rolled single-flight —
// the stdlib has no exported equivalent and the toolkit takes no external
// dependencies. Like the response cache, the call table is sharded by the
// first byte of the key, so flights on distinct keys never touch the same
// mutex; coalescing semantics within a key are unchanged.
type flightGroup struct {
	mask   byte
	shards []flightShard
}

// flightShard is one independently locked slice of the call table, padded
// apart so neighbouring shard mutexes do not share a cache line.
type flightShard struct {
	mu    sync.Mutex
	calls map[Key]*flightCall
	_     [88]byte
}

// flightCall is one in-progress computation.
type flightCall struct {
	done    chan struct{}
	waiters int
	resp    Response
	err     error
}

// newFlightGroup creates an empty group with the given shard count
// (normalized to a power of two in [1, 256]).
func newFlightGroup(shards int) *flightGroup {
	n := 1
	for n < shards && n < 256 {
		n <<= 1
	}
	g := &flightGroup{mask: byte(n - 1), shards: make([]flightShard, n)}
	for i := range g.shards {
		g.shards[i].calls = make(map[Key]*flightCall)
	}
	return g
}

// shard maps a key to its home shard.
func (g *flightGroup) shard(k Key) *flightShard {
	return &g.shards[k[0]&g.mask]
}

// do runs fn for the key, unless a call for the same key is already in
// flight, in which case it waits for that call and shares its result.
// shared reports whether this caller rode an existing flight. Errors are
// shared too: N identical malformed requests cost one failed evaluation.
//
// ctx covers only the wait: a waiter whose client hangs up returns
// ctx.Err() immediately instead of staying pinned to its goroutine for the
// leader's full evaluation budget. The flight itself keeps running — the
// leader is detached from any one client, so the survivors (and the cache)
// still get the result.
func (g *flightGroup) do(ctx context.Context, k Key, fn func() (Response, error)) (resp Response, err error, shared bool) {
	sh := g.shard(k)
	sh.mu.Lock()
	if c, ok := sh.calls[k]; ok {
		c.waiters++
		sh.mu.Unlock()
		select {
		case <-c.done:
			return c.resp, c.err, true
		case <-ctx.Done():
			sh.mu.Lock()
			c.waiters--
			sh.mu.Unlock()
			return Response{}, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	sh.calls[k] = c
	sh.mu.Unlock()

	c.resp, c.err = fn()
	sh.mu.Lock()
	delete(sh.calls, k)
	sh.mu.Unlock()
	close(c.done)
	return c.resp, c.err, false
}

// waiting reports how many callers are parked on the key's in-flight call
// (0 when no call is in flight). Tests use it to sequence coalescing races.
func (g *flightGroup) waiting(k Key) int {
	sh := g.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c, ok := sh.calls[k]; ok {
		return c.waiters
	}
	return 0
}
