package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newPeerPair builds two servers where b lists a as a peer, so b may fill
// from a when a request carries the X-Peer-Owner header naming a.
func newPeerPair(t *testing.T) (a, b *Server, aURL, bURL string) {
	t.Helper()
	sa := New(Config{})
	tsa := httptest.NewServer(sa.Handler())
	t.Cleanup(tsa.Close)
	sb := New(Config{Peers: []string{tsa.URL}})
	tsb := httptest.NewServer(sb.Handler())
	t.Cleanup(tsb.Close)
	return sa, sb, tsa.URL, tsb.URL
}

// postOwned sends a body with an X-Peer-Owner header.
func postOwned(t *testing.T, url, body, owner string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if owner != "" {
		req.Header.Set(PeerOwnerHeader, owner)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestPeerFillServesOwnersBytes is the peer cache-fill contract: replica B,
// asked for a spec replica A already rendered, serves A's exact bytes via
// one fill fetch — zero local evaluations, X-Cache: peer, and the fill
// lands in B's cache so the next request is a plain local hit.
func TestPeerFillServesOwnersBytes(t *testing.T) {
	sa, sb, aURL, _ := newPeerPair(t)
	_, tsb := sb, httptest.NewServer(sb.Handler())
	defer tsb.Close()
	body := `{"case":"example"}`

	// Warm the owner.
	status, ownerBytes, _ := post(t, aURL+"/v1/model", body)
	if status != http.StatusOK {
		t.Fatalf("owner cold request: status %d", status)
	}

	resp, data := postOwned(t, tsb.URL+"/v1/model", body, aURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-filled request: status %d, body %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Cache"); got != "peer" {
		t.Errorf("X-Cache = %q, want peer", got)
	}
	if !bytes.Equal(data, ownerBytes) {
		t.Error("peer-filled bytes differ from owner's")
	}
	if got := sb.Evaluations(); got != 0 {
		t.Errorf("filling replica evaluated %d times, want 0", got)
	}
	if got := sb.MetricsSnapshot().PeerFills; got != 1 {
		t.Errorf("peer_fills = %d, want 1", got)
	}
	if got := sa.Evaluations(); got != 1 {
		t.Errorf("owner evaluations = %d, want 1", got)
	}

	// The fill populated B's cache: replaying without the header is a hit.
	resp2, data2 := postOwned(t, tsb.URL+"/v1/model", body, "")
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("replay X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(data2, ownerBytes) {
		t.Error("replayed bytes differ from owner's")
	}
}

// TestPeerFillFallsBackToLocalEval covers the degraded paths: an owner
// that has nothing cached, an owner that is down, and an owner not on the
// allowlist all degrade to a normal local evaluation, never an error.
func TestPeerFillFallsBackToLocalEval(t *testing.T) {
	sa, sb, aURL, bURL := newPeerPair(t)
	_ = sa

	// Owner up but cold: fill misses (404), B evaluates locally.
	resp, data := postOwned(t, bURL+"/v1/model", `{"case":"example"}`, aURL)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "cold" {
		t.Fatalf("cold-owner fallback: status %d X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if len(data) == 0 || sb.Evaluations() != 1 {
		t.Fatalf("cold-owner fallback: evals=%d", sb.Evaluations())
	}

	// Unlisted owner: the header is ignored outright (no SSRF vector).
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("server fetched from an unlisted origin")
	}))
	defer evil.Close()
	resp, _ = postOwned(t, bURL+"/v1/model", `{"case":"lcls-cori"}`, evil.URL)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "cold" {
		t.Errorf("unlisted-owner fallback: status %d X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	// Dead owner: connection refused degrades to local evaluation.
	deadOwner := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadOwner.URL
	deadOwner.Close()
	sc := New(Config{Peers: []string{deadURL}})
	tsc := httptest.NewServer(sc.Handler())
	defer tsc.Close()
	resp, _ = postOwned(t, tsc.URL+"/v1/model", `{"case":"example"}`, deadURL)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "cold" {
		t.Errorf("dead-owner fallback: status %d X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
}

// TestPeerFillEndpoint pins the inbound API: hex key lookup, 404 on
// unknown keys, 400 on malformed keys.
func TestPeerFillEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{"case":"example"}`
	_, full, hdr := post(t, ts.URL+"/v1/model", body)
	key, err := ModelKey([]byte(body))
	if err != nil {
		t.Fatal(err)
	}

	status, got, fillHdr := get(t, ts.URL+PeerFillPath+HexKey(key))
	if status != http.StatusOK {
		t.Fatalf("fill status = %d", status)
	}
	if !bytes.Equal(got, full) {
		t.Error("fill bytes differ from the rendered response")
	}
	if fillHdr.Get("ETag") != hdr.Get("ETag") {
		t.Errorf("fill ETag %q != response ETag %q", fillHdr.Get("ETag"), hdr.Get("ETag"))
	}

	var missing Key
	missing[0] = 0xFF
	if status, _, _ := get(t, ts.URL+PeerFillPath+HexKey(missing)); status != http.StatusNotFound {
		t.Errorf("unknown key status = %d, want 404", status)
	}
	if status, _, _ := get(t, ts.URL+PeerFillPath+"zzzz"); status != http.StatusBadRequest {
		t.Errorf("malformed key status = %d, want 400", status)
	}
	if s.Evaluations() != 1 {
		t.Errorf("fill endpoint evaluated: %d evals", s.Evaluations())
	}
}

// TestKeyHelpers round-trips the hex wire form and pins that the exported
// key functions agree with the serving path's cache keys (the gate routes
// on them).
func TestKeyHelpers(t *testing.T) {
	body := []byte(`{"case":"example"}`)
	k1, err := ModelKey(body)
	if err != nil {
		t.Fatal(err)
	}
	// Formatting-only variants share a canonical key.
	k2, err := ModelKey([]byte(`{ "case" : "example" }`))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("formatting variants produced distinct model keys")
	}
	rt, err := ParseHexKey(HexKey(k1))
	if err != nil || rt != k1 {
		t.Errorf("hex round-trip: %v, equal=%v", err, rt == k1)
	}
	if _, err := ParseHexKey("abcd"); err == nil {
		t.Error("short hex key parsed")
	}
	if _, err := ModelKey([]byte(`{`)); err == nil {
		t.Error("malformed model body produced a key")
	}
	if _, err := SweepKey([]byte(`{"bogus_field":1}`)); err == nil {
		t.Error("sweep spec with unknown fields produced a key")
	}
	spec := `{"kind":"montecarlo","case":"lcls-cori","trials":8,"seed":3,` +
		`"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`
	if _, err := SweepKey([]byte(spec)); err != nil {
		t.Errorf("valid sweep spec rejected: %v", err)
	}
	if FigureKey("example.svg") == FigureKey("other.svg") {
		t.Error("distinct figures share a key")
	}
}
