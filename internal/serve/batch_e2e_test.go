package serve

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// TestSweepBatchIsCacheTransparent proves the batch knob rides through
// /v1/sweep as a pure performance setting: the spec parser accepts it
// (DisallowUnknownFields would 400 otherwise), and batch variants of one
// study normalize to the same content address — a re-POST with a different
// batch size is a byte-identical cache hit, exactly like a worker-count
// change.
func TestSweepBatchIsCacheTransparent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := `{"kind":"montecarlo","case":"lcls-cori","trials":64,"seed":7,"streams":5,
		"workers":2,"batch":8,
		"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`
	status, cold, hdr := post(t, ts.URL+"/v1/sweep", spec)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, cold)
	}
	if hdr.Get("X-Cache") != "cold" {
		t.Errorf("first request X-Cache = %q", hdr.Get("X-Cache"))
	}

	// A different batch size (and worker count) is the same content address.
	rebatched := strings.Replace(
		strings.Replace(spec, `"batch":8`, `"batch":1000`, 1),
		`"workers":2`, `"workers":7`, 1)
	_, cached, hdr := post(t, ts.URL+"/v1/sweep", rebatched)
	if hdr.Get("X-Cache") != "hit" {
		t.Errorf("rebatched request X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(cold, cached) {
		t.Error("rebatched response bytes differ from cold")
	}

	// Dropping the knob entirely also hits: omitted and zero batch are one key.
	plain := strings.Replace(
		strings.Replace(spec, `"batch":8,`, ``, 1), `"workers":2,`, ``, 1)
	_, cached, hdr = post(t, ts.URL+"/v1/sweep", plain)
	if hdr.Get("X-Cache") != "hit" {
		t.Errorf("plain request X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(cold, cached) {
		t.Error("plain response bytes differ from cold")
	}
}
