package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- If-None-Match list / "*" handling (RFC 9110 §13.1.2) ---------------

func TestETagMatch(t *testing.T) {
	const etag = `"sha256-abc"`
	cases := []struct {
		header string
		want   bool
	}{
		{etag, true},
		{`"sha256-other"`, false},
		{`*`, true},
		{` * `, true},
		{`"a", "sha256-abc"`, true},                // list member matches
		{`"sha256-abc", "b"`, true},                // first member matches
		{`"a","b",  "sha256-abc"`, true},           // tight + padded commas
		{`"a", "b"`, false},                        // no member matches
		{"\t" + etag + "\t", true},                 // surrounding whitespace
		{`W/"sha256-abc"`, true},                   // weak member, weak compare
		{`"a", W/"sha256-abc"`, true},              // weak member in a list
		{`"with,comma", "sha256-abc"`, true},       // comma inside opaque-tag
		{`"sha256-ab"`, false},                     // prefix is not a match
		{`sha256-abc`, false},                      // unquoted → malformed, no match
		{`"unterminated`, false},                   // malformed, no match
		{`"a", "unterminated`, false},              // malformed tail, no match
		{``, false},                                // empty header
		{`"a", *`, true},                           // * anywhere matches
		{strings.Repeat(`"x", `, 50) + etag, true}, // long list, match at end
		{strings.Repeat(`"x", `, 50) + `"nope"`, false},
	}
	for _, c := range cases {
		if got := ETagMatch(c.header, etag); got != c.want {
			t.Errorf("ETagMatch(%q, %q) = %v, want %v", c.header, etag, got, c.want)
		}
	}
	if ETagMatch(`"x"`, "") {
		t.Error("empty response ETag matched")
	}
	if !ETagMatch(`"x"`, `W/"x"`) {
		t.Error("weak response ETag must weak-compare against a strong member")
	}
}

// TestConditionalListAndStar drives the fixed matching end to end: a
// comma-separated validator list and "*" both produce 304 where the old
// whole-string comparison returned 200.
func TestConditionalListAndStar(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"case":"example"}`
	status, full, hdr := post(t, ts.URL+"/v1/model", body)
	if status != http.StatusOK {
		t.Fatalf("cold request: status %d, body %s", status, full)
	}
	etag := hdr.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on response")
	}
	for _, header := range []string{
		`"stale-one", ` + etag,
		etag + `, "stale-two"`,
		`*`,
		"  " + etag + "  ",
		`W/` + etag,
	} {
		resp := postConditional(t, ts.URL+"/v1/model", body, header)
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", header, resp.StatusCode)
		}
		if len(data) != 0 {
			t.Errorf("If-None-Match %q: 304 carried %d body bytes", header, len(data))
		}
	}
	// A list of only stale validators must still get the full body.
	resp := postConditional(t, ts.URL+"/v1/model", body, `"stale-one", "stale-two"`)
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("all-stale list: status %d, want 200", resp.StatusCode)
	}
	if string(data) != string(full) {
		t.Error("all-stale list: body differs from cold body")
	}
}

// --- flight waiters honour client cancellation --------------------------

// TestFlightWaiterCancellation pins the waiter-side contract: a waiter
// whose context is cancelled mid-flight returns promptly with the context
// error, while the leader's computation and result are unaffected.
func TestFlightWaiterCancellation(t *testing.T) {
	g := newFlightGroup(16)
	key := ContentKey("t", []byte("cancel"))
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err, shared := g.do(context.Background(), key, func() (Response, error) {
			close(started)
			<-release
			return Response{Body: []byte("result")}, nil
		})
		if err != nil || shared || string(resp.Body) != "result" {
			t.Errorf("leader: resp=%q err=%v shared=%v", resp.Body, err, shared)
		}
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err, shared := g.do(ctx, key, func() (Response, error) {
			t.Error("waiter ran the computation")
			return Response{}, nil
		})
		if !shared {
			t.Error("cancelled waiter reported shared=false")
		}
		waiterDone <- err
	}()
	for g.waiting(key) < 1 {
		time.Sleep(time.Millisecond)
	}

	cancel()
	select {
	case err := <-waiterDone:
		if err != context.Canceled {
			t.Errorf("cancelled waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter still parked after 5s — cancellation ignored")
	}
	if n := g.waiting(key); n != 0 {
		t.Errorf("waiting = %d after cancellation, want 0", n)
	}

	// A survivor joining after the cancellation still coalesces.
	survivor := make(chan Response, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err, shared := g.do(context.Background(), key, func() (Response, error) {
			t.Error("survivor ran the computation")
			return Response{}, nil
		})
		if err != nil || !shared {
			t.Errorf("survivor: err=%v shared=%v", err, shared)
		}
		survivor <- resp
	}()
	for g.waiting(key) < 1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := string((<-survivor).Body); got != "result" {
		t.Errorf("survivor result = %q, want leader's result", got)
	}
}

// TestServeCancelledWaiterEndToEnd cancels a coalesced HTTP request
// mid-flight: the waiter's connection must come back promptly (not after
// the leader's full evaluation), and the leader's response and the cache
// fill must be unaffected.
func TestServeCancelledWaiterEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.evalDelay = 500 * time.Millisecond
	body := `{"case":"example"}`

	key, err := ModelKey([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	inFlight := func() bool {
		sh := s.flight.shard(key)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		_, ok := sh.calls[key]
		return ok
	}

	leaderDone := make(chan []byte, 1)
	go func() {
		_, data, _ := postNoFatal(ts.URL+"/v1/model", body)
		leaderDone <- data
	}()
	// Wait for the leader to open the flight, then park a cancellable
	// waiter on it.
	for !inFlight() {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/model", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	waiterDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		waiterDone <- err
	}()
	for s.flight.waiting(key) == 0 && inFlight() {
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	cancel()
	select {
	case err := <-waiterDone:
		if err == nil {
			// The waiter may have ridden the flight to completion before the
			// cancel landed; that is a legal race, not a failure.
			t.Log("waiter completed before cancellation landed")
		} else if wait := time.Since(start); wait > 2*time.Second {
			t.Errorf("cancelled waiter took %v to return", wait)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}

	data := <-leaderDone
	if len(data) == 0 {
		t.Fatal("leader got no response")
	}
	// The flight's result made it into the cache despite the cancelled rider.
	status, cached, hdr := post(t, ts.URL+"/v1/model", body)
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Errorf("post-flight request: status %d X-Cache %q", status, hdr.Get("X-Cache"))
	}
	if string(cached) != string(data) {
		t.Error("cached bytes differ from leader's response")
	}
}

// postNoFatal is post without the test dependency, for goroutines.
func postNoFatal(url, body string) (int, []byte, http.Header) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data, resp.Header
}

// --- statusRecorder pool safety on handler panic ------------------------

// TestInstrumentPanicObservesAndRepanics pins the deferred cleanup path: a
// panicking handler is observed as a 500, the recorder is recycled with its
// ResponseWriter reference cleared, and the panic propagates to the
// server's recovery.
func TestInstrumentPanicObservesAndRepanics(t *testing.T) {
	s := New(Config{})
	st := s.metrics.endpoint("model")
	before500 := st.byStatus[statusSlot(http.StatusInternalServerError)].Load()
	beforeCount := st.count.Load()

	h := s.instrument("model", func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	req := httptest.NewRequest("POST", "/v1/model", strings.NewReader(`{}`))

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		h(httptest.NewRecorder(), req)
	}()
	if recovered != "handler exploded" {
		t.Fatalf("recovered %v, want the handler's panic value", recovered)
	}
	if got := st.byStatus[statusSlot(http.StatusInternalServerError)].Load(); got != before500+1 {
		t.Errorf("500 observations = %d, want %d", got, before500+1)
	}
	if got := st.count.Load(); got != beforeCount+1 {
		t.Errorf("request count = %d, want %d", got, beforeCount+1)
	}

	// The pool must hand back recorders with no stale writer attached. Drain
	// a few: the pool is process-global, so at least verify none carries one.
	for i := 0; i < 8; i++ {
		rec := recorderPool.Get().(*statusRecorder)
		if rec.ResponseWriter != nil {
			t.Fatal("pooled recorder still references a ResponseWriter")
		}
		recorderPool.Put(rec)
	}

	// A normal request on the same route still works after the panic.
	rec := httptest.NewRecorder()
	s.instrument("model", s.handleModel)(rec, httptest.NewRequest("POST", "/v1/model", strings.NewReader(`{"case":"example"}`)))
	if rec.Code != http.StatusOK {
		t.Errorf("request after panic: status %d", rec.Code)
	}
}

// --- statusRecorder optional-interface passthrough ----------------------

// flushRecorder is a ResponseWriter that counts Flush calls.
type flushRecorder struct {
	httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// plainWriter implements only the core ResponseWriter interface.
type plainWriter struct{ h http.Header }

func (w *plainWriter) Header() http.Header         { return w.h }
func (w *plainWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *plainWriter) WriteHeader(int)             {}

// TestInstrumentFlushPassthrough asserts the instrumented writer exposes
// http.Flusher and forwards Flush to a supporting inner writer — and stays
// a safe no-op over one that does not.
func TestInstrumentFlushPassthrough(t *testing.T) {
	s := New(Config{})
	inner := &flushRecorder{ResponseRecorder: *httptest.NewRecorder()}
	sawFlusher := false
	h := s.instrument("model", func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		sawFlusher = ok
		if ok {
			w.Write([]byte("chunk"))
			f.Flush()
			f.Flush()
		}
	})
	h(inner, httptest.NewRequest("POST", "/v1/model", nil))
	if !sawFlusher {
		t.Fatal("instrumented writer does not expose http.Flusher")
	}
	if inner.flushes != 2 {
		t.Errorf("inner Flush called %d times, want 2", inner.flushes)
	}

	// Non-flushing inner writer: the assertion still succeeds (the wrapper
	// method exists) and calling it must not panic.
	h = s.instrument("model", func(w http.ResponseWriter, r *http.Request) {
		w.(http.Flusher).Flush()
	})
	h(&plainWriter{h: make(http.Header)}, httptest.NewRequest("POST", "/v1/model", nil))
}

// TestRecorderReadFrom pins the io.ReaderFrom path: bytes copied through
// ReadFrom are counted like Write, against both a ReaderFrom-capable inner
// writer and a plain one.
func TestRecorderReadFrom(t *testing.T) {
	for _, inner := range []http.ResponseWriter{
		httptest.NewRecorder(), // buffers via bytes.Buffer (ReaderFrom through io.Copy)
		&plainWriter{h: make(http.Header)},
	} {
		rec := &statusRecorder{ResponseWriter: inner, status: http.StatusOK}
		n, err := rec.ReadFrom(strings.NewReader("0123456789"))
		if err != nil || n != 10 {
			t.Errorf("%T: ReadFrom = (%d, %v), want (10, nil)", inner, n, err)
		}
		if rec.bytes != 10 {
			t.Errorf("%T: recorder counted %d bytes, want 10", inner, rec.bytes)
		}
	}
	var _ io.ReaderFrom = (*statusRecorder)(nil)
	var _ http.Flusher = (*statusRecorder)(nil)
}
