package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// planWallSpecs are the sweep specs the plan-cache differential wall runs,
// one per ensemble kind plus both corpus variation regimes; the seed slot
// makes each request a fresh response-cache key.
var planWallSpecs = []struct {
	name string
	spec string // fmt template with one %d seed slot
}{
	{"montecarlo", `{"kind":"montecarlo","case":"lcls-cori","trials":48,"seed":%d,"streams":2,` +
		`"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`},
	{"failures", `{"kind":"failures","case":"lcls-cori","trials":24,"seed":%d,` +
		`"failure":{"task_fail_prob":0.05,"restage_rate":"1 GB/s","retry":{"max_attempts":4,"backoff_seconds":1,"backoff_factor":2}}}`},
	{"corpus-cv0", `{"kind":"corpus","machine":"perlmutter-numa","count":20,"seed":%d,` +
		`"template":{"width":5,"depth":3,"payload":"512 MB"}}`},
	{"corpus-cv", `{"kind":"corpus","machine":"perlmutter-numa","count":20,"seed":%d,` +
		`"template":{"width":5,"depth":3,"cv":0.4,"payload":"512 MB"}}`},
}

// TestPlanCacheDifferentialWallSweep is the serve-level half of the
// differential wall for /v1/sweep and /v1/sweep/stream: for every ensemble
// kind, a plan-cache-disabled server and a plan-cache-enabled server must
// return byte-identical bodies and ETags — cold, and again after the
// response cache is flushed so the enabled server re-evaluates from warm
// plan-cache entries. The streaming endpoint's final line must match the
// buffered body in both regimes.
func TestPlanCacheDifferentialWallSweep(t *testing.T) {
	sOff, tsOff := newTestServer(t, Config{PlanCacheEntries: -1})
	sOn, tsOn := newTestServer(t, Config{})
	if _, enabled := sOff.PlanCacheStats(); enabled {
		t.Fatal("PlanCacheEntries -1 did not disable the plan cache")
	}
	for _, tc := range planWallSpecs {
		t.Run(tc.name, func(t *testing.T) {
			for seed := 1; seed <= 3; seed++ {
				body := fmt.Sprintf(tc.spec, seed)
				stOff, bOff, hOff := post(t, tsOff.URL+"/v1/sweep", body)
				stOn, bOn, hOn := post(t, tsOn.URL+"/v1/sweep", body)
				if stOff != http.StatusOK || stOn != http.StatusOK {
					t.Fatalf("seed %d: status off=%d on=%d (%s)", seed, stOff, stOn, bOn)
				}
				if !bytes.Equal(bOff, bOn) {
					t.Fatalf("seed %d: cache-on body diverged from cache-off", seed)
				}
				if hOff.Get("ETag") != hOn.Get("ETag") {
					t.Fatalf("seed %d: ETag off=%q on=%q", seed, hOff.Get("ETag"), hOn.Get("ETag"))
				}

				// Flush the response caches: the re-request is a cold
				// evaluation again, but on the enabled server it now runs
				// entirely from warm plan-cache entries.
				sOff.FlushCache()
				sOn.FlushCache()
				_, bOff2, hOff2 := post(t, tsOff.URL+"/v1/sweep", body)
				_, bOn2, hOn2 := post(t, tsOn.URL+"/v1/sweep", body)
				if hOn2.Get("X-Cache") != "cold" {
					t.Fatalf("seed %d: post-flush X-Cache = %q, want cold", seed, hOn2.Get("X-Cache"))
				}
				if !bytes.Equal(bOff2, bOn2) || !bytes.Equal(bOff, bOn2) {
					t.Fatalf("seed %d: warm-plan re-evaluation diverged", seed)
				}
				if hOff2.Get("ETag") != hOn2.Get("ETag") || hOn.Get("ETag") != hOn2.Get("ETag") {
					t.Fatalf("seed %d: warm-plan ETag diverged", seed)
				}

				// Streaming: flush again so the stream re-evaluates (warm
				// plans on the enabled server); its final line must be the
				// buffered body on both servers.
				sOff.FlushCache()
				sOn.FlushCache()
				want := strings.TrimSuffix(string(bOff), "\n")
				for _, ep := range []struct {
					name string
					ts   string
				}{{"off", tsOff.URL}, {"on", tsOn.URL}} {
					resp, lines := streamLines(t, ep.ts+"/v1/sweep/stream", body, ContentTypeNDJSON)
					if resp.StatusCode != http.StatusOK || len(lines) == 0 {
						t.Fatalf("seed %d: stream %s status=%d lines=%d", seed, ep.name, resp.StatusCode, len(lines))
					}
					if got := lines[len(lines)-1]; got != want {
						t.Fatalf("seed %d: stream %s final line diverged from buffered body", seed, ep.name)
					}
				}
			}
		})
	}
	st, enabled := sOn.PlanCacheStats()
	if !enabled || st.Hits == 0 {
		t.Fatalf("enabled server recorded no plan-cache hits: %+v (enabled=%v)", st, enabled)
	}
	if got := sOn.MetricsSnapshot(); got.PlanCacheHits != st.Hits || got.PlanCacheMisses != st.Misses {
		t.Fatalf("metrics snapshot plan-cache counters diverged: %+v vs %+v", got, st)
	}
}

// TestPlanCacheDifferentialWallModel is the /v1/model half: inline-workflow
// requests varying only curve_samples (distinct response-cache keys, one
// shared built model) must match a plan-cache-disabled server byte for byte,
// ETags included.
func TestPlanCacheDifferentialWallModel(t *testing.T) {
	sOff, tsOff := newTestServer(t, Config{PlanCacheEntries: -1})
	sOn, tsOn := newTestServer(t, Config{})
	wf := `{"machine":"perlmutter-numa","external_bw":"5 GB/s","workflow":{"name":"w","partition":"cpu",` +
		`"tasks":[{"id":"a","nodes":2,"work":{"flops":2e12,"mem_bytes":5e10}},` +
		`{"id":"b","nodes":1,"work":{"fs_bytes":5e9}}],"deps":[["a","b"]]},"curve_samples":%d}`
	for _, samples := range []int{32, 64, 128} {
		body := fmt.Sprintf(wf, samples)
		stOff, bOff, hOff := post(t, tsOff.URL+"/v1/model", body)
		stOn, bOn, hOn := post(t, tsOn.URL+"/v1/model", body)
		if stOff != http.StatusOK || stOn != http.StatusOK {
			t.Fatalf("samples %d: status off=%d on=%d (%s)", samples, stOff, stOn, bOn)
		}
		if !bytes.Equal(bOff, bOn) {
			t.Fatalf("samples %d: cache-on model body diverged", samples)
		}
		if hOff.Get("ETag") != hOn.Get("ETag") {
			t.Fatalf("samples %d: ETag off=%q on=%q", samples, hOff.Get("ETag"), hOn.Get("ETag"))
		}
	}
	st, enabled := sOn.PlanCacheStats()
	if !enabled || st.Hits < 2 {
		t.Fatalf("model requests shared no built model: %+v", st)
	}
	_ = sOff

	// The external override is keyed on its parsed value: a respelled rate
	// is a different response-cache entry but the same model, and the body
	// must still match the canonical spelling's.
	base := fmt.Sprintf(wf, 64)
	respelled := strings.Replace(base, `"5 GB/s"`, `"5GB/s"`, 1)
	_, bBase, _ := post(t, tsOn.URL+"/v1/model", base)
	hitsBefore, _ := sOn.PlanCacheStats()
	_, bResp, _ := post(t, tsOn.URL+"/v1/model", respelled)
	hitsAfter, _ := sOn.PlanCacheStats()
	if !bytes.Equal(bBase, bResp) {
		t.Fatal("respelled external_bw changed the model body")
	}
	if hitsAfter.Hits <= hitsBefore.Hits {
		t.Fatalf("respelled external_bw did not share the built model: %+v -> %+v", hitsBefore, hitsAfter)
	}
}

// TestPlanCacheCapacityOnServer pins the wfserved flag contract at the
// Config level: a tiny plan cache still serves correct results, it just
// evicts.
func TestPlanCacheCapacityOnServer(t *testing.T) {
	s, ts := newTestServer(t, Config{PlanCacheEntries: 2})
	for seed := 1; seed <= 4; seed++ {
		spec := fmt.Sprintf(`{"kind":"corpus","machine":"perlmutter-numa","count":10,"seed":%d,`+
			`"template":{"width":4,"depth":3,"cv":0.4,"payload":"256 MB"}}`, seed)
		if st, body, _ := post(t, ts.URL+"/v1/sweep", spec); st != http.StatusOK {
			t.Fatalf("seed %d: status %d (%s)", seed, st, body)
		}
	}
	st, enabled := s.PlanCacheStats()
	if !enabled {
		t.Fatal("plan cache disabled")
	}
	if st.Evictions == 0 {
		t.Fatalf("tiny plan cache recorded no evictions: %+v", st)
	}
	if st.Entries > st.Capacity {
		t.Fatalf("plan cache over capacity: %+v", st)
	}
}
