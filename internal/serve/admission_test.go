package serve

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"
)

// parkWaiters enqueues one blocked acquire per name (in order) and waits
// until all of them are parked in their tenant queues. Each waiter, once
// granted, reports its name on order and immediately releases — so grants
// cascade one at a time and the order channel records the scheduler's
// dequeue sequence.
func parkWaiters(t *testing.T, a *admission, names []string, order chan string) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for _, name := range names {
		// Sequential enqueue keeps per-tenant FIFO order deterministic.
		a.mu.Lock()
		tn := a.tenantFor(name)
		w := &waiter{ready: make(chan struct{})}
		tn.queue = append(tn.queue, w)
		a.mu.Unlock()
		wg.Add(1)
		go func(name string, tn *tenant, w *waiter) {
			defer wg.Done()
			<-w.ready
			order <- name
			a.release(tn)
		}(name, tn, w)
	}
	return &wg
}

// TestAdmissionWeightedFairOrder pins the WFQ dequeue sequence: with
// weights light=2, heavy=1 and both queues backlogged, grants alternate
// H L L H L L — the light tenant receives exactly twice the slots.
func TestAdmissionWeightedFairOrder(t *testing.T) {
	a := newAdmission(Config{
		QueueDepth: 1, MaxWaiters: 16,
		TenantWeights: map[string]float64{"light": 2, "heavy": 1},
	})
	// Take the only slot so every later acquire parks.
	release, aerr := a.acquire(context.Background(), "seed")
	if aerr != nil {
		t.Fatalf("seed acquire rejected: %+v", aerr)
	}

	order := make(chan string, 9)
	wg := parkWaiters(t, a,
		[]string{"heavy", "heavy", "heavy", "light", "light", "light", "light", "light", "light"},
		order)
	release() // starts the cascade: each grant releases into the next

	wg.Wait()
	close(order)
	var got []string
	for name := range order {
		got = append(got, name)
	}
	want := []string{"heavy", "light", "light", "heavy", "light", "light", "heavy", "light", "light"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v (weight-2 light gets 2 of every 3 slots)", got, want)
		}
	}
}

// TestAdmissionQueueFullShed checks the backlog bound: with the slot taken
// and one waiter parked, the next arrival is shed immediately as queue-full
// rather than deepening the backlog.
func TestAdmissionQueueFullShed(t *testing.T) {
	a := newAdmission(Config{QueueDepth: 1, MaxWaiters: 1})
	release, aerr := a.acquire(context.Background(), "t")
	if aerr != nil {
		t.Fatal("first acquire rejected")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	parked := make(chan struct{})
	go func() {
		close(parked)
		if rel, aerr := a.acquire(ctx, "t"); aerr == nil {
			rel()
		}
	}()
	<-parked
	waitForCond(t, func() bool {
		a.mu.Lock()
		defer a.mu.Unlock()
		tn := a.tenants["t"]
		return tn != nil && len(tn.queue) == 1
	}, "waiter never parked")

	start := time.Now()
	if _, aerr := a.acquire(context.Background(), "t"); aerr == nil || aerr.kind != admitQueueFull {
		t.Fatalf("over-backlog acquire = %+v, want admitQueueFull", aerr)
	}
	if time.Since(start) > time.Second {
		t.Error("queue-full shed was not immediate")
	}
	cancel()
	release()
}

// TestAdmissionRateShed drives the token bucket on a fake clock: burst
// admits pass, the next is shed with a refill-horizon Retry-After, and
// after enough fake time the tenant admits again.
func TestAdmissionRateShed(t *testing.T) {
	a := newAdmission(Config{QueueDepth: 4, MaxWaiters: 4, TenantRate: 2, TenantBurst: 2})
	now := time.Unix(1000, 0)
	a.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		rel, aerr := a.acquire(context.Background(), "t")
		if aerr != nil {
			t.Fatalf("burst acquire %d rejected: %+v", i, aerr)
		}
		rel()
	}
	_, aerr := a.acquire(context.Background(), "t")
	if aerr == nil || aerr.kind != admitRateLimited {
		t.Fatalf("over-rate acquire = %+v, want admitRateLimited", aerr)
	}
	// Empty bucket at 2 tokens/sec: one token is 500ms away.
	if aerr.retryAfter <= 0 || aerr.retryAfter > time.Second {
		t.Errorf("retryAfter = %v, want ~500ms", aerr.retryAfter)
	}

	now = now.Add(time.Second) // refills 2 tokens
	rel, aerr := a.acquire(context.Background(), "t")
	if aerr != nil {
		t.Fatalf("post-refill acquire rejected: %+v", aerr)
	}
	rel()
}

// TestAdmissionCancelNoLeak checks that a waiter abandoning the queue
// neither leaks its queue entry nor wedges the slot.
func TestAdmissionCancelNoLeak(t *testing.T) {
	a := newAdmission(Config{QueueDepth: 1, MaxWaiters: 4})
	release, _ := a.acquire(context.Background(), "t")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *admitError, 1)
	go func() {
		_, aerr := a.acquire(ctx, "t")
		done <- aerr
	}()
	waitForCond(t, func() bool {
		a.mu.Lock()
		defer a.mu.Unlock()
		tn := a.tenants["t"]
		return tn != nil && len(tn.queue) == 1
	}, "waiter never parked")
	cancel()
	if aerr := <-done; aerr == nil || aerr.kind != admitTimeout {
		t.Fatalf("cancelled waiter = %+v, want admitTimeout", aerr)
	}
	a.mu.Lock()
	if tn := a.tenants["t"]; tn != nil && len(tn.queue) != 0 {
		t.Errorf("cancelled waiter left %d queue entries", len(tn.queue))
	}
	a.mu.Unlock()

	release()
	// The slot must be free again: a fresh acquire succeeds immediately.
	rel, aerr := a.acquire(context.Background(), "t")
	if aerr != nil {
		t.Fatalf("post-release acquire rejected: %+v", aerr)
	}
	rel()
	a.mu.Lock()
	if len(a.tenants) != 0 {
		t.Errorf("idle tenants not reaped: %d remain", len(a.tenants))
	}
	if a.slots != 1 {
		t.Errorf("slots = %d after all releases, want 1", a.slots)
	}
	a.mu.Unlock()
}

// TestAdmissionGrantRaceReleasesSlot pins the grant/deadline race: a waiter
// granted at the same instant its context expires must hand the slot back
// rather than leak it.
func TestAdmissionGrantRaceReleasesSlot(t *testing.T) {
	a := newAdmission(Config{QueueDepth: 1, MaxWaiters: 4})
	release, _ := a.acquire(context.Background(), "t")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *admitError, 1)
	go func() {
		_, aerr := a.acquire(ctx, "t")
		done <- aerr
	}()
	waitForCond(t, func() bool {
		a.mu.Lock()
		defer a.mu.Unlock()
		tn := a.tenants["t"]
		return tn != nil && len(tn.queue) == 1
	}, "waiter never parked")

	// Grant and cancel as close together as the test can arrange; whichever
	// way the race resolves, the slot must end up free.
	cancel()
	release()
	<-done
	waitForCond(t, func() bool {
		a.mu.Lock()
		defer a.mu.Unlock()
		return a.slots == 1
	}, "slot leaked after grant/cancel race")
}

// TestTenantOfAndRequestBudget pins the header parsers.
func TestTenantOfAndRequestBudget(t *testing.T) {
	h := http.Header{}
	if got := tenantOf(h); got != "default" {
		t.Errorf("tenantOf(empty) = %q, want default", got)
	}
	h.Set(TenantHeader, "alice")
	if got := tenantOf(h); got != "alice" {
		t.Errorf("tenantOf = %q, want alice", got)
	}
	for v, want := range map[string]time.Duration{
		"":     0,
		"abc":  0,
		"-5":   0,
		"0":    0,
		"250":  250 * time.Millisecond,
		"9000": 9 * time.Second,
	} {
		h.Set(DeadlineHeader, v)
		if v == "" {
			h.Del(DeadlineHeader)
		}
		if got := requestBudget(h); got != want {
			t.Errorf("requestBudget(%q) = %v, want %v", v, got, want)
		}
	}
}

// waitForCond polls cond until true or a 5s deadline.
func waitForCond(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}
