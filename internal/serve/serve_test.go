package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestContentKeyDistinguishesKinds(t *testing.T) {
	body := []byte(`{"kind":"grid"}`)
	if ContentKey("model", body) == ContentKey("sweep", body) {
		t.Error("same body under different kinds must not collide")
	}
	if ContentKey("model", body) != ContentKey("model", body) {
		t.Error("content keys must be deterministic")
	}
}

// The strict-LRU tests pin shards to 1: a single shard is exact global LRU,
// which is also what shardCount degenerates to for tiny capacities.
func TestLRUEvictsOldest(t *testing.T) {
	c := newShardedLRU[Response](2, 1)
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = ContentKey("t", []byte{byte(i)})
		c.put(keys[i], Response{Body: []byte{byte(i)}})
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get(keys[0]); ok {
		t.Error("oldest entry should have been evicted")
	}
	for _, k := range keys[1:] {
		if _, ok := c.get(k); !ok {
			t.Errorf("key %x missing", k[:4])
		}
	}
}

func TestLRUGetRefreshesRecency(t *testing.T) {
	c := newShardedLRU[Response](2, 1)
	a := ContentKey("t", []byte("a"))
	b := ContentKey("t", []byte("b"))
	x := ContentKey("t", []byte("x"))
	c.put(a, Response{Body: []byte("a")})
	c.put(b, Response{Body: []byte("b")})
	c.get(a) // a is now most recent; x should evict b
	c.put(x, Response{Body: []byte("x")})
	if _, ok := c.get(a); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.get(b); ok {
		t.Error("least recently used entry survived")
	}
}

func TestLRUFlush(t *testing.T) {
	c := newShardedLRU[Response](4, 1)
	c.put(ContentKey("t", []byte("a")), Response{Body: []byte("a")})
	c.flush()
	if c.len() != 0 {
		t.Errorf("len after flush = %d", c.len())
	}
	if _, ok := c.get(ContentKey("t", []byte("a"))); ok {
		t.Error("flushed entry still retrievable")
	}
}

func TestFlightCoalesces(t *testing.T) {
	g := newFlightGroup(16)
	key := ContentKey("t", []byte("k"))
	var evals int
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	leaderDone := make(chan Response, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err, shared := g.do(context.Background(), key, func() (Response, error) {
			evals++
			close(started)
			<-release
			return Response{Body: []byte("result")}, nil
		})
		if err != nil || shared {
			t.Errorf("leader: err=%v shared=%v", err, shared)
		}
		leaderDone <- resp
	}()
	<-started
	const followers = 16
	results := make(chan Response, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err, shared := g.do(context.Background(), key, func() (Response, error) {
				t.Error("follower ran the computation")
				return Response{}, nil
			})
			if err != nil || !shared {
				t.Errorf("follower: err=%v shared=%v", err, shared)
			}
			results <- resp
		}()
	}
	// Hold the leader until every follower has parked on the in-flight call;
	// releasing earlier would let stragglers miss the flight entirely.
	for g.waiting(key) < followers {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	want := string((<-leaderDone).Body)
	for i := 0; i < followers; i++ {
		if got := string((<-results).Body); got != want {
			t.Errorf("follower result %q != leader %q", got, want)
		}
	}
	if evals != 1 {
		t.Errorf("evaluations = %d, want 1", evals)
	}
}

func TestFlightSharesErrors(t *testing.T) {
	g := newFlightGroup(16)
	key := ContentKey("t", []byte("err"))
	wantErr := fmt.Errorf("boom")
	_, err, _ := g.do(context.Background(), key, func() (Response, error) { return Response{}, wantErr })
	if err != wantErr {
		t.Errorf("err = %v", err)
	}
	// The failed call must not wedge the key: a retry runs fresh.
	resp, err, shared := g.do(context.Background(), key, func() (Response, error) { return Response{Body: []byte("ok")}, nil })
	if err != nil || shared || string(resp.Body) != "ok" {
		t.Errorf("retry after error: resp=%q err=%v shared=%v", resp.Body, err, shared)
	}
}

func TestEtagOf(t *testing.T) {
	tag := etagOf([]byte("hello"))
	if tag != etagOf([]byte("hello")) {
		t.Error("etag not deterministic")
	}
	if tag == etagOf([]byte("world")) {
		t.Error("different bodies share an etag")
	}
	if tag[0] != '"' || tag[len(tag)-1] != '"' {
		t.Errorf("etag %s is not a quoted strong validator", tag)
	}
}

func TestHexKey(t *testing.T) {
	k := Key(sha256.Sum256([]byte("x")))
	h := hexKey(k)
	if want := fmt.Sprintf("%x", k[:]); h != want {
		t.Errorf("hexKey = %s, want %s", h, want)
	}
}

func TestCanonicalModelRequestNormalizesFormatting(t *testing.T) {
	a := []byte(`{"case":"lcls-cori"}`)
	b := []byte("{\n  \"case\": \"lcls-cori\"\n}")
	_, ca, err := canonicalModelRequest(a)
	if err != nil {
		t.Fatal(err)
	}
	_, cb, err := canonicalModelRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Errorf("formatting changed the canonical form:\n%s\n%s", ca, cb)
	}

	// Inline workflows canonicalize too.
	wf := []byte(`{"workflow": {"name": "w",  "partition": "gpu"}}`)
	wf2 := []byte(`{"workflow":{"name":"w","partition":"gpu"}}`)
	_, cw, err := canonicalModelRequest(wf)
	if err != nil {
		t.Fatal(err)
	}
	_, cw2, err := canonicalModelRequest(wf2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cw, cw2) {
		t.Errorf("workflow whitespace changed the canonical form:\n%s\n%s", cw, cw2)
	}
}

func TestCanonicalModelRequestRejects(t *testing.T) {
	for name, body := range map[string]string{
		"empty":            `{}`,
		"both":             `{"case":"example","workflow":{}}`,
		"unknown field":    `{"case":"example","bogus":1}`,
		"not json":         `nope`,
		"truncated object": `{"case":`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, _, err := canonicalModelRequest([]byte(body)); err == nil {
				t.Errorf("request %q parsed", body)
			}
		})
	}
}

func TestStatusLabel(t *testing.T) {
	for code, want := range map[int]string{200: "200", 404: "404", 503: "503", 42: "other"} {
		if got := statusLabel(code); got != want {
			t.Errorf("statusLabel(%d) = %q, want %q", code, got, want)
		}
	}
}
