package serve

import (
	"context"
	"io"
	"net/http"
	"strings"
)

// Peer cache-fill: in cluster mode each content address has one owner
// replica (wfgate's consistent hash). When a request lands elsewhere —
// failover, or the ring shifted — the handling replica can fetch the
// owner's already-rendered bytes instead of re-evaluating, keeping the
// cluster at one evaluation per key even while ownership moves. The
// protocol is one internal GET per fill, keyed by hex content address;
// every response carries the same strong validator wherever it was
// rendered, because the bytes are deterministic.

// maxPeerFillBytes caps one inbound fill body. Rendered responses are
// bounded (tables and SVGs, not raw ensembles), so the cap only guards
// against a misconfigured peer address pointing at something that streams.
const maxPeerFillBytes = 64 << 20

// handlePeerFill serves a cached response by content address: 200 with the
// rendered body when this replica holds the key, 404 otherwise. It never
// evaluates — the caller falls back to its own evaluation path on a miss.
func (s *Server) handlePeerFill(w http.ResponseWriter, r *http.Request) {
	key, err := ParseHexKey(r.PathValue("key"))
	if err != nil {
		fail(w, badRequest("peer fill: %v", err))
		return
	}
	resp, ok := s.cache.get(key)
	if !ok {
		fail(w, &httpError{status: http.StatusNotFound,
			msg: "no cached response for " + r.PathValue("key")})
		return
	}
	respond(w, r, resp, "hit")
}

// peerFill tries to satisfy a miss from the key's owner replica, named by
// the request's X-Peer-Owner header. The header is only honoured when it
// names a configured peer (allowlist — a public client cannot aim the
// server at arbitrary origins). Fills are best-effort: any error, timeout,
// or non-200 reports false and the caller evaluates locally.
func (s *Server) peerFill(r *http.Request, key Key) (Response, bool) {
	owner := strings.TrimSuffix(r.Header.Get(PeerOwnerHeader), "/")
	if owner == "" || !s.peerAllowed[owner] {
		return Response{}, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+PeerFillPath+hexKey(key), nil)
	if err != nil {
		return Response{}, false
	}
	hresp, err := s.peerClient.Do(req)
	if err != nil {
		return Response{}, false
	}
	defer func() {
		io.Copy(io.Discard, hresp.Body)
		hresp.Body.Close()
	}()
	if hresp.StatusCode != http.StatusOK {
		return Response{}, false
	}
	body, err := io.ReadAll(io.LimitReader(hresp.Body, maxPeerFillBytes+1))
	if err != nil || len(body) > maxPeerFillBytes {
		return Response{}, false
	}
	resp := Response{
		Body:        body,
		ContentType: hresp.Header.Get("Content-Type"),
		ETag:        hresp.Header.Get("ETag"),
	}
	resp.stampHeaders()
	s.metrics.peerFills.Add(1)
	s.cache.put(key, resp)
	return resp, true
}
