package serve

import (
	"sync"
	"testing"
	"time"
)

func TestStatusSlotRoundTrip(t *testing.T) {
	for _, code := range []int{100, 200, 204, 304, 400, 404, 503, 599} {
		slot := statusSlot(code)
		if slot < 0 || slot >= statusSlots || slot == statusSlotOther {
			t.Errorf("statusSlot(%d) = %d", code, slot)
		}
		if back := slot + statusSlotMin; back != code {
			t.Errorf("slot %d maps back to %d, want %d", slot, back, code)
		}
	}
	for _, code := range []int{0, 42, 600, 1000} {
		if statusSlot(code) != statusSlotOther {
			t.Errorf("statusSlot(%d) = %d, want other", code, statusSlot(code))
		}
	}
}

// TestHistogramPercentile pins the interpolation: a point mass sits inside
// its bucket, a split mass interpolates between bounds, and the overflow
// bucket clamps to the last finite bound.
func TestHistogramPercentile(t *testing.T) {
	n := len(latencyBucketsMS) + 1
	counts := make([]uint64, n)
	if got := histogramPercentile(counts, 0, 0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v", got)
	}

	// All mass in the bucket (0.1, 0.25]: every percentile lands inside it.
	counts = make([]uint64, n)
	counts[2] = 100
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := histogramPercentile(counts, 100, q)
		if got <= 0.1 || got > 0.25 {
			t.Errorf("p%v = %v, want within (0.1, 0.25]", q*100, got)
		}
	}

	// Half the mass at <=0.05, half in (1, 2.5]: p50 is exactly the top of
	// the first bucket, p99 interpolates near the top of the second.
	counts = make([]uint64, n)
	counts[0] = 50
	counts[5] = 50
	if got := histogramPercentile(counts, 100, 0.5); got != 0.05 {
		t.Errorf("split p50 = %v, want 0.05", got)
	}
	if got := histogramPercentile(counts, 100, 0.99); got <= 1 || got > 2.5 {
		t.Errorf("split p99 = %v, want within (1, 2.5]", got)
	}

	// Overflow-only mass clamps to the last finite bound.
	counts = make([]uint64, n)
	counts[n-1] = 10
	last := latencyBucketsMS[len(latencyBucketsMS)-1]
	if got := histogramPercentile(counts, 10, 0.5); got != last {
		t.Errorf("overflow p50 = %v, want %v", got, last)
	}
}

// TestMetricsSnapshotPercentiles drives observations through the atomic
// registry and checks the snapshot carries ordered percentile estimates.
func TestMetricsSnapshotPercentiles(t *testing.T) {
	m := newMetrics("model")
	st := m.endpoint("model")
	for i := 0; i < 90; i++ {
		st.observe(200, 100*time.Microsecond) // <= 0.1 ms bucket
	}
	for i := 0; i < 10; i++ {
		st.observe(200, 40*time.Millisecond) // (25, 50] ms bucket
	}
	snap := m.snapshot(0)
	es, ok := snap.Requests["model"]
	if !ok {
		t.Fatal("model endpoint missing from snapshot")
	}
	p := es.Percentiles
	if p == nil {
		t.Fatal("no percentiles in snapshot")
	}
	if !(p.P50 <= p.P95 && p.P95 <= p.P99) {
		t.Errorf("percentiles not ordered: %+v", p)
	}
	if p.P50 > 0.1 {
		t.Errorf("p50 = %v ms, want <= 0.1 (90%% of mass is there)", p.P50)
	}
	if p.P99 <= 25 || p.P99 > 50 {
		t.Errorf("p99 = %v ms, want within (25, 50]", p.P99)
	}
}

// TestMetricsConcurrentObserve hammers one endpoint's stats from many
// goroutines; under -race this is the lock-free observe proof, and the
// totals must still balance.
func TestMetricsConcurrentObserve(t *testing.T) {
	m := newMetrics("model")
	st := m.endpoint("model")
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				status := 200
				if i%10 == 0 {
					status = 400
				}
				st.observe(status, time.Duration(i%1000)*time.Microsecond)
				m.cacheHits.Add(1)
			}
		}(g)
	}
	wg.Wait()
	snap := m.snapshot(0)
	es := snap.Requests["model"]
	const total = goroutines * perG
	if es.Count != total {
		t.Errorf("count = %d, want %d", es.Count, total)
	}
	if got := es.ByStatus["200"] + es.ByStatus["400"]; got != total {
		t.Errorf("status mass = %d, want %d", got, total)
	}
	var latencyMass uint64
	for _, b := range es.LatencyMS {
		latencyMass += b.Count
	}
	if latencyMass != total {
		t.Errorf("latency mass = %d, want %d", latencyMass, total)
	}
	if snap.Cache.Hits != total {
		t.Errorf("cache hits = %d, want %d", snap.Cache.Hits, total)
	}
}

// TestMetricsObserveZeroAllocs pins the observe path at zero allocations.
func TestMetricsObserveZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	m := newMetrics("model")
	st := m.endpoint("model")
	allocs := testing.AllocsPerRun(1000, func() {
		st.observe(200, 123*time.Microsecond)
		m.evaluations.Add(1)
	})
	if allocs != 0 {
		t.Errorf("observe allocates %.1f per op, want 0", allocs)
	}
}
