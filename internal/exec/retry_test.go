package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"wroofline/internal/dag"
	"wroofline/internal/failure"
	"wroofline/internal/trace"
)

func TestRetryRecoversTransientFailure(t *testing.T) {
	g := mustGraph(t, func(g *dag.Graph) error { return g.AddEdge("a", "b") })
	var mu sync.Mutex
	calls := map[string]int{}
	flaky := func(id string, failTimes int) Fn {
		return func(ctx context.Context) error {
			mu.Lock()
			calls[id]++
			n := calls[id]
			mu.Unlock()
			if n <= failTimes {
				return fmt.Errorf("transient %d", n)
			}
			return nil
		}
	}
	res, err := Run(context.Background(), g,
		map[string]Fn{"a": flaky("a", 2), "b": flaky("b", 0)},
		Options{Retry: &failure.Retry{MaxAttempts: 5, BackoffSeconds: 0.001, BackoffFactor: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() != nil {
		t.Fatalf("retries should have recovered the run: %v (errors %v)", res.Err(), res.Errors)
	}
	if res.Attempts["a"] != 3 || res.Attempts["b"] != 1 {
		t.Errorf("attempts = %v, want a:3 b:1", res.Attempts)
	}
	// Every attempt records a span.
	if n := len(res.Recorder.Filter(func(s trace.Span) bool { return s.Task == "a" })); n != 3 {
		t.Errorf("task a recorded %d spans, want 3", n)
	}
}

func TestRetryExhaustsAndReportsAttempts(t *testing.T) {
	g := mustGraph(t, func(g *dag.Graph) error { return g.AddEdge("a", "b") })
	always := func(ctx context.Context) error { return errors.New("broken") }
	ok := func(ctx context.Context) error { return nil }
	res, err := Run(context.Background(), g, map[string]Fn{"a": always, "b": ok},
		Options{Retry: &failure.Retry{MaxAttempts: 3, BackoffSeconds: 0.001, BackoffFactor: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil {
		t.Fatal("run should have failed")
	}
	if res.Attempts["a"] != 3 {
		t.Errorf("attempts[a] = %d, want 3", res.Attempts["a"])
	}
	if aErr := res.Errors["a"]; aErr == nil || !errors.Is(res.Errors["b"], ErrSkipped) {
		t.Errorf("errors = %v", res.Errors)
	}
	if aErr := res.Errors["a"].Error(); aErr != "after 3 attempts: broken" {
		t.Errorf("error = %q", aErr)
	}
	// b never ran, so it has no attempt entry.
	if _, ok := res.Attempts["b"]; ok {
		t.Errorf("skipped task got an attempt count: %v", res.Attempts)
	}
}

func TestRetryBackoffRespectsCancellation(t *testing.T) {
	g := mustGraph(t, func(g *dag.Graph) error { return g.AddNode("a") })
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	fn := func(c context.Context) error {
		select {
		case started <- struct{}{}:
		default:
		}
		return errors.New("always")
	}
	go func() {
		<-started
		cancel()
	}()
	t0 := time.Now()
	res, err := Run(ctx, g, map[string]Fn{"a": fn},
		Options{Retry: &failure.Retry{MaxAttempts: 100, BackoffSeconds: 3600, BackoffFactor: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("cancelled backoff still slept %v", elapsed)
	}
	if res.Err() == nil {
		t.Fatal("cancelled run should report the failure")
	}
}

func TestNoRetryLeavesAttemptsNil(t *testing.T) {
	g := mustGraph(t, func(g *dag.Graph) error { return g.AddNode("a") })
	res, err := Run(context.Background(), g,
		map[string]Fn{"a": func(ctx context.Context) error { return nil }}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != nil {
		t.Errorf("attempts without a retry policy: %v", res.Attempts)
	}
}

func TestRetryJitterDeterministicPerSeed(t *testing.T) {
	r := &failure.Retry{MaxAttempts: 4, BackoffSeconds: 0.001, BackoffFactor: 1, JitterFrac: 0.5}
	run := func(seed uint64) *Result {
		g := mustGraph(t, func(g *dag.Graph) error { return g.AddNode("a") })
		res, err := Run(context.Background(), g,
			map[string]Fn{"a": func(ctx context.Context) error { return errors.New("x") }},
			Options{Retry: r, RetrySeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(1), run(1); a.Attempts["a"] != b.Attempts["a"] {
		t.Errorf("same seed diverged: %v vs %v", a.Attempts, b.Attempts)
	}
}

// TestLongSkipChainDoesNotOverflowStack pins the iterative worklist: a failed
// source followed by a 100k-task dependency chain of skips must settle without
// recursing once per task (the old settle->launch->settle recursion overflowed
// the goroutine stack on chains like this).
func TestLongSkipChainDoesNotOverflowStack(t *testing.T) {
	const n = 100_000
	g := dag.New()
	fns := make(map[string]Fn, n)
	ok := func(ctx context.Context) error { return nil }
	prev := "t0"
	if err := g.AddNode(prev); err != nil {
		t.Fatal(err)
	}
	fns[prev] = func(ctx context.Context) error { return errors.New("root failure") }
	for i := 1; i < n; i++ {
		id := fmt.Sprintf("t%d", i)
		if err := g.AddEdge(prev, id); err != nil {
			t.Fatal(err)
		}
		fns[id] = ok
		prev = id
	}
	res, err := Run(context.Background(), g, fns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != n {
		t.Fatalf("errors = %d, want %d (1 failure + %d skips)", len(res.Errors), n, n-1)
	}
	skipped := 0
	for _, e := range res.Errors {
		if errors.Is(e, ErrSkipped) {
			skipped++
		}
	}
	if skipped != n-1 {
		t.Fatalf("skipped = %d, want %d", skipped, n-1)
	}
	if res.Completed != 0 {
		t.Fatalf("completed = %d", res.Completed)
	}
}
