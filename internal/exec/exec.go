// Package exec runs workflows of real Go functions with dependency ordering
// and a bounded number of concurrently executing tasks (the system
// parallelism wall), recording wall-clock spans for each task. It is the
// toolkit's "workflow execution characterization" path: run the workflow,
// collect the makespan and throughput, and place the resulting point on a
// Workflow Roofline.
package exec

import (
	"context"
	"fmt"
	"sync"
	"time"

	"wroofline/internal/dag"
	"wroofline/internal/failure"
	"wroofline/internal/trace"
)

// Fn is a task body. It receives the run context (cancelled on failure when
// FailFast is set) and returns an error to mark the task failed.
type Fn func(ctx context.Context) error

// Options tunes an execution.
type Options struct {
	// MaxParallel bounds concurrently running tasks; 0 or negative means
	// unbounded.
	MaxParallel int
	// FailFast cancels the run context after the first task failure;
	// already-running tasks see the cancellation, and not-yet-started tasks
	// are skipped.
	FailFast bool
	// Recorder receives task spans; a fresh one is created when nil.
	Recorder *trace.Recorder
	// Retry re-runs failed task bodies under the policy (nil disables
	// retries). Each failed attempt sleeps the policy's backoff — respecting
	// context cancellation — before the next try; every attempt records its
	// own span, so wasted time shows up in the trace.
	Retry *failure.Retry
	// RetrySeed seeds the per-task jitter streams when the retry policy uses
	// jitter; with zero jitter the seed is unused.
	RetrySeed uint64
}

// ErrSkipped marks tasks not run because a dependency failed (or FailFast
// cancelled the run before they started).
var ErrSkipped = fmt.Errorf("exec: skipped")

// Result is a completed (or aborted) execution.
type Result struct {
	// Makespan is the wall-clock duration of the whole run.
	Makespan time.Duration
	// Completed counts tasks that ran and returned nil.
	Completed int
	// Throughput is Completed / Makespan in tasks per second.
	Throughput float64
	// Errors maps failed or skipped task ids to their error.
	Errors map[string]error
	// Attempts maps task ids to how many times their body ran (nil when no
	// retry policy was set; skipped tasks are absent).
	Attempts map[string]int
	// Recorder holds per-task spans with times in seconds from run start.
	Recorder *trace.Recorder
}

// Err returns nil when every task completed, or an error summarizing the
// failure count.
func (r *Result) Err() error {
	if len(r.Errors) == 0 {
		return nil
	}
	return fmt.Errorf("exec: %d of %d tasks failed or were skipped",
		len(r.Errors), r.Completed+len(r.Errors))
}

// Run executes the graph. Every graph vertex must have a function in fns.
// Tasks start as soon as their dependencies complete and a slot is free.
func Run(ctx context.Context, g *dag.Graph, fns map[string]Fn, opts Options) (*Result, error) {
	if g == nil || g.Len() == 0 {
		return nil, fmt.Errorf("exec: empty graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	for _, id := range g.Nodes() {
		if fns[id] == nil {
			return nil, fmt.Errorf("exec: no function for task %q", id)
		}
	}
	for id := range fns {
		if !g.Has(id) {
			return nil, fmt.Errorf("exec: function for unknown task %q", id)
		}
	}
	if opts.Retry != nil && opts.Retry.MaxAttempts <= 0 {
		return nil, fmt.Errorf("exec: retry policy needs positive max attempts, got %d", opts.Retry.MaxAttempts)
	}

	rec := opts.Recorder
	if rec == nil {
		rec = trace.NewRecorder()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var sem chan struct{}
	if opts.MaxParallel > 0 {
		sem = make(chan struct{}, opts.MaxParallel)
	}

	var (
		mu        sync.Mutex
		errs      = make(map[string]error)
		remaining = make(map[string]int, g.Len())
		failedDep = make(map[string]bool)
		attempts  map[string]int
		wg        sync.WaitGroup
	)
	if opts.Retry != nil {
		attempts = make(map[string]int, g.Len())
	}
	start := time.Now()

	// settle marks a task finished and returns the successors it made ready.
	settle := func(id string, err error) []string {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errs[id] = err
			if opts.FailFast {
				cancel()
			}
		}
		var ready []string
		for _, succ := range g.Succs(id) {
			if err != nil {
				failedDep[succ] = true
			}
			remaining[succ]--
			if remaining[succ] == 0 {
				ready = append(ready, succ)
			}
		}
		return ready
	}

	// runTask executes one task body (with retries) in a fresh goroutine and
	// drives its successors when it finishes.
	var runTask func(id string)

	// drive consumes a worklist of ready tasks. Skipped tasks are settled
	// inline and their newly-ready successors appended, so an arbitrarily
	// long chain of skips iterates instead of recursing (a settle->skip->
	// settle recursion would grow the stack with the chain length).
	drive := func(ready []string) {
		for len(ready) > 0 {
			id := ready[0]
			ready = ready[1:]
			mu.Lock()
			skip := failedDep[id] || (opts.FailFast && runCtx.Err() != nil)
			mu.Unlock()
			if skip {
				ready = append(ready, settle(id, fmt.Errorf("%w: dependency failed or run cancelled", ErrSkipped))...)
				continue
			}
			runTask(id)
		}
	}

	runTask = func(id string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if sem != nil {
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				case <-runCtx.Done():
					drive(settle(id, fmt.Errorf("%w: %v", ErrSkipped, runCtx.Err())))
					return
				}
			}
			var jitter *failure.Stream
			if opts.Retry != nil && opts.Retry.JitterFrac > 0 {
				jitter = failure.TaskStream(opts.RetrySeed, id)
			}
			var err error
			attempt := 0
			for {
				attempt++
				t0 := time.Since(start).Seconds()
				err = fns[id](runCtx)
				t1 := time.Since(start).Seconds()
				if recErr := rec.Record(trace.Span{Task: id, Phase: "run", Start: t0, End: t1}); recErr != nil && err == nil {
					err = recErr
				}
				if err == nil || opts.Retry == nil || attempt >= opts.Retry.MaxAttempts || runCtx.Err() != nil {
					break
				}
				var u float64
				if jitter != nil {
					u = jitter.Float64()
				}
				delay := time.Duration(opts.Retry.Delay(attempt, u) * float64(time.Second))
				timer := time.NewTimer(delay)
				select {
				case <-timer.C:
				case <-runCtx.Done():
					timer.Stop()
					// Cancelled mid-backoff: keep the last attempt's error.
					attempt = opts.Retry.MaxAttempts
				}
			}
			if opts.Retry != nil {
				if err != nil && attempt > 1 {
					err = fmt.Errorf("after %d attempts: %w", attempt, err)
				}
				mu.Lock()
				attempts[id] = attempt
				mu.Unlock()
			}
			drive(settle(id, err))
		}()
	}

	// Seed sources.
	var sources []string
	for _, id := range g.Nodes() {
		remaining[id] = len(g.Preds(id))
		if remaining[id] == 0 {
			sources = append(sources, id)
		}
	}
	drive(sources)

	// Wait for the whole graph: every task eventually settles exactly once
	// (run, failed, or skipped), and wg tracks the running ones.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	<-done

	elapsed := time.Since(start)
	res := &Result{
		Makespan: elapsed,
		Errors:   errs,
		Attempts: attempts,
		Recorder: rec,
	}
	res.Completed = g.Len() - len(errs)
	if secs := elapsed.Seconds(); secs > 0 {
		res.Throughput = float64(res.Completed) / secs
	}
	return res, nil
}
