package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wroofline/internal/dag"
	"wroofline/internal/trace"
)

func mustGraph(t *testing.T, build func(g *dag.Graph) error) *dag.Graph {
	t.Helper()
	g := dag.New()
	if err := build(g); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunSimpleChain(t *testing.T) {
	g := mustGraph(t, func(g *dag.Graph) error {
		return errorsJoin(g.AddEdge("a", "b"), g.AddEdge("b", "c"))
	})
	var order []string
	var mu sync.Mutex
	fn := func(id string) Fn {
		return func(ctx context.Context) error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}
	}
	res, err := Run(context.Background(), g, map[string]Fn{"a": fn("a"), "b": fn("b"), "c": fn("c")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() != nil {
		t.Fatal(res.Err())
	}
	if res.Completed != 3 {
		t.Errorf("completed = %d", res.Completed)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("order = %v", order)
	}
	if res.Recorder.Len() != 3 {
		t.Errorf("spans = %d", res.Recorder.Len())
	}
}

func errorsJoin(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func TestParallelismWallEnforced(t *testing.T) {
	g := dag.New()
	const n = 12
	fns := map[string]Fn{}
	var cur, peak int64
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("t%02d", i)
		if err := g.AddNode(id); err != nil {
			t.Fatal(err)
		}
		fns[id] = func(ctx context.Context) error {
			c := atomic.AddInt64(&cur, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			atomic.AddInt64(&cur, -1)
			return nil
		}
	}
	res, err := Run(context.Background(), g, fns, Options{MaxParallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() != nil {
		t.Fatal(res.Err())
	}
	if got := atomic.LoadInt64(&peak); got > 3 {
		t.Errorf("peak concurrency = %d, want <= 3", got)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
}

func TestDiamondDependencies(t *testing.T) {
	g := mustGraph(t, func(g *dag.Graph) error {
		return errorsJoin(
			g.AddEdge("s", "l"), g.AddEdge("s", "r"),
			g.AddEdge("l", "t"), g.AddEdge("r", "t"),
		)
	})
	var tStarted atomic.Bool
	var lDone, rDone atomic.Bool
	fns := map[string]Fn{
		"s": func(ctx context.Context) error { return nil },
		"l": func(ctx context.Context) error { lDone.Store(true); return nil },
		"r": func(ctx context.Context) error { rDone.Store(true); return nil },
		"t": func(ctx context.Context) error {
			if !lDone.Load() || !rDone.Load() {
				return fmt.Errorf("t started before both parents finished")
			}
			tStarted.Store(true)
			return nil
		},
	}
	res, err := Run(context.Background(), g, fns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() != nil {
		t.Fatalf("errors: %v", res.Errors)
	}
	if !tStarted.Load() {
		t.Error("t never ran")
	}
}

func TestFailureSkipsDependents(t *testing.T) {
	g := mustGraph(t, func(g *dag.Graph) error {
		return errorsJoin(g.AddEdge("a", "b"), g.AddEdge("b", "c"), g.AddNode("x"))
	})
	boom := errors.New("boom")
	ran := make(map[string]bool)
	var mu sync.Mutex
	mark := func(id string) { mu.Lock(); ran[id] = true; mu.Unlock() }
	fns := map[string]Fn{
		"a": func(ctx context.Context) error { mark("a"); return boom },
		"b": func(ctx context.Context) error { mark("b"); return nil },
		"c": func(ctx context.Context) error { mark("c"); return nil },
		"x": func(ctx context.Context) error { mark("x"); return nil },
	}
	res, err := Run(context.Background(), g, fns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil {
		t.Fatal("run with failures should report an error")
	}
	mu.Lock()
	defer mu.Unlock()
	if ran["b"] || ran["c"] {
		t.Errorf("dependents of a failed task must not run: %v", ran)
	}
	if !ran["x"] {
		t.Error("independent task x should still run without FailFast")
	}
	if !errors.Is(res.Errors["b"], ErrSkipped) || !errors.Is(res.Errors["c"], ErrSkipped) {
		t.Errorf("b/c should be skipped: %v", res.Errors)
	}
	if !errors.Is(res.Errors["a"], boom) {
		t.Errorf("a should carry its own error: %v", res.Errors["a"])
	}
	if res.Completed != 1 {
		t.Errorf("completed = %d, want 1 (only x)", res.Completed)
	}
}

func TestFailFastCancelsRunning(t *testing.T) {
	g := mustGraph(t, func(g *dag.Graph) error {
		return errorsJoin(g.AddNode("fail"), g.AddNode("slow"))
	})
	slowSawCancel := make(chan bool, 1)
	fns := map[string]Fn{
		"fail": func(ctx context.Context) error { return errors.New("boom") },
		"slow": func(ctx context.Context) error {
			select {
			case <-ctx.Done():
				slowSawCancel <- true
				return ctx.Err()
			case <-time.After(5 * time.Second):
				slowSawCancel <- false
				return nil
			}
		},
	}
	res, err := Run(context.Background(), g, fns, Options{FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil {
		t.Fatal("should report failure")
	}
	select {
	case saw := <-slowSawCancel:
		if !saw {
			t.Error("slow task did not observe cancellation")
		}
	default:
		// slow may have been skipped before starting, which is also fine.
	}
	if res.Makespan > 2*time.Second {
		t.Errorf("fail-fast run took %v", res.Makespan)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Run(context.Background(), nil, nil, Options{}); err == nil {
		t.Error("nil graph should fail")
	}
	if _, err := Run(context.Background(), dag.New(), nil, Options{}); err == nil {
		t.Error("empty graph should fail")
	}
	g := mustGraph(t, func(g *dag.Graph) error { return g.AddNode("a") })
	if _, err := Run(context.Background(), g, map[string]Fn{}, Options{}); err == nil {
		t.Error("missing function should fail")
	}
	fns := map[string]Fn{
		"a": func(ctx context.Context) error { return nil },
		"z": func(ctx context.Context) error { return nil },
	}
	if _, err := Run(context.Background(), g, fns, Options{}); err == nil {
		t.Error("function for unknown task should fail")
	}
	// Cyclic graph.
	cyc := dag.New()
	if err := errorsJoin(cyc.AddEdge("a", "b"), cyc.AddEdge("b", "a")); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), cyc, map[string]Fn{
		"a": fns["a"], "b": fns["a"],
	}, Options{}); err == nil {
		t.Error("cyclic graph should fail")
	}
}

func TestSpansCoverExecution(t *testing.T) {
	g := mustGraph(t, func(g *dag.Graph) error { return g.AddEdge("a", "b") })
	fns := map[string]Fn{
		"a": func(ctx context.Context) error { time.Sleep(10 * time.Millisecond); return nil },
		"b": func(ctx context.Context) error { time.Sleep(10 * time.Millisecond); return nil },
	}
	res, err := Run(context.Background(), g, fns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aStart, aEnd, ok := res.Recorder.TaskWindow("a")
	if !ok {
		t.Fatal("no span for a")
	}
	bStart, _, ok := res.Recorder.TaskWindow("b")
	if !ok {
		t.Fatal("no span for b")
	}
	if bStart < aEnd-1e-6 {
		t.Errorf("b span starts (%v) before a ends (%v)", bStart, aEnd)
	}
	if aEnd-aStart < 0.005 {
		t.Errorf("a span too short: %v", aEnd-aStart)
	}
	if res.Recorder.Makespan() > res.Makespan.Seconds()+1e-6 {
		t.Errorf("recorder makespan %v exceeds wall makespan %v",
			res.Recorder.Makespan(), res.Makespan.Seconds())
	}
}

func TestWideFanOutStress(t *testing.T) {
	g := dag.New()
	fns := map[string]Fn{}
	var count int64
	const n = 200
	if err := g.AddNode("root"); err != nil {
		t.Fatal(err)
	}
	fns["root"] = func(ctx context.Context) error { return nil }
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("leaf%03d", i)
		if err := g.AddEdge("root", id); err != nil {
			t.Fatal(err)
		}
		fns[id] = func(ctx context.Context) error {
			atomic.AddInt64(&count, 1)
			return nil
		}
	}
	res, err := Run(context.Background(), g, fns, Options{MaxParallel: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() != nil {
		t.Fatal(res.Err())
	}
	if atomic.LoadInt64(&count) != n {
		t.Errorf("ran %d leaves, want %d", count, n)
	}
	if res.Completed != n+1 {
		t.Errorf("completed = %d", res.Completed)
	}
}

func TestCustomRecorderOption(t *testing.T) {
	rec := trace.NewRecorder()
	g := mustGraph(t, func(g *dag.Graph) error { return g.AddNode("a") })
	fns := map[string]Fn{"a": func(ctx context.Context) error { return nil }}
	res, err := Run(context.Background(), g, fns, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder != rec {
		t.Error("result should expose the provided recorder")
	}
	if rec.Len() != 1 {
		t.Errorf("custom recorder got %d spans", rec.Len())
	}
}

func TestContextCancellationBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := mustGraph(t, func(g *dag.Graph) error { return g.AddNode("a") })
	observed := make(chan error, 1)
	fns := map[string]Fn{"a": func(ctx context.Context) error {
		observed <- ctx.Err()
		return ctx.Err()
	}}
	res, err := Run(ctx, g, fns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Without FailFast the task still runs, but it sees the cancelled
	// context and reports the error.
	select {
	case e := <-observed:
		if e == nil {
			t.Error("task should observe the cancelled parent context")
		}
	default:
		t.Error("task never ran")
	}
	if res.Err() == nil {
		t.Error("run should report the failure")
	}
}

// TestRaceStressLayeredFailures drives the executor's every concurrent path
// at once — wide layers, a bounded semaphore, mid-run failures with
// FailFast, and a shared recorder — so `go test -race` exercises the
// launch/finish/skip interleavings rather than just the happy path.
func TestRaceStressLayeredFailures(t *testing.T) {
	const layers, width = 6, 24
	g := dag.New()
	fns := map[string]Fn{}
	var ran int64
	for l := 0; l < layers; l++ {
		for w := 0; w < width; w++ {
			id := fmt.Sprintf("t%02d_%02d", l, w)
			if l == 0 {
				if err := g.AddNode(id); err != nil {
					t.Fatal(err)
				}
			} else {
				// Each task depends on three tasks of the previous layer.
				for d := 0; d < 3; d++ {
					pred := fmt.Sprintf("t%02d_%02d", l-1, (w+d*7)%width)
					if err := g.AddEdge(pred, id); err != nil {
						t.Fatal(err)
					}
				}
			}
			fail := l == 2 && w%5 == 0
			fns[id] = func(ctx context.Context) error {
				atomic.AddInt64(&ran, 1)
				if fail {
					return errors.New("injected failure")
				}
				return nil
			}
		}
	}
	res, err := Run(context.Background(), g, fns, Options{MaxParallel: 8, Recorder: trace.NewRecorder()})
	if err != nil {
		t.Fatal(err)
	}
	// Every task is accounted for exactly once: completed or errored/skipped.
	if got := res.Completed + len(res.Errors); got != layers*width {
		t.Errorf("accounted tasks = %d, want %d", got, layers*width)
	}
	if res.Err() == nil {
		t.Error("injected failures should surface through Err()")
	}
	// Failed tasks ran; their transitive dependents were skipped, not run.
	for id, err := range res.Errors {
		if !errors.Is(err, ErrSkipped) && !strings.Contains(err.Error(), "injected") {
			t.Errorf("task %s: unexpected error %v", id, err)
		}
	}
	if res.Recorder.Len() != int(atomic.LoadInt64(&ran)) {
		t.Errorf("recorder has %d spans, %d tasks ran", res.Recorder.Len(), ran)
	}
}

// TestRaceStressFailFast floods a bounded pool and cancels mid-flight: tasks
// blocked on the semaphore must skip, running tasks must observe the
// cancellation, and the span count must match the tasks that actually ran.
func TestRaceStressFailFast(t *testing.T) {
	g := dag.New()
	fns := map[string]Fn{}
	const n = 64
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("w%03d", i)
		if err := g.AddNode(id); err != nil {
			t.Fatal(err)
		}
		poison := i == 7
		fns[id] = func(ctx context.Context) error {
			if poison {
				return errors.New("poison")
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Millisecond):
				return nil
			}
		}
	}
	res, err := Run(context.Background(), g, fns, Options{MaxParallel: 4, FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil {
		t.Error("poisoned run should report failures")
	}
	if res.Completed+len(res.Errors) != n {
		t.Errorf("accounted = %d, want %d", res.Completed+len(res.Errors), n)
	}
}
