// Package report renders tabular results as aligned text, CSV, and
// Markdown. The benchmark harness uses it to print the rows each paper
// table and figure reports, and cmd/wroofline uses it for terminal output.
package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a simple column-ordered table.
type Table struct {
	// Title labels the table (printed above text renderings).
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Headers returns a copy of the column headers.
func (t *Table) Headers() []string {
	out := make([]string, len(t.headers))
	copy(out, t.headers)
	return out
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// AddRow appends a row; the cell count must match the header count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.headers) {
		return fmt.Errorf("report: row has %d cells, table %q has %d columns",
			len(cells), t.Title, len(t.headers))
	}
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return nil
}

// AddRowf appends a row formatting each value with %v, numbers via Num.
func (t *Table) AddRowf(values ...any) error {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = Num(x)
		case float32:
			cells[i] = Num(float64(x))
		case string:
			cells[i] = x
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	return t.AddRow(cells...)
}

// Num formats a float compactly: up to four significant digits, scientific
// notation outside [1e-3, 1e7).
func Num(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	if av != 0 && (av < 1e-3 || av >= 1e7) {
		return strconv.FormatFloat(v, 'e', 3, 64)
	}
	s := strconv.FormatFloat(v, 'f', 4, 64)
	if strings.Contains(s, ".") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
	}
	return s
}

// Text renders the table with aligned columns.
func (t *Table) Text() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Render dispatches on a format name: "table" (aligned text), "csv", or
// "markdown" — the shared switch behind every CLI's -format flag.
func (t *Table) Render(format string) (string, error) {
	switch format {
	case "", "table", "text":
		return t.Text(), nil
	case "csv":
		return t.CSV(), nil
	case "markdown", "md":
		return t.Markdown(), nil
	default:
		return "", fmt.Errorf("report: unknown format %q (want table, csv, or markdown)", format)
	}
}

// CSV renders the table as RFC-4180-ish CSV (quotes applied when needed).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "### %s\n\n", t.Title)
	}
	escape := func(c string) string {
		return strings.ReplaceAll(c, "|", `\|`)
	}
	sb.WriteString("|")
	for _, h := range t.headers {
		sb.WriteString(" " + escape(h) + " |")
	}
	sb.WriteString("\n|")
	for range t.headers {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		sb.WriteString("|")
		for _, c := range row {
			sb.WriteString(" " + escape(c) + " |")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
