package report

import (
	"encoding/csv"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// csvTable is the quick generator's shape: a header row plus data rows of
// the same width, with cells drawn from a charset heavy in CSV's special
// characters (commas, quotes, newlines).
type csvTable struct {
	Cols uint8
	Rows [][]string
}

// Generate implements quick.Generator. Widths are clamped small so the
// property runs fast; cells deliberately include the separators and quoting
// characters RFC 4180 exists for. Carriage returns are excluded — the writer
// emits bare-\n records, and encoding/csv normalizes \r\n on read, so a
// round-trip cannot preserve them byte-for-byte.
func (csvTable) Generate(r *rand.Rand, size int) reflect.Value {
	const charset = `a,b"c` + "\n" + `,"",x y`
	cols := 1 + r.Intn(4)
	nrows := r.Intn(6)
	cell := func() string {
		n := r.Intn(8)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(charset[r.Intn(len(charset))])
		}
		return sb.String()
	}
	t := csvTable{Cols: uint8(cols)}
	for i := 0; i < nrows; i++ {
		row := make([]string, cols)
		allEmpty := true
		for j := range row {
			row[j] = cell()
			if row[j] != "" {
				allEmpty = false
			}
		}
		// A row of entirely empty cells in a one-column table serializes to
		// a blank line, which encoding/csv treats as a record separator and
		// skips; pin one cell so the row survives the trip.
		if cols == 1 && allEmpty {
			row[0] = "x"
		}
		t.Rows = append(t.Rows, row)
	}
	return reflect.ValueOf(t)
}

// TestCSVRoundTripsQuick is the property: for any table whose cells may
// contain commas, quotes, and newlines, Table.CSV() parses back under a
// strict encoding/csv reader to exactly the original headers and rows.
func TestCSVRoundTripsQuick(t *testing.T) {
	property := func(in csvTable) bool {
		headers := make([]string, in.Cols)
		for i := range headers {
			headers[i] = "h" // header content is exercised via rows below
		}
		tbl := NewTable("quick", headers...)
		for _, row := range in.Rows {
			if err := tbl.AddRow(row...); err != nil {
				t.Fatalf("AddRow: %v", err)
			}
		}
		rd := csv.NewReader(strings.NewReader(tbl.CSV()))
		rd.FieldsPerRecord = int(in.Cols)
		records, err := rd.ReadAll()
		if err != nil {
			t.Logf("CSV did not parse: %v\n%q", err, tbl.CSV())
			return false
		}
		if len(records) != 1+len(in.Rows) {
			t.Logf("row count %d, want %d", len(records), 1+len(in.Rows))
			return false
		}
		if !reflect.DeepEqual(records[0], headers) {
			t.Logf("headers round-tripped to %q", records[0])
			return false
		}
		for i, row := range in.Rows {
			if !reflect.DeepEqual(records[1+i], row) {
				t.Logf("row %d round-tripped to %q, want %q", i, records[1+i], row)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCSVQuotesSpecials pins the concrete quoting rules on a hand-built
// table, so a failure in the quick property has a readable counterpart.
func TestCSVQuotesSpecials(t *testing.T) {
	tbl := NewTable("specials", "name", "value")
	if err := tbl.AddRow(`plain`, `a,b`); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow(`say "hi"`, "line1\nline2"); err != nil {
		t.Fatal(err)
	}
	got := tbl.CSV()
	want := "name,value\n" +
		"plain,\"a,b\"\n" +
		"\"say \"\"hi\"\"\",\"line1\nline2\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
