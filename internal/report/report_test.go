package report

import (
	"encoding/csv"
	"strings"
	"testing"
)

func sample(t *testing.T) *Table {
	t.Helper()
	tb := NewTable("Fig 5b", "Scenario", "Loading (s)", "Analysis (s)")
	if err := tb.AddRow("Good days", "1000", "20"); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRowf("Bad days", 5000.0, 100.0); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestAddRowValidation(t *testing.T) {
	tb := NewTable("x", "a", "b")
	if err := tb.AddRow("only one"); err == nil {
		t.Error("short row should fail")
	}
	if err := tb.AddRowf("1", "2", "3"); err == nil {
		t.Error("long row should fail")
	}
	if tb.NumRows() != 0 {
		t.Errorf("rows = %d", tb.NumRows())
	}
}

func TestAddRowCopies(t *testing.T) {
	tb := NewTable("x", "a")
	cells := []string{"v"}
	if err := tb.AddRow(cells...); err != nil {
		t.Fatal(err)
	}
	cells[0] = "mutated"
	if got := tb.Text(); strings.Contains(got, "mutated") {
		t.Error("AddRow must copy cells")
	}
}

func TestText(t *testing.T) {
	out := sample(t).Text()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Fig 5b" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Scenario") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line = %q", lines[2])
	}
	// Alignment: "Loading (s)" column starts at the same offset in every row.
	off := strings.Index(lines[1], "Loading")
	if !strings.HasPrefix(lines[3][off:], "1000") {
		t.Errorf("misaligned column:\n%s", out)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := sample(t)
	if err := tb.AddRow(`tricky "quoted", cell`, "1", "2"); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(strings.NewReader(tb.CSV()))
	records, err := r.ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(records) != 4 {
		t.Fatalf("records = %d", len(records))
	}
	if records[3][0] != `tricky "quoted", cell` {
		t.Errorf("quoting lost: %q", records[3][0])
	}
}

func TestMarkdown(t *testing.T) {
	tb := sample(t)
	if err := tb.AddRow("with|pipe", "0", "0"); err != nil {
		t.Fatal(err)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "### Fig 5b") {
		t.Errorf("missing title:\n%s", md)
	}
	if !strings.Contains(md, "| Scenario | Loading (s) | Analysis (s) |") {
		t.Errorf("missing header:\n%s", md)
	}
	if !strings.Contains(md, `with\|pipe`) {
		t.Errorf("pipe not escaped:\n%s", md)
	}
	if !strings.Contains(md, "|---|---|---|") {
		t.Errorf("missing separator:\n%s", md)
	}
}

func TestNum(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		1:        "1",
		0.01:     "0.01",
		5.88e-3:  "0.0059",
		4184.86:  "4184.86",
		1e8:      "1.000e+08",
		0.000123: "1.230e-04",
		-2.5:     "-2.5",
	}
	for v, want := range cases {
		if got := Num(v); got != want {
			t.Errorf("Num(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestHeaders(t *testing.T) {
	tb := sample(t)
	h := tb.Headers()
	h[0] = "mutated"
	if tb.Headers()[0] != "Scenario" {
		t.Error("Headers must return a copy")
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}
