package report

import (
	"encoding/json"
	"fmt"
)

// jsonTable is the canonical serialized form: title, headers, then rows in
// presentation order. Encoding a table twice always yields identical bytes,
// so service responses built from tables are content-addressable.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON serializes the table in canonical form. Empty header and row
// sets encode as [] rather than null, so clients can index unconditionally.
func (t *Table) MarshalJSON() ([]byte, error) {
	jt := jsonTable{Title: t.Title, Headers: t.Headers(), Rows: t.Rows()}
	if jt.Headers == nil {
		jt.Headers = []string{}
	}
	if jt.Rows == nil {
		jt.Rows = [][]string{}
	}
	return json.Marshal(jt)
}

// UnmarshalJSON parses a serialized table, validating that every row matches
// the header width.
func (t *Table) UnmarshalJSON(data []byte) error {
	var jt jsonTable
	if err := json.Unmarshal(data, &jt); err != nil {
		return fmt.Errorf("report: decode table: %w", err)
	}
	nt := NewTable(jt.Title, jt.Headers...)
	for _, row := range jt.Rows {
		if err := nt.AddRow(row...); err != nil {
			return err
		}
	}
	*t = *nt
	return nil
}

// Rows returns a deep copy of the data rows in presentation order.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, row := range t.rows {
		out[i] = make([]string, len(row))
		copy(out[i], row)
	}
	return out
}
