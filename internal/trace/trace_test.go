package trace

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestRecordAndSpans(t *testing.T) {
	r := NewRecorder()
	spans := []Span{
		{Task: "B", Phase: "compute", Start: 5, End: 8},
		{Task: "A", Phase: "load", Start: 0, End: 5},
		{Task: "A", Phase: "compute", Start: 5, End: 7},
	}
	for _, s := range spans {
		if err := r.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	got := r.Spans()
	if got[0].Task != "A" || got[0].Phase != "load" {
		t.Errorf("first span = %+v, want A/load", got[0])
	}
	if got[1].Task != "A" || got[1].Phase != "compute" {
		t.Errorf("second span = %+v (start ties break by task then phase)", got[1])
	}
}

func TestRecordValidation(t *testing.T) {
	r := NewRecorder()
	bad := []Span{
		{Task: "a", Phase: "p", Start: 5, End: 3},
		{Task: "a", Phase: "p", Start: math.NaN(), End: 3},
		{Task: "a", Phase: "p", Start: 0, End: math.NaN()},
		{Task: "", Phase: "p", Start: 0, End: 1},
	}
	for _, s := range bad {
		if err := r.Record(s); err == nil {
			t.Errorf("Record(%+v) should fail", s)
		}
	}
	// Zero-duration spans are legal (instant events).
	if err := r.Record(Span{Task: "a", Phase: "p", Start: 2, End: 2}); err != nil {
		t.Errorf("zero-duration span rejected: %v", err)
	}
}

func TestMakespan(t *testing.T) {
	r := NewRecorder()
	if r.Makespan() != 0 {
		t.Error("empty makespan should be 0")
	}
	for _, s := range []Span{
		{Task: "A", Phase: "x", Start: 2, End: 10},
		{Task: "B", Phase: "x", Start: 5, End: 30},
		{Task: "C", Phase: "x", Start: 3, End: 8},
	} {
		if err := r.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Makespan(); got != 28 {
		t.Errorf("makespan = %v, want 28 (earliest start 2 to latest end 30)", got)
	}
}

func TestByPhaseAndByTask(t *testing.T) {
	r := NewRecorder()
	// LCLS-like breakdown: loading dominates.
	for _, s := range []Span{
		{Task: "A", Phase: "loading", Start: 0, End: 1000},
		{Task: "B", Phase: "loading", Start: 0, End: 1000},
		{Task: "A", Phase: "analysis", Start: 1000, End: 1020},
		{Task: "B", Phase: "analysis", Start: 1000, End: 1015},
	} {
		if err := r.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	phases := r.ByPhase()
	if phases["loading"] != 2000 || phases["analysis"] != 35 {
		t.Errorf("ByPhase = %v", phases)
	}
	tasks := r.ByTask()
	if tasks["A"] != 1020 || tasks["B"] != 1015 {
		t.Errorf("ByTask = %v", tasks)
	}
}

func TestTaskWindow(t *testing.T) {
	r := NewRecorder()
	for _, s := range []Span{
		{Task: "epsilon", Phase: "compute", Start: 0, End: 490},
		{Task: "sigma", Phase: "compute", Start: 490, End: 1779},
		{Task: "sigma", Phase: "io", Start: 1779, End: 1800},
	} {
		if err := r.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	s, e, ok := r.TaskWindow("sigma")
	if !ok || s != 490 || e != 1800 {
		t.Errorf("sigma window = [%v, %v] ok=%v", s, e, ok)
	}
	if _, _, ok := r.TaskWindow("nope"); ok {
		t.Error("missing task should report !ok")
	}
}

func TestTasksAndFilter(t *testing.T) {
	r := NewRecorder()
	for _, s := range []Span{
		{Task: "b", Phase: "x", Start: 0, End: 1},
		{Task: "a", Phase: "y", Start: 1, End: 2},
		{Task: "b", Phase: "y", Start: 2, End: 3},
	} {
		if err := r.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Tasks(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Tasks = %v", got)
	}
	ys := r.Filter(func(s Span) bool { return s.Phase == "y" })
	if len(ys) != 2 {
		t.Errorf("Filter = %v", ys)
	}
	if !sort.SliceIsSorted(ys, func(i, j int) bool { return ys[i].Start <= ys[j].Start }) {
		t.Error("filtered spans should stay sorted")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := r.Record(Span{Task: "t", Phase: "p", Start: float64(i), End: float64(i + 1)}); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != workers*per {
		t.Errorf("Len = %d, want %d", r.Len(), workers*per)
	}
}

// Property: makespan >= every individual span duration, and the phase sums
// equal the task sums in total.
func TestQuickAggregationConsistency(t *testing.T) {
	f := func(raw []uint16) bool {
		r := NewRecorder()
		for i, v := range raw {
			if i >= 50 {
				break
			}
			start := float64(v % 100)
			dur := float64(v%37) + 1
			task := string(rune('a' + i%5))
			phase := string(rune('p' + i%3))
			if err := r.Record(Span{Task: task, Phase: phase, Start: start, End: start + dur}); err != nil {
				return false
			}
		}
		if r.Len() == 0 {
			return true
		}
		mk := r.Makespan()
		total := 0.0
		for _, s := range r.Spans() {
			if s.Duration() > mk+1e-9 {
				return false
			}
			total += s.Duration()
		}
		sumPhase, sumTask := 0.0, 0.0
		for _, v := range r.ByPhase() {
			sumPhase += v
		}
		for _, v := range r.ByTask() {
			sumTask += v
		}
		return math.Abs(sumPhase-total) < 1e-9 && math.Abs(sumTask-total) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
