package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one Trace Event Format record ("X" = complete event).
// Timestamps and durations are microseconds, per the format.
type chromeEvent struct {
	Name     string  `json:"name"`
	Category string  `json:"cat"`
	Phase    string  `json:"ph"`
	TS       float64 `json:"ts"`
	Dur      float64 `json:"dur"`
	PID      int     `json:"pid"`
	TID      int     `json:"tid"`
}

// WriteChromeTrace emits the recorder's spans in the Chrome Trace Event
// Format (the JSON loaded by chrome://tracing and Perfetto): one "thread"
// per task, one complete event per phase span. Times are converted from
// seconds to microseconds.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	if len(spans) == 0 {
		return fmt.Errorf("trace: no spans to export")
	}
	tids := make(map[string]int)
	for _, s := range spans {
		if _, ok := tids[s.Task]; !ok {
			tids[s.Task] = len(tids) + 1
		}
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name:     s.Phase,
			Category: s.Task,
			Phase:    "X",
			TS:       s.Start * 1e6,
			Dur:      s.Duration() * 1e6,
			PID:      1,
			TID:      tids[s.Task],
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ms"})
}
