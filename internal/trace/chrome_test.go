package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder()
	for _, s := range []Span{
		{Task: "epsilon", Phase: "compute", Start: 0, End: 490},
		{Task: "sigma", Phase: "compute", Start: 490, End: 1779},
		{Task: "sigma", Phase: "io", Start: 1779, End: 1780},
	} {
		if err := r.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := r.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	if doc.DisplayUnit != "ms" {
		t.Errorf("display unit = %q", doc.DisplayUnit)
	}
	first := doc.TraceEvents[0]
	if first.Name != "compute" || first.Cat != "epsilon" || first.Ph != "X" {
		t.Errorf("first event = %+v", first)
	}
	if first.TS != 0 || first.Dur != 490e6 {
		t.Errorf("first event timing = %v / %v (microseconds)", first.TS, first.Dur)
	}
	// Same task shares a tid; different tasks differ.
	if doc.TraceEvents[1].TID != doc.TraceEvents[2].TID {
		t.Error("sigma spans should share a tid")
	}
	if doc.TraceEvents[0].TID == doc.TraceEvents[1].TID {
		t.Error("epsilon and sigma should have distinct tids")
	}
	// Empty recorder fails.
	if err := NewRecorder().WriteChromeTrace(&sb); err == nil {
		t.Error("empty recorder should fail")
	}
}
