// Package trace collects execution spans from simulated or real workflow
// runs and aggregates them into the quantities the Workflow Roofline
// methodology needs: makespan, per-phase time breakdowns (Fig 5b, Fig 10b),
// and per-task windows (Gantt charts, Fig 7d).
package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Span is one timed interval of a task phase.
type Span struct {
	// Task is the owning task id.
	Task string
	// Phase labels what the interval was spent on (e.g. "loading",
	// "analysis", "bash", "python").
	Phase string
	// Start and End are in seconds (virtual time for simulations, wall
	// seconds since run start for real executions).
	Start, End float64
}

// Duration returns End - Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// Recorder accumulates spans. It is safe for concurrent use so the real
// executor (internal/exec) can record from many goroutines; the simulator
// uses it single-threaded.
type Recorder struct {
	mu    sync.Mutex
	spans []Span
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Validate reports whether the span is well-formed: finite non-NaN
// endpoints in order and a non-empty task id. Recorder.Record applies it to
// every appended span; metrics-only consumers (the simulator's batch
// executor) apply it directly so accepting or rejecting a span never depends
// on whether spans are being stored.
func Validate(s Span) error {
	if math.IsNaN(s.Start) || math.IsNaN(s.End) {
		return fmt.Errorf("trace: span %s/%s has NaN endpoints", s.Task, s.Phase)
	}
	if s.End < s.Start {
		return fmt.Errorf("trace: span %s/%s ends (%v) before it starts (%v)", s.Task, s.Phase, s.End, s.Start)
	}
	if s.Task == "" {
		return fmt.Errorf("trace: span with empty task id")
	}
	return nil
}

// Record appends a span. Spans with negative duration or NaN endpoints are
// rejected.
func (r *Recorder) Record(s Span) error {
	if err := Validate(s); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, s)
	return nil
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans returns a copy of all spans sorted by (Start, Task, Phase).
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// Makespan returns the duration between the earliest start and the latest
// end (0 when empty) — the paper's workflow makespan.
func (r *Recorder) Makespan() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) == 0 {
		return 0
	}
	minStart, maxEnd := math.Inf(1), math.Inf(-1)
	for _, s := range r.spans {
		if s.Start < minStart {
			minStart = s.Start
		}
		if s.End > maxEnd {
			maxEnd = s.End
		}
	}
	return maxEnd - minStart
}

// ByPhase sums span durations per phase label, the raw material of the time
// breakdown plots.
func (r *Recorder) ByPhase() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, s := range r.spans {
		out[s.Phase] += s.Duration()
	}
	return out
}

// ByTask sums span durations per task id.
func (r *Recorder) ByTask() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, s := range r.spans {
		out[s.Task] += s.Duration()
	}
	return out
}

// TaskWindow returns the earliest start and latest end across a task's
// spans; ok is false when the task has none.
func (r *Recorder) TaskWindow(task string) (start, end float64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	start, end = math.Inf(1), math.Inf(-1)
	for _, s := range r.spans {
		if s.Task != task {
			continue
		}
		ok = true
		if s.Start < start {
			start = s.Start
		}
		if s.End > end {
			end = s.End
		}
	}
	if !ok {
		return 0, 0, false
	}
	return start, end, true
}

// Tasks returns the distinct task ids, sorted.
func (r *Recorder) Tasks() []string {
	r.mu.Lock()
	seen := make(map[string]bool)
	for _, s := range r.spans {
		seen[s.Task] = true
	}
	r.mu.Unlock()
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Filter returns the spans satisfying pred, in the same sorted order as
// Spans.
func (r *Recorder) Filter(pred func(Span) bool) []Span {
	var out []Span
	for _, s := range r.Spans() {
		if pred(s) {
			out = append(out, s)
		}
	}
	return out
}
