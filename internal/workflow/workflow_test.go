package workflow

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"wroofline/internal/units"
)

func lcls(t *testing.T) *Workflow {
	t.Helper()
	w := New("LCLS", "haswell")
	w.Targets = Targets{MakespanSeconds: 600, ThroughputTPS: 6.0 / 600.0}
	for _, id := range []string{"A", "B", "C", "D", "E"} {
		err := w.AddTask(&Task{
			ID:    id,
			Nodes: 32,
			Procs: 1024,
			Work: Work{
				MemBytes:      32 * units.GB,
				ExternalBytes: 1 * units.TB,
				FSBytes:       1 * units.TB,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AddTask(&Task{ID: "F", Name: "merge", Nodes: 1, Work: Work{FSBytes: 5 * units.GB}}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"A", "B", "C", "D", "E"} {
		if err := w.AddDep(id, "F"); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestLCLSCharacterization(t *testing.T) {
	w := lcls(t)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.TotalTasks() != 6 {
		t.Errorf("total tasks = %d, want 6", w.TotalTasks())
	}
	p, err := w.ParallelTasks()
	if err != nil {
		t.Fatal(err)
	}
	if p != 5 {
		t.Errorf("parallel tasks = %d, want 5 (paper Fig 4)", p)
	}
	if w.MaxTaskNodes() != 32 {
		t.Errorf("max task nodes = %d, want 32", w.MaxTaskNodes())
	}
	m := w.MaxWorkPerTask()
	if m.ExternalBytes != 1*units.TB {
		t.Errorf("max external bytes = %v", m.ExternalBytes)
	}
	if m.MemBytes != 32*units.GB {
		t.Errorf("max mem bytes = %v", m.MemBytes)
	}
	tot := w.TotalWork()
	if tot.ExternalBytes != 5*units.TB {
		t.Errorf("total external = %v, want 5 TB", tot.ExternalBytes)
	}
	if tot.FSBytes != 5*units.TB+5*units.GB {
		t.Errorf("total FS = %v", tot.FSBytes)
	}
}

func TestAddTaskErrors(t *testing.T) {
	w := New("X", "cpu")
	if err := w.AddTask(nil); err == nil {
		t.Error("nil task should fail")
	}
	if err := w.AddTask(&Task{ID: "", Nodes: 1}); err == nil {
		t.Error("empty id should fail")
	}
	if err := w.AddTask(&Task{ID: "a", Nodes: 0}); err == nil {
		t.Error("zero nodes should fail")
	}
	if err := w.AddTask(&Task{ID: "a", Nodes: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddTask(&Task{ID: "a", Nodes: 2}); err == nil {
		t.Error("duplicate id should fail")
	}
}

func TestAddDepErrors(t *testing.T) {
	w := New("X", "cpu")
	if err := w.AddTask(&Task{ID: "a", Nodes: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddDep("a", "missing"); err == nil {
		t.Error("dep to unknown task should fail")
	}
	if err := w.AddDep("missing", "a"); err == nil {
		t.Error("dep from unknown task should fail")
	}
	if err := w.AddDep("a", "a"); err == nil {
		t.Error("self dep should fail")
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	w := New("X", "cpu")
	for _, id := range []string{"a", "b"} {
		if err := w.AddTask(&Task{ID: id, Nodes: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AddDep("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddDep("b", "a"); err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err == nil {
		t.Error("cycle should fail validation")
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := New("X", "cpu").Validate(); err == nil {
		t.Error("empty workflow should fail validation")
	}
	w := New("", "cpu")
	if err := w.AddTask(&Task{ID: "a", Nodes: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err == nil {
		t.Error("unnamed workflow should fail validation")
	}
}

func TestTaskLabel(t *testing.T) {
	if got := (&Task{ID: "a"}).Label(); got != "a" {
		t.Errorf("Label = %q", got)
	}
	if got := (&Task{ID: "a", Name: "Epsilon"}).Label(); got != "Epsilon" {
		t.Errorf("Label = %q", got)
	}
}

func TestWorkAddScale(t *testing.T) {
	a := Work{Flops: 10, MemBytes: 20, PCIeBytes: 5, NetworkBytes: 3, FSBytes: 7, ExternalBytes: 1}
	b := a.Add(a)
	if b != a.Scale(2) {
		t.Errorf("Add(a,a) = %+v, Scale(2) = %+v", b, a.Scale(2))
	}
	if !(Work{}).IsZero() {
		t.Error("zero work should be IsZero")
	}
	if a.IsZero() {
		t.Error("non-zero work reported IsZero")
	}
	if got := a.Scale(0); !got.IsZero() {
		t.Errorf("Scale(0) = %+v", got)
	}
}

func TestCriticalPathMeasured(t *testing.T) {
	w := New("BGW", "gpu")
	if err := w.AddTask(&Task{ID: "epsilon", Nodes: 64, MeasuredSeconds: 1109}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddTask(&Task{ID: "sigma", Nodes: 64, MeasuredSeconds: 3076}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddDep("epsilon", "sigma"); err != nil {
		t.Fatal(err)
	}
	path, total, err := w.CriticalPathMeasured()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(path, []string{"epsilon", "sigma"}) {
		t.Errorf("path = %v", path)
	}
	if math.Abs(total-4185) > 1 {
		t.Errorf("total = %v, want about 4185 (paper BGW 64-node)", total)
	}
}

func TestTasksSorted(t *testing.T) {
	w := New("X", "cpu")
	for _, id := range []string{"c", "a", "b"} {
		if err := w.AddTask(&Task{ID: id, Nodes: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var ids []string
	for _, task := range w.Tasks() {
		ids = append(ids, task.ID)
	}
	if !reflect.DeepEqual(ids, []string{"a", "b", "c"}) {
		t.Errorf("Tasks order = %v", ids)
	}
}

func TestTaskLookup(t *testing.T) {
	w := lcls(t)
	tk, err := w.Task("F")
	if err != nil {
		t.Fatal(err)
	}
	if tk.Label() != "merge" {
		t.Errorf("F label = %q", tk.Label())
	}
	if _, err := w.Task("Z"); err == nil {
		t.Error("missing task lookup should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := lcls(t)
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Workflow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "LCLS" || back.Partition != "haswell" {
		t.Errorf("identity lost: %q %q", back.Name, back.Partition)
	}
	if back.Targets != w.Targets {
		t.Errorf("targets lost: %+v", back.Targets)
	}
	if back.TotalTasks() != 6 {
		t.Errorf("tasks = %d", back.TotalTasks())
	}
	p, err := back.ParallelTasks()
	if err != nil {
		t.Fatal(err)
	}
	if p != 5 {
		t.Errorf("parallel tasks after round trip = %d", p)
	}
	tk, err := back.Task("A")
	if err != nil {
		t.Fatal(err)
	}
	if tk.Work.ExternalBytes != 1*units.TB {
		t.Errorf("work lost in round trip: %+v", tk.Work)
	}
}

func TestUnmarshalRejectsBad(t *testing.T) {
	cases := []string{
		`{"name":"X","partition":"p","tasks":[]}`,                                        // empty
		`{"name":"X","partition":"p","tasks":[{"id":"a","nodes":0}]}`,                    // bad nodes
		`{"name":"X","partition":"p","tasks":[{"id":"a","nodes":1}],"deps":[["a","b"]]}`, // dangling dep
		`not json`,
	}
	for _, c := range cases {
		var w Workflow
		if err := json.Unmarshal([]byte(c), &w); err == nil {
			t.Errorf("decode of %q should fail", c)
		}
	}
}

// Property: TotalWork equals MaxWorkPerTask scaled by task count for
// homogeneous workflows.
func TestQuickHomogeneousAggregation(t *testing.T) {
	f := func(n uint8, flops uint32, fs uint32) bool {
		count := int(n%10) + 1
		w := New("Q", "cpu")
		unit := Work{Flops: units.Flops(flops), FSBytes: units.Bytes(fs)}
		for i := 0; i < count; i++ {
			id := string(rune('a' + i))
			if err := w.AddTask(&Task{ID: id, Nodes: 1, Work: unit}); err != nil {
				return false
			}
		}
		tot := w.TotalWork()
		want := unit.Scale(float64(count))
		return math.Abs(float64(tot.Flops-want.Flops)) < 1e-6 &&
			math.Abs(float64(tot.FSBytes-want.FSBytes)) < 1e-6 &&
			w.MaxWorkPerTask() == unit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
