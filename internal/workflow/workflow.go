// Package workflow characterizes workflows for the Workflow Roofline model.
//
// A workflow is a DAG of tasks. Each task carries the per-task work vector
// the paper's methodology collects (Table I): node-level FLOPs and bytes
// (DRAM/HBM and PCIe), and system-level bytes (network/MPI, file system,
// external staging), plus its node requirement. Targets (makespan and
// throughput) attach to the workflow as a whole.
package workflow

import (
	"encoding/json"
	"fmt"
	"sort"

	"wroofline/internal/dag"
	"wroofline/internal/units"
)

// Work is the per-task work vector the roofline methodology characterizes.
// Node-scoped entries (Flops, MemBytes, PCIeBytes, NetworkBytes) are *per
// node* of the task; system-scoped entries (FSBytes, ExternalBytes) are per
// task in total, because they flow through shared system resources.
type Work struct {
	// Flops is the floating-point work per node.
	Flops units.Flops `json:"flops,omitempty"`
	// MemBytes is the DRAM/HBM traffic per node.
	MemBytes units.Bytes `json:"mem_bytes,omitempty"`
	// PCIeBytes is the host<->device traffic per node.
	PCIeBytes units.Bytes `json:"pcie_bytes,omitempty"`
	// NetworkBytes is the MPI / interconnect traffic per node.
	NetworkBytes units.Bytes `json:"network_bytes,omitempty"`
	// FSBytes is the total file-system traffic of the task.
	FSBytes units.Bytes `json:"fs_bytes,omitempty"`
	// ExternalBytes is the total externally-staged traffic of the task.
	ExternalBytes units.Bytes `json:"external_bytes,omitempty"`
}

// Add returns the component-wise sum of two work vectors.
func (w Work) Add(o Work) Work {
	return Work{
		Flops:         w.Flops + o.Flops,
		MemBytes:      w.MemBytes + o.MemBytes,
		PCIeBytes:     w.PCIeBytes + o.PCIeBytes,
		NetworkBytes:  w.NetworkBytes + o.NetworkBytes,
		FSBytes:       w.FSBytes + o.FSBytes,
		ExternalBytes: w.ExternalBytes + o.ExternalBytes,
	}
}

// Scale returns the work vector multiplied by k.
func (w Work) Scale(k float64) Work {
	return Work{
		Flops:         units.Flops(float64(w.Flops) * k),
		MemBytes:      units.Bytes(float64(w.MemBytes) * k),
		PCIeBytes:     units.Bytes(float64(w.PCIeBytes) * k),
		NetworkBytes:  units.Bytes(float64(w.NetworkBytes) * k),
		FSBytes:       units.Bytes(float64(w.FSBytes) * k),
		ExternalBytes: units.Bytes(float64(w.ExternalBytes) * k),
	}
}

// IsZero reports whether every component is zero.
func (w Work) IsZero() bool { return w == Work{} }

// Task is one job in a workflow: an MPI application, a script, or anything
// the workflow developer schedules as a unit.
type Task struct {
	// ID is the unique task identifier within the workflow.
	ID string `json:"id"`
	// Name is an optional human-readable label; defaults to ID.
	Name string `json:"name,omitempty"`
	// Nodes is the number of compute nodes the task occupies.
	Nodes int `json:"nodes"`
	// Procs is the optional process count (informational; Nodes drives the
	// parallelism wall).
	Procs int `json:"procs,omitempty"`
	// Work is the characterized work vector.
	Work Work `json:"work"`
	// MeasuredSeconds is the empirically measured wall-clock duration, when
	// known (0 when only modeled).
	MeasuredSeconds float64 `json:"measured_seconds,omitempty"`
}

// Label returns Name when set, otherwise ID.
func (t *Task) Label() string {
	if t.Name != "" {
		return t.Name
	}
	return t.ID
}

// Targets carries the workflow's performance goals: a deadline and a
// throughput floor (the dotted lines in the paper's Fig 2a).
type Targets struct {
	// MakespanSeconds is the end-to-end deadline; 0 means no deadline.
	MakespanSeconds float64 `json:"makespan_seconds,omitempty"`
	// ThroughputTPS is the required tasks-per-second; 0 means none.
	ThroughputTPS float64 `json:"throughput_tps,omitempty"`
}

// Workflow is a named DAG of characterized tasks.
type Workflow struct {
	// Name identifies the workflow, e.g. "LCLS".
	Name string
	// Partition names the machine partition the workflow runs on.
	Partition string
	// Targets holds the optional makespan/throughput goals.
	Targets Targets

	graph *dag.Graph
	tasks map[string]*Task
}

// New returns an empty workflow bound to a machine partition name.
func New(name, partition string) *Workflow {
	return &Workflow{
		Name:      name,
		Partition: partition,
		graph:     dag.New(),
		tasks:     make(map[string]*Task),
	}
}

// AddTask inserts a task vertex. It rejects duplicates, empty ids, and
// non-positive node counts.
func (w *Workflow) AddTask(t *Task) error {
	if t == nil {
		return fmt.Errorf("workflow %s: nil task", w.Name)
	}
	if t.ID == "" {
		return fmt.Errorf("workflow %s: task with empty id", w.Name)
	}
	if _, dup := w.tasks[t.ID]; dup {
		return fmt.Errorf("workflow %s: duplicate task %q", w.Name, t.ID)
	}
	if t.Nodes <= 0 {
		return fmt.Errorf("workflow %s: task %q needs a positive node count, got %d", w.Name, t.ID, t.Nodes)
	}
	if err := w.graph.AddNode(t.ID); err != nil {
		return fmt.Errorf("workflow %s: %w", w.Name, err)
	}
	w.tasks[t.ID] = t
	return nil
}

// AddDep records that task "to" depends on task "from". Both must already
// exist.
func (w *Workflow) AddDep(from, to string) error {
	if _, ok := w.tasks[from]; !ok {
		return fmt.Errorf("workflow %s: unknown task %q", w.Name, from)
	}
	if _, ok := w.tasks[to]; !ok {
		return fmt.Errorf("workflow %s: unknown task %q", w.Name, to)
	}
	if err := w.graph.AddEdge(from, to); err != nil {
		return fmt.Errorf("workflow %s: %w", w.Name, err)
	}
	return nil
}

// Graph exposes the underlying task DAG (read-only by convention).
func (w *Workflow) Graph() *dag.Graph { return w.graph }

// Task returns the task by id.
func (w *Workflow) Task(id string) (*Task, error) {
	t, ok := w.tasks[id]
	if !ok {
		return nil, fmt.Errorf("workflow %s: unknown task %q", w.Name, id)
	}
	return t, nil
}

// Tasks returns all tasks ordered by id for determinism.
func (w *Workflow) Tasks() []*Task {
	out := make([]*Task, 0, len(w.tasks))
	for _, t := range w.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TotalTasks returns the task count (the numerator of achieved throughput).
func (w *Workflow) TotalTasks() int { return len(w.tasks) }

// ParallelTasks returns the widest DAG level — the paper's "number of
// parallel tasks" x-coordinate.
func (w *Workflow) ParallelTasks() (int, error) {
	width, err := w.graph.Width()
	if err != nil {
		return 0, fmt.Errorf("workflow %s: %w", w.Name, err)
	}
	return width, nil
}

// MaxTaskNodes returns the largest per-task node requirement, which drives
// the system parallelism wall.
func (w *Workflow) MaxTaskNodes() int {
	n := 0
	for _, t := range w.tasks {
		if t.Nodes > n {
			n = t.Nodes
		}
	}
	return n
}

// MaxWorkPerTask returns the component-wise maximum work vector across
// tasks. The roofline ceilings for the whole workflow use the heaviest task
// per component, since that task bounds the steady-state task rate.
func (w *Workflow) MaxWorkPerTask() Work {
	var m Work
	for _, t := range w.tasks {
		if t.Work.Flops > m.Flops {
			m.Flops = t.Work.Flops
		}
		if t.Work.MemBytes > m.MemBytes {
			m.MemBytes = t.Work.MemBytes
		}
		if t.Work.PCIeBytes > m.PCIeBytes {
			m.PCIeBytes = t.Work.PCIeBytes
		}
		if t.Work.NetworkBytes > m.NetworkBytes {
			m.NetworkBytes = t.Work.NetworkBytes
		}
		if t.Work.FSBytes > m.FSBytes {
			m.FSBytes = t.Work.FSBytes
		}
		if t.Work.ExternalBytes > m.ExternalBytes {
			m.ExternalBytes = t.Work.ExternalBytes
		}
	}
	return m
}

// TotalWork returns the component-wise sum of all task work vectors.
func (w *Workflow) TotalWork() Work {
	var s Work
	for _, t := range w.tasks {
		s = s.Add(t.Work)
	}
	return s
}

// CriticalPathMeasured returns the critical path and its cost using each
// task's MeasuredSeconds as the weight.
func (w *Workflow) CriticalPathMeasured() ([]string, float64, error) {
	weights := make(map[string]float64, len(w.tasks))
	for id, t := range w.tasks {
		weights[id] = t.MeasuredSeconds
	}
	path, total, err := w.graph.CriticalPath(weights)
	if err != nil {
		return nil, 0, fmt.Errorf("workflow %s: %w", w.Name, err)
	}
	return path, total, nil
}

// Validate checks the workflow is non-empty and acyclic.
func (w *Workflow) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workflow: missing name")
	}
	if len(w.tasks) == 0 {
		return fmt.Errorf("workflow %s: no tasks", w.Name)
	}
	if err := w.graph.Validate(); err != nil {
		return fmt.Errorf("workflow %s: %w", w.Name, err)
	}
	return nil
}

// jsonWorkflow is the serialized form: tasks plus explicit dependency edges.
type jsonWorkflow struct {
	Name      string      `json:"name"`
	Partition string      `json:"partition"`
	Targets   Targets     `json:"targets,omitempty"`
	Tasks     []*Task     `json:"tasks"`
	Deps      [][2]string `json:"deps,omitempty"`
}

// MarshalJSON serializes the workflow with a stable task and edge order.
func (w *Workflow) MarshalJSON() ([]byte, error) {
	jw := jsonWorkflow{
		Name:      w.Name,
		Partition: w.Partition,
		Targets:   w.Targets,
		Tasks:     w.Tasks(),
	}
	for _, from := range w.graph.Nodes() {
		for _, to := range w.graph.Succs(from) {
			jw.Deps = append(jw.Deps, [2]string{from, to})
		}
	}
	sort.Slice(jw.Deps, func(i, j int) bool {
		if jw.Deps[i][0] != jw.Deps[j][0] {
			return jw.Deps[i][0] < jw.Deps[j][0]
		}
		return jw.Deps[i][1] < jw.Deps[j][1]
	})
	return json.Marshal(jw)
}

// UnmarshalJSON rebuilds and validates a workflow.
func (w *Workflow) UnmarshalJSON(data []byte) error {
	var jw jsonWorkflow
	if err := json.Unmarshal(data, &jw); err != nil {
		return fmt.Errorf("workflow: decode: %w", err)
	}
	nw := New(jw.Name, jw.Partition)
	nw.Targets = jw.Targets
	for _, t := range jw.Tasks {
		if err := nw.AddTask(t); err != nil {
			return err
		}
	}
	for _, d := range jw.Deps {
		if err := nw.AddDep(d[0], d[1]); err != nil {
			return err
		}
	}
	if err := nw.Validate(); err != nil {
		return err
	}
	*w = *nw
	return nil
}
