package archetype

import (
	"testing"
	"testing/quick"

	"wroofline/internal/machine"
	"wroofline/internal/sim"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

func params(width, depth int) Params {
	return Params{
		Name: "gen", Partition: machine.PartCPU,
		Width: width, Depth: depth, NodesPerTask: 1,
		Work: workflow.Work{Flops: 5 * units.TFLOP}, // 1 s at the PM-CPU peak
	}
}

func TestBagOfTasks(t *testing.T) {
	w, err := BagOfTasks(params(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalTasks() != 8 {
		t.Errorf("tasks = %d", w.TotalTasks())
	}
	p, err := w.ParallelTasks()
	if err != nil {
		t.Fatal(err)
	}
	if p != 8 {
		t.Errorf("width = %d, want 8", p)
	}
	cpl, _ := w.Graph().CriticalPathLength()
	if cpl != 1 {
		t.Errorf("critical path length = %d, want 1", cpl)
	}
}

func TestPipeline(t *testing.T) {
	w, err := Pipeline(params(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalTasks() != 5 {
		t.Errorf("tasks = %d", w.TotalTasks())
	}
	p, _ := w.ParallelTasks()
	if p != 1 {
		t.Errorf("width = %d, want 1", p)
	}
	cpl, _ := w.Graph().CriticalPathLength()
	if cpl != 5 {
		t.Errorf("critical path length = %d, want 5", cpl)
	}
}

func TestForkJoin(t *testing.T) {
	w, err := ForkJoin(params(6, 0))
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalTasks() != 8 {
		t.Errorf("tasks = %d, want 8 (fork + 6 + join)", w.TotalTasks())
	}
	p, _ := w.ParallelTasks()
	if p != 6 {
		t.Errorf("width = %d, want 6", p)
	}
	cpl, _ := w.Graph().CriticalPathLength()
	if cpl != 3 {
		t.Errorf("critical path length = %d, want 3", cpl)
	}
}

func TestMapReduce(t *testing.T) {
	w, err := MapReduce(params(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalTasks() != 3*(4+1) {
		t.Errorf("tasks = %d, want 15", w.TotalTasks())
	}
	p, _ := w.ParallelTasks()
	if p != 4 {
		t.Errorf("width = %d, want 4", p)
	}
	// Three rounds: map, reduce, map, reduce, map, reduce -> CP length 6.
	cpl, _ := w.Graph().CriticalPathLength()
	if cpl != 6 {
		t.Errorf("critical path length = %d, want 6", cpl)
	}
}

func TestScatterGather(t *testing.T) {
	w, err := ScatterGather(params(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Scatter: 1+2+4+8 = 15; gather: 4+2+1 = 7.
	if w.TotalTasks() != 22 {
		t.Errorf("tasks = %d, want 22", w.TotalTasks())
	}
	p, _ := w.ParallelTasks()
	if p != 8 {
		t.Errorf("width = %d, want 8 leaves", p)
	}
	// Depth levels down plus depth levels up: CP length 2*3+1 = 7.
	cpl, _ := w.Graph().CriticalPathLength()
	if cpl != 7 {
		t.Errorf("critical path length = %d, want 7", cpl)
	}
	if _, err := ScatterGather(params(0, 11)); err == nil {
		t.Error("excessive depth should fail")
	}
}

func TestValidation(t *testing.T) {
	bad := Params{Name: "", Partition: "p", Width: 1}
	if _, err := BagOfTasks(bad); err == nil {
		t.Error("missing name should fail")
	}
	if _, err := BagOfTasks(Params{Name: "x", Partition: "p", Width: 0}); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := Pipeline(Params{Name: "x", Partition: "p", Depth: 0}); err == nil {
		t.Error("zero depth should fail")
	}
	if _, err := MapReduce(Params{Name: "x", Partition: "p", Width: 2, Depth: 0}); err == nil {
		t.Error("zero depth map-reduce should fail")
	}
	// NodesPerTask defaults to 1.
	w, err := BagOfTasks(Params{Name: "x", Partition: "p", Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxTaskNodes() != 1 {
		t.Errorf("default nodes = %d", w.MaxTaskNodes())
	}
}

// Every catalog shape validates, simulates, and has the simulated makespan
// consistent with its structure (pipeline = depth seconds, bag = 1 second
// at full parallelism).
func TestCatalogSimulates(t *testing.T) {
	pm := machine.Perlmutter()
	for _, shape := range Catalog() {
		w, err := shape.Generate(params(4, 3))
		if err != nil {
			t.Fatalf("%s: %v", shape.Name, err)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", shape.Name, err)
			continue
		}
		res, err := sim.Run(w, nil, sim.Config{Machine: pm})
		if err != nil {
			t.Errorf("%s: %v", shape.Name, err)
			continue
		}
		cpl, err := w.Graph().CriticalPathLength()
		if err != nil {
			t.Fatal(err)
		}
		// Each task is 1 s of compute; with enough nodes the makespan is
		// exactly the critical-path length.
		if want := float64(cpl); res.Makespan < want-1e-9 || res.Makespan > want+1e-9 {
			t.Errorf("%s: makespan %v, want %v (critical path)", shape.Name, res.Makespan, want)
		}
	}
}

// Property: generated workflows are always acyclic with the promised width,
// for any parameters in range.
func TestQuickShapesWellFormed(t *testing.T) {
	f := func(wRaw, dRaw uint8, shapeIdx uint8) bool {
		width := int(wRaw%6) + 1
		depth := int(dRaw%4) + 1
		shapes := Catalog()
		shape := shapes[int(shapeIdx)%len(shapes)]
		w, err := shape.Generate(Params{
			Name: "q", Partition: "p", Width: width, Depth: depth,
			Work: workflow.Work{Flops: 1},
		})
		if err != nil {
			return false
		}
		if err := w.Validate(); err != nil {
			return false
		}
		p, err := w.ParallelTasks()
		if err != nil {
			return false
		}
		switch shape.Name {
		case "bag-of-tasks", "fork-join", "map-reduce":
			return p == width
		case "pipeline":
			return p == 1
		case "scatter-gather":
			return p == 1<<uint(depth)
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Sanity across a size sweep: the fork-join model bound at the wall grows
// linearly with width until the node pool clips it.
func TestForkJoinWidthSweep(t *testing.T) {
	for _, width := range []int{1, 2, 4, 8, 16} {
		w, err := ForkJoin(params(width, 0))
		if err != nil {
			t.Fatal(err)
		}
		p, err := w.ParallelTasks()
		if err != nil {
			t.Fatal(err)
		}
		if p != width {
			t.Fatalf("width %d: parallel tasks = %d", width, p)
		}
	}
	// And names are unique even at scale.
	w, err := MapReduce(params(50, 4))
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalTasks() != 4*51 {
		t.Errorf("tasks = %d", w.TotalTasks())
	}
}
