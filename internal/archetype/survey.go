package archetype

import (
	"context"
	"fmt"

	"wroofline/internal/core"
	"wroofline/internal/machine"
	"wroofline/internal/sweep"
)

// SurveyPoint is one evaluated (shape, width, depth) combination: the
// generated workflow's size and its Workflow Roofline bound at the wall.
type SurveyPoint struct {
	// Shape names the archetype; Width and Depth are the generator inputs.
	Shape        string
	Width, Depth int
	// Tasks is the generated task count; Wall the model's parallelism wall.
	Tasks int
	Wall  int
	// BoundTPS is the attainable throughput at the wall, Limiting the
	// binding ceiling's name.
	BoundTPS float64
	Limiting string
}

// Survey evaluates every archetype in shapes at every (width, depth)
// combination on the sweep worker pool: generate the workflow, build its
// Workflow Roofline on m, and record the bound at the wall. base supplies
// the per-task sizing (its Width/Depth are overridden per cell). Points come
// back in (shape, width, depth) row-major order, bit-identical at any worker
// count; cancelling ctx aborts the remaining cells.
func Survey(ctx context.Context, m *machine.Machine, base Params, shapes []Shape, widths, depths []int, workers int) ([]SurveyPoint, error) {
	if m == nil {
		return nil, fmt.Errorf("archetype: survey needs a machine")
	}
	if len(shapes) == 0 || len(widths) == 0 || len(depths) == 0 {
		return nil, fmt.Errorf("archetype: survey needs at least one shape, width, and depth")
	}
	dims := []int{len(shapes), len(widths), len(depths)}
	size, err := sweep.GridSize(dims)
	if err != nil {
		return nil, err
	}
	return sweep.Map(ctx, size, workers, func(_ context.Context, i int) (SurveyPoint, error) {
		coords, err := sweep.GridCoords(dims, i)
		if err != nil {
			return SurveyPoint{}, err
		}
		shape := shapes[coords[0]]
		p := base
		p.Width, p.Depth = widths[coords[1]], depths[coords[2]]
		if p.Name == "" {
			p.Name = shape.Name
		}
		w, err := shape.Generate(p)
		if err != nil {
			return SurveyPoint{}, fmt.Errorf("archetype: %s w=%d d=%d: %w", shape.Name, p.Width, p.Depth, err)
		}
		model, err := core.Build(m, w, core.BuildOptions{})
		if err != nil {
			return SurveyPoint{}, fmt.Errorf("archetype: %s w=%d d=%d: %w", shape.Name, p.Width, p.Depth, err)
		}
		bound, limit := model.BoundAtWall()
		return SurveyPoint{
			Shape:    shape.Name,
			Width:    p.Width,
			Depth:    p.Depth,
			Tasks:    w.TotalTasks(),
			Wall:     model.Wall,
			BoundTPS: bound,
			Limiting: limit.Name,
		}, nil
	})
}
