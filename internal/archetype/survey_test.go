package archetype

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"wroofline/internal/machine"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

func surveyParams() Params {
	return Params{
		Partition:    machine.PartCPU,
		NodesPerTask: 2,
		Work:         workflow.Work{Flops: 5 * units.TFLOP, FSBytes: 100 * units.GB},
	}
}

func TestSurveyCoversTheGrid(t *testing.T) {
	pm := machine.Perlmutter()
	points, err := Survey(context.Background(), pm, surveyParams(),
		Catalog(), []int{4, 8}, []int{2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Catalog())*2*2 {
		t.Fatalf("points = %d", len(points))
	}
	// Row-major order: shape varies slowest, depth fastest.
	if points[0].Shape != "bag-of-tasks" || points[0].Width != 4 || points[0].Depth != 2 {
		t.Errorf("first point = %+v", points[0])
	}
	if points[1].Depth != 3 {
		t.Errorf("second point = %+v", points[1])
	}
	for _, pt := range points {
		if pt.Tasks <= 0 || pt.Wall <= 0 || pt.BoundTPS <= 0 || pt.Limiting == "" {
			t.Errorf("degenerate point %+v", pt)
		}
	}
	// A bag of 8 has more tasks than a bag of 4.
	if points[2].Tasks <= points[0].Tasks {
		t.Errorf("width 8 bag (%d tasks) not larger than width 4 (%d)",
			points[2].Tasks, points[0].Tasks)
	}
}

func TestSurveyWorkerCountInvariance(t *testing.T) {
	pm := machine.Perlmutter()
	base, err := Survey(context.Background(), pm, surveyParams(),
		Catalog(), []int{2, 4, 8}, []int{2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got, err := Survey(context.Background(), pm, surveyParams(),
			Catalog(), []int{2, 4, 8}, []int{2, 4}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: survey differs", workers)
		}
	}
}

func TestSurveyErrors(t *testing.T) {
	pm := machine.Perlmutter()
	if _, err := Survey(context.Background(), nil, surveyParams(), Catalog(), []int{2}, []int{2}, 1); err == nil {
		t.Error("nil machine should fail")
	}
	if _, err := Survey(context.Background(), pm, surveyParams(), nil, []int{2}, []int{2}, 1); err == nil {
		t.Error("no shapes should fail")
	}
	if _, err := Survey(context.Background(), pm, surveyParams(), Catalog(), nil, []int{2}, 1); err == nil {
		t.Error("no widths should fail")
	}
	// A width the machine cannot host surfaces the generator/build error
	// with the shape named.
	huge := surveyParams()
	huge.NodesPerTask = 1 << 30
	if _, err := Survey(context.Background(), pm, huge, Catalog(), []int{2}, []int{2}, 1); err == nil {
		t.Error("oversized tasks should fail")
	}
}
