// Package archetype generates synthetic workflows of the common structural
// shapes catalogued by the NERSC-10 workflow archetypes white paper the
// paper cites: bags of independent tasks, linear pipelines, fork-join
// ensembles, map-reduce stages, and scatter-gather trees. The generators
// produce fully characterized workflow.Workflow values, parameterized by
// width, depth, and per-task work, so the model, simulator, and scheduler
// can be exercised on shapes beyond the four case studies.
package archetype

import (
	"fmt"

	"wroofline/internal/workflow"
)

// Params sizes a generated workflow.
type Params struct {
	// Name and Partition label the workflow (both required).
	Name, Partition string
	// Width is the parallel breadth (tasks per level); Depth the number of
	// serial stages. Generators interpret them per shape.
	Width, Depth int
	// NodesPerTask sizes every generated task.
	NodesPerTask int
	// Work is the per-task work vector applied to every task.
	Work workflow.Work
}

// validate applies defaults and checks the parameters.
func (p *Params) validate(needDepth bool) error {
	if p.Name == "" || p.Partition == "" {
		return fmt.Errorf("archetype: name and partition are required")
	}
	if p.Width <= 0 {
		return fmt.Errorf("archetype: width must be positive, got %d", p.Width)
	}
	if needDepth && p.Depth <= 0 {
		return fmt.Errorf("archetype: depth must be positive, got %d", p.Depth)
	}
	if p.NodesPerTask <= 0 {
		p.NodesPerTask = 1
	}
	return nil
}

// task creates one characterized task.
func task(p Params, id string) *workflow.Task {
	return &workflow.Task{ID: id, Nodes: p.NodesPerTask, Work: p.Work}
}

// BagOfTasks generates Width independent tasks — the throughput-oriented
// archetype (CosmoFlow's instance sweep has this shape).
func BagOfTasks(p Params) (*workflow.Workflow, error) {
	if err := p.validate(false); err != nil {
		return nil, err
	}
	w := workflow.New(p.Name, p.Partition)
	for i := 0; i < p.Width; i++ {
		if err := w.AddTask(task(p, fmt.Sprintf("task%03d", i))); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Pipeline generates a Depth-stage chain — the time-sensitive streaming
// archetype (BGW's Epsilon -> Sigma is a two-stage pipeline).
func Pipeline(p Params) (*workflow.Workflow, error) {
	p.Width = 1
	if err := p.validate(true); err != nil {
		return nil, err
	}
	w := workflow.New(p.Name, p.Partition)
	prev := ""
	for i := 0; i < p.Depth; i++ {
		id := fmt.Sprintf("stage%03d", i)
		if err := w.AddTask(task(p, id)); err != nil {
			return nil, err
		}
		if prev != "" {
			if err := w.AddDep(prev, id); err != nil {
				return nil, err
			}
		}
		prev = id
	}
	return w, nil
}

// ForkJoin generates a source, Width parallel workers, and a sink — the
// analysis archetype (LCLS is a fork-join without the explicit source).
func ForkJoin(p Params) (*workflow.Workflow, error) {
	if err := p.validate(false); err != nil {
		return nil, err
	}
	w := workflow.New(p.Name, p.Partition)
	if err := w.AddTask(task(p, "fork")); err != nil {
		return nil, err
	}
	if err := w.AddTask(task(p, "join")); err != nil {
		return nil, err
	}
	for i := 0; i < p.Width; i++ {
		id := fmt.Sprintf("worker%03d", i)
		if err := w.AddTask(task(p, id)); err != nil {
			return nil, err
		}
		if err := w.AddDep("fork", id); err != nil {
			return nil, err
		}
		if err := w.AddDep(id, "join"); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// MapReduce generates Depth rounds of Width mappers feeding one reducer
// per round, each round's reducer gating the next round's mappers — the
// iterative-chain archetype.
func MapReduce(p Params) (*workflow.Workflow, error) {
	if err := p.validate(true); err != nil {
		return nil, err
	}
	w := workflow.New(p.Name, p.Partition)
	prevReduce := ""
	for r := 0; r < p.Depth; r++ {
		reduceID := fmt.Sprintf("reduce%02d", r)
		if err := w.AddTask(task(p, reduceID)); err != nil {
			return nil, err
		}
		for i := 0; i < p.Width; i++ {
			mapID := fmt.Sprintf("map%02d_%03d", r, i)
			if err := w.AddTask(task(p, mapID)); err != nil {
				return nil, err
			}
			if prevReduce != "" {
				if err := w.AddDep(prevReduce, mapID); err != nil {
					return nil, err
				}
			}
			if err := w.AddDep(mapID, reduceID); err != nil {
				return nil, err
			}
		}
		prevReduce = reduceID
	}
	return w, nil
}

// ScatterGather generates a binary scatter tree of the given Depth feeding
// leaf workers, then the mirror-image gather tree — the hierarchical
// reduction archetype. Width is derived as 2^Depth leaves.
func ScatterGather(p Params) (*workflow.Workflow, error) {
	p.Width = 1 << uint(p.Depth)
	if err := p.validate(true); err != nil {
		return nil, err
	}
	if p.Depth > 10 {
		return nil, fmt.Errorf("archetype: scatter-gather depth %d would create %d leaves", p.Depth, p.Width)
	}
	w := workflow.New(p.Name, p.Partition)
	// Scatter tree: s<level>_<index>.
	for lvl := 0; lvl <= p.Depth; lvl++ {
		for i := 0; i < 1<<uint(lvl); i++ {
			id := fmt.Sprintf("s%d_%d", lvl, i)
			if err := w.AddTask(task(p, id)); err != nil {
				return nil, err
			}
			if lvl > 0 {
				parent := fmt.Sprintf("s%d_%d", lvl-1, i/2)
				if err := w.AddDep(parent, id); err != nil {
					return nil, err
				}
			}
		}
	}
	// Gather tree: g<level>_<index>, leaves shared with the scatter tree's
	// last level.
	for lvl := p.Depth - 1; lvl >= 0; lvl-- {
		for i := 0; i < 1<<uint(lvl); i++ {
			id := fmt.Sprintf("g%d_%d", lvl, i)
			if err := w.AddTask(task(p, id)); err != nil {
				return nil, err
			}
			for c := 0; c < 2; c++ {
				var child string
				if lvl == p.Depth-1 {
					child = fmt.Sprintf("s%d_%d", p.Depth, i*2+c)
				} else {
					child = fmt.Sprintf("g%d_%d", lvl+1, i*2+c)
				}
				if err := w.AddDep(child, id); err != nil {
					return nil, err
				}
			}
		}
	}
	return w, nil
}

// Shape names a generator for the catalog.
type Shape struct {
	// Name identifies the archetype; Generate builds it.
	Name     string
	Generate func(Params) (*workflow.Workflow, error)
}

// Catalog returns all archetype generators.
func Catalog() []Shape {
	return []Shape{
		{Name: "bag-of-tasks", Generate: BagOfTasks},
		{Name: "pipeline", Generate: Pipeline},
		{Name: "fork-join", Generate: ForkJoin},
		{Name: "map-reduce", Generate: MapReduce},
		{Name: "scatter-gather", Generate: ScatterGather},
	}
}
