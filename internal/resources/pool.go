package resources

import (
	"fmt"

	"wroofline/internal/engine"
)

// request is a queued node acquisition.
type request struct {
	n       int
	granted func()
}

// Pool is a counting resource of compute nodes with FIFO granting. It
// models a partition (or job queue allocation): tasks acquire their node
// count, run, and release. The system parallelism wall emerges naturally:
// at most floor(total/nodesPerTask) equal-size tasks hold nodes at once.
type Pool struct {
	// Name labels the pool.
	Name string

	eng   *engine.Engine
	total int
	free  int
	queue []request
	// peakInUse tracks the high-water mark of allocated nodes.
	peakInUse int
	// down counts nodes out of service (failure models); downPending counts
	// nodes marked for removal that are still held by running tasks — they
	// go down as releases come in.
	down        int
	downPending int
}

// NewPool creates a pool of total nodes.
func NewPool(eng *engine.Engine, name string, total int) (*Pool, error) {
	if eng == nil {
		return nil, fmt.Errorf("resources: pool %q needs an engine", name)
	}
	if total <= 0 {
		return nil, fmt.Errorf("resources: pool %q needs positive capacity, got %d", name, total)
	}
	return &Pool{Name: name, eng: eng, total: total, free: total}, nil
}

// Reset restores the pool to an idle state with a (possibly new) capacity,
// for reuse across pooled simulation trials. Queue capacity is retained.
func (p *Pool) Reset(total int) error {
	if total <= 0 {
		return fmt.Errorf("resources: pool %q needs positive capacity, got %d", p.Name, total)
	}
	p.total = total
	p.free = total
	p.queue = p.queue[:0]
	p.peakInUse = 0
	p.down = 0
	p.downPending = 0
	return nil
}

// Total returns the pool size.
func (p *Pool) Total() int { return p.total }

// Free returns the currently idle node count.
func (p *Pool) Free() int { return p.free }

// InUse returns the currently allocated node count (nodes pending removal
// are still held by tasks, so they count as in use until released).
func (p *Pool) InUse() int { return p.total - p.free - p.down }

// Down returns the number of nodes currently out of service.
func (p *Pool) Down() int { return p.down + p.downPending }

// PeakInUse returns the allocation high-water mark.
func (p *Pool) PeakInUse() int { return p.peakInUse }

// QueueLength returns the number of waiting requests.
func (p *Pool) QueueLength() int { return len(p.queue) }

// Acquire requests n nodes; granted runs (synchronously, at the current
// virtual time) once they are allocated. Grants are strictly FIFO: a large
// request at the head blocks smaller ones behind it (no backfill — see
// internal/sched for backfill policies).
func (p *Pool) Acquire(n int, granted func()) error {
	if n <= 0 {
		return fmt.Errorf("resources: pool %q: acquire %d nodes", p.Name, n)
	}
	if n > p.total {
		return fmt.Errorf("resources: pool %q: request for %d nodes exceeds capacity %d", p.Name, n, p.total)
	}
	if granted == nil {
		return fmt.Errorf("resources: pool %q: nil grant callback", p.Name)
	}
	p.queue = append(p.queue, request{n: n, granted: granted})
	p.dispatch()
	return nil
}

// Release returns n nodes to the pool and dispatches waiters. Nodes pending
// removal (Offline during use) go out of service instead of back to free.
func (p *Pool) Release(n int) error {
	if n <= 0 {
		return fmt.Errorf("resources: pool %q: release %d nodes", p.Name, n)
	}
	if p.free+p.down+n > p.total {
		return fmt.Errorf("resources: pool %q: release %d would exceed capacity (%d free of %d)",
			p.Name, n, p.free, p.total)
	}
	p.free += n
	if p.downPending > 0 {
		take := min(p.downPending, p.free)
		p.free -= take
		p.down += take
		p.downPending -= take
	}
	p.dispatch()
	return nil
}

// Offline takes n nodes out of service, modelling node failures. Idle nodes
// leave immediately; nodes held by running tasks are marked and leave as
// they are released (the failure model's task-kill probability covers work
// lost on a dying node — the pool itself only drains capacity).
func (p *Pool) Offline(n int) error {
	if n <= 0 {
		return fmt.Errorf("resources: pool %q: offline %d nodes", p.Name, n)
	}
	if p.down+p.downPending+n > p.total {
		return fmt.Errorf("resources: pool %q: offline %d would exceed capacity (%d already down of %d)",
			p.Name, n, p.down+p.downPending, p.total)
	}
	take := min(n, p.free)
	p.free -= take
	p.down += take
	p.downPending += n - take
	return nil
}

// Online returns n previously offlined nodes to service (repair completion)
// and dispatches waiters. Pending removals are cancelled first.
func (p *Pool) Online(n int) error {
	if n <= 0 {
		return fmt.Errorf("resources: pool %q: online %d nodes", p.Name, n)
	}
	if n > p.down+p.downPending {
		return fmt.Errorf("resources: pool %q: online %d but only %d are down",
			p.Name, n, p.down+p.downPending)
	}
	cancel := min(n, p.downPending)
	p.downPending -= cancel
	p.down -= n - cancel
	p.free += n - cancel
	p.dispatch()
	return nil
}

// dispatch grants requests from the queue head while they fit.
func (p *Pool) dispatch() {
	for len(p.queue) > 0 && p.queue[0].n <= p.free {
		req := p.queue[0]
		p.queue = p.queue[1:]
		p.free -= req.n
		if inUse := p.total - p.free - p.down; inUse > p.peakInUse {
			p.peakInUse = inUse
		}
		req.granted()
	}
}
