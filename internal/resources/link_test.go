package resources

import (
	"math"
	"testing"
	"testing/quick"

	"wroofline/internal/engine"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSingleTransfer(t *testing.T) {
	e := engine.New()
	l, err := NewLink(e, "fs", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	var start, end float64 = -1, -1
	if err := l.Transfer(1000, func(s, en float64) { start, end = s, en }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if start != 0 || !almost(end, 10, 1e-9) {
		t.Errorf("transfer window [%v, %v], want [0, 10]", start, end)
	}
	if !l.Drain() {
		t.Error("link should be drained")
	}
}

func TestZeroByteTransferCompletesImmediately(t *testing.T) {
	e := engine.New()
	l, err := NewLink(e, "fs", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	called := false
	if err := l.Transfer(0, func(s, en float64) {
		called = true
		if s != en {
			t.Errorf("zero transfer window [%v, %v]", s, en)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("zero-byte transfer should complete synchronously")
	}
}

func TestFairShareTwoFlows(t *testing.T) {
	// Two equal flows on a 100 B/s link: each runs at 50 B/s, both finish
	// at t=20 for 1000 B each.
	e := engine.New()
	l, err := NewLink(e, "fs", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ends []float64
	for i := 0; i < 2; i++ {
		if err := l.Transfer(1000, func(_, en float64) { ends = append(ends, en) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ends) != 2 {
		t.Fatalf("completions = %d", len(ends))
	}
	for _, en := range ends {
		if !almost(en, 20, 1e-9) {
			t.Errorf("end = %v, want 20", en)
		}
	}
}

func TestFairShareRateRecomputedOnExit(t *testing.T) {
	// Flow A: 1000 B, flow B: 500 B on a 100 B/s link. Both run at 50 B/s.
	// B finishes at t=10; A then gets the full 100 B/s for its remaining
	// 500 B, finishing at t=15.
	e := engine.New()
	l, err := NewLink(e, "fs", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	var endA, endB float64
	if err := l.Transfer(1000, func(_, en float64) { endA = en }); err != nil {
		t.Fatal(err)
	}
	if err := l.Transfer(500, func(_, en float64) { endB = en }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(endB, 10, 1e-9) {
		t.Errorf("endB = %v, want 10", endB)
	}
	if !almost(endA, 15, 1e-9) {
		t.Errorf("endA = %v, want 15 (rate recomputation)", endA)
	}
}

func TestFairShareLateJoiner(t *testing.T) {
	// A starts alone (100 B/s). At t=5, B (250 B) joins; both drop to 50.
	// A has 500 B left at t=5 -> A and B both finish at t=10; A total 1000 B.
	e := engine.New()
	l, err := NewLink(e, "fs", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	var endA, endB float64
	if err := l.Transfer(1000, func(_, en float64) { endA = en }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Schedule(5, func() {
		if err := l.Transfer(250, func(_, en float64) { endB = en }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(endB, 10, 1e-9) {
		t.Errorf("endB = %v, want 10", endB)
	}
	if !almost(endA, 12.5, 1e-9) {
		// A: 5s at 100 (500 B), then shares 50 B/s until B exits at t=10
		// (250 B more), then 100 B/s for the last 250 B -> 12.5.
		t.Errorf("endA = %v, want 12.5", endA)
	}
}

func TestPerFlowCap(t *testing.T) {
	// LCLS good day: external link capacity 5 GB/s with a per-flow cap of
	// 1 GB/s. One flow of 10 GB takes 10 s despite spare capacity.
	e := engine.New()
	l, err := NewLink(e, "external", 5e9, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	var end float64
	if err := l.Transfer(10e9, func(_, en float64) { end = en }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(end, 10, 1e-9) {
		t.Errorf("capped flow end = %v, want 10", end)
	}
}

func TestPerFlowCapManyFlows(t *testing.T) {
	// 5 flows of 1 TB each, cap 1 GB/s, capacity 5 GB/s: all finish at 1000 s
	// (the LCLS good-day loading phase).
	e := engine.New()
	l, err := NewLink(e, "external", 5e9, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	var ends []float64
	for i := 0; i < 5; i++ {
		if err := l.Transfer(1e12, func(_, en float64) { ends = append(ends, en) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, en := range ends {
		if !almost(en, 1000, 1e-9) {
			t.Errorf("end = %v, want 1000", en)
		}
	}
	// 6th flow would contend: capacity/6 < cap -> 5e9/6 each.
}

func TestContentionBelowCap(t *testing.T) {
	// 10 flows on 5 B/s with cap 1 B/s: equal share 0.5 each.
	e := engine.New()
	l, err := NewLink(e, "x", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ends []float64
	for i := 0; i < 10; i++ {
		if err := l.Transfer(5, func(_, en float64) { ends = append(ends, en) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, en := range ends {
		if !almost(en, 10, 1e-9) {
			t.Errorf("end = %v, want 10 (0.5 B/s each)", en)
		}
	}
}

func TestSetCapacityMidTransfer(t *testing.T) {
	// 1000 B at 100 B/s; at t=5 capacity drops 5x to 20 B/s (the paper's
	// LCLS contention story). 500 B remain -> 25 s more -> end at 30.
	e := engine.New()
	l, err := NewLink(e, "external", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	var end float64
	if err := l.Transfer(1000, func(_, en float64) { end = en }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Schedule(5, func() {
		if err := l.SetCapacity(20); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(end, 30, 1e-9) {
		t.Errorf("end = %v, want 30", end)
	}
}

func TestLinkValidation(t *testing.T) {
	e := engine.New()
	if _, err := NewLink(nil, "x", 1, 0); err == nil {
		t.Error("nil engine should fail")
	}
	for _, capy := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewLink(e, "x", capy, 0); err == nil {
			t.Errorf("capacity %v should fail", capy)
		}
	}
	if _, err := NewLink(e, "x", 1, -1); err == nil {
		t.Error("negative per-flow cap should fail")
	}
	l, err := NewLink(e, "x", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := l.Transfer(b, nil); err == nil {
			t.Errorf("transfer of %v should fail", b)
		}
	}
	for _, capy := range []float64{0, -2, math.NaN()} {
		if err := l.SetCapacity(capy); err == nil {
			t.Errorf("SetCapacity(%v) should fail", capy)
		}
	}
}

func TestActiveFlows(t *testing.T) {
	e := engine.New()
	l, err := NewLink(e, "x", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Transfer(100, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Transfer(100, nil); err != nil {
		t.Fatal(err)
	}
	if l.ActiveFlows() != 2 {
		t.Errorf("active = %d, want 2", l.ActiveFlows())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if l.ActiveFlows() != 0 {
		t.Errorf("active after drain = %d", l.ActiveFlows())
	}
}

// Property: conservation — with n concurrent equal flows, total transfer
// time equals volume/min(cap, C/n) regardless of n, and all flows finish
// together.
func TestQuickFairShareConservation(t *testing.T) {
	f := func(nRaw uint8, volRaw uint16, capRaw uint16) bool {
		n := int(nRaw%8) + 1
		vol := float64(volRaw%1000) + 1
		capacity := float64(capRaw%1000) + 1
		e := engine.New()
		l, err := NewLink(e, "q", capacity, 0)
		if err != nil {
			return false
		}
		var ends []float64
		for i := 0; i < n; i++ {
			if err := l.Transfer(vol, func(_, en float64) { ends = append(ends, en) }); err != nil {
				return false
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(ends) != n {
			return false
		}
		want := vol / (capacity / float64(n))
		for _, en := range ends {
			if !almost(en, want, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: work conservation — total bytes moved over the busy period
// never exceeds capacity * elapsed (within epsilon), for staggered flows.
func TestQuickWorkConservation(t *testing.T) {
	f := func(seed int64) bool {
		e := engine.New()
		capacity := 100.0
		l, err := NewLink(e, "q", capacity, 0)
		if err != nil {
			return false
		}
		rng := uint64(seed)
		next := func() float64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return float64((rng>>33)%1000) + 1
		}
		totalBytes := 0.0
		var lastEnd float64
		for i := 0; i < 5; i++ {
			vol := next()
			startAt := next() / 100
			totalBytes += vol
			if _, err := e.Schedule(startAt, func() {
				if err := l.Transfer(vol, func(_, en float64) {
					if en > lastEnd {
						lastEnd = en
					}
				}); err != nil {
					panic(err)
				}
			}); err != nil {
				return false
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		// The busy period cannot be shorter than totalBytes/capacity.
		return lastEnd >= totalBytes/capacity-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
