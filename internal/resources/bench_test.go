package resources

import (
	"fmt"
	"testing"

	"wroofline/internal/engine"
)

// BenchmarkLink_SteadyState is the allocs/op regression gate for the link
// hot path: one long-lived link with a standing population of flows, where
// every iteration admits one transfer and drains until one completes. In
// steady state the event core must not allocate — flows, events, and the
// settle scratch all come from free lists (see ISSUE 4).
func BenchmarkLink_SteadyState(b *testing.B) {
	e := engine.New()
	l, err := NewLink(e, "bench", 100, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Standing population: 64 staggered flows.
	for i := 0; i < 64; i++ {
		if err := l.Transfer(float64(1000+i), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Admit one flow and run until the next completion frees a slot.
		if err := l.Transfer(float64(1000+i%64), nil); err != nil {
			b.Fatal(err)
		}
		before := l.ActiveFlows()
		for l.ActiveFlows() >= before {
			if !e.Step() {
				b.Fatal("engine drained with flows outstanding")
			}
		}
	}
}

// BenchmarkLink_Churn1000 measures a full busy period: 1000 staggered flows
// admitted against one shared link, drained to empty. This is the pattern
// BenchmarkSim_LinkStress1000Flows exercises through the simulator; here it
// isolates the link + engine cost (the old per-flow settle/reschedule was
// O(flows^2) over the busy period).
func BenchmarkLink_Churn1000(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := engine.New()
		l, err := NewLink(e, "churn", 1e9, 0)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 1000; j++ {
			vol := float64(1+j%7) * 1e9
			at := float64(j%10) / 10
			if _, err := e.Schedule(at, func() {
				if err := l.Transfer(vol, nil); err != nil {
					panic(fmt.Sprintf("transfer: %v", err))
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		if !l.Drain() {
			b.Fatal("link not drained")
		}
	}
}
