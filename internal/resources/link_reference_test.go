package resources

import (
	"fmt"
	"math"

	"wroofline/internal/engine"
)

// This file preserves the original per-flow settle/reschedule link
// implementation as an executable reference for the differential tests in
// link_diff_test.go. It is intentionally the naive O(flows) per event
// algorithm: every rate change walks all flows subtracting rate*dt from the
// remaining-bytes counters. The production Link in link.go must reproduce
// its completion times (within float tolerance) on arbitrary schedules.

// refFlow is one in-flight transfer on a refLink.
type refFlow struct {
	remaining float64 // bytes left
	rate      float64 // current bytes/s share
	done      func(start, end float64)
	start     float64
}

// refLink is the reference max-min fair shared link.
type refLink struct {
	name       string
	eng        *engine.Engine
	capacity   float64
	perFlowCap float64
	flows      map[*refFlow]struct{}
	next       *engine.Event
	lastSettle float64
}

func newRefLink(eng *engine.Engine, name string, capacity, perFlowCap float64) (*refLink, error) {
	if eng == nil {
		return nil, fmt.Errorf("resources: link %q needs an engine", name)
	}
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("resources: link %q needs positive finite capacity, got %v", name, capacity)
	}
	if perFlowCap < 0 || math.IsNaN(perFlowCap) {
		return nil, fmt.Errorf("resources: link %q has invalid per-flow cap %v", name, perFlowCap)
	}
	return &refLink{
		name:       name,
		eng:        eng,
		capacity:   capacity,
		perFlowCap: perFlowCap,
		flows:      make(map[*refFlow]struct{}),
	}, nil
}

func (l *refLink) setCapacity(capacity float64) error {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return fmt.Errorf("resources: link %q: invalid capacity %v", l.name, capacity)
	}
	l.settle()
	l.capacity = capacity
	l.reschedule()
	return nil
}

func (l *refLink) activeFlows() int { return len(l.flows) }

func (l *refLink) transfer(bytes float64, done func(start, end float64)) error {
	if bytes < 0 || math.IsNaN(bytes) || math.IsInf(bytes, 0) {
		return fmt.Errorf("resources: link %q: invalid transfer size %v", l.name, bytes)
	}
	now := l.eng.Now()
	if bytes == 0 {
		if done != nil {
			done(now, now)
		}
		return nil
	}
	l.settle()
	f := &refFlow{remaining: bytes, done: done, start: now}
	l.flows[f] = struct{}{}
	l.reschedule()
	return nil
}

// settle applies progress at the current rates since the last settle point.
func (l *refLink) settle() {
	now := l.eng.Now()
	dt := now - l.lastSettle
	l.lastSettle = now
	if dt <= 0 || len(l.flows) == 0 {
		return
	}
	var finished []*refFlow
	for f := range l.flows {
		f.remaining -= f.rate * dt
		if l.flowDone(f) {
			f.remaining = 0
			finished = append(finished, f)
		}
	}
	for _, f := range finished {
		delete(l.flows, f)
		if f.done != nil {
			f.done(f.start, now)
		}
	}
}

func (l *refLink) flowDone(f *refFlow) bool {
	return f.remaining <= 1e-9 || f.remaining <= f.rate*1e-9
}

func (l *refLink) shareRate(n int) float64 {
	if n == 0 {
		return 0
	}
	r := l.capacity / float64(n)
	if l.perFlowCap > 0 && l.perFlowCap < r {
		r = l.perFlowCap
	}
	return r
}

func (l *refLink) reschedule() {
	if l.next != nil {
		l.next.Cancel()
		l.next = nil
	}
	for {
		n := len(l.flows)
		if n == 0 {
			return
		}
		rate := l.shareRate(n)
		var finished []*refFlow
		for f := range l.flows {
			f.rate = rate
			if l.flowDone(f) {
				finished = append(finished, f)
			}
		}
		if len(finished) == 0 {
			break
		}
		now := l.eng.Now()
		for _, f := range finished {
			f.remaining = 0
			delete(l.flows, f)
			if f.done != nil {
				f.done(f.start, now)
			}
		}
	}
	rate := l.shareRate(len(l.flows))
	soonest := math.Inf(1)
	for f := range l.flows {
		f.rate = rate
		if t := f.remaining / rate; t < soonest {
			soonest = t
		}
	}
	ev, err := l.eng.Schedule(soonest, func() {
		l.next = nil
		l.settle()
		l.reschedule()
	})
	if err != nil {
		panic(fmt.Sprintf("resources: link %q: %v", l.name, err))
	}
	l.next = ev
}

func (l *refLink) drain() bool { return len(l.flows) == 0 }
