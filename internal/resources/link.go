// Package resources provides shared-resource models for the workflow
// simulator: bandwidth links with max-min fair sharing among concurrent
// flows (file system, external/DTN, network fabric) and counting node pools
// (compute allocation). Both are built on the discrete-event engine.
package resources

import (
	"fmt"
	"math"

	"wroofline/internal/engine"
)

// flow is one in-flight transfer on a Link.
type flow struct {
	remaining float64 // bytes left
	rate      float64 // current bytes/s share
	done      func(start, end float64)
	start     float64
}

// Link is a shared bandwidth resource. Concurrent flows divide the capacity
// by max-min fair share: each flow receives min(PerFlowCap, capacity/n).
// When some flows are capped below the equal share, the surplus is
// redistributed to the others (classic water-filling with homogeneous caps
// this reduces to the min above).
//
// A Link models the paper's shared system resources: the parallel file
// system (5.6 TB/s aggregate), the external/DTN path (per-flow 1 GB/s on
// LCLS "good days", 0.2 GB/s on "bad days"), or a fabric.
type Link struct {
	// Name labels the link in errors and traces.
	Name string

	eng        *engine.Engine
	capacity   float64
	perFlowCap float64
	flows      map[*flow]struct{}
	next       *engine.Event
	lastSettle float64
}

// NewLink creates a link with aggregate capacity (bytes/s) and an optional
// per-flow rate cap (0 = uncapped).
func NewLink(eng *engine.Engine, name string, capacity, perFlowCap float64) (*Link, error) {
	if eng == nil {
		return nil, fmt.Errorf("resources: link %q needs an engine", name)
	}
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("resources: link %q needs positive finite capacity, got %v", name, capacity)
	}
	if perFlowCap < 0 || math.IsNaN(perFlowCap) {
		return nil, fmt.Errorf("resources: link %q has invalid per-flow cap %v", name, perFlowCap)
	}
	return &Link{
		Name:       name,
		eng:        eng,
		capacity:   capacity,
		perFlowCap: perFlowCap,
		flows:      make(map[*flow]struct{}),
	}, nil
}

// Capacity returns the aggregate capacity in bytes/s.
func (l *Link) Capacity() float64 { return l.capacity }

// SetCapacity changes the aggregate capacity at the current virtual time,
// modelling contention onset or relief mid-run. In-flight flows are settled
// first so completed progress is preserved.
func (l *Link) SetCapacity(capacity float64) error {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return fmt.Errorf("resources: link %q: invalid capacity %v", l.Name, capacity)
	}
	l.settle()
	l.capacity = capacity
	l.reschedule()
	return nil
}

// ActiveFlows returns the number of in-flight transfers.
func (l *Link) ActiveFlows() int { return len(l.flows) }

// Transfer starts moving bytes across the link. done is invoked (with the
// flow's start and end virtual times) when the transfer completes. A
// zero-byte transfer completes immediately.
func (l *Link) Transfer(bytes float64, done func(start, end float64)) error {
	if bytes < 0 || math.IsNaN(bytes) || math.IsInf(bytes, 0) {
		return fmt.Errorf("resources: link %q: invalid transfer size %v", l.Name, bytes)
	}
	now := l.eng.Now()
	if bytes == 0 {
		if done != nil {
			done(now, now)
		}
		return nil
	}
	l.settle()
	f := &flow{remaining: bytes, done: done, start: now}
	l.flows[f] = struct{}{}
	l.reschedule()
	return nil
}

// settle applies progress at the current rates since the last settle point.
func (l *Link) settle() {
	now := l.eng.Now()
	dt := now - l.lastSettle
	l.lastSettle = now
	if dt <= 0 || len(l.flows) == 0 {
		return
	}
	var finished []*flow
	for f := range l.flows {
		f.remaining -= f.rate * dt
		if l.flowDone(f) {
			f.remaining = 0
			finished = append(finished, f)
		}
	}
	for _, f := range finished {
		delete(l.flows, f)
		if f.done != nil {
			f.done(f.start, now)
		}
	}
}

// flowDone reports whether a flow is complete within tolerance. The
// tolerance is a nanosecond of transfer at the flow's current rate: virtual
// timestamps only carry ~1 ulp of precision, so after settling at a large
// clock value a few bytes of rounding error can remain — without the
// rate-relative term the link would reschedule completions at sub-ulp
// deltas forever.
func (l *Link) flowDone(f *flow) bool {
	return f.remaining <= 1e-9 || f.remaining <= f.rate*1e-9
}

// shareRate returns the per-flow max-min rate for n flows.
func (l *Link) shareRate(n int) float64 {
	if n == 0 {
		return 0
	}
	r := l.capacity / float64(n)
	if l.perFlowCap > 0 && l.perFlowCap < r {
		r = l.perFlowCap
	}
	return r
}

// reschedule recomputes rates and (re)arms the next-completion event.
func (l *Link) reschedule() {
	if l.next != nil {
		l.next.Cancel()
		l.next = nil
	}
	// Complete any flows already within tolerance at the rate they would
	// receive, so a completion event that lands on the same timestamp (after
	// float rounding) cannot loop.
	for {
		n := len(l.flows)
		if n == 0 {
			return
		}
		rate := l.shareRate(n)
		var finished []*flow
		for f := range l.flows {
			f.rate = rate
			if l.flowDone(f) {
				finished = append(finished, f)
			}
		}
		if len(finished) == 0 {
			break
		}
		now := l.eng.Now()
		for _, f := range finished {
			f.remaining = 0
			delete(l.flows, f)
			if f.done != nil {
				f.done(f.start, now)
			}
		}
	}
	rate := l.shareRate(len(l.flows))
	soonest := math.Inf(1)
	for f := range l.flows {
		f.rate = rate
		if t := f.remaining / rate; t < soonest {
			soonest = t
		}
	}
	ev, err := l.eng.Schedule(soonest, func() {
		l.next = nil
		l.settle()
		l.reschedule()
	})
	if err != nil {
		// Scheduling forward from now with a non-negative delay cannot fail;
		// a failure here means the engine clock is corrupt.
		panic(fmt.Sprintf("resources: link %q: %v", l.Name, err))
	}
	l.next = ev
}

// Drain reports whether the link has no pending work, for test assertions.
func (l *Link) Drain() bool { return len(l.flows) == 0 }
