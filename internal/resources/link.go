// Package resources provides shared-resource models for the workflow
// simulator: bandwidth links with max-min fair sharing among concurrent
// flows (file system, external/DTN, network fabric) and counting node pools
// (compute allocation). Both are built on the discrete-event engine.
package resources

import (
	"fmt"
	"math"

	"wroofline/internal/engine"
)

// flow is one in-flight transfer on a Link, tracked in virtual-work time:
// it completes when the link's work clock reaches vfinish (see Link.vnow).
type flow struct {
	vfinish float64 // link work-clock value at which the flow completes
	seq     uint64  // admission order, breaks vfinish ties deterministically
	start   float64 // virtual (wall) time the flow was admitted
	done    func(start, end float64)
}

// Link is a shared bandwidth resource. Concurrent flows divide the capacity
// by max-min fair share: each flow receives min(PerFlowCap, capacity/n).
// When some flows are capped below the equal share, the surplus is
// redistributed to the others (classic water-filling; with homogeneous caps
// this reduces to the min above).
//
// Because every active flow always receives the identical rate, the whole
// link is a single rate bucket: instead of updating each flow's remaining
// bytes on every event (O(flows) per event, O(flows²) per busy period), the
// link integrates one shared work clock vnow at the common per-flow rate. A
// flow admitted with B bytes completes when vnow advances past its admission
// value plus B, so a rate change (arrival, completion, SetCapacity) is an
// O(1) epoch update plus one rescheduled "next completion" event per link.
// Completions pop from a per-link min-heap keyed by vfinish.
//
// A Link models the paper's shared system resources: the parallel file
// system (5.6 TB/s aggregate), the external/DTN path (per-flow 1 GB/s on
// LCLS "good days", 0.2 GB/s on "bad days"), or a fabric.
type Link struct {
	// Name labels the link in errors and traces.
	Name string

	eng        *engine.Engine
	capacity   float64
	perFlowCap float64

	rate       float64 // current common per-flow rate (bytes/s), 0 when idle
	vnow       float64 // work clock: bytes delivered per flow this busy period
	lastSettle float64 // virtual time vnow was last advanced to
	seq        uint64

	heap []*flow // min-heap by (vfinish, seq)
	next *engine.Event
	// onNext is the single completion callback, allocated once so arming the
	// next-completion event never allocates a closure.
	onNext func()
	// scratch carries completed flows out of the heap before their done
	// callbacks run (which may reentrantly Transfer); reused across events.
	scratch []*flow
	free    []*flow
}

// maxFlowFree bounds the per-link flow free list.
const maxFlowFree = 4096

// NewLink creates a link with aggregate capacity (bytes/s) and an optional
// per-flow rate cap (0 = uncapped).
func NewLink(eng *engine.Engine, name string, capacity, perFlowCap float64) (*Link, error) {
	if eng == nil {
		return nil, fmt.Errorf("resources: link %q needs an engine", name)
	}
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("resources: link %q needs positive finite capacity, got %v", name, capacity)
	}
	if perFlowCap < 0 || math.IsNaN(perFlowCap) {
		return nil, fmt.Errorf("resources: link %q has invalid per-flow cap %v", name, perFlowCap)
	}
	l := &Link{
		Name:       name,
		eng:        eng,
		capacity:   capacity,
		perFlowCap: perFlowCap,
	}
	l.onNext = func() {
		l.next = nil
		l.advance()
		l.reschedule()
	}
	return l, nil
}

// Reset restores the link to an idle state with new parameters, for reuse
// across pooled simulation trials. The flow free list, heap, and scratch
// capacity are retained. It must only be called alongside an engine Reset
// (or on a drained link): any still-armed completion event is forgotten, not
// cancelled, because the engine reset may already have recycled it.
func (l *Link) Reset(capacity, perFlowCap float64) error {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return fmt.Errorf("resources: link %q needs positive finite capacity, got %v", l.Name, capacity)
	}
	if perFlowCap < 0 || math.IsNaN(perFlowCap) {
		return fmt.Errorf("resources: link %q has invalid per-flow cap %v", l.Name, perFlowCap)
	}
	for _, f := range l.heap {
		l.recycle(f)
	}
	for i := range l.heap {
		l.heap[i] = nil
	}
	l.heap = l.heap[:0]
	l.capacity = capacity
	l.perFlowCap = perFlowCap
	l.rate = 0
	l.vnow = 0
	l.lastSettle = 0
	l.seq = 0
	l.next = nil
	return nil
}

// Capacity returns the aggregate capacity in bytes/s.
func (l *Link) Capacity() float64 { return l.capacity }

// SetCapacity changes the aggregate capacity at the current virtual time,
// modelling contention onset or relief mid-run. In-flight flows are settled
// first (the work clock advances at the old rate) so completed progress is
// preserved.
func (l *Link) SetCapacity(capacity float64) error {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return fmt.Errorf("resources: link %q: invalid capacity %v", l.Name, capacity)
	}
	l.advance()
	l.capacity = capacity
	l.reschedule()
	return nil
}

// ActiveFlows returns the number of in-flight transfers.
func (l *Link) ActiveFlows() int { return len(l.heap) }

// Transfer starts moving bytes across the link. done is invoked (with the
// flow's start and end virtual times) when the transfer completes. A
// zero-byte transfer completes immediately.
func (l *Link) Transfer(bytes float64, done func(start, end float64)) error {
	if bytes < 0 || math.IsNaN(bytes) || math.IsInf(bytes, 0) {
		return fmt.Errorf("resources: link %q: invalid transfer size %v", l.Name, bytes)
	}
	now := l.eng.Now()
	if bytes == 0 {
		if done != nil {
			done(now, now)
		}
		return nil
	}
	l.advance()
	f := l.newFlow()
	f.vfinish = l.vnow + bytes
	f.seq = l.seq
	f.start = now
	f.done = done
	l.seq++
	l.heapPush(f)
	l.reschedule()
	return nil
}

// advance integrates the work clock from the last settle point to now at the
// current common per-flow rate.
func (l *Link) advance() {
	now := l.eng.Now()
	if dt := now - l.lastSettle; dt > 0 && len(l.heap) > 0 {
		l.vnow += l.rate * dt
	}
	l.lastSettle = now
}

// flowReady reports whether a flow is complete within tolerance. The
// tolerance is a nanosecond of transfer at the common rate: virtual
// timestamps only carry ~1 ulp of precision, so after settling at a large
// clock value a few bytes of rounding error can remain — without the
// rate-relative term the link would reschedule completions at sub-ulp
// deltas forever.
func (l *Link) flowReady(f *flow) bool {
	rem := f.vfinish - l.vnow
	return rem <= 1e-9 || rem <= l.rate*1e-9
}

// shareRate returns the per-flow max-min rate for n flows.
func (l *Link) shareRate(n int) float64 {
	if n == 0 {
		return 0
	}
	r := l.capacity / float64(n)
	if l.perFlowCap > 0 && l.perFlowCap < r {
		r = l.perFlowCap
	}
	return r
}

// reschedule recomputes the common rate, fires any completions already
// within tolerance, and (re)arms the single next-completion event.
func (l *Link) reschedule() {
	// Complete flows already within tolerance at the rate they would
	// receive, so a completion event that lands on the same timestamp (after
	// float rounding) cannot loop. Each batch of completions changes n and
	// therefore the rate, which may pull more flows inside tolerance.
	for {
		n := len(l.heap)
		if n == 0 {
			if l.next != nil {
				l.next.Cancel()
				l.next = nil
			}
			// Idle: reset the work clock so its magnitude is bounded by one
			// busy period's bytes, keeping vfinish arithmetic well away from
			// the float64 precision cliff on long simulations.
			l.rate = 0
			l.vnow = 0
			return
		}
		l.rate = l.shareRate(n)
		if !l.completeReady() {
			break
		}
	}
	// Cancel immediately before arming: a done callback above may have
	// reentrantly Transferred and armed its own next-completion event.
	if l.next != nil {
		l.next.Cancel()
		l.next = nil
	}
	delay := (l.heap[0].vfinish - l.vnow) / l.rate
	if delay < 0 {
		delay = 0
	}
	ev, err := l.eng.Schedule(delay, l.onNext)
	if err != nil {
		// Scheduling forward from now with a non-negative delay cannot fail;
		// a failure here means the engine clock is corrupt.
		panic(fmt.Sprintf("resources: link %q: %v", l.Name, err))
	}
	l.next = ev
}

// completeReady pops and fires every flow within tolerance at the current
// rate. It returns whether any flow completed. Completed flows are moved to
// the scratch slice first: done callbacks may reentrantly call Transfer or
// reschedule, so the heap must be consistent before the first callback runs.
func (l *Link) completeReady() bool {
	if !l.flowReady(l.heap[0]) {
		return false
	}
	// Check the scratch slice out of the link for the duration of the batch;
	// a reentrant completion underneath a done callback allocates its own.
	batch := l.scratch[:0]
	l.scratch = nil
	for len(l.heap) > 0 && l.flowReady(l.heap[0]) {
		batch = append(batch, l.heapPop())
	}
	now := l.eng.Now()
	for i, f := range batch {
		done, start := f.done, f.start
		l.recycle(f)
		batch[i] = nil
		if done != nil {
			done(start, now)
		}
	}
	l.scratch = batch[:0]
	return true
}

// Drain reports whether the link has no pending work, for test assertions.
func (l *Link) Drain() bool { return len(l.heap) == 0 }

func flowLess(a, b *flow) bool {
	if a.vfinish != b.vfinish {
		return a.vfinish < b.vfinish
	}
	return a.seq < b.seq
}

func (l *Link) heapPush(f *flow) {
	l.heap = append(l.heap, f)
	i := len(l.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !flowLess(l.heap[i], l.heap[p]) {
			break
		}
		l.heap[i], l.heap[p] = l.heap[p], l.heap[i]
		i = p
	}
}

func (l *Link) heapPop() *flow {
	h := l.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	l.heap = h
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && flowLess(h[c+1], h[c]) {
			c++
		}
		if !flowLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}

func (l *Link) newFlow() *flow {
	if n := len(l.free); n > 0 {
		f := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		return f
	}
	return &flow{}
}

func (l *Link) recycle(f *flow) {
	f.done = nil
	if len(l.free) < maxFlowFree {
		l.free = append(l.free, f)
	}
}
