package resources

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wroofline/internal/engine"
)

// diffSchedule is a randomized flow arrival schedule replayed against both
// link implementations.
type diffSchedule struct {
	capacity   float64
	perFlowCap float64
	arrivals   []diffArrival
	capChanges []diffCapChange
}

type diffArrival struct {
	at    float64
	bytes float64
}

type diffCapChange struct {
	at       float64
	capacity float64
}

// genSchedule derives a schedule from a seed: mixed flow sizes across six
// orders of magnitude, arrival times that frequently collide (quantized to a
// coarse grid half the time, to exercise tie-breaking), optional per-flow
// caps, and occasional mid-run capacity changes.
func genSchedule(seed int64) diffSchedule {
	rng := rand.New(rand.NewSource(seed))
	s := diffSchedule{
		capacity: math.Exp(rng.Float64()*math.Log(1e9/1e3)) * 1e3, // 1e3..1e9 log-uniform
	}
	if rng.Intn(2) == 0 {
		s.perFlowCap = s.capacity * (0.05 + 1.45*rng.Float64())
	}
	n := 1 + rng.Intn(30)
	for i := 0; i < n; i++ {
		at := rng.Float64() * 10
		if rng.Intn(2) == 0 {
			at = math.Floor(at*4) / 4 // force simultaneous arrivals
		}
		bytes := math.Exp(rng.Float64()*math.Log(1e6)) * s.capacity / 1e3
		s.arrivals = append(s.arrivals, diffArrival{at: at, bytes: bytes})
	}
	for i, k := 0, rng.Intn(3); i < k; i++ {
		s.capChanges = append(s.capChanges, diffCapChange{
			at:       rng.Float64() * 20,
			capacity: s.capacity * (0.1 + 2*rng.Float64()),
		})
	}
	return s
}

// runBucketed replays a schedule against the production Link and returns
// each flow's (start, end) indexed by arrival.
func runBucketed(t *testing.T, s diffSchedule) ([]float64, []float64) {
	t.Helper()
	e := engine.New()
	l, err := NewLink(e, "diff", s.capacity, s.perFlowCap)
	if err != nil {
		t.Fatal(err)
	}
	starts := make([]float64, len(s.arrivals))
	ends := make([]float64, len(s.arrivals))
	for i := range ends {
		ends[i] = math.NaN()
	}
	for i, a := range s.arrivals {
		i, a := i, a
		if _, err := e.At(a.at, func() {
			if err := l.Transfer(a.bytes, func(st, en float64) {
				starts[i], ends[i] = st, en
			}); err != nil {
				t.Errorf("bucketed transfer %d: %v", i, err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range s.capChanges {
		c := c
		if _, err := e.At(c.at, func() {
			if err := l.SetCapacity(c.capacity); err != nil {
				t.Errorf("bucketed setcapacity: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !l.Drain() {
		t.Fatalf("bucketed link not drained: %d flows left", l.ActiveFlows())
	}
	return starts, ends
}

// runReference replays the same schedule against the preserved per-flow
// settle/reschedule implementation.
func runReference(t *testing.T, s diffSchedule) ([]float64, []float64) {
	t.Helper()
	e := engine.New()
	l, err := newRefLink(e, "ref", s.capacity, s.perFlowCap)
	if err != nil {
		t.Fatal(err)
	}
	starts := make([]float64, len(s.arrivals))
	ends := make([]float64, len(s.arrivals))
	for i := range ends {
		ends[i] = math.NaN()
	}
	for i, a := range s.arrivals {
		i, a := i, a
		if _, err := e.At(a.at, func() {
			if err := l.transfer(a.bytes, func(st, en float64) {
				starts[i], ends[i] = st, en
			}); err != nil {
				t.Errorf("reference transfer %d: %v", i, err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range s.capChanges {
		c := c
		if _, err := e.At(c.at, func() {
			if err := l.setCapacity(c.capacity); err != nil {
				t.Errorf("reference setcapacity: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !l.drain() {
		t.Fatalf("reference link not drained: %d flows left", l.activeFlows())
	}
	return starts, ends
}

// diffClose compares two completion times. The implementations integrate
// progress along different float paths and snap completions with a
// nanosecond tolerance, so times can differ by ~1ns absolute plus rounding
// relative to magnitude.
func diffClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-7+1e-9*scale
}

// TestQuickDifferentialLink is the tentpole's correctness proof: on 1000
// randomized schedules the rate-bucketed link must reproduce the reference
// implementation's per-flow completion times.
func TestQuickDifferentialLink(t *testing.T) {
	count := 0
	prop := func(seed int64) bool {
		count++
		s := genSchedule(seed)
		bStarts, bEnds := runBucketed(t, s)
		rStarts, rEnds := runReference(t, s)
		for i := range s.arrivals {
			if math.IsNaN(bEnds[i]) || math.IsNaN(rEnds[i]) {
				t.Logf("seed %d flow %d never completed (bucketed=%v ref=%v)", seed, i, bEnds[i], rEnds[i])
				return false
			}
			if bStarts[i] != rStarts[i] {
				t.Logf("seed %d flow %d start mismatch: bucketed=%v ref=%v", seed, i, bStarts[i], rStarts[i])
				return false
			}
			if !diffClose(bEnds[i], rEnds[i]) {
				t.Logf("seed %d flow %d end mismatch: bucketed=%.12g ref=%.12g (diff %.3g)",
					seed, i, bEnds[i], rEnds[i], bEnds[i]-rEnds[i])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
	if count < 1000 {
		t.Fatalf("differential property ran %d schedules, want 1000", count)
	}
}

// TestQuickBucketedCapacityConservation checks the bucketed link's max-min
// invariants directly on randomized schedules (no capacity changes, so the
// bound is exact): total bytes delivered never exceed capacity × busy time,
// and each flow's average rate never exceeds its per-flow cap.
func TestQuickBucketedCapacityConservation(t *testing.T) {
	prop := func(seed int64) bool {
		s := genSchedule(seed)
		s.capChanges = nil
		starts, ends := runBucketed(t, s)
		first, last := math.Inf(1), math.Inf(-1)
		total := 0.0
		for i, a := range s.arrivals {
			total += a.bytes
			if a.at < first {
				first = a.at
			}
			if ends[i] > last {
				last = ends[i]
			}
			// Per-flow cap: bytes / duration <= cap (within tolerance).
			if s.perFlowCap > 0 {
				dur := ends[i] - starts[i]
				if dur > 0 && a.bytes/dur > s.perFlowCap*(1+1e-6) {
					t.Logf("seed %d flow %d exceeds per-flow cap: %v > %v",
						seed, i, a.bytes/dur, s.perFlowCap)
					return false
				}
			}
		}
		// Aggregate: the link cannot deliver more than capacity over the
		// span from first arrival to last completion.
		if span := last - first; span > 0 && total > s.capacity*span*(1+1e-6) {
			t.Logf("seed %d overdelivers: %v bytes in %v s at capacity %v", seed, total, span, s.capacity)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
