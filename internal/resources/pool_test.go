package resources

import (
	"testing"
	"testing/quick"

	"wroofline/internal/engine"
)

func TestPoolBasicAcquireRelease(t *testing.T) {
	e := engine.New()
	p, err := NewPool(e, "gpu", 10)
	if err != nil {
		t.Fatal(err)
	}
	granted := false
	if err := p.Acquire(4, func() { granted = true }); err != nil {
		t.Fatal(err)
	}
	if !granted {
		t.Fatal("grant should be immediate when nodes are free")
	}
	if p.Free() != 6 || p.InUse() != 4 {
		t.Errorf("free=%d inuse=%d", p.Free(), p.InUse())
	}
	if err := p.Release(4); err != nil {
		t.Fatal(err)
	}
	if p.Free() != 10 {
		t.Errorf("free=%d after release", p.Free())
	}
}

func TestPoolQueuesWhenFull(t *testing.T) {
	e := engine.New()
	p, err := NewPool(e, "gpu", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(8, func() {}); err != nil {
		t.Fatal(err)
	}
	got := false
	if err := p.Acquire(4, func() { got = true }); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("4-node request should queue behind 8-node allocation")
	}
	if p.QueueLength() != 1 {
		t.Errorf("queue = %d", p.QueueLength())
	}
	if err := p.Release(8); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("release should dispatch the waiter")
	}
}

func TestPoolFIFOHeadOfLineBlocking(t *testing.T) {
	// FIFO (no backfill): a big request at the head blocks a small one even
	// though the small one would fit.
	e := engine.New()
	p, err := NewPool(e, "gpu", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(6, func() {}); err != nil {
		t.Fatal(err)
	}
	bigGranted, smallGranted := false, false
	if err := p.Acquire(8, func() { bigGranted = true }); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(2, func() { smallGranted = true }); err != nil {
		t.Fatal(err)
	}
	if smallGranted {
		t.Error("strict FIFO must not backfill the small request")
	}
	if err := p.Release(6); err != nil {
		t.Fatal(err)
	}
	if !bigGranted {
		t.Error("big request should be granted after release")
	}
	if !smallGranted {
		t.Error("small request should follow once the big one is placed")
	}
}

// The parallelism wall emerges: with 1792 nodes and 64-node tasks, exactly
// 28 tasks can hold nodes at once (paper Fig 1).
func TestPoolParallelismWall(t *testing.T) {
	e := engine.New()
	p, err := NewPool(e, "gpu", 1792)
	if err != nil {
		t.Fatal(err)
	}
	running := 0
	maxRunning := 0
	for i := 0; i < 40; i++ {
		if err := p.Acquire(64, func() {
			running++
			if running > maxRunning {
				maxRunning = running
			}
			// Hold for 10 s of virtual time, then release.
			if _, err := e.Schedule(10, func() {
				running--
				if err := p.Release(64); err != nil {
					t.Error(err)
				}
			}); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxRunning != 28 {
		t.Errorf("max concurrent 64-node tasks = %d, want 28", maxRunning)
	}
	if p.PeakInUse() != 28*64 {
		t.Errorf("peak in use = %d, want %d", p.PeakInUse(), 28*64)
	}
	if p.Free() != 1792 {
		t.Errorf("free at end = %d", p.Free())
	}
}

func TestPoolValidation(t *testing.T) {
	e := engine.New()
	if _, err := NewPool(nil, "x", 4); err == nil {
		t.Error("nil engine should fail")
	}
	if _, err := NewPool(e, "x", 0); err == nil {
		t.Error("zero capacity should fail")
	}
	p, err := NewPool(e, "x", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(0, func() {}); err == nil {
		t.Error("zero acquire should fail")
	}
	if err := p.Acquire(5, func() {}); err == nil {
		t.Error("oversized acquire should fail")
	}
	if err := p.Acquire(1, nil); err == nil {
		t.Error("nil callback should fail")
	}
	if err := p.Release(0); err == nil {
		t.Error("zero release should fail")
	}
	if err := p.Release(5); err == nil {
		t.Error("over-release should fail")
	}
	if p.Total() != 4 {
		t.Errorf("total = %d", p.Total())
	}
}

// Property: nodes are conserved — after any interleaving of acquire/release
// pairs the pool returns to full, and in-use never exceeds total.
func TestQuickPoolConservation(t *testing.T) {
	f := func(sizes []uint8) bool {
		e := engine.New()
		p, err := NewPool(e, "q", 100)
		if err != nil {
			return false
		}
		violated := false
		delay := 0.0
		for _, s := range sizes {
			n := int(s%20) + 1
			delay += 1
			if err := p.Acquire(n, func() {
				if p.InUse() > p.Total() || p.Free() < 0 {
					violated = true
				}
				if _, err := e.Schedule(delay, func() {
					if err := p.Release(n); err != nil {
						violated = true
					}
				}); err != nil {
					violated = true
				}
			}); err != nil {
				return false
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		return !violated && p.Free() == 100 && p.QueueLength() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPoolOfflineOnline(t *testing.T) {
	e := engine.New()
	p, err := NewPool(e, "gpu", 10)
	if err != nil {
		t.Fatal(err)
	}
	// Idle nodes go down immediately.
	if err := p.Offline(3); err != nil {
		t.Fatal(err)
	}
	if p.Free() != 7 || p.Down() != 3 || p.InUse() != 0 {
		t.Fatalf("after offline: free=%d down=%d inuse=%d", p.Free(), p.Down(), p.InUse())
	}
	// A request for more than the remaining capacity waits.
	granted := false
	if err := p.Acquire(8, func() { granted = true }); err != nil {
		t.Fatal(err)
	}
	if granted {
		t.Fatal("grant should wait while nodes are down")
	}
	// Repair returns capacity and dispatches the waiter.
	if err := p.Online(3); err != nil {
		t.Fatal(err)
	}
	if !granted {
		t.Fatal("repair should dispatch the waiting request")
	}
	if p.InUse() != 8 || p.Free() != 2 {
		t.Fatalf("after grant: free=%d inuse=%d", p.Free(), p.InUse())
	}
}

func TestPoolOfflineBusyNodesDrain(t *testing.T) {
	e := engine.New()
	p, err := NewPool(e, "gpu", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(4, func() {}); err != nil {
		t.Fatal(err)
	}
	// All nodes busy: removal is deferred until release.
	if err := p.Offline(2); err != nil {
		t.Fatal(err)
	}
	if p.Down() != 2 || p.Free() != 0 || p.InUse() != 4 {
		t.Fatalf("pending offline: free=%d down=%d inuse=%d", p.Free(), p.Down(), p.InUse())
	}
	if err := p.Release(1); err != nil {
		t.Fatal(err)
	}
	if p.Free() != 0 || p.Down() != 2 || p.InUse() != 3 {
		t.Fatalf("after first release: free=%d down=%d inuse=%d", p.Free(), p.Down(), p.InUse())
	}
	if err := p.Release(3); err != nil {
		t.Fatal(err)
	}
	if p.Free() != 2 || p.Down() != 2 || p.InUse() != 0 {
		t.Fatalf("after drain: free=%d down=%d inuse=%d", p.Free(), p.Down(), p.InUse())
	}
	// Online cancels pending removals first, then repairs down nodes.
	if err := p.Online(2); err != nil {
		t.Fatal(err)
	}
	if p.Free() != 4 || p.Down() != 0 {
		t.Fatalf("after repair: free=%d down=%d", p.Free(), p.Down())
	}
	if err := p.Online(1); err == nil {
		t.Fatal("online with nothing down should error")
	}
	if err := p.Offline(5); err == nil {
		t.Fatal("offline beyond capacity should error")
	}
	if err := p.Offline(0); err == nil {
		t.Fatal("offline zero should error")
	}
}
