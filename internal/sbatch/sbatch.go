// Package sbatch extracts workflow structure from Slurm batch scripts. The
// paper's methodology obtains "the number of parallel tasks and total number
// of tasks ... from the workflow description, e.g. sbatch"; this package
// parses the #SBATCH directives that carry that information (node counts,
// job names, dependencies) and assembles a workflow.Workflow from a set of
// scripts.
//
// Supported directives (long and short forms):
//
//	#SBATCH --job-name=<name>      | -J <name>
//	#SBATCH --nodes=<n>            | -N <n>
//	#SBATCH --ntasks=<n>           | -n <n>
//	#SBATCH --time=<[[D-]HH:]MM:SS>| -t <spec>
//	#SBATCH --dependency=afterok:<jobname>[:<jobname>...]
//	#SBATCH --partition=<name>     | -p <name>
//
// Dependencies reference job names (a simplification of Slurm's numeric job
// ids, which do not exist before submission).
package sbatch

import (
	"fmt"
	"strconv"
	"strings"

	"wroofline/internal/workflow"
)

// Script is one parsed batch script.
type Script struct {
	// JobName identifies the job (required for dependency references).
	JobName string
	// Nodes and NTasks are the resource directives (Nodes defaults to 1).
	Nodes, NTasks int
	// TimeLimitSeconds is the requested wall limit (0 when absent).
	TimeLimitSeconds float64
	// Partition is the requested partition ("" when absent).
	Partition string
	// DependsOn lists job names from --dependency=afterok:...
	DependsOn []string
}

// ParseScript extracts the #SBATCH directives from a script body.
func ParseScript(src string) (*Script, error) {
	s := &Script{Nodes: 1}
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if !strings.HasPrefix(line, "#SBATCH") {
			continue
		}
		args := strings.Fields(strings.TrimSpace(strings.TrimPrefix(line, "#SBATCH")))
		if len(args) == 0 {
			return nil, fmt.Errorf("sbatch: line %d: empty #SBATCH directive", ln+1)
		}
		if err := s.directive(args); err != nil {
			return nil, fmt.Errorf("sbatch: line %d: %w", ln+1, err)
		}
	}
	if s.JobName == "" {
		return nil, fmt.Errorf("sbatch: script has no --job-name/-J directive")
	}
	if s.Nodes <= 0 {
		return nil, fmt.Errorf("sbatch: job %q has non-positive node count %d", s.JobName, s.Nodes)
	}
	return s, nil
}

// directive applies one directive's arguments.
func (s *Script) directive(args []string) error {
	key := args[0]
	// Normalize "--opt=value" into key/value; short options take the next
	// argument.
	var val string
	switch {
	case strings.HasPrefix(key, "--"):
		if eq := strings.IndexByte(key, '='); eq >= 0 {
			key, val = key[:eq], key[eq+1:]
		} else if len(args) > 1 {
			val = args[1]
		}
	case strings.HasPrefix(key, "-"):
		if len(args) > 1 {
			val = args[1]
		}
	default:
		return fmt.Errorf("unrecognized directive %q", key)
	}
	if val == "" {
		return fmt.Errorf("directive %q has no value", key)
	}
	switch key {
	case "--job-name", "-J":
		s.JobName = val
	case "--nodes", "-N":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad node count %q", val)
		}
		s.Nodes = n
	case "--ntasks", "-n":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad ntasks %q", val)
		}
		s.NTasks = n
	case "--time", "-t":
		secs, err := ParseTimeLimit(val)
		if err != nil {
			return err
		}
		s.TimeLimitSeconds = secs
	case "--partition", "-p":
		s.Partition = val
	case "--dependency", "-d":
		deps, err := parseDependency(val)
		if err != nil {
			return err
		}
		s.DependsOn = append(s.DependsOn, deps...)
	default:
		// Unknown directives (mail, output, account, ...) are ignored, as
		// Slurm itself tolerates unrecognized-but-wellformed options here.
	}
	return nil
}

// parseDependency handles "afterok:name1:name2" (and "afterany", which we
// treat identically for structure purposes).
func parseDependency(val string) ([]string, error) {
	parts := strings.Split(val, ":")
	if len(parts) < 2 {
		return nil, fmt.Errorf("bad dependency %q (want afterok:<job>[:<job>...])", val)
	}
	switch parts[0] {
	case "afterok", "afterany", "after":
	default:
		return nil, fmt.Errorf("unsupported dependency type %q", parts[0])
	}
	for _, name := range parts[1:] {
		if name == "" {
			return nil, fmt.Errorf("empty job name in dependency %q", val)
		}
	}
	return parts[1:], nil
}

// ParseTimeLimit parses Slurm time specs: MM, MM:SS, HH:MM:SS, D-HH,
// D-HH:MM, and D-HH:MM:SS, returning seconds.
func ParseTimeLimit(val string) (float64, error) {
	days := 0
	rest := val
	if dash := strings.IndexByte(val, '-'); dash >= 0 {
		d, err := strconv.Atoi(val[:dash])
		if err != nil || d < 0 {
			return 0, fmt.Errorf("bad day count in time %q", val)
		}
		days = d
		rest = val[dash+1:]
	}
	parts := strings.Split(rest, ":")
	nums := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad time component %q in %q", p, val)
		}
		nums[i] = n
	}
	var secs float64
	switch len(nums) {
	case 1:
		if days > 0 {
			secs = float64(nums[0]) * 3600 // D-HH
		} else {
			secs = float64(nums[0]) * 60 // MM
		}
	case 2:
		if days > 0 {
			secs = float64(nums[0])*3600 + float64(nums[1])*60 // D-HH:MM
		} else {
			secs = float64(nums[0])*60 + float64(nums[1]) // MM:SS
		}
	case 3:
		secs = float64(nums[0])*3600 + float64(nums[1])*60 + float64(nums[2]) // [D-]HH:MM:SS
	default:
		return 0, fmt.Errorf("bad time spec %q", val)
	}
	return secs + float64(days)*86400, nil
}

// BuildWorkflow assembles a workflow from parsed scripts. The workflow is
// named name; partition comes from the scripts (they must agree; a script
// without a partition inherits the common one). Dependencies must reference
// declared job names.
func BuildWorkflow(name string, scripts []*Script) (*workflow.Workflow, error) {
	if len(scripts) == 0 {
		return nil, fmt.Errorf("sbatch: no scripts")
	}
	partition := ""
	for _, s := range scripts {
		if s.Partition == "" {
			continue
		}
		if partition == "" {
			partition = s.Partition
		} else if partition != s.Partition {
			return nil, fmt.Errorf("sbatch: scripts span partitions %q and %q; one workflow uses one partition",
				partition, s.Partition)
		}
	}
	if partition == "" {
		return nil, fmt.Errorf("sbatch: no script declares a partition")
	}
	w := workflow.New(name, partition)
	for _, s := range scripts {
		if err := w.AddTask(&workflow.Task{
			ID:    s.JobName,
			Nodes: s.Nodes,
			Procs: s.NTasks,
		}); err != nil {
			return nil, err
		}
	}
	for _, s := range scripts {
		for _, dep := range s.DependsOn {
			if err := w.AddDep(dep, s.JobName); err != nil {
				return nil, err
			}
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// ParseAll parses multiple script bodies and builds the workflow in one
// call.
func ParseAll(name string, sources []string) (*workflow.Workflow, error) {
	scripts := make([]*Script, 0, len(sources))
	for i, src := range sources {
		s, err := ParseScript(src)
		if err != nil {
			return nil, fmt.Errorf("sbatch: script %d: %w", i, err)
		}
		scripts = append(scripts, s)
	}
	return BuildWorkflow(name, scripts)
}
