package sbatch

import (
	"strings"
	"testing"
)

const analyzeScript = `#!/bin/bash
#SBATCH --job-name=analyze0
#SBATCH --nodes=32
#SBATCH --ntasks=1024
#SBATCH --time=00:30:00
#SBATCH --partition=haswell
#SBATCH --output=analyze.%j.out

srun ./analyze input0.h5
`

func TestParseScript(t *testing.T) {
	s, err := ParseScript(analyzeScript)
	if err != nil {
		t.Fatal(err)
	}
	if s.JobName != "analyze0" {
		t.Errorf("job name = %q", s.JobName)
	}
	if s.Nodes != 32 || s.NTasks != 1024 {
		t.Errorf("sizing = %d nodes / %d tasks", s.Nodes, s.NTasks)
	}
	if s.TimeLimitSeconds != 1800 {
		t.Errorf("time limit = %v", s.TimeLimitSeconds)
	}
	if s.Partition != "haswell" {
		t.Errorf("partition = %q", s.Partition)
	}
}

func TestParseShortOptions(t *testing.T) {
	src := `#SBATCH -J merge
#SBATCH -N 1
#SBATCH -n 4
#SBATCH -t 15
#SBATCH -p haswell
#SBATCH -d afterok:analyze0:analyze1
`
	s, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.JobName != "merge" || s.Nodes != 1 || s.NTasks != 4 {
		t.Errorf("parsed: %+v", s)
	}
	if s.TimeLimitSeconds != 15*60 {
		t.Errorf("time = %v (bare minutes)", s.TimeLimitSeconds)
	}
	if len(s.DependsOn) != 2 || s.DependsOn[0] != "analyze0" || s.DependsOn[1] != "analyze1" {
		t.Errorf("deps = %v", s.DependsOn)
	}
}

func TestParseDefaults(t *testing.T) {
	s, err := ParseScript("#SBATCH --job-name=solo\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 1 {
		t.Errorf("default nodes = %d, want 1", s.Nodes)
	}
}

func TestParseScriptErrors(t *testing.T) {
	cases := map[string]string{
		"no job name":      "#SBATCH --nodes=4\n",
		"bad nodes":        "#SBATCH --job-name=x\n#SBATCH --nodes=four\n",
		"zero nodes":       "#SBATCH --job-name=x\n#SBATCH --nodes=0\n",
		"empty directive":  "#SBATCH\n#SBATCH --job-name=x\n",
		"missing value":    "#SBATCH --job-name\n",
		"bad dep type":     "#SBATCH --job-name=x\n#SBATCH --dependency=before:y\n",
		"bad dep empty":    "#SBATCH --job-name=x\n#SBATCH --dependency=afterok:\n",
		"bad dep no colon": "#SBATCH --job-name=x\n#SBATCH --dependency=afterok\n",
		"bad time":         "#SBATCH --job-name=x\n#SBATCH --time=later\n",
		"weird directive":  "#SBATCH nodes=4\n#SBATCH --job-name=x\n",
	}
	for name, src := range cases {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("%s: should fail:\n%s", name, src)
		}
	}
}

func TestUnknownDirectivesIgnored(t *testing.T) {
	src := "#SBATCH --job-name=x\n#SBATCH --mail-type=ALL\n#SBATCH --account=m0000\n"
	if _, err := ParseScript(src); err != nil {
		t.Errorf("unknown directives should be tolerated: %v", err)
	}
}

func TestParseTimeLimit(t *testing.T) {
	cases := map[string]float64{
		"30":         30 * 60,
		"30:15":      30*60 + 15,
		"01:30:00":   5400,
		"1-00":       86400,
		"1-01":       86400 + 3600,
		"1-06:30":    86400 + 6*3600 + 30*60,
		"2-01:02:03": 2*86400 + 3600 + 2*60 + 3,
	}
	for in, want := range cases {
		got, err := ParseTimeLimit(in)
		if err != nil {
			t.Errorf("ParseTimeLimit(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseTimeLimit(%q) = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "a", "1:2:3:4", "-1", "x-01:00", "1-"} {
		if _, err := ParseTimeLimit(bad); err == nil {
			t.Errorf("ParseTimeLimit(%q) should fail", bad)
		}
	}
}

// The LCLS shape from six sbatch scripts: five 32-node analyses and a merge
// depending on all of them.
func TestBuildWorkflowLCLSShape(t *testing.T) {
	var sources []string
	names := []string{"a0", "a1", "a2", "a3", "a4"}
	for _, n := range names {
		sources = append(sources,
			"#SBATCH --job-name="+n+"\n#SBATCH --nodes=32\n#SBATCH --ntasks=1024\n#SBATCH --partition=haswell\n")
	}
	sources = append(sources,
		"#SBATCH --job-name=merge\n#SBATCH --nodes=1\n#SBATCH --partition=haswell\n"+
			"#SBATCH --dependency=afterok:a0:a1:a2:a3:a4\n")
	w, err := ParseAll("LCLS", sources)
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalTasks() != 6 {
		t.Errorf("tasks = %d", w.TotalTasks())
	}
	p, err := w.ParallelTasks()
	if err != nil {
		t.Fatal(err)
	}
	if p != 5 {
		t.Errorf("parallel tasks = %d, want 5 — the paper's sbatch-derived number", p)
	}
	cpl, err := w.Graph().CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	if cpl != 2 {
		t.Errorf("critical path length = %d, want 2", cpl)
	}
	mergeTask, err := w.Task("merge")
	if err != nil {
		t.Fatal(err)
	}
	if mergeTask.Nodes != 1 {
		t.Errorf("merge nodes = %d", mergeTask.Nodes)
	}
	if w.Partition != "haswell" {
		t.Errorf("partition = %q", w.Partition)
	}
}

func TestBuildWorkflowErrors(t *testing.T) {
	if _, err := BuildWorkflow("x", nil); err == nil {
		t.Error("no scripts should fail")
	}
	// No partition anywhere.
	s1, err := ParseScript("#SBATCH --job-name=a\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildWorkflow("x", []*Script{s1}); err == nil {
		t.Error("missing partition should fail")
	}
	// Conflicting partitions.
	sources := []string{
		"#SBATCH --job-name=a\n#SBATCH --partition=cpu\n",
		"#SBATCH --job-name=b\n#SBATCH --partition=gpu\n",
	}
	if _, err := ParseAll("x", sources); err == nil {
		t.Error("conflicting partitions should fail")
	}
	// Dangling dependency.
	sources = []string{
		"#SBATCH --job-name=a\n#SBATCH --partition=cpu\n#SBATCH --dependency=afterok:ghost\n",
	}
	if _, err := ParseAll("x", sources); err == nil {
		t.Error("dependency on an undeclared job should fail")
	}
	// Duplicate job names.
	sources = []string{
		"#SBATCH --job-name=a\n#SBATCH --partition=cpu\n",
		"#SBATCH --job-name=a\n#SBATCH --partition=cpu\n",
	}
	if _, err := ParseAll("x", sources); err == nil {
		t.Error("duplicate job names should fail")
	}
	// Cyclic dependencies.
	sources = []string{
		"#SBATCH --job-name=a\n#SBATCH --partition=cpu\n#SBATCH --dependency=afterok:b\n",
		"#SBATCH --job-name=b\n#SBATCH --partition=cpu\n#SBATCH --dependency=afterok:a\n",
	}
	if _, err := ParseAll("x", sources); err == nil {
		t.Error("cyclic dependencies should fail")
	}
	// Parse error inside ParseAll carries the script index.
	_, err = ParseAll("x", []string{"#SBATCH --nodes=2\n"})
	if err == nil || !strings.Contains(err.Error(), "script 0") {
		t.Errorf("ParseAll error should name the script: %v", err)
	}
}

func TestPartitionInheritance(t *testing.T) {
	// One script declares the partition; the other inherits it.
	sources := []string{
		"#SBATCH --job-name=a\n#SBATCH --partition=cpu\n",
		"#SBATCH --job-name=b\n#SBATCH --dependency=afterok:a\n",
	}
	w, err := ParseAll("x", sources)
	if err != nil {
		t.Fatal(err)
	}
	if w.Partition != "cpu" {
		t.Errorf("partition = %q", w.Partition)
	}
}
