package sbatch

import (
	"strings"
	"testing"
)

// FuzzParse asserts the sbatch extractor's contract on arbitrary script
// bodies: malformed input returns an attributed error, never a panic, and a
// script that parses can always seed a one-job workflow.
func FuzzParse(f *testing.F) {
	f.Add(`#!/bin/bash
#SBATCH --job-name=analyze0
#SBATCH --nodes=32
#SBATCH --ntasks=1024
#SBATCH --time=00:30:00
#SBATCH --partition=haswell
#SBATCH --output=analyze.%j.out
srun ./analyze
`)
	f.Add("#SBATCH -J merge\n#SBATCH -N 1\n#SBATCH -n 4\n#SBATCH -t 15\n")
	f.Add("#SBATCH --job-name=b\n#SBATCH --dependency=afterok:a\n")
	f.Add("#SBATCH --job-name=c\n#SBATCH --time=2-12:00:00\n")
	f.Add("#SBATCH\n")                               // empty directive
	f.Add("#SBATCH --nodes=4\n")                     // no job name
	f.Add("#SBATCH -J x\n#SBATCH --nodes=zero\n")    // bad int
	f.Add("#SBATCH -J x\n#SBATCH -N\n")              // short form missing value
	f.Add("#SBATCH -J x\n#SBATCH --time=99:99:99\n") // bad time fields
	f.Add("#SBATCH -J x\n#SBATCH --dependency=after:x\n")
	f.Add("echo no directives at all\n")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseScript(src)
		if err != nil {
			if s != nil {
				t.Fatalf("ParseScript returned both a script and an error: %v", err)
			}
			if !strings.HasPrefix(err.Error(), "sbatch:") {
				t.Fatalf("error not attributed to the package: %v", err)
			}
			return
		}
		if s.JobName == "" || s.Nodes <= 0 {
			t.Fatalf("accepted script violates invariants: %+v", s)
		}
		// A valid standalone script (no dangling dependencies, and a
		// partition for the workflow to adopt) must assemble.
		if len(s.DependsOn) == 0 && s.Partition != "" {
			if _, err := BuildWorkflow("fuzz", []*Script{s}); err != nil {
				t.Fatalf("BuildWorkflow on valid script: %v\n%+v", err, s)
			}
		}
	})
}
