// Package breakdown builds stacked time-breakdown models (the paper's
// Fig 5b and Fig 10b): for each scenario (a bar), how much time went to each
// category (a stack segment).
package breakdown

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Bar is one scenario's stacked times, e.g. "Good days" with
// {"Loading data": 1000, "Analysis": 20}.
type Bar struct {
	// Label names the scenario.
	Label string
	// Segments maps category to seconds.
	Segments map[string]float64
}

// Total returns the stack height.
func (b Bar) Total() float64 {
	t := 0.0
	for _, v := range b.Segments {
		t += v
	}
	return t
}

// Chart is an ordered set of bars sharing a category legend.
type Chart struct {
	// Title labels the chart.
	Title string
	// Categories fixes segment order; categories absent from a bar count as
	// zero. When empty, the union of bar categories (sorted) is used.
	Categories []string
	bars       []Bar
}

// New creates a chart with an optional fixed category order.
func New(title string, categories ...string) *Chart {
	return &Chart{Title: title, Categories: categories}
}

// Add appends a scenario bar. Negative segment values are rejected.
func (c *Chart) Add(label string, segments map[string]float64) error {
	if label == "" {
		return fmt.Errorf("breakdown: empty bar label")
	}
	cp := make(map[string]float64, len(segments))
	for k, v := range segments {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("breakdown: bar %q segment %q has invalid value %v", label, k, v)
		}
		cp[k] = v
	}
	c.bars = append(c.bars, Bar{Label: label, Segments: cp})
	return nil
}

// Bars returns the bars in insertion order.
func (c *Chart) Bars() []Bar {
	out := make([]Bar, len(c.bars))
	copy(out, c.bars)
	return out
}

// CategoryOrder returns the effective category order.
func (c *Chart) CategoryOrder() []string {
	if len(c.Categories) > 0 {
		out := make([]string, len(c.Categories))
		copy(out, c.Categories)
		return out
	}
	seen := map[string]bool{}
	for _, b := range c.bars {
		for k := range b.Segments {
			seen[k] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MaxTotal returns the tallest stack.
func (c *Chart) MaxTotal() float64 {
	m := 0.0
	for _, b := range c.bars {
		if t := b.Total(); t > m {
			m = t
		}
	}
	return m
}

// Render draws the chart as text with one line per bar and a shared scale:
//
//	Good days |LLLLLLLLLLLLLLLLLLLa              | 1020.0s
//	Bad days  |LLLLLLLLLLL...                    | 5100.0s
//
// Each category is drawn with the first letter of its name; width is the
// number of cells for the longest bar.
func (c *Chart) Render(width int) string {
	if width < 10 {
		width = 10
	}
	if len(c.bars) == 0 {
		return ""
	}
	maxTotal := c.MaxTotal()
	if maxTotal <= 0 {
		maxTotal = 1
	}
	cats := c.CategoryOrder()
	labelWidth := 0
	for _, b := range c.bars {
		if len(b.Label) > labelWidth {
			labelWidth = len(b.Label)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for _, b := range c.bars {
		row := make([]byte, 0, width)
		for _, cat := range cats {
			cells := int(math.Round(b.Segments[cat] / maxTotal * float64(width)))
			mark := byte('?')
			if len(cat) > 0 {
				mark = cat[0]
			}
			for i := 0; i < cells; i++ {
				row = append(row, mark)
			}
		}
		if len(row) > width {
			row = row[:width]
		}
		for len(row) < width {
			row = append(row, ' ')
		}
		fmt.Fprintf(&sb, "%-*s |%s| %.1fs\n", labelWidth, b.Label, row, b.Total())
	}
	// Legend.
	sb.WriteString("legend:")
	for _, cat := range cats {
		mark := "?"
		if len(cat) > 0 {
			mark = string(cat[0])
		}
		fmt.Fprintf(&sb, " %s=%s", mark, cat)
	}
	sb.WriteString("\n")
	return sb.String()
}

// Speedup returns bar a's total divided by bar b's total (how much faster b
// is), erroring on unknown labels or zero denominators.
func (c *Chart) Speedup(a, b string) (float64, error) {
	var ta, tb float64
	var fa, fb bool
	for _, bar := range c.bars {
		switch bar.Label {
		case a:
			ta, fa = bar.Total(), true
		case b:
			tb, fb = bar.Total(), true
		}
	}
	if !fa || !fb {
		return 0, fmt.Errorf("breakdown: unknown bars %q/%q", a, b)
	}
	if tb == 0 {
		return 0, fmt.Errorf("breakdown: bar %q has zero total", b)
	}
	return ta / tb, nil
}
