package breakdown

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func lclsChart(t *testing.T) *Chart {
	t.Helper()
	c := New("LCLS time breakdown", "Loading data", "Analysis")
	if err := c.Add("Good days", map[string]float64{"Loading data": 1000, "Analysis": 20}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("Bad days", map[string]float64{"Loading data": 5000, "Analysis": 100}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTotalsAndSpeedup(t *testing.T) {
	c := lclsChart(t)
	bars := c.Bars()
	if len(bars) != 2 {
		t.Fatalf("bars = %d", len(bars))
	}
	if bars[0].Total() != 1020 {
		t.Errorf("good total = %v", bars[0].Total())
	}
	if bars[1].Total() != 5100 {
		t.Errorf("bad total = %v", bars[1].Total())
	}
	s, err := c.Speedup("Bad days", "Good days")
	if err != nil {
		t.Fatal(err)
	}
	if got := s; math.Abs(got-5.0) > 0.01 {
		t.Errorf("bad/good = %v, want 5 (the paper's contention factor)", got)
	}
	if _, err := c.Speedup("nope", "Good days"); err == nil {
		t.Error("unknown bar should fail")
	}
}

func TestSpeedupZeroDenominator(t *testing.T) {
	c := New("x")
	if err := c.Add("a", map[string]float64{"s": 10}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("b", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Speedup("a", "b"); err == nil {
		t.Error("zero denominator should fail")
	}
}

func TestAddValidation(t *testing.T) {
	c := New("x")
	if err := c.Add("", map[string]float64{"s": 1}); err == nil {
		t.Error("empty label should fail")
	}
	for _, v := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := c.Add("bar", map[string]float64{"s": v}); err == nil {
			t.Errorf("segment value %v should fail", v)
		}
	}
}

func TestAddCopiesSegments(t *testing.T) {
	c := New("x")
	seg := map[string]float64{"s": 1}
	if err := c.Add("a", seg); err != nil {
		t.Fatal(err)
	}
	seg["s"] = 99
	if c.Bars()[0].Segments["s"] != 1 {
		t.Error("Add must copy the segment map")
	}
}

func TestCategoryOrder(t *testing.T) {
	c := lclsChart(t)
	if got := c.CategoryOrder(); !reflect.DeepEqual(got, []string{"Loading data", "Analysis"}) {
		t.Errorf("fixed order = %v", got)
	}
	auto := New("auto")
	if err := auto.Add("a", map[string]float64{"zeta": 1, "alpha": 2}); err != nil {
		t.Fatal(err)
	}
	if got := auto.CategoryOrder(); !reflect.DeepEqual(got, []string{"alpha", "zeta"}) {
		t.Errorf("auto order = %v", got)
	}
}

func TestMaxTotal(t *testing.T) {
	c := lclsChart(t)
	if c.MaxTotal() != 5100 {
		t.Errorf("max total = %v", c.MaxTotal())
	}
	if New("empty").MaxTotal() != 0 {
		t.Error("empty chart max total should be 0")
	}
}

func TestRender(t *testing.T) {
	c := lclsChart(t)
	out := c.Render(50)
	if !strings.Contains(out, "LCLS time breakdown") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "legend: L=Loading data A=Analysis") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "1020.0s") || !strings.Contains(out, "5100.0s") {
		t.Errorf("missing totals:\n%s", out)
	}
	// Bad-days bar should have roughly 5x the L cells of good days.
	var goodL, badL int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Good days") {
			goodL = strings.Count(line, "L")
		}
		if strings.HasPrefix(line, "Bad days") {
			badL = strings.Count(line, "L")
		}
	}
	if goodL == 0 || badL < 4*goodL {
		t.Errorf("bar proportions wrong: good L=%d, bad L=%d\n%s", goodL, badL, out)
	}
	if New("e").Render(30) != "" {
		t.Error("empty chart should render empty")
	}
}

func TestRenderAllZeroSegments(t *testing.T) {
	c := New("z")
	if err := c.Add("a", map[string]float64{"s": 0}); err != nil {
		t.Fatal(err)
	}
	out := c.Render(20)
	if !strings.Contains(out, "0.0s") {
		t.Errorf("zero chart render:\n%s", out)
	}
}
