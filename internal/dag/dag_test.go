package dag

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func lclsSkeleton(t *testing.T) *Graph {
	t.Helper()
	g, err := FanIn("F", "A", "B", "C", "D", "E")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddNodeAndEdge(t *testing.T) {
	g := New()
	if err := g.AddNode("A"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("A"); err != nil {
		t.Fatal("re-adding a node must be a no-op")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if err := g.AddEdge("A", "B"); err != nil {
		t.Fatal(err)
	}
	if !g.Has("B") {
		t.Error("AddEdge should create missing vertices")
	}
	if err := g.AddEdge("A", "A"); err == nil {
		t.Error("self edge should fail")
	}
	if err := g.AddNode(""); err == nil {
		t.Error("empty id should fail")
	}
	if got := g.Succs("A"); !reflect.DeepEqual(got, []string{"B"}) {
		t.Errorf("Succs(A) = %v", got)
	}
	if got := g.Preds("B"); !reflect.DeepEqual(got, []string{"A"}) {
		t.Errorf("Preds(B) = %v", got)
	}
}

func TestTopoSortLinear(t *testing.T) {
	g, err := Chain("a", "b", "c", "d")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(topo, []string{"a", "b", "c", "d"}) {
		t.Errorf("topo = %v", topo)
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.TopoSort(); err == nil {
		t.Error("cycle should be detected")
	}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("Validate = %v, want cycle error", err)
	}
}

func TestLevelsLCLS(t *testing.T) {
	g := lclsSkeleton(t)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(levels))
	}
	if !reflect.DeepEqual(levels[0], []string{"A", "B", "C", "D", "E"}) {
		t.Errorf("level 0 = %v", levels[0])
	}
	if !reflect.DeepEqual(levels[1], []string{"F"}) {
		t.Errorf("level 1 = %v", levels[1])
	}
	w, err := g.Width()
	if err != nil {
		t.Fatal(err)
	}
	if w != 5 {
		t.Errorf("width = %d, want 5 (LCLS parallel tasks)", w)
	}
	cpl, err := g.CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	if cpl != 2 {
		t.Errorf("critical path length = %d, want 2 (paper Fig 4)", cpl)
	}
}

func TestLevelsDiamond(t *testing.T) {
	g := New()
	for _, e := range [][2]string{{"s", "l"}, {"s", "r"}, {"l", "t"}, {"r", "t"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"s"}, {"l", "r"}, {"t"}}
	if !reflect.DeepEqual(levels, want) {
		t.Errorf("levels = %v, want %v", levels, want)
	}
}

// Unbalanced diamond: the long branch pushes the join deeper than the short
// branch alone would.
func TestLevelsLongestDistance(t *testing.T) {
	g := New()
	for _, e := range [][2]string{{"s", "a"}, {"a", "b"}, {"s", "t"}, {"b", "t"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 4 {
		t.Fatalf("levels = %v, want 4 levels", levels)
	}
	if !reflect.DeepEqual(levels[3], []string{"t"}) {
		t.Errorf("t should be at level 3, levels = %v", levels)
	}
}

func TestCriticalPathWeighted(t *testing.T) {
	g := lclsSkeleton(t)
	// Task C is the slow analysis; merge F is quick.
	w := map[string]float64{"A": 10, "B": 12, "C": 30, "D": 8, "E": 5, "F": 2}
	path, total, err := g.CriticalPath(w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(path, []string{"C", "F"}) {
		t.Errorf("critical path = %v, want [C F]", path)
	}
	if total != 32 {
		t.Errorf("critical path cost = %v, want 32", total)
	}
}

func TestCriticalPathEmptyAndSingle(t *testing.T) {
	g := New()
	path, total, err := g.CriticalPath(nil)
	if err != nil || len(path) != 0 || total != 0 {
		t.Errorf("empty graph: path=%v total=%v err=%v", path, total, err)
	}
	if err := g.AddNode("only"); err != nil {
		t.Fatal(err)
	}
	path, total, err = g.CriticalPath(map[string]float64{"only": 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(path, []string{"only"}) || total != 7 {
		t.Errorf("single: path=%v total=%v", path, total)
	}
}

// BGW invariant (paper Fig 7d): the critical path ordering is the same at 64
// and 1024 nodes even though the weights shrink.
func TestCriticalPathScaleInvariance(t *testing.T) {
	g, err := Chain("epsilon", "sigma")
	if err != nil {
		t.Fatal(err)
	}
	p64, t64, err := g.CriticalPath(map[string]float64{"epsilon": 490, "sigma": 1289})
	if err != nil {
		t.Fatal(err)
	}
	p1024, t1024, err := g.CriticalPath(map[string]float64{"epsilon": 28, "sigma": 79})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p64, p1024) {
		t.Errorf("critical path changed with scale: %v vs %v", p64, p1024)
	}
	if t64 <= t1024 {
		t.Errorf("64-node critical path (%v) should exceed 1024-node (%v)", t64, t1024)
	}
}

func TestDOT(t *testing.T) {
	g := lclsSkeleton(t)
	dot := g.DOT("lcls")
	for _, want := range []string{`digraph "lcls"`, `"A" -> "F";`, `"E" -> "F";`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestASCII(t *testing.T) {
	g := lclsSkeleton(t)
	s, err := g.ASCII()
	if err != nil {
		t.Fatal(err)
	}
	want := "level 0: A B C D E\nlevel 1: F\n"
	if s != want {
		t.Errorf("ASCII = %q, want %q", s, want)
	}
}

func TestChainAndFanInEdgeCases(t *testing.T) {
	g, err := Chain("solo")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Errorf("Chain single: len = %d", g.Len())
	}
	g, err = FanIn("sink")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 || !g.Has("sink") {
		t.Errorf("FanIn with no sources should still create the sink")
	}
}

// Property: for random DAGs built with edges that always go from a lower to
// a higher index, TopoSort succeeds, respects every edge, and Levels is
// consistent with the order.
func TestQuickRandomDAG(t *testing.T) {
	f := func(seed int64, nNodes uint8, nEdges uint8) bool {
		n := int(nNodes%20) + 2
		rng := rand.New(rand.NewSource(seed))
		g := New()
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("n%02d", i)
			if err := g.AddNode(ids[i]); err != nil {
				return false
			}
		}
		for e := 0; e < int(nEdges%40); e++ {
			i := rng.Intn(n - 1)
			j := i + 1 + rng.Intn(n-i-1)
			if err := g.AddEdge(ids[i], ids[j]); err != nil {
				return false
			}
		}
		topo, err := g.TopoSort()
		if err != nil || len(topo) != n {
			return false
		}
		pos := make(map[string]int, n)
		for i, id := range topo {
			pos[id] = i
		}
		for _, from := range g.Nodes() {
			for _, to := range g.Succs(from) {
				if pos[from] >= pos[to] {
					return false
				}
			}
		}
		levels, err := g.Levels()
		if err != nil {
			return false
		}
		lvl := make(map[string]int)
		total := 0
		for i, l := range levels {
			total += len(l)
			for _, id := range l {
				lvl[id] = i
			}
		}
		if total != n {
			return false
		}
		for _, from := range g.Nodes() {
			for _, to := range g.Succs(from) {
				if lvl[to] <= lvl[from] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: critical path total always equals the sum of its vertex weights
// and is at least the weight of any single vertex.
func TestQuickCriticalPathConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 2
		g := New()
		w := make(map[string]float64, n)
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("t%02d", i)
			if err := g.AddNode(ids[i]); err != nil {
				return false
			}
			w[ids[i]] = float64(rng.Intn(100) + 1)
		}
		for e := 0; e < n; e++ {
			i := rng.Intn(n - 1)
			j := i + 1 + rng.Intn(n-i-1)
			if err := g.AddEdge(ids[i], ids[j]); err != nil {
				return false
			}
		}
		path, total, err := g.CriticalPath(w)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, id := range path {
			sum += w[id]
		}
		if sum != total {
			return false
		}
		for _, id := range ids {
			if w[id] > total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
