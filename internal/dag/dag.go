// Package dag implements directed acyclic task graphs for workflow
// skeletons: construction, cycle detection, topological ordering, level
// decomposition (the paper's "number of parallel tasks" is the widest
// level), weighted critical paths, and DOT/ASCII export.
package dag

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is a directed acyclic graph of named task vertices. The zero value
// is not usable; create graphs with New.
type Graph struct {
	nodes map[string]bool
	// succ and pred store adjacency in both directions for O(degree)
	// traversal either way.
	succ map[string]map[string]bool
	pred map[string]map[string]bool
	// order preserves insertion order for deterministic iteration.
	order []string
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]bool),
		succ:  make(map[string]map[string]bool),
		pred:  make(map[string]map[string]bool),
	}
}

// AddNode inserts a vertex. Adding an existing vertex is a no-op so builders
// can be idempotent.
func (g *Graph) AddNode(id string) error {
	if id == "" {
		return fmt.Errorf("dag: empty node id")
	}
	if g.nodes[id] {
		return nil
	}
	g.nodes[id] = true
	g.succ[id] = make(map[string]bool)
	g.pred[id] = make(map[string]bool)
	g.order = append(g.order, id)
	return nil
}

// AddEdge inserts the dependency from -> to ("to" cannot start until "from"
// finishes), creating missing vertices. Self-edges are rejected immediately;
// cycles are detected by Validate / TopoSort.
func (g *Graph) AddEdge(from, to string) error {
	if from == to {
		return fmt.Errorf("dag: self edge on %q", from)
	}
	if err := g.AddNode(from); err != nil {
		return err
	}
	if err := g.AddNode(to); err != nil {
		return err
	}
	g.succ[from][to] = true
	g.pred[to][from] = true
	return nil
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.nodes) }

// Has reports whether the vertex exists.
func (g *Graph) Has(id string) bool { return g.nodes[id] }

// Nodes returns all vertex ids in insertion order.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Succs returns the successors of id, sorted.
func (g *Graph) Succs(id string) []string { return sortedKeys(g.succ[id]) }

// Preds returns the predecessors of id, sorted.
func (g *Graph) Preds(id string) []string { return sortedKeys(g.pred[id]) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TopoSort returns a topological order (Kahn's algorithm, tie-broken by
// insertion order for determinism) or an error naming a vertex on a cycle.
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for id := range g.nodes {
		indeg[id] = len(g.pred[id])
	}
	// Precompute each node's successors sorted by insertion order: visiting
	// them that way keeps the sort stable, and doing it once up front makes
	// the walk O(V + E log E) instead of rescanning every vertex per pop
	// (which is quadratic on long chains).
	idx := make(map[string]int, len(g.order))
	for i, id := range g.order {
		idx[id] = i
	}
	succs := make(map[string][]string, len(g.nodes))
	for id, set := range g.succ {
		if len(set) == 0 {
			continue
		}
		out := make([]string, 0, len(set))
		for s := range set {
			out = append(out, s)
		}
		sort.Slice(out, func(i, j int) bool { return idx[out[i]] < idx[out[j]] })
		succs[id] = out
	}
	var ready []string
	for _, id := range g.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	out := make([]string, 0, len(g.nodes))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		for _, s := range succs[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(out) != len(g.nodes) {
		for id, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("dag: cycle involving %q", id)
			}
		}
	}
	return out, nil
}

// Validate returns an error if the graph contains a cycle.
func (g *Graph) Validate() error {
	_, err := g.TopoSort()
	return err
}

// Levels partitions vertices by longest distance from a source: level 0 is
// the sources, level k holds vertices whose longest predecessor chain has k
// edges. This is the paper's level decomposition (LCLS: level 0 = A..E,
// level 1 = F).
func (g *Graph) Levels() ([][]string, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	level := make(map[string]int, len(topo))
	maxLevel := 0
	for _, id := range topo {
		l := 0
		for p := range g.pred[id] {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[id] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	out := make([][]string, maxLevel+1)
	for _, id := range g.order {
		l := level[id]
		out[l] = append(out[l], id)
	}
	return out, nil
}

// Width returns the size of the widest level — the maximum number of tasks
// that the skeleton allows to run concurrently, i.e. the paper's "number of
// parallel tasks" for an unconstrained system.
func (g *Graph) Width() (int, error) {
	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	w := 0
	for _, l := range levels {
		if len(l) > w {
			w = len(l)
		}
	}
	return w, nil
}

// CriticalPath returns the path with the maximum total weight and that
// total, where weight maps vertex id to its cost (e.g. seconds). Vertices
// missing from weight count as zero. The returned path lists vertices in
// execution order.
func (g *Graph) CriticalPath(weight map[string]float64) ([]string, float64, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, 0, err
	}
	if len(topo) == 0 {
		return nil, 0, nil
	}
	dist := make(map[string]float64, len(topo))
	prev := make(map[string]string, len(topo))
	for _, id := range topo {
		best := 0.0
		bestPrev := ""
		for p := range g.pred[id] {
			if dist[p] > best || (dist[p] == best && bestPrev == "") {
				best = dist[p]
				bestPrev = p
			}
		}
		dist[id] = best + weight[id]
		prev[id] = bestPrev
	}
	endID, endDist := "", -1.0
	for _, id := range topo {
		if dist[id] > endDist {
			endID, endDist = id, dist[id]
		}
	}
	var path []string
	for id := endID; id != ""; id = prev[id] {
		path = append(path, id)
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, endDist, nil
}

// CriticalPathLength returns the number of vertices on the longest chain
// (unit weights) — the paper's "critical path length" (LCLS: 2).
func (g *Graph) CriticalPathLength() (int, error) {
	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	return len(levels), nil
}

// DOT renders the graph in Graphviz DOT syntax.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for _, id := range g.order {
		fmt.Fprintf(&b, "  %q;\n", id)
	}
	for _, from := range g.order {
		for _, to := range g.Succs(from) {
			fmt.Fprintf(&b, "  %q -> %q;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders the level structure as indented text, one level per line:
//
//	level 0: A B C D E
//	level 1: F
func (g *Graph) ASCII() (string, error) {
	levels, err := g.Levels()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, l := range levels {
		fmt.Fprintf(&b, "level %d: %s\n", i, strings.Join(l, " "))
	}
	return b.String(), nil
}

// Chain builds a linear graph v1 -> v2 -> ... -> vn, a convenience for
// serialized workflows like GPTune's sample loop.
func Chain(ids ...string) (*Graph, error) {
	g := New()
	for i, id := range ids {
		if err := g.AddNode(id); err != nil {
			return nil, err
		}
		if i > 0 {
			if err := g.AddEdge(ids[i-1], id); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// FanIn builds sources s1..sn all feeding a single sink, the LCLS skeleton
// shape (A..E -> F).
func FanIn(sink string, sources ...string) (*Graph, error) {
	g := New()
	for _, s := range sources {
		if err := g.AddEdge(s, sink); err != nil {
			return nil, err
		}
	}
	if len(sources) == 0 {
		if err := g.AddNode(sink); err != nil {
			return nil, err
		}
	}
	return g, nil
}
