package pipeline

import (
	"math"
	"strings"
	"testing"

	"wroofline/internal/machine"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
	"wroofline/internal/workloads"
)

func almost(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= relTol*math.Max(math.Abs(a), math.Abs(b))
}

func TestTaskBoundSecondsMaxRule(t *testing.T) {
	pm := machine.Perlmutter()
	// Compute takes 1 s at peak, PCIe 0.8 s, FS 0.357 s: the bound is the
	// max (1 s), not the sum.
	task := &workflow.Task{ID: "t", Nodes: 1, Work: workflow.Work{
		Flops:     38.8 * units.TFLOP,
		PCIeBytes: 80 * units.GB,
		FSBytes:   2 * units.TB,
	}}
	b, err := TaskBoundSeconds(pm, machine.PartGPU, task)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(b, 1, 1e-9) {
		t.Errorf("bound = %v, want 1 (max component)", b)
	}
}

func TestTaskBoundSecondsErrors(t *testing.T) {
	pm := machine.Perlmutter()
	// PCIe work on the CPU partition (no PCIe peak).
	task := &workflow.Task{ID: "t", Nodes: 1, Work: workflow.Work{PCIeBytes: units.GB}}
	if _, err := TaskBoundSeconds(pm, machine.PartCPU, task); err == nil {
		t.Error("PCIe work without a PCIe peak should fail")
	}
	// External work without external bandwidth.
	noExt := pm.WithExternalBW(0)
	task2 := &workflow.Task{ID: "t", Nodes: 1, Work: workflow.Work{ExternalBytes: units.GB}}
	if _, err := TaskBoundSeconds(noExt, machine.PartCPU, task2); err == nil {
		t.Error("external work without external bandwidth should fail")
	}
	// Unknown partition.
	if _, err := TaskBoundSeconds(pm, "nope", task); err == nil {
		t.Error("unknown partition should fail")
	}
	// Empty work: zero bound.
	b, err := TaskBoundSeconds(pm, machine.PartGPU, &workflow.Task{ID: "t", Nodes: 1})
	if err != nil || b != 0 {
		t.Errorf("empty work bound = %v, %v", b, err)
	}
}

func TestAnalyzeBGW(t *testing.T) {
	cs, err := workloads.BGW(64)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(cs.Machine, cs.Workflow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Levels) != 2 {
		t.Fatalf("levels = %d, want 2 (epsilon -> sigma)", len(a.Levels))
	}
	if a.Levels[0].BottleneckTask != "epsilon" || a.Levels[1].BottleneckTask != "sigma" {
		t.Errorf("bottlenecks: %q, %q", a.Levels[0].BottleneckTask, a.Levels[1].BottleneckTask)
	}
	// Sigma's level dominates the measured makespan.
	if a.BottleneckLevel != 1 {
		t.Errorf("bottleneck level = %d, want 1 (Sigma)", a.BottleneckLevel)
	}
	// Measured sums to the paper's 4184.86 s.
	if !almost(a.MeasuredMakespan, workloads.BGWMeasured64, 1e-6) {
		t.Errorf("measured makespan = %v, want %v", a.MeasuredMakespan, workloads.BGWMeasured64)
	}
	// The pipeline efficiency matches the paper's ~42% of node peak (BGW's
	// per-task bound is its compute time).
	if eff := a.PipelineEfficiency(); !almost(eff, 0.42, 0.03) {
		t.Errorf("pipeline efficiency = %v, want ~0.42", eff)
	}
	// One wave per level (width 1).
	for _, l := range a.Levels {
		if l.Waves != 1 {
			t.Errorf("level %d waves = %d", l.Index, l.Waves)
		}
	}
}

func TestAnalyzeWavesUnderWall(t *testing.T) {
	pm := machine.Perlmutter()
	// 30 parallel 64-node tasks on the GPU partition: the wall is 28, so
	// the level needs 2 waves.
	w := workflow.New("waves", machine.PartGPU)
	for i := 0; i < 30; i++ {
		id := string(rune('a' + i/26))
		id = id + string(rune('a'+i%26))
		if err := w.AddTask(&workflow.Task{
			ID: id, Nodes: 64,
			Work: workflow.Work{Flops: 38.8 * units.TFLOP},
		}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := Analyze(pm, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Levels) != 1 {
		t.Fatalf("levels = %d", len(a.Levels))
	}
	l := a.Levels[0]
	if l.Waves != 2 {
		t.Errorf("waves = %d, want 2 (30 tasks over a wall of 28)", l.Waves)
	}
	if !almost(l.BoundSeconds, 2, 1e-9) {
		t.Errorf("level bound = %v, want 2 (two 1 s waves)", l.BoundSeconds)
	}
}

func TestAnalyzeLCLS(t *testing.T) {
	cs, err := workloads.LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(cs.Machine, cs.Workflow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Levels) != 2 {
		t.Fatalf("levels = %d", len(a.Levels))
	}
	// Level 0 (analysis) is external-bound: 1 TB @ 1 GB/s = 1000 s each.
	if !almost(a.Levels[0].BoundSeconds, 1000, 1e-9) {
		t.Errorf("level 0 bound = %v, want 1000", a.Levels[0].BoundSeconds)
	}
	// The bound makespan is dominated by level 0.
	if a.BottleneckLevel != 0 {
		t.Errorf("bottleneck level = %d, want 0", a.BottleneckLevel)
	}
	if a.PipelineEfficiency() != 0 {
		t.Errorf("no measurements -> efficiency 0, got %v", a.PipelineEfficiency())
	}
}

func TestAnalyzeErrors(t *testing.T) {
	pm := machine.Perlmutter()
	empty := workflow.New("e", machine.PartGPU)
	if _, err := Analyze(pm, empty, 0); err == nil {
		t.Error("empty workflow should fail")
	}
	big := workflow.New("big", machine.PartGPU)
	if err := big.AddTask(&workflow.Task{ID: "t", Nodes: 64}); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(pm, big, 32); err == nil {
		t.Error("level needing more nodes than available should fail")
	}
	badPart := workflow.New("p", "nope")
	if err := badPart.AddTask(&workflow.Task{ID: "t", Nodes: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(pm, badPart, 0); err == nil {
		t.Error("unknown partition should fail")
	}
}

func TestAnalysisTable(t *testing.T) {
	cs, err := workloads.BGW(64)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(cs.Machine, cs.Workflow, 0)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := a.Table("BGW pipeline")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BGW pipeline", "level", "sigma", "epsilon", "waves"} {
		if !strings.Contains(txt, want) {
			t.Errorf("table missing %q:\n%s", want, txt)
		}
	}
}
