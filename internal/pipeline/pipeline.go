// Package pipeline analyzes workflow performance level by level. The paper
// names this its first limitation: "the total number of tasks, or critical
// path length, is hidden in the y-axis (throughput); therefore, learning
// whether the poor pipeline strategy limits the workflow's performance is
// not intuitive." This package makes it explicit: it decomposes the DAG
// into levels, bounds each level from machine peaks and the parallelism
// wall, compares with measured times, and names the bottleneck stage.
package pipeline

import (
	"fmt"
	"math"

	"wroofline/internal/machine"
	"wroofline/internal/report"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// TaskBoundSeconds returns the roofline lower bound for one task: the
// maximum over its work components of time-at-peak (the slowest single
// resource bounds the task, all else can overlap in the best case).
func TaskBoundSeconds(m *machine.Machine, partition string, t *workflow.Task) (float64, error) {
	part, err := m.Partition(partition)
	if err != nil {
		return 0, err
	}
	bound := 0.0
	consider := func(secs float64, what string) error {
		if math.IsInf(secs, 1) {
			return fmt.Errorf("pipeline: task %q uses %s but the machine has no peak for it", t.ID, what)
		}
		if secs > bound {
			bound = secs
		}
		return nil
	}
	if t.Work.Flops > 0 {
		if err := consider(units.TimeToCompute(t.Work.Flops, part.NodeFlops), "compute"); err != nil {
			return 0, err
		}
	}
	if t.Work.MemBytes > 0 {
		if err := consider(units.TimeToMove(t.Work.MemBytes, part.NodeMemBW), "memory"); err != nil {
			return 0, err
		}
	}
	if t.Work.PCIeBytes > 0 {
		if err := consider(units.TimeToMove(t.Work.PCIeBytes, part.NodePCIeBW), "pcie"); err != nil {
			return 0, err
		}
	}
	if t.Work.NetworkBytes > 0 {
		if err := consider(units.TimeToMove(t.Work.NetworkBytes, part.NodeNICBW), "network"); err != nil {
			return 0, err
		}
	}
	if t.Work.FSBytes > 0 {
		fsBW, err := m.FSBandwidth(partition)
		if err != nil {
			return 0, err
		}
		if err := consider(units.TimeToMove(t.Work.FSBytes, fsBW), "filesystem"); err != nil {
			return 0, err
		}
	}
	if t.Work.ExternalBytes > 0 {
		if m.ExternalBW <= 0 {
			return 0, fmt.Errorf("pipeline: task %q stages external data but the machine has no external bandwidth", t.ID)
		}
		if err := consider(units.TimeToMove(t.Work.ExternalBytes, m.ExternalBW), "external"); err != nil {
			return 0, err
		}
	}
	return bound, nil
}

// LevelStat summarizes one DAG level.
type LevelStat struct {
	// Index is the level number (0 = sources).
	Index int
	// Tasks lists the level's task ids.
	Tasks []string
	// Width is len(Tasks).
	Width int
	// Waves is how many scheduling waves the level needs under the
	// parallelism wall: ceil(Width / wall-for-this-level's-tasks).
	Waves int
	// BoundSeconds is the model lower bound for the level: Waves x the
	// slowest task bound in the level.
	BoundSeconds float64
	// MeasuredSeconds is the slowest measured task time in the level times
	// Waves (0 when no task carries a measurement).
	MeasuredSeconds float64
	// BottleneckTask is the task with the largest bound in the level.
	BottleneckTask string
}

// Analysis is the level decomposition of a workflow on a machine.
type Analysis struct {
	// Levels in execution order.
	Levels []LevelStat
	// BoundMakespan is the sum of level bounds — the pipeline-aware lower
	// bound on the makespan.
	BoundMakespan float64
	// MeasuredMakespan is the sum of measured level times (0 when no
	// measurements are present).
	MeasuredMakespan float64
	// BottleneckLevel is the index of the level with the largest measured
	// time (falling back to the largest bound when unmeasured).
	BottleneckLevel int
}

// PipelineEfficiency returns BoundMakespan / MeasuredMakespan in (0, 1]; 0
// when there are no measurements.
func (a *Analysis) PipelineEfficiency() float64 {
	if a.MeasuredMakespan <= 0 {
		return 0
	}
	return a.BoundMakespan / a.MeasuredMakespan
}

// Analyze decomposes the workflow into levels and bounds each one. The
// availableNodes argument sizes the wall (0 uses the partition's full node
// count).
func Analyze(m *machine.Machine, w *workflow.Workflow, availableNodes int) (*Analysis, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	part, err := m.Partition(w.Partition)
	if err != nil {
		return nil, err
	}
	nodes := part.Nodes
	if availableNodes > 0 {
		nodes = availableNodes
	}
	levels, err := w.Graph().Levels()
	if err != nil {
		return nil, err
	}

	a := &Analysis{}
	bestMetric := -1.0
	for i, ids := range levels {
		st := LevelStat{Index: i, Tasks: ids, Width: len(ids)}
		maxBound, maxMeasured := 0.0, 0.0
		maxNodes := 0
		for _, id := range ids {
			t, err := w.Task(id)
			if err != nil {
				return nil, err
			}
			b, err := TaskBoundSeconds(m, w.Partition, t)
			if err != nil {
				return nil, err
			}
			if b > maxBound {
				maxBound = b
				st.BottleneckTask = id
			}
			if t.MeasuredSeconds > maxMeasured {
				maxMeasured = t.MeasuredSeconds
			}
			if t.Nodes > maxNodes {
				maxNodes = t.Nodes
			}
		}
		if maxNodes > nodes {
			return nil, fmt.Errorf("pipeline: level %d needs %d nodes per task but only %d are available",
				i, maxNodes, nodes)
		}
		wall := nodes / maxNodes
		st.Waves = (st.Width + wall - 1) / wall
		st.BoundSeconds = float64(st.Waves) * maxBound
		st.MeasuredSeconds = float64(st.Waves) * maxMeasured
		a.Levels = append(a.Levels, st)
		a.BoundMakespan += st.BoundSeconds
		a.MeasuredMakespan += st.MeasuredSeconds

		metric := st.MeasuredSeconds
		if metric == 0 {
			metric = st.BoundSeconds
		}
		if metric > bestMetric {
			bestMetric = metric
			a.BottleneckLevel = i
		}
	}
	return a, nil
}

// Table renders the analysis as aligned text.
func (a *Analysis) Table(title string) (string, error) {
	tbl := report.NewTable(title, "level", "width", "waves", "bound (s)", "measured (s)", "bottleneck task")
	for _, l := range a.Levels {
		if err := tbl.AddRowf(l.Index, l.Width, l.Waves, l.BoundSeconds, l.MeasuredSeconds, l.BottleneckTask); err != nil {
			return "", err
		}
	}
	return tbl.Text(), nil
}
