package wdl

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

const lclsSrc = `
# The LCLS skeleton of Fig 4.
workflow LCLS on haswell
target makespan 10m
target throughput 0.01

task A nodes=32 procs=1024 external=1 TB fs=1 TB mem=32 GB
task B nodes=32 procs=1024 external=1 TB fs=1 TB mem=32 GB
task C nodes=32 procs=1024 external=1 TB fs=1 TB mem=32 GB
task D nodes=32 procs=1024 external=1 TB fs=1 TB mem=32 GB
task E nodes=32 procs=1024 external=1 TB fs=1 TB mem=32 GB
task F name="merge step" nodes=1 fs=5 GB

A B C D E -> F
`

func TestParseLCLS(t *testing.T) {
	w, err := Parse(lclsSrc)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "LCLS" || w.Partition != "haswell" {
		t.Errorf("identity: %q on %q", w.Name, w.Partition)
	}
	if w.Targets.MakespanSeconds != 600 {
		t.Errorf("makespan target = %v", w.Targets.MakespanSeconds)
	}
	if w.Targets.ThroughputTPS != 0.01 {
		t.Errorf("throughput target = %v", w.Targets.ThroughputTPS)
	}
	if w.TotalTasks() != 6 {
		t.Errorf("tasks = %d", w.TotalTasks())
	}
	p, err := w.ParallelTasks()
	if err != nil {
		t.Fatal(err)
	}
	if p != 5 {
		t.Errorf("parallel tasks = %d", p)
	}
	a, err := w.Task("A")
	if err != nil {
		t.Fatal(err)
	}
	if a.Work.ExternalBytes != 1*units.TB || a.Work.MemBytes != 32*units.GB {
		t.Errorf("A work = %+v", a.Work)
	}
	if a.Procs != 1024 || a.Nodes != 32 {
		t.Errorf("A sizing = %d nodes %d procs", a.Nodes, a.Procs)
	}
	f, err := w.Task("F")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "merge step" {
		t.Errorf("quoted name = %q", f.Name)
	}
}

func TestParseMeasuredAndFlops(t *testing.T) {
	src := `workflow BGW on gpu
task epsilon nodes=64 flops=18.19 PFLOP net=84 GB fs=35 GB measured=1109.6
task sigma nodes=64 flops=50.4 PFLOP net=84 GB fs=35 GB measured=3075.2
epsilon -> sigma
`
	w, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := w.Task("epsilon")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(eps.Work.Flops)-18.19e15) > 1e9 {
		t.Errorf("flops = %v", float64(eps.Work.Flops))
	}
	if eps.MeasuredSeconds != 1109.6 {
		t.Errorf("measured = %v", eps.MeasuredSeconds)
	}
	path, total, err := w.CriticalPathMeasured()
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || math.Abs(total-4184.8) > 0.1 {
		t.Errorf("critical path %v total %v", path, total)
	}
}

func TestParseDurations(t *testing.T) {
	for src, want := range map[string]float64{
		"target makespan 600":   600,
		"target makespan 10m":   600,
		"target makespan 1.5h":  5400,
		"target makespan 553s":  553,
		"target makespan 500ms": 0.5,
	} {
		w, err := Parse("workflow x on p\ntask t nodes=1\n" + src + "\n")
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if w.Targets.MakespanSeconds != want {
			t.Errorf("%q -> %v, want %v", src, w.Targets.MakespanSeconds, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing header":     "task t nodes=1\n",
		"bad header":         "workflow justname\ntask t nodes=1\n",
		"empty name":         "workflow  on p\ntask t nodes=1\n",
		"dup header":         "workflow a on p\nworkflow b on p\ntask t nodes=1\n",
		"unknown stmt":       "workflow a on p\nfrobnicate\n",
		"unknown target":     "workflow a on p\ntarget widgets 3\ntask t nodes=1\n",
		"bad throughput":     "workflow a on p\ntarget throughput -1\ntask t nodes=1\n",
		"bad makespan":       "workflow a on p\ntarget makespan soon\ntask t nodes=1\n",
		"neg duration":       "workflow a on p\ntarget makespan -5\ntask t nodes=1\n",
		"task no id":         "workflow a on p\ntask \n",
		"bad nodes":          "workflow a on p\ntask t nodes=lots\n",
		"unknown attr":       "workflow a on p\ntask t nodes=1 color=red\n",
		"bad bytes":          "workflow a on p\ntask t nodes=1 fs=1 XB\n",
		"edge unknown":       "workflow a on p\ntask t nodes=1\nt -> u\n",
		"edge one side":      "workflow a on p\ntask t nodes=1\nt -> \n",
		"target no header":   "target makespan 5\n",
		"task dup":           "workflow a on p\ntask t nodes=1\ntask t nodes=2\n",
		"unterminated quote": "workflow a on p\ntask t nodes=1 name=\"oops\n",
		"cycle":              "workflow a on p\ntask t nodes=1\ntask u nodes=1\nt -> u\nu -> t\n",
		"empty value":        "workflow a on p\ntask t nodes=\n",
		"no tasks":           "workflow a on p\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse should fail:\n%s", name, src)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Parse("workflow a on p\n\n\nbogus statement\n")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error should carry the line number, got %v", err)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	w, err := Parse("# leading comment\nworkflow a on p # trailing\n\ntask t nodes=1 # another\n")
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalTasks() != 1 {
		t.Errorf("tasks = %d", w.TotalTasks())
	}
}

func TestFanEdges(t *testing.T) {
	src := `workflow fan on p
task a nodes=1
task b nodes=1
task c nodes=1
task d nodes=1
a b -> c d
`
	w, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := w.Graph()
	for _, from := range []string{"a", "b"} {
		succs := g.Succs(from)
		if len(succs) != 2 {
			t.Errorf("%s succs = %v", from, succs)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	w, err := Parse(lclsSrc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Format(w)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(out)
	if err != nil {
		t.Fatalf("formatted output does not re-parse: %v\n%s", err, out)
	}
	if back.TotalTasks() != w.TotalTasks() {
		t.Errorf("tasks: %d vs %d", back.TotalTasks(), w.TotalTasks())
	}
	p1, _ := w.ParallelTasks()
	p2, _ := back.ParallelTasks()
	if p1 != p2 {
		t.Errorf("width: %d vs %d", p1, p2)
	}
	if back.Targets != w.Targets {
		t.Errorf("targets: %+v vs %+v", back.Targets, w.Targets)
	}
	a1, _ := w.Task("A")
	a2, _ := back.Task("A")
	if a1.Work != a2.Work {
		t.Errorf("work: %+v vs %+v", a1.Work, a2.Work)
	}
	f1, _ := w.Task("F")
	f2, _ := back.Task("F")
	if f1.Name != f2.Name {
		t.Errorf("name: %q vs %q", f1.Name, f2.Name)
	}
}

func TestFormatInvalid(t *testing.T) {
	if _, err := Format(workflow.New("x", "p")); err == nil {
		t.Error("formatting an empty workflow should fail")
	}
}

// Property: Format(Parse(x)) is a fixed point — formatting the re-parsed
// output is byte-identical to the first formatting.
func TestQuickFormatFixedPoint(t *testing.T) {
	f := func(nTasks uint8, nodes uint8, fsGB uint16) bool {
		n := int(nTasks%6) + 1
		w := workflow.New("q", "p")
		for i := 0; i < n; i++ {
			id := string(rune('a' + i))
			if err := w.AddTask(&workflow.Task{
				ID: id, Nodes: int(nodes%8) + 1,
				Work: workflow.Work{FSBytes: units.Bytes(fsGB) * units.GB},
			}); err != nil {
				return false
			}
			if i > 0 {
				if err := w.AddDep(string(rune('a'+i-1)), id); err != nil {
					return false
				}
			}
		}
		s1, err := Format(w)
		if err != nil {
			return false
		}
		back, err := Parse(s1)
		if err != nil {
			return false
		}
		s2, err := Format(back)
		if err != nil {
			return false
		}
		return s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
