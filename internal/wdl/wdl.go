// Package wdl implements a small workflow description language. The paper
// obtains the number of parallel tasks "from the workflow description, e.g.
// sbatch and Workflow Description Language (WDL)"; this package provides a
// native equivalent: a line-oriented text format that declares tasks with
// their characterized work and dependencies, and parses into a
// workflow.Workflow.
//
// Grammar (one statement per line; '#' starts a comment):
//
//	workflow <name> on <partition>
//	target makespan <duration>            # e.g. 600s, 10m
//	target throughput <tasks/sec>
//	task <id> [name="<label>"] nodes=<n> [procs=<n>] [flops=<q>] [mem=<q>]
//	     [pcie=<q>] [net=<q>] [fs=<q>] [external=<q>] [measured=<duration>]
//	<id> [<id>...] -> <id> [<id>...]      # all left tasks precede all right
//
// Quantities use the units package syntax ("1 TB", "38.8 TFLOPS" is not
// needed here — work is volumes/counts like "1164 PFLOP"). Durations accept
// Go syntax ("10m", "553s") or bare seconds.
package wdl

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// Parse reads a workflow description and returns the validated workflow.
func Parse(src string) (*workflow.Workflow, error) {
	p := &parser{}
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.statement(line); err != nil {
			return nil, fmt.Errorf("wdl: line %d: %w", i+1, err)
		}
	}
	if p.wf == nil {
		return nil, fmt.Errorf("wdl: missing 'workflow <name> on <partition>' header")
	}
	// Apply deferred dependency edges (tasks may be declared in any order).
	for _, d := range p.deps {
		if err := p.wf.AddDep(d.from, d.to); err != nil {
			return nil, fmt.Errorf("wdl: %w", err)
		}
	}
	if err := p.wf.Validate(); err != nil {
		return nil, err
	}
	return p.wf, nil
}

type dep struct{ from, to string }

type parser struct {
	wf   *workflow.Workflow
	deps []dep
}

func (p *parser) statement(line string) error {
	switch {
	case strings.HasPrefix(line, "workflow "):
		return p.header(line)
	case strings.HasPrefix(line, "target "):
		return p.target(line)
	case strings.HasPrefix(line, "task "):
		return p.task(line)
	case strings.Contains(line, "->"):
		return p.edge(line)
	default:
		return fmt.Errorf("unrecognized statement %q", line)
	}
}

// header parses "workflow <name> on <partition>".
func (p *parser) header(line string) error {
	if p.wf != nil {
		return fmt.Errorf("duplicate workflow header")
	}
	rest := strings.TrimPrefix(line, "workflow ")
	parts := strings.SplitN(rest, " on ", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want 'workflow <name> on <partition>', got %q", line)
	}
	name := strings.TrimSpace(parts[0])
	part := strings.TrimSpace(parts[1])
	if name == "" || part == "" {
		return fmt.Errorf("empty workflow name or partition in %q", line)
	}
	p.wf = workflow.New(name, part)
	return nil
}

// target parses "target makespan 600s" / "target throughput 0.01".
func (p *parser) target(line string) error {
	if p.wf == nil {
		return fmt.Errorf("target before workflow header")
	}
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return fmt.Errorf("want 'target makespan|throughput <value>', got %q", line)
	}
	switch fields[1] {
	case "makespan":
		secs, err := parseDuration(fields[2])
		if err != nil {
			return err
		}
		p.wf.Targets.MakespanSeconds = secs
	case "throughput":
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad throughput %q", fields[2])
		}
		p.wf.Targets.ThroughputTPS = v
	default:
		return fmt.Errorf("unknown target %q", fields[1])
	}
	return nil
}

// task parses a task declaration with key=value attributes. Values may be
// quoted to contain spaces ("1 TB" works unquoted too because the splitter
// respects quotes and treats "key=" as the only separator).
func (p *parser) task(line string) error {
	if p.wf == nil {
		return fmt.Errorf("task before workflow header")
	}
	rest := strings.TrimSpace(strings.TrimPrefix(line, "task "))
	if rest == "" {
		return fmt.Errorf("task with no id")
	}
	// First token is the id; the remainder is key=value pairs.
	sp := strings.IndexAny(rest, " \t")
	id := rest
	attrs := ""
	if sp >= 0 {
		id, attrs = rest[:sp], strings.TrimSpace(rest[sp+1:])
	}
	t := &workflow.Task{ID: id}
	pairs, err := splitAttrs(attrs)
	if err != nil {
		return err
	}
	for _, kv := range pairs {
		key, val := kv[0], kv[1]
		switch key {
		case "name":
			t.Name = val
		case "nodes":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bad nodes %q", val)
			}
			t.Nodes = n
		case "procs":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bad procs %q", val)
			}
			t.Procs = n
		case "flops":
			q, err := units.ParseFlops(val)
			if err != nil {
				return err
			}
			t.Work.Flops = q
		case "mem":
			q, err := units.ParseBytes(val)
			if err != nil {
				return err
			}
			t.Work.MemBytes = q
		case "pcie":
			q, err := units.ParseBytes(val)
			if err != nil {
				return err
			}
			t.Work.PCIeBytes = q
		case "net":
			q, err := units.ParseBytes(val)
			if err != nil {
				return err
			}
			t.Work.NetworkBytes = q
		case "fs":
			q, err := units.ParseBytes(val)
			if err != nil {
				return err
			}
			t.Work.FSBytes = q
		case "external":
			q, err := units.ParseBytes(val)
			if err != nil {
				return err
			}
			t.Work.ExternalBytes = q
		case "measured":
			secs, err := parseDuration(val)
			if err != nil {
				return err
			}
			t.MeasuredSeconds = secs
		default:
			return fmt.Errorf("unknown task attribute %q", key)
		}
	}
	return p.wf.AddTask(t)
}

// edge parses "<ids> -> <ids>"; every left id precedes every right id.
func (p *parser) edge(line string) error {
	if p.wf == nil {
		return fmt.Errorf("dependency before workflow header")
	}
	parts := strings.SplitN(line, "->", 2)
	froms := strings.Fields(parts[0])
	tos := strings.Fields(parts[1])
	if len(froms) == 0 || len(tos) == 0 {
		return fmt.Errorf("dependency needs tasks on both sides of '->', got %q", line)
	}
	for _, f := range froms {
		for _, t := range tos {
			p.deps = append(p.deps, dep{from: f, to: t})
		}
	}
	return nil
}

// splitAttrs tokenizes `a=1 b="two words" c=3 GB` into key/value pairs:
// an unquoted value extends until the next token containing '=' (so byte
// quantities with spaces need no quotes).
func splitAttrs(s string) ([][2]string, error) {
	var out [][2]string
	fields, err := splitQuoted(s)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(fields); i++ {
		f := fields[i]
		eq := strings.IndexByte(f, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("expected key=value, got %q", f)
		}
		key, val := f[:eq], f[eq+1:]
		// Absorb following fields that are continuation of an unquoted
		// value (no '=' in them), e.g. "fs=1 TB".
		for i+1 < len(fields) && !strings.Contains(fields[i+1], "=") {
			val += " " + fields[i+1]
			i++
		}
		if val == "" {
			return nil, fmt.Errorf("empty value for %q", key)
		}
		out = append(out, [2]string{key, val})
	}
	return out, nil
}

// splitQuoted splits on whitespace, honoring double quotes (which are
// stripped). A field like name="A B" comes back as `name=A B`.
func splitQuoted(s string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote in %q", s)
	}
	flush()
	return out, nil
}

// parseDuration accepts Go duration syntax ("10m", "553s", "1.5h") or bare
// seconds ("600"), returning seconds.
func parseDuration(s string) (float64, error) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		if v <= 0 {
			return 0, fmt.Errorf("duration must be positive, got %q", s)
		}
		return v, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %w", s, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("duration must be positive, got %q", s)
	}
	return d.Seconds(), nil
}

// Format renders a workflow back into the description language; Parse and
// Format round-trip.
func Format(w *workflow.Workflow) (string, error) {
	if err := w.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "workflow %s on %s\n", w.Name, w.Partition)
	if w.Targets.MakespanSeconds > 0 {
		fmt.Fprintf(&sb, "target makespan %s\n", trimFloat(w.Targets.MakespanSeconds))
	}
	if w.Targets.ThroughputTPS > 0 {
		fmt.Fprintf(&sb, "target throughput %s\n", trimFloat(w.Targets.ThroughputTPS))
	}
	for _, t := range w.Tasks() {
		fmt.Fprintf(&sb, "task %s", t.ID)
		if t.Name != "" {
			fmt.Fprintf(&sb, " name=%q", t.Name)
		}
		fmt.Fprintf(&sb, " nodes=%d", t.Nodes)
		if t.Procs > 0 {
			fmt.Fprintf(&sb, " procs=%d", t.Procs)
		}
		writeQty := func(key string, v float64) {
			if v > 0 {
				fmt.Fprintf(&sb, " %s=%s", key, trimFloat(v))
			}
		}
		writeQty("flops", float64(t.Work.Flops))
		writeQty("mem", float64(t.Work.MemBytes))
		writeQty("pcie", float64(t.Work.PCIeBytes))
		writeQty("net", float64(t.Work.NetworkBytes))
		writeQty("fs", float64(t.Work.FSBytes))
		writeQty("external", float64(t.Work.ExternalBytes))
		writeQty("measured", t.MeasuredSeconds)
		sb.WriteByte('\n')
	}
	g := w.Graph()
	for _, from := range g.Nodes() {
		for _, to := range g.Succs(from) {
			fmt.Fprintf(&sb, "%s -> %s\n", from, to)
		}
	}
	return sb.String(), nil
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
