package wdl_test

import (
	"fmt"

	"wroofline/internal/wdl"
)

// Example parses a workflow description and reports its structure.
func Example() {
	w, err := wdl.Parse(`
workflow demo on gpu
target makespan 10m
task prep nodes=1 fs=100 GB
task solve nodes=64 flops=388 TFLOP
task post nodes=1 fs=10 GB
prep -> solve
solve -> post
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	p, _ := w.ParallelTasks()
	cpl, _ := w.Graph().CriticalPathLength()
	fmt.Printf("%s: %d tasks, width %d, critical path %d\n",
		w.Name, w.TotalTasks(), p, cpl)
	// Output:
	// demo: 3 tasks, width 1, critical path 3
}
