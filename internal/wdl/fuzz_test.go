package wdl

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser's contract on arbitrary input: malformed
// sources return an error (prefixed "wdl:" so callers can attribute it),
// never a panic, and anything that parses survives a Format/Parse
// round-trip.
func FuzzParse(f *testing.F) {
	f.Add(lclsSrc)
	f.Add("workflow W on cpu\ntask A nodes=1\n")
	f.Add("workflow W on cpu\ntarget makespan 10m\ntask A nodes=2 flops=1 TFLOP\ntask B nodes=1\nA -> B\n")
	f.Add("workflow W on gpu\ntask A name=\"quoted label\" nodes=1 measured=553s\n")
	f.Add("# only a comment\n")
	f.Add("workflow W on cpu\ntask A nodes=1\ntask A nodes=1\n") // duplicate id
	f.Add("workflow W on cpu\ntask A nodes=1\nA -> A\n")         // self-edge
	f.Add("task A nodes=1\n")                                    // missing header
	f.Add("workflow W on cpu\ntask A nodes=-3\n")
	f.Add("workflow W on cpu\ntask A nodes=1 mem=\n")
	f.Add("workflow W on cpu\ntask A nodes=1 fs=1 XB\n")
	f.Add("workflow\nA ->\n-> B\n")
	f.Add(strings.Repeat("workflow W on cpu\n", 3))
	f.Fuzz(func(t *testing.T, src string) {
		w, err := Parse(src)
		if err != nil {
			if w != nil {
				t.Fatalf("Parse returned both a workflow and an error: %v", err)
			}
			if !strings.HasPrefix(err.Error(), "wdl:") && !strings.HasPrefix(err.Error(), "workflow") {
				t.Fatalf("error not attributed to a package: %v", err)
			}
			return
		}
		// A parsed workflow must re-format and re-parse cleanly.
		text, err := Format(w)
		if err != nil {
			t.Fatalf("Format after successful Parse: %v", err)
		}
		if _, err := Parse(text); err != nil {
			t.Fatalf("re-Parse of Format output: %v\n%s", err, text)
		}
	})
}
