// Package machine characterizes HPC system architectures for the Workflow
// Roofline model: per-node peaks (compute, memory, PCIe, NIC) and
// system-wide peaks (file system, burst buffer, external/DTN bandwidth),
// plus node counts from which the system parallelism wall is derived.
//
// The built-in specs reproduce the systems in the paper's appendix:
// Perlmutter's GPU and CPU partitions and Cori Haswell.
package machine

import (
	"encoding/json"
	"fmt"
	"sort"

	"wroofline/internal/units"
)

// NUMA refines a partition's flat NodeMemBW into a socket topology: the
// node's memory peak is the sum of per-socket local bandwidths, but any
// traffic a task drives across the inter-socket fabric (remote accesses)
// moves at the much lower inter-socket rate. The effective node bandwidth
// combines the two harmonically (see Partition.EffectiveMemBW).
type NUMA struct {
	// Sockets is the number of NUMA domains per node (CPU sockets, or HBM
	// stacks on multi-GPU nodes).
	Sockets int `json:"sockets"`
	// SocketMemBW is the local memory bandwidth of one domain; the node's
	// aggregate local peak is Sockets x SocketMemBW.
	SocketMemBW units.ByteRate `json:"socket_mem_bw"`
	// InterSocketBW is the bandwidth of the inter-socket fabric (xGMI, UPI,
	// NVLink) that remote accesses traverse. Required when RemoteFraction is
	// positive.
	InterSocketBW units.ByteRate `json:"inter_socket_bw,omitempty"`
	// RemoteFraction in [0,1] is the fraction of memory traffic that crosses
	// sockets. Zero models perfectly pinned tasks: the effective bandwidth is
	// exactly the local aggregate.
	RemoteFraction float64 `json:"remote_fraction,omitempty"`
}

// Partition describes one homogeneous node pool of a machine (e.g. the
// Perlmutter GPU partition). All node-level peaks are per-node aggregates:
// a Perlmutter GPU node reports 4 x 9.7 TFLOPS = 38.8 TFLOPS.
type Partition struct {
	// Name identifies the partition, e.g. "gpu" or "cpu".
	Name string `json:"name"`
	// Nodes is the number of schedulable nodes in the partition.
	Nodes int `json:"nodes"`
	// CoresPerNode is the CPU core count per node (used to translate a
	// process count into a node requirement).
	CoresPerNode int `json:"cores_per_node,omitempty"`
	// GPUsPerNode is the accelerator count per node (0 for CPU partitions).
	GPUsPerNode int `json:"gpus_per_node,omitempty"`
	// NodeFlops is the aggregate peak compute rate per node.
	NodeFlops units.FlopRate `json:"node_flops"`
	// NodeMemBW is the aggregate peak main-memory (DRAM or HBM) bandwidth
	// per node.
	NodeMemBW units.ByteRate `json:"node_mem_bw"`
	// NodePCIeBW is the aggregate host<->device PCIe bandwidth per node per
	// direction (0 when there are no accelerators).
	NodePCIeBW units.ByteRate `json:"node_pcie_bw,omitempty"`
	// NodeNICBW is the aggregate network-injection bandwidth per node per
	// direction.
	NodeNICBW units.ByteRate `json:"node_nic_bw"`
	// NUMA optionally refines NodeMemBW into a socket topology. When nil the
	// node is modeled flat and NodeMemBW is the memory peak.
	NUMA *NUMA `json:"numa,omitempty"`
}

// EffectiveMemBW returns the node memory bandwidth the NUMA topology
// sustains. Without a NUMA block it is exactly NodeMemBW (the flat model).
// With one, the local aggregate is Sockets x SocketMemBW, and the remote
// fraction f of traffic is limited by the inter-socket fabric; the two
// combine harmonically (time adds per byte):
//
//	BW_eff = 1 / ((1-f)/BW_local + f/BW_inter)
//
// A zero RemoteFraction therefore reproduces the flat model bit-exactly
// whenever Sockets x SocketMemBW equals NodeMemBW.
func (p *Partition) EffectiveMemBW() units.ByteRate {
	n := p.NUMA
	if n == nil {
		return p.NodeMemBW
	}
	local := float64(n.Sockets) * float64(n.SocketMemBW)
	if n.RemoteFraction <= 0 {
		return units.ByteRate(local)
	}
	return units.ByteRate(1 / ((1-n.RemoteFraction)/local + n.RemoteFraction/float64(n.InterSocketBW)))
}

// MaxParallelTasks returns the system parallelism wall for tasks that each
// require nodesPerTask nodes: floor(Nodes / nodesPerTask). It returns an
// error when nodesPerTask is not positive or exceeds the partition size.
func (p *Partition) MaxParallelTasks(nodesPerTask int) (int, error) {
	if nodesPerTask <= 0 {
		return 0, fmt.Errorf("machine: nodes per task must be positive, got %d", nodesPerTask)
	}
	if nodesPerTask > p.Nodes {
		return 0, fmt.Errorf("machine: task needs %d nodes but partition %q has only %d",
			nodesPerTask, p.Name, p.Nodes)
	}
	return p.Nodes / nodesPerTask, nil
}

// NodesForProcs returns the number of nodes needed to host procs processes
// at one process per core, rounding up. It returns an error if the partition
// does not record a core count.
func (p *Partition) NodesForProcs(procs int) (int, error) {
	if p.CoresPerNode <= 0 {
		return 0, fmt.Errorf("machine: partition %q has no cores_per_node", p.Name)
	}
	if procs <= 0 {
		return 0, fmt.Errorf("machine: process count must be positive, got %d", procs)
	}
	return (procs + p.CoresPerNode - 1) / p.CoresPerNode, nil
}

// Machine describes a full system: its partitions plus the shared,
// system-wide data paths.
type Machine struct {
	// Name identifies the machine, e.g. "Perlmutter".
	Name string `json:"name"`
	// Partitions holds the node pools keyed by partition name.
	Partitions map[string]*Partition `json:"partitions"`
	// FileSystemBW maps partition name to the peak aggregate bandwidth from
	// that partition to the shared parallel file system (the paper derives
	// 5.6 TB/s for PM-GPU and 4.8 TB/s for PM-CPU from I/O-group fabric
	// links).
	FileSystemBW map[string]units.ByteRate `json:"file_system_bw"`
	// BurstBufferBW is the aggregate burst-buffer bandwidth, when the system
	// has one (Cori: 140 BB nodes x 6.5 GB/s = 910 GB/s). Zero when absent.
	BurstBufferBW units.ByteRate `json:"burst_buffer_bw,omitempty"`
	// ExternalBW is the peak bandwidth for staging data in from outside the
	// system (data transfer nodes / WAN).
	ExternalBW units.ByteRate `json:"external_bw,omitempty"`
	// BisectionBW maps partition name to the fabric's bisection bandwidth,
	// the Ridgeline-style second network dimension: NodeNICBW bounds what one
	// node can inject, BisectionBW bounds what all nodes can push across the
	// fabric at once. Absent entries model an unconstrained (full-bisection)
	// fabric, which reduces exactly to the flat one-dimensional network model.
	BisectionBW map[string]units.ByteRate `json:"bisection_bw,omitempty"`
}

// BisectionShare is the fraction of injected traffic assumed to cross the
// fabric bisection under a uniform (all-to-all) traffic pattern: half the
// bytes stay on each side. Both the roofline builder and the simulator use
// it to turn per-node network volumes into bisection load.
const BisectionShare = 0.5

// Partition returns the named partition or an error listing the available
// names.
func (m *Machine) Partition(name string) (*Partition, error) {
	if p, ok := m.Partitions[name]; ok {
		return p, nil
	}
	names := make([]string, 0, len(m.Partitions))
	for n := range m.Partitions {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("machine: %s has no partition %q (have %v)", m.Name, name, names)
}

// FSBandwidth returns the file-system peak for the named partition, falling
// back to the burst buffer when no file-system entry exists.
func (m *Machine) FSBandwidth(partition string) (units.ByteRate, error) {
	if bw, ok := m.FileSystemBW[partition]; ok {
		return bw, nil
	}
	if m.BurstBufferBW > 0 {
		return m.BurstBufferBW, nil
	}
	return 0, fmt.Errorf("machine: %s has no file-system bandwidth for partition %q", m.Name, partition)
}

// Validate checks internal consistency: every partition must have a positive
// node count and at least one positive node-level peak, and file-system
// entries must reference existing partitions.
func (m *Machine) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("machine: missing name")
	}
	if len(m.Partitions) == 0 {
		return fmt.Errorf("machine %s: no partitions", m.Name)
	}
	for name, p := range m.Partitions {
		if p == nil {
			return fmt.Errorf("machine %s: partition %q is nil", m.Name, name)
		}
		if p.Name == "" {
			p.Name = name
		}
		if p.Name != name {
			return fmt.Errorf("machine %s: partition key %q disagrees with name %q", m.Name, name, p.Name)
		}
		if p.Nodes <= 0 {
			return fmt.Errorf("machine %s: partition %q has %d nodes", m.Name, name, p.Nodes)
		}
		if p.NodeFlops <= 0 && p.NodeMemBW <= 0 && p.NodeNICBW <= 0 {
			return fmt.Errorf("machine %s: partition %q has no node-level peaks", m.Name, name)
		}
		if p.NodeFlops < 0 || p.NodeMemBW < 0 || p.NodePCIeBW < 0 || p.NodeNICBW < 0 {
			return fmt.Errorf("machine %s: partition %q has a negative peak", m.Name, name)
		}
		if n := p.NUMA; n != nil {
			if n.Sockets <= 0 {
				return fmt.Errorf("machine %s: partition %q NUMA needs positive sockets, got %d", m.Name, name, n.Sockets)
			}
			if n.SocketMemBW <= 0 {
				return fmt.Errorf("machine %s: partition %q NUMA needs positive socket memory bandwidth", m.Name, name)
			}
			if n.RemoteFraction < 0 || n.RemoteFraction > 1 {
				return fmt.Errorf("machine %s: partition %q NUMA remote fraction %v outside [0,1]", m.Name, name, n.RemoteFraction)
			}
			if n.RemoteFraction > 0 && n.InterSocketBW <= 0 {
				return fmt.Errorf("machine %s: partition %q NUMA has remote traffic but no inter-socket bandwidth", m.Name, name)
			}
			if n.InterSocketBW < 0 {
				return fmt.Errorf("machine %s: partition %q NUMA has negative inter-socket bandwidth", m.Name, name)
			}
		}
	}
	for name, bw := range m.FileSystemBW {
		if _, ok := m.Partitions[name]; !ok {
			return fmt.Errorf("machine %s: file-system bandwidth references unknown partition %q", m.Name, name)
		}
		if bw <= 0 {
			return fmt.Errorf("machine %s: non-positive file-system bandwidth for %q", m.Name, name)
		}
	}
	for name, bw := range m.BisectionBW {
		if _, ok := m.Partitions[name]; !ok {
			return fmt.Errorf("machine %s: bisection bandwidth references unknown partition %q", m.Name, name)
		}
		if bw <= 0 {
			return fmt.Errorf("machine %s: non-positive bisection bandwidth for %q", m.Name, name)
		}
	}
	if m.BurstBufferBW < 0 || m.ExternalBW < 0 {
		return fmt.Errorf("machine %s: negative system bandwidth", m.Name)
	}
	return nil
}

// MarshalJSON emits the machine as plain JSON (quantities as raw floats in
// base units).
func (m *Machine) MarshalJSON() ([]byte, error) {
	type alias Machine
	return json.Marshal((*alias)(m))
}

// UnmarshalJSON parses and validates a machine description.
func (m *Machine) UnmarshalJSON(data []byte) error {
	type alias Machine
	if err := json.Unmarshal(data, (*alias)(m)); err != nil {
		return fmt.Errorf("machine: decode: %w", err)
	}
	return m.Validate()
}

// Clone returns a deep copy, so callers can derive what-if variants (e.g.
// degraded external bandwidth on a "bad day") without mutating shared specs.
func (m *Machine) Clone() *Machine {
	out := &Machine{
		Name:          m.Name,
		Partitions:    make(map[string]*Partition, len(m.Partitions)),
		FileSystemBW:  make(map[string]units.ByteRate, len(m.FileSystemBW)),
		BurstBufferBW: m.BurstBufferBW,
		ExternalBW:    m.ExternalBW,
	}
	for k, p := range m.Partitions {
		cp := *p
		if p.NUMA != nil {
			n := *p.NUMA
			cp.NUMA = &n
		}
		out.Partitions[k] = &cp
	}
	for k, v := range m.FileSystemBW {
		out.FileSystemBW[k] = v
	}
	if m.BisectionBW != nil {
		out.BisectionBW = make(map[string]units.ByteRate, len(m.BisectionBW))
		for k, v := range m.BisectionBW {
			out.BisectionBW[k] = v
		}
	}
	return out
}

// Built-in partition names used by the paper's case studies.
const (
	PartGPU     = "gpu"
	PartCPU     = "cpu"
	PartHaswell = "haswell"
)

// Perlmutter returns the NERSC Perlmutter spec with the peaks from the
// paper's appendix:
//
//	GPU partition: 1792 nodes, 4xA100 per node -> 38.8 TFLOPS, 4x1555 GB/s
//	HBM, 4x25 GB/s PCIe, 4 NICs -> 100 GB/s injection; 5.6 TB/s file system.
//	CPU partition: 3072 nodes, 2xMilan -> 5 TFLOPS, 2x204.8 GB/s DRAM,
//	25 GB/s NIC; 4.8 TB/s file system.
//	External (DTN) bandwidth: 25 GB/s.
func Perlmutter() *Machine {
	return &Machine{
		Name: "Perlmutter",
		Partitions: map[string]*Partition{
			PartGPU: {
				Name:         PartGPU,
				Nodes:        1792,
				CoresPerNode: 64,
				GPUsPerNode:  4,
				NodeFlops:    4 * 9.7 * units.TFLOPS,
				NodeMemBW:    4 * 1555 * units.GBPS,
				NodePCIeBW:   4 * 25 * units.GBPS,
				NodeNICBW:    100 * units.GBPS,
			},
			PartCPU: {
				Name:         PartCPU,
				Nodes:        3072,
				CoresPerNode: 128,
				NodeFlops:    5 * units.TFLOPS,
				NodeMemBW:    2 * 204.8 * units.GBPS,
				NodeNICBW:    25 * units.GBPS,
			},
		},
		FileSystemBW: map[string]units.ByteRate{
			PartGPU: 5.6 * units.TBPS,
			PartCPU: 4.8 * units.TBPS,
		},
		ExternalBW: 25 * units.GBPS,
	}
}

// CoriHaswell returns the (now retired) Cori Haswell spec used by the LCLS
// case study: 2388 nodes, 32 cores and 129 GB/s DRAM per node, a 910 GB/s
// burst buffer (140 BB nodes x 6.5 GB/s), and a 1 GB/s average external
// path on "good days".
func CoriHaswell() *Machine {
	return &Machine{
		Name: "Cori",
		Partitions: map[string]*Partition{
			PartHaswell: {
				Name:         PartHaswell,
				Nodes:        2388,
				CoresPerNode: 32,
				NodeFlops:    1.2 * units.TFLOPS,
				NodeMemBW:    129 * units.GBPS,
				NodeNICBW:    8 * units.GBPS,
			},
		},
		FileSystemBW:  map[string]units.ByteRate{},
		BurstBufferBW: 910 * units.GBPS,
		ExternalBW:    1 * units.GBPS,
	}
}

// PerlmutterNUMA returns the Perlmutter spec with the socket topology made
// explicit. The CPU partition's 2 x 204.8 GB/s DRAM becomes two NUMA
// domains joined by a 64 GB/s xGMI-class fabric with 15% of traffic going
// remote; the GPU partition's 4 x 1555 GB/s HBM becomes four domains joined
// by NVLink (600 GB/s) with 10% remote traffic. The flat aggregates are
// unchanged — only the effective memory bandwidth drops, which is the point:
// the same workflow gets a lower memory ceiling here than on Perlmutter().
func PerlmutterNUMA() *Machine {
	m := Perlmutter()
	m.Name = "Perlmutter-NUMA"
	m.Partitions[PartCPU].NUMA = &NUMA{
		Sockets:        2,
		SocketMemBW:    204.8 * units.GBPS,
		InterSocketBW:  64 * units.GBPS,
		RemoteFraction: 0.15,
	}
	m.Partitions[PartGPU].NUMA = &NUMA{
		Sockets:        4,
		SocketMemBW:    1555 * units.GBPS,
		InterSocketBW:  600 * units.GBPS,
		RemoteFraction: 0.10,
	}
	return m
}

// Ridgeline returns a dragonfly-class system characterized Ridgeline-style,
// with the network split into two distinct ceilings: per-node injection
// (25 GB/s NICs, 51.2 TB/s aggregate across 2048 nodes) and a 2:1-tapered
// fabric whose bisection sustains only 12.8 TB/s. Workflows that keep
// traffic local see the injection ceiling; all-to-all traffic at scale hits
// the bisection first.
func Ridgeline() *Machine {
	return &Machine{
		Name: "Ridgeline",
		Partitions: map[string]*Partition{
			PartCPU: {
				Name:         PartCPU,
				Nodes:        2048,
				CoresPerNode: 64,
				NodeFlops:    3 * units.TFLOPS,
				NodeMemBW:    300 * units.GBPS,
				NodeNICBW:    25 * units.GBPS,
			},
		},
		FileSystemBW: map[string]units.ByteRate{
			PartCPU: 2 * units.TBPS,
		},
		BisectionBW: map[string]units.ByteRate{
			PartCPU: 12.8 * units.TBPS,
		},
		ExternalBW: 10 * units.GBPS,
	}
}

// builtins maps the canonical machine names shared by the CLIs, the study
// specs, and the wfserved endpoints to constructors.
var builtins = map[string]func() *Machine{
	"perlmutter":      Perlmutter,
	"perlmutter-numa": PerlmutterNUMA,
	"cori":            CoriHaswell,
	"ridgeline":       Ridgeline,
}

// Names lists the built-in machine names in sorted order.
func Names() []string {
	out := make([]string, 0, len(builtins))
	for n := range builtins {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName returns a fresh instance of the named built-in machine. The empty
// name defaults to Perlmutter, matching the historical behaviour of every
// spec surface that takes an optional machine field.
func ByName(name string) (*Machine, error) {
	if name == "" {
		return Perlmutter(), nil
	}
	build, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("machine: unknown machine %q (have %v)", name, Names())
	}
	return build(), nil
}

// WithExternalBW returns a clone with the external bandwidth replaced; it is
// the standard way to express contention scenarios like LCLS "bad days"
// (1 GB/s -> 0.2 GB/s) or the PM-CPU 5x degradation (25 -> 5 GB/s).
func (m *Machine) WithExternalBW(bw units.ByteRate) *Machine {
	c := m.Clone()
	c.ExternalBW = bw
	return c
}
