package machine

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"wroofline/internal/units"
)

func TestEffectiveMemBW(t *testing.T) {
	flat := &Partition{Name: "cpu", Nodes: 4, NodeMemBW: 400 * units.GBPS}
	if got := flat.EffectiveMemBW(); got != flat.NodeMemBW {
		t.Errorf("flat partition effective bw = %v, want %v", got, flat.NodeMemBW)
	}

	// Zero remote fraction with Sockets x SocketMemBW == NodeMemBW must
	// reproduce the flat value bit-exactly — the differential tests lean on
	// this identity (x2 and /2 are exact in IEEE 754).
	pinned := &Partition{Name: "cpu", Nodes: 4, NodeMemBW: 400 * units.GBPS,
		NUMA: &NUMA{Sockets: 2, SocketMemBW: 200 * units.GBPS}}
	if got := pinned.EffectiveMemBW(); got != pinned.NodeMemBW {
		t.Errorf("pinned NUMA effective bw = %v, want exactly %v", got, pinned.NodeMemBW)
	}

	// With remote traffic the harmonic mix applies:
	// 1 / (0.8/400e9 + 0.2/50e9).
	remote := &Partition{Name: "cpu", Nodes: 4, NodeMemBW: 400 * units.GBPS,
		NUMA: &NUMA{Sockets: 2, SocketMemBW: 200 * units.GBPS,
			InterSocketBW: 50 * units.GBPS, RemoteFraction: 0.2}}
	want := 1 / (0.8/400e9 + 0.2/50e9)
	if got := float64(remote.EffectiveMemBW()); math.Abs(got-want) > 1 {
		t.Errorf("remote NUMA effective bw = %v, want %v", got, want)
	}
	if got := remote.EffectiveMemBW(); got >= remote.NodeMemBW {
		t.Errorf("remote traffic did not lower the ceiling: %v >= %v", got, remote.NodeMemBW)
	}

	// The built-in NUMA machine keeps the flat aggregates but sustains less.
	flatPM, numaPM := Perlmutter(), PerlmutterNUMA()
	for _, part := range []string{PartCPU, PartGPU} {
		fp, np := flatPM.Partitions[part], numaPM.Partitions[part]
		if fp.NodeMemBW != np.NodeMemBW {
			t.Errorf("%s: NUMA spec changed the flat aggregate", part)
		}
		if np.EffectiveMemBW() >= fp.EffectiveMemBW() {
			t.Errorf("%s: NUMA effective bw %v not below flat %v",
				part, np.EffectiveMemBW(), fp.EffectiveMemBW())
		}
	}
}

func TestNUMAValidateErrors(t *testing.T) {
	base := func() *Machine {
		m := Perlmutter()
		m.Partitions[PartCPU].NUMA = &NUMA{Sockets: 2, SocketMemBW: 200 * units.GBPS,
			InterSocketBW: 64 * units.GBPS, RemoteFraction: 0.15}
		return m
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid NUMA machine rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		muck func(*NUMA)
		want string
	}{
		{"zero sockets", func(n *NUMA) { n.Sockets = 0 }, "positive sockets"},
		{"zero socket bw", func(n *NUMA) { n.SocketMemBW = 0 }, "socket memory bandwidth"},
		{"fraction above one", func(n *NUMA) { n.RemoteFraction = 1.5 }, "outside [0,1]"},
		{"fraction below zero", func(n *NUMA) { n.RemoteFraction = -0.1 }, "outside [0,1]"},
		{"remote without fabric", func(n *NUMA) { n.InterSocketBW = 0 }, "no inter-socket bandwidth"},
		{"negative fabric", func(n *NUMA) { n.RemoteFraction = 0; n.InterSocketBW = -1 }, "negative inter-socket"},
	} {
		m := base()
		tc.muck(m.Partitions[PartCPU].NUMA)
		if err := m.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestBisectionValidateErrors(t *testing.T) {
	m := Ridgeline()
	if err := m.Validate(); err != nil {
		t.Fatalf("Ridgeline rejected: %v", err)
	}
	m.BisectionBW["gpu"] = units.GBPS
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "unknown partition") {
		t.Errorf("bisection for unknown partition: err = %v", err)
	}
	m = Ridgeline()
	m.BisectionBW[PartCPU] = 0
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "bisection") {
		t.Errorf("zero bisection: err = %v", err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("built-in %q invalid: %v", name, err)
		}
	}
	m, err := ByName("")
	if err != nil || m.Name != "Perlmutter" {
		t.Errorf(`ByName("") = %v, %v; want Perlmutter`, m, err)
	}
	if _, err := ByName("summit"); err == nil || !strings.Contains(err.Error(), "unknown machine") {
		t.Errorf("unknown machine err = %v", err)
	}
	// Each call returns a fresh instance: mutating one must not leak.
	a, _ := ByName("ridgeline")
	a.BisectionBW[PartCPU] = 1
	b, _ := ByName("ridgeline")
	if b.BisectionBW[PartCPU] == 1 {
		t.Error("ByName returned a shared instance")
	}
}

func TestCloneCopiesNUMAAndBisection(t *testing.T) {
	orig := PerlmutterNUMA()
	c := orig.Clone()
	c.Partitions[PartCPU].NUMA.RemoteFraction = 0.9
	if orig.Partitions[PartCPU].NUMA.RemoteFraction == 0.9 {
		t.Error("clone shares the NUMA block")
	}
	r := Ridgeline()
	rc := r.Clone()
	rc.BisectionBW[PartCPU] = 1
	if r.BisectionBW[PartCPU] == 1 {
		t.Error("clone shares the bisection map")
	}
}

func TestNUMAMachinesJSONRoundTrip(t *testing.T) {
	for _, m := range []*Machine{PerlmutterNUMA(), Ridgeline()} {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("%s: marshal: %v", m.Name, err)
		}
		var back Machine
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", m.Name, err)
		}
		if !reflect.DeepEqual(m, &back) {
			t.Errorf("%s: round trip drifted:\n%s", m.Name, data)
		}
	}
}
