package machine

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"wroofline/internal/units"
)

func TestPerlmutterPeaks(t *testing.T) {
	pm := Perlmutter()
	if err := pm.Validate(); err != nil {
		t.Fatalf("Perlmutter invalid: %v", err)
	}
	gpu, err := pm.Partition(PartGPU)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Nodes != 1792 {
		t.Errorf("GPU nodes = %d, want 1792", gpu.Nodes)
	}
	if got, want := float64(gpu.NodeFlops), 38.8e12; math.Abs(got-want) > 1e6 {
		t.Errorf("GPU node flops = %v, want %v", got, want)
	}
	if got, want := float64(gpu.NodePCIeBW), 100e9; got != want {
		t.Errorf("GPU PCIe = %v, want %v", got, want)
	}
	if got, want := float64(gpu.NodeMemBW), 4*1555e9; got != want {
		t.Errorf("GPU HBM = %v, want %v", got, want)
	}
	cpu, err := pm.Partition(PartCPU)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Nodes != 3072 {
		t.Errorf("CPU nodes = %d, want 3072", cpu.Nodes)
	}
	if got, want := float64(cpu.NodeMemBW), 2*204.8e9; math.Abs(got-want) > 1 {
		t.Errorf("CPU DRAM = %v, want %v", got, want)
	}
	fs, err := pm.FSBandwidth(PartGPU)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(fs), 5.6e12; got != want {
		t.Errorf("GPU FS = %v, want %v", got, want)
	}
	fs, err = pm.FSBandwidth(PartCPU)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(fs), 4.8e12; got != want {
		t.Errorf("CPU FS = %v, want %v", got, want)
	}
}

func TestCoriPeaks(t *testing.T) {
	cori := CoriHaswell()
	if err := cori.Validate(); err != nil {
		t.Fatalf("Cori invalid: %v", err)
	}
	hsw, err := cori.Partition(PartHaswell)
	if err != nil {
		t.Fatal(err)
	}
	if hsw.Nodes != 2388 {
		t.Errorf("Cori nodes = %d, want 2388", hsw.Nodes)
	}
	if got, want := float64(hsw.NodeMemBW), 129e9; got != want {
		t.Errorf("Cori DRAM = %v, want %v", got, want)
	}
	// No parallel-FS entry: falls back to the burst buffer (910 GB/s).
	fs, err := cori.FSBandwidth(PartHaswell)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(fs), 910e9; got != want {
		t.Errorf("Cori BB = %v, want %v", got, want)
	}
}

// Paper wall checks: 1792/64 = 28 (Fig 1, Fig 7a), 1792/1024 = 1 (Fig 7b),
// 1536/128 = 12 (Fig 8 uses 1536 = 1792 minus 256 large-memory nodes),
// 2388/32 = 74 (Fig 5a), 3072/8 = 384 (Fig 6), 3072/1 = 3072 (Fig 10a).
func TestParallelismWalls(t *testing.T) {
	pm := Perlmutter()
	cori := CoriHaswell()
	gpu := pm.Partitions[PartGPU]
	cpu := pm.Partitions[PartCPU]
	hsw := cori.Partitions[PartHaswell]

	cases := []struct {
		part   *Partition
		nodes  int
		want   int
		source string
	}{
		{gpu, 64, 28, "Fig 1 / Fig 7a"},
		{gpu, 1024, 1, "Fig 7b"},
		{cpu, 8, 384, "Fig 6"},
		{cpu, 1, 3072, "Fig 10a"},
		{hsw, 32, 74, "Fig 5a"},
	}
	for _, c := range cases {
		got, err := c.part.MaxParallelTasks(c.nodes)
		if err != nil {
			t.Errorf("%s: %v", c.source, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: wall = %d, want %d", c.source, got, c.want)
		}
	}
	// CosmoFlow excludes the 256 large-memory nodes: 1536/128 = 12.
	reduced := *gpu
	reduced.Nodes = 1536
	if got, _ := reduced.MaxParallelTasks(128); got != 12 {
		t.Errorf("CosmoFlow wall = %d, want 12", got)
	}
}

func TestMaxParallelTasksErrors(t *testing.T) {
	gpu := Perlmutter().Partitions[PartGPU]
	if _, err := gpu.MaxParallelTasks(0); err == nil {
		t.Error("zero nodes per task should fail")
	}
	if _, err := gpu.MaxParallelTasks(-3); err == nil {
		t.Error("negative nodes per task should fail")
	}
	if _, err := gpu.MaxParallelTasks(4000); err == nil {
		t.Error("oversubscribed task should fail")
	}
}

func TestNodesForProcs(t *testing.T) {
	hsw := CoriHaswell().Partitions[PartHaswell]
	// LCLS: 1024 processes at 32 cores/node -> 32 nodes (appendix, Fig 5a wall 74).
	n, err := hsw.NodesForProcs(1024)
	if err != nil {
		t.Fatal(err)
	}
	if n != 32 {
		t.Errorf("Cori nodes for 1024 procs = %d, want 32", n)
	}
	cpu := Perlmutter().Partitions[PartCPU]
	// LCLS on PM-CPU: 1024 procs at 128 cores/node -> 8 nodes (Fig 6 wall 384).
	n, err = cpu.NodesForProcs(1024)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("PM-CPU nodes for 1024 procs = %d, want 8", n)
	}
	// Rounding up.
	n, err = cpu.NodesForProcs(129)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("PM-CPU nodes for 129 procs = %d, want 2", n)
	}
	if _, err := cpu.NodesForProcs(0); err == nil {
		t.Error("zero procs should fail")
	}
	noCores := &Partition{Name: "x", Nodes: 4, NodeFlops: 1}
	if _, err := noCores.NodesForProcs(10); err == nil {
		t.Error("partition without cores_per_node should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	pm := Perlmutter()
	data, err := json.Marshal(pm)
	if err != nil {
		t.Fatal(err)
	}
	var back Machine
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != pm.Name {
		t.Errorf("name = %q, want %q", back.Name, pm.Name)
	}
	if len(back.Partitions) != len(pm.Partitions) {
		t.Fatalf("partitions = %d, want %d", len(back.Partitions), len(pm.Partitions))
	}
	if back.Partitions[PartGPU].NodeFlops != pm.Partitions[PartGPU].NodeFlops {
		t.Errorf("GPU flops did not round-trip")
	}
	if back.ExternalBW != pm.ExternalBW {
		t.Errorf("external bandwidth did not round-trip")
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	bad := `{"name":"X","partitions":{"p":{"name":"p","nodes":0,"node_flops":1}}}`
	var m Machine
	if err := json.Unmarshal([]byte(bad), &m); err == nil {
		t.Error("zero-node partition should fail validation on decode")
	}
	bad2 := `{"name":"X","partitions":{"p":{"name":"p","nodes":4,"node_flops":1}},"file_system_bw":{"q":1}}`
	if err := json.Unmarshal([]byte(bad2), &m); err == nil ||
		!strings.Contains(err.Error(), "unknown partition") {
		t.Errorf("dangling FS entry should fail, got %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		m    *Machine
	}{
		{"no name", &Machine{Partitions: map[string]*Partition{"p": {Name: "p", Nodes: 1, NodeFlops: 1}}}},
		{"no partitions", &Machine{Name: "X"}},
		{"nil partition", &Machine{Name: "X", Partitions: map[string]*Partition{"p": nil}}},
		{"key mismatch", &Machine{Name: "X", Partitions: map[string]*Partition{"p": {Name: "q", Nodes: 1, NodeFlops: 1}}}},
		{"no peaks", &Machine{Name: "X", Partitions: map[string]*Partition{"p": {Name: "p", Nodes: 1}}}},
		{"negative peak", &Machine{Name: "X", Partitions: map[string]*Partition{"p": {Name: "p", Nodes: 1, NodeFlops: -1, NodeMemBW: 1}}}},
		{"negative external", &Machine{Name: "X", ExternalBW: -1, Partitions: map[string]*Partition{"p": {Name: "p", Nodes: 1, NodeFlops: 1}}}},
	}
	for _, c := range cases {
		if err := c.m.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
}

func TestValidateFillsPartitionName(t *testing.T) {
	m := &Machine{
		Name:       "X",
		Partitions: map[string]*Partition{"p": {Nodes: 1, NodeFlops: 1}},
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.Partitions["p"].Name != "p" {
		t.Errorf("Validate should fill empty partition name from map key")
	}
}

func TestCloneIsDeep(t *testing.T) {
	pm := Perlmutter()
	c := pm.Clone()
	c.Partitions[PartGPU].Nodes = 1
	c.FileSystemBW[PartGPU] = 1
	c.ExternalBW = 1
	if pm.Partitions[PartGPU].Nodes != 1792 {
		t.Error("Clone shared partition storage")
	}
	if pm.FileSystemBW[PartGPU] != 5.6*units.TBPS {
		t.Error("Clone shared FS map")
	}
	if pm.ExternalBW != 25*units.GBPS {
		t.Error("Clone shared scalar state")
	}
}

func TestWithExternalBW(t *testing.T) {
	cori := CoriHaswell()
	bad := cori.WithExternalBW(0.2 * units.GBPS)
	if bad.ExternalBW != 0.2*units.GBPS {
		t.Errorf("bad-day external = %v", bad.ExternalBW)
	}
	if cori.ExternalBW != 1*units.GBPS {
		t.Errorf("original mutated: %v", cori.ExternalBW)
	}
}

func TestPartitionLookupError(t *testing.T) {
	pm := Perlmutter()
	_, err := pm.Partition("nope")
	if err == nil {
		t.Fatal("lookup of missing partition should fail")
	}
	if !strings.Contains(err.Error(), "cpu") || !strings.Contains(err.Error(), "gpu") {
		t.Errorf("error should list available partitions, got %v", err)
	}
}

// Property: the wall is monotone non-increasing in nodes-per-task and
// multiplying the task size by k divides the wall by at least k (floor
// effects only help).
func TestQuickWallMonotonicity(t *testing.T) {
	gpu := Perlmutter().Partitions[PartGPU]
	f := func(a, b uint8) bool {
		x, y := int(a%64)+1, int(b%64)+1
		if x > y {
			x, y = y, x
		}
		wx, err1 := gpu.MaxParallelTasks(x)
		wy, err2 := gpu.MaxParallelTasks(y)
		if err1 != nil || err2 != nil {
			return false
		}
		return wx >= wy && wx <= gpu.Nodes && wy >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFSBandwidthMissing(t *testing.T) {
	m := &Machine{
		Name:       "bare",
		Partitions: map[string]*Partition{"p": {Name: "p", Nodes: 4, NodeFlops: 1}},
	}
	if _, err := m.FSBandwidth("p"); err == nil {
		t.Error("machine without FS or BB should fail FSBandwidth lookup")
	}
}

func TestValidateRejectsNegativeFSEntry(t *testing.T) {
	m := Perlmutter()
	m.FileSystemBW[PartGPU] = -1
	if err := m.Validate(); err == nil {
		t.Error("negative FS bandwidth should fail validation")
	}
	m2 := Perlmutter()
	m2.FileSystemBW[PartGPU] = 0
	if err := m2.Validate(); err == nil {
		t.Error("zero FS bandwidth entry should fail validation")
	}
}
