package machine

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// FuzzParse asserts the machine JSON decoder's contract on arbitrary input:
// malformed or inconsistent descriptions return an error attributed to the
// package, never a panic, and anything that decodes is a valid machine that
// survives a Marshal/Unmarshal round-trip.
func FuzzParse(f *testing.F) {
	for _, m := range []*Machine{Perlmutter(), CoriHaswell(), PerlmutterNUMA(), Ridgeline()} {
		data, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add(`{}`)
	f.Add(`{"name":"m"}`)
	f.Add(`{"name":"m","partitions":{}}`)
	f.Add(`{"name":"m","partitions":{"cpu":null}}`)
	f.Add(`{"name":"m","partitions":{"cpu":{"name":"gpu","nodes":4}}}`)  // key/name mismatch
	f.Add(`{"name":"m","partitions":{"cpu":{"name":"cpu","nodes":-1}}}`) // negative nodes
	f.Add(`{"name":"m","partitions":{"cpu":{"name":"cpu","nodes":4}}}`)  // no peaks
	f.Add(`{"name":"m","partitions":{"cpu":{"name":"cpu","nodes":4,"node_flops":-5}}}`)
	f.Add(`{"name":"m","partitions":{"cpu":{"name":"cpu","nodes":4,"node_flops":1e12}},` +
		`"fs_bw":{"gpu":1e9}}`) // fs bandwidth for a partition that does not exist
	f.Add(`{"name":"m","partitions":{"cpu":{"name":"cpu","nodes":1e999}}}`)
	f.Add(`{"name":"m","partitions":{"cpu":{"name":"cpu","nodes":4,"node_flops":1e12,` +
		`"numa":{"sockets":0,"socket_mem_bw":1e11}}}}`) // zero sockets
	f.Add(`{"name":"m","partitions":{"cpu":{"name":"cpu","nodes":4,"node_flops":1e12,` +
		`"numa":{"sockets":2,"socket_mem_bw":1e11,"remote_fraction":0.5}}}}`) // remote traffic, no fabric
	f.Add(`{"name":"m","partitions":{"cpu":{"name":"cpu","nodes":4,"node_flops":1e12}},` +
		`"bisection_bw":{"gpu":1e12}}`) // bisection for a partition that does not exist
	f.Add(`{"name":"m","partitions":{"cpu":{"name":"cpu","nodes":4,"node_flops":1e12}},` +
		`"bisection_bw":{"cpu":-1}}`) // negative bisection
	f.Add(`not json`)
	f.Add(`[]`)
	f.Add(`{"partitions":`)
	f.Fuzz(func(t *testing.T, src string) {
		var m Machine
		if err := json.Unmarshal([]byte(src), &m); err != nil {
			// Top-level syntax errors surface straight from encoding/json
			// (the custom unmarshaler never runs); everything else must be
			// attributed to the package.
			var syn *json.SyntaxError
			var typ *json.UnmarshalTypeError
			if !errors.As(err, &syn) && !errors.As(err, &typ) &&
				!strings.Contains(err.Error(), "machine") {
				t.Fatalf("error not attributed to the package: %v", err)
			}
			return
		}
		// A decoded machine has already been validated by UnmarshalJSON;
		// Validate must agree, and the round-trip must be stable.
		if err := m.Validate(); err != nil {
			t.Fatalf("decoded machine fails Validate: %v", err)
		}
		data, err := json.Marshal(&m)
		if err != nil {
			t.Fatalf("re-Marshal of valid machine: %v", err)
		}
		var again Machine
		if err := json.Unmarshal(data, &again); err != nil {
			t.Fatalf("re-Unmarshal of Marshal output: %v\n%s", err, data)
		}
	})
}
