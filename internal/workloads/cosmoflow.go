package workloads

import (
	"fmt"
	"math"

	"wroofline/internal/core"
	"wroofline/internal/machine"
	"wroofline/internal/sim"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// CosmoFlow throughput-benchmark inputs (Section IV-C3 and the appendix).
const (
	// CosmoNodesPerInstance is the node count per training instance.
	CosmoNodesPerInstance = 128
	// CosmoAvailableNodes excludes the 256 large-memory nodes: 1536 of
	// 1792, so at most 12 instances run concurrently.
	CosmoAvailableNodes = 1536
	// CosmoMaxInstances is the resulting parallelism wall.
	CosmoMaxInstances = 12
	// CosmoEpochsPerInstance is the average epochs per model.
	CosmoEpochsPerInstance = 25
	// CosmoDatasetBytes is the on-disk training set (one shared copy).
	CosmoDatasetBytes = 2 * units.TB
	// CosmoDecompressedBytes is the decompressed volume moved host->device.
	CosmoDecompressedBytes = 10 * units.TB
	// CosmoSamples is the sample count (2^19).
	CosmoSamples = 1 << 19
	// CosmoHBMBytesPerSample is the per-sample HBM traffic.
	CosmoHBMBytesPerSample = 6.4 * units.GB

	// cosmoHBMEfficiency calibrates the measured per-epoch time: the HBM
	// phase runs at this fraction of peak, landing the 12-instance point
	// just under the HBM ceiling as in Fig 8 (the paper's per-instance
	// epoch times live only in the artifact script).
	cosmoHBMEfficiency = 0.85
)

// CosmoPCIeSecondsPerEpoch returns the PCIe makespan ceiling: 10 TB
// decompressed over 128 nodes at 100 GB/s/node = 0.8 s (Fig 8).
func CosmoPCIeSecondsPerEpoch() float64 {
	perNode := CosmoDecompressedBytes / units.Bytes(CosmoNodesPerInstance)
	return units.TimeToMove(perNode, 100*units.GBPS)
}

// CosmoHBMSecondsPerEpoch returns the HBM makespan ceiling:
// 6.4 GB x 2^19 samples over 128 nodes x 4 GPUs x 1555 GB/s = 4.2 s (Fig 8).
func CosmoHBMSecondsPerEpoch() float64 {
	total := CosmoHBMBytesPerSample * units.Bytes(CosmoSamples)
	perNode := total / units.Bytes(CosmoNodesPerInstance)
	return units.TimeToMove(perNode, 4*1555*units.GBPS)
}

// CosmoHBMBytesPerNodePerEpoch returns the per-node HBM volume of one epoch.
func CosmoHBMBytesPerNodePerEpoch() units.Bytes {
	return CosmoHBMBytesPerSample * units.Bytes(CosmoSamples) / units.Bytes(CosmoNodesPerInstance)
}

// CosmoFlow reproduces Fig 8: n concurrent 128-node training instances on
// PM-GPU. The model's "task" is one epoch, so the y axis is epochs per
// second: the PCIe (0.8 s) and HBM (4.2 s) ceilings are per-epoch diagonals,
// the file system is a shared horizontal (2 TB @ 5.6 TB/s), and the wall is
// 12 instances.
func CosmoFlow(instances int) (*CaseStudy, error) {
	if instances < 1 || instances > CosmoMaxInstances {
		return nil, fmt.Errorf("workloads: CosmoFlow supports 1..%d instances, got %d",
			CosmoMaxInstances, instances)
	}
	pm := machine.Perlmutter()
	fsBW, err := pm.FSBandwidth(machine.PartGPU)
	if err != nil {
		return nil, err
	}

	w := workflow.New("CosmoFlow", machine.PartGPU)
	progs := make(map[string]sim.Program, instances)
	for i := 0; i < instances; i++ {
		id := fmt.Sprintf("instance%02d", i)
		if err := w.AddTask(&workflow.Task{
			ID:    id,
			Nodes: CosmoNodesPerInstance,
			Work: workflow.Work{
				FSBytes:   CosmoDatasetBytes,
				PCIeBytes: CosmoDecompressedBytes / units.Bytes(CosmoNodesPerInstance),
				MemBytes:  CosmoHBMBytesPerNodePerEpoch(),
			},
		}); err != nil {
			return nil, err
		}
		// One instance = one dataset load plus 25 epochs of PCIe + HBM
		// traffic (data is cached after the first epoch, so the FS cost is
		// paid once per instance).
		prog := sim.Program{{Kind: sim.PhaseFS, Bytes: CosmoDatasetBytes, Name: "filesystem"}}
		for e := 0; e < CosmoEpochsPerInstance; e++ {
			prog = append(prog,
				sim.Phase{Kind: sim.PhasePCIe, Bytes: CosmoDecompressedBytes / units.Bytes(CosmoNodesPerInstance), Name: "pcie"},
				sim.Phase{Kind: sim.PhaseMemory, Bytes: CosmoHBMBytesPerNodePerEpoch(), Efficiency: cosmoHBMEfficiency, Name: "hbm"},
			)
		}
		progs[id] = prog
	}

	m := &core.Model{Title: fmt.Sprintf("CosmoFlow on PM-GPU (%d instances)", instances), Wall: CosmoMaxInstances}
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("PCIe makespan %.2gs", CosmoPCIeSecondsPerEpoch()),
		Resource: core.ResPCIe, Scope: core.ScopeNode,
		TimePerTask: CosmoPCIeSecondsPerEpoch(),
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("HBM makespan %.2gs", CosmoHBMSecondsPerEpoch()),
		Resource: core.ResMemory, Scope: core.ScopeNode,
		TimePerTask: CosmoHBMSecondsPerEpoch(),
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("File System Bytes %v @ %v", CosmoDatasetBytes, fsBW),
		Resource: core.ResFileSystem, Scope: core.ScopeSystem,
		TimePerTask: units.TimeToMove(CosmoDatasetBytes, fsBW),
	})

	return &CaseStudy{
		Name:      fmt.Sprintf("CosmoFlow/%d-instances", instances),
		Figure:    "Fig 8",
		Machine:   pm,
		Workflow:  w,
		Model:     m,
		Programs:  progs,
		SimConfig: sim.Config{Machine: pm, AvailableNodes: CosmoAvailableNodes},
	}, nil
}

// CosmoFlowEpochsPerSecond runs the simulation for n instances and returns
// the achieved throughput in epochs per second — the Fig 8 y-axis.
func CosmoFlowEpochsPerSecond(instances int) (float64, error) {
	cs, err := CosmoFlow(instances)
	if err != nil {
		return 0, err
	}
	res, err := cs.Simulate()
	if err != nil {
		return 0, err
	}
	if res.Makespan <= 0 {
		return 0, fmt.Errorf("workloads: CosmoFlow simulation produced zero makespan")
	}
	return float64(instances*CosmoEpochsPerInstance) / res.Makespan, nil
}

// CosmoFlowSweep simulates 1..max instances and returns the Fig 8 series of
// (instances, epochs/sec) points, ready for plotting.
func CosmoFlowSweep(max int) ([]core.Point, error) {
	if max < 1 || max > CosmoMaxInstances {
		return nil, fmt.Errorf("workloads: sweep bound must be 1..%d, got %d", CosmoMaxInstances, max)
	}
	var out []core.Point
	for n := 1; n <= max; n++ {
		eps, err := CosmoFlowEpochsPerSecond(n)
		if err != nil {
			return nil, err
		}
		out = append(out, core.Point{
			Label:           fmt.Sprintf("%d instances", n),
			ParallelTasks:   float64(n),
			TPS:             eps,
			MakespanSeconds: float64(n*CosmoEpochsPerInstance) / eps,
			TotalTasks:      n * CosmoEpochsPerInstance,
		})
	}
	return out, nil
}

// CosmoLinearityError returns the worst relative deviation of the sweep from
// the line through the single-instance point — Fig 8's "throughput increases
// proportionally" claim.
func CosmoLinearityError(points []core.Point) float64 {
	if len(points) == 0 {
		return math.Inf(1)
	}
	base := points[0].TPS
	worst := 0.0
	for i, p := range points {
		ideal := base * float64(i+1)
		if ideal <= 0 {
			return math.Inf(1)
		}
		dev := math.Abs(p.TPS-ideal) / ideal
		if dev > worst {
			worst = dev
		}
	}
	return worst
}
