package workloads

import (
	"fmt"

	"wroofline/internal/core"
	"wroofline/internal/machine"
	"wroofline/internal/units"
)

// ExampleModel reproduces Fig 1 (the artifact's example.py): the Workflow
// Roofline ceilings on the Perlmutter GPU partition assuming 1 TB loaded via
// the file system, 1 TB per node via the NICs, 4 GB over PCIe, 100 GFLOPs of
// compute, and 64-node tasks (wall 28).
func ExampleModel() (*core.Model, error) {
	pm := machine.Perlmutter()
	gpu, err := pm.Partition(machine.PartGPU)
	if err != nil {
		return nil, err
	}
	fsBW, err := pm.FSBandwidth(machine.PartGPU)
	if err != nil {
		return nil, err
	}
	wall, err := gpu.MaxParallelTasks(64)
	if err != nil {
		return nil, err
	}
	m := &core.Model{Title: "Workflow Roofline example on PM-GPU", Wall: wall}
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("File System Bytes: Loading %v @ %v", 1*units.TB, fsBW),
		Resource: core.ResFileSystem, Scope: core.ScopeSystem,
		TimePerTask: units.TimeToMove(1*units.TB, fsBW),
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("Network bytes: %v @ %v", 1*units.TB, gpu.NodeNICBW),
		Resource: core.ResNetwork, Scope: core.ScopeSystem,
		TimePerTask: units.TimeToMove(1*units.TB, gpu.NodeNICBW),
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("PCIe Bytes: %v @ %v", 4*units.GB, gpu.NodePCIeBW),
		Resource: core.ResPCIe, Scope: core.ScopeNode,
		TimePerTask: units.TimeToMove(4*units.GB, gpu.NodePCIeBW),
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("Compute Flops: %v @ %v", 100*units.GFLOP, gpu.NodeFlops),
		Resource: core.ResCompute, Scope: core.ScopeNode,
		TimePerTask: units.TimeToCompute(100*units.GFLOP, gpu.NodeFlops),
	})
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
