package workloads

import (
	"encoding/json"
	"testing"

	"wroofline/internal/core"
	"wroofline/internal/machine"
	"wroofline/internal/sim"
	"wroofline/internal/units"
	"wroofline/internal/wfgen"
)

// zeroPenaltyNUMA clones a machine and re-expresses every partition's flat
// memory bandwidth as a NUMA topology with no remote traffic: two sockets at
// half the bandwidth each. Halving and doubling are exact in IEEE 754, so
// the effective bandwidth — and everything downstream of it — must reproduce
// the flat model bit for bit.
func zeroPenaltyNUMA(m *machine.Machine) *machine.Machine {
	c := m.Clone()
	for _, p := range c.Partitions {
		p.NUMA = &machine.NUMA{Sockets: 2, SocketMemBW: p.NodeMemBW / 2}
	}
	return c
}

// genScenarios yields a modest wfgen corpus spanning every family, used by
// both differential tests below.
func genScenarios(t *testing.T) []*wfgen.Spec {
	t.Helper()
	var specs []*wfgen.Spec
	for i, fam := range wfgen.Families() {
		specs = append(specs, &wfgen.Spec{
			Family: fam, Width: 5, Depth: 3, Seed: uint64(100 + i), CV: 0.4,
			NodesPerTask: 2, Net: "5 GB", Payload: "512 MB",
		})
	}
	return specs
}

// mustJSON marshals for byte comparison.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestZeroPenaltyNUMAByteIdenticalToFlat is the NUMA differential: a machine
// whose NUMA blocks carry zero inter-socket penalty must produce
// byte-identical roofline models, analyses, and simulation results to the
// flat machine, for every generated topology family. This pins the invariant
// that adding the NUMA subsystem changed nothing for flat machines (the
// checked-in goldens stay valid) and that the NUMA path is exact, not
// approximately equal.
func TestZeroPenaltyNUMAByteIdenticalToFlat(t *testing.T) {
	flat := machine.Perlmutter()
	numa := zeroPenaltyNUMA(flat)
	for _, spec := range genScenarios(t) {
		wf, err := wfgen.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		fm, err := core.Build(flat, wf, core.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		nm, err := core.Build(numa, wf, core.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := mustJSON(t, fm), mustJSON(t, nm); a != b {
			t.Errorf("%s: models differ:\nflat: %s\nnuma: %s", wf.Name, a, b)
		}
		fa, err := fm.Analyze(nil, 64)
		if err != nil {
			t.Fatal(err)
		}
		na, err := nm.Analyze(nil, 64)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := mustJSON(t, fa), mustJSON(t, na); a != b {
			t.Errorf("%s: analyses differ", wf.Name)
		}
		fr, err := sim.Run(wf, nil, sim.Config{Machine: flat})
		if err != nil {
			t.Fatal(err)
		}
		nr, err := sim.Run(wf, nil, sim.Config{Machine: numa})
		if err != nil {
			t.Fatal(err)
		}
		if fr.Makespan != nr.Makespan {
			t.Errorf("%s: makespan %v (flat) vs %v (numa)", wf.Name, fr.Makespan, nr.Makespan)
		}
		if a, b := mustJSON(t, fr.Tasks), mustJSON(t, nr.Tasks); a != b {
			t.Errorf("%s: per-task windows differ", wf.Name)
		}
	}
}

// TestInfiniteBisectionMatchesFlatSim is the Ridgeline differential: a fabric
// with an absurdly large bisection bandwidth adds a ceiling to the model but
// must never bind, and the shared bisection link in the simulator must finish
// every transfer before the injection phase does — so makespans and per-task
// windows reproduce the flat (absent-entry) machine exactly.
func TestInfiniteBisectionMatchesFlatSim(t *testing.T) {
	flat := machine.Perlmutter()
	fat := flat.Clone()
	fat.BisectionBW = map[string]units.ByteRate{machine.PartCPU: 1e30}

	for _, spec := range genScenarios(t) {
		wf, err := wfgen.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		fm, err := core.Build(flat, wf, core.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		bm, err := core.Build(fat, wf, core.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		fb, fl := fm.BoundAtWall()
		bb, bl := bm.BoundAtWall()
		if fb != bb {
			t.Errorf("%s: bound %v (flat) vs %v (fat bisection)", wf.Name, fb, bb)
		}
		if fl.Name != bl.Name {
			t.Errorf("%s: limiting ceiling %q vs %q", wf.Name, fl.Name, bl.Name)
		}
		found := false
		for _, c := range bm.Ceilings {
			if c.Resource == core.ResBisection {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: fat-bisection model has no bisection ceiling", wf.Name)
		}
		fr, err := sim.Run(wf, nil, sim.Config{Machine: flat})
		if err != nil {
			t.Fatal(err)
		}
		br, err := sim.Run(wf, nil, sim.Config{Machine: fat})
		if err != nil {
			t.Fatal(err)
		}
		if fr.Makespan != br.Makespan {
			t.Errorf("%s: makespan %v (flat) vs %v (fat bisection)", wf.Name, fr.Makespan, br.Makespan)
		}
		if a, b := mustJSON(t, fr.Tasks), mustJSON(t, br.Tasks); a != b {
			t.Errorf("%s: per-task windows differ", wf.Name)
		}
	}
}

// TestConstrictedBisectionSlowsSim is the positive control for the
// differential above: with a bisection thinner than the aggregate injection
// demand, the shared link must actually stretch the simulated makespan, and
// the tight bisection must become the model's binding ceiling.
func TestConstrictedBisectionSlowsSim(t *testing.T) {
	flat := machine.Perlmutter()
	thin := flat.Clone()
	thin.BisectionBW = map[string]units.ByteRate{machine.PartCPU: 5 * units.GBPS}

	spec := &wfgen.Spec{Family: "fanout", Width: 8, Seed: 21, CV: 0.3,
		NodesPerTask: 2, Net: "5 GB"}
	wf, err := wfgen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := core.Build(thin, wf, core.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, limit := tm.BoundAtWall(); limit.Resource != core.ResBisection {
		t.Errorf("thin bisection not binding: limited by %v (%s)", limit.Resource, limit.Name)
	}
	fr, err := sim.Run(wf, nil, sim.Config{Machine: flat})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(wf, nil, sim.Config{Machine: thin})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Makespan <= fr.Makespan {
		t.Errorf("thin bisection did not stretch the makespan: %v vs flat %v",
			tr.Makespan, fr.Makespan)
	}
}
