package workloads

import (
	"fmt"

	"wroofline/internal/core"
	"wroofline/internal/machine"
	"wroofline/internal/sim"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// BerkeleyGW Si998 inputs (Section IV-C2 and the artifact appendix).
const (
	// BGWEpsilonFlops and BGWSigmaFlops are the total FLOP counts of the
	// two tasks: 1164 and 3226 PFLOPs.
	BGWEpsilonFlops = 1164 * units.PFLOP
	BGWSigmaFlops   = 3226 * units.PFLOP
	// BGWFSBytes is the total file-system input volume.
	BGWFSBytes = 70 * units.GB
	// BGWNetworkPerNode64 and BGWNetworkPerNode1024 are the per-node MPI
	// volumes the figures annotate: 168 GB at 64 nodes, 2676 GB at 1024.
	BGWNetworkPerNode64   = 168 * units.GB
	BGWNetworkPerNode1024 = 2676 * units.GB
	// BGWMeasured64 and BGWMeasured1024 are the reported end-to-end times.
	BGWMeasured64   = 4184.86
	BGWMeasured1024 = 404.74
)

// BGWNodeCeilingSeconds returns the workflow-level GPU-FLOPS ceiling time at
// the given scale: total FLOPs per node over the node peak (the paper quotes
// ~1800 s at 64 nodes and ~108 s at 1024 nodes).
func BGWNodeCeilingSeconds(nodesPerTask int) float64 {
	perNode := (BGWEpsilonFlops + BGWSigmaFlops) / units.Flops(nodesPerTask)
	return units.TimeToCompute(perNode, 4*9.7*units.TFLOPS)
}

// BGWEfficiency returns ceiling-time / measured-time at the given scale —
// the paper's "42% of node peak" (64 nodes) and "30% of node peak" (1024).
func BGWEfficiency(nodesPerTask int) (float64, error) {
	measured, err := bgwMeasured(nodesPerTask)
	if err != nil {
		return 0, err
	}
	return BGWNodeCeilingSeconds(nodesPerTask) / measured, nil
}

func bgwMeasured(nodesPerTask int) (float64, error) {
	switch nodesPerTask {
	case 64:
		return BGWMeasured64, nil
	case 1024:
		return BGWMeasured1024, nil
	default:
		return 0, fmt.Errorf("workloads: BGW was measured at 64 and 1024 nodes, not %d", nodesPerTask)
	}
}

func bgwNetworkPerNode(nodesPerTask int) units.Bytes {
	if nodesPerTask == 64 {
		return BGWNetworkPerNode64
	}
	return BGWNetworkPerNode1024
}

// BGWTaskSeconds splits the measured end-to-end time across the two tasks
// in proportion to their FLOP counts (the paper reports only the total; the
// proportional split reproduces the Fig 7c ordering, where Sigma dominates).
func BGWTaskSeconds(nodesPerTask int) (epsilon, sigma float64, err error) {
	measured, err := bgwMeasured(nodesPerTask)
	if err != nil {
		return 0, 0, err
	}
	fE := float64(BGWEpsilonFlops) / float64(BGWEpsilonFlops+BGWSigmaFlops)
	return measured * fE, measured * (1 - fE), nil
}

// BGW reproduces Fig 7a (64 nodes per task) or Fig 7b (1024 nodes per task):
// a two-task chain (Epsilon -> Sigma) whose single parallel slot is bounded
// by the GPU-FLOPS diagonal. Because the two tasks serialize inside one
// slot, the per-task ceiling work is the workflow average, matching the
// figure's "GPU FLOPS (1800s, 64 nodes/task)" annotation.
func BGW(nodesPerTask int) (*CaseStudy, error) {
	measured, err := bgwMeasured(nodesPerTask)
	if err != nil {
		return nil, err
	}
	pm := machine.Perlmutter()
	gpu, err := pm.Partition(machine.PartGPU)
	if err != nil {
		return nil, err
	}
	wall, err := gpu.MaxParallelTasks(nodesPerTask)
	if err != nil {
		return nil, err
	}
	fsBW, err := pm.FSBandwidth(machine.PartGPU)
	if err != nil {
		return nil, err
	}

	epsSecs, sigSecs, err := BGWTaskSeconds(nodesPerTask)
	if err != nil {
		return nil, err
	}
	netPerNode := bgwNetworkPerNode(nodesPerTask)

	w := workflow.New("BerkeleyGW", machine.PartGPU)
	eps := &workflow.Task{
		ID: "epsilon", Name: "Epsilon", Nodes: nodesPerTask,
		Work: workflow.Work{
			Flops:        BGWEpsilonFlops / units.Flops(nodesPerTask),
			NetworkBytes: netPerNode / 2,
			FSBytes:      BGWFSBytes / 2,
		},
		MeasuredSeconds: epsSecs,
	}
	sig := &workflow.Task{
		ID: "sigma", Name: "Sigma", Nodes: nodesPerTask,
		Work: workflow.Work{
			Flops:        BGWSigmaFlops / units.Flops(nodesPerTask),
			NetworkBytes: netPerNode / 2,
			FSBytes:      BGWFSBytes / 2,
		},
		MeasuredSeconds: sigSecs,
	}
	if err := w.AddTask(eps); err != nil {
		return nil, err
	}
	if err := w.AddTask(sig); err != nil {
		return nil, err
	}
	if err := w.AddDep("epsilon", "sigma"); err != nil {
		return nil, err
	}

	ceilingSecs := BGWNodeCeilingSeconds(nodesPerTask)
	m := &core.Model{Title: fmt.Sprintf("BerkeleyGW on PM-GPU (%d nodes/task)", nodesPerTask), Wall: wall}
	m.AddCeiling(core.Ceiling{
		// Per-task average: two serialized tasks share the slot.
		Name:     fmt.Sprintf("GPU FLOPS (%.4gs, %d nodes/task)", ceilingSecs, nodesPerTask),
		Resource: core.ResCompute, Scope: core.ScopeNode,
		TimePerTask: ceilingSecs / 2,
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("System Network: transfer %v @ %v", netPerNode, gpu.NodeNICBW),
		Resource: core.ResNetwork, Scope: core.ScopeSystem,
		TimePerTask: units.TimeToMove(netPerNode, gpu.NodeNICBW) / 2,
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("File System: loading %v @ %v", BGWFSBytes, fsBW),
		Resource: core.ResFileSystem, Scope: core.ScopeSystem,
		TimePerTask: units.TimeToMove(BGWFSBytes, fsBW) / 2,
	})

	pt, err := core.NewPoint(fmt.Sprintf("BGW %d nodes", nodesPerTask), 2, 1, measured)
	if err != nil {
		return nil, err
	}

	// Simulation: FS load, MPI exchange, then compute at the calibrated
	// efficiency; the non-compute remainder is whatever the measured split
	// leaves after network and file-system time.
	progs := make(map[string]sim.Program, 2)
	for _, task := range []*workflow.Task{eps, sig} {
		fsTime := units.TimeToMove(task.Work.FSBytes, fsBW)
		netTime := units.TimeToMove(task.Work.NetworkBytes, gpu.NodeNICBW)
		computeAtPeak := units.TimeToCompute(task.Work.Flops, gpu.NodeFlops)
		eff := computeAtPeak / (task.MeasuredSeconds - fsTime - netTime)
		progs[task.ID] = sim.Program{
			{Kind: sim.PhaseFS, Bytes: task.Work.FSBytes, Name: "filesystem"},
			{Kind: sim.PhaseNetwork, Bytes: task.Work.NetworkBytes, Name: "network"},
			{Kind: sim.PhaseCompute, Flops: task.Work.Flops, Efficiency: eff, Name: "compute"},
		}
	}

	return &CaseStudy{
		Name:      fmt.Sprintf("BerkeleyGW/%d-nodes", nodesPerTask),
		Figure:    map[int]string{64: "Fig 7a", 1024: "Fig 7b"}[nodesPerTask],
		Machine:   pm,
		Workflow:  w,
		Model:     m,
		Points:    []core.Point{pt},
		Programs:  progs,
		SimConfig: sim.Config{Machine: pm},
	}, nil
}

// BGWTaskView reproduces Fig 7c: per-task points at both scales against the
// per-task GPU-FLOPS ceilings. The returned model carries four ceilings (one
// per task and scale) and the four task dots.
func BGWTaskView() (*core.Model, []core.Point, error) {
	pm := machine.Perlmutter()
	gpu, err := pm.Partition(machine.PartGPU)
	if err != nil {
		return nil, nil, err
	}
	m := &core.Model{Title: "BerkeleyGW task view on PM-GPU", Wall: 28}
	var points []core.Point
	for _, scale := range []int{64, 1024} {
		epsSecs, sigSecs, err := BGWTaskSeconds(scale)
		if err != nil {
			return nil, nil, err
		}
		for _, tv := range []struct {
			name     string
			flops    units.Flops
			measured float64
		}{
			{"Epsilon", BGWEpsilonFlops, epsSecs},
			{"Sigma", BGWSigmaFlops, sigSecs},
		} {
			ceil := units.TimeToCompute(tv.flops/units.Flops(scale), gpu.NodeFlops)
			m.AddCeiling(core.Ceiling{
				Name:     fmt.Sprintf("GPU FLOPS (%.4gs, %d nodes per %s)", ceil, scale, tv.name),
				Resource: core.ResCompute, Scope: core.ScopeNode,
				TimePerTask: ceil,
			})
			pt, err := core.NewPoint(fmt.Sprintf("Task-%s %d nodes", tv.name, scale), 1, 1, tv.measured)
			if err != nil {
				return nil, nil, err
			}
			points = append(points, pt)
		}
	}
	return m, points, nil
}
