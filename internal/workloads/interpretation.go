package workloads

import (
	"fmt"

	"wroofline/internal/core"
	"wroofline/internal/workflow"
)

// InterpretationFigure is one of the paper's schematic interpretation
// figures (Fig 2a-2c, Fig 3a-3b): a demonstration model, optional points,
// and the rendering hints that reproduce the figure's message.
type InterpretationFigure struct {
	// Name is "Fig 2a" etc.; Caption summarizes the message.
	Name, Caption string
	// Model carries the schematic ceilings and wall.
	Model *core.Model
	// Points holds the illustrative empirical dots.
	Points []core.Point
	// ShowZones and ShadeBoundClass select the figure's shading mode.
	ShowZones, ShadeBoundClass bool
}

// demoModel builds the schematic model the Fig 2/3 panels share: one node
// diagonal, one system horizontal, a wall of 32, and (optionally) targets.
func demoModel(title string, withTargets bool) *core.Model {
	m := &core.Model{Title: title, Wall: 32}
	m.AddCeiling(core.Ceiling{
		Name: "Node performance bound", Resource: core.ResCompute,
		Scope: core.ScopeNode, TimePerTask: 5,
	})
	m.AddCeiling(core.Ceiling{
		Name: "System performance bound", Resource: core.ResFileSystem,
		Scope: core.ScopeSystem, TimePerTask: 0.8,
	})
	if withTargets {
		m.SetTargets(workflow.Targets{MakespanSeconds: 100, ThroughputTPS: 1.0}, 50)
	}
	return m
}

// InterpretationFigures returns reproductions of the paper's Fig 2 and
// Fig 3 panels.
func InterpretationFigures() ([]InterpretationFigure, error) {
	twoA := demoModel("Fig 2a: target makespan and throughput zones", true)

	twoB := demoModel("Fig 2b: two optimization directions", true)
	// The yellow-zone dot: meets the makespan target, misses throughput.
	dot, err := core.NewPoint("workflow", 50, 4, 80)
	if err != nil {
		return nil, err
	}

	// Fig 2c: double the intra-task parallelism; the wall halves and the
	// node ceiling doubles.
	base2c := demoModel("Fig 2c: 2x intra-task parallelism", true)
	twoC, err := base2c.ScaleIntraTask(2, 1.0)
	if err != nil {
		return nil, err
	}
	twoC.Title = "Fig 2c: 2x intra-task parallelism (wall 32 -> 16)"
	halved, err := core.NewPoint("workflow (2x intra-task)", 50, 2, 80)
	if err != nil {
		return nil, err
	}

	// Fig 3a: a dot in the node-bound (blue) region.
	threeA := demoModel("Fig 3a: node bound", false)
	nodeDot, err := core.NewPoint("workflow", 8, 2, 40) // 0.2 TPS, under the node diagonal
	if err != nil {
		return nil, err
	}

	// Fig 3b: a dot in the system-bound (orange) region.
	threeB := demoModel("Fig 3b: system bound", false)
	sysDot, err := core.NewPoint("workflow", 16, 24, 20) // 0.8 TPS, past the crossover
	if err != nil {
		return nil, err
	}

	figs := []InterpretationFigure{
		{
			Name: "Fig 2a", Caption: "targets divide the attainable area into four zones",
			Model: twoA, ShowZones: true,
		},
		{
			Name: "Fig 2b", Caption: "a yellow-zone dot motivates latency and parallelism directions",
			Model: twoB, Points: []core.Point{dot}, ShowZones: true,
		},
		{
			Name: "Fig 2c", Caption: "intra-task rescaling moves the wall left and the node ceiling up",
			Model: twoC, Points: []core.Point{halved}, ShowZones: true,
		},
		{
			Name: "Fig 3a", Caption: "node-bound dot (blue region)",
			Model: threeA, Points: []core.Point{nodeDot}, ShadeBoundClass: true,
		},
		{
			Name: "Fig 3b", Caption: "system-bound dot (orange region)",
			Model: threeB, Points: []core.Point{sysDot}, ShadeBoundClass: true,
		},
	}
	// Sanity: the Fig 3 dots land in the regions their captions claim.
	if cls := threeA.ClassifyBound(nodeDot); cls != core.NodeBound {
		return nil, fmt.Errorf("workloads: Fig 3a dot classifies as %v", cls)
	}
	if cls := threeB.ClassifyBound(sysDot); cls != core.SystemBound {
		return nil, fmt.Errorf("workloads: Fig 3b dot classifies as %v", cls)
	}
	return figs, nil
}
