package workloads

import (
	"testing"

	"wroofline/internal/core"
)

func TestCosmoCeilingConstants(t *testing.T) {
	// Fig 8 annotations: PCIe makespan 0.8 s, HBM makespan 4.2 s.
	if got := CosmoPCIeSecondsPerEpoch(); !almost(got, 0.78, 0.03) {
		t.Errorf("PCIe ceiling = %.3fs, want ~0.78 (paper rounds to 0.8)", got)
	}
	if got := CosmoHBMSecondsPerEpoch(); !almost(got, 4.2, 0.02) {
		t.Errorf("HBM ceiling = %.3fs, want ~4.2", got)
	}
	// HBM bound is below (slower than) PCIe: HBM is the ultimate limit.
	if CosmoHBMSecondsPerEpoch() <= CosmoPCIeSecondsPerEpoch() {
		t.Error("HBM per-epoch time should exceed PCIe per-epoch time")
	}
}

func TestCosmoModelShape(t *testing.T) {
	cs, err := CosmoFlow(12)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Model.Wall != 12 {
		t.Errorf("wall = %d, want 12 (1536/128)", cs.Model.Wall)
	}
	// At the wall the binding resource is node memory (HBM): 12/4.2 = 2.857
	// epochs/s vs the FS horizontal at 2.8 — the two nearly coincide, with
	// HBM binding just below the FS line only for p < 12.
	if res := cs.Model.LimitingResource(6); res != core.ResMemory {
		t.Errorf("limiting resource at 6 instances = %v, want memory (HBM)", res)
	}
	bound, _ := cs.Model.BoundAtWall()
	if !almost(bound, 2.8, 0.03) {
		t.Errorf("bound at wall = %.3f epochs/s, want ~2.8", bound)
	}
}

func TestCosmoInstancesValidation(t *testing.T) {
	for _, n := range []int{0, -1, 13} {
		if _, err := CosmoFlow(n); err == nil {
			t.Errorf("CosmoFlow(%d) should fail", n)
		}
	}
}

// Fig 8's empirical claim: throughput grows linearly with the number of
// instances up to the 12-instance wall.
func TestCosmoThroughputLinear(t *testing.T) {
	points, err := CosmoFlowSweep(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 12 {
		t.Fatalf("points = %d", len(points))
	}
	if dev := CosmoLinearityError(points); dev > 0.10 {
		t.Errorf("worst deviation from linear = %.1f%%, want <10%%", dev*100)
	}
	// Monotone increasing.
	for i := 1; i < len(points); i++ {
		if points[i].TPS <= points[i-1].TPS {
			t.Errorf("throughput not increasing at %d instances: %v -> %v",
				i+1, points[i-1].TPS, points[i].TPS)
		}
	}
	// All points stay below the model bound at their x.
	cs, err := CosmoFlow(12)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		bound, _ := cs.Model.Bound(p.ParallelTasks)
		if p.TPS > bound*1.001 {
			t.Errorf("point %s (%.3f eps/s) exceeds its bound %.3f", p.Label, p.TPS, bound)
		}
	}
	// The 12-instance point approaches the HBM ceiling: at least 60% of it
	// ("HBM is ultimately the limitation").
	last := points[11]
	bound, limit := cs.Model.Bound(12)
	if last.TPS < 0.6*bound {
		t.Errorf("12-instance point %.3f should be within 60%% of the bound %.3f (%s)",
			last.TPS, bound, limit.Name)
	}
}

func TestCosmoSweepValidation(t *testing.T) {
	if _, err := CosmoFlowSweep(0); err == nil {
		t.Error("zero sweep should fail")
	}
	if _, err := CosmoFlowSweep(13); err == nil {
		t.Error("beyond-wall sweep should fail")
	}
}

func TestCosmoLinearityErrorEdgeCases(t *testing.T) {
	if CosmoLinearityError(nil) == 0 {
		t.Error("empty series should report infinite deviation")
	}
	perfect := []core.Point{{TPS: 1}, {TPS: 2}, {TPS: 3}}
	if dev := CosmoLinearityError(perfect); dev != 0 {
		t.Errorf("perfect series deviation = %v", dev)
	}
	if CosmoLinearityError([]core.Point{{TPS: 0}}) == 0 {
		t.Error("zero base should report infinite deviation")
	}
}

// The throughput benchmark's peak node usage equals instances x 128 and
// stays within the 1536 available nodes.
func TestCosmoSimNodeUsage(t *testing.T) {
	cs, err := CosmoFlow(12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cs.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakNodesInUse != 12*128 {
		t.Errorf("peak nodes = %d, want 1536", res.PeakNodesInUse)
	}
	// Breakdown sanity: HBM dominates PCIe per epoch.
	bd := res.Breakdown()
	if bd["hbm"] <= bd["pcie"] {
		t.Errorf("HBM time (%v) should exceed PCIe time (%v)", bd["hbm"], bd["pcie"])
	}
}
