package workloads

import (
	"fmt"

	"wroofline/internal/core"
	"wroofline/internal/machine"
	"wroofline/internal/sim"
	"wroofline/internal/wfgen"
)

// Generated wraps a wfgen scenario into a first-class case study: the
// generated workflow on a named built-in machine, with the roofline model
// derived by core.Build and the simulator using the default per-task
// programs. The result flows through every consumer a hand-built case does
// — the CLIs, the study kinds, and the wfserved endpoints.
func Generated(spec *wfgen.Spec, machineName string) (*CaseStudy, error) {
	m, err := machine.ByName(machineName)
	if err != nil {
		return nil, err
	}
	wf, err := wfgen.Generate(spec)
	if err != nil {
		return nil, err
	}
	model, err := core.Build(m, wf, core.BuildOptions{})
	if err != nil {
		return nil, fmt.Errorf("workloads: model for %s: %w", wf.Name, err)
	}
	return &CaseStudy{
		Name:      wf.Name,
		Figure:    "generated",
		Machine:   m,
		Workflow:  wf,
		Model:     model,
		SimConfig: sim.Config{Machine: m},
	}, nil
}

// generatedCases are the registry's fixed generated scenarios: one per
// topology family, pinned seeds, spanning the flat, NUMA, and Ridgeline
// machine models so every machine variant stays exercised end to end.
var generatedCases = map[string]func() (*CaseStudy, error){
	"gen-chain": func() (*CaseStudy, error) {
		return Generated(&wfgen.Spec{Family: "chain", Depth: 12, Seed: 1, CV: 0.3,
			Flops: "2 TFLOP", Mem: "500 GB", FS: "50 GB"}, "perlmutter")
	},
	"gen-fanout": func() (*CaseStudy, error) {
		return Generated(&wfgen.Spec{Family: "fanout", Width: 64, Seed: 2, CV: 0.3,
			Flops: "500 GFLOP", Mem: "100 GB", FS: "20 GB", Payload: "2 GB"}, "perlmutter")
	},
	"gen-diamond": func() (*CaseStudy, error) {
		return Generated(&wfgen.Spec{Family: "diamond", Width: 8, Depth: 4, Seed: 3, CV: 0.3,
			Flops: "1 TFLOP", Mem: "200 GB", FS: "10 GB", Payload: "1 GB"}, "perlmutter-numa")
	},
	"gen-montage": func() (*CaseStudy, error) {
		return Generated(&wfgen.Spec{Family: "montage", Width: 16, Seed: 4, CV: 0.3,
			Flops: "300 GFLOP", Mem: "800 GB", FS: "15 GB", Payload: "3 GB"}, "perlmutter-numa")
	},
	"gen-epigenomics": func() (*CaseStudy, error) {
		return Generated(&wfgen.Spec{Family: "epigenomics", Width: 8, Depth: 4, Seed: 5, CV: 0.3,
			NodesPerTask: 4, Flops: "2 TFLOP", Mem: "400 GB", Net: "20 GB", FS: "25 GB"}, "ridgeline")
	},
}
