// Package workloads reproduces the paper's four case studies — LCLS,
// BerkeleyGW, CosmoFlow, and GPTune — from the analytical-model inputs
// published in the paper's artifact appendix. Each case study bundles:
//
//   - the machine and characterized workflow,
//   - the Workflow Roofline model with the figure's exact ceilings,
//   - the paper's empirical points (reported makespans),
//   - a discrete-event simulation setup whose calibrated phase programs
//     regenerate those makespans from first principles, and
//   - the expected headline numbers, used by tests and EXPERIMENTS.md.
//
// Where the paper reports only totals (e.g. BGW's 4184.86 s end-to-end), the
// split across phases is calibrated and documented inline; every calibration
// is pinned by a number the paper does state.
package workloads

import (
	"fmt"

	"wroofline/internal/core"
	"wroofline/internal/machine"
	"wroofline/internal/sim"
	"wroofline/internal/workflow"
)

// CaseStudy is one fully-specified experiment.
type CaseStudy struct {
	// Name identifies the case study and scenario, e.g. "LCLS/Cori-HSW".
	Name string
	// Figure names the paper element this reproduces, e.g. "Fig 5a".
	Figure string
	// Machine is the system model.
	Machine *machine.Machine
	// Workflow is the characterized workflow.
	Workflow *workflow.Workflow
	// Model is the Workflow Roofline with the paper's ceilings.
	Model *core.Model
	// Points are the paper's empirical dots.
	Points []core.Point
	// Programs are the simulation phase programs per task.
	Programs map[string]sim.Program
	// SimConfig configures the simulator run.
	SimConfig sim.Config
}

// Simulate runs the case study's discrete-event simulation.
func (c *CaseStudy) Simulate() (*sim.Result, error) {
	if c.Workflow == nil {
		return nil, fmt.Errorf("workloads: case study %s has no workflow", c.Name)
	}
	return sim.Run(c.Workflow, c.Programs, c.SimConfig)
}

// Compile builds a reusable simulation plan for the case study. Ensemble
// runners that simulate the same case many times (Monte Carlo contention
// trials, failure ensembles) compile once and run per-trial variations
// against the shared plan instead of rebuilding the workflow every trial.
func (c *CaseStudy) Compile() (*sim.Plan, error) {
	if c.Workflow == nil {
		return nil, fmt.Errorf("workloads: case study %s has no workflow", c.Name)
	}
	return sim.Compile(c.Workflow, c.Programs, c.SimConfig)
}

// CharacterizationMethod records how a metric was obtained for Table I.
type CharacterizationMethod string

// Methods appearing in Table I.
const (
	MethodReported   CharacterizationMethod = "reported"
	MethodMeasured   CharacterizationMethod = "Measured"
	MethodAnalytical CharacterizationMethod = "Analytical model"
	MethodNA         CharacterizationMethod = "NA"
)

// TableIRow is one column of the paper's Table I (one workflow's methods).
type TableIRow struct {
	Workflow      string
	WallClockTime CharacterizationMethod
	NodeFlops     CharacterizationMethod
	CPUGPUBytes   CharacterizationMethod
	NodePCIeBytes CharacterizationMethod
	NetworkBytes  CharacterizationMethod
	FSBytes       CharacterizationMethod
}

// TableI returns the paper's Table I: how each node- and system-performance
// metric was characterized per workflow.
func TableI() []TableIRow {
	return []TableIRow{
		{
			Workflow:      "LCLS",
			WallClockTime: MethodReported,
			NodeFlops:     MethodNA,
			CPUGPUBytes:   MethodAnalytical,
			NodePCIeBytes: MethodNA,
			NetworkBytes:  MethodNA,
			FSBytes:       MethodAnalytical,
		},
		{
			Workflow:      "BerkeleyGW",
			WallClockTime: MethodMeasured,
			NodeFlops:     MethodReported,
			CPUGPUBytes:   MethodReported,
			NodePCIeBytes: MethodNA,
			NetworkBytes:  MethodReported,
			FSBytes:       MethodReported,
		},
		{
			Workflow:      "CosmoFlow",
			WallClockTime: MethodMeasured,
			NodeFlops:     MethodNA,
			CPUGPUBytes:   MethodMeasured,
			NodePCIeBytes: MethodAnalytical,
			NetworkBytes:  MethodNA,
			FSBytes:       MethodAnalytical,
		},
		{
			Workflow:      "GPTune",
			WallClockTime: MethodMeasured,
			NodeFlops:     MethodNA,
			CPUGPUBytes:   MethodMeasured,
			NodePCIeBytes: MethodNA,
			NetworkBytes:  MethodNA,
			FSBytes:       MethodMeasured,
		},
	}
}

// All returns every case study in the paper's presentation order. Each call
// builds fresh instances so callers may mutate them freely.
func All() ([]*CaseStudy, error) {
	var out []*CaseStudy
	builders := []func() (*CaseStudy, error){
		LCLSCori,
		LCLSPerlmutter,
		func() (*CaseStudy, error) { return BGW(64) },
		func() (*CaseStudy, error) { return BGW(1024) },
		func() (*CaseStudy, error) { return CosmoFlow(12) },
		func() (*CaseStudy, error) { return GPTune(GPTuneRCI) },
		func() (*CaseStudy, error) { return GPTune(GPTuneSpawn) },
	}
	for _, b := range builders {
		cs, err := b()
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}
