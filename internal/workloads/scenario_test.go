package workloads

import (
	"strings"
	"testing"

	"wroofline/internal/core"
	"wroofline/internal/gantt"
	"wroofline/internal/plot"
)

// The Fig 5a/6 contention overlays: the base case binds on the good-day
// ceiling with the contended one as scenario; the bad-day variant flips.
func TestLCLSScenarioFlip(t *testing.T) {
	good, err := LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	var baseOperative, baseScenario string
	for _, c := range good.Model.Ceilings {
		if c.Resource != core.ResExternal {
			continue
		}
		if c.Scenario {
			baseScenario = c.Name
		} else {
			baseOperative = c.Name
		}
	}
	if !strings.Contains(baseScenario, "contended") {
		t.Errorf("good-day scenario ceiling = %q, want the contended one", baseScenario)
	}
	if strings.Contains(baseOperative, "contended") {
		t.Errorf("good-day operative ceiling = %q, should not be contended", baseOperative)
	}

	bad, err := LCLSCoriBadDay()
	if err != nil {
		t.Fatal(err)
	}
	_, limit := bad.Model.Bound(5)
	if !strings.Contains(limit.Name, "contended") {
		t.Errorf("bad-day operative ceiling = %q, want the contended one", limit.Name)
	}
	// Bad-day dot against the bad-day model is near its bound.
	badPt := bad.Points[1]
	eff := bad.Model.Efficiency(badPt)
	if eff < 0.9 || eff > 1.3 {
		t.Errorf("bad-day dot efficiency vs contended bound = %v, want ~1", eff)
	}

	// Same flip on Perlmutter.
	pmContended, err := LCLSPerlmutterContended()
	if err != nil {
		t.Fatal(err)
	}
	_, limit = pmContended.Model.Bound(5)
	if !strings.Contains(limit.Name, "contention") {
		t.Errorf("PM contended operative ceiling = %q", limit.Name)
	}
}

// Scenario ceilings render dashed throughout, distinct from the primary.
func TestScenarioCeilingRendersDashed(t *testing.T) {
	cs, err := LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	svg, err := plot.RooflineSVG(cs.Model, cs.Points, plot.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, `stroke-dasharray="7 3"`) {
		t.Error("scenario ceiling should use the 7-3 dash pattern")
	}
	if !strings.Contains(svg, "<polyline") {
		t.Error("primary ceilings should still render solid polylines")
	}
}

// LCLS Gantt from a simulation: five overlapping analysis bars, then the
// merge; the merge is last.
func TestLCLSGanttShape(t *testing.T) {
	cs, err := LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cs.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	path, _, err := cs.Workflow.CriticalPathMeasured()
	if err != nil {
		t.Fatal(err)
	}
	ch, err := gantt.FromRecorder("LCLS", res.Recorder, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Bars) != 6 {
		t.Fatalf("bars = %d", len(ch.Bars))
	}
	var merge gantt.Bar
	analysesEnd := 0.0
	for _, b := range ch.Bars {
		if b.Task == "F" {
			merge = b
			continue
		}
		if b.Start != 0 {
			t.Errorf("analysis task %s should start at 0, got %v", b.Task, b.Start)
		}
		if b.End > analysesEnd {
			analysesEnd = b.End
		}
	}
	if merge.Task != "F" {
		t.Fatal("merge bar missing")
	}
	if merge.Start < analysesEnd-1e-9 {
		t.Errorf("merge starts at %v before analyses end at %v", merge.Start, analysesEnd)
	}
}

// All case studies render to SVG with points without error — the wfplot
// path exercised at the library level.
func TestAllCaseStudiesRender(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range all {
		svg, err := plot.RooflineSVG(cs.Model, cs.Points, plot.Options{ShowZones: true})
		if err != nil {
			t.Errorf("%s: %v", cs.Name, err)
			continue
		}
		if !strings.HasPrefix(svg, "<svg") {
			t.Errorf("%s: not an SVG", cs.Name)
		}
		ascii, err := plot.RooflineASCII(cs.Model, cs.Points, 60, 14)
		if err != nil {
			t.Errorf("%s ascii: %v", cs.Name, err)
			continue
		}
		if !strings.Contains(ascii, "|") {
			t.Errorf("%s: ASCII missing the wall", cs.Name)
		}
	}
}

// The case-study CaseStudy.Simulate error path.
func TestCaseStudySimulateNilWorkflow(t *testing.T) {
	cs := &CaseStudy{Name: "broken"}
	if _, err := cs.Simulate(); err == nil {
		t.Error("nil workflow should fail")
	}
}

// The interpretation figures (Fig 2a-2c, Fig 3a-3b) reproduce their
// captions' classifications.
func TestInterpretationFigures(t *testing.T) {
	figs, err := InterpretationFigures()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 5 {
		t.Fatalf("figures = %d, want 5", len(figs))
	}
	byName := map[string]InterpretationFigure{}
	for _, f := range figs {
		byName[f.Name] = f
		if f.Model == nil || f.Caption == "" {
			t.Errorf("%s: incomplete figure", f.Name)
		}
		if err := f.Model.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
		// Every dot is attainable.
		for _, pt := range f.Points {
			bound, _ := f.Model.Bound(pt.ParallelTasks)
			if pt.TPS > bound*1.001 {
				t.Errorf("%s: dot %v exceeds bound %v", f.Name, pt.TPS, bound)
			}
		}
	}
	// Fig 2a has targets and zone shading.
	if !byName["Fig 2a"].ShowZones || byName["Fig 2a"].Model.Targets == nil {
		t.Error("Fig 2a should declare targets and zones")
	}
	// Fig 2b's dot is in the yellow zone and gets both directions.
	f2b := byName["Fig 2b"]
	if zone := f2b.Model.ClassifyZone(f2b.Points[0]); zone != core.ZoneGoodMakespanPoorThroughput {
		t.Errorf("Fig 2b zone = %v, want yellow", zone)
	}
	recs := f2b.Model.Advise(f2b.Points[0])
	feasible := 0
	for _, r := range recs {
		if r.Feasible {
			feasible++
		}
	}
	if feasible < 2 {
		t.Errorf("Fig 2b should motivate two feasible directions, got %+v", recs)
	}
	// Fig 2c halves the wall.
	if byName["Fig 2c"].Model.Wall != 16 {
		t.Errorf("Fig 2c wall = %d, want 16", byName["Fig 2c"].Model.Wall)
	}
	// Fig 3 panels shade by bound class.
	if !byName["Fig 3a"].ShadeBoundClass || !byName["Fig 3b"].ShadeBoundClass {
		t.Error("Fig 3 panels should shade by bound class")
	}
}

// Fig 1's example model: the ceilings and wall carry the figure's exact
// values.
func TestExampleModelFig1(t *testing.T) {
	m, err := ExampleModel()
	if err != nil {
		t.Fatal(err)
	}
	if m.Wall != 28 {
		t.Errorf("wall = %d, want 28", m.Wall)
	}
	if len(m.Ceilings) != 4 {
		t.Fatalf("ceilings = %d, want 4", len(m.Ceilings))
	}
	byRes := map[core.Resource]core.Ceiling{}
	for _, c := range m.Ceilings {
		byRes[c.Resource] = c
	}
	// FS: 1 TB @ 5.6 TB/s -> 5.6 TPS horizontal.
	if got := byRes[core.ResFileSystem].TPSAt(28); got < 5.59 || got > 5.61 {
		t.Errorf("FS ceiling = %v, want 5.6", got)
	}
	// Network: 1 TB @ 100 GB/s -> 0.1 TPS horizontal; it binds at the wall.
	bound, limit := m.BoundAtWall()
	if limit.Resource != core.ResNetwork || bound < 0.099 || bound > 0.101 {
		t.Errorf("bound at wall = %v by %v, want 0.1 by network", bound, limit.Resource)
	}
	// PCIe: 4 GB @ 100 GB/s -> 0.04 s; compute: 100 GFLOP @ 38.8 TFLOPS.
	if got := byRes[core.ResPCIe].TimePerTask; got < 0.0399 || got > 0.0401 {
		t.Errorf("PCIe time = %v, want 0.04", got)
	}
	if got := byRes[core.ResCompute].TimePerTask; got < 0.00257 || got > 0.00259 {
		t.Errorf("compute time = %v, want ~0.00258", got)
	}
}
