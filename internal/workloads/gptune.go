package workloads

import (
	"fmt"

	"wroofline/internal/core"
	"wroofline/internal/machine"
	"wroofline/internal/sim"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// GPTuneMode selects the control flow of Fig 9.
type GPTuneMode int

const (
	// GPTuneRCI drives each autotuning iteration from bash: every sample
	// pays an srun launch, a Python round trip, and a metadata load from
	// the file system (Fig 9a).
	GPTuneRCI GPTuneMode = iota
	// GPTuneSpawn drives iterations via MPI_Comm_Spawn with metadata kept
	// in memory: one srun, no bash, negligible I/O (Fig 9b).
	GPTuneSpawn
	// GPTuneProjected is the open dot of Fig 10a: Spawn with the Python
	// overhead removed (12x faster).
	GPTuneProjected
)

// String names the mode.
func (m GPTuneMode) String() string {
	switch m {
	case GPTuneRCI:
		return "RCI"
	case GPTuneSpawn:
		return "Spawn"
	case GPTuneProjected:
		return "Projected"
	default:
		return fmt.Sprintf("GPTuneMode(%d)", int(m))
	}
}

// GPTune inputs (Section IV-C4 and the appendix). The tuned application is
// SuperLU_DIST on a 4960x4960 sparse matrix, forty serialized samples on one
// PM-CPU node.
const (
	// GPTuneSamples is the tuned sample count.
	GPTuneSamples = 40
	// GPTuneCPUBytes is the measured per-socket CPU traffic per sample.
	GPTuneCPUBytes = 3344 * units.MB
	// GPTuneFSBytesRCI and GPTuneFSBytesSpawn are the total file-system
	// volumes of the two modes: 45 MB vs 40 MB — nearly identical, which is
	// the paper's point that I/O pattern, not volume, separates them.
	GPTuneFSBytesRCI   = 45 * units.MB
	GPTuneFSBytesSpawn = 40 * units.MB
	// GPTuneRCISeconds and GPTuneSpawnSeconds are the measured totals.
	GPTuneRCISeconds   = 553.0
	GPTuneSpawnSeconds = 228.0
	// GPTuneProjectedSpeedup is the extra headroom over Spawn once the
	// Python overhead is removed.
	GPTuneProjectedSpeedup = 12.0

	// GPTuneIOSecondsRCI and GPTuneIOSecondsSpawn are the measured I/O
	// times: 30 s of per-iteration metadata loads vs 0.02 s.
	GPTuneIOSecondsRCI   = 30.0
	GPTuneIOSecondsSpawn = 0.02
)

// gptuneStacks is the Fig 10b decomposition. The paper publishes the totals
// (553 s, 228 s), the I/O split (30 s vs 0.02 s), the combined bash+python
// overhead for RCI (~500 s), and the projected 12x over Spawn; the per-stack
// values below satisfy all four (python 205 + bash 299 = 504 ~ 500;
// application + model&search = 19 ~ 228/12).
var gptuneStacks = map[GPTuneMode]map[string]float64{
	GPTuneRCI: {
		"python":           205,
		"bash":             299,
		"load data":        GPTuneIOSecondsRCI,
		"application":      13,
		"model and search": 6,
	},
	GPTuneSpawn: {
		"python":           208.98,
		"load data":        GPTuneIOSecondsSpawn,
		"application":      13,
		"model and search": 6,
	},
	GPTuneProjected: {
		"load data":        GPTuneIOSecondsSpawn,
		"application":      13,
		"model and search": 6,
	},
}

// GPTuneStack returns the Fig 10b stacked breakdown for a mode (a copy).
func GPTuneStack(mode GPTuneMode) (map[string]float64, error) {
	stack, ok := gptuneStacks[mode]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown GPTune mode %v", mode)
	}
	out := make(map[string]float64, len(stack))
	for k, v := range stack {
		out[k] = v
	}
	return out, nil
}

// GPTuneTotalSeconds returns the mode's end-to-end time.
func GPTuneTotalSeconds(mode GPTuneMode) (float64, error) {
	stack, err := GPTuneStack(mode)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, v := range stack {
		total += v
	}
	return total, nil
}

// GPTune reproduces Fig 10a for a mode: forty serialized sample tasks on one
// node (one parallel task), bounded by the per-sample control-flow overhead
// rather than data volume.
func GPTune(mode GPTuneMode) (*CaseStudy, error) {
	stack, err := GPTuneStack(mode)
	if err != nil {
		return nil, err
	}
	pm := machine.Perlmutter()
	cpu, err := pm.Partition(machine.PartCPU)
	if err != nil {
		return nil, err
	}
	fsBW, err := pm.FSBandwidth(machine.PartCPU)
	if err != nil {
		return nil, err
	}

	fsBytes := GPTuneFSBytesSpawn
	if mode == GPTuneRCI {
		fsBytes = GPTuneFSBytesRCI
	}

	// Forty serialized samples: a chain of one-node tasks.
	w := workflow.New("GPTune", machine.PartCPU)
	progs := make(map[string]sim.Program, GPTuneSamples)
	prev := ""
	for i := 0; i < GPTuneSamples; i++ {
		id := fmt.Sprintf("sample%02d", i)
		if err := w.AddTask(&workflow.Task{
			ID:    id,
			Nodes: 1,
			Work: workflow.Work{
				MemBytes: GPTuneCPUBytes,
				FSBytes:  fsBytes / GPTuneSamples,
			},
		}); err != nil {
			return nil, err
		}
		if prev != "" {
			if err := w.AddDep(prev, id); err != nil {
				return nil, err
			}
		}
		prev = id

		// Per-sample program: each Fig 10b stack divided across the forty
		// samples. The I/O time is launch/metadata latency, not bandwidth,
		// so it stays a fixed phase; the application phase exercises the
		// measured CPU bytes at a calibrated efficiency.
		var prog sim.Program
		for _, cat := range []string{"bash", "python", "load data"} {
			if secs := stack[cat] / GPTuneSamples; secs > 0 {
				prog = append(prog, sim.Phase{Kind: sim.PhaseFixed, Seconds: secs, Name: cat})
			}
		}
		appSecs := stack["application"] / GPTuneSamples
		memAtPeak := units.TimeToMove(GPTuneCPUBytes, cpu.NodeMemBW)
		prog = append(prog, sim.Phase{
			Kind: sim.PhaseMemory, Bytes: GPTuneCPUBytes,
			Efficiency: memAtPeak / appSecs, Name: "application",
		})
		if secs := stack["model and search"] / GPTuneSamples; secs > 0 {
			prog = append(prog, sim.Phase{Kind: sim.PhaseFixed, Seconds: secs, Name: "model and search"})
		}
		progs[id] = prog
	}

	wall, err := cpu.MaxParallelTasks(1)
	if err != nil {
		return nil, err
	}
	m := &core.Model{Title: fmt.Sprintf("GPTune on PM-CPU (%s)", mode), Wall: wall}
	m.AddCeiling(core.Ceiling{
		// The paper quotes the per-CPU (socket) memory bandwidth here.
		Name:     fmt.Sprintf("CPU Bytes: %v @ %v", GPTuneCPUBytes, 204.8*units.GBPS),
		Resource: core.ResMemory, Scope: core.ScopeNode,
		TimePerTask: units.TimeToMove(GPTuneCPUBytes, 204.8*units.GBPS),
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("File System (RCI): %v @ %v", GPTuneFSBytesRCI, fsBW),
		Resource: core.ResFileSystem, Scope: core.ScopeSystem,
		TimePerTask: units.TimeToMove(GPTuneFSBytesRCI/GPTuneSamples, fsBW),
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("File System (Spawn): %v @ %v", GPTuneFSBytesSpawn, fsBW),
		Resource: core.ResFileSystem, Scope: core.ScopeSystem,
		TimePerTask: units.TimeToMove(GPTuneFSBytesSpawn/GPTuneSamples, fsBW),
	})

	var points []core.Point
	for _, md := range []GPTuneMode{GPTuneRCI, GPTuneSpawn, GPTuneProjected} {
		total, err := GPTuneTotalSeconds(md)
		if err != nil {
			return nil, err
		}
		pt, err := core.NewPoint(md.String(), GPTuneSamples, 1, total)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}

	return &CaseStudy{
		Name:      fmt.Sprintf("GPTune/%s", mode),
		Figure:    "Fig 10a",
		Machine:   pm,
		Workflow:  w,
		Model:     m,
		Points:    points,
		Programs:  progs,
		SimConfig: sim.Config{Machine: pm},
	}, nil
}
