package workloads

import (
	"strings"
	"testing"

	"wroofline/internal/breakdown"
	"wroofline/internal/core"
)

func TestGPTuneTotals(t *testing.T) {
	rci, err := GPTuneTotalSeconds(GPTuneRCI)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(rci, GPTuneRCISeconds, 1e-6) {
		t.Errorf("RCI total = %v, want %v", rci, GPTuneRCISeconds)
	}
	spawn, err := GPTuneTotalSeconds(GPTuneSpawn)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(spawn, GPTuneSpawnSeconds, 1e-6) {
		t.Errorf("Spawn total = %v, want %v", spawn, GPTuneSpawnSeconds)
	}
	// Spawn is ~2.4x faster than RCI (Fig 10a annotation).
	if ratio := rci / spawn; !almost(ratio, 2.4, 0.02) {
		t.Errorf("RCI/Spawn = %.3f, want ~2.4", ratio)
	}
	// Projected is ~12x faster than Spawn.
	projected, err := GPTuneTotalSeconds(GPTuneProjected)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := spawn / projected; !almost(ratio, 12, 0.02) {
		t.Errorf("Spawn/projected = %.3f, want ~12", ratio)
	}
}

func TestGPTuneStackStructure(t *testing.T) {
	rci, err := GPTuneStack(GPTuneRCI)
	if err != nil {
		t.Fatal(err)
	}
	// RCI's bash+python overhead is ~500 s (Section IV-C4).
	if overhead := rci["bash"] + rci["python"]; !almost(overhead, 500, 0.02) {
		t.Errorf("RCI bash+python = %v, want ~500", overhead)
	}
	if rci["load data"] != GPTuneIOSecondsRCI {
		t.Errorf("RCI I/O = %v, want %v", rci["load data"], GPTuneIOSecondsRCI)
	}
	spawn, err := GPTuneStack(GPTuneSpawn)
	if err != nil {
		t.Fatal(err)
	}
	if spawn["bash"] != 0 {
		t.Errorf("Spawn has no bash phase, got %v", spawn["bash"])
	}
	if spawn["load data"] != GPTuneIOSecondsSpawn {
		t.Errorf("Spawn I/O = %v, want %v", spawn["load data"], GPTuneIOSecondsSpawn)
	}
	// Application and model time are mode-independent.
	if rci["application"] != spawn["application"] || rci["model and search"] != spawn["model and search"] {
		t.Error("application/model time should not depend on the control flow")
	}
	// Stacks are copies.
	rci["python"] = 0
	again, _ := GPTuneStack(GPTuneRCI)
	if again["python"] == 0 {
		t.Error("GPTuneStack must return a copy")
	}
	if _, err := GPTuneStack(GPTuneMode(99)); err == nil {
		t.Error("unknown mode should fail")
	}
}

func TestGPTuneModelShape(t *testing.T) {
	cs, err := GPTune(GPTuneSpawn)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Model.Wall != 3072 {
		t.Errorf("wall = %d, want 3072 (one node per task on PM-CPU)", cs.Model.Wall)
	}
	p, err := cs.Workflow.ParallelTasks()
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("parallel tasks = %d, want 1 (serialized samples)", p)
	}
	if cs.Workflow.TotalTasks() != GPTuneSamples {
		t.Errorf("tasks = %d, want 40", cs.Workflow.TotalTasks())
	}
	// The two file-system ceilings nearly coincide (I/O volume is not the
	// story): within 15% of each other.
	var fsCeilings []core.Ceiling
	for _, c := range cs.Model.Ceilings {
		if c.Resource == core.ResFileSystem {
			fsCeilings = append(fsCeilings, c)
		}
	}
	if len(fsCeilings) != 2 {
		t.Fatalf("FS ceilings = %d, want 2", len(fsCeilings))
	}
	if !almost(fsCeilings[0].TPSAt(1), fsCeilings[1].TPSAt(1), 0.15) {
		t.Errorf("FS ceilings should nearly coincide: %v vs %v",
			fsCeilings[0].TPSAt(1), fsCeilings[1].TPSAt(1))
	}
}

func TestGPTunePointsOrdering(t *testing.T) {
	cs, err := GPTune(GPTuneRCI)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]core.Point{}
	for _, p := range cs.Points {
		byLabel[p.Label] = p
	}
	if byLabel["Spawn"].TPS <= byLabel["RCI"].TPS {
		t.Error("Spawn dot should sit above RCI")
	}
	if byLabel["Projected"].TPS <= byLabel["Spawn"].TPS {
		t.Error("projected dot should sit above Spawn")
	}
	// All three share x=1.
	for _, p := range cs.Points {
		if p.ParallelTasks != 1 {
			t.Errorf("point %s at x=%v, want 1", p.Label, p.ParallelTasks)
		}
	}
	// Headroom from RCI to the model bound is large (>10x): the data-volume
	// ceilings are nowhere near binding.
	if h := cs.Model.Headroom(byLabel["RCI"]); h < 10 {
		t.Errorf("RCI headroom = %.1fx, want >10x", h)
	}
}

// The simulation regenerates both measured totals within 1%.
func TestGPTuneSimulationMatchesMeasured(t *testing.T) {
	for _, mode := range []GPTuneMode{GPTuneRCI, GPTuneSpawn} {
		cs, err := GPTune(mode)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cs.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		want, err := GPTuneTotalSeconds(mode)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(res.Makespan, want, 0.01) {
			t.Errorf("%s sim = %.2fs, want %.2fs +-1%%", mode, res.Makespan, want)
		}
		// Samples are serialized: the peak node usage is one.
		if res.PeakNodesInUse != 1 {
			t.Errorf("%s peak nodes = %d, want 1", mode, res.PeakNodesInUse)
		}
	}
}

// Fig 10b regenerated from the simulation's phase spans.
func TestGPTuneBreakdownFromSim(t *testing.T) {
	ch := breakdown.New("GPTune time breakdown", "python", "load data", "bash", "application", "model and search")
	for _, mode := range []GPTuneMode{GPTuneRCI, GPTuneSpawn} {
		cs, err := GPTune(mode)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cs.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Add(mode.String(), res.Breakdown()); err != nil {
			t.Fatal(err)
		}
	}
	speedup, err := ch.Speedup("RCI", "Spawn")
	if err != nil {
		t.Fatal(err)
	}
	if !almost(speedup, 2.4, 0.03) {
		t.Errorf("sim RCI/Spawn = %.3f, want ~2.4", speedup)
	}
	out := ch.Render(60)
	for _, want := range []string{"RCI", "Spawn", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown render missing %q:\n%s", want, out)
		}
	}
}

func TestGPTuneModeString(t *testing.T) {
	if GPTuneRCI.String() != "RCI" || GPTuneSpawn.String() != "Spawn" || GPTuneProjected.String() != "Projected" {
		t.Error("mode names wrong")
	}
	if GPTuneMode(9).String() == "" {
		t.Error("unknown mode should print")
	}
	if _, err := GPTune(GPTuneMode(9)); err == nil {
		t.Error("unknown mode should fail to build")
	}
}

func TestTableI(t *testing.T) {
	rows := TableI()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]TableIRow{}
	for _, r := range rows {
		byName[r.Workflow] = r
	}
	if byName["LCLS"].WallClockTime != MethodReported {
		t.Error("LCLS wall clock is reported")
	}
	if byName["BerkeleyGW"].NodeFlops != MethodReported {
		t.Error("BGW node flops are reported")
	}
	if byName["CosmoFlow"].NodePCIeBytes != MethodAnalytical {
		t.Error("CosmoFlow PCIe bytes are analytical")
	}
	if byName["GPTune"].FSBytes != MethodMeasured {
		t.Error("GPTune FS bytes are measured")
	}
}

func TestAll(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Fatalf("case studies = %d, want 7", len(all))
	}
	seen := map[string]bool{}
	for _, cs := range all {
		if seen[cs.Name] {
			t.Errorf("duplicate case study %q", cs.Name)
		}
		seen[cs.Name] = true
		if err := cs.Model.Validate(); err != nil {
			t.Errorf("%s: invalid model: %v", cs.Name, err)
		}
		if err := cs.Workflow.Validate(); err != nil {
			t.Errorf("%s: invalid workflow: %v", cs.Name, err)
		}
		if cs.Figure == "" {
			t.Errorf("%s: missing figure reference", cs.Name)
		}
	}
	// Every case study simulates successfully.
	for _, cs := range all {
		if _, err := cs.Simulate(); err != nil {
			t.Errorf("%s: simulation failed: %v", cs.Name, err)
		}
	}
}
