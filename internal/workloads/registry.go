package workloads

import (
	"fmt"
	"sort"
)

// Builder constructs a case study on demand. Every call returns a fresh
// instance, so concurrent consumers (the sweep pool, the analysis service)
// never share mutable state.
type Builder func() (*CaseStudy, error)

// registry maps the canonical CLI/service names to constructors. The name
// set is shared by cmd/wroofline, cmd/wfsim, cmd/wfsweep (via
// internal/study), and the wfserved endpoints, so a spec written for one
// tool is valid in all of them.
var registry = func() map[string]Builder {
	r := map[string]Builder{}
	for name, b := range generatedCases {
		r[name] = b
	}
	for name, b := range handBuilt {
		r[name] = b
	}
	return r
}()

// handBuilt are the paper's hand-characterized case studies; generated
// scenarios (gen-*) join them in the registry from generated.go.
var handBuilt = map[string]Builder{
	"lcls-cori":         LCLSCori,
	"lcls-cori-bad":     LCLSCoriBadDay,
	"lcls-cori-faulty":  LCLSCoriFaulty,
	"lcls-pm":           LCLSPerlmutter,
	"lcls-pm-contended": LCLSPerlmutterContended,
	"bgw-64":            func() (*CaseStudy, error) { return BGW(64) },
	"bgw-1024":          func() (*CaseStudy, error) { return BGW(1024) },
	"cosmoflow":         func() (*CaseStudy, error) { return CosmoFlow(12) },
	"gptune-rci":        func() (*CaseStudy, error) { return GPTune(GPTuneRCI) },
	"gptune-spawn":      func() (*CaseStudy, error) { return GPTune(GPTuneSpawn) },
}

// Names lists the registered case-study names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName builds a fresh instance of the named case study, or an error
// listing the valid names.
func ByName(name string) (*CaseStudy, error) {
	build, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown case %q (have %v)", name, Names())
	}
	return build()
}
