package workloads

import (
	"fmt"

	"wroofline/internal/core"
	"wroofline/internal/failure"
	"wroofline/internal/machine"
	"wroofline/internal/sim"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// LCLS appendix inputs (Section IV-C1 and the artifact appendix).
const (
	// LCLSTasks is the total task count (A-E analyze, F merges).
	LCLSTasks = 6
	// LCLSParallelTasks is the level-0 width.
	LCLSParallelTasks = 5
	// LCLSExternalPerTask is the input staged from outside per analysis task.
	LCLSExternalPerTask = 1 * units.TB
	// LCLSCPUBytesPerNode is the analytical per-node data volume.
	LCLSCPUBytesPerNode = 32 * units.GB
	// LCLSProcsPerTask is the MPI rank count per analysis task.
	LCLSProcsPerTask = 1024

	// LCLSGoodDayRate and LCLSBadDayRate are the observed per-stream
	// external rates: contention cut 1 GB/s to 0.2 GB/s (5x) from one day
	// to another.
	LCLSGoodDayRate = 1 * units.GBPS
	LCLSBadDayRate  = 0.2 * units.GBPS

	// LCLSGoodDaySeconds and LCLSBadDaySeconds are the reported end-to-end
	// times: 17 and 85 minutes.
	LCLSGoodDaySeconds = 17 * 60
	LCLSBadDaySeconds  = 85 * 60

	// LCLSTarget2020Seconds was the 2020 deadline (Fig 5a); the 2024 target
	// (Fig 6) halves it.
	LCLSTarget2020Seconds = 600
	LCLSTarget2024Seconds = 300

	// lclsGoodAnalysisSeconds and lclsBadAnalysisSeconds are the non-loading
	// remainders of the reported totals: 1020 s - 1000 s load and
	// 5100 s - 5000 s load. (Calibrated: the paper publishes only the totals
	// and the loading rates; the analysis share is the difference.)
	lclsGoodAnalysisSeconds = LCLSGoodDaySeconds - 1000
	lclsBadAnalysisSeconds  = LCLSBadDaySeconds - 5000

	// lclsMergeSeconds is the tiny level-1 merge cost (calibrated, well
	// under a percent of the makespan in both scenarios).
	lclsMergeSeconds = 1.0
)

// lclsWorkflow builds the Fig 4 skeleton: five parallel analysis tasks
// feeding a merge.
func lclsWorkflow(partition string, nodesPerTask int, targetSeconds float64) (*workflow.Workflow, error) {
	w := workflow.New("LCLS", partition)
	w.Targets = workflow.Targets{
		MakespanSeconds: targetSeconds,
		ThroughputTPS:   LCLSTasks / targetSeconds,
	}
	for _, id := range []string{"A", "B", "C", "D", "E"} {
		if err := w.AddTask(&workflow.Task{
			ID:    id,
			Nodes: nodesPerTask,
			Procs: LCLSProcsPerTask,
			Work: workflow.Work{
				MemBytes:      LCLSCPUBytesPerNode,
				ExternalBytes: LCLSExternalPerTask,
				FSBytes:       LCLSExternalPerTask, // staged data lands on the FS
			},
		}); err != nil {
			return nil, err
		}
	}
	if err := w.AddTask(&workflow.Task{ID: "F", Name: "merge", Nodes: 1,
		Work: workflow.Work{FSBytes: 5 * units.GB}}); err != nil {
		return nil, err
	}
	for _, id := range []string{"A", "B", "C", "D", "E"} {
		if err := w.AddDep(id, "F"); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// lclsPrograms builds the per-task simulation programs: stage input over
// the external link, then the analysis remainder as a calibrated phase.
func lclsPrograms(w *workflow.Workflow, analysisSeconds float64) map[string]sim.Program {
	progs := make(map[string]sim.Program, LCLSTasks)
	for _, t := range w.Tasks() {
		if t.ID == "F" {
			progs[t.ID] = sim.Program{{Kind: sim.PhaseFixed, Seconds: lclsMergeSeconds, Name: "merge"}}
			continue
		}
		progs[t.ID] = sim.Program{
			{Kind: sim.PhaseExternal, Bytes: t.Work.ExternalBytes, Name: "loading"},
			{Kind: sim.PhaseFixed, Seconds: analysisSeconds, Name: "analysis"},
		}
	}
	return progs
}

// LCLSCori reproduces Fig 5a: LCLS on Cori Haswell. The external path is
// per-stream limited — each of the five tasks loads its 1 TB at the observed
// per-stream rate (1 GB/s good days, 0.2 GB/s bad days) — so the external
// ceiling scales with the number of parallel tasks and is modeled
// node-scoped (diagonal). Both reported dots sit on it.
func LCLSCori() (*CaseStudy, error) {
	cori := machine.CoriHaswell()
	hsw, err := cori.Partition(machine.PartHaswell)
	if err != nil {
		return nil, err
	}
	nodesPerTask, err := hsw.NodesForProcs(LCLSProcsPerTask)
	if err != nil {
		return nil, err
	}
	w, err := lclsWorkflow(machine.PartHaswell, nodesPerTask, LCLSTarget2020Seconds)
	if err != nil {
		return nil, err
	}
	wall, err := hsw.MaxParallelTasks(nodesPerTask)
	if err != nil {
		return nil, err
	}

	m := &core.Model{Title: "LCLS on Cori-HSW", Wall: wall}
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("System External %v @ %v per stream", 5*units.TB, LCLSGoodDayRate),
		Resource: core.ResExternal, Scope: core.ScopeNode,
		TimePerTask: units.TimeToMove(LCLSExternalPerTask, LCLSGoodDayRate),
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("System External %v @ %v per stream (contended)", 5*units.TB, LCLSBadDayRate),
		Resource: core.ResExternal, Scope: core.ScopeNode,
		TimePerTask: units.TimeToMove(LCLSExternalPerTask, LCLSBadDayRate),
		Scenario:    true, // the 5x-contention overlay of Fig 5a
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("CPU Bytes %v @ %v", LCLSCPUBytesPerNode, hsw.NodeMemBW),
		Resource: core.ResMemory, Scope: core.ScopeNode,
		TimePerTask: units.TimeToMove(LCLSCPUBytesPerNode, hsw.NodeMemBW),
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("System Internal Loading %v @ %v", 5*units.TB, cori.BurstBufferBW),
		Resource: core.ResFileSystem, Scope: core.ScopeSystem,
		TimePerTask: units.TimeToMove(LCLSExternalPerTask, cori.BurstBufferBW),
	})
	m.SetTargets(w.Targets, LCLSTasks)

	good, err := core.NewPoint("Good Days", LCLSTasks, LCLSParallelTasks, LCLSGoodDaySeconds)
	if err != nil {
		return nil, err
	}
	bad, err := core.NewPoint("Bad Days", LCLSTasks, LCLSParallelTasks, LCLSBadDaySeconds)
	if err != nil {
		return nil, err
	}

	return &CaseStudy{
		Name:     "LCLS/Cori-HSW",
		Figure:   "Fig 5a",
		Machine:  cori,
		Workflow: w,
		Model:    m,
		Points:   []core.Point{good, bad},
		Programs: lclsPrograms(w, lclsGoodAnalysisSeconds),
		SimConfig: sim.Config{
			Machine: cori,
			// Good day: five 1 GB/s streams; the aggregate link comfortably
			// carries all five.
			ExternalBW:         units.ByteRate(LCLSParallelTasks) * LCLSGoodDayRate,
			ExternalPerFlowCap: LCLSGoodDayRate,
		},
	}, nil
}

// LCLSCoriBadDay returns the Fig 5a/5b contended scenario: per-stream rate
// 0.2 GB/s and the correspondingly slower analysis remainder.
func LCLSCoriBadDay() (*CaseStudy, error) {
	cs, err := LCLSCori()
	if err != nil {
		return nil, err
	}
	cs.Name = "LCLS/Cori-HSW (bad day)"
	flipScenario(cs.Model) // the contended line becomes the operative bound
	cs.Programs = lclsPrograms(cs.Workflow, lclsBadAnalysisSeconds)
	cs.SimConfig.ExternalBW = units.ByteRate(LCLSParallelTasks) * LCLSBadDayRate
	cs.SimConfig.ExternalPerFlowCap = LCLSBadDayRate
	return cs, nil
}

// LCLSFaultySeed and LCLSFaultyFailProb parameterize the faulty-day
// scenario: the Fig 5a good day re-run under a 2% per-attempt task failure
// probability — the middle of a representative 1-5% transient-failure band —
// with failed attempts re-staging their 1 TB input at the good-day
// per-stream rate before retrying.
const (
	LCLSFaultySeed     = 7
	LCLSFaultyFailProb = 0.02
)

// LCLSCoriFaulty returns the Fig 5a good-day scenario with the failure model
// armed: 2% task failure per attempt, full input re-stage at 1 GB/s on every
// retry, and the default exponential-backoff retry policy. Zero-failure
// draws leave the run byte-identical to LCLSCori.
func LCLSCoriFaulty() (*CaseStudy, error) {
	cs, err := LCLSCori()
	if err != nil {
		return nil, err
	}
	cs.Name = "LCLS/Cori-HSW (faulty)"
	spec := &failure.Spec{
		TaskFailProb: LCLSFaultyFailProb,
		RestageRate:  "1 GB/s",
		Seed:         LCLSFaultySeed,
	}
	fm, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	cs.SimConfig.Failures = fm
	return cs, nil
}

// LCLSPerlmutter reproduces Fig 6: LCLS on the Perlmutter CPU partition.
// Staging goes through a data transfer node with 25 GB/s aggregate — a
// shared system ceiling — which sits just above the 2024 target throughput;
// a 5x contention drop (to 5 GB/s) makes the targets unreachable.
func LCLSPerlmutter() (*CaseStudy, error) {
	pm := machine.Perlmutter()
	cpu, err := pm.Partition(machine.PartCPU)
	if err != nil {
		return nil, err
	}
	nodesPerTask, err := cpu.NodesForProcs(LCLSProcsPerTask)
	if err != nil {
		return nil, err
	}
	w, err := lclsWorkflow(machine.PartCPU, nodesPerTask, LCLSTarget2024Seconds)
	if err != nil {
		return nil, err
	}
	wall, err := cpu.MaxParallelTasks(nodesPerTask)
	if err != nil {
		return nil, err
	}
	fsBW, err := pm.FSBandwidth(machine.PartCPU)
	if err != nil {
		return nil, err
	}

	m := &core.Model{Title: "LCLS on PM-CPU", Wall: wall}
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("System External %v @ %v", 5*units.TB, pm.ExternalBW),
		Resource: core.ResExternal, Scope: core.ScopeSystem,
		TimePerTask: units.TimeToMove(LCLSExternalPerTask, pm.ExternalBW),
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("System External %v @ %v (5x contention)", 5*units.TB, 5*units.GBPS),
		Resource: core.ResExternal, Scope: core.ScopeSystem,
		TimePerTask: units.TimeToMove(LCLSExternalPerTask, 5*units.GBPS),
		Scenario:    true, // the contention overlay of Fig 6
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("CPU Bytes %v @ %v", LCLSCPUBytesPerNode, 204.8*units.GBPS),
		Resource: core.ResMemory, Scope: core.ScopeNode,
		TimePerTask: units.TimeToMove(LCLSCPUBytesPerNode, 204.8*units.GBPS),
	})
	m.AddCeiling(core.Ceiling{
		Name:     fmt.Sprintf("System Internal Loading %v @ %v", 5*units.TB, fsBW),
		Resource: core.ResFileSystem, Scope: core.ScopeSystem,
		TimePerTask: units.TimeToMove(LCLSExternalPerTask, fsBW),
	})
	m.SetTargets(w.Targets, LCLSTasks)

	return &CaseStudy{
		Name:     "LCLS/PM-CPU",
		Figure:   "Fig 6",
		Machine:  pm,
		Workflow: w,
		Model:    m,
		// Fig 6 plots no measured dots (Perlmutter is the what-if system);
		// the simulation below provides the projected ones.
		Programs: lclsPrograms(w, lclsGoodAnalysisSeconds),
		SimConfig: sim.Config{
			Machine: pm, // DTN: 25 GB/s aggregate, no per-stream cap
		},
	}, nil
}

// LCLSPerlmutterContended returns the Fig 6 what-if with the external path
// degraded 5x to 5 GB/s.
func LCLSPerlmutterContended() (*CaseStudy, error) {
	cs, err := LCLSPerlmutter()
	if err != nil {
		return nil, err
	}
	cs.Name = "LCLS/PM-CPU (5x contention)"
	flipScenario(cs.Model)
	cs.SimConfig.ExternalBW = 5 * units.GBPS
	return cs, nil
}

// flipScenario swaps which external ceiling is the operative bound and
// which is the what-if overlay (contended variants of a case study).
func flipScenario(m *core.Model) {
	for i := range m.Ceilings {
		if m.Ceilings[i].Resource == core.ResExternal {
			m.Ceilings[i].Scenario = !m.Ceilings[i].Scenario
		}
	}
}
