package workloads

import (
	"reflect"
	"testing"

	"wroofline/internal/core"
	"wroofline/internal/gantt"
)

func TestBGWCeilingTimes(t *testing.T) {
	// Paper: ~1800 s at 64 nodes, ~108 s at 1024 nodes.
	if got := BGWNodeCeilingSeconds(64); !almost(got, 1768, 0.02) {
		t.Errorf("64-node ceiling = %.1fs, want ~1768 (paper quotes 1800)", got)
	}
	if got := BGWNodeCeilingSeconds(1024); !almost(got, 110.5, 0.03) {
		t.Errorf("1024-node ceiling = %.1fs, want ~110.5 (paper quotes 108)", got)
	}
}

func TestBGWEfficiencies(t *testing.T) {
	// Paper: "42% of node peak" at 64 nodes, "30%" at 1024.
	e64, err := BGWEfficiency(64)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(e64, 0.42, 0.02) {
		t.Errorf("64-node efficiency = %.3f, want ~0.42", e64)
	}
	e1024, err := BGWEfficiency(1024)
	if err != nil {
		t.Fatal(err)
	}
	if e1024 < 0.25 || e1024 > 0.32 {
		t.Errorf("1024-node efficiency = %.3f, want ~0.27-0.30", e1024)
	}
	// Strong-scaling efficiency drops with scale.
	if e1024 >= e64 {
		t.Error("efficiency should drop from 64 to 1024 nodes")
	}
	if _, err := BGWEfficiency(128); err == nil {
		t.Error("unmeasured scale should fail")
	}
}

func TestBGWWallMoves(t *testing.T) {
	cs64, err := BGW(64)
	if err != nil {
		t.Fatal(err)
	}
	cs1024, err := BGW(1024)
	if err != nil {
		t.Fatal(err)
	}
	if cs64.Model.Wall != 28 {
		t.Errorf("64-node wall = %d, want 28 (Fig 7a)", cs64.Model.Wall)
	}
	if cs1024.Model.Wall != 1 {
		t.Errorf("1024-node wall = %d, want 1 (Fig 7b)", cs1024.Model.Wall)
	}
}

// The two scenarios of Section IV-C2: 1024 nodes returns one urgent result
// quickly (low throughput); 64 nodes gives higher throughput at the wall.
func TestBGWUrgencyVsThroughputTradeoff(t *testing.T) {
	cs64, err := BGW(64)
	if err != nil {
		t.Fatal(err)
	}
	cs1024, err := BGW(1024)
	if err != nil {
		t.Fatal(err)
	}
	// Single-result latency: 1024 nodes is much faster.
	if BGWMeasured1024 >= BGWMeasured64/5 {
		t.Errorf("1024-node run should be >5x faster: %v vs %v", BGWMeasured1024, BGWMeasured64)
	}
	// Batch throughput at the wall: 64-node instances win.
	at64, _ := cs64.Model.BoundAtWall()
	at1024, _ := cs1024.Model.BoundAtWall()
	if at64 <= at1024 {
		t.Errorf("64-node throughput at wall (%v) should beat 1024-node (%v)", at64, at1024)
	}
}

func TestBGWNodeBound(t *testing.T) {
	cs, err := BGW(64)
	if err != nil {
		t.Fatal(err)
	}
	// The empirical dot is node (compute) bound: the binding ceiling at p=1
	// is the GPU FLOPS diagonal, and the dot achieves ~42% of it.
	if res := cs.Model.LimitingResource(1); res != core.ResCompute {
		t.Errorf("limiting resource = %v, want compute", res)
	}
	eff := cs.Model.Efficiency(cs.Points[0])
	if !almost(eff, 0.42, 0.02) {
		t.Errorf("dot efficiency = %.3f, want ~0.42 (Fig 7a annotation)", eff)
	}
	if cls := cs.Model.ClassifyBound(cs.Points[0]); cls != core.NodeBound {
		t.Errorf("bound class = %v, want node bound", cls)
	}
	// Network and file-system ceilings are far above the compute ceiling.
	for _, c := range cs.Model.Ceilings {
		if c.Resource == core.ResCompute {
			continue
		}
		if c.TPSAt(1) < 100*cs.Model.Ceilings[0].TPSAt(1) {
			t.Errorf("ceiling %q (%v TPS) should tower over compute (%v TPS)",
				c.Name, c.TPSAt(1), cs.Model.Ceilings[0].TPSAt(1))
		}
	}
}

// The simulation regenerates the measured 4184.86 s and 404.74 s within 1%.
func TestBGWSimulationMatchesMeasured(t *testing.T) {
	for _, scale := range []int{64, 1024} {
		cs, err := BGW(scale)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cs.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		want, err := bgwMeasured(scale)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(res.Makespan, want, 0.01) {
			t.Errorf("%d-node sim = %.2fs, want %.2fs +-1%%", scale, res.Makespan, want)
		}
		// Sigma starts only after Epsilon completes.
		if res.Tasks["sigma"].Start < res.Tasks["epsilon"].End-1e-9 {
			t.Errorf("%d-node: sigma overlapped epsilon", scale)
		}
	}
}

// Fig 7c: Sigma dominates the makespan (the lowest dot) at both scales, and
// Epsilon is farther from its ceiling than Sigma.
func TestBGWTaskView(t *testing.T) {
	m, points, err := BGWTaskView()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Ceilings) != 4 || len(points) != 4 {
		t.Fatalf("ceilings=%d points=%d, want 4/4", len(m.Ceilings), len(points))
	}
	byLabel := map[string]core.Point{}
	for _, p := range points {
		byLabel[p.Label] = p
	}
	// Sigma has the longer makespan (lower dot) at both scales.
	if byLabel["Task-Sigma 64 nodes"].TPS >= byLabel["Task-Epsilon 64 nodes"].TPS {
		t.Error("Sigma@64 should sit below Epsilon@64")
	}
	if byLabel["Task-Sigma 1024 nodes"].TPS >= byLabel["Task-Epsilon 1024 nodes"].TPS {
		t.Error("Sigma@1024 should sit below Epsilon@1024")
	}
	// Per-task ceilings match the figure annotations within 3%:
	// E 490s/28s and S 1289s/79s at 64/1024 nodes.
	wantCeil := map[int]float64{0: 469, 1: 1299, 2: 29.3, 3: 81.2}
	for i, want := range wantCeil {
		if !almost(m.Ceilings[i].TimePerTask, want, 0.03) {
			t.Errorf("task-view ceiling %d = %.1fs, want ~%.1fs", i, m.Ceilings[i].TimePerTask, want)
		}
	}
}

// Fig 7d: the critical path ordering is invariant across scales.
func TestBGWGanttCriticalPathInvariant(t *testing.T) {
	var paths [][]string
	for _, scale := range []int{64, 1024} {
		cs, err := BGW(scale)
		if err != nil {
			t.Fatal(err)
		}
		path, total, err := cs.Workflow.CriticalPathMeasured()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := bgwMeasured(scale)
		if !almost(total, want, 1e-9) {
			t.Errorf("%d-node critical path cost = %v, want %v", scale, total, want)
		}
		paths = append(paths, path)

		// And the Gantt chart from a simulation has both tasks on the CP.
		res, err := cs.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		ch, err := gantt.FromRecorder(cs.Name, res.Recorder, path)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(ch.CriticalPathBars()); got != 2 {
			t.Errorf("%d-node: critical path bars = %d, want 2", scale, got)
		}
	}
	if !reflect.DeepEqual(paths[0], paths[1]) {
		t.Errorf("critical path changed across scales: %v vs %v", paths[0], paths[1])
	}
}

func TestBGWInvalidScale(t *testing.T) {
	if _, err := BGW(100); err == nil {
		t.Error("unmeasured scale should fail")
	}
}
