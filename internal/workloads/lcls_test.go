package workloads

import (
	"math"
	"testing"

	"wroofline/internal/core"
)

func almost(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= relTol*math.Max(math.Abs(a), math.Abs(b))
}

func TestLCLSCoriModel(t *testing.T) {
	cs, err := LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Model.Wall != 74 {
		t.Errorf("wall = %d, want 74 (Fig 5a)", cs.Model.Wall)
	}
	p, err := cs.Workflow.ParallelTasks()
	if err != nil {
		t.Fatal(err)
	}
	if p != 5 {
		t.Errorf("parallel tasks = %d, want 5", p)
	}
	if cpl, _ := cs.Workflow.Graph().CriticalPathLength(); cpl != 2 {
		t.Errorf("critical path length = %d, want 2 (Fig 4)", cpl)
	}
	// Targets: 10 minutes, 6 tasks.
	if cs.Model.Targets == nil || cs.Model.Targets.MakespanSeconds != 600 {
		t.Errorf("targets = %+v", cs.Model.Targets)
	}
	if !almost(cs.Model.Targets.ThroughputTPS, 0.01, 1e-9) {
		t.Errorf("target TPS = %v, want 6/600", cs.Model.Targets.ThroughputTPS)
	}
}

// The paper's core LCLS claim: both dots sit on the external ceiling, and
// the external path is the limiting resource.
func TestLCLSCoriDotsOnExternalCeiling(t *testing.T) {
	cs, err := LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Points) != 2 {
		t.Fatalf("points = %d", len(cs.Points))
	}
	good, bad := cs.Points[0], cs.Points[1]
	// Good day TPS = 6/1020; external good-day ceiling at p=5 allows
	// 5/1000 = 0.005 — the dot "overlaps" its ceiling (within 20%).
	goodCeil := cs.Model.Ceilings[0].TPSAt(good.ParallelTasks)
	if !almost(good.TPS, goodCeil, 0.20) {
		t.Errorf("good-day dot %.5f vs ceiling %.5f: should overlap", good.TPS, goodCeil)
	}
	badCeil := cs.Model.Ceilings[1].TPSAt(bad.ParallelTasks)
	if !almost(bad.TPS, badCeil, 0.20) {
		t.Errorf("bad-day dot %.5f vs ceiling %.5f: should overlap", bad.TPS, badCeil)
	}
	// Bad day is ~5x below good day.
	if ratio := good.TPS / bad.TPS; !almost(ratio, 5, 0.05) {
		t.Errorf("good/bad ratio = %v, want ~5 (contention factor)", ratio)
	}
	// The limiting resource at p=5 is the external path.
	if res := cs.Model.LimitingResource(5); res != core.ResExternal {
		t.Errorf("limiting resource = %v, want external", res)
	}
}

// Even on good days, LCLS cannot meet the 2020 target (Fig 5a).
func TestLCLSCoriTargetUnreachable(t *testing.T) {
	cs, err := LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	good := cs.Points[0]
	if zone := cs.Model.ClassifyZone(good); zone != core.ZonePoorPoor {
		t.Errorf("good-day zone = %v, want poor/poor", zone)
	}
	// Even at the external ceiling with 5 parallel tasks the target TPS is
	// out of reach: ceiling 0.005 < target 0.01.
	ceil := cs.Model.Ceilings[0].TPSAt(5)
	if ceil >= cs.Model.Targets.ThroughputTPS {
		t.Errorf("external ceiling %v should be below target %v",
			ceil, cs.Model.Targets.ThroughputTPS)
	}
	if cls := cs.Model.ClassifyBound(good); cls != core.SystemBound {
		t.Errorf("bound class = %v, want system bound", cls)
	}
}

// The simulation regenerates the reported 17-minute good day and 85-minute
// bad day within 2%.
func TestLCLSCoriSimulationMatchesReported(t *testing.T) {
	good, err := LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	res, err := good.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, LCLSGoodDaySeconds, 0.02) {
		t.Errorf("good-day sim = %.1fs, want %.1fs +-2%%", res.Makespan, float64(LCLSGoodDaySeconds))
	}
	// Breakdown: loading dominates (Fig 5b).
	bd := res.Breakdown()
	if bd["loading"] < 10*bd["analysis"] {
		t.Errorf("loading (%.1f) should dwarf analysis (%.1f)", bd["loading"], bd["analysis"])
	}

	bad, err := LCLSCoriBadDay()
	if err != nil {
		t.Fatal(err)
	}
	resBad, err := bad.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(resBad.Makespan, LCLSBadDaySeconds, 0.02) {
		t.Errorf("bad-day sim = %.1fs, want %.1fs +-2%%", resBad.Makespan, float64(LCLSBadDaySeconds))
	}
	if ratio := resBad.Makespan / res.Makespan; !almost(ratio, 5, 0.05) {
		t.Errorf("bad/good sim ratio = %v, want ~5", ratio)
	}
}

func TestLCLSPerlmutterModel(t *testing.T) {
	cs, err := LCLSPerlmutter()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Model.Wall != 384 {
		t.Errorf("wall = %d, want 384 (Fig 6)", cs.Model.Wall)
	}
	// The 25 GB/s external ceiling sits slightly above the target
	// throughput line: 0.025 vs 0.02 TPS.
	ext := cs.Model.Ceilings[0]
	if !almost(ext.TPSAt(5), 0.025, 1e-6) {
		t.Errorf("external ceiling = %v TPS, want 0.025", ext.TPSAt(5))
	}
	if ext.TPSAt(5) <= cs.Model.Targets.ThroughputTPS {
		t.Error("ideal DTN ceiling should clear the target (slightly)")
	}
	// The contended (5 GB/s) ceiling falls below the target: unreachable.
	contended := cs.Model.Ceilings[1]
	if contended.TPSAt(5) >= cs.Model.Targets.ThroughputTPS {
		t.Errorf("contended ceiling %v should be below target %v",
			contended.TPSAt(5), cs.Model.Targets.ThroughputTPS)
	}
	// The internal file system is far from binding (Fig 6: "far on the
	// top"): at least 100x above the external ceiling.
	var fs core.Ceiling
	for _, c := range cs.Model.Ceilings {
		if c.Resource == core.ResFileSystem {
			fs = c
		}
	}
	if fs.TPSAt(5) < 100*ext.TPSAt(5) {
		t.Errorf("internal FS ceiling (%v) should tower over external (%v)",
			fs.TPSAt(5), ext.TPSAt(5))
	}
}

// On PM-CPU with the ideal DTN the workflow meets the 2024 target; with 5x
// contention it cannot.
func TestLCLSPerlmutterSimulation(t *testing.T) {
	ideal, err := LCLSPerlmutter()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ideal.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	// 5 TB over a shared 25 GB/s link = 200 s loading + analysis + merge.
	if res.Makespan >= LCLSTarget2024Seconds {
		t.Errorf("ideal sim = %.1fs, should beat the 300 s target", res.Makespan)
	}
	if res.Makespan < 200 {
		t.Errorf("ideal sim = %.1fs, cannot beat the 200 s transfer floor", res.Makespan)
	}

	contended, err := LCLSPerlmutterContended()
	if err != nil {
		t.Fatal(err)
	}
	resC, err := contended.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if resC.Makespan <= LCLSTarget2024Seconds {
		t.Errorf("contended sim = %.1fs, should miss the 300 s target", resC.Makespan)
	}
	if resC.Makespan <= res.Makespan {
		t.Error("contention should slow the workflow")
	}
}

// The system-architect insight: LCLS is system bound, so a 10x faster node
// makes no difference to the bound.
func TestLCLSFasterComputeMakesNoDifference(t *testing.T) {
	cs, err := LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	before, _ := cs.Model.Bound(5)
	// Scale every node-scoped non-external ceiling up 10x (faster CPUs).
	faster := &core.Model{Title: "faster", Wall: cs.Model.Wall, Targets: cs.Model.Targets}
	for _, c := range cs.Model.Ceilings {
		nc := c
		if c.Scope == core.ScopeNode && c.Resource != core.ResExternal {
			nc.TimePerTask = c.TimePerTask / 10
		}
		faster.Ceilings = append(faster.Ceilings, nc)
	}
	after, _ := faster.Bound(5)
	if !almost(before, after, 1e-9) {
		t.Errorf("10x faster compute changed the bound: %v -> %v", before, after)
	}
	// And the advisor says so.
	recs := cs.Model.Advise(cs.Points[0])
	found := false
	for _, r := range recs {
		if r.Title == "do not buy faster compute" {
			found = true
		}
	}
	if !found {
		t.Errorf("advisor should warn against faster compute: %+v", recs)
	}
}

func TestLCLSCoriFaulty(t *testing.T) {
	cs, err := LCLSCoriFaulty()
	if err != nil {
		t.Fatal(err)
	}
	if cs.SimConfig.Failures == nil || !cs.SimConfig.Failures.Enabled() {
		t.Fatal("faulty scenario has no armed failure model")
	}
	if _, err := ByName("lcls-cori-faulty"); err != nil {
		t.Fatal(err)
	}
	good, err := LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	base, err := good.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cs.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	// The scenario is deterministic per its pinned seed: both outcomes are
	// legal, but whichever this seed draws must be consistent.
	if res.Retries == 0 {
		if res.Makespan != base.Makespan {
			t.Errorf("no retries but makespan moved: %v vs %v", res.Makespan, base.Makespan)
		}
	} else if res.Makespan <= base.Makespan {
		t.Errorf("%d retries but makespan did not grow: %v vs %v", res.Retries, res.Makespan, base.Makespan)
	}
	res2, err := cs.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Makespan != res.Makespan || res2.Retries != res.Retries {
		t.Errorf("faulty scenario not reproducible: %v/%d vs %v/%d",
			res.Makespan, res.Retries, res2.Makespan, res2.Retries)
	}
}
