package calibrate_test

import (
	"fmt"

	"wroofline/internal/calibrate"
)

// Example fits Amdahl's law to the paper's two BerkeleyGW measurements and
// predicts an unmeasured scale.
func Example() {
	fit, err := calibrate.FitScaling([]calibrate.ScaleObs{
		{Nodes: 64, Seconds: 4184.86},
		{Nodes: 1024, Seconds: 404.74},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	at256, _ := fit.Predict(256)
	fmt.Printf("serial fraction: %.5f\n", fit.SerialFraction())
	fmt.Printf("predicted at 256 nodes: %.0f s\n", at256)
	// Output:
	// serial fraction: 0.00059
	// predicted at 256 nodes: 1161 s
}
