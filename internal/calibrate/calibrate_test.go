package calibrate

import (
	"math"
	"testing"
	"testing/quick"

	"wroofline/internal/units"
	"wroofline/internal/workloads"
)

func almost(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= relTol*math.Max(math.Abs(a), math.Abs(b))
}

func TestFitBandwidthExact(t *testing.T) {
	// Noise-free observations at exactly 1 GB/s.
	obs := []BandwidthObs{
		{Bytes: 1 * units.GB, Seconds: 1},
		{Bytes: 10 * units.GB, Seconds: 10},
		{Bytes: 500 * units.MB, Seconds: 0.5},
	}
	rate, err := FitBandwidth(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(float64(rate), 1e9, 1e-9) {
		t.Errorf("rate = %v, want 1e9", float64(rate))
	}
}

func TestFitBandwidthNoisy(t *testing.T) {
	// +-10% timing noise around 0.2 GB/s (the LCLS bad-day stream rate).
	obs := []BandwidthObs{
		{Bytes: 1 * units.TB, Seconds: 5000 * 1.1},
		{Bytes: 1 * units.TB, Seconds: 5000 * 0.9},
		{Bytes: 2 * units.TB, Seconds: 10000 * 1.05},
		{Bytes: 0.5 * units.TB, Seconds: 2500 * 0.95},
	}
	rate, err := FitBandwidth(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(float64(rate), 0.2e9, 0.1) {
		t.Errorf("rate = %v, want ~0.2e9", float64(rate))
	}
}

func TestFitBandwidthErrors(t *testing.T) {
	if _, err := FitBandwidth(nil); err == nil {
		t.Error("empty observations should fail")
	}
	bad := [][]BandwidthObs{
		{{Bytes: 0, Seconds: 1}},
		{{Bytes: 1, Seconds: 0}},
		{{Bytes: -1, Seconds: 1}},
		{{Bytes: units.Bytes(math.NaN()), Seconds: 1}},
		{{Bytes: 1, Seconds: math.Inf(1)}},
	}
	for i, obs := range bad {
		if _, err := FitBandwidth(obs); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestFitEfficiency(t *testing.T) {
	eff, err := FitEfficiency(1768, 4184.86)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(eff, 0.4225, 0.01) {
		t.Errorf("BGW efficiency = %v, want ~0.4225", eff)
	}
	if _, err := FitEfficiency(0, 1); err == nil {
		t.Error("zero peak time should fail")
	}
	if _, err := FitEfficiency(1, 0); err == nil {
		t.Error("zero measured should fail")
	}
	if _, err := FitEfficiency(10, 5); err == nil {
		t.Error("measured faster than peak should fail")
	}
}

// Amdahl fit on the BGW measured points: two observations pin the law
// exactly, and the fitted serial fraction is tiny (BGW scales well).
func TestFitScalingBGW(t *testing.T) {
	obs := []ScaleObs{
		{Nodes: 64, Seconds: workloads.BGWMeasured64},
		{Nodes: 1024, Seconds: workloads.BGWMeasured1024},
	}
	fit, err := FitScaling(obs)
	if err != nil {
		t.Fatal(err)
	}
	// The fit reproduces both points exactly.
	for _, o := range obs {
		pred, err := fit.Predict(o.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(pred, o.Seconds, 1e-9) {
			t.Errorf("predict(%d) = %v, want %v", o.Nodes, pred, o.Seconds)
		}
	}
	if fit.Residual(obs) > 1e-6 {
		t.Errorf("residual = %v", fit.Residual(obs))
	}
	s := fit.SerialFraction()
	if s <= 0 || s > 0.001 {
		t.Errorf("serial fraction = %v, want tiny but positive", s)
	}
	// Parallel efficiency decays with scale.
	e64, err := fit.ParallelEfficiency(64)
	if err != nil {
		t.Fatal(err)
	}
	e1024, err := fit.ParallelEfficiency(1024)
	if err != nil {
		t.Fatal(err)
	}
	if e1024 >= e64 {
		t.Errorf("efficiency should decay: %v at 64 vs %v at 1024", e64, e1024)
	}
	// The asymptote bounds every speedup.
	sp, err := fit.Speedup(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if sp > fit.MaxSpeedup() {
		t.Errorf("speedup %v exceeds asymptote %v", sp, fit.MaxSpeedup())
	}
}

func TestFitScalingPerfectlyParallel(t *testing.T) {
	obs := []ScaleObs{
		{Nodes: 1, Seconds: 100},
		{Nodes: 2, Seconds: 50},
		{Nodes: 4, Seconds: 25},
		{Nodes: 10, Seconds: 10},
	}
	fit, err := FitScaling(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.SerialFraction(), 0, 1) && fit.SerialFraction() > 1e-9 {
		t.Errorf("serial fraction = %v, want ~0", fit.SerialFraction())
	}
	if !math.IsInf(fit.MaxSpeedup(), 1) && fit.MaxSpeedup() < 1e6 {
		t.Errorf("max speedup = %v, want huge", fit.MaxSpeedup())
	}
	sp, err := fit.Speedup(10)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sp, 10, 1e-6) {
		t.Errorf("speedup(10) = %v", sp)
	}
}

func TestFitScalingPureSerial(t *testing.T) {
	obs := []ScaleObs{
		{Nodes: 1, Seconds: 100},
		{Nodes: 8, Seconds: 100},
		{Nodes: 64, Seconds: 100},
	}
	fit, err := FitScaling(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.SerialFraction(), 1, 0.05) {
		t.Errorf("serial fraction = %v, want ~1", fit.SerialFraction())
	}
	if !almost(fit.MaxSpeedup(), 1, 0.05) {
		t.Errorf("max speedup = %v, want ~1", fit.MaxSpeedup())
	}
}

func TestFitScalingSuperlinearClamps(t *testing.T) {
	// Runtime shrinking faster than 1/n gives a negative serial term; the
	// fit clamps it to zero rather than predicting negative times.
	obs := []ScaleObs{
		{Nodes: 1, Seconds: 100},
		{Nodes: 2, Seconds: 40},
	}
	fit, err := FitScaling(obs)
	if err != nil {
		t.Fatal(err)
	}
	if fit.A != 0 {
		t.Errorf("serial term = %v, want clamped to 0", fit.A)
	}
	pred, err := fit.Predict(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if pred < 0 {
		t.Errorf("prediction went negative: %v", pred)
	}
}

func TestFitScalingErrors(t *testing.T) {
	if _, err := FitScaling(nil); err == nil {
		t.Error("no observations should fail")
	}
	if _, err := FitScaling([]ScaleObs{{Nodes: 4, Seconds: 10}}); err == nil {
		t.Error("single observation should fail")
	}
	if _, err := FitScaling([]ScaleObs{{Nodes: 4, Seconds: 10}, {Nodes: 4, Seconds: 12}}); err == nil {
		t.Error("single distinct node count should fail")
	}
	if _, err := FitScaling([]ScaleObs{{Nodes: 0, Seconds: 10}, {Nodes: 4, Seconds: 12}}); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := FitScaling([]ScaleObs{{Nodes: 1, Seconds: -1}, {Nodes: 4, Seconds: 12}}); err == nil {
		t.Error("negative seconds should fail")
	}
	// Anti-scaling (time grows with nodes) is rejected.
	if _, err := FitScaling([]ScaleObs{{Nodes: 1, Seconds: 10}, {Nodes: 64, Seconds: 100}}); err == nil {
		t.Error("anti-scaling data should fail")
	}
	fit := &AmdahlFit{A: 1, B: 2}
	if _, err := fit.Predict(0); err == nil {
		t.Error("predict(0) should fail")
	}
	if _, err := fit.Speedup(-1); err == nil {
		t.Error("speedup(-1) should fail")
	}
}

// Property: data generated from a known Amdahl law is recovered exactly
// (noise-free least squares), and predictions are monotone non-increasing
// in n.
func TestQuickAmdahlRecovery(t *testing.T) {
	f := func(serialRaw, parallelRaw uint16) bool {
		a := float64(serialRaw%1000) / 10
		b := float64(parallelRaw%10000)/10 + 1
		truth := &AmdahlFit{A: a, B: b}
		var obs []ScaleObs
		for _, n := range []int{1, 2, 8, 32, 128} {
			pred, err := truth.Predict(n)
			if err != nil {
				return false
			}
			obs = append(obs, ScaleObs{Nodes: n, Seconds: pred})
		}
		fit, err := FitScaling(obs)
		if err != nil {
			return false
		}
		if !almost(fit.A, a, 1e-6) && math.Abs(fit.A-a) > 1e-6 {
			return false
		}
		if !almost(fit.B, b, 1e-6) {
			return false
		}
		prev := math.Inf(1)
		for _, n := range []int{1, 4, 16, 64, 256} {
			p, err := fit.Predict(n)
			if err != nil || p > prev+1e-9 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
