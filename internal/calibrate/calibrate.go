// Package calibrate fits workflow-characterization parameters from
// measurements: effective bandwidths from (bytes, seconds) observations,
// node-phase efficiencies from ceiling-vs-measured times, and Amdahl
// strong-scaling curves from (nodes, seconds) samples. The paper's Table I
// mixes reported, measured, and analytical characterizations; this package
// closes the loop from measurements back to model inputs.
package calibrate

import (
	"fmt"
	"math"

	"wroofline/internal/units"
)

// BandwidthObs is one transfer observation.
type BandwidthObs struct {
	// Bytes moved and Seconds elapsed.
	Bytes   units.Bytes
	Seconds float64
}

// FitBandwidth estimates the effective bandwidth from transfer observations
// by least squares on t = bytes/rate (minimizing sum (t_i - b_i/r)^2, which
// is linear in 1/r): rate = sum(b^2) / sum(b*t).
func FitBandwidth(obs []BandwidthObs) (units.ByteRate, error) {
	if len(obs) == 0 {
		return 0, fmt.Errorf("calibrate: no observations")
	}
	var sumB2, sumBT float64
	for i, o := range obs {
		b, t := float64(o.Bytes), o.Seconds
		if b <= 0 || t <= 0 || math.IsNaN(b) || math.IsNaN(t) || math.IsInf(b, 0) || math.IsInf(t, 0) {
			return 0, fmt.Errorf("calibrate: observation %d has non-positive or non-finite values (%v bytes, %v s)", i, b, t)
		}
		sumB2 += b * b
		sumBT += b * t
	}
	return units.ByteRate(sumB2 / sumBT), nil
}

// FitEfficiency returns achieved fraction of peak: timeAtPeak / measured.
// It errors when the measurement is faster than the peak allows (which
// indicates a mischaracterized peak, not a >100% efficiency).
func FitEfficiency(timeAtPeak, measured float64) (float64, error) {
	if timeAtPeak <= 0 || measured <= 0 || math.IsNaN(timeAtPeak) || math.IsNaN(measured) {
		return 0, fmt.Errorf("calibrate: times must be positive, got peak=%v measured=%v", timeAtPeak, measured)
	}
	if measured < timeAtPeak {
		return 0, fmt.Errorf("calibrate: measured %vs beats the peak-rate time %vs; check the characterized peak", measured, timeAtPeak)
	}
	return timeAtPeak / measured, nil
}

// ScaleObs is one strong-scaling sample.
type ScaleObs struct {
	// Nodes used and Seconds measured.
	Nodes   int
	Seconds float64
}

// AmdahlFit is the fitted strong-scaling law t(n) = t1*(s + (1-s)/n),
// internally parameterized as t(n) = A + B/n with A = t1*s (serial time)
// and B = t1*(1-s) (perfectly-parallel time).
type AmdahlFit struct {
	// A is the serial seconds; B the parallelizable seconds at n=1.
	A, B float64
}

// FitScaling fits Amdahl's law to strong-scaling observations by linear
// least squares on the regressor 1/n. At least two distinct node counts are
// required.
func FitScaling(obs []ScaleObs) (*AmdahlFit, error) {
	if len(obs) < 2 {
		return nil, fmt.Errorf("calibrate: need at least two observations, got %d", len(obs))
	}
	var sumX, sumY, sumXX, sumXY float64
	nodesSeen := map[int]bool{}
	for i, o := range obs {
		if o.Nodes <= 0 || o.Seconds <= 0 || math.IsNaN(o.Seconds) || math.IsInf(o.Seconds, 0) {
			return nil, fmt.Errorf("calibrate: observation %d invalid (%d nodes, %v s)", i, o.Nodes, o.Seconds)
		}
		nodesSeen[o.Nodes] = true
		x := 1 / float64(o.Nodes)
		y := o.Seconds
		sumX += x
		sumY += y
		sumXX += x * x
		sumXY += x * y
	}
	if len(nodesSeen) < 2 {
		return nil, fmt.Errorf("calibrate: need at least two distinct node counts")
	}
	n := float64(len(obs))
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return nil, fmt.Errorf("calibrate: degenerate regressors")
	}
	b := (n*sumXY - sumX*sumY) / den
	a := (sumY - b*sumX) / n
	if b < 0 {
		return nil, fmt.Errorf("calibrate: fitted negative parallel time (B=%v); runtime grows with nodes — not Amdahl-shaped", b)
	}
	if a < 0 {
		// Superlinear data: clamp the serial term to zero and refit B
		// through the origin of the (1/n, t) space.
		a = 0
		b = sumXY / sumXX
	}
	return &AmdahlFit{A: a, B: b}, nil
}

// Predict returns the modeled seconds at n nodes.
func (f *AmdahlFit) Predict(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("calibrate: node count must be positive, got %d", n)
	}
	return f.A + f.B/float64(n), nil
}

// SingleNodeSeconds returns t(1) = A + B.
func (f *AmdahlFit) SingleNodeSeconds() float64 { return f.A + f.B }

// SerialFraction returns Amdahl's s = A/(A+B); 0 when the fit is entirely
// parallel.
func (f *AmdahlFit) SerialFraction() float64 {
	t1 := f.SingleNodeSeconds()
	if t1 == 0 {
		return 0
	}
	return f.A / t1
}

// Speedup returns t(1)/t(n).
func (f *AmdahlFit) Speedup(n int) (float64, error) {
	tn, err := f.Predict(n)
	if err != nil {
		return 0, err
	}
	if tn == 0 {
		return math.Inf(1), nil
	}
	return f.SingleNodeSeconds() / tn, nil
}

// MaxSpeedup returns the Amdahl asymptote 1/s (+Inf when s = 0).
func (f *AmdahlFit) MaxSpeedup() float64 {
	s := f.SerialFraction()
	if s == 0 {
		return math.Inf(1)
	}
	return 1 / s
}

// ParallelEfficiency returns t(1) / (n * t(n)) — 1.0 means perfect strong
// scaling at n nodes.
func (f *AmdahlFit) ParallelEfficiency(n int) (float64, error) {
	sp, err := f.Speedup(n)
	if err != nil {
		return 0, err
	}
	return sp / float64(n), nil
}

// Residual returns the RMS error of the fit over the observations.
func (f *AmdahlFit) Residual(obs []ScaleObs) float64 {
	if len(obs) == 0 {
		return 0
	}
	var sum float64
	for _, o := range obs {
		pred, err := f.Predict(o.Nodes)
		if err != nil {
			return math.Inf(1)
		}
		d := pred - o.Seconds
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(obs)))
}
