package whatif

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"wroofline/internal/core"
	"wroofline/internal/workloads"
)

func almost(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= relTol*math.Max(math.Abs(a), math.Abs(b))
}

// The conclusion's headline: 10x faster compute does nothing for LCLS, but
// improving the external path helps linearly until the next ceiling.
func TestLCLSComputeVsExternal(t *testing.T) {
	cs, err := workloads.LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := Evaluate(cs.Model, 5, []Perturbation{
		ScaleResource(core.ResMemory, 10),   // "faster computing unit"
		ScaleResource(core.ResExternal, 2),  // better QOS on the external path
		ScaleResource(core.ResExternal, 10), // much better QOS
	})
	if err != nil {
		t.Fatal(err)
	}
	base := outcomes[0]
	if base.Name != "base" {
		t.Fatalf("first outcome should be base, got %q", base.Name)
	}
	faster := outcomes[1]
	if !almost(faster.Speedup, 1, 1e-9) {
		t.Errorf("10x memory speedup = %v, want exactly 1 (system bound)", faster.Speedup)
	}
	ext2 := outcomes[2]
	if !almost(ext2.Speedup, 2, 1e-6) {
		t.Errorf("2x external speedup = %v, want 2", ext2.Speedup)
	}
	ext10 := outcomes[3]
	// At 10x external the per-stream time drops to 100 s; the burst buffer
	// (T=1.099 s horizontal, 0.91 TPS) is still far above p/100 = 0.05, so
	// external remains binding and the speedup is the full 10x.
	if !almost(ext10.Speedup, 10, 1e-6) {
		t.Errorf("10x external speedup = %v, want 10", ext10.Speedup)
	}
}

func TestUsefulImprovement(t *testing.T) {
	cs, err := workloads.LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	// Memory is not binding: improving it is useless.
	f, sp, err := UsefulImprovement(cs.Model, 5, core.ResMemory)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 || sp != 1 {
		t.Errorf("memory improvement = (%v, %v), want (1, 1)", f, sp)
	}
	// External is binding: useful improvement runs until the burst-buffer
	// ceiling takes over: next bound 0.91 TPS over base 0.005 -> ~182x.
	f, sp, err = UsefulImprovement(cs.Model, 5, core.ResExternal)
	if err != nil {
		t.Fatal(err)
	}
	if f < 100 || f > 300 {
		t.Errorf("external useful factor = %v, want ~182", f)
	}
	if !almost(f, sp, 1e-9) {
		t.Errorf("factor %v and speedup %v should match for the binding resource", f, sp)
	}
}

func TestUsefulImprovementSingleCeiling(t *testing.T) {
	m := &core.Model{Title: "one", Wall: 8}
	m.AddCeiling(core.Ceiling{Name: "only", Resource: core.ResCompute, Scope: core.ScopeNode, TimePerTask: 2})
	f, sp, err := UsefulImprovement(m, 2, core.ResCompute)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(f, 1) || !math.IsInf(sp, 1) {
		t.Errorf("sole ceiling should have unbounded useful improvement, got (%v, %v)", f, sp)
	}
}

func TestScaleResourceErrors(t *testing.T) {
	m := &core.Model{Title: "x", Wall: 2}
	m.AddCeiling(core.Ceiling{Name: "c", Resource: core.ResCompute, Scope: core.ScopeNode, TimePerTask: 1})
	if _, err := ScaleResource(core.ResPCIe, 2).Apply(m); err == nil {
		t.Error("scaling an absent resource should fail")
	}
	for _, f := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := ScaleResource(core.ResCompute, f).Apply(m); err == nil {
			t.Errorf("factor %v should fail", f)
		}
	}
	// Apply must not mutate the base.
	if _, err := ScaleResource(core.ResCompute, 4).Apply(m); err != nil {
		t.Fatal(err)
	}
	if m.Ceilings[0].TimePerTask != 1 {
		t.Error("ScaleResource mutated the base model")
	}
}

func TestScaleWall(t *testing.T) {
	m := &core.Model{Title: "x", Wall: 28}
	m.AddCeiling(core.Ceiling{Name: "c", Resource: core.ResCompute, Scope: core.ScopeNode, TimePerTask: 1})
	bigger, err := ScaleWall(2).Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	if bigger.Wall != 56 {
		t.Errorf("wall = %d, want 56", bigger.Wall)
	}
	smaller, err := ScaleWall(0.01).Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	if smaller.Wall != 1 {
		t.Errorf("wall = %d, want clamped to 1", smaller.Wall)
	}
	if _, err := ScaleWall(0).Apply(m); err == nil {
		t.Error("zero factor should fail")
	}
	if m.Wall != 28 {
		t.Error("ScaleWall mutated the base model")
	}
}

func TestIntraTaskPerturbation(t *testing.T) {
	m, err := workloads.ExampleModel()
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := IntraTask(2, 1).Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Wall != 14 {
		t.Errorf("wall = %d, want 14", scaled.Wall)
	}
	// Fractional k is the coarsening direction: wall widens.
	coarse, err := IntraTask(0.5, 1).Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Wall != 2*m.Wall {
		t.Errorf("0.5x wall = %d, want %d", coarse.Wall, 2*m.Wall)
	}
	if _, err := IntraTask(0, 1).Apply(m); err == nil {
		t.Error("k = 0 should fail")
	}
}

func TestEvaluateValidation(t *testing.T) {
	m := &core.Model{Wall: 1}
	if _, err := Evaluate(m, 1, nil); err == nil {
		t.Error("invalid base model should fail")
	}
	m.AddCeiling(core.Ceiling{Name: "c", Resource: core.ResCompute, Scope: core.ScopeNode, TimePerTask: 1})
	if _, err := Evaluate(m, 0, nil); err == nil {
		t.Error("zero p should fail")
	}
	if _, err := Evaluate(m, 1, []Perturbation{ScaleResource(core.ResPCIe, 2)}); err == nil {
		t.Error("failing perturbation should propagate")
	}
}

func TestEvaluateTargets(t *testing.T) {
	cs, err := workloads.LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := Evaluate(cs.Model, 5, []Perturbation{ScaleResource(core.ResExternal, 4)})
	if err != nil {
		t.Fatal(err)
	}
	// Base: external bound 0.005 < target 0.01 -> misses throughput.
	if outcomes[0].MeetsThroughput {
		t.Error("base LCLS should miss the throughput target")
	}
	// 4x external: 0.02 >= 0.01 -> meets it.
	if !outcomes[1].MeetsThroughput {
		t.Errorf("4x external should clear the target: %+v", outcomes[1])
	}
}

func TestSweepResource(t *testing.T) {
	cs, err := workloads.LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	points, err := SweepResource(cs.Model, 5, core.ResExternal, []float64{1, 2, 4, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	// Monotone non-decreasing, saturating at the burst-buffer ceiling.
	for i := 1; i < len(points); i++ {
		if points[i].BoundTPS < points[i-1].BoundTPS-1e-12 {
			t.Errorf("sweep not monotone at %d: %v -> %v", i, points[i-1].BoundTPS, points[i].BoundTPS)
		}
	}
	last := points[len(points)-1]
	if !strings.Contains(last.Limiting, "Internal") {
		t.Errorf("at 1000x external the burst buffer should bind, got %q", last.Limiting)
	}
	if _, err := SweepResource(cs.Model, 5, core.ResExternal, nil); err == nil {
		t.Error("empty sweep should fail")
	}
}

func TestTableRendering(t *testing.T) {
	cs, err := workloads.LCLSCori()
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := Evaluate(cs.Model, 5, []Perturbation{ScaleResource(core.ResExternal, 2)})
	if err != nil {
		t.Fatal(err)
	}
	txt, err := Table("LCLS what-if", outcomes)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LCLS what-if", "base", "2x external", "speedup"} {
		if !strings.Contains(txt, want) {
			t.Errorf("table missing %q:\n%s", want, txt)
		}
	}
}

// Property: scaling the binding resource by f <= the useful factor yields
// speedup exactly f; beyond it, the speedup saturates at the useful factor.
func TestQuickUsefulFactorSaturation(t *testing.T) {
	f := func(tA, tB uint16, fRaw uint8) bool {
		a := float64(tA%1000)/10 + 1 // binding (slower)
		b := a / (float64(tB%9 + 2)) // other ceiling is 2..10x faster
		m := &core.Model{Title: "q", Wall: 64}
		m.AddCeiling(core.Ceiling{Name: "bind", Resource: core.ResExternal, Scope: core.ScopeSystem, TimePerTask: a})
		m.AddCeiling(core.Ceiling{Name: "other", Resource: core.ResFileSystem, Scope: core.ScopeSystem, TimePerTask: b})
		factor := float64(fRaw%30) + 1
		useful, _, err := UsefulImprovement(m, 4, core.ResExternal)
		if err != nil {
			return false
		}
		scaled, err := ScaleResource(core.ResExternal, factor).Apply(m)
		if err != nil {
			return false
		}
		before, _ := m.Bound(4)
		after, _ := scaled.Bound(4)
		speedup := after / before
		want := math.Min(factor, useful)
		return almost(speedup, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
