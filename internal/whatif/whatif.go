// Package whatif evaluates hypothetical system or workflow changes against a
// Workflow Roofline model: scale a resource's peak, move the parallelism
// wall, or shift intra-task parallelism, then compare attainable bounds.
// It quantifies the paper's architect-facing insight — improving the compute
// peak of a system-bound workflow like LCLS yields exactly nothing — and
// its inverse: how much improvement of the *binding* resource is useful
// before another ceiling takes over.
package whatif

import (
	"context"
	"fmt"
	"math"

	"wroofline/internal/core"
	"wroofline/internal/report"
	"wroofline/internal/sweep"
)

// Perturbation is a named model transformation.
type Perturbation struct {
	// Name labels the scenario, e.g. "10x compute".
	Name string
	// Apply returns a transformed copy (it must not mutate its input).
	Apply func(*core.Model) (*core.Model, error)
}

// clone deep-copies a model (ceilings slice included).
func clone(m *core.Model) *core.Model {
	out := &core.Model{Title: m.Title, Wall: m.Wall, Targets: m.Targets}
	out.Ceilings = make([]core.Ceiling, len(m.Ceilings))
	copy(out.Ceilings, m.Ceilings)
	return out
}

// ScaleResource returns a perturbation that makes every ceiling of the
// given resource `factor` times faster (factor > 1 improves it).
func ScaleResource(res core.Resource, factor float64) Perturbation {
	return Perturbation{
		Name: fmt.Sprintf("%gx %s", factor, res),
		Apply: func(m *core.Model) (*core.Model, error) {
			if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
				return nil, fmt.Errorf("whatif: scale factor must be positive and finite, got %v", factor)
			}
			out := clone(m)
			touched := false
			for i := range out.Ceilings {
				if out.Ceilings[i].Resource == res {
					out.Ceilings[i].TimePerTask /= factor
					touched = true
				}
			}
			if !touched {
				return nil, fmt.Errorf("whatif: model has no %s ceiling", res)
			}
			return out, nil
		},
	}
}

// ScaleWall returns a perturbation that multiplies the parallelism wall
// (e.g. a bigger machine or a wider queue allocation).
func ScaleWall(factor float64) Perturbation {
	return Perturbation{
		Name: fmt.Sprintf("%gx nodes", factor),
		Apply: func(m *core.Model) (*core.Model, error) {
			if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
				return nil, fmt.Errorf("whatif: wall factor must be positive and finite, got %v", factor)
			}
			out := clone(m)
			out.Wall = int(math.Max(1, math.Floor(float64(m.Wall)*factor)))
			return out, nil
		},
	}
}

// IntraTask returns the Fig 2c perturbation: k-times more nodes per task at
// the given strong-scaling efficiency.
func IntraTask(k, efficiency float64) Perturbation {
	return Perturbation{
		Name: fmt.Sprintf("%gx intra-task @ %g eff", k, efficiency),
		Apply: func(m *core.Model) (*core.Model, error) {
			return m.ScaleIntraTask(k, efficiency)
		},
	}
}

// Outcome compares one scenario against the base model at a fixed number of
// parallel tasks.
type Outcome struct {
	// Name echoes the perturbation.
	Name string
	// BoundTPS is the attainable throughput in the scenario.
	BoundTPS float64
	// Limiting names the binding ceiling.
	Limiting string
	// Speedup is BoundTPS over the base model's bound (1.0 = no effect).
	Speedup float64
	// MeetsThroughput and MeetsMakespan report target feasibility at the
	// scenario's bound (always true when the model declares no targets).
	MeetsThroughput, MeetsMakespan bool
}

// Evaluate applies each perturbation to the base model and compares bounds
// at p parallel tasks (clipped at each scenario's wall). It is the
// serial-API wrapper over EvaluateEnsemble: one worker, background context,
// identical output.
func Evaluate(base *core.Model, p float64, perts []Perturbation) ([]Outcome, error) {
	return EvaluateEnsemble(context.Background(), base, p, perts, 1)
}

// EvaluateEnsemble is Evaluate on the sweep worker pool: each perturbation
// is applied and bounded on its own goroutine (up to workers; sweep.Workers
// semantics). Outcomes come back in perturbation order — base first — so the
// result is identical at any worker count. Perturbation Apply functions must
// not mutate the base model; every Perturbation this package constructs
// clones it.
func EvaluateEnsemble(ctx context.Context, base *core.Model, p float64, perts []Perturbation, workers int) ([]Outcome, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if p <= 0 {
		return nil, fmt.Errorf("whatif: parallel tasks must be positive, got %v", p)
	}
	baseBound, baseLimit := base.Bound(p)
	scenarios, err := sweep.Map(ctx, len(perts), workers, func(_ context.Context, i int) (Outcome, error) {
		pert := perts[i]
		m, err := pert.Apply(base)
		if err != nil {
			return Outcome{}, fmt.Errorf("whatif: %s: %w", pert.Name, err)
		}
		bound, limit := m.Bound(p)
		return outcomeFor(pert.Name, m, p, bound, limit.Name, baseBound), nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Outcome, 0, len(perts)+1)
	out = append(out, outcomeFor("base", base, p, baseBound, baseLimit.Name, baseBound))
	return append(out, scenarios...), nil
}

func outcomeFor(name string, m *core.Model, p, bound float64, limiting string, baseBound float64) Outcome {
	o := Outcome{
		Name:            name,
		BoundTPS:        bound,
		Limiting:        limiting,
		Speedup:         1,
		MeetsThroughput: true,
		MeetsMakespan:   true,
	}
	if baseBound > 0 && !math.IsInf(baseBound, 1) && !math.IsInf(bound, 1) {
		o.Speedup = bound / baseBound
	}
	if t := m.Targets; t != nil {
		if t.ThroughputTPS > 0 {
			o.MeetsThroughput = bound >= t.ThroughputTPS
		}
		if mt := t.MakespanTPS(); mt > 0 {
			o.MeetsMakespan = bound >= mt
		}
	}
	return o
}

// UsefulImprovement returns how much speeding up the given resource can help
// at p parallel tasks: the multiplicative factor at which another ceiling
// takes over, and the resulting bound speedup. A non-binding resource
// returns (1, 1) — the paper's "going for a faster computing unit is a bad
// idea" in one call. When the resource is the only ceiling, the factor is
// +Inf.
func UsefulImprovement(m *core.Model, p float64, res core.Resource) (factor, speedup float64, err error) {
	if err := m.Validate(); err != nil {
		return 0, 0, err
	}
	if p <= 0 {
		return 0, 0, fmt.Errorf("whatif: parallel tasks must be positive, got %v", p)
	}
	bound, limit := m.Bound(p)
	if limit.Resource != res {
		return 1, 1, nil
	}
	// Find the lowest bound among ceilings of other resources.
	pc := math.Min(p, float64(m.Wall))
	next := math.Inf(1)
	for _, c := range m.Ceilings {
		if c.Resource == res || c.Scenario {
			continue
		}
		if v := c.TPSAt(pc); v < next {
			next = v
		}
	}
	if math.IsInf(next, 1) {
		return math.Inf(1), math.Inf(1), nil
	}
	return next / bound, next / bound, nil
}

// SweepPoint is one sample of a resource-peak sweep.
type SweepPoint struct {
	// Factor is the applied improvement; BoundTPS the resulting bound.
	Factor   float64
	BoundTPS float64
	// Limiting names the binding ceiling at this factor.
	Limiting string
}

// SweepResource evaluates the bound at p while scaling a resource's peak
// through the given factors — the series behind "changing system or node
// bandwidths shifts the ceilings". Serial wrapper over SweepResourceEnsemble.
func SweepResource(m *core.Model, p float64, res core.Resource, factors []float64) ([]SweepPoint, error) {
	return SweepResourceEnsemble(context.Background(), m, p, res, factors, 1)
}

// SweepResourceEnsemble fans the factor series across the sweep pool; points
// come back in factor order at any worker count.
func SweepResourceEnsemble(ctx context.Context, m *core.Model, p float64, res core.Resource, factors []float64, workers int) ([]SweepPoint, error) {
	if len(factors) == 0 {
		return nil, fmt.Errorf("whatif: no sweep factors")
	}
	return sweep.Map(ctx, len(factors), workers, func(_ context.Context, i int) (SweepPoint, error) {
		f := factors[i]
		scaled, err := ScaleResource(res, f).Apply(m)
		if err != nil {
			return SweepPoint{}, err
		}
		bound, limit := scaled.Bound(p)
		return SweepPoint{Factor: f, BoundTPS: bound, Limiting: limit.Name}, nil
	})
}

// Table renders outcomes as an aligned-text table.
func Table(title string, outcomes []Outcome) (string, error) {
	tbl := report.NewTable(title, "scenario", "bound TPS", "speedup", "limited by", "throughput ok", "makespan ok")
	for _, o := range outcomes {
		if err := tbl.AddRowf(o.Name, o.BoundTPS, o.Speedup, o.Limiting,
			fmt.Sprintf("%t", o.MeetsThroughput), fmt.Sprintf("%t", o.MeetsMakespan)); err != nil {
			return "", err
		}
	}
	return tbl.Text(), nil
}
