package whatif_test

import (
	"fmt"

	"wroofline/internal/core"
	"wroofline/internal/whatif"
	"wroofline/internal/workloads"
)

// Example answers the paper's architect question for LCLS: does faster
// compute help, and how much external-path improvement is useful?
func Example() {
	cs, err := workloads.LCLSCori()
	if err != nil {
		fmt.Println(err)
		return
	}
	outcomes, err := whatif.Evaluate(cs.Model, 5, []whatif.Perturbation{
		whatif.ScaleResource(core.ResMemory, 10),
		whatif.ScaleResource(core.ResExternal, 2),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, o := range outcomes[1:] {
		fmt.Printf("%s: %.3gx\n", o.Name, o.Speedup)
	}
	factor, _, err := whatif.UsefulImprovement(cs.Model, 5, core.ResExternal)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("useful external improvement: %.0fx\n", factor)
	// Output:
	// 10x memory: 1x
	// 2x external: 2x
	// useful external improvement: 182x
}
