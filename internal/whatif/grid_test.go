package whatif

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"wroofline/internal/core"
	"wroofline/internal/sweep"
)

// gridModel is a two-ceiling model where either resource can end up binding
// depending on the applied factors.
func gridModel() *core.Model {
	return &core.Model{
		Title: "grid-test",
		Wall:  64,
		Ceilings: []core.Ceiling{
			{Name: "mem", Resource: core.ResMemory, Scope: core.ScopeNode, TimePerTask: 2},
			{Name: "fs", Resource: core.ResFileSystem, Scope: core.ScopeSystem, TimePerTask: 0.5},
		},
	}
}

func TestGridSizeAndScenarioNames(t *testing.T) {
	g := Grid{
		Resources:   []ResourceAxis{{Resource: core.ResMemory, Factors: []float64{1, 2, 4}}},
		WallFactors: []float64{1, 2},
		IntraTask:   []IntraTaskOption{{K: 1}, {K: 2, Efficiency: 0.9}},
	}
	size, err := g.Size()
	if err != nil || size != 12 {
		t.Fatalf("size = %d, %v", size, err)
	}
	cells, err := EvaluateGrid(context.Background(), gridModel(), 8, g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("cells = %d", len(cells))
	}
	if cells[0].Name != "base" {
		t.Errorf("identity cell name = %q", cells[0].Name)
	}
	last := cells[len(cells)-1]
	for _, want := range []string{"4x memory", "2x wall", "2x intra@0.9"} {
		if !strings.Contains(last.Name, want) {
			t.Errorf("last cell %q missing %q", last.Name, want)
		}
	}
}

func TestEvaluateGridWorkerCountInvariance(t *testing.T) {
	g := Grid{
		Resources: []ResourceAxis{
			{Resource: core.ResMemory, Factors: []float64{0.5, 1, 2, 4, 8}},
			{Resource: core.ResFileSystem, Factors: []float64{1, 2, 4}},
		},
		WallFactors: []float64{0.5, 1, 2},
		IntraTask:   []IntraTaskOption{{K: 1}, {K: 2}},
	}
	base, err := EvaluateGrid(context.Background(), gridModel(), 16, g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got, err := EvaluateGrid(context.Background(), gridModel(), 16, g, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: grid cells differ", workers)
		}
	}
}

func TestEvaluateGridFeedsAggregator(t *testing.T) {
	g := Grid{
		Resources: []ResourceAxis{{Resource: core.ResFileSystem, Factors: []float64{1, 2, 4, 100}}},
	}
	size, err := g.Size()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := sweep.NewAgg(size)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := EvaluateGrid(context.Background(), gridModel(), 16, g, 2, agg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := agg.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.N != size {
		t.Fatalf("agg n = %d, want %d", s.N, size)
	}
	// At p=16: fs binds at 2 TPS until scaled to 4x, where mem (8 TPS, tied
	// but listed first) takes over; the histogram records both ceilings.
	hist := agg.Hist()
	labels := map[string]int{}
	for _, h := range hist {
		labels[h.Label] = h.Count
	}
	if labels["fs"] != 2 || labels["mem"] != 2 {
		t.Errorf("hist = %+v", hist)
	}
	if cells[3].Outcome.Limiting != "mem" {
		t.Errorf("100x fs cell limited by %q, want mem", cells[3].Outcome.Limiting)
	}
}

func TestEvaluateGridDefaultsAndErrors(t *testing.T) {
	// An all-empty grid is the single base cell.
	cells, err := EvaluateGrid(context.Background(), gridModel(), 4, Grid{}, 1, nil)
	if err != nil || len(cells) != 1 || cells[0].Name != "base" {
		t.Fatalf("empty grid: %+v, %v", cells, err)
	}
	if cells[0].Outcome.Speedup != 1 {
		t.Errorf("base speedup = %v", cells[0].Outcome.Speedup)
	}
	if _, err := EvaluateGrid(context.Background(), gridModel(), 0, Grid{}, 1, nil); err == nil {
		t.Error("non-positive p should fail")
	}
	bad := Grid{Resources: []ResourceAxis{{Resource: core.ResMemory, Factors: []float64{-1}}}}
	if _, err := EvaluateGrid(context.Background(), gridModel(), 4, bad, 1, nil); err == nil {
		t.Error("negative factor should fail")
	}
	// Scaling a resource the model lacks fails, with the scenario named.
	missing := Grid{Resources: []ResourceAxis{{Resource: core.ResCompute, Factors: []float64{2}}}}
	if _, err := EvaluateGrid(context.Background(), gridModel(), 4, missing, 1, nil); err == nil {
		t.Error("missing resource should fail")
	}
}

func TestEvaluateEnsembleMatchesSerial(t *testing.T) {
	m := gridModel()
	perts := []Perturbation{
		ScaleResource(core.ResMemory, 2),
		ScaleResource(core.ResFileSystem, 4),
		ScaleWall(2),
		IntraTask(2, 0.8),
	}
	serial, err := Evaluate(m, 8, perts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		par, err := EvaluateEnsemble(context.Background(), m, 8, perts, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: outcomes differ from serial", workers)
		}
	}
}

func TestGridTable(t *testing.T) {
	cells, err := EvaluateGrid(context.Background(), gridModel(), 4,
		Grid{WallFactors: []float64{1, 2}}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := GridTable("grid", cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scenario", "bound TPS", "base", "2x wall"} {
		if !strings.Contains(txt, want) {
			t.Errorf("table missing %q:\n%s", want, txt)
		}
	}
}
