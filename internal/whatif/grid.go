package whatif

import (
	"context"
	"fmt"
	"strings"

	"wroofline/internal/core"
	"wroofline/internal/report"
	"wroofline/internal/sweep"
)

// ResourceAxis is one grid dimension: a resource whose peak sweeps through
// the given multiplicative factors.
type ResourceAxis struct {
	// Resource identifies the ceiling set to scale.
	Resource core.Resource
	// Factors are the peak multipliers (1 = unchanged).
	Factors []float64
}

// IntraTaskOption is one point of the intra-task-parallelism dimension:
// k-times the nodes per task at the given strong-scaling efficiency
// (k = 1 means unchanged; Efficiency 0 defaults to 1).
type IntraTaskOption struct {
	K, Efficiency float64
}

// Grid is a cartesian what-if space: every combination of one factor per
// resource axis, one wall factor, and one intra-task option becomes a
// scenario. Empty dimensions contribute the identity (factor 1).
type Grid struct {
	// Resources are the per-resource peak axes.
	Resources []ResourceAxis
	// WallFactors scale the parallelism wall (bigger machine / wider queue).
	WallFactors []float64
	// IntraTask holds the Fig 2c options.
	IntraTask []IntraTaskOption
}

// dims returns the per-dimension sizes in evaluation order: resource axes
// first, then wall, then intra-task (the last dimension varies fastest).
func (g Grid) dims() []int {
	dims := make([]int, 0, len(g.Resources)+2)
	for _, ax := range g.Resources {
		dims = append(dims, max(1, len(ax.Factors)))
	}
	dims = append(dims, max(1, len(g.WallFactors)))
	dims = append(dims, max(1, len(g.IntraTask)))
	return dims
}

// Size returns the scenario count.
func (g Grid) Size() (int, error) {
	return sweep.GridSize(g.dims())
}

// scenario composes the perturbation chain for one cell. The identity cell
// (all factors 1) gets the name "base".
func (g Grid) scenario(coords []int) (string, []Perturbation, error) {
	var (
		names []string
		perts []Perturbation
	)
	for i, ax := range g.Resources {
		if len(ax.Factors) == 0 {
			continue
		}
		f := ax.Factors[coords[i]]
		if f != 1 {
			perts = append(perts, ScaleResource(ax.Resource, f))
			names = append(names, fmt.Sprintf("%gx %s", f, ax.Resource))
		}
	}
	if len(g.WallFactors) > 0 {
		if f := g.WallFactors[coords[len(g.Resources)]]; f != 1 {
			perts = append(perts, ScaleWall(f))
			names = append(names, fmt.Sprintf("%gx wall", f))
		}
	}
	if len(g.IntraTask) > 0 {
		opt := g.IntraTask[coords[len(g.Resources)+1]]
		eff := opt.Efficiency
		if eff == 0 {
			eff = 1
		}
		if opt.K != 1 {
			perts = append(perts, IntraTask(opt.K, eff))
			names = append(names, fmt.Sprintf("%gx intra@%g", opt.K, eff))
		}
	}
	if len(perts) == 0 {
		return "base", nil, nil
	}
	return strings.Join(names, " + "), perts, nil
}

// Cell is one evaluated grid scenario.
type Cell struct {
	// Index is the cell's row-major position; Name describes the applied
	// combination ("base" for the identity cell).
	Index int
	Name  string
	// Outcome compares the cell against the unperturbed base model.
	Outcome Outcome
}

// EvaluateGrid evaluates every cell of the grid at p parallel tasks on the
// sweep worker pool, feeding the aggregator (when non-nil) with each cell's
// bound and binding ceiling as cells complete. Cells come back in row-major
// order, bit-identical at any worker count.
func EvaluateGrid(ctx context.Context, base *core.Model, p float64, g Grid, workers int, agg *sweep.Agg) ([]Cell, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if p <= 0 {
		return nil, fmt.Errorf("whatif: parallel tasks must be positive, got %v", p)
	}
	dims := g.dims()
	size, err := sweep.GridSize(dims)
	if err != nil {
		return nil, err
	}
	baseBound, _ := base.Bound(p)
	return sweep.Map(ctx, size, workers, func(_ context.Context, i int) (Cell, error) {
		coords, err := sweep.GridCoords(dims, i)
		if err != nil {
			return Cell{}, err
		}
		name, perts, err := g.scenario(coords)
		if err != nil {
			return Cell{}, err
		}
		m := base
		for _, pert := range perts {
			if m, err = pert.Apply(m); err != nil {
				return Cell{}, fmt.Errorf("whatif: %s: %w", name, err)
			}
		}
		bound, limit := m.Bound(p)
		cell := Cell{Index: i, Name: name, Outcome: outcomeFor(name, m, p, bound, limit.Name, baseBound)}
		if agg != nil {
			if err := agg.Add(i, bound, limit.Name); err != nil {
				return Cell{}, err
			}
		}
		return cell, nil
	})
}

// GridTable renders grid cells as an aligned-text table.
func GridTable(title string, cells []Cell) (string, error) {
	tbl := report.NewTable(title, "scenario", "bound TPS", "speedup", "limited by")
	for _, c := range cells {
		if err := tbl.AddRowf(c.Name, c.Outcome.BoundTPS, c.Outcome.Speedup, c.Outcome.Limiting); err != nil {
			return "", err
		}
	}
	return tbl.Text(), nil
}
