package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"

	"wroofline/internal/serve"
)

// testKeys generates n distinct content-address-shaped keys.
func testKeys(n int) []serve.Key {
	keys := make([]serve.Key, n)
	for i := range keys {
		var seed [8]byte
		binary.BigEndian.PutUint64(seed[:], uint64(i))
		keys[i] = serve.Key(sha256.Sum256(seed[:]))
	}
	return keys
}

// TestRingBalance checks rendezvous hashing spreads content addresses
// roughly evenly: over 4096 keys and 3 replicas, every replica owns at
// least half its fair share. (SHA-256 keys are uniform; a replica far
// below fair share would mean the seed mixing is broken.)
func TestRingBalance(t *testing.T) {
	ids := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r := NewRing(ids)
	counts := make([]int, len(ids))
	keys := testKeys(4096)
	for _, k := range keys {
		idx := r.Owner(k, nil)
		if idx < 0 || idx >= len(ids) {
			t.Fatalf("Owner returned %d", idx)
		}
		counts[idx]++
	}
	fair := len(keys) / len(ids)
	for i, c := range counts {
		if c < fair/2 {
			t.Errorf("replica %d owns %d of %d keys, fair share %d", i, c, len(keys), fair)
		}
	}
	t.Logf("ownership: %v (fair %d)", counts, fair)
}

// TestRingStability pins determinism: the same key always routes to the
// same replica, across rings built from the same identity list.
func TestRingStability(t *testing.T) {
	ids := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r1, r2 := NewRing(ids), NewRing(ids)
	for _, k := range testKeys(256) {
		if r1.Owner(k, nil) != r2.Owner(k, nil) {
			t.Fatal("identical rings disagree on an owner")
		}
	}
}

// TestRingMinimalDisruption is the property that justifies rendezvous over
// modulo hashing: excluding one replica reassigns ONLY that replica's keys.
// Every key owned by a surviving replica keeps its owner, and the dead
// replica's keys spread across BOTH survivors rather than piling onto one.
func TestRingMinimalDisruption(t *testing.T) {
	ids := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r := NewRing(ids)
	const dead = 1
	alive := func(i int) bool { return i != dead }
	inherited := make([]int, len(ids))
	for _, k := range testKeys(4096) {
		before := r.Owner(k, nil)
		after := r.Owner(k, alive)
		if before != dead {
			if after != before {
				t.Fatalf("key owned by surviving replica %d moved to %d", before, after)
			}
			continue
		}
		if after == dead {
			t.Fatal("excluded replica still owns a key")
		}
		inherited[after]++
	}
	for i, c := range inherited {
		if i == dead {
			continue
		}
		if c == 0 {
			t.Errorf("survivor %d inherited no keys; failover piles onto one neighbour: %v", i, inherited)
		}
	}
	t.Logf("keys inherited from dead replica: %v", inherited)
}

// TestRingFilterExhausted returns -1 only when the filter rejects everyone.
func TestRingFilterExhausted(t *testing.T) {
	r := NewRing([]string{"http://a:8080", "http://b:8080"})
	k := testKeys(1)[0]
	if got := r.Owner(k, func(int) bool { return false }); got != -1 {
		t.Errorf("Owner with all-rejecting filter = %d, want -1", got)
	}
	if got := r.Owner(k, func(i int) bool { return i == 1 }); got != 1 {
		t.Errorf("Owner with only replica 1 admitted = %d, want 1", got)
	}
}

// TestRingScalesEvenly sanity-checks larger clusters: with 8 replicas and
// 8192 keys, no replica is starved (each owns at least half fair share).
func TestRingScalesEvenly(t *testing.T) {
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	r := NewRing(ids)
	counts := make([]int, len(ids))
	keys := testKeys(8192)
	for _, k := range keys {
		counts[r.Owner(k, nil)]++
	}
	fair := len(keys) / len(ids)
	for i, c := range counts {
		if c < fair/2 {
			t.Errorf("replica %d owns %d, fair share %d: %v", i, c, fair, counts)
		}
	}
}
