// Streaming pass-through: the gate forwards /v1/sweep/stream (and
// Accept-negotiated /v1/sweep) responses chunk by chunk instead of
// buffering them, so the replica's time-to-first-result survives the hop.
// Identical concurrent streams coalesce cluster-wide the same way buffered
// requests do, but over a tee: the first requester (the owner) opens the
// one upstream fetch and pumps its chunks into a shared append-only
// buffer; every client — owner included — replays that buffer from the
// start, so followers joining mid-stream receive the full event sequence.
// When the last subscriber disconnects before the stream completes, the
// upstream fetch is cancelled promptly: nobody is listening, so the
// replica's evaluation context cancels too.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"wroofline/internal/serve"
)

// acceptsStream mirrors the replica's Accept negotiation on /v1/sweep.
func acceptsStream(r *http.Request) bool {
	a := r.Header.Get("Accept")
	return strings.Contains(a, serve.ContentTypeNDJSON) || strings.Contains(a, serve.ContentTypeSSE)
}

// streamFlight is one in-flight upstream stream shared by its subscribers:
// an append-only chunk buffer plus the response metadata, with a broadcast
// channel that is closed and replaced on every state change so replayers
// can wait without polling.
type streamFlight struct {
	mu     sync.Mutex
	notify chan struct{}
	buf    []byte
	// Response metadata, valid once started flips.
	status     int
	ctype      string
	retryAfter string
	backend    string
	started    bool
	done       bool
	err        error
	subs       int
	cancel     context.CancelFunc
}

// broadcast wakes every waiter. Callers hold the lock.
func (f *streamFlight) broadcast() {
	close(f.notify)
	f.notify = make(chan struct{})
}

// start records the upstream response head. Pump-side only.
func (f *streamFlight) start(status int, ctype, retryAfter, backend string) {
	f.mu.Lock()
	f.status, f.ctype, f.retryAfter, f.backend = status, ctype, retryAfter, backend
	f.started = true
	f.broadcast()
	f.mu.Unlock()
}

// append adds one upstream chunk to the shared buffer. Pump-side only.
func (f *streamFlight) append(p []byte) {
	f.mu.Lock()
	f.buf = append(f.buf, p...)
	f.broadcast()
	f.mu.Unlock()
}

// finish marks the stream complete (err nil) or failed. Pump-side only.
func (f *streamFlight) finish(err error) {
	f.mu.Lock()
	f.done = true
	f.err = err
	f.broadcast()
	f.mu.Unlock()
}

// streamProxy serves one streaming request: join (or start) the flight for
// the request's content address and framing, then replay the shared buffer
// to this client with a flush per chunk.
func (g *Gate) streamProxy(w http.ResponseWriter, r *http.Request, keyFn func([]byte) serve.Key) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	base := keyFn(body)
	// SSE and NDJSON framings of one spec are different byte streams; they
	// must not tee off the same flight, so the framing joins the key.
	framing := "ndjson"
	if strings.Contains(r.Header.Get("Accept"), serve.ContentTypeSSE) {
		framing = "sse"
	}
	key := serve.ContentKey("stream-"+framing, base[:])
	ureq := newUpstreamRequest(r, body)
	// Normalize the upstream path: a client that negotiated via Accept on
	// /v1/sweep still pumps through the dedicated endpoint, keeping one
	// upstream route (the replica's Accept handling picks the framing).
	ureq.path = "/v1/sweep/stream"
	f, owner := g.joinStream(key, ureq)
	if !owner {
		g.streamCoalesced.Add(1)
	}
	g.serveStream(w, r, key, f)
}

// joinStream subscribes to the key's live flight, or creates one and
// starts its pump. The second return reports ownership (a fresh upstream
// fetch) versus coalescing onto an existing stream.
func (g *Gate) joinStream(key serve.Key, ureq *upstreamRequest) (*streamFlight, bool) {
	g.streamMu.Lock()
	defer g.streamMu.Unlock()
	if f, ok := g.streams[key]; ok {
		f.mu.Lock()
		// A finished, successful flight is still joinable — replay is a
		// cache hit. A failed or cancelled one is not: the next requester
		// deserves a fresh upstream attempt.
		usable := !f.done || f.err == nil
		if usable {
			f.subs++
		}
		f.mu.Unlock()
		if usable {
			return f, false
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.Timeout)
	f := &streamFlight{notify: make(chan struct{}), subs: 1, cancel: cancel}
	g.streams[key] = f
	go g.pump(ctx, key, f, ureq)
	return f, true
}

// leaveStream drops one subscriber. The last one out of an unfinished
// stream cancels the upstream fetch — no client is listening, so the
// replica should stop evaluating — and retires the flight so the next
// request starts fresh.
func (g *Gate) leaveStream(key serve.Key, f *streamFlight) {
	f.mu.Lock()
	f.subs--
	abandoned := f.subs == 0 && !f.done
	f.mu.Unlock()
	if !abandoned {
		return
	}
	f.cancel()
	g.streamMu.Lock()
	if g.streams[key] == f {
		delete(g.streams, key)
	}
	g.streamMu.Unlock()
}

// serveStream replays the flight's buffer to one client: wait for the
// response head, stamp headers, then forward each appended chunk with a
// flush until the stream completes or the client leaves.
func (g *Gate) serveStream(w http.ResponseWriter, r *http.Request, key serve.Key, f *streamFlight) {
	defer g.leaveStream(key, f)
	fl, _ := w.(http.Flusher)
	for {
		f.mu.Lock()
		started, done, err, notify := f.started, f.done, f.err, f.notify
		status, ctype, retryAfter, backendURL := f.status, f.ctype, f.retryAfter, f.backend
		f.mu.Unlock()
		if started {
			h := w.Header()
			if ctype != "" {
				h.Set("Content-Type", ctype)
			}
			if retryAfter != "" {
				h.Set("Retry-After", retryAfter)
			}
			h.Set("Cache-Control", "no-store")
			h.Set("X-Backend", backendURL)
			w.WriteHeader(status)
			if fl != nil {
				fl.Flush()
			}
			break
		}
		if done {
			// Failed before the response head: a normal problem response
			// still works, the stream never started.
			if err != nil && r.Context().Err() == nil {
				writeProblem(w, http.StatusBadGateway, err.Error())
			}
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
	pos := 0
	for {
		f.mu.Lock()
		buf, done, notify := f.buf, f.done, f.notify
		f.mu.Unlock()
		if pos < len(buf) {
			// The snapshot slice header is stable: the pump only appends,
			// and a growth reallocation leaves this snapshot's array
			// intact.
			if _, err := w.Write(buf[pos:]); err != nil {
				return
			}
			pos = len(buf)
			if fl != nil {
				fl.Flush()
			}
			continue
		}
		if done {
			g.streamed.Add(1)
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// pump is the flight owner's upstream fetch: route to the key's live
// owner replica (rendezvous failover applies only before the first byte —
// a partially relayed stream cannot restart on another backend), then
// append each chunk to the shared buffer as it arrives.
func (g *Gate) pump(ctx context.Context, key serve.Key, f *streamFlight, ureq *upstreamRequest) {
	defer func() {
		g.streamMu.Lock()
		if g.streams[key] == f {
			delete(g.streams, key)
		}
		g.streamMu.Unlock()
	}()
	primary := g.ring.Owner(key, nil)
	tried := make([]bool, len(g.backends))
	var resp *http.Response
	var picked *backend
	for range g.backends {
		idx := g.ring.Owner(key, func(i int) bool { return !tried[i] && g.isUp(i) })
		if idx < 0 {
			idx = g.ring.Owner(key, func(i int) bool { return !tried[i] })
		}
		if idx < 0 {
			break
		}
		tried[idx] = true
		b := g.backends[idx]
		var rd io.Reader
		if len(ureq.body) > 0 {
			rd = bytes.NewReader(ureq.body)
		}
		req, err := http.NewRequestWithContext(ctx, ureq.method, b.url+ureq.path, rd)
		if err != nil {
			f.finish(err)
			return
		}
		ureq.apply(req)
		if idx != primary {
			req.Header.Set(serve.PeerOwnerHeader, g.backends[primary].url)
		}
		resp, err = g.client.Do(req)
		if err != nil {
			g.upstreamErrors.Add(1)
			g.markDown(b)
			if ctx.Err() != nil {
				f.finish(ctx.Err())
				return
			}
			continue
		}
		if idx != primary {
			g.rerouted.Add(1)
		}
		b.requests.Add(1)
		picked = b
		break
	}
	if resp == nil {
		f.finish(fmt.Errorf("all %d backends unreachable", len(g.backends)))
		return
	}
	defer resp.Body.Close()
	f.start(resp.StatusCode, resp.Header.Get("Content-Type"),
		resp.Header.Get("Retry-After"), picked.url)
	chunk := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(chunk)
		if n > 0 {
			f.append(chunk[:n])
		}
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			f.finish(err)
			return
		}
	}
}
