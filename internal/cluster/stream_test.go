package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wroofline/internal/serve"
)

func streamSweepSpec(trials int, seed uint64) string {
	return fmt.Sprintf(`{"kind":"montecarlo","case":"lcls-cori","trials":%d,"seed":%d,"batch":16,`+
		`"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`, trials, seed)
}

// streamThrough opens a streaming POST and returns the response plus all
// lines read to EOF.
func streamThrough(t *testing.T, url, body string) (*http.Response, []string) {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return resp, lines
}

// waitStream polls until cond holds or fails the test.
func waitStream(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterStreamMatchesSingleServer extends the equivalence contract to
// streaming: the final NDJSON line of a cold stream through a 1-gate,
// 3-replica cluster is byte-identical to a standalone server's buffered
// /v1/sweep body, with at least one progress event ahead of it.
func TestClusterStreamMatchesSingleServer(t *testing.T) {
	single := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer single.Close()
	c := newCluster(t, 3)
	spec := streamSweepSpec(192, 33)

	_, want, _ := post(t, single.URL+"/v1/sweep", spec)

	resp, lines := streamThrough(t, c.front.URL+"/v1/sweep/stream", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != serve.ContentTypeNDJSON {
		t.Errorf("Content-Type = %q, want %q", got, serve.ContentTypeNDJSON)
	}
	if resp.Header.Get("X-Backend") == "" {
		t.Error("gate stream carries no X-Backend")
	}
	if len(lines) < 2 {
		t.Fatalf("stream through gate produced %d lines, want progress + result", len(lines))
	}
	if lines[len(lines)-1] != strings.TrimSuffix(string(want), "\n") {
		t.Errorf("final line through the gate differs from standalone buffered body:\n%s\nvs\n%s",
			lines[len(lines)-1], strings.TrimSuffix(string(want), "\n"))
	}
	for _, line := range lines[:len(lines)-1] {
		if !strings.Contains(line, `"event":"progress"`) {
			t.Errorf("non-final line is not a progress event: %s", line)
		}
	}
	if snap := c.gate.MetricsSnapshot(); snap.Streamed != 1 {
		t.Errorf("gate streamed = %d, want 1", snap.Streamed)
	}

	// Accept negotiation on /v1/sweep takes the same streaming path.
	req, _ := http.NewRequest("POST", c.front.URL+"/v1/sweep", strings.NewReader(spec))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", serve.ContentTypeNDJSON)
	nresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer nresp.Body.Close()
	if got := nresp.Header.Get("Content-Type"); got != serve.ContentTypeNDJSON {
		t.Errorf("negotiated Content-Type through gate = %q, want %q", got, serve.ContentTypeNDJSON)
	}
}

// TestClusterStreamCoalesces pins the tee: two concurrent identical
// streams trigger exactly one replica evaluation, the follower replays the
// owner's buffer byte-for-byte from the start, and the gate counts the
// coalesce.
func TestClusterStreamCoalesces(t *testing.T) {
	c := newCluster(t, 3)
	spec := streamSweepSpec(50_000, 44)

	type result struct {
		lines []string
	}
	first := make(chan result, 1)
	second := make(chan result, 1)
	go func() {
		_, lines := streamThrough(t, c.front.URL+"/v1/sweep/stream", spec)
		first <- result{lines}
	}()
	// Fire the follower once the owner's flight exists, so the join is a
	// genuine mid-stream tee rather than a lucky race.
	waitStream(t, func() bool {
		c.gate.streamMu.Lock()
		defer c.gate.streamMu.Unlock()
		return len(c.gate.streams) == 1
	}, "owner flight never appeared")
	go func() {
		_, lines := streamThrough(t, c.front.URL+"/v1/sweep/stream", spec)
		second <- result{lines}
	}()

	a, b := <-first, <-second
	if len(a.lines) == 0 || len(b.lines) == 0 {
		t.Fatal("empty stream")
	}
	if strings.Join(a.lines, "\n") != strings.Join(b.lines, "\n") {
		t.Error("follower's replayed stream differs from the owner's")
	}
	if got := c.evaluations(); got != 1 {
		t.Errorf("cluster ran %d evaluations for two identical streams, want 1", got)
	}
	if snap := c.gate.MetricsSnapshot(); snap.StreamCoalesced != 1 {
		t.Errorf("stream_coalesced = %d, want 1", snap.StreamCoalesced)
	}
}

// TestClusterStreamDisconnectCancelsUpstream pins last-subscriber-out
// cancellation: a client abandoning a huge stream mid-flight makes the
// gate cancel its upstream fetch, which the replica sees as a disconnect
// and counts as a stream abort; the flight table is left empty.
func TestClusterStreamDisconnectCancelsUpstream(t *testing.T) {
	c := newCluster(t, 3)
	spec := streamSweepSpec(2_000_000, 55)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", c.front.URL+"/v1/sweep/stream",
		strings.NewReader(spec))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first stream byte: %v", err)
	}
	cancel()
	resp.Body.Close()

	// Some replica must record the upstream cancellation as a stream abort.
	waitStream(t, func() bool {
		for _, u := range c.urls {
			_, body, _ := get(t, u+"/metrics")
			var snap serve.Snapshot
			if json.Unmarshal(body, &snap) == nil && snap.StreamAborts >= 1 {
				return true
			}
		}
		return false
	}, "gate disconnect never cancelled the replica's streaming evaluation")

	waitStream(t, func() bool {
		c.gate.streamMu.Lock()
		defer c.gate.streamMu.Unlock()
		return len(c.gate.streams) == 0
	}, "abandoned flight not retired from the stream table")
}
