package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wroofline/internal/serve"
)

// testCluster is one gate in front of n live replicas, each configured
// with the others as peers (so rerouted requests can peer cache-fill).
type testCluster struct {
	gate     *Gate
	replicas []*serve.Server
	servers  []*httptest.Server
	urls     []string
	front    *httptest.Server
}

// newCluster boots n replicas and a gate. Listeners are created before the
// servers so every replica can be born knowing its siblings' URLs.
func newCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	c := &testCluster{
		replicas: make([]*serve.Server, n),
		servers:  make([]*httptest.Server, n),
		urls:     make([]string, n),
	}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		c.urls[i] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		var peers []string
		for j, u := range c.urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		c.replicas[i] = serve.New(serve.Config{Peers: peers})
		ts := httptest.NewUnstartedServer(c.replicas[i].Handler())
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		c.servers[i] = ts
		t.Cleanup(ts.Close)
	}
	g, err := New(Config{Backends: c.urls})
	if err != nil {
		t.Fatal(err)
	}
	c.gate = g
	c.front = httptest.NewServer(g.Handler())
	t.Cleanup(c.front.Close)
	return c
}

// evaluations sums Evaluations across every replica — the cluster-wide
// work counter the herd test pins to 1.
func (c *testCluster) evaluations() uint64 {
	var total uint64
	for _, r := range c.replicas {
		total += r.Evaluations()
	}
	return total
}

// post sends a JSON body and returns status, body bytes, and headers.
func post(t *testing.T, url, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// get fetches a URL and returns status, body bytes, and headers.
func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// TestClusterMatchesSingleServer is the equivalence contract: a 1-gate,
// 3-replica cluster returns byte-identical responses (and validators) to a
// standalone server, across every route and including error renderings.
func TestClusterMatchesSingleServer(t *testing.T) {
	single := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer single.Close()
	c := newCluster(t, 3)

	posts := []struct{ path, body string }{
		{"/v1/model", `{"case":"example"}`},
		{"/v1/model", `{ "case" : "lcls-cori" }`},
		{"/v1/sweep", `{"kind":"montecarlo","case":"lcls-cori","trials":8,"seed":3,` +
			`"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`},
		{"/v1/model", `{"case":"no-such-case"}`},
		{"/v1/model", `not json at all`},
	}
	for _, p := range posts {
		wantStatus, wantBody, wantHdr := post(t, single.URL+p.path, p.body)
		gotStatus, gotBody, gotHdr := post(t, c.front.URL+p.path, p.body)
		if gotStatus != wantStatus {
			t.Errorf("%s %q: gate status %d, single %d", p.path, p.body, gotStatus, wantStatus)
		}
		if !bytes.Equal(gotBody, wantBody) {
			t.Errorf("%s %q: gate body differs from single server\ngate:   %s\nsingle: %s",
				p.path, p.body, gotBody, wantBody)
		}
		if ge, we := gotHdr.Get("ETag"), wantHdr.Get("ETag"); ge != we {
			t.Errorf("%s %q: gate ETag %q, single %q", p.path, p.body, ge, we)
		}
	}

	for _, name := range []string{"example.svg", "WRF_Fig_2a.svg"} {
		wantStatus, wantBody, _ := get(t, single.URL+"/v1/figures/"+name)
		gotStatus, gotBody, _ := get(t, c.front.URL+"/v1/figures/"+name)
		if gotStatus != wantStatus || !bytes.Equal(gotBody, wantBody) {
			t.Errorf("figure %s: gate (%d, %d bytes) != single (%d, %d bytes)",
				name, gotStatus, len(gotBody), wantStatus, len(wantBody))
		}
	}
}

// TestClusterRoutesByContentAddress pins the routing invariant that makes
// the cluster cache-efficient: formatting variants of one spec route to
// one owner, so the second variant is a cache hit on the replica that
// rendered the first — the cluster holds one copy, not three.
func TestClusterRoutesByContentAddress(t *testing.T) {
	c := newCluster(t, 3)

	_, body1, hdr1 := post(t, c.front.URL+"/v1/model", `{"case":"example"}`)
	_, body2, hdr2 := post(t, c.front.URL+"/v1/model", `{  "case":   "example"  }`)
	if hdr1.Get("X-Backend") != hdr2.Get("X-Backend") {
		t.Errorf("formatting variants routed to different replicas: %q vs %q",
			hdr1.Get("X-Backend"), hdr2.Get("X-Backend"))
	}
	if got := hdr2.Get("X-Cache"); got != "hit" {
		t.Errorf("second variant X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("variants returned different bytes")
	}
	if got := c.evaluations(); got != 1 {
		t.Errorf("cluster evaluations = %d, want 1", got)
	}
}

// TestClusterHerdOneEvaluation is the headline scaling claim: 64 identical
// concurrent requests through the gate cost exactly ONE evaluation
// cluster-wide. Hash routing sends every member of the herd to the same
// owner; the gate's singleflight and the owner's cache/singleflight absorb
// the rest. Run under -race this also exercises the gate flight table.
func TestClusterHerdOneEvaluation(t *testing.T) {
	c := newCluster(t, 3)
	const herd = 64
	body := `{"case":"lcls-cori"}`

	var wg sync.WaitGroup
	bodies := make([][]byte, herd)
	statuses := make([]int, herd)
	start := make(chan struct{})
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(c.front.URL+"/v1/model", "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Errorf("herd member %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			bodies[i], statuses[i] = data, resp.StatusCode
		}(i)
	}
	close(start)
	wg.Wait()

	if got := c.evaluations(); got != 1 {
		t.Errorf("cluster evaluations = %d, want exactly 1 for a %d-way herd", got, herd)
	}
	for i := 1; i < herd; i++ {
		if statuses[i] != statuses[0] || !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("herd member %d got a different response (status %d vs %d)",
				i, statuses[i], statuses[0])
		}
	}
	if statuses[0] != http.StatusOK {
		t.Fatalf("herd status = %d", statuses[0])
	}
}

// TestClusterReplicaKill is the fail-open contract: after a replica dies
// mid-run, requests for its keys rehash to a survivor and keep answering
// 200 — no 5xx window, and the reroute is visible in the gate counters.
func TestClusterReplicaKill(t *testing.T) {
	c := newCluster(t, 3)

	// Find a body owned by each replica so we can target the victim.
	bodyFor := make(map[int]string)
	for i := 0; len(bodyFor) < 3 && i < 64; i++ {
		body := fmt.Sprintf(`{"case":"example","curve_samples":%d}`, 16+i)
		key := mustModelKey(t, body)
		bodyFor[c.gate.ring.Owner(key, nil)] = body
	}
	if len(bodyFor) < 3 {
		t.Fatal("could not find keys covering all replicas")
	}

	const victim = 0
	victimBody := bodyFor[victim]
	status, wantBytes, hdr := post(t, c.front.URL+"/v1/model", victimBody)
	if status != http.StatusOK || hdr.Get("X-Backend") != c.urls[victim] {
		t.Fatalf("warm request: status %d backend %q, want 200 via %q",
			status, hdr.Get("X-Backend"), c.urls[victim])
	}

	c.servers[victim].Close()

	// The very next request for the victim's key must rehash and answer —
	// passive mark-down happens inside this request, not before it.
	status, gotBytes, hdr := post(t, c.front.URL+"/v1/model", victimBody)
	if status != http.StatusOK {
		t.Fatalf("post-kill request: status %d, want 200 (fail-open rehash)", status)
	}
	if hdr.Get("X-Backend") == c.urls[victim] {
		t.Error("post-kill request claims the dead backend served it")
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Error("rehashed response differs from the pre-kill bytes")
	}

	// A burst across all keys must stay 5xx-free now that the victim is
	// marked down.
	for i := 0; i < 32; i++ {
		status, _, _ := post(t, c.front.URL+"/v1/model",
			fmt.Sprintf(`{"case":"example","curve_samples":%d}`, 100+i))
		if status >= 500 {
			t.Fatalf("burst request %d: status %d after replica kill", i, status)
		}
	}

	snap := c.gate.MetricsSnapshot()
	if snap.Rerouted == 0 {
		t.Error("no rerouted requests counted after a replica kill")
	}
	if snap.UpstreamErrors == 0 {
		t.Error("no upstream errors counted despite a dead backend")
	}
	for _, b := range snap.Backends {
		if b.URL == c.urls[victim] && b.Up {
			t.Error("dead backend still marked up after passive failure")
		}
	}
}

// TestClusterPeerFillOnReroute wires the two halves together: a key warmed
// on its owner, then rerouted (owner marked down at the gate, process
// still alive), is served by a survivor via peer cache-fill — the owner's
// exact bytes, zero extra evaluations.
func TestClusterPeerFillOnReroute(t *testing.T) {
	c := newCluster(t, 3)
	body := `{"case":"example"}`
	key := mustModelKey(t, body)
	owner := c.gate.ring.Owner(key, nil)

	status, wantBytes, _ := post(t, c.front.URL+"/v1/model", body)
	if status != http.StatusOK {
		t.Fatalf("warm: status %d", status)
	}
	if got := c.evaluations(); got != 1 {
		t.Fatalf("warm evaluations = %d", got)
	}

	// Mark the owner down at the gate only — the replica process is alive,
	// so the survivor can fill from its cache.
	c.gate.backends[owner].up.Store(false)

	status, gotBytes, hdr := post(t, c.front.URL+"/v1/model", body)
	if status != http.StatusOK {
		t.Fatalf("rerouted: status %d", status)
	}
	if hdr.Get("X-Backend") == c.urls[owner] {
		t.Error("rerouted request served by the downed owner")
	}
	if got := hdr.Get("X-Cache"); got != "peer" {
		t.Errorf("rerouted X-Cache = %q, want peer (fill from owner's cache)", got)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Error("peer-filled bytes differ from the owner's rendering")
	}
	if got := c.evaluations(); got != 1 {
		t.Errorf("evaluations after reroute = %d, want still 1 (peer fill, not re-eval)", got)
	}
}

// mustModelKey canonicalizes a model body or fails the test.
func mustModelKey(t *testing.T, body string) serve.Key {
	t.Helper()
	k, err := serve.ModelKey([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestGateConditionalRequests pins gate-level If-None-Match: the gate
// applies RFC 9110 member-list matching against the upstream validator, so
// a client revalidating through the gate gets 304 without the body — even
// when its header is a list or carries weak prefixes.
func TestGateConditionalRequests(t *testing.T) {
	c := newCluster(t, 1)
	body := `{"case":"example"}`
	status, _, hdr := post(t, c.front.URL+"/v1/model", body)
	if status != http.StatusOK || hdr.Get("ETag") == "" {
		t.Fatalf("prime: status %d etag %q", status, hdr.Get("ETag"))
	}
	etag := hdr.Get("ETag")

	for _, inm := range []string{
		etag,
		`"stale-one", ` + etag + `, "stale-two"`,
		"W/" + etag,
		"*",
	} {
		req, _ := http.NewRequest("POST", c.front.URL+"/v1/model", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("If-None-Match", inm)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", inm, resp.StatusCode)
		}
		if len(data) != 0 {
			t.Errorf("If-None-Match %q: 304 carried %d body bytes", inm, len(data))
		}
	}
	if got := c.gate.MetricsSnapshot().NotModified; got != 4 {
		t.Errorf("not_modified = %d, want 4", got)
	}
}

// TestGateProbeLifecycle drives the active health checker against stub
// backends whose health the test toggles: FailAfter consecutive failures
// take a replica out of rotation, one good probe puts it back.
func TestGateProbeLifecycle(t *testing.T) {
	var healthy atomic2 // healthy.Store(false) makes the stub fail probes
	healthy.Store(true)
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer stub.Close()

	g, err := New(Config{Backends: []string{stub.URL}, FailAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	g.ProbeNow(ctx)
	if !g.backends[0].up.Load() {
		t.Fatal("healthy backend marked down")
	}

	healthy.Store(false)
	g.ProbeNow(ctx)
	if !g.backends[0].up.Load() {
		t.Fatal("backend down after 1 failure with FailAfter=2")
	}
	g.ProbeNow(ctx)
	if g.backends[0].up.Load() {
		t.Fatal("backend still up after FailAfter consecutive failures")
	}

	healthy.Store(true)
	g.ProbeNow(ctx)
	if !g.backends[0].up.Load() {
		t.Fatal("backend not restored after a successful probe")
	}
	if g.backends[0].probeFails.Load() != 0 {
		t.Error("consecutive-failure counter not reset on recovery")
	}
}

// atomic2 is a tiny atomic bool (avoids importing sync/atomic twice under
// test-local names).
type atomic2 struct {
	mu sync.Mutex
	v  bool
}

func (a *atomic2) Store(v bool) { a.mu.Lock(); a.v = v; a.mu.Unlock() }
func (a *atomic2) Load() bool   { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// TestGateFlightWaiterCancellation mirrors the serve-layer bugfix at the
// gate tier: a waiter coalesced onto a slow upstream fetch must return as
// soon as its client gives up, while the fetch completes for the leader.
func TestGateFlightWaiterCancellation(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte("ok"))
			return
		}
		<-release
		w.Write([]byte(`{"slow":true}`))
	}))
	defer slow.Close()

	g, err := New(Config{Backends: []string{slow.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(g.Handler())
	defer front.Close()

	body := `{"case":"example"}`
	key := mustModelKey(t, body)

	// Leader: blocks inside the stub until release.
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		resp, err := http.Post(front.URL+"/v1/model", "application/json", strings.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool {
		g.flight.shard(key).mu.Lock()
		_, inFlight := g.flight.shard(key).calls[key]
		g.flight.shard(key).mu.Unlock()
		return inFlight
	}, "leader flight never appeared")

	// Waiter: same key, cancellable context.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", front.URL+"/v1/model", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	waiterDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		waiterDone <- err
	}()
	waitFor(t, func() bool { return g.flight.waiting(key) > 0 }, "waiter never parked")

	cancel()
	select {
	case err := <-waiterDone:
		if err == nil {
			t.Error("cancelled waiter completed without error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter stuck behind the slow upstream fetch")
	}
	select {
	case <-leaderDone:
		t.Fatal("leader finished early; the test never exercised the waiter path")
	default:
	}

	// Let the leader's fetch complete so the servers can close cleanly —
	// this must happen before the deferred Closes, which wait on the
	// leader's connection.
	close(release)
	select {
	case <-leaderDone:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never completed after release")
	}
}

// waitFor polls cond until true or the deadline, failing the test on
// timeout.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGateRejectsOversizedBody enforces the body cap at the gate so herds
// of oversized requests never reach the replicas.
func TestGateRejectsOversizedBody(t *testing.T) {
	c := newCluster(t, 1)
	big := strings.Repeat("x", 1<<20+1)
	status, _, _ := post(t, c.front.URL+"/v1/model", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", status)
	}
	if got := c.evaluations(); got != 0 {
		t.Errorf("oversized body reached a replica: %d evaluations", got)
	}
}

// TestGateHealthzAndMetrics pins the observability payloads.
func TestGateHealthzAndMetrics(t *testing.T) {
	c := newCluster(t, 2)
	post(t, c.front.URL+"/v1/model", `{"case":"example"}`)

	status, body, hdr := get(t, c.front.URL+"/healthz")
	if status != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("healthz: status %d ctype %q", status, hdr.Get("Content-Type"))
	}
	for _, u := range c.urls {
		if !strings.Contains(string(body), u) {
			t.Errorf("healthz missing backend %s: %s", u, body)
		}
	}

	status, body, _ = get(t, c.front.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	if !strings.Contains(string(body), `"requests": 1`) {
		t.Errorf("metrics did not count the proxied request: %s", body)
	}
}

// TestNewValidation pins constructor errors: empty backend list, bare
// hosts, duplicates.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := New(Config{Backends: []string{"replica-a:8080"}}); err == nil {
		t.Error("bare host:port accepted as a backend URL")
	}
	if _, err := New(Config{Backends: []string{"http://a", "http://a/"}}); err == nil {
		t.Error("duplicate backends (modulo trailing slash) accepted")
	}
}
