// Package cluster is the horizontal scaling layer over wfserved: wfgate, an
// HTTP router that consistent-hashes each request's content address to an
// owner replica among N backends.
//
// The design rides on the toolkit's end-to-end determinism the same way the
// single-process cache does. Every cacheable request canonicalizes to a
// SHA-256 content address (the exact key a replica caches under, via the
// exported helpers in internal/serve), so routing by that hash sends every
// formatting variant of one spec to one owner — the cluster holds one copy
// of each rendered response instead of N, and a replica's hit ratio is
// independent of which clients talk to it. A gate-level singleflight
// coalesces identical concurrent requests cluster-wide, so a thundering
// herd costs one upstream round-trip and (because all members route to the
// same owner, whose own cache and singleflight dedupe sequential stragglers)
// exactly one evaluation across the cluster.
//
// Failure handling is fail-open: replicas are health-checked actively (a
// /healthz probe loop) and passively (a transport error marks the backend
// down on the spot), and a request whose owner is down reroutes to the
// key's next-highest rendezvous score — rehashing, not 502s. Rerouted
// requests carry an X-Peer-Owner header naming the primary owner, so the
// handling replica can try a peer cache-fill before evaluating locally
// (see internal/serve's peer API).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wroofline/internal/serve"
)

// Config tunes the gate.
type Config struct {
	// Backends lists the wfserved replica base URLs (at least one).
	Backends []string
	// ProbeInterval paces the health-check loop (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (default 1s).
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive probe failures mark a replica down
	// (default 1: one failed probe window and traffic reroutes). Passive
	// detection is immediate regardless — a transport error on a live
	// request marks the backend down on the spot.
	FailAfter int
	// Timeout bounds one upstream fetch, shared by every rider of the
	// flight (default 30s, matching the replica evaluation budget).
	Timeout time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB, matching wfserved).
	MaxBodyBytes int64
	// Shards sets the singleflight shard count (default 16).
	Shards int
	// Client overrides the upstream HTTP client (tests and benchmarks
	// inject in-process transports); nil builds a default.
	Client *http.Client
	// Logger receives one structured record per backend state change; nil
	// discards.
	Logger *slog.Logger
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// backend is one replica's live state.
type backend struct {
	url string
	// up is the routing bit: probes and passive transport errors clear it,
	// a successful probe sets it. Starts true — optimistic, corrected
	// within one probe window or one failed request.
	up atomic.Bool
	// probeFails counts consecutive failed probes.
	probeFails atomic.Int32
	// requests counts successfully proxied requests (the skew numerator).
	requests atomic.Uint64
}

// upstreamRequest is everything the gate forwards upstream: the routed
// method/path/body plus the headers that must survive the hop — the
// content type, and the admission headers (tenant, deadline, accept) that
// drive per-tenant fairness and deadline propagation on the replica. A
// coalesced flight forwards its first rider's headers.
type upstreamRequest struct {
	method   string
	path     string
	ctype    string
	accept   string
	tenant   string
	deadline string
	body     []byte
}

// newUpstreamRequest snapshots the forwardable parts of a client request.
func newUpstreamRequest(r *http.Request, body []byte) *upstreamRequest {
	return &upstreamRequest{
		method:   r.Method,
		path:     r.URL.Path,
		ctype:    r.Header.Get("Content-Type"),
		accept:   r.Header.Get("Accept"),
		tenant:   r.Header.Get(serve.TenantHeader),
		deadline: r.Header.Get(serve.DeadlineHeader),
		body:     body,
	}
}

// apply stamps the snapshot onto an outbound request.
func (u *upstreamRequest) apply(req *http.Request) {
	if u.ctype != "" {
		req.Header.Set("Content-Type", u.ctype)
	}
	if u.accept != "" {
		req.Header.Set("Accept", u.accept)
	}
	if u.tenant != "" {
		req.Header.Set(serve.TenantHeader, u.tenant)
	}
	if u.deadline != "" {
		req.Header.Set(serve.DeadlineHeader, u.deadline)
	}
}

// upstreamResult is one fetched response, shared across a flight's riders.
type upstreamResult struct {
	status     int
	ctype      string
	etag       string
	xcache     string
	retryAfter string
	backend    string
	body       []byte
}

// Gate is the cluster router. Create with New, mount via Handler, start
// health probes with Start.
type Gate struct {
	cfg      Config
	backends []*backend
	ring     *Ring
	flight   *flightGroup
	client   *http.Client
	mux      *http.ServeMux

	// streamMu guards streams, the in-flight tee table for streaming
	// requests (see stream.go).
	streamMu sync.Mutex
	streams  map[serve.Key]*streamFlight

	rerouted        atomic.Uint64
	coalesced       atomic.Uint64
	upstreamErrors  atomic.Uint64
	notModified     atomic.Uint64
	streamed        atomic.Uint64
	streamCoalesced atomic.Uint64
}

// New builds a gate over the configured backends.
func New(cfg Config) (*Gate, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	urls := make([]string, len(cfg.Backends))
	seen := make(map[string]bool, len(cfg.Backends))
	for i, u := range cfg.Backends {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("cluster: backend %q is not a base URL", u)
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate backend %q", u)
		}
		seen[u] = true
		urls[i] = u
	}
	g := &Gate{
		cfg:     cfg,
		ring:    NewRing(urls),
		flight:  newFlightGroup(cfg.Shards),
		client:  cfg.Client,
		mux:     http.NewServeMux(),
		streams: make(map[serve.Key]*streamFlight),
	}
	if g.client == nil {
		g.client = &http.Client{Timeout: cfg.Timeout}
	}
	g.backends = make([]*backend, len(urls))
	for i, u := range urls {
		g.backends[i] = &backend{url: u}
		g.backends[i].up.Store(true)
	}
	g.mux.HandleFunc("POST /v1/model", func(w http.ResponseWriter, r *http.Request) {
		g.proxy(w, r, keyOrRaw(serve.ModelKey))
	})
	g.mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		// The same Accept negotiation the replica applies: a streaming
		// client must tee through the stream path, or the gate would
		// buffer the replica's progressive response back into one blob.
		if acceptsStream(r) {
			g.streamProxy(w, r, keyOrRaw(serve.SweepKey))
			return
		}
		g.proxy(w, r, keyOrRaw(serve.SweepKey))
	})
	g.mux.HandleFunc("POST /v1/sweep/stream", func(w http.ResponseWriter, r *http.Request) {
		g.streamProxy(w, r, keyOrRaw(serve.SweepKey))
	})
	g.mux.HandleFunc("GET /v1/figures/{name}", func(w http.ResponseWriter, r *http.Request) {
		g.proxy(w, r, func([]byte) serve.Key { return serve.FigureKey(r.PathValue("name")) })
	})
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	return g, nil
}

// keyOrRaw adapts a canonicalizing key function: a body the canonicalizer
// rejects is still routed (and coalesced) deterministically by its raw
// hash, so the owning replica renders the 400 exactly once per herd.
func keyOrRaw(keyFn func([]byte) (serve.Key, error)) func([]byte) serve.Key {
	return func(body []byte) serve.Key {
		if k, err := keyFn(body); err == nil {
			return k
		}
		return serve.ContentKey("raw-route", body)
	}
}

// Handler returns the routed HTTP handler.
func (g *Gate) Handler() http.Handler { return g.mux }

// Start launches the health-probe loop; it stops when ctx is cancelled.
func (g *Gate) Start(ctx context.Context) {
	go func() {
		t := time.NewTicker(g.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.ProbeNow(ctx)
			}
		}
	}()
}

// ProbeNow runs one synchronous health sweep over every backend (the probe
// loop's body; exported so tests can step the clock deterministically).
func (g *Gate) ProbeNow(ctx context.Context) {
	for _, b := range g.backends {
		probeCtx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
		ok := g.probe(probeCtx, b)
		cancel()
		switch {
		case ok:
			b.probeFails.Store(0)
			if !b.up.Swap(true) {
				g.cfg.Logger.Info("backend recovered", "backend", b.url)
			}
		case int(b.probeFails.Add(1)) >= g.cfg.FailAfter:
			if b.up.Swap(false) {
				g.cfg.Logger.Warn("backend down", "backend", b.url,
					"consecutive_failures", b.probeFails.Load())
			}
		}
	}
}

// probe checks one backend's liveness.
func (g *Gate) probe(ctx context.Context, b *backend) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// markDown records a passive failure: the backend dropped a live request,
// so it leaves the rotation immediately rather than waiting for a probe.
func (g *Gate) markDown(b *backend) {
	if b.up.Swap(false) {
		g.cfg.Logger.Warn("backend down (transport error)", "backend", b.url)
	}
}

// isUp is the ring filter for live routing.
func (g *Gate) isUp(i int) bool { return g.backends[i].up.Load() }

// proxy is the shared request path: read the body, canonicalize to the
// routing key, coalesce identical concurrent requests onto one upstream
// fetch, and write the shared result — applying If-None-Match per client,
// since coalesced riders may each hold different validators.
func (g *Gate) proxy(w http.ResponseWriter, r *http.Request, keyFn func([]byte) serve.Key) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	key := keyFn(body)
	ureq := newUpstreamRequest(r, body)
	res, err, shared := g.flight.do(r.Context(), key, func() (*upstreamResult, error) {
		return g.fetch(key, ureq)
	})
	if shared {
		g.coalesced.Add(1)
	}
	if err != nil {
		if r.Context().Err() != nil {
			// The client hung up; the connection is gone, so the status is
			// bookkeeping only.
			return
		}
		writeProblem(w, http.StatusBadGateway, err.Error())
		return
	}
	g.writeResult(w, r, res)
}

// readBody drains a capped request body, writing the problem response
// itself on failure; the second return reports success.
func (g *Gate) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Body == nil {
		return nil, true
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBodyBytes+1))
	if err != nil {
		writeProblem(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return nil, false
	}
	if int64(len(body)) > g.cfg.MaxBodyBytes {
		writeProblem(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", g.cfg.MaxBodyBytes))
		return nil, false
	}
	return body, true
}

// fetch routes one upstream request: the key's highest-scoring live
// replica first, then down the rendezvous order as transport errors
// (connection refused, resets, timeouts) knock replicas out. HTTP error
// statuses are not failures — a replica's 400 or 503 is its answer and
// passes through verbatim. When every replica looks down the gate fails
// open to the primary owner: if the whole cluster bounced, optimism
// recovers faster than refusing traffic.
func (g *Gate) fetch(key serve.Key, ureq *upstreamRequest) (*upstreamResult, error) {
	primary := g.ring.Owner(key, nil)
	tried := make([]bool, len(g.backends))
	for range g.backends {
		idx := g.ring.Owner(key, func(i int) bool { return !tried[i] && g.isUp(i) })
		if idx < 0 {
			idx = g.ring.Owner(key, func(i int) bool { return !tried[i] })
		}
		if idx < 0 {
			break
		}
		tried[idx] = true
		b := g.backends[idx]
		ownerURL := ""
		if idx != primary {
			ownerURL = g.backends[primary].url
		}
		res, err := g.roundTrip(b, ureq, ownerURL)
		if err != nil {
			g.upstreamErrors.Add(1)
			g.markDown(b)
			continue
		}
		if idx != primary {
			g.rerouted.Add(1)
		}
		b.requests.Add(1)
		res.backend = b.url
		return res, nil
	}
	return nil, fmt.Errorf("all %d backends unreachable", len(g.backends))
}

// roundTrip issues one upstream request and buffers the response. ownerURL
// names the primary owner when the request was rerouted away from it
// (empty otherwise). The context is detached from any single client — the
// result is shared by every rider of the flight, so the first client
// hanging up must not cancel it (the same contract as the replica's
// evaluate).
func (g *Gate) roundTrip(b *backend, ureq *upstreamRequest, ownerURL string) (*upstreamResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.Timeout)
	defer cancel()
	var rd io.Reader
	if len(ureq.body) > 0 {
		rd = bytes.NewReader(ureq.body)
	}
	req, err := http.NewRequestWithContext(ctx, ureq.method, b.url+ureq.path, rd)
	if err != nil {
		return nil, err
	}
	ureq.apply(req)
	if ownerURL != "" {
		// Name the primary owner so the handling replica can try a peer
		// cache-fill before evaluating locally.
		req.Header.Set(serve.PeerOwnerHeader, ownerURL)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &upstreamResult{
		status:     resp.StatusCode,
		ctype:      resp.Header.Get("Content-Type"),
		etag:       resp.Header.Get("ETag"),
		xcache:     resp.Header.Get("X-Cache"),
		retryAfter: resp.Header.Get("Retry-After"),
		body:       data,
	}, nil
}

// writeResult renders a shared upstream result to one client, applying
// that client's conditional headers against the shared validator.
func (g *Gate) writeResult(w http.ResponseWriter, r *http.Request, res *upstreamResult) {
	h := w.Header()
	if res.ctype != "" {
		h.Set("Content-Type", res.ctype)
	}
	if res.etag != "" {
		h.Set("ETag", res.etag)
	}
	if res.xcache != "" {
		h.Set("X-Cache", res.xcache)
	}
	if res.retryAfter != "" {
		// A shed replica's backoff hint is for the client, not the gate:
		// pass it through so 503 + Retry-After survives the hop.
		h.Set("Retry-After", res.retryAfter)
	}
	h.Set("X-Backend", res.backend)
	if res.status == http.StatusOK && res.etag != "" {
		if match := r.Header.Get("If-None-Match"); match != "" && serve.ETagMatch(match, res.etag) {
			g.notModified.Add(1)
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	h.Set("Content-Length", strconv.Itoa(len(res.body)))
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// writeProblem renders a gate-originated error in the same JSON problem
// shape the replicas use, so clients parse one error format.
func writeProblem(w http.ResponseWriter, status int, msg string) {
	body, _ := json.Marshal(map[string]any{"error": msg, "status": status})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// handleHealthz reports the gate's own liveness plus each backend's
// routing state.
func (g *Gate) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type be struct {
		URL string `json:"url"`
		Up  bool   `json:"up"`
	}
	out := struct {
		Status   string `json:"status"`
		Backends []be   `json:"backends"`
	}{Status: "ok"}
	for _, b := range g.backends {
		out.Backends = append(out.Backends, be{URL: b.url, Up: b.up.Load()})
	}
	data, _ := json.Marshal(out)
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// BackendSnapshot is one replica's slice of the gate counters.
type BackendSnapshot struct {
	URL      string `json:"url"`
	Up       bool   `json:"up"`
	Requests uint64 `json:"requests"`
}

// Snapshot is the gate's /metrics payload: per-backend routing counts (the
// request-skew table) plus the cluster-level coalescing and failover
// counters.
type Snapshot struct {
	Backends       []BackendSnapshot `json:"backends"`
	Rerouted       uint64            `json:"rerouted"`
	Coalesced      uint64            `json:"coalesced"`
	UpstreamErrors uint64            `json:"upstream_errors"`
	NotModified    uint64            `json:"not_modified"`
	// Streamed counts streaming responses pumped through the gate;
	// StreamCoalesced the followers that teed an owner's stream instead of
	// opening their own upstream fetch. Omitted when zero so the
	// pre-streaming snapshot shape is unchanged.
	Streamed        uint64 `json:"streamed,omitempty"`
	StreamCoalesced uint64 `json:"stream_coalesced,omitempty"`
}

// MetricsSnapshot returns the current counters.
func (g *Gate) MetricsSnapshot() Snapshot {
	snap := Snapshot{
		Rerouted:        g.rerouted.Load(),
		Coalesced:       g.coalesced.Load(),
		UpstreamErrors:  g.upstreamErrors.Load(),
		NotModified:     g.notModified.Load(),
		Streamed:        g.streamed.Load(),
		StreamCoalesced: g.streamCoalesced.Load(),
	}
	for _, b := range g.backends {
		snap.Backends = append(snap.Backends, BackendSnapshot{
			URL: b.url, Up: b.up.Load(), Requests: b.requests.Load(),
		})
	}
	return snap
}

// handleMetrics renders the counter snapshot as JSON.
func (g *Gate) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	data, err := json.MarshalIndent(g.MetricsSnapshot(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}
