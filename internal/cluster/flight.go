package cluster

import (
	"context"
	"sync"

	"wroofline/internal/serve"
)

// flightGroup is the gate's cluster-wide singleflight: while one request
// fetches a content address from the backends, identical concurrent
// requests park and share the fetched response instead of multiplying
// upstream round-trips. Combined with hash routing this pins a thundering
// herd spread across gate clients to one upstream request — and, because
// every member of the herd routes to the same owner replica, to exactly
// one evaluation cluster-wide. Sharded by the first key byte like the
// serve layer's tables; waiters are context-aware from birth (the serve
// layer learned that the hard way).
type flightGroup struct {
	mask   byte
	shards []flightShard
}

// flightShard is one independently locked slice of the call table, padded
// apart so neighbouring shard mutexes do not share a cache line.
type flightShard struct {
	mu    sync.Mutex
	calls map[serve.Key]*flightCall
	_     [88]byte
}

// flightCall is one in-progress upstream fetch.
type flightCall struct {
	done    chan struct{}
	waiters int
	res     *upstreamResult
	err     error
}

// newFlightGroup creates an empty group with the given shard count
// (normalized to a power of two in [1, 256]).
func newFlightGroup(shards int) *flightGroup {
	n := 1
	for n < shards && n < 256 {
		n <<= 1
	}
	g := &flightGroup{mask: byte(n - 1), shards: make([]flightShard, n)}
	for i := range g.shards {
		g.shards[i].calls = make(map[serve.Key]*flightCall)
	}
	return g
}

// shard maps a key to its home shard.
func (g *flightGroup) shard(k serve.Key) *flightShard {
	return &g.shards[k[0]&g.mask]
}

// do runs fn for the key unless a fetch for the same key is in flight, in
// which case it waits and shares that result. ctx covers only the wait: a
// cancelled waiter returns immediately while the fetch runs on for the
// survivors. Errors are shared — N identical requests against a dead
// cluster cost one connection storm, not N.
func (g *flightGroup) do(ctx context.Context, k serve.Key, fn func() (*upstreamResult, error)) (res *upstreamResult, err error, shared bool) {
	sh := g.shard(k)
	sh.mu.Lock()
	if c, ok := sh.calls[k]; ok {
		c.waiters++
		sh.mu.Unlock()
		select {
		case <-c.done:
			return c.res, c.err, true
		case <-ctx.Done():
			sh.mu.Lock()
			c.waiters--
			sh.mu.Unlock()
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	sh.calls[k] = c
	sh.mu.Unlock()

	c.res, c.err = fn()
	sh.mu.Lock()
	delete(sh.calls, k)
	sh.mu.Unlock()
	close(c.done)
	return c.res, c.err, false
}

// waiting reports how many callers are parked on the key's in-flight fetch
// (0 when none). Tests use it to sequence coalescing races.
func (g *flightGroup) waiting(k serve.Key) int {
	sh := g.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c, ok := sh.calls[k]; ok {
		return c.waiters
	}
	return 0
}
