package cluster

import (
	"crypto/sha256"
	"encoding/binary"

	"wroofline/internal/serve"
)

// Ring assigns content addresses to replicas with rendezvous (highest-
// random-weight) hashing: every key scores each replica and the highest
// score owns it. This generalizes the serve layer's shard-by-first-byte to
// route-by-hash, with two properties a modulo ring lacks — removing a
// replica reassigns only that replica's keys (every surviving replica's
// scores are unchanged), and failover order is deterministic per key (the
// score ranking), so a dead owner's keys spread evenly across the
// survivors rather than piling onto one neighbour.
type Ring struct {
	// seeds are per-replica hash seeds derived from the replica identity
	// once at construction; scoring a key is then one 64-bit mix per
	// replica, allocation-free.
	seeds []uint64
}

// NewRing builds a ring over the given replica identities (base URLs).
// Identities should be distinct; duplicates would shadow each other for
// every key.
func NewRing(ids []string) *Ring {
	seeds := make([]uint64, len(ids))
	for i, id := range ids {
		sum := sha256.Sum256([]byte(id))
		seeds[i] = binary.BigEndian.Uint64(sum[:8])
	}
	return &Ring{seeds: seeds}
}

// Len reports the replica count.
func (r *Ring) Len() int { return len(r.seeds) }

// Owner returns the index of the highest-scoring replica for the key among
// those the filter admits (nil admits all), or -1 when the filter rejects
// every replica. The key's first 8 bytes carry the entropy — it is a
// SHA-256 content address, so any window is uniform.
func (r *Ring) Owner(key serve.Key, admit func(int) bool) int {
	k := binary.BigEndian.Uint64(key[:8])
	best, bestScore := -1, uint64(0)
	for i, seed := range r.seeds {
		if admit != nil && !admit(i) {
			continue
		}
		if s := mix64(k ^ seed); best < 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit permutation,
// so equal inputs in any bit produce uncorrelated scores.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
