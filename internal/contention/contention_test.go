package contention

import (
	"math"
	"testing"
	"testing/quick"

	"wroofline/internal/units"
	"wroofline/internal/workloads"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a2 := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide too often: %d/100", same)
	}
	// Zero seed must still work.
	z := NewRNG(0)
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Error("zero seed produced a stuck stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestTwoStateSampler(t *testing.T) {
	m := TwoState{Base: 1 * units.GBPS, Degraded: 0.2 * units.GBPS, PBad: 0.3}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	r := NewRNG(5)
	bad := 0
	const n = 10000
	for i := 0; i < n; i++ {
		rate := m.Sample(r)
		switch rate {
		case m.Base:
		case m.Degraded:
			bad++
		default:
			t.Fatalf("two-state sampler produced %v", float64(rate))
		}
	}
	frac := float64(bad) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("bad-day fraction = %v, want ~0.3", frac)
	}
	for _, bad := range []TwoState{
		{Base: 0, Degraded: 1, PBad: 0.5},
		{Base: 1, Degraded: 0, PBad: 0.5},
		{Base: 1, Degraded: 1, PBad: -0.1},
		{Base: 1, Degraded: 1, PBad: 1.1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("TwoState %+v should fail validation", bad)
		}
	}
}

func TestLognormalSampler(t *testing.T) {
	m := Lognormal{Base: 1 * units.GBPS, Mu: 0.5, Sigma: 0.8}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	r := NewRNG(9)
	for i := 0; i < 5000; i++ {
		rate := m.Sample(r)
		if rate <= 0 || rate > m.Base {
			t.Fatalf("lognormal contention produced %v (base %v); the factor must be >= 1",
				float64(rate), float64(m.Base))
		}
	}
	if err := (Lognormal{Base: 0}).Validate(); err == nil {
		t.Error("zero base should fail")
	}
	if err := (Lognormal{Base: 1, Sigma: -1}).Validate(); err == nil {
		t.Error("negative sigma should fail")
	}
}

func TestDistribution(t *testing.T) {
	d, err := NewDistribution([]float64{5, 1, 3, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 5 || d.Min() != 1 || d.Max() != 5 {
		t.Errorf("summary: n=%d min=%v max=%v", d.N(), d.Min(), d.Max())
	}
	if d.Mean() != 3 {
		t.Errorf("mean = %v", d.Mean())
	}
	p50, err := d.Percentile(50)
	if err != nil {
		t.Fatal(err)
	}
	if p50 != 3 {
		t.Errorf("p50 = %v", p50)
	}
	p0, _ := d.Percentile(0)
	p100, _ := d.Percentile(100)
	if p0 != 1 || p100 != 5 {
		t.Errorf("p0=%v p100=%v", p0, p100)
	}
	// Interpolation between ranks.
	p25, _ := d.Percentile(25)
	if p25 != 2 {
		t.Errorf("p25 = %v", p25)
	}
	p10, _ := d.Percentile(10)
	if math.Abs(p10-1.4) > 1e-9 {
		t.Errorf("p10 = %v, want 1.4", p10)
	}
	if _, err := d.Percentile(-1); err == nil {
		t.Error("negative percentile should fail")
	}
	if _, err := d.Percentile(101); err == nil {
		t.Error("percentile > 100 should fail")
	}
	if _, err := NewDistribution(nil); err == nil {
		t.Error("empty distribution should fail")
	}
	if _, err := NewDistribution([]float64{math.NaN()}); err == nil {
		t.Error("NaN sample should fail")
	}
	single, err := NewDistribution([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	v, err := single.Percentile(73)
	if err != nil || v != 7 {
		t.Errorf("single-sample percentile = %v, %v", v, err)
	}
}

func TestNewDistributionCopies(t *testing.T) {
	src := []float64{3, 1, 2}
	d, err := NewDistribution(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	if d.Max() == 99 {
		t.Error("NewDistribution must copy its input")
	}
}

// Monte Carlo over the LCLS simulation: two-state days reproduce the paper's
// bimodal makespan (17 min / 85 min), and the tail ratio captures the 5x
// swing.
func TestMonteCarloLCLS(t *testing.T) {
	model := TwoState{
		Base:     units.ByteRate(workloads.LCLSGoodDayRate),
		Degraded: units.ByteRate(workloads.LCLSBadDayRate),
		PBad:     0.4,
	}
	run := func(rate units.ByteRate) (float64, error) {
		cs, err := workloads.LCLSCori()
		if err != nil {
			return 0, err
		}
		cs.SimConfig.ExternalBW = 5 * rate
		cs.SimConfig.ExternalPerFlowCap = rate
		res, err := cs.Simulate()
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}
	d, err := MonteCarlo(50, 123, model, run)
	if err != nil {
		t.Fatal(err)
	}
	// The distribution is bimodal at ~1021 and ~5021 (analysis constant in
	// this setup; only loading swings).
	if d.Min() < 1000 || d.Min() > 1100 {
		t.Errorf("min = %v, want ~1021 (good day)", d.Min())
	}
	if d.Max() < 4900 || d.Max() > 5200 {
		t.Errorf("max = %v, want ~5021 (bad day)", d.Max())
	}
	ratio, err := d.TailRatio()
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1.5 {
		t.Errorf("tail ratio = %v, want a heavy tail from contention", ratio)
	}
	// Determinism: same seed, same distribution.
	d2, err := MonteCarlo(50, 123, model, run)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != d2.Mean() || d.Max() != d2.Max() {
		t.Error("Monte Carlo is not deterministic for a fixed seed")
	}
}

func TestMonteCarloErrors(t *testing.T) {
	ok := func(units.ByteRate) (float64, error) { return 1, nil }
	sampler := TwoState{Base: 1, Degraded: 1, PBad: 0}
	if _, err := MonteCarlo(0, 1, sampler, ok); err == nil {
		t.Error("zero samples should fail")
	}
	if _, err := MonteCarlo(1, 1, nil, ok); err == nil {
		t.Error("nil sampler should fail")
	}
	if _, err := MonteCarlo(1, 1, sampler, nil); err == nil {
		t.Error("nil run should fail")
	}
	boom := func(units.ByteRate) (float64, error) { return 0, errFake }
	if _, err := MonteCarlo(3, 1, sampler, boom); err == nil {
		t.Error("run error should propagate")
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "boom" }

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		for i, v := range raw {
			samples[i] = float64(v)
		}
		d, err := NewDistribution(samples)
		if err != nil {
			return false
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, err1 := d.Percentile(a)
		pb, err2 := d.Percentile(b)
		if err1 != nil || err2 != nil {
			return false
		}
		return pa <= pb+1e-9 && pa >= d.Min()-1e-9 && pb <= d.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
