// Package contention models stochastic bandwidth degradation. The paper's
// LCLS study observed the shared external path swing 5x between "good days"
// and "bad days"; this package turns that anecdote into a distribution:
// deterministic pseudo-random day sampling (two-state and lognormal
// models), Monte Carlo makespan estimation over any run function, and
// percentile summaries — the quantitative basis for end-to-end QOS
// arguments.
package contention

import (
	"context"
	"fmt"
	"math"
	"sort"

	"wroofline/internal/sweep"
	"wroofline/internal/units"
)

// RNG is a deterministic xorshift64* generator. The simulator and tests
// need reproducible streams, so the package does not use math/rand's global
// state.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator; a zero seed is replaced by a fixed constant
// (xorshift cannot leave state zero).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 advances the generator.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Normal returns a standard-normal sample (Box-Muller).
func (r *RNG) Normal() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Sampler draws an effective bandwidth for one "day".
type Sampler interface {
	// Sample returns the day's effective rate.
	Sample(r *RNG) units.ByteRate
}

// TwoState is the paper's good-day/bad-day model: with probability PBad the
// rate is Degraded, otherwise Base.
type TwoState struct {
	// Base and Degraded are the two observed rates.
	Base, Degraded units.ByteRate
	// PBad is the probability of a degraded day, in [0, 1].
	PBad float64
}

// Validate checks the model parameters.
func (t TwoState) Validate() error {
	if t.Base <= 0 || t.Degraded <= 0 {
		return fmt.Errorf("contention: rates must be positive, got base=%v degraded=%v",
			float64(t.Base), float64(t.Degraded))
	}
	if t.PBad < 0 || t.PBad > 1 || math.IsNaN(t.PBad) {
		return fmt.Errorf("contention: PBad must be in [0,1], got %v", t.PBad)
	}
	return nil
}

// Sample draws a day.
func (t TwoState) Sample(r *RNG) units.ByteRate {
	if r.Float64() < t.PBad {
		return t.Degraded
	}
	return t.Base
}

// Lognormal degrades a base rate by a lognormal contention factor >= 1:
// rate = Base / exp(Sigma * N(0,1) + Mu) clamped so the factor never drops
// below 1 (contention never makes a shared link faster than its quiet
// rate).
type Lognormal struct {
	// Base is the uncontended rate.
	Base units.ByteRate
	// Mu and Sigma parameterize the log of the slowdown factor.
	Mu, Sigma float64
}

// Validate checks the model parameters.
func (l Lognormal) Validate() error {
	if l.Base <= 0 {
		return fmt.Errorf("contention: base rate must be positive, got %v", float64(l.Base))
	}
	if l.Sigma < 0 || math.IsNaN(l.Sigma) || math.IsNaN(l.Mu) {
		return fmt.Errorf("contention: bad lognormal parameters mu=%v sigma=%v", l.Mu, l.Sigma)
	}
	return nil
}

// Sample draws a day.
func (l Lognormal) Sample(r *RNG) units.ByteRate {
	factor := math.Exp(l.Mu + l.Sigma*r.Normal())
	if factor < 1 {
		factor = 1
	}
	return units.ByteRate(float64(l.Base) / factor)
}

// Distribution summarizes Monte Carlo samples.
type Distribution struct {
	sorted []float64
}

// NewDistribution copies and sorts the samples.
func NewDistribution(samples []float64) (*Distribution, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("contention: empty sample set")
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	for _, v := range s {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("contention: NaN sample")
		}
	}
	sort.Float64s(s)
	return &Distribution{sorted: s}, nil
}

// N returns the sample count.
func (d *Distribution) N() int { return len(d.sorted) }

// Min and Max return the extreme samples.
func (d *Distribution) Min() float64 { return d.sorted[0] }

// Max returns the largest sample.
func (d *Distribution) Max() float64 { return d.sorted[len(d.sorted)-1] }

// Mean returns the sample mean.
func (d *Distribution) Mean() float64 {
	sum := 0.0
	for _, v := range d.sorted {
		sum += v
	}
	return sum / float64(len(d.sorted))
}

// Percentile returns the p-quantile (0 <= p <= 100) by nearest-rank with
// linear interpolation.
func (d *Distribution) Percentile(p float64) (float64, error) {
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, fmt.Errorf("contention: percentile must be in [0,100], got %v", p)
	}
	if len(d.sorted) == 1 {
		return d.sorted[0], nil
	}
	pos := p / 100 * float64(len(d.sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.sorted[lo], nil
	}
	frac := pos - float64(lo)
	return d.sorted[lo]*(1-frac) + d.sorted[hi]*frac, nil
}

// TailRatio returns P99/P50 — the "tail at scale" figure of merit for the
// workflow's service responsiveness.
func (d *Distribution) TailRatio() (float64, error) {
	p50, err := d.Percentile(50)
	if err != nil {
		return 0, err
	}
	p99, err := d.Percentile(99)
	if err != nil {
		return 0, err
	}
	if p50 == 0 {
		return 0, fmt.Errorf("contention: zero median")
	}
	return p99 / p50, nil
}

// MonteCarlo draws n days from the sampler and evaluates run(rate) — e.g.
// a simulator invocation returning the day's makespan — collecting the
// results into a distribution. It is the serial-API wrapper over
// MonteCarloEnsemble: one worker, background context, same determinism
// guarantee.
func MonteCarlo(n int, seed uint64, s Sampler, run func(units.ByteRate) (float64, error)) (*Distribution, error) {
	return MonteCarloEnsemble(context.Background(), n, seed, 1, s, run)
}

// MonteCarloEnsemble runs the Monte Carlo on the sweep worker pool: n
// independent day trials fan out across up to workers goroutines
// (sweep.Workers semantics: <= 0 means GOMAXPROCS). Day i's RNG is seeded
// from (seed, i) via sweep.TrialSeed, so the distribution is bit-identical
// at any worker count; cancelling ctx aborts the remaining trials.
func MonteCarloEnsemble(ctx context.Context, n int, seed uint64, workers int, s Sampler, run func(units.ByteRate) (float64, error)) (*Distribution, error) {
	if n <= 0 {
		return nil, fmt.Errorf("contention: need a positive sample count, got %d", n)
	}
	if s == nil || run == nil {
		return nil, fmt.Errorf("contention: nil sampler or run function")
	}
	samples, err := sweep.Map(ctx, n, workers, func(_ context.Context, day int) (float64, error) {
		rng := NewRNG(sweep.TrialSeed(seed, day))
		rate := s.Sample(rng)
		if rate <= 0 {
			return 0, fmt.Errorf("contention: sampler produced non-positive rate %v", float64(rate))
		}
		v, err := run(rate)
		if err != nil {
			return 0, fmt.Errorf("contention: day %d: %w", day, err)
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	return NewDistribution(samples)
}

// MonteCarloEnsembleBatch is MonteCarloEnsemble with chunked evaluation: the
// n day trials are split into contiguous chunks of sweep.ChunkSize(n,
// workers, batch) days and run delivers each chunk's day rates in one call,
// filling one makespan per day — the shape a batch simulator executor
// (sim.Plan.RunBatch) consumes without per-day dispatch overhead.
//
// Day sampling is unchanged: day i's RNG is still seeded from (seed, i) via
// sweep.TrialSeed regardless of chunk geometry, so the distribution is
// bit-identical to MonteCarloEnsemble at any worker count and batch size.
func MonteCarloEnsembleBatch(ctx context.Context, n int, seed uint64, workers, batch int, s Sampler, run func(days []units.ByteRate, out []float64) error) (*Distribution, error) {
	return MonteCarloEnsembleBatchProgress(ctx, n, seed, workers, batch, s, run, nil)
}

// MonteCarloEnsembleBatchProgress is MonteCarloEnsembleBatch plus a
// completion-frontier callback (sweep.MapChunksProgress semantics): progress
// fires with strictly increasing done counts and the stable makespan prefix,
// so a streaming caller can summarize partial distributions while the
// ensemble is still running. The final Distribution is bit-identical to the
// progress-free call.
func MonteCarloEnsembleBatchProgress(ctx context.Context, n int, seed uint64, workers, batch int, s Sampler, run func(days []units.ByteRate, out []float64) error, progress func(done int, makespans []float64)) (*Distribution, error) {
	if n <= 0 {
		return nil, fmt.Errorf("contention: need a positive sample count, got %d", n)
	}
	if s == nil || run == nil {
		return nil, fmt.Errorf("contention: nil sampler or run function")
	}
	samples, err := sweep.MapChunksProgress(ctx, n, workers, batch, func(_ context.Context, lo, hi int, out []float64) error {
		days := make([]units.ByteRate, hi-lo)
		for i := range days {
			rng := NewRNG(sweep.TrialSeed(seed, lo+i))
			rate := s.Sample(rng)
			if rate <= 0 {
				return fmt.Errorf("contention: sampler produced non-positive rate %v", float64(rate))
			}
			days[i] = rate
		}
		if err := run(days, out); err != nil {
			return fmt.Errorf("contention: days [%d,%d): %w", lo, hi, err)
		}
		return nil
	}, progress)
	if err != nil {
		return nil, err
	}
	return NewDistribution(samples)
}
