package contention

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"wroofline/internal/units"
)

// The chunked Monte Carlo must reproduce MonteCarloEnsemble bit for bit at
// any worker count and batch size: day sampling depends only on (seed, day),
// never on chunk geometry.
func TestMonteCarloEnsembleBatchInvariance(t *testing.T) {
	model := Lognormal{Base: 1 * units.GBPS, Mu: 0.3, Sigma: 0.6}
	perDay := func(rate units.ByteRate) (float64, error) {
		return 1e12 / float64(rate), nil
	}
	base, err := MonteCarloEnsemble(context.Background(), 300, 42, 1, model, perDay)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, batch := range []int{1, 7, 300, 1000, 0} { // 0 = auto
			d, err := MonteCarloEnsembleBatch(context.Background(), 300, 42, workers, batch, model,
				func(days []units.ByteRate, out []float64) error {
					for i, rate := range days {
						v, err := perDay(rate)
						if err != nil {
							return err
						}
						out[i] = v
					}
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if d.N() != base.N() || d.Mean() != base.Mean() || d.Min() != base.Min() || d.Max() != base.Max() {
				t.Fatalf("workers=%d batch=%d: distribution differs from per-day ensemble", workers, batch)
			}
			p99a, _ := base.Percentile(99)
			p99b, _ := d.Percentile(99)
			if p99a != p99b {
				t.Fatalf("workers=%d batch=%d: p99 %v != %v", workers, batch, p99b, p99a)
			}
		}
	}
}

func TestMonteCarloEnsembleBatchErrors(t *testing.T) {
	ok := func([]units.ByteRate, []float64) error { return nil }
	model := TwoState{Base: 1, Degraded: 1, PBad: 0}
	if _, err := MonteCarloEnsembleBatch(context.Background(), 0, 1, 1, 1, model, ok); err == nil {
		t.Error("zero samples should fail")
	}
	if _, err := MonteCarloEnsembleBatch(context.Background(), 10, 1, 1, 1, nil, ok); err == nil {
		t.Error("nil sampler should fail")
	}
	if _, err := MonteCarloEnsembleBatch(context.Background(), 10, 1, 1, 1, model, nil); err == nil {
		t.Error("nil run should fail")
	}

	boom := errors.New("boom")
	_, err := MonteCarloEnsembleBatch(context.Background(), 30, 7, 1, 10, model,
		func(days []units.ByteRate, out []float64) error {
			return boom
		})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "contention: days [0,10)") {
		t.Fatalf("err = %v, want the chunk's day range in the message", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MonteCarloEnsembleBatch(ctx, 1000, 1, 2, 10, model, ok); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
