package contention

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"wroofline/internal/units"
)

// The pool-backed Monte Carlo must produce a bit-identical distribution at
// any worker count, and the serial MonteCarlo wrapper must match it.
func TestMonteCarloEnsembleWorkerCountInvariance(t *testing.T) {
	model := Lognormal{Base: 1 * units.GBPS, Mu: 0.3, Sigma: 0.6}
	run := func(rate units.ByteRate) (float64, error) {
		return 1e12 / float64(rate), nil // a 1 TB transfer on the day's rate
	}
	base, err := MonteCarlo(200, 42, model, run)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0), 13} {
		d, err := MonteCarloEnsemble(context.Background(), 200, 42, workers, model, run)
		if err != nil {
			t.Fatal(err)
		}
		if d.N() != base.N() || d.Mean() != base.Mean() || d.Min() != base.Min() || d.Max() != base.Max() {
			t.Fatalf("workers=%d: distribution differs from serial wrapper", workers)
		}
		p99a, _ := base.Percentile(99)
		p99b, _ := d.Percentile(99)
		if p99a != p99b {
			t.Fatalf("workers=%d: p99 %v != %v", workers, p99b, p99a)
		}
	}
}

func TestMonteCarloEnsembleCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MonteCarloEnsemble(ctx, 1000, 1, 2,
		TwoState{Base: 1, Degraded: 1, PBad: 0},
		func(units.ByteRate) (float64, error) { return 1, nil })
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Per-trial seeding must still reproduce the sampler's statistics: a 30%
// bad-day probability shows up as ~30% degraded trials.
func TestMonteCarloEnsembleStatistics(t *testing.T) {
	model := TwoState{Base: 1 * units.GBPS, Degraded: 0.2 * units.GBPS, PBad: 0.3}
	d, err := MonteCarloEnsemble(context.Background(), 5000, 17, 0, model, func(rate units.ByteRate) (float64, error) {
		if rate == model.Degraded {
			return 1, nil
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if frac := d.Mean(); frac < 0.27 || frac > 0.33 {
		t.Errorf("bad-day fraction = %v, want ~0.3", frac)
	}
}
