package contention_test

import (
	"fmt"

	"wroofline/internal/contention"
	"wroofline/internal/units"
)

// Example runs a deterministic Monte Carlo over good/bad days: the makespan
// is volume over the day's rate.
func Example() {
	model := contention.TwoState{
		Base:     1 * units.GBPS,
		Degraded: 0.2 * units.GBPS,
		PBad:     0.3,
	}
	dist, err := contention.MonteCarlo(200, 42, model, func(rate units.ByteRate) (float64, error) {
		return units.TimeToMove(1*units.TB, rate), nil
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	p50, _ := dist.Percentile(50)
	tail, _ := dist.TailRatio()
	fmt.Printf("min %.0f s, median %.0f s, max %.0f s, tail %.1fx\n",
		dist.Min(), p50, dist.Max(), tail)
	// Output:
	// min 1000 s, median 1000 s, max 5000 s, tail 5.0x
}
