// Package figures is the catalog of the paper's rendered figures: every SVG
// the artifact's plot scripts produce, addressable by output file name. It
// is the shared rendering entry point behind cmd/wfplot (which writes the
// whole catalog to disk) and the wfserved /v1/figures/{name} endpoint
// (which renders one figure per request and caches it by content address).
//
// Rendering is deterministic: the same name always yields the same bytes,
// which is what makes the figures cacheable and the golden tests meaningful.
package figures

import (
	"fmt"
	"sort"
	"strings"

	"wroofline/internal/breakdown"
	"wroofline/internal/gantt"
	"wroofline/internal/plot"
	"wroofline/internal/workloads"
)

// Figure is one rendered paper element.
type Figure struct {
	// File is the output name, Paper the figure it reproduces.
	File, Paper string
	// SVG is the rendered document.
	SVG string
}

// entry is one catalog slot: metadata plus a lazy renderer, so consumers
// that need a single figure (the service) don't pay for the whole set.
type entry struct {
	file, paper string
	render      func() (string, error)
}

// catalog lists every figure in the artifact's presentation order.
func catalog() []entry {
	out := []entry{{
		file: "example.svg", paper: "Fig 1",
		render: func() (string, error) {
			m, err := workloads.ExampleModel()
			if err != nil {
				return "", err
			}
			return plot.RooflineSVG(m, nil, plot.Options{})
		},
	}}

	// Fig 2a-2c and Fig 3a-3b: the interpretation panels.
	for _, name := range []string{"Fig 2a", "Fig 2b", "Fig 2c", "Fig 3a", "Fig 3b"} {
		name := name
		out = append(out, entry{
			file: "WRF_" + strings.ReplaceAll(name, " ", "_") + ".svg", paper: name,
			render: func() (string, error) {
				interp, err := workloads.InterpretationFigures()
				if err != nil {
					return "", err
				}
				for _, f := range interp {
					if f.Name != name {
						continue
					}
					return plot.RooflineSVG(f.Model, f.Points, plot.Options{
						ShowZones:       f.ShowZones,
						ShadeBoundClass: f.ShadeBoundClass,
					})
				}
				return "", fmt.Errorf("interpretation panel %q not produced", name)
			},
		})
	}

	out = append(out,
		entry{file: "WRF_LCLS_HSW.svg", paper: "Fig 5a", render: caseRoofline(workloads.LCLSCori, true)},
		entry{file: "WRF_LCLS_HSW_bd.svg", paper: "Fig 5b", render: lclsBreakdown},
		entry{file: "WRF_LCLS_PM.svg", paper: "Fig 6", render: caseRoofline(workloads.LCLSPerlmutter, true)},
		entry{file: "WRF_BGW_64.svg", paper: "Fig 7a",
			render: caseRoofline(func() (*workloads.CaseStudy, error) { return workloads.BGW(64) }, false)},
		entry{file: "WRF_BGW_1024.svg", paper: "Fig 7b",
			render: caseRoofline(func() (*workloads.CaseStudy, error) { return workloads.BGW(1024) }, false)},
		entry{file: "WRF_BGW_task.svg", paper: "Fig 7c", render: bgwTaskView},
		entry{file: "WRF_BGW_gantt.svg", paper: "Fig 7d", render: bgwGantt},
		entry{file: "WRF_COSMO_PM.svg", paper: "Fig 8", render: cosmoSweep},
		entry{file: "WRF_GPTUNE_PM.svg", paper: "Fig 10a",
			render: caseRoofline(func() (*workloads.CaseStudy, error) { return workloads.GPTune(workloads.GPTuneRCI) }, false)},
		entry{file: "WRF_GPTUNE_bd.svg", paper: "Fig 10b", render: gptuneBreakdown},
	)
	return out
}

// caseRoofline renders a case study's roofline with its empirical points.
func caseRoofline(build func() (*workloads.CaseStudy, error), zones bool) func() (string, error) {
	return func() (string, error) {
		cs, err := build()
		if err != nil {
			return "", err
		}
		return plot.RooflineSVG(cs.Model, cs.Points, plot.Options{ShowZones: zones})
	}
}

// lclsBreakdown stacks the good-day and bad-day simulated phase times.
func lclsBreakdown() (string, error) {
	bd := breakdown.New("LCLS time breakdown on Cori-HSW", "loading", "analysis", "merge")
	for _, build := range []func() (*workloads.CaseStudy, error){workloads.LCLSCori, workloads.LCLSCoriBadDay} {
		cs, err := build()
		if err != nil {
			return "", err
		}
		res, err := cs.Simulate()
		if err != nil {
			return "", err
		}
		label := "Good days"
		if cs.Name != "LCLS/Cori-HSW" {
			label = "Bad days"
		}
		if err := bd.Add(label, res.Breakdown()); err != nil {
			return "", err
		}
	}
	return plot.BreakdownSVG(bd, 0, 0)
}

// bgwTaskView renders the per-task roofline of Fig 7c.
func bgwTaskView() (string, error) {
	tv, points, err := workloads.BGWTaskView()
	if err != nil {
		return "", err
	}
	return plot.RooflineSVG(tv, points, plot.Options{})
}

// bgwGantt simulates BGW at 64 nodes and renders the Gantt chart.
func bgwGantt() (string, error) {
	cs, err := workloads.BGW(64)
	if err != nil {
		return "", err
	}
	res, err := cs.Simulate()
	if err != nil {
		return "", err
	}
	path, _, err := cs.Workflow.CriticalPathMeasured()
	if err != nil {
		return "", err
	}
	ch, err := gantt.FromRecorder("BerkeleyGW Gantt (64 nodes)", res.Recorder, path)
	if err != nil {
		return "", err
	}
	return plot.GanttSVG(ch, 0, 0)
}

// cosmoSweep renders the CosmoFlow instance sweep of Fig 8.
func cosmoSweep() (string, error) {
	cosmo, err := workloads.CosmoFlow(12)
	if err != nil {
		return "", err
	}
	sweepPts, err := workloads.CosmoFlowSweep(12)
	if err != nil {
		return "", err
	}
	return plot.RooflineSVG(cosmo.Model, sweepPts, plot.Options{})
}

// gptuneBreakdown stacks the three GPTune execution modes.
func gptuneBreakdown() (string, error) {
	gbd := breakdown.New("GPTune time breakdown",
		"python", "load data", "bash", "application", "model and search")
	for _, mode := range []workloads.GPTuneMode{workloads.GPTuneRCI, workloads.GPTuneSpawn, workloads.GPTuneProjected} {
		stack, err := workloads.GPTuneStack(mode)
		if err != nil {
			return "", err
		}
		if err := gbd.Add(mode.String(), stack); err != nil {
			return "", err
		}
	}
	return plot.BreakdownSVG(gbd, 0, 0)
}

// Names lists the renderable figure files in sorted order.
func Names() []string {
	cat := catalog()
	out := make([]string, 0, len(cat))
	for _, e := range cat {
		out = append(out, e.file)
	}
	sort.Strings(out)
	return out
}

// Render produces the single named figure (e.g. "example.svg").
func Render(name string) (Figure, error) {
	for _, e := range catalog() {
		if e.file != name {
			continue
		}
		svg, err := e.render()
		if err != nil {
			return Figure{}, fmt.Errorf("%s (%s): %w", e.file, e.paper, err)
		}
		return Figure{File: e.file, Paper: e.paper, SVG: svg}, nil
	}
	return Figure{}, fmt.Errorf("figures: unknown figure %q (have %v)", name, Names())
}

// All renders the complete catalog in presentation order — the set the
// artifact's plot_all_figures script produces.
func All() ([]Figure, error) {
	cat := catalog()
	out := make([]Figure, 0, len(cat))
	for _, e := range cat {
		svg, err := e.render()
		if err != nil {
			return nil, fmt.Errorf("%s (%s): %w", e.file, e.paper, err)
		}
		out = append(out, Figure{File: e.file, Paper: e.paper, SVG: svg})
	}
	return out, nil
}
