package loadgen

import (
	"fmt"
	"io"
	"sync/atomic"

	"wroofline/internal/cluster"
	"wroofline/internal/serve"
)

// Multi-target mode drives a replica fleet the way wfgate routes it:
// each generated request is consistent-hashed (rendezvous over the target
// URLs, the same ring the gate uses) to the replica owning its content,
// and the report breaks requests, errors, and cache hits out per target —
// the skew table that shows whether hash routing kept the fleet's caches
// disjoint and its load balanced.

// TargetResult is one target's slice of a multi-target run.
type TargetResult struct {
	// URL is the target base URL, in Options.Targets order.
	URL string
	// Requests counts completed requests routed to this target; Errors the
	// subset that failed in transport or returned a status >= 400.
	Requests uint64
	Errors   uint64
	// Hits counts responses the target answered from its local cache
	// (X-Cache: hit); PeerFills those it filled from a sibling replica
	// (X-Cache: peer).
	Hits      uint64
	PeerFills uint64
	// HitRate is Hits over Requests (0 when no requests landed).
	HitRate float64
}

// targetStats accumulates one target's counters during the run.
type targetStats struct {
	requests  atomic.Uint64
	errors    atomic.Uint64
	hits      atomic.Uint64
	peerFills atomic.Uint64
}

// result snapshots the counters into a TargetResult.
func (st *targetStats) result(url string) *TargetResult {
	res := &TargetResult{
		URL:       url,
		Requests:  st.requests.Load(),
		Errors:    st.errors.Load(),
		Hits:      st.hits.Load(),
		PeerFills: st.peerFills.Load(),
	}
	if res.Requests > 0 {
		res.HitRate = float64(res.Hits) / float64(res.Requests)
	}
	return res
}

// routeKey hashes a generated request to its routing content address. The
// mixes emit byte-identical bodies for recurring specs, so hashing the raw
// request text routes repeats to the same target — the property hit-skew
// measurement needs — without re-running the server's canonicalizer
// client-side.
func routeKey(req request) serve.Key {
	buf := make([]byte, 0, len(req.method)+len(req.path)+len(req.body)+2)
	buf = append(buf, req.method...)
	buf = append(buf, ' ')
	buf = append(buf, req.path...)
	buf = append(buf, 0)
	buf = append(buf, req.body...)
	return serve.ContentKey("route", buf)
}

// newTargetRouter builds the rendezvous ring and per-target counters for a
// multi-target run.
func newTargetRouter(targets []string) (*cluster.Ring, []*targetStats) {
	stats := make([]*targetStats, len(targets))
	for i := range stats {
		stats[i] = &targetStats{}
	}
	return cluster.NewRing(targets), stats
}

// writeTargetTable renders the per-target skew table.
func writeTargetTable(w io.Writer, targets []*TargetResult) {
	fmt.Fprintf(w, "%-36s %10s %8s %10s %8s %7s\n",
		"target", "requests", "errors", "hits", "peer", "hit%")
	for _, res := range targets {
		fmt.Fprintf(w, "%-36s %10d %8d %10d %8d %7.1f\n",
			res.URL, res.Requests, res.Errors, res.Hits, res.PeerFills, 100*res.HitRate)
	}
}
