package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wroofline/internal/cluster"
)

// Options configures a load run.
type Options struct {
	// BaseURL is the wfserved root, e.g. "http://localhost:8080". Exactly
	// one of BaseURL and Targets must be set.
	BaseURL string
	// Targets switches to multi-target mode: each request is consistent-
	// hashed to one of these base URLs (the same rendezvous ring wfgate
	// routes with), and the report gains a per-target request/hit skew
	// table.
	Targets []string
	// Mix is the request blend (see MixByName).
	Mix *Mix
	// Duration is how long to drive load.
	Duration time.Duration
	// Workers is the closed-loop concurrency (default 8). In open-loop mode
	// it instead caps the in-flight requests.
	Workers int
	// RPS switches to open-loop mode: requests fire on a fixed schedule at
	// this aggregate rate regardless of how fast responses return. Zero
	// selects closed-loop mode.
	RPS float64
	// Timeout bounds each request (default 10s).
	Timeout time.Duration
	// Seed makes the request stream reproducible (default 1).
	Seed int64
	// Client overrides the HTTP client (tests inject the in-process
	// transport).
	Client *http.Client
}

// EndpointResult is the per-endpoint (or total) outcome of a run.
type EndpointResult struct {
	// Requests counts completed requests; Errors the subset that failed in
	// transport or returned a status >= 400.
	Requests uint64
	Errors   uint64
	// RPS is the achieved rate: Requests over the run's elapsed time.
	RPS float64
	// P50, P95, and P99 are log-bucket latency estimates (within ~12%);
	// Max is exact.
	P50, P95, P99, Max time.Duration
}

// Report is the outcome of a run: per-endpoint results plus the aggregate.
type Report struct {
	// Mode is "closed" or "open"; Elapsed the measured wall time.
	Mode    string
	Elapsed time.Duration
	// Endpoints maps "model"/"sweep"/"figure" to results; Total aggregates.
	Endpoints map[string]*EndpointResult
	Total     *EndpointResult
	// Targets holds the per-target skew results of a multi-target run, in
	// Options.Targets order; nil for single-target runs.
	Targets []*TargetResult
}

// endpointStats accumulates one endpoint's observations during the run.
type endpointStats struct {
	hist   hist
	errors atomic.Uint64
}

// runner is the shared state of one load run.
type runner struct {
	opts   Options
	client *http.Client
	stats  map[string]*endpointStats
	total  endpointStats
	seq    atomic.Uint64
	// ring and tstats drive multi-target routing; nil in single-target mode.
	ring   *cluster.Ring
	tstats []*targetStats
}

// Run drives the configured load until Duration elapses or ctx is
// cancelled, then reports achieved RPS and latency percentiles.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.Mix == nil {
		return nil, fmt.Errorf("loadgen: nil mix")
	}
	if opts.BaseURL == "" && len(opts.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: need a base URL or a target list")
	}
	if opts.BaseURL != "" && len(opts.Targets) > 0 {
		return nil, fmt.Errorf("loadgen: BaseURL and Targets are mutually exclusive")
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive")
	}
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	r := &runner{
		opts:   opts,
		client: opts.Client,
		stats:  map[string]*endpointStats{},
	}
	if r.client == nil {
		// A dedicated transport sized to the worker count: the shared
		// http.DefaultTransport keeps only 2 idle conns per host, so a
		// worker pool alternating across hosts (multi-target mode
		// especially) would churn TCP connections instead of reusing them.
		r.client = &http.Client{
			Timeout: opts.Timeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: opts.Workers,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	if len(opts.Targets) > 0 {
		r.ring, r.tstats = newTargetRouter(opts.Targets)
	}
	for _, sh := range opts.Mix.shapes {
		if _, ok := r.stats[sh.endpoint]; !ok {
			r.stats[sh.endpoint] = &endpointStats{}
		}
	}

	ctx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()
	start := time.Now()
	if opts.RPS > 0 {
		r.openLoop(ctx)
	} else {
		r.closedLoop(ctx)
	}
	elapsed := time.Since(start)

	mode := "closed"
	if opts.RPS > 0 {
		mode = "open"
	}
	rep := &Report{Mode: mode, Elapsed: elapsed, Endpoints: map[string]*EndpointResult{}}
	for name, st := range r.stats {
		rep.Endpoints[name] = st.result(elapsed)
	}
	rep.Total = r.total.result(elapsed)
	for i, st := range r.tstats {
		rep.Targets = append(rep.Targets, st.result(opts.Targets[i]))
	}
	return rep, nil
}

// closedLoop keeps Workers goroutines saturated: each fires its next
// request the moment the previous response lands, so the achieved RPS is
// the server's capacity at that concurrency.
func (r *runner) closedLoop(ctx context.Context) {
	var wg sync.WaitGroup
	for w := 0; w < r.opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.opts.Seed + int64(w)))
			for ctx.Err() == nil {
				req := r.opts.Mix.pick(rng, r.seq.Add(1)-1)
				r.do(ctx, req, time.Now())
			}
		}(w)
	}
	wg.Wait()
}

// openLoop fires requests on a fixed schedule — the n-th request at
// start + n/RPS — independent of response times. Latency is measured from
// the scheduled fire time, so a stalled server shows up as growing
// latency (no coordinated omission). Workers bounds the in-flight
// requests; when the server falls that far behind, the scheduler skips
// ticks and the shortfall is visible as achieved RPS below the target.
func (r *runner) openLoop(ctx context.Context) {
	interval := time.Duration(float64(time.Second) / r.opts.RPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	inflight := make(chan struct{}, r.opts.Workers)
	rng := rand.New(rand.NewSource(r.opts.Seed))
	var wg sync.WaitGroup
	start := time.Now()
	for n := 0; ; n++ {
		due := start.Add(time.Duration(n) * interval)
		if d := time.Until(due); d > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(d):
			}
		}
		if ctx.Err() != nil {
			break
		}
		req := r.opts.Mix.pick(rng, r.seq.Add(1)-1)
		select {
		case inflight <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(req request, due time.Time) {
			defer wg.Done()
			defer func() { <-inflight }()
			r.do(ctx, req, due)
		}(req, due)
	}
	wg.Wait()
}

// do issues one request and records its latency and disposition. In
// multi-target mode the request first routes through the rendezvous ring
// to the target owning its content address, and that target's skew
// counters record the outcome alongside the endpoint histograms.
func (r *runner) do(ctx context.Context, req request, from time.Time) {
	st := r.stats[req.endpoint]
	base := r.opts.BaseURL
	var ts *targetStats
	if r.ring != nil {
		idx := r.ring.Owner(routeKey(req), nil)
		base = r.opts.Targets[idx]
		ts = r.tstats[idx]
	}
	var body io.Reader
	if req.body != "" {
		body = strings.NewReader(req.body)
	}
	hreq, err := http.NewRequestWithContext(ctx, req.method, base+req.path, body)
	if err != nil {
		st.errors.Add(1)
		r.total.errors.Add(1)
		if ts != nil {
			ts.errors.Add(1)
		}
		return
	}
	if req.body != "" {
		hreq.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.client.Do(hreq)
	failed := err != nil
	xcache := ""
	if err == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		failed = resp.StatusCode >= 400
		xcache = resp.Header.Get("X-Cache")
	}
	if ctx.Err() != nil && err != nil {
		// The run deadline cancelled this request mid-flight; it is not a
		// server error and its truncated latency would skew the tail.
		return
	}
	d := time.Since(from)
	st.hist.record(d)
	r.total.hist.record(d)
	if ts != nil {
		ts.requests.Add(1)
		switch xcache {
		case "hit":
			ts.hits.Add(1)
		case "peer":
			ts.peerFills.Add(1)
		}
	}
	if failed {
		st.errors.Add(1)
		r.total.errors.Add(1)
		if ts != nil {
			ts.errors.Add(1)
		}
	}
}

// result snapshots the stats into an EndpointResult.
func (st *endpointStats) result(elapsed time.Duration) *EndpointResult {
	n := st.hist.count.Load()
	res := &EndpointResult{
		Requests: n,
		Errors:   st.errors.Load(),
		P50:      st.hist.quantile(0.50),
		P95:      st.hist.quantile(0.95),
		P99:      st.hist.quantile(0.99),
		Max:      st.hist.maxLatency(),
	}
	if elapsed > 0 {
		res.RPS = float64(n) / elapsed.Seconds()
	}
	return res
}

// WriteText renders the report as an aligned table, totals last.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "mode=%s elapsed=%s\n", r.Mode, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "%-10s %10s %8s %10s %10s %10s %10s %10s\n",
		"endpoint", "requests", "errors", "rps", "p50", "p95", "p99", "max")
	names := make([]string, 0, len(r.Endpoints))
	for name := range r.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeResultRow(w, name, r.Endpoints[name])
	}
	writeResultRow(w, "total", r.Total)
	if len(r.Targets) > 0 {
		fmt.Fprintln(w)
		writeTargetTable(w, r.Targets)
	}
}

func writeResultRow(w io.Writer, name string, res *EndpointResult) {
	fmt.Fprintf(w, "%-10s %10d %8d %10.1f %10s %10s %10s %10s\n",
		name, res.Requests, res.Errors, res.RPS,
		fmtLatency(res.P50), fmtLatency(res.P95), fmtLatency(res.P99), fmtLatency(res.Max))
}

// fmtLatency renders a duration with millisecond-scale precision.
func fmtLatency(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d.Microseconds()))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
