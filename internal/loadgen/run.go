package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wroofline/internal/cluster"
)

// Options configures a load run.
type Options struct {
	// BaseURL is the wfserved root, e.g. "http://localhost:8080". Exactly
	// one of BaseURL and Targets must be set.
	BaseURL string
	// Targets switches to multi-target mode: each request is consistent-
	// hashed to one of these base URLs (the same rendezvous ring wfgate
	// routes with), and the report gains a per-target request/hit skew
	// table.
	Targets []string
	// Mix is the request blend (see MixByName).
	Mix *Mix
	// Duration is how long to drive load.
	Duration time.Duration
	// Workers is the closed-loop concurrency (default 8). In open-loop mode
	// it instead caps the in-flight requests.
	Workers int
	// RPS switches to open-loop mode: requests fire on a fixed schedule at
	// this aggregate rate regardless of how fast responses return. Zero
	// selects closed-loop mode.
	RPS float64
	// Burst groups open-loop arrivals: every Burst/RPS seconds, Burst
	// requests fire back to back — the same average rate with bursty
	// arrivals, the shape that stresses admission control. Zero or one
	// keeps the evenly paced schedule.
	Burst int
	// Tenant stamps this X-Tenant header on every request, attributing the
	// whole run to one admission-control tenant. Empty leaves the header
	// off (the server buckets such requests under its default tenant).
	Tenant string
	// Tenants switches to multi-tenant mode: each entry drives its own
	// loop concurrently — its own mix, rate, and burst shape, its requests
	// stamped with its name — and the report gains a per-tenant table.
	// This is the fairness probe: a heavy tenant saturating evaluation
	// slots next to a light one shows whether the light tenant's latency
	// is protected. Mutually exclusive with Tenant.
	Tenants []TenantOptions
	// Timeout bounds each request (default 10s).
	Timeout time.Duration
	// Seed makes the request stream reproducible (default 1).
	Seed int64
	// Client overrides the HTTP client (tests inject the in-process
	// transport).
	Client *http.Client
}

// TenantOptions describes one tenant's share of a multi-tenant run. Zero
// fields fall back to the top-level option of the same name.
type TenantOptions struct {
	// Name is the X-Tenant header value; required and unique per run.
	Name string
	// Mix is this tenant's request blend (default: Options.Mix).
	Mix *Mix
	// RPS selects open-loop mode for this tenant at this rate; zero drives
	// it closed-loop.
	RPS float64
	// Burst groups this tenant's open-loop arrivals (see Options.Burst).
	Burst int
	// Workers is this tenant's concurrency or in-flight cap (default:
	// Options.Workers).
	Workers int
}

// EndpointResult is the per-endpoint (or total) outcome of a run.
type EndpointResult struct {
	// Requests counts completed requests; Errors the subset that failed in
	// transport or returned a status >= 400 other than 503; Sheds the 503s
	// — load the server explicitly refused, reported apart from errors
	// because shedding under saturation is the designed behavior.
	Requests uint64
	Errors   uint64
	Sheds    uint64
	// RPS is the achieved rate: Requests over the run's elapsed time.
	RPS float64
	// P50, P95, and P99 are log-bucket latency estimates (within ~12%);
	// Max is exact.
	P50, P95, P99, Max time.Duration
	// TTFB50 and TTFB99 estimate time to first body byte — for streaming
	// responses the time-to-first-result, far ahead of the full-body
	// latency above; for buffered responses the two nearly coincide.
	TTFB50, TTFB99 time.Duration
}

// TenantResult is one tenant's slice of a multi-tenant run.
type TenantResult struct {
	Name                    string
	Requests, Errors, Sheds uint64
	RPS                     float64
	P50, P99, Max           time.Duration
	TTFB50                  time.Duration
}

// Report is the outcome of a run: per-endpoint results plus the aggregate.
type Report struct {
	// Mode is "closed", "open", or "multi" (per-tenant drivers); Elapsed
	// the measured wall time.
	Mode    string
	Elapsed time.Duration
	// Endpoints maps "model"/"sweep"/"figure" to results; Total aggregates.
	Endpoints map[string]*EndpointResult
	Total     *EndpointResult
	// Targets holds the per-target skew results of a multi-target run, in
	// Options.Targets order; nil for single-target runs.
	Targets []*TargetResult
	// Tenants holds the per-tenant results of a multi-tenant run, in
	// Options.Tenants order; nil otherwise.
	Tenants []*TenantResult
}

// endpointStats accumulates one endpoint's (or tenant's) observations
// during the run.
type endpointStats struct {
	hist   hist
	ttfb   hist
	errors atomic.Uint64
	sheds  atomic.Uint64
}

// tenantRun is one tenant's resolved driver configuration plus its stats.
type tenantRun struct {
	name    string
	mix     *Mix
	rps     float64
	burst   int
	workers int
	seed    int64
	stats   endpointStats
}

// runner is the shared state of one load run.
type runner struct {
	opts   Options
	client *http.Client
	stats  map[string]*endpointStats
	total  endpointStats
	seq    atomic.Uint64
	// ring and tstats drive multi-target routing; nil in single-target mode.
	ring   *cluster.Ring
	tstats []*targetStats
}

// Run drives the configured load until Duration elapses or ctx is
// cancelled, then reports achieved RPS and latency percentiles.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.BaseURL == "" && len(opts.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: need a base URL or a target list")
	}
	if opts.BaseURL != "" && len(opts.Targets) > 0 {
		return nil, fmt.Errorf("loadgen: BaseURL and Targets are mutually exclusive")
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive")
	}
	if opts.Tenant != "" && len(opts.Tenants) > 0 {
		return nil, fmt.Errorf("loadgen: Tenant and Tenants are mutually exclusive")
	}
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	runs, err := resolveTenants(opts)
	if err != nil {
		return nil, err
	}
	r := &runner{
		opts:   opts,
		client: opts.Client,
		stats:  map[string]*endpointStats{},
	}
	if r.client == nil {
		// A dedicated transport sized to the worker count: the shared
		// http.DefaultTransport keeps only 2 idle conns per host, so a
		// worker pool alternating across hosts (multi-target mode
		// especially) would churn TCP connections instead of reusing them.
		r.client = &http.Client{
			Timeout: opts.Timeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: opts.Workers,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	if len(opts.Targets) > 0 {
		r.ring, r.tstats = newTargetRouter(opts.Targets)
	}
	for _, t := range runs {
		for _, sh := range t.mix.shapes {
			if _, ok := r.stats[sh.endpoint]; !ok {
				r.stats[sh.endpoint] = &endpointStats{}
			}
		}
	}

	ctx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for _, t := range runs {
		wg.Add(1)
		go func(t *tenantRun) {
			defer wg.Done()
			if t.rps > 0 {
				r.openLoop(ctx, t)
			} else {
				r.closedLoop(ctx, t)
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)

	mode := "closed"
	switch {
	case len(opts.Tenants) > 0:
		mode = "multi"
	case opts.RPS > 0:
		mode = "open"
	}
	rep := &Report{Mode: mode, Elapsed: elapsed, Endpoints: map[string]*EndpointResult{}}
	for name, st := range r.stats {
		rep.Endpoints[name] = st.result(elapsed)
	}
	rep.Total = r.total.result(elapsed)
	for i, st := range r.tstats {
		rep.Targets = append(rep.Targets, st.result(opts.Targets[i]))
	}
	if len(opts.Tenants) > 0 {
		for _, t := range runs {
			res := t.stats.result(elapsed)
			rep.Tenants = append(rep.Tenants, &TenantResult{
				Name: t.name, Requests: res.Requests, Errors: res.Errors,
				Sheds: res.Sheds, RPS: res.RPS, P50: res.P50, P99: res.P99,
				Max: res.Max, TTFB50: res.TTFB50,
			})
		}
	}
	return rep, nil
}

// resolveTenants expands the options into one driver config per tenant —
// or a single anonymous one in single-tenant mode — applying the top-level
// fallbacks. Each tenant's request stream gets a distinct derived seed so
// tenants do not replay each other's cache keys.
func resolveTenants(opts Options) ([]*tenantRun, error) {
	if len(opts.Tenants) == 0 {
		if opts.Mix == nil {
			return nil, fmt.Errorf("loadgen: nil mix")
		}
		return []*tenantRun{{
			name: opts.Tenant, mix: opts.Mix, rps: opts.RPS,
			burst: opts.Burst, workers: opts.Workers, seed: opts.Seed,
		}}, nil
	}
	seen := map[string]bool{}
	runs := make([]*tenantRun, 0, len(opts.Tenants))
	for i, to := range opts.Tenants {
		if to.Name == "" {
			return nil, fmt.Errorf("loadgen: tenant %d has no name", i)
		}
		if seen[to.Name] {
			return nil, fmt.Errorf("loadgen: duplicate tenant %q", to.Name)
		}
		seen[to.Name] = true
		t := &tenantRun{
			name: to.Name, mix: to.Mix, rps: to.RPS, burst: to.Burst,
			workers: to.Workers, seed: opts.Seed + int64(i)*9973,
		}
		if t.mix == nil {
			t.mix = opts.Mix
		}
		if t.mix == nil {
			return nil, fmt.Errorf("loadgen: tenant %q has no mix", to.Name)
		}
		if t.workers <= 0 {
			t.workers = opts.Workers
		}
		if t.burst <= 0 {
			t.burst = opts.Burst
		}
		runs = append(runs, t)
	}
	return runs, nil
}

// closedLoop keeps a tenant's workers saturated: each fires its next
// request the moment the previous response lands, so the achieved RPS is
// the server's capacity at that concurrency.
func (r *runner) closedLoop(ctx context.Context, t *tenantRun) {
	var wg sync.WaitGroup
	for w := 0; w < t.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(t.seed + int64(w)))
			for ctx.Err() == nil {
				req := t.mix.pick(rng, r.seq.Add(1)-1)
				r.do(ctx, t, req, time.Now())
			}
		}(w)
	}
	wg.Wait()
}

// openLoop fires a tenant's requests on a fixed schedule — the n-th burst
// of Burst requests at start + n*Burst/RPS — independent of response
// times. Latency is measured from the scheduled fire time, so a stalled
// server shows up as growing latency (no coordinated omission). Workers
// bounds the in-flight requests; when the server falls that far behind,
// the scheduler skips ticks and the shortfall is visible as achieved RPS
// below the target.
func (r *runner) openLoop(ctx context.Context, t *tenantRun) {
	burst := t.burst
	if burst < 1 {
		burst = 1
	}
	interval := time.Duration(float64(burst) * float64(time.Second) / t.rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	inflight := make(chan struct{}, t.workers)
	rng := rand.New(rand.NewSource(t.seed))
	var wg sync.WaitGroup
	start := time.Now()
	for n := 0; ; n++ {
		due := start.Add(time.Duration(n) * interval)
		if d := time.Until(due); d > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(d):
			}
		}
		if ctx.Err() != nil {
			break
		}
		for b := 0; b < burst && ctx.Err() == nil; b++ {
			req := t.mix.pick(rng, r.seq.Add(1)-1)
			select {
			case inflight <- struct{}{}:
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
			wg.Add(1)
			go func(req request, due time.Time) {
				defer wg.Done()
				defer func() { <-inflight }()
				r.do(ctx, t, req, due)
			}(req, due)
		}
		if ctx.Err() != nil {
			break
		}
	}
	wg.Wait()
}

// do issues one request and records its latency, time to first body byte,
// and disposition. In multi-target mode the request first routes through
// the rendezvous ring to the target owning its content address, and that
// target's skew counters record the outcome alongside the endpoint
// histograms.
func (r *runner) do(ctx context.Context, t *tenantRun, req request, from time.Time) {
	st := r.stats[req.endpoint]
	base := r.opts.BaseURL
	var ts *targetStats
	if r.ring != nil {
		idx := r.ring.Owner(routeKey(req), nil)
		base = r.opts.Targets[idx]
		ts = r.tstats[idx]
	}
	var body io.Reader
	if req.body != "" {
		body = strings.NewReader(req.body)
	}
	hreq, err := http.NewRequestWithContext(ctx, req.method, base+req.path, body)
	if err != nil {
		st.errors.Add(1)
		r.total.errors.Add(1)
		if ts != nil {
			ts.errors.Add(1)
		}
		return
	}
	if req.body != "" {
		hreq.Header.Set("Content-Type", "application/json")
	}
	if req.accept != "" {
		hreq.Header.Set("Accept", req.accept)
	}
	if t.name != "" {
		hreq.Header.Set("X-Tenant", t.name)
	}
	resp, err := r.client.Do(hreq)
	failed, shed := err != nil, false
	xcache := ""
	var ttfb time.Duration
	if err == nil {
		// Time to first body byte, measured from the same origin as full
		// latency: for a streaming response this is the first partial
		// aggregate; headers alone do not count — they arrive before the
		// server has produced any result.
		var fb [1]byte
		if _, ferr := io.ReadFull(resp.Body, fb[:]); ferr == nil {
			ttfb = time.Since(from)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		shed = resp.StatusCode == http.StatusServiceUnavailable
		failed = resp.StatusCode >= 400 && !shed
		xcache = resp.Header.Get("X-Cache")
	}
	if ctx.Err() != nil && err != nil {
		// The run deadline cancelled this request mid-flight; it is not a
		// server error and its truncated latency would skew the tail.
		return
	}
	d := time.Since(from)
	st.hist.record(d)
	r.total.hist.record(d)
	t.stats.hist.record(d)
	if ttfb > 0 {
		st.ttfb.record(ttfb)
		r.total.ttfb.record(ttfb)
		t.stats.ttfb.record(ttfb)
	}
	if ts != nil {
		ts.requests.Add(1)
		switch xcache {
		case "hit":
			ts.hits.Add(1)
		case "peer":
			ts.peerFills.Add(1)
		}
	}
	if shed {
		st.sheds.Add(1)
		r.total.sheds.Add(1)
		t.stats.sheds.Add(1)
	}
	if failed {
		st.errors.Add(1)
		r.total.errors.Add(1)
		t.stats.errors.Add(1)
		if ts != nil {
			ts.errors.Add(1)
		}
	}
}

// result snapshots the stats into an EndpointResult.
func (st *endpointStats) result(elapsed time.Duration) *EndpointResult {
	n := st.hist.count.Load()
	res := &EndpointResult{
		Requests: n,
		Errors:   st.errors.Load(),
		Sheds:    st.sheds.Load(),
		P50:      st.hist.quantile(0.50),
		P95:      st.hist.quantile(0.95),
		P99:      st.hist.quantile(0.99),
		Max:      st.hist.maxLatency(),
		TTFB50:   st.ttfb.quantile(0.50),
		TTFB99:   st.ttfb.quantile(0.99),
	}
	if elapsed > 0 {
		res.RPS = float64(n) / elapsed.Seconds()
	}
	return res
}

// WriteText renders the report as an aligned table, totals last.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "mode=%s elapsed=%s\n", r.Mode, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "%-10s %10s %8s %10s %10s %10s %10s %10s %10s %8s\n",
		"endpoint", "requests", "errors", "rps", "p50", "p95", "p99", "max", "ttfb50", "sheds")
	names := make([]string, 0, len(r.Endpoints))
	for name := range r.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeResultRow(w, name, r.Endpoints[name])
	}
	writeResultRow(w, "total", r.Total)
	if len(r.Targets) > 0 {
		fmt.Fprintln(w)
		writeTargetTable(w, r.Targets)
	}
	if len(r.Tenants) > 0 {
		fmt.Fprintln(w)
		writeTenantTable(w, r.Tenants)
	}
}

func writeResultRow(w io.Writer, name string, res *EndpointResult) {
	fmt.Fprintf(w, "%-10s %10d %8d %10.1f %10s %10s %10s %10s %10s %8d\n",
		name, res.Requests, res.Errors, res.RPS,
		fmtLatency(res.P50), fmtLatency(res.P95), fmtLatency(res.P99), fmtLatency(res.Max),
		fmtLatency(res.TTFB50), res.Sheds)
}

// writeTenantTable renders the per-tenant fairness view of a multi-tenant
// run: each tenant's achieved rate, sheds, and tail latency side by side.
func writeTenantTable(w io.Writer, tenants []*TenantResult) {
	fmt.Fprintf(w, "%-10s %10s %8s %8s %10s %10s %10s %10s %10s\n",
		"tenant", "requests", "errors", "sheds", "rps", "p50", "p99", "max", "ttfb50")
	for _, t := range tenants {
		fmt.Fprintf(w, "%-10s %10d %8d %8d %10.1f %10s %10s %10s %10s\n",
			t.Name, t.Requests, t.Errors, t.Sheds, t.RPS,
			fmtLatency(t.P50), fmtLatency(t.P99), fmtLatency(t.Max), fmtLatency(t.TTFB50))
	}
}

// fmtLatency renders a duration with millisecond-scale precision.
func fmtLatency(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d.Microseconds()))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
