package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestMixStreamShapes checks the streaming and fairness mixes are
// well-formed: the stream mix carries NDJSON Accept headers on its sweep
// shapes, and the heavy/light pair differ in evaluation weight.
func TestMixStreamShapes(t *testing.T) {
	stream, err := MixByName("stream")
	if err != nil {
		t.Fatal(err)
	}
	ndjsonShapes := 0
	for _, sh := range stream.shapes {
		if sh.weight <= 0 || sh.endpoint == "" || !strings.HasPrefix(sh.path, "/v1/") {
			t.Errorf("stream: malformed shape %+v", sh)
		}
		if sh.accept == "application/x-ndjson" {
			ndjsonShapes++
		}
	}
	if ndjsonShapes < 2 {
		t.Errorf("stream mix has %d NDJSON shapes, want >= 2 (fixed + varying sweeps)", ndjsonShapes)
	}

	for _, name := range []string{"eval-heavy", "eval-light"} {
		m, err := MixByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range m.shapes {
			if sh.weight <= 0 || sh.endpoint == "" {
				t.Errorf("%s: malformed shape %+v", name, sh)
			}
		}
	}
	heavy, _ := MixByName("eval-heavy")
	sweepWeight := func(m *Mix) int {
		w := 0
		for _, sh := range m.shapes {
			if sh.endpoint == "sweep" {
				w += sh.weight
			}
		}
		return w
	}
	light, _ := MixByName("eval-light")
	if sweepWeight(heavy) <= sweepWeight(light) {
		t.Errorf("eval-heavy sweep weight %d <= eval-light's %d; the fairness probe needs contrast",
			sweepWeight(heavy), sweepWeight(light))
	}
}

// TestRunMultiTenant drives two tenants concurrently against an in-process
// server and checks the per-tenant accounting: both appear in the report
// in option order, with throughput, and with a TTFB estimate that never
// exceeds the full-body latency.
func TestRunMultiTenant(t *testing.T) {
	srv := newTestServer(t)
	heavy, _ := MixByName("hit-heavy")
	light, _ := MixByName("hit-heavy")
	rep, err := Run(context.Background(), Options{
		BaseURL:  srv.URL,
		Duration: 400 * time.Millisecond,
		Workers:  2,
		Client:   srv.Client(),
		Tenants: []TenantOptions{
			{Name: "heavy", Mix: heavy, Workers: 4},
			{Name: "light", Mix: light, RPS: 50},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "multi" {
		t.Errorf("mode = %q, want multi", rep.Mode)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("report has %d tenants, want 2", len(rep.Tenants))
	}
	if rep.Tenants[0].Name != "heavy" || rep.Tenants[1].Name != "light" {
		t.Errorf("tenant order = %q, %q; want options order", rep.Tenants[0].Name, rep.Tenants[1].Name)
	}
	var sum uint64
	for _, tn := range rep.Tenants {
		if tn.Requests == 0 {
			t.Errorf("tenant %s completed no requests", tn.Name)
		}
		if tn.Errors != 0 {
			t.Errorf("tenant %s: %d errors on hit-heavy mix", tn.Name, tn.Errors)
		}
		if tn.TTFB50 <= 0 {
			t.Errorf("tenant %s: no TTFB recorded", tn.Name)
		}
		// Log buckets carry ~12% resolution; TTFB cannot meaningfully
		// exceed the full-body latency beyond that.
		if tn.TTFB50 > tn.P50+tn.P50/4 {
			t.Errorf("tenant %s: ttfb50 %v exceeds p50 %v", tn.Name, tn.TTFB50, tn.P50)
		}
		sum += tn.Requests
	}
	if sum != rep.Total.Requests {
		t.Errorf("tenant requests sum to %d, total says %d", sum, rep.Total.Requests)
	}
}

// TestRunTenantValidation pins the multi-tenant error paths.
func TestRunTenantValidation(t *testing.T) {
	mix, _ := MixByName("hit-heavy")
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"unnamed tenant", Options{BaseURL: "http://x", Duration: time.Second,
			Tenants: []TenantOptions{{Mix: mix}}}},
		{"duplicate tenant", Options{BaseURL: "http://x", Duration: time.Second,
			Tenants: []TenantOptions{{Name: "a", Mix: mix}, {Name: "a", Mix: mix}}}},
		{"tenant without mix", Options{BaseURL: "http://x", Duration: time.Second,
			Tenants: []TenantOptions{{Name: "a"}}}},
		{"tenant and tenants", Options{BaseURL: "http://x", Duration: time.Second, Mix: mix,
			Tenant: "solo", Tenants: []TenantOptions{{Name: "a", Mix: mix}}}},
	} {
		if _, err := Run(context.Background(), tc.opts); err == nil {
			t.Errorf("%s: Run did not fail", tc.name)
		}
	}
}

// TestRunStreamTTFB checks the headline measurement: against the stream
// mix, whose sweeps negotiate NDJSON delivery, the recorded TTFB is a
// small fraction of the full-body latency on the sweep endpoint.
func TestRunStreamTTFB(t *testing.T) {
	srv := newTestServer(t)
	mix, _ := MixByName("stream")
	rep, err := Run(context.Background(), Options{
		BaseURL:  srv.URL,
		Mix:      mix,
		Duration: 600 * time.Millisecond,
		Workers:  4,
		Client:   srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sweep := rep.Endpoints["sweep"]
	if sweep == nil || sweep.Requests == 0 {
		t.Fatal("stream mix drove no sweep requests")
	}
	if sweep.TTFB50 <= 0 {
		t.Fatal("no TTFB recorded for streamed sweeps")
	}
	if sweep.TTFB50 > sweep.P50 {
		t.Errorf("ttfb50 %v > p50 %v for streamed sweeps; first byte should lead the body",
			sweep.TTFB50, sweep.P50)
	}
}

// TestWriteTextTenantTable checks the rendered report includes the new
// ttfb and shed columns plus the per-tenant table.
func TestWriteTextTenantTable(t *testing.T) {
	rep := &Report{
		Mode:    "multi",
		Elapsed: time.Second,
		Endpoints: map[string]*EndpointResult{
			"sweep": {Requests: 50, RPS: 50, P50: 10 * time.Millisecond,
				P95: 20 * time.Millisecond, P99: 30 * time.Millisecond,
				Max: 40 * time.Millisecond, TTFB50: time.Millisecond, Sheds: 3},
		},
		Total: &EndpointResult{Requests: 50, RPS: 50, P50: 10 * time.Millisecond,
			P95: 20 * time.Millisecond, P99: 30 * time.Millisecond,
			Max: 40 * time.Millisecond, TTFB50: time.Millisecond, Sheds: 3},
		Tenants: []*TenantResult{
			{Name: "heavy", Requests: 30, Sheds: 3, RPS: 30, P50: 15 * time.Millisecond,
				P99: 30 * time.Millisecond, Max: 40 * time.Millisecond, TTFB50: time.Millisecond},
			{Name: "light", Requests: 20, RPS: 20, P50: 5 * time.Millisecond,
				P99: 8 * time.Millisecond, Max: 9 * time.Millisecond, TTFB50: time.Millisecond},
		},
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"mode=multi", "ttfb50", "sheds", "tenant", "heavy", "light"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
