package loadgen

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"wroofline/internal/serve"
)

// TestBucketRoundTrip checks that every microsecond value lands in a bucket
// whose bounds contain it, within the ~12% log-bucket resolution.
func TestBucketRoundTrip(t *testing.T) {
	prop := func(us uint64) bool {
		us %= 1 << 40 // cap at ~12 days; beyond that the top bucket clamps
		i := bucketIndex(us)
		upper := bucketUpperUS(i)
		if us > upper {
			return false
		}
		if i > 0 && bucketUpperUS(i-1) >= us {
			return false // value also fits the previous bucket: bounds overlap
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	// Buckets are exact below histSubCount.
	for us := uint64(0); us < histSubCount; us++ {
		if got := bucketUpperUS(bucketIndex(us)); got != us {
			t.Errorf("bucket for %dµs has upper %dµs, want exact", us, got)
		}
	}
}

// TestHistQuantiles records a known two-mode distribution and checks the
// quantile estimates land in the right modes, orders hold, and max is
// exact.
func TestHistQuantiles(t *testing.T) {
	var h hist
	for i := 0; i < 90; i++ {
		h.record(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.record(50 * time.Millisecond)
	}
	p50, p95, p99 := h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not ordered: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p50 < 900*time.Microsecond || p50 > 1200*time.Microsecond {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	if p99 < 45*time.Millisecond || p99 > 50*time.Millisecond {
		t.Errorf("p99 = %v, want ~50ms (clamped to max)", p99)
	}
	if got := h.maxLatency(); got != 50*time.Millisecond {
		t.Errorf("max = %v, want exactly 50ms", got)
	}
}

// TestHistConcurrentRecord hammers one histogram from many goroutines;
// under -race this is the lock-free proof, and the mass must balance.
func TestHistConcurrentRecord(t *testing.T) {
	var h hist
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.record(time.Duration(1+i%1000) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.count.Load(); got != goroutines*perG {
		t.Errorf("count = %d, want %d", got, goroutines*perG)
	}
	var mass uint64
	for i := range h.buckets {
		mass += h.buckets[i].Load()
	}
	if mass != goroutines*perG {
		t.Errorf("bucket mass = %d, want %d", mass, goroutines*perG)
	}
}

// TestMixScenarios checks the built-in mixes produce well-formed requests
// and that the miss-heavy and corpus mixes actually vary bodies with the
// sequence.
func TestMixScenarios(t *testing.T) {
	for _, name := range []string{"hit-heavy", "miss-heavy", "corpus", "stream", "seed-vary", "eval-heavy", "eval-light"} {
		m, err := MixByName(name)
		if err != nil {
			t.Fatalf("MixByName(%q): %v", name, err)
		}
		for _, sh := range m.shapes {
			if sh.weight <= 0 || sh.endpoint == "" || sh.method == "" || !strings.HasPrefix(sh.path, "/v1/") {
				t.Errorf("%s: malformed shape %+v", name, sh)
			}
			if sh.method == "POST" && sh.body == nil {
				t.Errorf("%s: POST shape %s has no body", name, sh.path)
			}
		}
	}
	if _, err := MixByName("nope"); err == nil {
		t.Error("MixByName(nope) did not fail")
	}

	miss, _ := MixByName("miss-heavy")
	varying := 0
	for _, sh := range miss.shapes {
		if sh.body != nil && sh.body(1) != sh.body(2) {
			varying++
		}
	}
	if varying < 2 {
		t.Errorf("miss-heavy has %d sequence-varying shapes, want >= 2", varying)
	}

	corpus, _ := MixByName("corpus")
	varying = 0
	for _, sh := range corpus.shapes {
		if sh.body != nil && sh.body(1) != sh.body(2) {
			varying++
		}
	}
	if varying < 1 {
		t.Error("corpus mix has no sequence-varying shapes")
	}

	// Every seed-vary shape varies per request: the mix's contract is 0%
	// response-cache hits, so a fixed body anywhere would dilute the probe.
	seedVary, _ := MixByName("seed-vary")
	for _, sh := range seedVary.shapes {
		if sh.body == nil || sh.body(1) == sh.body(2) {
			t.Errorf("seed-vary shape %s does not vary per request", sh.path)
		}
	}
}

// TestSeedVaryMixPlanCache drives the seed-vary mix against an in-process
// server and checks the contract it advertises: response-cache hits stay at
// zero (every seed is a fresh content address) while the plan cache serves
// the construction work (CV==0 corpus scenarios and the fixed Monte Carlo
// case are seed-invariant below the response layer).
func TestSeedVaryMixPlanCache(t *testing.T) {
	s := serve.New(serve.Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	mix, err := MixByName("seed-vary")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Options{
		BaseURL: srv.URL, Mix: mix, Workers: 2, Duration: 600 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Requests == 0 {
		t.Fatal("seed-vary run issued no requests")
	}
	if res.Total.Errors != 0 {
		t.Fatalf("seed-vary run: %d errors", res.Total.Errors)
	}
	snap := s.MetricsSnapshot()
	if snap.Cache.Hits != 0 {
		t.Errorf("seed-vary run produced %d response-cache hits, want 0", snap.Cache.Hits)
	}
	st, enabled := s.PlanCacheStats()
	if !enabled {
		t.Fatal("plan cache disabled on default config")
	}
	if st.Hits == 0 {
		t.Errorf("seed-vary run produced no plan-cache hits: %+v", st)
	}
}

// newTestServer starts an in-process wfserved handler over real HTTP.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(serve.New(serve.Config{}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestRunClosedLoop drives the hit-heavy mix closed-loop against an
// in-process server and checks the report: non-zero RPS, ordered
// percentiles, zero errors, and endpoint results that sum to the total.
func TestRunClosedLoop(t *testing.T) {
	srv := newTestServer(t)
	mix, _ := MixByName("hit-heavy")
	rep, err := Run(context.Background(), Options{
		BaseURL:  srv.URL,
		Mix:      mix,
		Duration: 400 * time.Millisecond,
		Workers:  4,
		Client:   srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "closed" {
		t.Errorf("mode = %q, want closed", rep.Mode)
	}
	if rep.Total.Requests == 0 || rep.Total.RPS <= 0 {
		t.Fatalf("no throughput: %+v", rep.Total)
	}
	if rep.Total.Errors != 0 {
		t.Errorf("%d errors on hit-heavy mix", rep.Total.Errors)
	}
	if !(rep.Total.P50 <= rep.Total.P95 && rep.Total.P95 <= rep.Total.P99 && rep.Total.P99 <= rep.Total.Max) {
		t.Errorf("percentiles not ordered: %+v", rep.Total)
	}
	var sum uint64
	for _, res := range rep.Endpoints {
		sum += res.Requests
	}
	if sum != rep.Total.Requests {
		t.Errorf("endpoint requests sum to %d, total says %d", sum, rep.Total.Requests)
	}
}

// TestRunOpenLoop checks the fixed-RPS driver paces to roughly the target
// rate against a fast in-process server.
func TestRunOpenLoop(t *testing.T) {
	srv := newTestServer(t)
	mix, _ := MixByName("hit-heavy")
	rep, err := Run(context.Background(), Options{
		BaseURL:  srv.URL,
		Mix:      mix,
		Duration: 500 * time.Millisecond,
		Workers:  16,
		RPS:      200,
		Client:   srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Errorf("mode = %q, want open", rep.Mode)
	}
	// ~100 requests scheduled; allow wide slack for CI jitter but require
	// the pacer neither stalled nor ran free.
	if rep.Total.Requests < 40 || rep.Total.Requests > 160 {
		t.Errorf("open loop at 200 RPS for 500ms completed %d requests, want ~100", rep.Total.Requests)
	}
}

// TestRunOptionValidation pins the error paths.
func TestRunOptionValidation(t *testing.T) {
	mix, _ := MixByName("hit-heavy")
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"nil mix", Options{BaseURL: "http://x", Duration: time.Second}},
		{"no url", Options{Mix: mix, Duration: time.Second}},
		{"no duration", Options{Mix: mix, BaseURL: "http://x"}},
	} {
		if _, err := Run(context.Background(), tc.opts); err == nil {
			t.Errorf("%s: Run did not fail", tc.name)
		}
	}
}

// TestReportWriteText smoke-checks the rendered table.
func TestReportWriteText(t *testing.T) {
	rep := &Report{
		Mode:    "closed",
		Elapsed: time.Second,
		Endpoints: map[string]*EndpointResult{
			"model": {Requests: 100, RPS: 100, P50: time.Millisecond, P95: 2 * time.Millisecond,
				P99: 3 * time.Millisecond, Max: 4 * time.Millisecond},
		},
		Total: &EndpointResult{Requests: 100, RPS: 100, P50: time.Millisecond,
			P95: 2 * time.Millisecond, P99: 3 * time.Millisecond, Max: 4 * time.Millisecond},
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"mode=closed", "endpoint", "model", "total", "p99", "100.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
