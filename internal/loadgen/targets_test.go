package loadgen

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wroofline/internal/serve"
)

// TestRouteKeyDeterministic pins the routing invariant multi-target mode
// rests on: identical requests always produce identical routing keys, and
// distinct requests (path or body) diverge.
func TestRouteKeyDeterministic(t *testing.T) {
	a := request{endpoint: "model", method: "POST", path: "/v1/model", body: `{"case":"example"}`}
	if routeKey(a) != routeKey(a) {
		t.Error("identical requests produced different routing keys")
	}
	b := a
	b.body = `{"case":"lcls-cori"}`
	if routeKey(a) == routeKey(b) {
		t.Error("different bodies share a routing key")
	}
	c := a
	c.path = "/v1/sweep"
	if routeKey(a) == routeKey(c) {
		t.Error("different paths share a routing key")
	}
}

// TestRunMultiTarget drives the hit-heavy mix against three in-process
// replicas with client-side hash routing and checks the skew table: every
// request lands somewhere, per-target counts sum to the total, repeats hit
// the owner's cache, and the same key never lands on two targets.
func TestRunMultiTarget(t *testing.T) {
	servers := make([]*serve.Server, 3)
	urls := make([]string, 3)
	for i := range servers {
		servers[i] = serve.New(serve.Config{})
		ts := httptest.NewServer(servers[i].Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	mix, _ := MixByName("hit-heavy")
	rep, err := Run(context.Background(), Options{
		Targets:  urls,
		Mix:      mix,
		Duration: 400 * time.Millisecond,
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Targets) != 3 {
		t.Fatalf("report has %d targets, want 3", len(rep.Targets))
	}
	var sum, hits uint64
	for i, res := range rep.Targets {
		if res.URL != urls[i] {
			t.Errorf("target %d URL = %q, want %q (order must match Options.Targets)", i, res.URL, urls[i])
		}
		if res.Errors != 0 {
			t.Errorf("target %s: %d errors on hit-heavy mix", res.URL, res.Errors)
		}
		sum += res.Requests
		hits += res.Hits
	}
	if sum != rep.Total.Requests {
		t.Errorf("per-target requests sum to %d, total says %d", sum, rep.Total.Requests)
	}
	if rep.Total.Requests == 0 {
		t.Fatal("no throughput")
	}
	// The hit-heavy working set is small and fixed: after each target's one
	// warm pass everything is a local hit, so the fleet hit count dwarfs
	// the working-set size.
	if hits < rep.Total.Requests/2 {
		t.Errorf("fleet hits = %d of %d requests; hash routing is not concentrating repeats", hits, rep.Total.Requests)
	}

	// Hash partitioning: each replica evaluated only its own keys, so the
	// fleet-wide evaluation count equals the number of distinct specs, not
	// specs x replicas. hit-heavy has a handful of fixed shapes; allow the
	// figure route (not cached per spec? it is) — simply require the sum of
	// evaluations to be well below one warm pass per replica.
	var evals uint64
	for _, s := range servers {
		evals += s.Evaluations()
	}
	if evals == 0 || evals > 16 {
		t.Errorf("fleet evaluations = %d, want one per distinct spec (a handful)", evals)
	}
}

// TestRunTargetOptionValidation pins the mutual-exclusion rule.
func TestRunTargetOptionValidation(t *testing.T) {
	mix, _ := MixByName("hit-heavy")
	if _, err := Run(context.Background(), Options{
		BaseURL: "http://x", Targets: []string{"http://y"}, Mix: mix, Duration: time.Second,
	}); err == nil {
		t.Error("BaseURL+Targets accepted together")
	}
}

// TestReportWriteTextTargets checks the skew table renders.
func TestReportWriteTextTargets(t *testing.T) {
	rep := &Report{
		Mode:      "closed",
		Elapsed:   time.Second,
		Endpoints: map[string]*EndpointResult{},
		Total:     &EndpointResult{Requests: 10, RPS: 10},
		Targets: []*TargetResult{
			{URL: "http://a:8080", Requests: 6, Hits: 3, PeerFills: 1, HitRate: 0.5},
			{URL: "http://b:8080", Requests: 4, Hits: 4, HitRate: 1},
		},
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"target", "hit%", "http://a:8080", "http://b:8080", "50.0", "100.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("target table missing %q:\n%s", want, out)
		}
	}
}
