package loadgen

import (
	"fmt"
	"math/rand"
)

// A request is one materialized call the driver will issue.
type request struct {
	endpoint string // stats group: "model", "sweep", or "figure"
	method   string
	path     string
	body     string // empty for GETs
	accept   string // Accept header; non-empty selects a streaming response
}

// A shape is a weighted request template. Fixed-body shapes replay the same
// bytes every time (after the first evaluation they are cache hits);
// varying shapes derive the body from a global sequence number, so every
// request carries a fresh cache key (a miss until the key recurs).
type shape struct {
	endpoint string
	method   string
	path     string
	weight   int
	body     func(seq uint64) string // nil for bodyless requests
	accept   string                  // Accept header; "" sends none
}

// A Mix is a weighted blend of request shapes over the service's three
// endpoints. Pick is deterministic given the rng and sequence counter, so a
// seeded run replays the same request stream.
type Mix struct {
	// Name is the scenario name ("hit-heavy", "miss-heavy").
	Name   string
	shapes []shape
	total  int
}

// pick draws one request: a weighted shape choice from rng, then the body
// materialized from the sequence number.
func (m *Mix) pick(rng *rand.Rand, seq uint64) request {
	n := rng.Intn(m.total)
	for i := range m.shapes {
		sh := &m.shapes[i]
		if n -= sh.weight; n < 0 {
			r := request{endpoint: sh.endpoint, method: sh.method, path: sh.path}
			if sh.body != nil {
				r.body = sh.body(seq)
			}
			r.accept = sh.accept
			return r
		}
	}
	panic("loadgen: weights exhausted") // unreachable: total = sum(weights)
}

// fixedBody adapts a constant payload to the shape body signature.
func fixedBody(s string) func(uint64) string {
	return func(uint64) string { return s }
}

// sweepSpec is the small Monte Carlo study both scenarios use; seed 7 for
// the fixed (cacheable) variant, per-request seeds for the miss variant.
const sweepSpec = `{"kind":"montecarlo","case":"lcls-cori","trials":16,"seed":%d,` +
	`"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`

// corpusSweepSpec is a small generated-scenario corpus on the NUMA machine;
// the seed slot plays the same fixed-vs-varying role as in sweepSpec.
const corpusSweepSpec = `{"kind":"corpus","machine":"perlmutter-numa","count":20,"seed":%d,` +
	`"template":{"width":5,"depth":3,"cv":0.4,"payload":"512 MB"}}`

// streamSweepSpec is a mid-size Monte Carlo ensemble for streaming runs —
// enough trials that partial aggregates arrive well before the final line,
// so time-to-first-byte and full latency separate measurably.
const streamSweepSpec = `{"kind":"montecarlo","case":"lcls-cori","trials":512,"seed":%d,` +
	`"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`

// heavySweepSpec is the saturating tenant's request: a fresh kilotrials
// ensemble on nearly every call, built to hold evaluation slots.
const heavySweepSpec = `{"kind":"montecarlo","case":"lcls-cori","trials":2048,"seed":%d,` +
	`"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`

// seedVarySweepSpec is a CV==0 corpus whose only varying field is the
// request seed. The response cache keys on the full spec, so every request
// is a response-cache miss; the plan cache normalizes the scenario seed away
// when CV==0, so after the first request every evaluation is served from
// cached scenarios. The mix isolates the second-level cache's win.
const seedVarySweepSpec = `{"kind":"corpus","machine":"perlmutter-numa","count":30,"seed":%d,` +
	`"template":{"width":5,"depth":3,"payload":"512 MB"}}`

// seedVaryMCSpec re-seeds a fixed-case Monte Carlo ensemble: fresh response
// key per request, but the compiled case plan comes from the plan cache on
// every evaluation after the first.
const seedVaryMCSpec = `{"kind":"montecarlo","case":"lcls-cori","trials":64,"seed":%d,` +
	`"sampler":{"model":"twostate","base":"1 GB/s","degraded":"0.2 GB/s","p_bad":0.4}}`

// ndjson is the Accept value that negotiates a streaming response.
const ndjson = "application/x-ndjson"

// MixByName returns a built-in scenario.
//
// "hit-heavy" models a dashboard fleet re-requesting a small working set:
// every body comes from a fixed pool, so after one warm pass the server
// answers from cache and the run measures the hit path.
//
// "miss-heavy" models exploratory analysis: most requests vary a spec field
// (curve_samples for models, the ensemble seed for sweeps) through the
// sequence counter, so nearly every request is a fresh cache key and the
// run measures evaluation plus eviction pressure.
//
// "corpus" models a scenario-generation campaign: generated gen-* case
// models plus corpus sweeps, mostly re-seeded per request so the server
// spends its time generating and simulating fresh DAG ensembles, with a
// fixed corpus replayed often enough to keep the hit path honest.
//
// "stream" models dashboards watching live ensemble progress: mid-size
// Monte Carlo sweeps requested with Accept: application/x-ndjson, mostly
// re-seeded so the server streams fresh evaluations; its TTFB columns show
// time-to-first-result, far ahead of the full-sweep latency.
//
// "seed-vary" models parameter-scan clients that re-seed an otherwise
// identical study on every request: ~0% response-cache hits (each seed is a
// fresh content address) but ~100% plan-cache hits (the CV==0 corpus
// template and the fixed Monte Carlo case are seed-invariant at the
// construction layer). Against -plan-cache-entries 0 the same run shows
// what the second-level cache saves.
//
// "eval-heavy" and "eval-light" are the two halves of a fairness probe
// (-tenants): the heavy mix holds evaluation slots with fresh kilotrials
// ensembles, the light one issues small mostly-cached requests whose tail
// latency shows whether weighted-fair admission protects it.
func MixByName(name string) (*Mix, error) {
	switch name {
	case "hit-heavy":
		return Mix{Name: name, shapes: []shape{
			{"model", "POST", "/v1/model", 40, fixedBody(`{"case":"example"}`), ""},
			{"model", "POST", "/v1/model", 15, fixedBody(`{"case":"lcls-cori"}`), ""},
			{"model", "POST", "/v1/model", 15, fixedBody(`{"case":"bgw-64"}`), ""},
			{"model", "POST", "/v1/model", 10, func(seq uint64) string {
				return fmt.Sprintf(`{"case":"example","curve_samples":%d}`, 32<<(seq%3))
			}, ""},
			{"sweep", "POST", "/v1/sweep", 10, fixedBody(fmt.Sprintf(sweepSpec, 7)), ""},
			{"figure", "GET", "/v1/figures/example.svg", 10, nil, ""},
		}}.normalize(), nil
	case "miss-heavy":
		return Mix{Name: name, shapes: []shape{
			{"model", "POST", "/v1/model", 45, func(seq uint64) string {
				return fmt.Sprintf(`{"case":"example","curve_samples":%d}`, 64+seq%8192)
			}, ""},
			{"sweep", "POST", "/v1/sweep", 35, func(seq uint64) string {
				return fmt.Sprintf(sweepSpec, seq)
			}, ""},
			{"model", "POST", "/v1/model", 10, fixedBody(`{"case":"example"}`), ""},
			{"figure", "GET", "/v1/figures/example.svg", 10, nil, ""},
		}}.normalize(), nil
	case "corpus":
		return Mix{Name: name, shapes: []shape{
			{"sweep", "POST", "/v1/sweep", 35, func(seq uint64) string {
				return fmt.Sprintf(corpusSweepSpec, seq)
			}, ""},
			{"sweep", "POST", "/v1/sweep", 15, fixedBody(fmt.Sprintf(corpusSweepSpec, 11)), ""},
			{"model", "POST", "/v1/model", 20, fixedBody(`{"case":"gen-montage"}`), ""},
			{"model", "POST", "/v1/model", 15, fixedBody(`{"case":"gen-epigenomics"}`), ""},
			{"model", "POST", "/v1/model", 10, fixedBody(`{"case":"gen-chain"}`), ""},
			{"figure", "GET", "/v1/figures/example.svg", 5, nil, ""},
		}}.normalize(), nil
	case "stream":
		return Mix{Name: name, shapes: []shape{
			{"sweep", "POST", "/v1/sweep", 60, func(seq uint64) string {
				return fmt.Sprintf(streamSweepSpec, seq)
			}, ndjson},
			{"sweep", "POST", "/v1/sweep", 25, fixedBody(fmt.Sprintf(streamSweepSpec, 7)), ndjson},
			{"model", "POST", "/v1/model", 15, fixedBody(`{"case":"example"}`), ""},
		}}.normalize(), nil
	case "seed-vary":
		return Mix{Name: name, shapes: []shape{
			{"sweep", "POST", "/v1/sweep", 70, func(seq uint64) string {
				return fmt.Sprintf(seedVarySweepSpec, seq)
			}, ""},
			{"sweep", "POST", "/v1/sweep", 30, func(seq uint64) string {
				return fmt.Sprintf(seedVaryMCSpec, seq)
			}, ""},
		}}.normalize(), nil
	case "eval-heavy":
		return Mix{Name: name, shapes: []shape{
			{"sweep", "POST", "/v1/sweep", 90, func(seq uint64) string {
				return fmt.Sprintf(heavySweepSpec, seq)
			}, ""},
			{"sweep", "POST", "/v1/sweep", 10, fixedBody(fmt.Sprintf(heavySweepSpec, 3)), ""},
		}}.normalize(), nil
	case "eval-light":
		// The varying curve_samples keeps most requests cold — cache hits
		// bypass admission entirely, so a light tenant made of hits would
		// never exercise the scheduler it is probing — while single-model
		// evaluations stay milliseconds each.
		return Mix{Name: name, shapes: []shape{
			{"model", "POST", "/v1/model", 60, func(seq uint64) string {
				return fmt.Sprintf(`{"case":"example","curve_samples":%d}`, 64+seq%8192)
			}, ""},
			{"model", "POST", "/v1/model", 20, fixedBody(`{"case":"lcls-cori"}`), ""},
			{"sweep", "POST", "/v1/sweep", 10, fixedBody(fmt.Sprintf(sweepSpec, 7)), ""},
			{"figure", "GET", "/v1/figures/example.svg", 10, nil, ""},
		}}.normalize(), nil
	default:
		return nil, fmt.Errorf("unknown mix %q (want hit-heavy, miss-heavy, corpus, stream, seed-vary, eval-heavy, or eval-light)", name)
	}
}

// normalize computes the weight total.
func (m Mix) normalize() *Mix {
	for _, sh := range m.shapes {
		m.total += sh.weight
	}
	return &m
}
