// Package loadgen drives HTTP load against a wfserved instance: a request
// mix (model/sweep/figure, hit-heavy or miss-heavy), a closed-loop (fixed
// worker count) or open-loop (fixed RPS) driver, and a log-bucketed latency
// histogram reporting achieved RPS with p50/p95/p99/max per endpoint.
package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram buckets latencies logarithmically in microseconds: each
// power-of-two octave splits into 8 sub-buckets, so any recorded latency is
// reported within ~12% of its true value, values under 8µs are exact, and
// recording is one atomic add — workers share a histogram without locks.
const (
	histSubBits  = 3
	histSubCount = 1 << histSubBits
	histBuckets  = 62 * histSubCount
)

// hist is a concurrent log-bucketed latency histogram. The zero value is
// ready to use.
type hist struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // microseconds
	max     atomic.Uint64 // microseconds, exact
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps a latency in microseconds to its bucket: identity below
// histSubCount, then octave*8 + sub-bucket from the top bits.
func bucketIndex(us uint64) int {
	if us < histSubCount {
		return int(us)
	}
	k := bits.Len64(us) - histSubBits - 1
	idx := (k+1)*histSubCount + int(us>>uint(k)) - histSubCount
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketUpperUS is the inclusive upper bound of bucket i in microseconds.
func bucketUpperUS(i int) uint64 {
	if i < histSubCount {
		return uint64(i)
	}
	k := i/histSubCount - 1
	m := uint64(histSubCount + i%histSubCount)
	return (m+1)<<uint(k) - 1
}

// record adds one observation.
func (h *hist) record(d time.Duration) {
	us := uint64(d.Microseconds())
	h.buckets[bucketIndex(us)].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// quantile estimates the q-th quantile (0 <= q <= 1) as the upper bound of
// the bucket holding that rank, clamped to the exact observed maximum.
// Call after recording stops; concurrent records skew the estimate but
// never fault.
func (h *hist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum > rank {
			us := bucketUpperUS(i)
			if m := h.max.Load(); us > m {
				us = m
			}
			return time.Duration(us) * time.Microsecond
		}
	}
	return time.Duration(h.max.Load()) * time.Microsecond
}

// maxLatency returns the exact maximum observation.
func (h *hist) maxLatency() time.Duration {
	return time.Duration(h.max.Load()) * time.Microsecond
}
