package study

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"wroofline/internal/failure"
	"wroofline/internal/report"
)

func failuresSpec(workers int) *Spec {
	return &Spec{
		Kind: "failures", Case: "lcls-cori", Trials: 16, Seed: 7, Workers: workers,
		Failure: &failure.Spec{
			TaskFailProb: 0.05,
			RestageRate:  "1 GB/s",
			Retry:        &failure.RetrySpec{MaxAttempts: 5, BackoffSeconds: 1, BackoffFactor: 2},
		},
	}
}

// renderTables flattens a table list for byte comparison.
func renderTables(t *testing.T, tables []*report.Table) string {
	t.Helper()
	data, err := json.Marshal(tables)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestFailuresStudyDeterministicAcrossWorkers(t *testing.T) {
	one, err := Run(context.Background(), failuresSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(context.Background(), failuresSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderTables(t, one), renderTables(t, many); a != b {
		t.Fatalf("worker count changed the result bytes:\n%s\nvs\n%s", a, b)
	}
	if len(one) != 4 {
		t.Fatalf("failures study produced %d tables, want 4", len(one))
	}
	if !strings.Contains(one[0].Title, "lcls-cori") || !strings.Contains(one[0].Title, "16 trials") {
		t.Errorf("makespan table title = %q", one[0].Title)
	}
}

func TestFailuresStudyValidation(t *testing.T) {
	if _, err := Run(context.Background(), &Spec{Kind: "failures", Case: "lcls-cori",
		Failure: &failure.Spec{TaskFailProb: 0.1}}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := Run(context.Background(), &Spec{Kind: "failures", Case: "lcls-cori", Trials: 4}); err == nil {
		t.Error("missing failure block accepted")
	}
	if _, err := Run(context.Background(), &Spec{Kind: "failures", Case: "no-such-case", Trials: 4,
		Failure: &failure.Spec{TaskFailProb: 0.1}}); err == nil {
		t.Error("unknown case accepted")
	}
	if _, err := Run(context.Background(), &Spec{Kind: "failures", Case: "lcls-cori", Trials: 4,
		Failure: &failure.Spec{TaskFailProb: 2}}); err == nil {
		t.Error("invalid failure probability accepted")
	}
}

func TestFailuresSpecCanonicalCoversFailureParams(t *testing.T) {
	// The content-addressed cache keys on Canonical bytes, so any failure
	// parameter change must change them.
	a, err := failuresSpec(0).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b := failuresSpec(0)
	b.Failure.TaskFailProb = 0.06
	bc, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(bc) {
		t.Fatal("task_fail_prob change did not change the canonical bytes")
	}
	c := failuresSpec(0)
	c.Failure.Retry.MaxAttempts = 6
	cc, err := c.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(cc) {
		t.Fatal("retry change did not change the canonical bytes")
	}
	// Workers is normalized away, as for every other kind.
	w, err := failuresSpec(9).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(w) {
		t.Fatal("worker count leaked into the canonical bytes")
	}
}

func TestFailuresExampleRoundTrips(t *testing.T) {
	ex, err := Example("failures")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("example does not re-parse strictly: %v", err)
	}
	if spec.Kind != "failures" || spec.Failure == nil {
		t.Fatalf("round-tripped example = %+v", spec)
	}
	// The template must actually run.
	spec.Trials = 4
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
}
