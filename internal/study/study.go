// Package study defines the JSON spec format for ensemble studies — Monte
// Carlo contention trials, what-if scenario grids, and archetype shape
// surveys — and runs them over the sweep worker pool. It is the shared
// evaluation entry point behind cmd/wfsweep and the wfserved /v1/sweep
// endpoint: one spec format, one runner, every consumer.
//
// Results are bit-identical at any worker count (see internal/sweep), which
// is what makes specs content-addressable: Canonical renders a spec into a
// normalized byte form whose hash identifies the result regardless of
// formatting, field order, or requested worker count.
package study

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"wroofline/internal/archetype"
	"wroofline/internal/contention"
	"wroofline/internal/core"
	"wroofline/internal/failure"
	"wroofline/internal/machine"
	"wroofline/internal/plancache"
	"wroofline/internal/report"
	"wroofline/internal/sim"
	"wroofline/internal/sweep"
	"wroofline/internal/units"
	"wroofline/internal/wfgen"
	"wroofline/internal/whatif"
	"wroofline/internal/workflow"
	"wroofline/internal/workloads"
)

// Spec is the JSON study description.
type Spec struct {
	// Kind selects the study: "montecarlo", "grid", or "survey".
	Kind string `json:"kind"`
	// Workers bounds the pool (0 = GOMAXPROCS). Workers never changes the
	// result bytes, only the wall-clock time, so Canonical normalizes it
	// away.
	Workers int `json:"workers,omitempty"`
	// Batch sets how many trials each worker runs per batch-executor call in
	// the montecarlo/failures kinds (0 = sweep.ChunkSize default). Like
	// Workers it is a pure performance knob — per-trial seeding ignores the
	// chunk geometry — so Canonical normalizes it away too.
	Batch int `json:"batch,omitempty"`

	// Case names a built-in case study (montecarlo and grid kinds).
	Case string `json:"case,omitempty"`

	// Trials, Seed, Streams, and Sampler configure a Monte Carlo ensemble:
	// each trial draws a per-stream external rate from the sampler and
	// simulates the case study's makespan with Streams concurrent staging
	// flows at that rate (aggregate = Streams x rate).
	Trials  int          `json:"trials,omitempty"`
	Seed    uint64       `json:"seed,omitempty"`
	Streams int          `json:"streams,omitempty"`
	Sampler *SamplerSpec `json:"sampler,omitempty"`

	// P plus the three axis lists configure a what-if grid over the case
	// study's model.
	P           float64            `json:"p,omitempty"`
	Resources   []ResourceAxisSpec `json:"resources,omitempty"`
	WallFactors []float64          `json:"wall_factors,omitempty"`
	IntraTask   []IntraTaskOptSpec `json:"intra_task,omitempty"`

	// Failure configures a failure-ensemble study: Trials independent
	// simulations of the case under the failure model, each trial re-seeded
	// from (Seed, trial), reporting the makespan/throughput degradation
	// distribution and where the retries landed.
	Failure *failure.Spec `json:"failure,omitempty"`

	// Machine/Partition plus the shape-grid fields configure a survey.
	Machine      string    `json:"machine,omitempty"`
	Partition    string    `json:"partition,omitempty"`
	Widths       []int     `json:"widths,omitempty"`
	Depths       []int     `json:"depths,omitempty"`
	NodesPerTask int       `json:"nodes_per_task,omitempty"`
	Work         *WorkSpec `json:"work,omitempty"`

	// Count, Families, and Template configure a generated-scenario corpus
	// (kind "corpus"): Count workflows are generated from the wfgen Template,
	// cycling through Families (default: all of them), with scenario i seeded
	// from (Seed, i). Each scenario is analyzed (roofline bound at the wall)
	// and simulated (makespan) on Machine, and the results aggregate into
	// per-family, distribution, and binding-ceiling tables.
	Count    int         `json:"count,omitempty"`
	Families []string    `json:"families,omitempty"`
	Template *wfgen.Spec `json:"template,omitempty"`
}

// SamplerSpec selects and parameterizes a contention day-sampler.
type SamplerSpec struct {
	// Model is "twostate" or "lognormal".
	Model string `json:"model"`
	// Base is the uncontended per-stream rate, e.g. "1 GB/s".
	Base string `json:"base"`
	// Degraded and PBad parameterize the twostate model.
	Degraded string  `json:"degraded,omitempty"`
	PBad     float64 `json:"p_bad,omitempty"`
	// Mu and Sigma parameterize the lognormal slowdown factor.
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
}

// ResourceAxisSpec is one grid dimension with a symbolic resource name.
type ResourceAxisSpec struct {
	Resource string    `json:"resource"`
	Factors  []float64 `json:"factors"`
}

// IntraTaskOptSpec is one intra-task-parallelism grid option.
type IntraTaskOptSpec struct {
	K          float64 `json:"k"`
	Efficiency float64 `json:"efficiency,omitempty"`
}

// WorkSpec carries per-task work quantities as unit strings.
type WorkSpec struct {
	Flops    string `json:"flops,omitempty"`
	Mem      string `json:"mem,omitempty"`
	PCIe     string `json:"pcie,omitempty"`
	Net      string `json:"net,omitempty"`
	FS       string `json:"fs,omitempty"`
	External string `json:"external,omitempty"`
}

// ParseSpec strictly decodes a spec: unknown fields are errors, so typos in
// hand-written specs fail loudly instead of silently running the default.
func ParseSpec(data []byte) (*Spec, error) {
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("parse spec: %w", err)
	}
	return &spec, nil
}

// Canonical renders the spec in its content-addressable form: a single JSON
// encoding with fixed field order and the worker count and batch size
// normalized to zero. Two specs with equal Canonical bytes produce
// byte-identical study output, because the sweep engine is deterministic at
// any worker count and batch size — this is the cache key the analysis
// service hashes.
func (s *Spec) Canonical() ([]byte, error) {
	c := *s
	c.Workers = 0
	c.Batch = 0
	return json.Marshal(&c)
}

// Run executes the spec and returns the report tables in print order. It is
// RunStream without progress snapshots — both paths share one runner per
// kind, which is what keeps streamed final results byte-identical to
// buffered ones.
func Run(ctx context.Context, spec *Spec) ([]*report.Table, error) {
	return RunStreamCached(ctx, spec, nil, nil)
}

// RunCached is Run with a second-level plan cache (see RunStreamCached).
func RunCached(ctx context.Context, spec *Spec, plans *plancache.Cache) ([]*report.Table, error) {
	return RunStreamCached(ctx, spec, plans, nil)
}

// compileCase returns the case study's compiled plan, consulting the plan
// cache when one is wired. The case name alone is the evaluation identity:
// workloads.ByName constructs the same workflow, machine, and simulation
// configuration (including any baked-in failure model) for a given name
// every time, and compiled plans are immutable and safe for concurrent Run
// calls, so one cached plan serves every trials/seed/workers/batch
// variation over the case — spec.Failure never enters the plan (fault
// models ride in per-trial sim.Trial values).
func compileCase(plans *plancache.Cache, name string) (*sim.Plan, error) {
	key := plancache.CaseKey(name)
	if v, ok := plans.Get(key); ok {
		return v.(*sim.Plan), nil
	}
	cs, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	plan, err := cs.Compile()
	if err != nil {
		return nil, err
	}
	plans.Put(key, plan)
	return plan, nil
}

func errUnknownKind(kind string) error {
	return fmt.Errorf("unknown spec kind %q (want montecarlo, grid, survey, failures, or corpus)", kind)
}

// sampler builds the contention sampler from the spec.
func (s *SamplerSpec) sampler() (contention.Sampler, error) {
	if s == nil {
		return nil, fmt.Errorf("montecarlo spec needs a sampler")
	}
	base, err := units.ParseByteRate(s.Base)
	if err != nil {
		return nil, fmt.Errorf("sampler base: %w", err)
	}
	switch s.Model {
	case "twostate":
		degraded, err := units.ParseByteRate(s.Degraded)
		if err != nil {
			return nil, fmt.Errorf("sampler degraded: %w", err)
		}
		m := contention.TwoState{Base: base, Degraded: degraded, PBad: s.PBad}
		return m, m.Validate()
	case "lognormal":
		m := contention.Lognormal{Base: base, Mu: s.Mu, Sigma: s.Sigma}
		return m, m.Validate()
	default:
		return nil, fmt.Errorf("unknown sampler model %q (want twostate or lognormal)", s.Model)
	}
}

// runMonteCarlo fans the day trials over the pool: each trial draws a
// per-stream rate and simulates the case study with the external path set to
// Streams flows at that rate. A non-nil emit receives throttled partial
// summaries as the day frontier advances (see RunStream).
func runMonteCarlo(ctx context.Context, spec *Spec, plans *plancache.Cache, emit func(Progress)) ([]*report.Table, error) {
	if spec.Trials <= 0 {
		return nil, fmt.Errorf("montecarlo spec needs positive trials, got %d", spec.Trials)
	}
	s, err := spec.Sampler.sampler()
	if err != nil {
		return nil, err
	}
	// Compile the case once (or fetch the shared immutable plan from the
	// cache); every trial shares it and only varies the external path.
	// Plan.Run is safe for concurrent trials.
	plan, err := compileCase(plans, spec.Case)
	if err != nil {
		return nil, err
	}
	streams := spec.Streams
	if streams <= 0 {
		streams = 1
	}
	// Each chunk of days becomes one batch-executor call: the worker reuses a
	// single scratch trial state for the whole chunk and the executor dedupes
	// repeated day rates (a two-state sampler yields two distinct trials per
	// batch). Day seeding is chunk-independent, so the distribution is
	// bit-identical to the per-trial path at any worker count or batch size.
	d, err := contention.MonteCarloEnsembleBatchProgress(ctx, spec.Trials, spec.Seed, spec.Workers, spec.Batch, s,
		func(days []units.ByteRate, out []float64) error {
			trials := make([]sim.Trial, len(days))
			for i, rate := range days {
				trials[i] = sim.Trial{
					OverrideExternal: true,
					ExternalBW:       units.ByteRate(streams) * rate,
				}
				if streams > 1 {
					trials[i].ExternalPerFlowCap = rate
				}
			}
			brs := make([]sim.BatchResult, len(days))
			if err := plan.RunBatch(trials, brs); err != nil {
				return err
			}
			for i, br := range brs {
				out[i] = br.Makespan
			}
			return nil
		},
		progressFn(spec.Trials, emit, func(v float64) float64 { return v }))
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable(
		fmt.Sprintf("Monte Carlo makespan (s): %s, %d trials, seed %d", spec.Case, spec.Trials, spec.Seed),
		"n", "min", "p50", "p90", "p99", "max", "mean", "p99/p50")
	p50, err := d.Percentile(50)
	if err != nil {
		return nil, err
	}
	p90, err := d.Percentile(90)
	if err != nil {
		return nil, err
	}
	p99, err := d.Percentile(99)
	if err != nil {
		return nil, err
	}
	tail, err := d.TailRatio()
	if err != nil {
		return nil, err
	}
	if err := tbl.AddRowf(fmt.Sprint(d.N()), d.Min(), p50, p90, p99, d.Max(), d.Mean(), tail); err != nil {
		return nil, err
	}
	return []*report.Table{tbl}, nil
}

// failureTrial is one failure-ensemble outcome.
type failureTrial struct {
	makespan float64
	retries  int
	label    string
}

// runFailures simulates the case Trials times under the failure model, each
// trial with an independent fault sequence seeded from (Seed, trial), and
// reports the makespan/TPS degradation distribution, the retry-count
// distribution, and the histogram of which phase the retries hammered. A
// non-nil emit receives throttled partial makespan summaries.
func runFailures(ctx context.Context, spec *Spec, plans *plancache.Cache, emit func(Progress)) ([]*report.Table, error) {
	if spec.Trials <= 0 {
		return nil, fmt.Errorf("failures spec needs positive trials, got %d", spec.Trials)
	}
	if spec.Failure == nil {
		return nil, fmt.Errorf("failures spec needs a failure block")
	}
	// Compile the case (or fetch the shared plan) and validate the failure
	// spec once up front; every trial shares the immutable plan and carries
	// its own seeded fault model.
	plan, err := compileCase(plans, spec.Case)
	if err != nil {
		return nil, err
	}
	if _, err := spec.Failure.Compile(); err != nil {
		return nil, err
	}
	baseline, err := plan.Run(sim.Trial{})
	if err != nil {
		return nil, fmt.Errorf("baseline simulation: %w", err)
	}

	// Trials run through the batch executor in chunks: one scratch per chunk,
	// no per-trial Recorder or Result maps. Each trial still carries its own
	// fault model seeded from (Seed, trial) — chunk geometry never touches
	// the random streams, so outcomes match the per-trial path bit for bit.
	trials, err := sweep.MapChunksProgress(ctx, spec.Trials, spec.Workers, spec.Batch,
		func(ctx context.Context, lo, hi int, out []failureTrial) error {
			st := make([]sim.Trial, hi-lo)
			for i := range st {
				fs := *spec.Failure
				fs.Seed = sweep.TrialSeed(spec.Seed, lo+i)
				fm, err := fs.Compile()
				if err != nil {
					return err
				}
				st[i] = sim.Trial{Failures: fm}
			}
			brs := make([]sim.BatchResult, hi-lo)
			if err := plan.RunBatch(st, brs); err != nil {
				return err
			}
			for i, br := range brs {
				out[i] = failureTrial{
					makespan: br.Makespan,
					retries:  br.Retries,
					label:    br.DominantRetry,
				}
			}
			return nil
		},
		progressFn(spec.Trials, emit, func(t failureTrial) float64 { return t.makespan }))
	if err != nil {
		return nil, err
	}
	makespans, err := sweep.NewAgg(spec.Trials)
	if err != nil {
		return nil, err
	}
	retries, err := sweep.NewAgg(spec.Trials)
	if err != nil {
		return nil, err
	}
	for i, tr := range trials {
		if err := makespans.Add(i, tr.makespan, tr.label); err != nil {
			return nil, err
		}
		if err := retries.Add(i, float64(tr.retries), ""); err != nil {
			return nil, err
		}
	}
	ms, err := makespans.Summary()
	if err != nil {
		return nil, err
	}
	rs, err := retries.Summary()
	if err != nil {
		return nil, err
	}

	mk := report.NewTable(
		fmt.Sprintf("Failure-ensemble makespan (s): %s, %d trials, seed %d, p=%s",
			spec.Case, spec.Trials, spec.Seed, report.Num(spec.Failure.TaskFailProb)),
		"n", "baseline", "min", "p50", "p90", "p99", "max", "mean", "p99/p50")
	if err := mk.AddRowf(fmt.Sprint(ms.N), baseline.Makespan,
		ms.Min, ms.P50, ms.P90, ms.P99, ms.Max, ms.Mean, ms.TailRatio); err != nil {
		return nil, err
	}

	baseTPS := baseline.Throughput
	tps := report.NewTable("Throughput degradation (tasks/s)",
		"baseline TPS", "mean TPS", "p50 TPS", "worst TPS", "mean slowdown")
	meanTPS, p50TPS, worstTPS, slowdown := 0.0, 0.0, 0.0, 0.0
	if ms.Mean > 0 {
		meanTPS = baseTPS * baseline.Makespan / ms.Mean
	}
	if ms.P50 > 0 {
		p50TPS = baseTPS * baseline.Makespan / ms.P50
	}
	if ms.Max > 0 {
		worstTPS = baseTPS * baseline.Makespan / ms.Max
	}
	if baseline.Makespan > 0 {
		slowdown = ms.Mean / baseline.Makespan
	}
	if err := tps.AddRowf(baseTPS, meanTPS, p50TPS, worstTPS, slowdown); err != nil {
		return nil, err
	}

	rt := report.NewTable("Retries per run",
		"min", "p50", "p99", "max", "mean")
	if err := rt.AddRowf(rs.Min, rs.P50, rs.P99, rs.Max, rs.Mean); err != nil {
		return nil, err
	}

	hist := report.NewTable("Dominant retry phase histogram", "phase", "runs")
	for _, bin := range makespans.Hist() {
		if err := hist.AddRowf(bin.Label, fmt.Sprint(bin.Count)); err != nil {
			return nil, err
		}
	}
	return []*report.Table{mk, tps, rt, hist}, nil
}

// runGrid evaluates the cartesian what-if space over the case's model and
// reports every cell plus the binding-ceiling histogram.
func runGrid(ctx context.Context, spec *Spec) ([]*report.Table, error) {
	cs, err := workloads.ByName(spec.Case)
	if err != nil {
		return nil, err
	}
	p := spec.P
	if p <= 0 {
		p = float64(cs.Model.Wall)
	}
	g := whatif.Grid{WallFactors: spec.WallFactors}
	for _, ax := range spec.Resources {
		res, err := core.ParseResource(ax.Resource)
		if err != nil {
			return nil, err
		}
		g.Resources = append(g.Resources, whatif.ResourceAxis{Resource: res, Factors: ax.Factors})
	}
	for _, it := range spec.IntraTask {
		g.IntraTask = append(g.IntraTask, whatif.IntraTaskOption{K: it.K, Efficiency: it.Efficiency})
	}
	size, err := g.Size()
	if err != nil {
		return nil, err
	}
	agg, err := sweep.NewAgg(size)
	if err != nil {
		return nil, err
	}
	cells, err := whatif.EvaluateGrid(ctx, cs.Model, p, g, spec.Workers, agg)
	if err != nil {
		return nil, err
	}
	grid := report.NewTable(
		fmt.Sprintf("What-if grid: %s at p=%s (%d scenarios)", spec.Case, report.Num(p), size),
		"scenario", "bound TPS", "speedup", "limited by")
	for _, c := range cells {
		if err := grid.AddRowf(c.Name, c.Outcome.BoundTPS, c.Outcome.Speedup, c.Outcome.Limiting); err != nil {
			return nil, err
		}
	}
	s, err := agg.Summary()
	if err != nil {
		return nil, err
	}
	summary := report.NewTable("Bound distribution across scenarios (TPS)",
		"n", "min", "p50", "p99", "max", "mean", "p99/p50")
	if err := summary.AddRowf(fmt.Sprint(s.N), s.Min, s.P50, s.P99, s.Max, s.Mean, s.TailRatio); err != nil {
		return nil, err
	}
	hist := report.NewTable("Binding-ceiling histogram", "ceiling", "scenarios")
	for _, bin := range agg.Hist() {
		if err := hist.AddRowf(bin.Label, fmt.Sprint(bin.Count)); err != nil {
			return nil, err
		}
	}
	return []*report.Table{grid, summary, hist}, nil
}

// runSurvey sweeps the archetype catalog across the width/depth grid.
func runSurvey(ctx context.Context, spec *Spec) ([]*report.Table, error) {
	m, err := machine.ByName(spec.Machine)
	if err != nil {
		return nil, err
	}
	partition := spec.Partition
	if partition == "" {
		partition = machine.PartCPU
	}
	work, err := spec.Work.work()
	if err != nil {
		return nil, err
	}
	params := archetype.Params{
		Partition:    partition,
		NodesPerTask: spec.NodesPerTask,
		Work:         work,
	}
	widths, depths := spec.Widths, spec.Depths
	if len(widths) == 0 {
		widths = []int{4, 8, 16}
	}
	if len(depths) == 0 {
		depths = []int{2, 3}
	}
	points, err := archetype.Survey(ctx, m, params, archetype.Catalog(), widths, depths, spec.Workers)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable(
		fmt.Sprintf("Archetype shape survey on %s/%s (%d shapes)", m.Name, partition, len(points)),
		"shape", "width", "depth", "tasks", "wall", "bound TPS", "limited by")
	agg, err := sweep.NewAgg(len(points))
	if err != nil {
		return nil, err
	}
	for i, pt := range points {
		if err := tbl.AddRowf(pt.Shape, fmt.Sprint(pt.Width), fmt.Sprint(pt.Depth),
			fmt.Sprint(pt.Tasks), fmt.Sprint(pt.Wall), pt.BoundTPS, pt.Limiting); err != nil {
			return nil, err
		}
		if err := agg.Add(i, pt.BoundTPS, pt.Limiting); err != nil {
			return nil, err
		}
	}
	hist := report.NewTable("Binding-ceiling histogram", "ceiling", "shapes")
	for _, bin := range agg.Hist() {
		if err := hist.AddRowf(bin.Label, fmt.Sprint(bin.Count)); err != nil {
			return nil, err
		}
	}
	return []*report.Table{tbl, hist}, nil
}

// corpusScenario is one generated scenario's analysis + simulation outcome.
type corpusScenario struct {
	family   string
	tasks    int
	boundTPS float64
	limiting string
	makespan float64
}

// runCorpus generates Count scenarios from the wfgen template, cycling
// through the topology families and seeding scenario i from (Seed, i), then
// analyzes (roofline bound at the wall) and simulates (makespan) each on the
// spec machine. The fan-out runs over the sweep pool in chunks — scenario
// seeding ignores the chunk geometry — so the tables are byte-identical at
// any worker count and batch size; a non-nil emit receives throttled
// partial makespan summaries as the scenario frontier advances.
//
// With a plan cache wired, each scenario's generate → build → compile →
// simulate pass is keyed by (machine, normalized template+family+seed) and
// reused across requests — and, for CV==0 templates, across seeds too (see
// plancache.ScenarioKey). The cached artifact carries exactly the fields
// the tables read, so hit and miss scenarios aggregate identically.
func runCorpus(ctx context.Context, spec *Spec, plans *plancache.Cache, emit func(Progress)) ([]*report.Table, error) {
	if spec.Count <= 0 {
		return nil, fmt.Errorf("corpus spec needs positive count, got %d", spec.Count)
	}
	m, err := machine.ByName(spec.Machine)
	if err != nil {
		return nil, err
	}
	families := spec.Families
	if len(families) == 0 {
		families = wfgen.Families()
	}
	var tmpl wfgen.Spec
	if spec.Template != nil {
		tmpl = *spec.Template
	}
	// Validate one representative spec per family up front so template errors
	// surface once, not Count times from inside the pool.
	for _, fam := range families {
		s := tmpl
		s.Family = fam
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	scenarios, err := sweep.MapChunksProgress(ctx, spec.Count, spec.Workers, spec.Batch,
		func(ctx context.Context, lo, hi int, out []corpusScenario) error {
			for j := range out {
				i := lo + j
				s := tmpl
				s.Family = families[i%len(families)]
				s.Seed = sweep.TrialSeed(spec.Seed, i)
				var key plancache.Key
				if plans != nil {
					key = plancache.ScenarioKey(&s, m.Name)
					if v, ok := plans.Get(key); ok {
						sc := v.(*plancache.Scenario)
						out[j] = corpusScenario{
							family:   s.Family,
							tasks:    sc.Tasks,
							boundTPS: sc.BoundTPS,
							limiting: sc.Limiting,
							makespan: sc.Makespan,
						}
						continue
					}
				}
				wf, err := wfgen.Generate(&s)
				if err != nil {
					return fmt.Errorf("scenario %d: %w", i, err)
				}
				model, err := core.Build(m, wf, core.BuildOptions{})
				if err != nil {
					return fmt.Errorf("scenario %d (%s): %w", i, s.Family, err)
				}
				bound, limit := model.BoundAtWall()
				// Compile + RunScalar instead of sim.Run: the corpus only needs
				// the makespan, and contention-free scenarios resolve through the
				// plan's analytic longest-path pass without an event loop.
				plan, err := sim.Compile(wf, nil, sim.Config{Machine: m})
				if err != nil {
					return fmt.Errorf("scenario %d (%s): %w", i, s.Family, err)
				}
				br, err := plan.RunScalar(sim.Trial{})
				if err != nil {
					return fmt.Errorf("scenario %d (%s): %w", i, s.Family, err)
				}
				out[j] = corpusScenario{
					family: s.Family,
					tasks:  wf.TotalTasks(),
					// Bin the histogram on the limiting resource, not the full
					// ceiling name: names embed per-scenario volumes, so each
					// would be its own bin.
					boundTPS: bound,
					limiting: limit.Resource.String(),
					makespan: br.Makespan,
				}
				if plans != nil {
					plans.Put(key, &plancache.Scenario{
						Tasks:    wf.TotalTasks(),
						BoundTPS: bound,
						Limiting: limit.Resource.String(),
						Makespan: br.Makespan,
						Plan:     plan,
					})
				}
			}
			return nil
		},
		progressFn(spec.Count, emit, func(c corpusScenario) float64 { return c.makespan }))
	if err != nil {
		return nil, err
	}

	type famAgg struct {
		scenarios int
		tasks     int
		sumBound  float64
		sumMake   float64
	}
	perFam := make(map[string]*famAgg, len(families))
	agg, err := sweep.NewAgg(spec.Count)
	if err != nil {
		return nil, err
	}
	for i, sc := range scenarios {
		fa := perFam[sc.family]
		if fa == nil {
			fa = &famAgg{}
			perFam[sc.family] = fa
		}
		fa.scenarios++
		fa.tasks += sc.tasks
		fa.sumBound += sc.boundTPS
		fa.sumMake += sc.makespan
		if err := agg.Add(i, sc.makespan, sc.limiting); err != nil {
			return nil, err
		}
	}
	famTbl := report.NewTable(
		fmt.Sprintf("Generated corpus on %s: %d scenarios, seed %d", m.Name, spec.Count, spec.Seed),
		"family", "scenarios", "tasks", "mean bound TPS", "mean makespan (s)")
	seen := map[string]bool{}
	for _, fam := range families {
		if seen[fam] {
			continue
		}
		seen[fam] = true
		fa := perFam[fam]
		if fa == nil {
			continue
		}
		n := float64(fa.scenarios)
		if err := famTbl.AddRowf(fam, fmt.Sprint(fa.scenarios), fmt.Sprint(fa.tasks),
			fa.sumBound/n, fa.sumMake/n); err != nil {
			return nil, err
		}
	}
	s, err := agg.Summary()
	if err != nil {
		return nil, err
	}
	dist := report.NewTable("Corpus makespan distribution (s)",
		"n", "min", "p50", "p90", "p99", "max", "mean", "p99/p50")
	if err := dist.AddRowf(fmt.Sprint(s.N), s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean, s.TailRatio); err != nil {
		return nil, err
	}
	hist := report.NewTable("Binding-ceiling histogram", "ceiling", "scenarios")
	for _, bin := range agg.Hist() {
		if err := hist.AddRowf(bin.Label, fmt.Sprint(bin.Count)); err != nil {
			return nil, err
		}
	}
	return []*report.Table{famTbl, dist, hist}, nil
}

// work converts the unit strings into a workflow work vector.
func (w *WorkSpec) work() (workflow.Work, error) {
	var out workflow.Work
	if w == nil {
		return out, nil
	}
	var err error
	parseBytes := func(dst *units.Bytes, s, what string) {
		if err != nil || s == "" {
			return
		}
		if *dst, err = units.ParseBytes(s); err != nil {
			err = fmt.Errorf("work %s: %w", what, err)
		}
	}
	if w.Flops != "" {
		if out.Flops, err = units.ParseFlops(w.Flops); err != nil {
			return out, fmt.Errorf("work flops: %w", err)
		}
	}
	parseBytes(&out.MemBytes, w.Mem, "mem")
	parseBytes(&out.PCIeBytes, w.PCIe, "pcie")
	parseBytes(&out.NetworkBytes, w.Net, "net")
	parseBytes(&out.FSBytes, w.FS, "fs")
	parseBytes(&out.ExternalBytes, w.External, "external")
	return out, err
}

// Example returns a ready-to-edit template spec for the kind.
func Example(kind string) (*Spec, error) {
	switch kind {
	case "montecarlo":
		return &Spec{
			Kind: "montecarlo", Case: "lcls-cori", Trials: 10000, Seed: 7, Streams: 5,
			Sampler: &SamplerSpec{Model: "twostate", Base: "1 GB/s", Degraded: "0.2 GB/s", PBad: 0.4},
		}, nil
	case "grid":
		return &Spec{
			Kind: "grid", Case: "lcls-cori", P: 5,
			Resources:   []ResourceAxisSpec{{Resource: "memory", Factors: []float64{1, 2, 10}}},
			WallFactors: []float64{1, 2},
			IntraTask:   []IntraTaskOptSpec{{K: 2, Efficiency: 0.9}},
		}, nil
	case "survey":
		return &Spec{
			Kind: "survey", Machine: "perlmutter", Partition: "cpu",
			Widths: []int{4, 8, 16}, Depths: []int{2, 3}, NodesPerTask: 2,
			Work: &WorkSpec{Flops: "5 TFLOP", FS: "100 GB"},
		}, nil
	case "failures":
		return &Spec{
			Kind: "failures", Case: "lcls-cori", Trials: 200, Seed: 7,
			Failure: &failure.Spec{
				TaskFailProb: 0.02,
				RestageRate:  "1 GB/s",
				Retry:        &failure.RetrySpec{MaxAttempts: 5, BackoffSeconds: 1, BackoffFactor: 2},
			},
		}, nil
	case "corpus":
		return &Spec{
			Kind: "corpus", Machine: "perlmutter-numa", Count: 1000, Seed: 11,
			Template: &wfgen.Spec{Width: 8, Depth: 4, CV: 0.4, Payload: "1 GB"},
		}, nil
	default:
		return nil, fmt.Errorf("unknown example %q (want montecarlo, grid, survey, failures, or corpus)", kind)
	}
}
