package study

import (
	"context"
	"testing"

	"wroofline/internal/plancache"
	"wroofline/internal/wfgen"
)

// shrinkExample returns the kind's Example spec cut down to test size.
func shrinkExample(t *testing.T, kind string) *Spec {
	t.Helper()
	spec, err := Example(kind)
	if err != nil {
		t.Fatal(err)
	}
	spec.Trials = 48
	if kind == "corpus" {
		spec.Count = 20
	}
	return spec
}

// TestPlanCacheDifferential is the study-level half of the differential
// wall: for every ensemble kind, a cache-off run, a cache-filling run, a
// cache-hit run, and a cache-hit run at a different worker x batch geometry
// must all render byte-identical tables.
func TestPlanCacheDifferential(t *testing.T) {
	ctx := context.Background()
	for _, kind := range []string{"montecarlo", "failures", "corpus"} {
		t.Run(kind, func(t *testing.T) {
			spec := shrinkExample(t, kind)
			base, err := Run(ctx, spec)
			if err != nil {
				t.Fatal(err)
			}
			want := renderTables(t, base)

			plans := plancache.New(256, 4)
			cold, err := RunCached(ctx, spec, plans)
			if err != nil {
				t.Fatal(err)
			}
			if got := renderTables(t, cold); got != want {
				t.Errorf("cache-filling run diverged from cache-off run:\n--- off ---\n%s\n--- fill ---\n%s", want, got)
			}
			warm, err := RunCached(ctx, spec, plans)
			if err != nil {
				t.Fatal(err)
			}
			if got := renderTables(t, warm); got != want {
				t.Errorf("cache-hit run diverged from cache-off run:\n--- off ---\n%s\n--- hit ---\n%s", want, got)
			}
			if st := plans.Stats(); st.Hits == 0 {
				t.Errorf("warm run recorded no plan-cache hits: %+v", st)
			}

			geo := *spec
			geo.Workers, geo.Batch = 3, 5
			got, err := RunCached(ctx, &geo, plans)
			if err != nil {
				t.Fatal(err)
			}
			if g := renderTables(t, got); g != want {
				t.Errorf("cache-hit run at workers=3 batch=5 diverged:\n--- off ---\n%s\n--- geo ---\n%s", want, g)
			}
		})
	}
}

// TestPlanCacheCorpusSeedVary pins the seed-vary win: with a CV==0 template
// the generator never consults its random stream, so scenario entries
// filled under one request seed serve every other — and the served tables
// are still byte-identical to a fresh, cache-off evaluation at the new
// seed.
func TestPlanCacheCorpusSeedVary(t *testing.T) {
	ctx := context.Background()
	mk := func(seed uint64) *Spec {
		return &Spec{
			Kind: "corpus", Machine: "perlmutter-numa", Count: 20, Seed: seed, Workers: 1,
			Template: &wfgen.Spec{Width: 5, Depth: 3, Payload: "512 MB"},
		}
	}
	plans := plancache.New(256, 4)
	if _, err := RunCached(ctx, mk(1), plans); err != nil {
		t.Fatal(err)
	}
	st := plans.Stats()
	// 20 scenarios cycle 5 families; CV==0 normalizes the scenario seed, so
	// the first scenario of each family misses and the rest hit.
	if st.Misses != 5 || st.Hits != 15 {
		t.Fatalf("after seed-1 run: %+v; want 5 misses, 15 hits", st)
	}

	cached, err := RunCached(ctx, mk(999), plans)
	if err != nil {
		t.Fatal(err)
	}
	st2 := plans.Stats()
	if st2.Misses != st.Misses {
		t.Fatalf("seed-999 run missed (%d new misses); want 100%% cross-seed hits",
			st2.Misses-st.Misses)
	}
	fresh, err := Run(ctx, mk(999))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderTables(t, cached), renderTables(t, fresh); got != want {
		t.Errorf("seed-999 tables served from seed-1 entries diverged from a fresh evaluation:\n--- fresh ---\n%s\n--- cached ---\n%s", want, got)
	}
}

// TestPlanCacheCorpusSeedSensitive is the converse guard: with CV > 0 the
// seed shapes the drawn work, so cross-seed requests must NOT share
// scenario entries.
func TestPlanCacheCorpusSeedSensitive(t *testing.T) {
	ctx := context.Background()
	mk := func(seed uint64) *Spec {
		return &Spec{
			Kind: "corpus", Machine: "perlmutter-numa", Count: 10, Seed: seed, Workers: 1,
			Template: &wfgen.Spec{Width: 5, Depth: 3, CV: 0.4, Payload: "512 MB"},
		}
	}
	plans := plancache.New(256, 4)
	if _, err := RunCached(ctx, mk(1), plans); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := plans.Stats().Misses
	if _, err := RunCached(ctx, mk(2), plans); err != nil {
		t.Fatal(err)
	}
	if got := plans.Stats().Misses - missesAfterFirst; got != 10 {
		t.Fatalf("CV>0 cross-seed run took %d misses; want all 10 (seeds must stay significant)", got)
	}
}
