package study

import (
	"context"

	"wroofline/internal/plancache"
	"wroofline/internal/report"
	"wroofline/internal/sweep"
)

// Progress is one partial-result snapshot of a running ensemble study: the
// summary of the first Done trials (a stable, deterministic prefix — see
// sweep.MapChunksProgress) out of Total. Because the prefix is always
// trials [0, Done) regardless of worker count or chunk geometry, a given
// Done value carries the same Summary on every run of the same spec.
type Progress struct {
	// Done counts completed prefix trials; Total is the ensemble size.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Summary condenses the makespans of trials [0, Done).
	Summary sweep.Summary `json:"summary"`
}

// RunStream executes the spec like Run and additionally invokes emit with
// partial makespan summaries as the completed-trial frontier advances.
// Emission is throttled to at most ~64 snapshots per run, calls are serial
// with strictly increasing Done, and Done < Total always holds — the final
// aggregate is the returned tables, byte-identical to Run's, not a progress
// event. Only the ensemble kinds (montecarlo, failures, corpus) stream;
// grid and survey produce their tables with no intermediate snapshots.
//
// emit runs on a sweep worker goroutine while the completion frontier is
// locked: it must be brief and must not call back into the study.
func RunStream(ctx context.Context, spec *Spec, emit func(Progress)) ([]*report.Table, error) {
	return RunStreamCached(ctx, spec, nil, emit)
}

// RunStreamCached is RunStream with a second-level plan cache: the ensemble
// kinds consult plans for their expensive construction artifacts (compiled
// case plans, generated corpus scenarios) before generating, building, and
// compiling afresh, and fill it on miss. Because compiled plans are
// immutable and concurrent-safe and construction is a pure function of the
// cache key, a hit evaluation is bit-identical to a cold one at any
// worker x batch geometry — TestPlanCacheDifferential proves it. A nil
// cache disables reuse entirely (the pre-cache behavior).
func RunStreamCached(ctx context.Context, spec *Spec, plans *plancache.Cache, emit func(Progress)) ([]*report.Table, error) {
	switch spec.Kind {
	case "montecarlo":
		return runMonteCarlo(ctx, spec, plans, emit)
	case "grid":
		return runGrid(ctx, spec)
	case "survey":
		return runSurvey(ctx, spec)
	case "failures":
		return runFailures(ctx, spec, plans, emit)
	case "corpus":
		return runCorpus(ctx, spec, plans, emit)
	default:
		return nil, errUnknownKind(spec.Kind)
	}
}

// progressThrottle picks which frontier advances become Progress events:
// the first advance always fires (that is the time-to-first-result), then
// one event per total/64 further trials, and the completed ensemble never
// fires (the final tables carry it). Calls arrive serialized under the
// sweep frontier lock, so no internal locking is needed.
type progressThrottle struct {
	total int
	step  int
	next  int
}

func newProgressThrottle(total int) *progressThrottle {
	step := total / 64
	if step < 1 {
		step = 1
	}
	return &progressThrottle{total: total, step: step, next: 1}
}

// take reports whether a snapshot at done trials should be emitted and, if
// so, advances the next threshold.
func (t *progressThrottle) take(done int) bool {
	if done < t.next || done >= t.total {
		return false
	}
	t.next = done + t.step
	return true
}

// summaryCap bounds the per-snapshot summarization cost. Summarize sorts
// its input, so resummarizing the whole prefix at every snapshot would
// cost O(snapshots * n log n) — for multi-million-trial ensembles that
// dwarfs the evaluation itself. Beyond the cap the prefix is
// stride-sampled instead; the stride is a function of done alone, so a
// given Done still carries the same Summary at any worker count or chunk
// geometry, and the final tables are computed from the full result set as
// ever.
const summaryCap = 65536

// progressFn adapts a study emit callback to the sweep.MapChunksProgress
// shape for a result type whose makespan value projects out: it throttles,
// summarizes the stable prefix (stride-sampled past summaryCap, with
// Summary.N reporting the full prefix size it estimates), and forwards
// the snapshot. A nil emit yields a nil callback, turning the progress
// path off entirely.
func progressFn[T any](total int, emit func(Progress), value func(T) float64) func(done int, prefix []T) {
	if emit == nil {
		return nil
	}
	th := newProgressThrottle(total)
	bufCap := total
	if bufCap > summaryCap+1 {
		bufCap = summaryCap + 1
	}
	buf := make([]float64, 0, bufCap)
	// One Summarizer per run: its sort scratch grows to the largest snapshot
	// and is reused across all ~64 of them. Callbacks are serialized under
	// the frontier lock, so the shared scratch needs no locking.
	var z sweep.Summarizer
	return func(done int, prefix []T) {
		if !th.take(done) {
			return
		}
		stride := 1
		if done > summaryCap {
			stride = (done + summaryCap - 1) / summaryCap
		}
		buf = buf[:0]
		for i := 0; i < len(prefix); i += stride {
			buf = append(buf, value(prefix[i]))
		}
		s, err := z.Summarize(buf)
		if err != nil {
			return
		}
		s.N = done
		emit(Progress{Done: done, Total: total, Summary: s})
	}
}
