package study

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"wroofline/internal/wfgen"
)

func corpusSpec(workers int) *Spec {
	return &Spec{
		Kind: "corpus", Machine: "perlmutter-numa", Count: 1000, Seed: 11, Workers: workers,
		Template: &wfgen.Spec{Width: 6, Depth: 3, CV: 0.4, Payload: "512 MB"},
	}
}

// TestCorpusStudyDeterministicAcrossWorkers is the headline acceptance check:
// a 1,000-scenario generated corpus on the NUMA machine model runs end to end
// and produces byte-identical tables at any worker count.
func TestCorpusStudyDeterministicAcrossWorkers(t *testing.T) {
	one, err := Run(context.Background(), corpusSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(context.Background(), corpusSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderTables(t, one), renderTables(t, many); a != b {
		t.Fatalf("worker count changed the result bytes:\n%s\nvs\n%s", a, b)
	}
	if len(one) != 3 {
		t.Fatalf("corpus study produced %d tables, want 3", len(one))
	}
	if !strings.Contains(one[0].Title, "Perlmutter-NUMA") || !strings.Contains(one[0].Title, "1000 scenarios") {
		t.Errorf("per-family table title = %q", one[0].Title)
	}
	// All five families cycle through 1000 scenarios: 200 each.
	if got, want := len(one[0].Rows()), len(wfgen.Families()); got != want {
		t.Errorf("per-family table has %d rows, want %d", got, want)
	}
}

// TestCorpusStudyRidgeline runs a corpus with network-heavy multi-node tasks
// on the Ridgeline machine, whose bisection ceiling and shared fabric link
// must flow through both the analysis and the simulation deterministically.
func TestCorpusStudyRidgeline(t *testing.T) {
	spec := func(workers int) *Spec {
		return &Spec{
			Kind: "corpus", Machine: "ridgeline", Count: 60, Seed: 3, Workers: workers,
			Families: []string{"fanout", "epigenomics"},
			Template: &wfgen.Spec{Width: 8, Depth: 3, NodesPerTask: 4,
				Net: "20 GB", CV: 0.3, Payload: "1 GB"},
		}
	}
	one, err := Run(context.Background(), spec(1))
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(context.Background(), spec(7))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderTables(t, one), renderTables(t, many); a != b {
		t.Fatalf("worker count changed the result bytes:\n%s\nvs\n%s", a, b)
	}
	if got := renderTables(t, one); !strings.Contains(got, "Ridgeline") {
		t.Errorf("ridgeline corpus output does not mention the machine: %s", got)
	}
}

func TestCorpusStudyValidation(t *testing.T) {
	if _, err := Run(context.Background(), &Spec{Kind: "corpus"}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Run(context.Background(), &Spec{Kind: "corpus", Count: 4, Machine: "summit"}); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := Run(context.Background(), &Spec{Kind: "corpus", Count: 4,
		Families: []string{"butterfly"}}); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := Run(context.Background(), &Spec{Kind: "corpus", Count: 4,
		Template: &wfgen.Spec{CV: 9}}); err == nil {
		t.Error("invalid template accepted")
	}
	if _, err := Run(context.Background(), &Spec{Kind: "corpus", Count: 4,
		Template: &wfgen.Spec{Flops: "5 parsecs"}}); err == nil {
		t.Error("unparseable template unit accepted")
	}
}

func TestCorpusSpecCanonicalCoversTemplate(t *testing.T) {
	a, err := corpusSpec(0).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b := corpusSpec(0)
	b.Template.Width = 7
	bc, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(bc) {
		t.Fatal("template width change did not change the canonical bytes")
	}
	c := corpusSpec(0)
	c.Seed = 12
	cc, err := c.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(cc) {
		t.Fatal("seed change did not change the canonical bytes")
	}
	w, err := corpusSpec(9).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(w) {
		t.Fatal("worker count leaked into the canonical bytes")
	}
}

func TestCorpusExampleRoundTrips(t *testing.T) {
	ex, err := Example("corpus")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("example does not re-parse strictly: %v", err)
	}
	if spec.Kind != "corpus" || spec.Template == nil {
		t.Fatalf("round-tripped example = %+v", spec)
	}
	// The template must actually run.
	spec.Count = 25
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
}
