package study

import (
	"bytes"
	"context"
	"testing"

	"wroofline/internal/failure"
	"wroofline/internal/machine"
	"wroofline/internal/sim"
	"wroofline/internal/sweep"
	"wroofline/internal/wfgen"
)

// Batch is a pure performance knob: every batched ensemble must render
// byte-identical tables at any worker count and any batch size, because
// per-trial seeding depends only on (seed, trial index), never on chunk
// geometry, and the batch executor is bit-identical to per-trial runs.
func TestStudyBatchInvariance(t *testing.T) {
	kinds := map[string]func(workers, batch int) *Spec{
		"montecarlo": func(workers, batch int) *Spec {
			return &Spec{
				Kind: "montecarlo", Case: "lcls-cori", Trials: 64, Seed: 7,
				Streams: 5, Workers: workers, Batch: batch,
				Sampler: &SamplerSpec{Model: "twostate", Base: "1 GB/s", Degraded: "0.2 GB/s", PBad: 0.4},
			}
		},
		"failures": func(workers, batch int) *Spec {
			return &Spec{
				Kind: "failures", Case: "lcls-cori", Trials: 12, Seed: 7,
				Workers: workers, Batch: batch,
				Failure: &failure.Spec{
					TaskFailProb: 0.05,
					RestageRate:  "1 GB/s",
					Retry:        &failure.RetrySpec{MaxAttempts: 5, BackoffSeconds: 1, BackoffFactor: 2},
				},
			}
		},
		"corpus": func(workers, batch int) *Spec {
			return &Spec{
				Kind: "corpus", Machine: "perlmutter-numa", Count: 40, Seed: 11,
				Workers: workers, Batch: batch,
				Template: &wfgen.Spec{Width: 4, Depth: 2, CV: 0.4, FS: "0", Payload: "0"},
			}
		},
	}
	for name, mk := range kinds {
		t.Run(name, func(t *testing.T) {
			baseTables, err := Run(context.Background(), mk(1, 1))
			if err != nil {
				t.Fatal(err)
			}
			base := renderTables(t, baseTables)
			for _, workers := range []int{1, 4} {
				for _, batch := range []int{1, 3, 100000, 0} { // 0 = auto
					tables, err := Run(context.Background(), mk(workers, batch))
					if err != nil {
						t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
					}
					if got := renderTables(t, tables); got != base {
						t.Fatalf("workers=%d batch=%d changed the result bytes:\n%s\nvs\n%s",
							workers, batch, got, base)
					}
				}
			}
		})
	}
}

// corpusAnalyticRate regenerates the corpus sweep's scenarios (same family
// cycling, same per-scenario seeding) and reports what fraction of the
// compiled plans the analytic fast path accepts.
func corpusAnalyticRate(t *testing.T, count int, seed uint64, tmpl wfgen.Spec) float64 {
	t.Helper()
	m, err := machine.ByName("perlmutter-numa")
	if err != nil {
		t.Fatal(err)
	}
	families := wfgen.Families()
	hits := 0
	for i := 0; i < count; i++ {
		s := tmpl
		s.Family = families[i%len(families)]
		s.Seed = sweep.TrialSeed(seed, i)
		wf, err := wfgen.Generate(&s)
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		plan, err := sim.Compile(wf, nil, sim.Config{Machine: m})
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		if plan.Analytic() {
			hits++
		}
	}
	return float64(hits) / float64(count)
}

// TestCorpusAnalyticFastPathRate pins the EXPERIMENTS.md walkthrough: on the
// 1,000-scenario corpus, a contention-free template (no payload, no FS
// traffic) resolves every plan analytically, while the default 1 GB payload
// keeps every plan on the event loop (FS flows share a link).
func TestCorpusAnalyticFastPathRate(t *testing.T) {
	free := corpusAnalyticRate(t, 1000, 11, wfgen.Spec{Width: 8, Depth: 4, CV: 0.4, FS: "0", Payload: "0"})
	if free != 1 {
		t.Errorf("contention-free corpus analytic rate = %.3f, want 1.0", free)
	}
	heavy := corpusAnalyticRate(t, 1000, 11, wfgen.Spec{Width: 8, Depth: 4, CV: 0.4, Payload: "1 GB"})
	if heavy != 0 {
		t.Errorf("payload corpus analytic rate = %.3f, want 0 (FS flows disqualify)", heavy)
	}
	t.Logf("analytic fast-path hit rate: contention-free template %.0f%%, 1 GB payload template %.0f%%",
		free*100, heavy*100)
}

// The batch knob must normalize out of the content-addressable cache key,
// like the worker count: a batched and an unbatched spec hit the same
// cache entry in the analysis service.
func TestSpecCanonicalNormalizesBatch(t *testing.T) {
	a := &Spec{Kind: "corpus", Machine: "perlmutter", Count: 10, Seed: 1,
		Template: &wfgen.Spec{Width: 2, Depth: 2}}
	b := *a
	b.Workers = 8
	b.Batch = 256
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical bytes differ:\n%s\nvs\n%s", ca, cb)
	}
}
