package study

import (
	"context"
	"testing"

	"wroofline/internal/failure"
	"wroofline/internal/wfgen"
)

// streamSpecs covers every streaming study kind with an ensemble large
// enough that the throttle emits several snapshots.
func streamSpecs() map[string]*Spec {
	return map[string]*Spec{
		"montecarlo": {
			Kind: "montecarlo", Case: "lcls-cori", Trials: 192, Seed: 9,
			Workers: 4, Batch: 16,
			Sampler: &SamplerSpec{Model: "twostate", Base: "1 GB/s",
				Degraded: "0.2 GB/s", PBad: 0.4},
		},
		"failures": {
			Kind: "failures", Case: "lcls-cori", Trials: 96, Seed: 7,
			Workers: 4, Batch: 8,
			Failure: &failure.Spec{
				TaskFailProb: 0.05,
				RestageRate:  "1 GB/s",
				Retry:        &failure.RetrySpec{MaxAttempts: 5, BackoffSeconds: 1, BackoffFactor: 2},
			},
		},
		"corpus": {
			Kind: "corpus", Machine: "perlmutter-numa", Count: 80, Seed: 11,
			Workers: 4, Batch: 8,
			Template: &wfgen.Spec{Width: 5, Depth: 3, CV: 0.4, Payload: "512 MB"},
		},
	}
}

// TestRunStreamDifferential is the byte-identity contract behind streaming
// delivery: for every ensemble kind, RunStream's final tables render to
// exactly the bytes Run produces, and the progress snapshots are strictly
// increasing prefixes that never reach the total (the final aggregate is
// the tables, not an event).
func TestRunStreamDifferential(t *testing.T) {
	for kind, spec := range streamSpecs() {
		t.Run(kind, func(t *testing.T) {
			want, err := Run(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			var events []Progress
			got, err := RunStream(context.Background(), spec, func(p Progress) {
				events = append(events, p)
			})
			if err != nil {
				t.Fatal(err)
			}
			if a, b := renderTables(t, got), renderTables(t, want); a != b {
				t.Fatalf("streamed tables differ from buffered:\n%s\nvs\n%s", a, b)
			}
			if len(events) == 0 {
				t.Fatal("no progress events for a multi-chunk ensemble")
			}
			total := spec.Trials
			if spec.Kind == "corpus" {
				total = spec.Count
			}
			for i, p := range events {
				if p.Total != total {
					t.Errorf("event %d: total = %d, want %d", i, p.Total, total)
				}
				if p.Done <= 0 || p.Done >= total {
					t.Errorf("event %d: done = %d, want in (0, %d)", i, p.Done, total)
				}
				if i > 0 && p.Done <= events[i-1].Done {
					t.Errorf("done not strictly increasing: %d then %d", events[i-1].Done, p.Done)
				}
				if p.Summary.N != p.Done {
					t.Errorf("event %d: summary over %d samples, done = %d", i, p.Summary.N, p.Done)
				}
				if p.Summary.Min > p.Summary.P50 || p.Summary.P50 > p.Summary.P99 || p.Summary.P99 > p.Summary.Max {
					t.Errorf("event %d: summary not ordered: %+v", i, p.Summary)
				}
			}
		})
	}
}

// TestRunStreamPrefixDeterminism pins the property that makes snapshots
// meaningful: because the prefix is always trials [0, done) under
// deterministic per-trial seeding, the same Done value carries the same
// Summary at any worker count or batch geometry.
func TestRunStreamPrefixDeterminism(t *testing.T) {
	collect := func(workers, batch int) map[int]Progress {
		spec := streamSpecs()["montecarlo"]
		spec.Workers, spec.Batch = workers, batch
		byDone := map[int]Progress{}
		if _, err := RunStream(context.Background(), spec, func(p Progress) {
			byDone[p.Done] = p
		}); err != nil {
			t.Fatal(err)
		}
		return byDone
	}
	a, b := collect(1, 16), collect(8, 16)
	common := 0
	for done, pa := range a {
		pb, ok := b[done]
		if !ok {
			continue
		}
		common++
		if pa.Summary != pb.Summary {
			t.Errorf("done=%d: summary differs across worker counts:\n%+v\nvs\n%+v",
				done, pa.Summary, pb.Summary)
		}
	}
	if common == 0 {
		t.Fatal("no common Done values across worker counts; cannot compare")
	}
}

// TestRunStreamNonEnsembleKinds checks grid and survey run through
// RunStream without emitting (they have no trial frontier) and unknown
// kinds still fail.
func TestRunStreamNonEnsembleKinds(t *testing.T) {
	spec := &Spec{Kind: "grid", Case: "lcls-cori", P: 0.5,
		WallFactors: []float64{1, 2}}
	calls := 0
	tables, err := RunStream(context.Background(), spec, func(Progress) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Error("grid produced no tables")
	}
	if calls != 0 {
		t.Errorf("grid emitted %d progress events, want 0", calls)
	}
	if _, err := RunStream(context.Background(), &Spec{Kind: "quantum"}, nil); err == nil {
		t.Error("unknown kind accepted")
	}
}
