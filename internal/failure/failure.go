// Package failure models task and node faults for the workflow toolkit.
// The paper's Workflow Roofline bounds assume every task runs once and
// succeeds, but the workflows it models (LCLS streaming, BerkeleyGW
// ensembles) run for hours on thousands of nodes where failures are routine
// — and failure/retry directly moves the achieved TPS point relative to the
// ceilings.
//
// The package defines deterministic, seedable fault processes:
//
//   - a per-attempt task failure probability,
//   - per-node MTBF with exponential interarrival (failed nodes return to
//     service after a repair time), and
//   - a payload-size-dependent restage cost paid before a retry (re-staging
//     the task's external/FS input after a failure).
//
// plus a retry policy: bounded attempts, exponential backoff with jitter,
// and optional checkpoint/restart (retries resume from completed work,
// paying a restart overhead proportional to it).
//
// Everything is driven by splitmix64 streams keyed on (seed, task id), so a
// simulation draws the same fault sequence for a task regardless of event
// interleaving, worker count, or which other tasks exist — the same
// discipline internal/sweep uses for ensemble trials.
package failure

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"wroofline/internal/units"
)

// Spec is the JSON-facing failure-model configuration, shared by the wfsim
// flags, wfsweep/wfserved study specs, and the /v1/model endpoint. All
// fields are optional; the zero Spec compiles to a disabled model.
type Spec struct {
	// TaskFailProb is the per-attempt probability that a task attempt fails
	// partway through, in [0, 1).
	TaskFailProb float64 `json:"task_fail_prob,omitempty"`
	// NodeMTBFSeconds is the per-node mean time between failures; the
	// aggregate failure process over N nodes is exponential with mean
	// MTBF/N. Zero disables node failures.
	NodeMTBFSeconds float64 `json:"node_mtbf_seconds,omitempty"`
	// NodeRepairSeconds is how long a failed node stays out of service
	// (default 60 when node failures are enabled).
	NodeRepairSeconds float64 `json:"node_repair_seconds,omitempty"`
	// RestageRate is the byte rate (e.g. "1 GB/s") at which a failed task's
	// external+FS payload is re-staged before its retry; empty means no
	// restage cost.
	RestageRate string `json:"restage_rate,omitempty"`
	// Seed seeds every fault stream. Two runs with equal seeds draw
	// identical fault sequences.
	Seed uint64 `json:"seed,omitempty"`
	// Retry tunes the retry policy; nil takes every default.
	Retry *RetrySpec `json:"retry,omitempty"`
}

// RetrySpec is the JSON retry policy.
type RetrySpec struct {
	// MaxAttempts bounds attempts per task (default 5). A task that fails
	// on its last attempt fails permanently.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// BackoffSeconds is the base backoff before the first retry (default 1).
	BackoffSeconds float64 `json:"backoff_seconds,omitempty"`
	// BackoffFactor multiplies the backoff per successive failure
	// (default 2).
	BackoffFactor float64 `json:"backoff_factor,omitempty"`
	// BackoffCapSeconds caps the backoff (default 60).
	BackoffCapSeconds float64 `json:"backoff_cap_seconds,omitempty"`
	// JitterFrac randomizes the backoff: a delay d becomes uniform in
	// [d*(1-jitter), d]. In [0, 1]; zero means no jitter.
	JitterFrac float64 `json:"jitter_frac,omitempty"`
	// Checkpoint makes retries resume from the work completed before the
	// failure instead of re-running the task from scratch.
	Checkpoint bool `json:"checkpoint,omitempty"`
	// CheckpointOverhead is the restart cost of a checkpointed retry as a
	// fraction of the completed work re-processed on restart, in [0, 1].
	CheckpointOverhead float64 `json:"checkpoint_overhead,omitempty"`
}

// ParseSpec strictly decodes a failure spec: unknown fields are errors, so
// typos in hand-written specs fail loudly instead of silently simulating a
// failure-free system.
func ParseSpec(data []byte) (*Spec, error) {
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("parse failure spec: %w", err)
	}
	return &spec, nil
}

// Default retry-policy values.
const (
	DefaultMaxAttempts       = 5
	DefaultBackoffSeconds    = 1.0
	DefaultBackoffFactor     = 2.0
	DefaultBackoffCapSeconds = 60.0
	DefaultRepairSeconds     = 60.0
)

// Retry is the compiled retry policy.
type Retry struct {
	MaxAttempts        int
	BackoffSeconds     float64
	BackoffFactor      float64
	BackoffCapSeconds  float64
	JitterFrac         float64
	Checkpoint         bool
	CheckpointOverhead float64
}

// Delay returns the backoff before the retry that follows the failures-th
// consecutive failure (failures >= 1). u in [0, 1) supplies the jitter draw;
// it is ignored when JitterFrac is zero so jitter-free policies consume no
// randomness beyond the fault draws themselves.
func (r Retry) Delay(failures int, u float64) float64 {
	if failures < 1 {
		failures = 1
	}
	d := r.BackoffSeconds * math.Pow(r.BackoffFactor, float64(failures-1))
	// A non-positive cap means uncapped, so hand-built policies (which skip
	// Compile's defaulting) don't silently collapse every delay to zero.
	if r.BackoffCapSeconds > 0 && d > r.BackoffCapSeconds {
		d = r.BackoffCapSeconds
	}
	if r.JitterFrac > 0 {
		d *= 1 - r.JitterFrac*u
	}
	return d
}

// Model is the compiled, validated failure model consumed by internal/sim
// and internal/exec.
type Model struct {
	// TaskFailProb is the per-attempt failure probability.
	TaskFailProb float64
	// NodeMTBF and NodeRepair parameterize the node fault process (seconds);
	// NodeMTBF zero disables it.
	NodeMTBF   float64
	NodeRepair float64
	// RestageBytesPerSec converts a failed task's staged payload into a
	// restage delay; zero means no restage cost.
	RestageBytesPerSec float64
	// Seed keys every fault stream.
	Seed uint64
	// Retry is the retry policy.
	Retry Retry
}

// Compile validates the spec, applies defaults, and parses the unit strings.
func (s *Spec) Compile() (*Model, error) {
	if s == nil {
		s = &Spec{}
	}
	if s.TaskFailProb < 0 || s.TaskFailProb >= 1 || math.IsNaN(s.TaskFailProb) {
		return nil, fmt.Errorf("failure: task_fail_prob %v outside [0, 1)", s.TaskFailProb)
	}
	if s.NodeMTBFSeconds < 0 || math.IsNaN(s.NodeMTBFSeconds) || math.IsInf(s.NodeMTBFSeconds, 0) {
		return nil, fmt.Errorf("failure: node_mtbf_seconds %v must be non-negative and finite", s.NodeMTBFSeconds)
	}
	if s.NodeRepairSeconds < 0 || math.IsNaN(s.NodeRepairSeconds) || math.IsInf(s.NodeRepairSeconds, 0) {
		return nil, fmt.Errorf("failure: node_repair_seconds %v must be non-negative and finite", s.NodeRepairSeconds)
	}
	m := &Model{
		TaskFailProb: s.TaskFailProb,
		NodeMTBF:     s.NodeMTBFSeconds,
		NodeRepair:   s.NodeRepairSeconds,
		Seed:         s.Seed,
		Retry: Retry{
			MaxAttempts:       DefaultMaxAttempts,
			BackoffSeconds:    DefaultBackoffSeconds,
			BackoffFactor:     DefaultBackoffFactor,
			BackoffCapSeconds: DefaultBackoffCapSeconds,
		},
	}
	if m.NodeMTBF > 0 && m.NodeRepair == 0 {
		m.NodeRepair = DefaultRepairSeconds
	}
	if s.RestageRate != "" {
		rate, err := units.ParseByteRate(s.RestageRate)
		if err != nil {
			return nil, fmt.Errorf("failure: restage_rate: %w", err)
		}
		if rate <= 0 {
			return nil, fmt.Errorf("failure: restage_rate %v must be positive", s.RestageRate)
		}
		m.RestageBytesPerSec = float64(rate)
	}
	if r := s.Retry; r != nil {
		if r.MaxAttempts < 0 {
			return nil, fmt.Errorf("failure: retry max_attempts %d must be non-negative", r.MaxAttempts)
		}
		if r.MaxAttempts > 0 {
			m.Retry.MaxAttempts = r.MaxAttempts
		}
		if r.BackoffSeconds < 0 || math.IsNaN(r.BackoffSeconds) || math.IsInf(r.BackoffSeconds, 0) {
			return nil, fmt.Errorf("failure: retry backoff_seconds %v must be non-negative and finite", r.BackoffSeconds)
		}
		if r.BackoffSeconds > 0 {
			m.Retry.BackoffSeconds = r.BackoffSeconds
		}
		if r.BackoffFactor < 0 || math.IsNaN(r.BackoffFactor) || math.IsInf(r.BackoffFactor, 0) {
			return nil, fmt.Errorf("failure: retry backoff_factor %v must be non-negative and finite", r.BackoffFactor)
		}
		if r.BackoffFactor > 0 {
			m.Retry.BackoffFactor = r.BackoffFactor
		}
		if r.BackoffCapSeconds < 0 || math.IsNaN(r.BackoffCapSeconds) || math.IsInf(r.BackoffCapSeconds, 0) {
			return nil, fmt.Errorf("failure: retry backoff_cap_seconds %v must be non-negative and finite", r.BackoffCapSeconds)
		}
		if r.BackoffCapSeconds > 0 {
			m.Retry.BackoffCapSeconds = r.BackoffCapSeconds
		}
		if r.JitterFrac < 0 || r.JitterFrac > 1 || math.IsNaN(r.JitterFrac) {
			return nil, fmt.Errorf("failure: retry jitter_frac %v outside [0, 1]", r.JitterFrac)
		}
		m.Retry.JitterFrac = r.JitterFrac
		if r.CheckpointOverhead < 0 || r.CheckpointOverhead > 1 || math.IsNaN(r.CheckpointOverhead) {
			return nil, fmt.Errorf("failure: retry checkpoint_overhead %v outside [0, 1]", r.CheckpointOverhead)
		}
		m.Retry.Checkpoint = r.Checkpoint
		m.Retry.CheckpointOverhead = r.CheckpointOverhead
	}
	return m, nil
}

// Enabled reports whether the model injects any faults. A disabled model
// must leave simulations bit-identical to runs without one.
func (m *Model) Enabled() bool {
	return m != nil && (m.TaskFailProb > 0 || m.NodeMTBF > 0)
}

// Stream is a splitmix64 sequence generator — the same finalizer
// internal/sweep uses for trial seeding, here iterated as a stream. It is
// deliberately tiny and allocation-free: simulations create one stream per
// task.
type Stream struct {
	state uint64
}

// NewStream returns a stream seeded with seed.
func NewStream(seed uint64) *Stream { return &Stream{state: seed} }

// Uint64 advances the stream (splitmix64 step).
func (s *Stream) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponential draw with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	return -mean * math.Log1p(-s.Float64())
}

// TaskStream derives the fault stream for one task. The task id is folded
// into the seed with FNV-1a, so a task's fault sequence depends only on
// (seed, id) — never on event interleaving or which other tasks exist.
func TaskStream(seed uint64, taskID string) *Stream {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(taskID); i++ {
		h ^= uint64(taskID[i])
		h *= fnvPrime
	}
	return NewStream(seed ^ h)
}

// NodeStream derives the node-fault process stream, kept separate from task
// streams so enabling node failures never perturbs task fault draws.
func NodeStream(seed uint64) *Stream {
	return NewStream(seed ^ 0xA24BAED4963EE407)
}

// Analysis is the first-order analytic summary of a failure model, attached
// to /v1/model responses. The expectations treat failure points as uniform
// over an attempt (a failed attempt wastes half its planned work on
// average) and condition on eventual success, which dominates for the small
// failure probabilities the model targets.
type Analysis struct {
	// TaskFailProb and MaxAttempts echo the policy.
	TaskFailProb float64 `json:"task_fail_prob"`
	MaxAttempts  int     `json:"max_attempts"`
	// SuccessProb is the probability a task completes within MaxAttempts.
	SuccessProb float64 `json:"success_prob"`
	// ExpectedAttempts is the mean attempt count per task.
	ExpectedAttempts float64 `json:"expected_attempts"`
	// ExpectedWorkFactor is the mean executed work per task relative to a
	// failure-free run; the achieved-TPS point degrades by this factor.
	ExpectedWorkFactor float64 `json:"expected_work_factor"`
	// EffectiveTPS is the wall bound divided by the work factor — the
	// failure-adjusted ceiling (omitted when no bound was supplied).
	EffectiveTPS float64 `json:"effective_tps,omitempty"`
}

// Analyze evaluates the analytic expectations against an attainable-TPS
// bound (pass 0 to skip the effective-TPS projection).
func (m *Model) Analyze(boundTPS float64) Analysis {
	p := m.TaskFailProb
	k := m.Retry.MaxAttempts
	a := Analysis{
		TaskFailProb:       p,
		MaxAttempts:        k,
		SuccessProb:        1,
		ExpectedAttempts:   1,
		ExpectedWorkFactor: 1,
	}
	if p > 0 && k > 0 {
		pk := math.Pow(p, float64(k))
		a.SuccessProb = 1 - pk
		// Truncated geometric: E[A] = (1 - p^k) / (1 - p).
		a.ExpectedAttempts = (1 - pk) / (1 - p)
		// Each failed attempt wastes half its work on average; checkpointed
		// retries only re-pay the restart overhead on that completed half.
		waste := 0.5
		if m.Retry.Checkpoint {
			waste = 0.5 * m.Retry.CheckpointOverhead
		}
		a.ExpectedWorkFactor = 1 + waste*(a.ExpectedAttempts-1)
	}
	if boundTPS > 0 && a.ExpectedWorkFactor > 0 {
		a.EffectiveTPS = boundTPS / a.ExpectedWorkFactor
	}
	return a
}
