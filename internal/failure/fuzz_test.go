package failure

import "testing"

// FuzzParse exercises the failure-spec JSON parser: it must never panic, and
// any spec it accepts must either compile cleanly or be rejected by Compile
// with an error (never a crash). Round-trip stability is not required —
// Compile owns normalization — but parse-accepted specs must re-parse.
func FuzzParse(f *testing.F) {
	f.Add(`{"task_fail_prob": 0.02}`)
	f.Add(`{"task_fail_prob": 0.05, "node_mtbf_seconds": 3600, "node_repair_seconds": 120}`)
	f.Add(`{"restage_rate": "1 GB/s", "seed": 7, "retry": {"max_attempts": 3, "backoff_seconds": 0.5}}`)
	f.Add(`{"retry": {"checkpoint": true, "checkpoint_overhead": 0.1, "jitter_frac": 0.25}}`)
	f.Add(`{}`)
	f.Add(`{"task_fail_prob": 1e308}`)
	f.Fuzz(func(t *testing.T, data string) {
		spec, err := ParseSpec([]byte(data))
		if err != nil {
			return
		}
		m, err := spec.Compile()
		if err != nil {
			return
		}
		// Compiled models must be safe to evaluate.
		_ = m.Enabled()
		a := m.Analyze(1)
		if a.ExpectedAttempts < 1 || a.ExpectedWorkFactor < 1 {
			t.Fatalf("compiled model %+v produced sub-unit expectations %+v", m, a)
		}
	})
}
