package failure

import (
	"math"
	"testing"
)

func TestParseSpecStrict(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"task_fail_prob": 0.02, "retry": {"max_attempts": 3}}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.TaskFailProb != 0.02 || spec.Retry.MaxAttempts != 3 {
		t.Fatalf("parsed %+v", spec)
	}
	if _, err := ParseSpec([]byte(`{"task_fail_probability": 0.02}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestCompileDefaultsAndValidation(t *testing.T) {
	m, err := (&Spec{TaskFailProb: 0.05}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if m.Retry.MaxAttempts != DefaultMaxAttempts ||
		m.Retry.BackoffSeconds != DefaultBackoffSeconds ||
		m.Retry.BackoffFactor != DefaultBackoffFactor ||
		m.Retry.BackoffCapSeconds != DefaultBackoffCapSeconds {
		t.Fatalf("defaults not applied: %+v", m.Retry)
	}
	if !m.Enabled() {
		t.Fatal("5%% task failure should enable the model")
	}
	if m0, err := (&Spec{}).Compile(); err != nil || m0.Enabled() {
		t.Fatalf("zero spec should compile disabled: %+v, %v", m0, err)
	}
	// Node failures default the repair time.
	mn, err := (&Spec{NodeMTBFSeconds: 3600}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if mn.NodeRepair != DefaultRepairSeconds {
		t.Fatalf("repair default = %v", mn.NodeRepair)
	}
	// Restage rate parses units.
	mr, err := (&Spec{TaskFailProb: 0.01, RestageRate: "1 GB/s"}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if mr.RestageBytesPerSec != 1e9 {
		t.Fatalf("restage rate = %v", mr.RestageBytesPerSec)
	}

	bad := []*Spec{
		{TaskFailProb: -0.1},
		{TaskFailProb: 1},
		{TaskFailProb: math.NaN()},
		{NodeMTBFSeconds: -1},
		{NodeRepairSeconds: math.Inf(1)},
		{RestageRate: "fast"},
		{Retry: &RetrySpec{MaxAttempts: -1}},
		{Retry: &RetrySpec{JitterFrac: 1.5}},
		{Retry: &RetrySpec{CheckpointOverhead: 2}},
		{Retry: &RetrySpec{BackoffFactor: math.NaN()}},
	}
	for i, s := range bad {
		if _, err := s.Compile(); err == nil {
			t.Errorf("bad spec %d compiled: %+v", i, s)
		}
	}
}

func TestRetryDelay(t *testing.T) {
	r := Retry{MaxAttempts: 5, BackoffSeconds: 1, BackoffFactor: 2, BackoffCapSeconds: 60}
	for i, want := range []float64{1, 2, 4, 8, 16, 32, 60, 60} {
		if got := r.Delay(i+1, 0); got != want {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, want)
		}
	}
	// Jitter scales the delay into [d*(1-j), d].
	r.JitterFrac = 0.5
	if got := r.Delay(1, 0); got != 1 {
		t.Errorf("jitter with u=0 should keep the full delay, got %v", got)
	}
	if got := r.Delay(1, 0.999999); got >= 1 || got < 0.5 {
		t.Errorf("jitter with u~1 should approach d/2, got %v", got)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(42), NewStream(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at draw %d: %x vs %x", i, av, bv)
		}
	}
	// Different seeds diverge immediately (overwhelmingly likely).
	if NewStream(1).Uint64() == NewStream(2).Uint64() {
		t.Fatal("distinct seeds produced the same first draw")
	}
	// Task streams depend only on (seed, id).
	if TaskStream(7, "A").Uint64() != TaskStream(7, "A").Uint64() {
		t.Fatal("task stream not reproducible")
	}
	if TaskStream(7, "A").Uint64() == TaskStream(7, "B").Uint64() {
		t.Fatal("distinct task ids share a stream")
	}
	if TaskStream(7, "A").Uint64() == NodeStream(7).Uint64() {
		t.Fatal("node stream collides with a task stream")
	}
}

func TestStreamDistributions(t *testing.T) {
	s := NewStream(123)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		u := s.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	sum = 0
	for i := 0; i < n; i++ {
		v := s.Exp(10)
		if v < 0 {
			t.Fatalf("Exp draw negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-10) > 0.5 {
		t.Errorf("exponential mean = %v, want ~10", mean)
	}
}

func TestAnalyze(t *testing.T) {
	m, err := (&Spec{TaskFailProb: 0.1, Retry: &RetrySpec{MaxAttempts: 3}}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	a := m.Analyze(100)
	if want := 1 - 0.001; math.Abs(a.SuccessProb-want) > 1e-12 {
		t.Errorf("SuccessProb = %v, want %v", a.SuccessProb, want)
	}
	if want := (1 - 0.001) / 0.9; math.Abs(a.ExpectedAttempts-want) > 1e-12 {
		t.Errorf("ExpectedAttempts = %v, want %v", a.ExpectedAttempts, want)
	}
	if a.ExpectedWorkFactor <= 1 || a.EffectiveTPS >= 100 || a.EffectiveTPS <= 0 {
		t.Errorf("work factor %v / effective TPS %v implausible", a.ExpectedWorkFactor, a.EffectiveTPS)
	}
	// Checkpointing strictly reduces the work factor.
	mc, err := (&Spec{TaskFailProb: 0.1,
		Retry: &RetrySpec{MaxAttempts: 3, Checkpoint: true, CheckpointOverhead: 0.1}}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if ac := mc.Analyze(100); ac.ExpectedWorkFactor >= a.ExpectedWorkFactor {
		t.Errorf("checkpointed work factor %v not below %v", ac.ExpectedWorkFactor, a.ExpectedWorkFactor)
	}
	// Disabled model is the identity.
	z, _ := (&Spec{}).Compile()
	if az := z.Analyze(100); az.ExpectedAttempts != 1 || az.ExpectedWorkFactor != 1 || az.EffectiveTPS != 100 {
		t.Errorf("disabled analysis = %+v", az)
	}
}
