// Package iolog ingests lightweight I/O traces and aggregates them into the
// work vectors the Workflow Roofline methodology consumes. The paper's
// Table I marks several characterizations "Measured" (via tools like
// Darshan); this package is the native equivalent: a line-oriented record
// format, a streaming parser, and per-task aggregation into
// workflow.Work components plus effective-bandwidth estimates that feed
// internal/calibrate.
//
// Record format (one per line, whitespace-separated):
//
//	<start-seconds> <task-id> <op> <bytes>
//
// where op is one of read, write (file system), ext_read, ext_write
// (external staging), send, recv (network), h2d, d2h (PCIe), or a
// "dur <seconds>" record that adds measured wall time to the task. Lines
// starting with '#' are comments.
package iolog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"wroofline/internal/calibrate"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// Op is a traced operation kind.
type Op string

// Operations.
const (
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpExtRead  Op = "ext_read"
	OpExtWrite Op = "ext_write"
	OpSend     Op = "send"
	OpRecv     Op = "recv"
	OpH2D      Op = "h2d"
	OpD2H      Op = "d2h"
	OpDur      Op = "dur"
)

// validOps maps every accepted operation.
var validOps = map[Op]bool{
	OpRead: true, OpWrite: true, OpExtRead: true, OpExtWrite: true,
	OpSend: true, OpRecv: true, OpH2D: true, OpD2H: true, OpDur: true,
}

// Record is one trace line.
type Record struct {
	// Start is the record timestamp in seconds from trace start.
	Start float64
	// Task is the owning task id.
	Task string
	// Op is the operation.
	Op Op
	// Value is bytes for transfer ops and seconds for dur records.
	Value float64
}

// Parse reads records from r, in any order. It returns them sorted by
// (Start, Task).
func Parse(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("iolog: line %d: want '<start> <task> <op> <value>', got %q", lineNo, line)
		}
		start, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || start < 0 {
			return nil, fmt.Errorf("iolog: line %d: bad start time %q", lineNo, fields[0])
		}
		task := fields[1]
		if task == "" {
			return nil, fmt.Errorf("iolog: line %d: empty task id", lineNo)
		}
		op := Op(fields[2])
		if !validOps[op] {
			return nil, fmt.Errorf("iolog: line %d: unknown op %q", lineNo, fields[2])
		}
		v, err := strconv.ParseFloat(fields[3], 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("iolog: line %d: bad value %q", lineNo, fields[3])
		}
		out = append(out, Record{Start: start, Task: task, Op: op, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("iolog: %w", err)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Task < out[j].Task
	})
	return out, nil
}

// TaskProfile aggregates one task's traced activity.
type TaskProfile struct {
	// Work holds the aggregated byte volumes by component.
	Work workflow.Work
	// MeasuredSeconds sums the task's dur records.
	MeasuredSeconds float64
	// Records counts the task's trace lines.
	Records int
}

// Aggregate groups records by task and accumulates work vectors: read/write
// into FSBytes, ext_* into ExternalBytes, send/recv into NetworkBytes,
// h2d/d2h into PCIeBytes, dur into MeasuredSeconds.
func Aggregate(records []Record) map[string]*TaskProfile {
	out := make(map[string]*TaskProfile)
	for _, rec := range records {
		p, ok := out[rec.Task]
		if !ok {
			p = &TaskProfile{}
			out[rec.Task] = p
		}
		p.Records++
		switch rec.Op {
		case OpRead, OpWrite:
			p.Work.FSBytes += units.Bytes(rec.Value)
		case OpExtRead, OpExtWrite:
			p.Work.ExternalBytes += units.Bytes(rec.Value)
		case OpSend, OpRecv:
			p.Work.NetworkBytes += units.Bytes(rec.Value)
		case OpH2D, OpD2H:
			p.Work.PCIeBytes += units.Bytes(rec.Value)
		case OpDur:
			p.MeasuredSeconds += rec.Value
		}
	}
	return out
}

// ApplyToWorkflow copies aggregated profiles onto matching workflow tasks
// (adding traced volumes to the characterized work and setting
// MeasuredSeconds when present). Tasks absent from the trace are untouched;
// trace tasks absent from the workflow are an error, catching id typos.
func ApplyToWorkflow(w *workflow.Workflow, profiles map[string]*TaskProfile) error {
	for id, p := range profiles {
		t, err := w.Task(id)
		if err != nil {
			return fmt.Errorf("iolog: trace references unknown task %q", id)
		}
		t.Work = t.Work.Add(p.Work)
		if p.MeasuredSeconds > 0 {
			t.MeasuredSeconds = p.MeasuredSeconds
		}
	}
	return nil
}

// BandwidthObservations pairs each task's traced volume on one component
// with its measured duration, producing calibrate inputs. component selects
// which Work field to read: "fs", "external", "network", or "pcie". Tasks
// without both a positive volume and a positive duration are skipped.
func BandwidthObservations(profiles map[string]*TaskProfile, component string) ([]calibrate.BandwidthObs, error) {
	pick := func(w workflow.Work) units.Bytes {
		switch component {
		case "fs":
			return w.FSBytes
		case "external":
			return w.ExternalBytes
		case "network":
			return w.NetworkBytes
		case "pcie":
			return w.PCIeBytes
		}
		return -1
	}
	if pick(workflow.Work{}) < 0 {
		return nil, fmt.Errorf("iolog: unknown component %q (want fs, external, network, or pcie)", component)
	}
	// Deterministic order.
	ids := make([]string, 0, len(profiles))
	for id := range profiles {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []calibrate.BandwidthObs
	for _, id := range ids {
		p := profiles[id]
		vol := pick(p.Work)
		if vol > 0 && p.MeasuredSeconds > 0 {
			out = append(out, calibrate.BandwidthObs{Bytes: vol, Seconds: p.MeasuredSeconds})
		}
	}
	return out, nil
}
