package iolog

import (
	"math"
	"strings"
	"testing"

	"wroofline/internal/calibrate"
	"wroofline/internal/machine"
	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

const sample = `
# LCLS-like trace: each analysis task stages 1 TB in, reads it back from
# the FS, and reports its duration.
0.0   A ext_read 1e12
0.0   B ext_read 1e12
10.5  A read     1e12
11.0  B read     1e12
500   A send     2e9
1000  A dur      1020
1000  B dur      1015
1020  merge read 5e9
1020  merge dur  1
`

func TestParse(t *testing.T) {
	recs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 {
		t.Fatalf("records = %d", len(recs))
	}
	// Sorted by start time, then task.
	if recs[0].Task != "A" || recs[1].Task != "B" {
		t.Errorf("first records: %+v %+v", recs[0], recs[1])
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Errorf("records not sorted at %d", i)
		}
	}
	if recs[0].Op != OpExtRead || recs[0].Value != 1e12 {
		t.Errorf("first record = %+v", recs[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"short line": "0 A read\n",
		"long line":  "0 A read 5 extra\n",
		"bad start":  "x A read 5\n",
		"neg start":  "-1 A read 5\n",
		"unknown op": "0 A fly 5\n",
		"bad value":  "0 A read lots\n",
		"neg value":  "0 A read -5\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: should fail: %q", name, src)
		}
	}
	// Error carries the line number.
	_, err := Parse(strings.NewReader("0 A read 5\nbroken\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name the line: %v", err)
	}
}

func TestAggregate(t *testing.T) {
	recs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	profiles := Aggregate(recs)
	if len(profiles) != 3 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	a := profiles["A"]
	if a.Work.ExternalBytes != 1*units.TB {
		t.Errorf("A external = %v", float64(a.Work.ExternalBytes))
	}
	if a.Work.FSBytes != 1*units.TB {
		t.Errorf("A fs = %v", float64(a.Work.FSBytes))
	}
	if a.Work.NetworkBytes != 2*units.GB {
		t.Errorf("A network = %v", float64(a.Work.NetworkBytes))
	}
	if a.MeasuredSeconds != 1020 {
		t.Errorf("A measured = %v", a.MeasuredSeconds)
	}
	if a.Records != 4 {
		t.Errorf("A records = %d", a.Records)
	}
	m := profiles["merge"]
	if m.Work.FSBytes != 5*units.GB || m.MeasuredSeconds != 1 {
		t.Errorf("merge profile = %+v", m)
	}
}

func TestAggregatePCIe(t *testing.T) {
	recs, err := Parse(strings.NewReader("0 t h2d 80e9\n1 t d2h 20e9\n"))
	if err != nil {
		t.Fatal(err)
	}
	p := Aggregate(recs)["t"]
	if p.Work.PCIeBytes != 100*units.GB {
		t.Errorf("pcie = %v", float64(p.Work.PCIeBytes))
	}
}

func TestApplyToWorkflow(t *testing.T) {
	w := workflow.New("LCLS", machine.PartHaswell)
	for _, id := range []string{"A", "B", "merge"} {
		if err := w.AddTask(&workflow.Task{ID: id, Nodes: 1}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	profiles := Aggregate(recs)
	if err := ApplyToWorkflow(w, profiles); err != nil {
		t.Fatal(err)
	}
	a, err := w.Task("A")
	if err != nil {
		t.Fatal(err)
	}
	if a.Work.ExternalBytes != 1*units.TB || a.MeasuredSeconds != 1020 {
		t.Errorf("A after apply = %+v / %v", a.Work, a.MeasuredSeconds)
	}
	// Unknown task in the trace is an error.
	bad := map[string]*TaskProfile{"ghost": {}}
	if err := ApplyToWorkflow(w, bad); err == nil {
		t.Error("unknown trace task should fail")
	}
	// Applying adds to existing characterization.
	if err := ApplyToWorkflow(w, profiles); err != nil {
		t.Fatal(err)
	}
	if a.Work.ExternalBytes != 2*units.TB {
		t.Errorf("second apply should accumulate: %v", float64(a.Work.ExternalBytes))
	}
}

func TestBandwidthObservations(t *testing.T) {
	recs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	profiles := Aggregate(recs)
	obs, err := BandwidthObservations(profiles, "external")
	if err != nil {
		t.Fatal(err)
	}
	// A and B have external volume and duration; merge has neither.
	if len(obs) != 2 {
		t.Fatalf("observations = %d", len(obs))
	}
	rate, err := calibrate.FitBandwidth(obs)
	if err != nil {
		t.Fatal(err)
	}
	// ~1 TB over ~1020 s: close to the LCLS good-day 1 GB/s.
	if math.Abs(float64(rate)-0.98e9) > 0.05e9 {
		t.Errorf("fitted external rate = %v, want ~0.98e9", float64(rate))
	}
	if _, err := BandwidthObservations(profiles, "bogus"); err == nil {
		t.Error("unknown component should fail")
	}
	for _, comp := range []string{"fs", "network", "pcie"} {
		if _, err := BandwidthObservations(profiles, comp); err != nil {
			t.Errorf("component %q: %v", comp, err)
		}
	}
}

func TestCommentsAndBlank(t *testing.T) {
	recs, err := Parse(strings.NewReader("# hi\n\n   \n0 t read 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("records = %d", len(recs))
	}
}

// End to end: trace -> workflow characterization -> roofline model.
func TestTraceToModel(t *testing.T) {
	w := workflow.New("traced", machine.PartHaswell)
	for _, id := range []string{"A", "B", "merge"} {
		if err := w.AddTask(&workflow.Task{ID: id, Nodes: 32}); err != nil {
			t.Fatal(err)
		}
		if id != "merge" {
			continue
		}
	}
	for _, id := range []string{"A", "B"} {
		if err := w.AddDep(id, "merge"); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyToWorkflow(w, Aggregate(recs)); err != nil {
		t.Fatal(err)
	}
	a, err := w.Task("A")
	if err != nil {
		t.Fatal(err)
	}
	if a.Work.IsZero() {
		t.Fatal("trace should have characterized task A")
	}
	// The characterized workflow now has the aggregates the model needs.
	if w.MaxWorkPerTask().ExternalBytes != 1*units.TB {
		t.Errorf("max external = %v", float64(w.MaxWorkPerTask().ExternalBytes))
	}
}
