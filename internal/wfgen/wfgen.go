// Package wfgen generates synthetic workflow scenarios for corpus-scale
// roofline studies, in the spirit of WfBench's parameterized benchmarks:
// seeded, bit-reproducible DAGs drawn from a small catalog of topology
// families (chains, fan-outs, diamonds, and Montage/Epigenomics-like
// multi-stage shapes) with tunable width, depth, and per-task work
// distributions.
//
// Every family has a closed-form Shape — task count, maximum level width,
// and critical-path length in levels — which the property suite checks
// against the constructed DAG, so the generator is specified by invariants
// rather than by example.
//
// Determinism: all randomness comes from one splitmix64 stream seeded by
// Spec.Seed and consumed in a fixed construction order, so the same spec
// regenerates a byte-identical workflow on any platform at any GOMAXPROCS.
package wfgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"wroofline/internal/units"
	"wroofline/internal/workflow"
)

// MaxTasks caps how many tasks one spec may generate, so a hostile or
// fuzzed spec cannot request a multi-gigabyte workflow.
const MaxTasks = 1_000_000

// Spec parameterizes one generated workflow. The unit-string fields are
// per-task (or per-edge, for Payload) means; with a positive CV each task
// draws a mean-preserving lognormal factor around them.
type Spec struct {
	// Family selects the topology: "chain", "fanout", "diamond", "montage",
	// or "epigenomics".
	Family string `json:"family"`
	// Seed drives the generator's splitmix64 stream.
	Seed uint64 `json:"seed,omitempty"`
	// Width is the parallel width of the family (ignored by chain).
	// Default 4.
	Width int `json:"width,omitempty"`
	// Depth is the stage count for chain, diamond, and epigenomics
	// (ignored by fanout and montage). Default 3.
	Depth int `json:"depth,omitempty"`
	// Partition names the machine partition the workflow targets.
	// Default "cpu".
	Partition string `json:"partition,omitempty"`
	// NodesPerTask is each task's node requirement. Default 1.
	NodesPerTask int `json:"nodes_per_task,omitempty"`

	// Flops, Mem, Net are mean per-node work quantities (e.g. "200 GFLOP",
	// "50 GB"); FS is the mean per-task file-system volume. Empty strings
	// take the documented defaults; "0" disables a component.
	Flops string `json:"flops,omitempty"`
	Mem   string `json:"mem,omitempty"`
	Net   string `json:"net,omitempty"`
	FS    string `json:"fs,omitempty"`
	// Payload is the mean per-edge data-dependency volume; each edge adds
	// its drawn payload to the producer's and the consumer's FSBytes (the
	// producer writes it to the shared file system, the consumer reads it
	// back). Empty or "0" disables payloads.
	Payload string `json:"payload,omitempty"`
	// CV is the coefficient of variation of the lognormal work distribution
	// (the sigma of the underlying normal); 0 generates constant work.
	CV float64 `json:"cv,omitempty"`
}

// Shape is the closed-form structure of a generated DAG.
type Shape struct {
	// Tasks is the total task count.
	Tasks int
	// Width is the size of the widest level.
	Width int
	// Levels is the critical-path length counted in levels.
	Levels int
}

// Families lists the topology families in generation order.
func Families() []string {
	return []string{"chain", "fanout", "diamond", "montage", "epigenomics"}
}

// ParseSpec strictly decodes a generator spec: unknown fields are errors,
// and the decoded spec is validated.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("wfgen: decode spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Normalized returns a copy of the spec with every default applied — the
// effective spec that Validate, Shape, and Generate all operate on. It is
// exported so content-addressed caches can key on the effective value: two
// written specs that differ only by spelling out a default describe the
// same scenario and should share one cache entry.
func (s *Spec) Normalized() Spec {
	return s.normalized()
}

// normalized returns a copy with defaults applied; Validate, Shape, and
// Generate all see the same effective spec.
func (s *Spec) normalized() Spec {
	n := *s
	if n.Width == 0 {
		n.Width = 4
	}
	if n.Depth == 0 {
		n.Depth = 3
	}
	if n.Partition == "" {
		n.Partition = "cpu"
	}
	if n.NodesPerTask == 0 {
		n.NodesPerTask = 1
	}
	if n.Flops == "" {
		n.Flops = "200 GFLOP"
	}
	if n.Mem == "" {
		n.Mem = "50 GB"
	}
	if n.Net == "" {
		n.Net = "1 GB"
	}
	if n.FS == "" {
		n.FS = "10 GB"
	}
	return n
}

// Validate checks the spec against the family's structural requirements and
// the work-quantity grammar.
func (s *Spec) Validate() error {
	n := s.normalized()
	// Bound width and depth individually BEFORE the closed-form shape
	// arithmetic: products like w*d can wrap around int64 for absurd inputs,
	// sneaking a tiny (or negative) task count past the cap below while
	// Generate would still loop over the raw huge dimension.
	if n.Width < 1 || n.Width > MaxTasks {
		return fmt.Errorf("wfgen: width must be in [1,%d], got %d", MaxTasks, n.Width)
	}
	if n.Depth < 1 || n.Depth > MaxTasks {
		return fmt.Errorf("wfgen: depth must be in [1,%d], got %d", MaxTasks, n.Depth)
	}
	if n.NodesPerTask < 1 {
		return fmt.Errorf("wfgen: nodes per task must be positive, got %d", n.NodesPerTask)
	}
	if n.CV < 0 || n.CV > 4 {
		return fmt.Errorf("wfgen: cv %v outside [0,4]", n.CV)
	}
	if n.Family == "montage" && n.Width < 2 {
		return fmt.Errorf("wfgen: montage needs width >= 2, got %d", n.Width)
	}
	shape, err := n.shape()
	if err != nil {
		return err
	}
	if shape.Tasks > MaxTasks {
		return fmt.Errorf("wfgen: spec generates %d tasks, cap is %d", shape.Tasks, MaxTasks)
	}
	if _, err := units.ParseFlops(n.Flops); err != nil {
		return fmt.Errorf("wfgen: flops: %w", err)
	}
	for _, q := range []struct{ field, val string }{
		{"mem", n.Mem}, {"net", n.Net}, {"fs", n.FS},
	} {
		if _, err := units.ParseBytes(q.val); err != nil {
			return fmt.Errorf("wfgen: %s: %w", q.field, err)
		}
	}
	if n.Payload != "" {
		if _, err := units.ParseBytes(n.Payload); err != nil {
			return fmt.Errorf("wfgen: payload: %w", err)
		}
	}
	return nil
}

// Shape returns the closed-form structure the spec's family implies.
func (s *Spec) Shape() (Shape, error) {
	n := s.normalized()
	if err := s.Validate(); err != nil {
		return Shape{}, err
	}
	return n.shape()
}

// shape computes the family invariants on an already-normalized spec.
func (s *Spec) shape() (Shape, error) {
	w, d := s.Width, s.Depth
	switch s.Family {
	case "chain":
		return Shape{Tasks: d, Width: 1, Levels: d}, nil
	case "fanout":
		return Shape{Tasks: w + 2, Width: w, Levels: 3}, nil
	case "diamond":
		return Shape{Tasks: d * (w + 2), Width: w, Levels: 3 * d}, nil
	case "montage":
		return Shape{Tasks: 3*w + 4, Width: w, Levels: 8}, nil
	case "epigenomics":
		return Shape{Tasks: w*d + 4, Width: w, Levels: d + 4}, nil
	default:
		return Shape{}, fmt.Errorf("wfgen: unknown family %q (want %v)", s.Family, Families())
	}
}

// Generate builds the workflow the spec describes.
func Generate(s *Spec) (*workflow.Workflow, error) {
	n := s.normalized()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b, err := newBuilder(&n)
	if err != nil {
		return nil, err
	}
	switch n.Family {
	case "chain":
		err = b.chain()
	case "fanout":
		err = b.fanout()
	case "diamond":
		err = b.diamond()
	case "montage":
		err = b.montage()
	case "epigenomics":
		err = b.epigenomics()
	}
	if err != nil {
		return nil, err
	}
	return b.wf, nil
}

// builder accumulates one workflow. Task and edge creation draw from the
// stream in source order, which is what makes generation deterministic.
type builder struct {
	wf      *workflow.Workflow
	rng     *rng
	spec    *Spec
	flops   float64
	mem     float64
	net     float64
	fs      float64
	payload float64
}

func newBuilder(n *Spec) (*builder, error) {
	flops, err := units.ParseFlops(n.Flops)
	if err != nil {
		return nil, err
	}
	mem, err := units.ParseBytes(n.Mem)
	if err != nil {
		return nil, err
	}
	net, err := units.ParseBytes(n.Net)
	if err != nil {
		return nil, err
	}
	fs, err := units.ParseBytes(n.FS)
	if err != nil {
		return nil, err
	}
	var payload units.Bytes
	if n.Payload != "" {
		if payload, err = units.ParseBytes(n.Payload); err != nil {
			return nil, err
		}
	}
	name := fmt.Sprintf("gen-%s-w%d-d%d-s%d", n.Family, n.Width, n.Depth, n.Seed)
	return &builder{
		wf:      workflow.New(name, n.Partition),
		rng:     newRNG(n.Seed),
		spec:    n,
		flops:   float64(flops),
		mem:     float64(mem),
		net:     float64(net),
		fs:      float64(fs),
		payload: float64(payload),
	}, nil
}

// factor draws one mean-preserving lognormal multiplier: exp(sigma*z -
// sigma^2/2) has expectation 1 for any sigma. CV 0 draws nothing and keeps
// work constant.
func (b *builder) factor() float64 {
	sigma := b.spec.CV
	if sigma <= 0 {
		return 1
	}
	return math.Exp(sigma*b.rng.normal() - 0.5*sigma*sigma)
}

// task creates one task; all work components share one drawn factor, so a
// "big" task is big across the board.
func (b *builder) task(id string) error {
	f := b.factor()
	return b.wf.AddTask(&workflow.Task{
		ID:    id,
		Nodes: b.spec.NodesPerTask,
		Work: workflow.Work{
			Flops:        units.Flops(b.flops * f),
			MemBytes:     units.Bytes(b.mem * f),
			NetworkBytes: units.Bytes(b.net * f),
			FSBytes:      units.Bytes(b.fs * f),
		},
	})
}

// dep adds the edge and charges the drawn payload to both endpoints'
// file-system volume: the producer writes the intermediate to the shared
// file system and the consumer reads it back.
func (b *builder) dep(from, to string) error {
	if err := b.wf.AddDep(from, to); err != nil {
		return err
	}
	if b.payload <= 0 {
		return nil
	}
	bytes := units.Bytes(b.payload * b.factor())
	src, err := b.wf.Task(from)
	if err != nil {
		return err
	}
	dst, err := b.wf.Task(to)
	if err != nil {
		return err
	}
	src.Work.FSBytes += bytes
	dst.Work.FSBytes += bytes
	return nil
}

// chain: Depth tasks in a single line.
func (b *builder) chain() error {
	d := b.spec.Depth
	for i := 0; i < d; i++ {
		if err := b.task(fmt.Sprintf("t%04d", i)); err != nil {
			return err
		}
	}
	for i := 1; i < d; i++ {
		if err := b.dep(fmt.Sprintf("t%04d", i-1), fmt.Sprintf("t%04d", i)); err != nil {
			return err
		}
	}
	return nil
}

// fanout: source -> Width workers -> sink.
func (b *builder) fanout() error {
	if err := b.task("source"); err != nil {
		return err
	}
	w := b.spec.Width
	for i := 0; i < w; i++ {
		if err := b.task(fmt.Sprintf("work%04d", i)); err != nil {
			return err
		}
	}
	if err := b.task("sink"); err != nil {
		return err
	}
	for i := 0; i < w; i++ {
		id := fmt.Sprintf("work%04d", i)
		if err := b.dep("source", id); err != nil {
			return err
		}
		if err := b.dep(id, "sink"); err != nil {
			return err
		}
	}
	return nil
}

// diamond: Depth chained diamonds, each split -> Width branches -> merge.
func (b *builder) diamond() error {
	w, d := b.spec.Width, b.spec.Depth
	for k := 0; k < d; k++ {
		split := fmt.Sprintf("split%04d", k)
		merge := fmt.Sprintf("merge%04d", k)
		if err := b.task(split); err != nil {
			return err
		}
		for i := 0; i < w; i++ {
			if err := b.task(fmt.Sprintf("branch%04d_%04d", k, i)); err != nil {
				return err
			}
		}
		if err := b.task(merge); err != nil {
			return err
		}
		if k > 0 {
			if err := b.dep(fmt.Sprintf("merge%04d", k-1), split); err != nil {
				return err
			}
		}
		for i := 0; i < w; i++ {
			id := fmt.Sprintf("branch%04d_%04d", k, i)
			if err := b.dep(split, id); err != nil {
				return err
			}
			if err := b.dep(id, merge); err != nil {
				return err
			}
		}
	}
	return nil
}

// montage mirrors the classic mosaic pipeline: W projections, W-1 pairwise
// difference fits, one background model gathering them, W background
// corrections (each also re-reading its projection), then the serial
// imgtbl -> add -> shrink -> jpeg tail. 3W+4 tasks over 8 levels.
func (b *builder) montage() error {
	w := b.spec.Width
	for i := 0; i < w; i++ {
		if err := b.task(fmt.Sprintf("project%04d", i)); err != nil {
			return err
		}
	}
	for i := 0; i < w-1; i++ {
		if err := b.task(fmt.Sprintf("diff%04d", i)); err != nil {
			return err
		}
	}
	for _, id := range []string{"bgmodel"} {
		if err := b.task(id); err != nil {
			return err
		}
	}
	for i := 0; i < w; i++ {
		if err := b.task(fmt.Sprintf("background%04d", i)); err != nil {
			return err
		}
	}
	for _, id := range []string{"imgtbl", "add", "shrink", "jpeg"} {
		if err := b.task(id); err != nil {
			return err
		}
	}
	for i := 0; i < w-1; i++ {
		diff := fmt.Sprintf("diff%04d", i)
		if err := b.dep(fmt.Sprintf("project%04d", i), diff); err != nil {
			return err
		}
		if err := b.dep(fmt.Sprintf("project%04d", i+1), diff); err != nil {
			return err
		}
		if err := b.dep(diff, "bgmodel"); err != nil {
			return err
		}
	}
	for i := 0; i < w; i++ {
		bg := fmt.Sprintf("background%04d", i)
		if err := b.dep("bgmodel", bg); err != nil {
			return err
		}
		if err := b.dep(fmt.Sprintf("project%04d", i), bg); err != nil {
			return err
		}
		if err := b.dep(bg, "imgtbl"); err != nil {
			return err
		}
	}
	for _, e := range [][2]string{{"imgtbl", "add"}, {"add", "shrink"}, {"shrink", "jpeg"}} {
		if err := b.dep(e[0], e[1]); err != nil {
			return err
		}
	}
	return nil
}

// epigenomics mirrors the genome-pipeline shape: one split feeding Width
// independent Depth-stage lanes, then the serial merge -> index -> pileup
// tail. W*D+4 tasks over D+4 levels.
func (b *builder) epigenomics() error {
	w, d := b.spec.Width, b.spec.Depth
	if err := b.task("split"); err != nil {
		return err
	}
	for lane := 0; lane < w; lane++ {
		for stage := 0; stage < d; stage++ {
			if err := b.task(fmt.Sprintf("lane%04d_s%04d", lane, stage)); err != nil {
				return err
			}
		}
	}
	for _, id := range []string{"merge", "index", "pileup"} {
		if err := b.task(id); err != nil {
			return err
		}
	}
	for lane := 0; lane < w; lane++ {
		first := fmt.Sprintf("lane%04d_s%04d", lane, 0)
		if err := b.dep("split", first); err != nil {
			return err
		}
		for stage := 1; stage < d; stage++ {
			if err := b.dep(fmt.Sprintf("lane%04d_s%04d", lane, stage-1),
				fmt.Sprintf("lane%04d_s%04d", lane, stage)); err != nil {
				return err
			}
		}
		if err := b.dep(fmt.Sprintf("lane%04d_s%04d", lane, d-1), "merge"); err != nil {
			return err
		}
	}
	for _, e := range [][2]string{{"merge", "index"}, {"index", "pileup"}} {
		if err := b.dep(e[0], e[1]); err != nil {
			return err
		}
	}
	return nil
}
