package wfgen

import (
	"encoding/json"
	"strings"
	"testing"

	"wroofline/internal/units"
)

// Every family's generated DAG matches its closed-form shape at a few
// hand-picked sizes (the property suite covers the randomized space).
func TestFamilyShapes(t *testing.T) {
	for _, tc := range []struct {
		family        string
		width, depth  int
		tasks, levels int
	}{
		{"chain", 1, 7, 7, 7},
		{"fanout", 16, 1, 18, 3},
		{"diamond", 5, 3, 21, 9},
		{"montage", 4, 1, 16, 8},
		{"epigenomics", 3, 4, 16, 8},
	} {
		spec := &Spec{Family: tc.family, Width: tc.width, Depth: tc.depth, Seed: 1}
		shape, err := spec.Shape()
		if err != nil {
			t.Fatalf("%s: %v", tc.family, err)
		}
		if shape.Tasks != tc.tasks || shape.Levels != tc.levels {
			t.Errorf("%s shape = %+v, want tasks=%d levels=%d", tc.family, shape, tc.tasks, tc.levels)
		}
		wf, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.family, err)
		}
		if got := wf.TotalTasks(); got != tc.tasks {
			t.Errorf("%s tasks = %d, want %d", tc.family, got, tc.tasks)
		}
		levels, err := wf.Graph().CriticalPathLength()
		if err != nil {
			t.Fatalf("%s: %v", tc.family, err)
		}
		if levels != tc.levels {
			t.Errorf("%s levels = %d, want %d", tc.family, levels, tc.levels)
		}
	}
}

// CV 0 generates exactly the spec means, no randomness consumed.
func TestConstantWork(t *testing.T) {
	wf, err := Generate(&Spec{Family: "fanout", Width: 3, Seed: 9,
		Flops: "2 TFLOP", Mem: "100 GB", Net: "5 GB", FS: "20 GB"})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range wf.Tasks() {
		if task.Work.Flops != 2*units.TFLOP {
			t.Errorf("task %s flops = %v", task.ID, task.Work.Flops)
		}
		if task.Work.FSBytes != 20*units.GB {
			t.Errorf("task %s fs = %v", task.ID, task.Work.FSBytes)
		}
	}
}

// A positive CV preserves the mean approximately and varies tasks; payloads
// land on both edge endpoints.
func TestVariedWorkAndPayloads(t *testing.T) {
	wf, err := Generate(&Spec{Family: "fanout", Width: 64, Seed: 3, CV: 0.5,
		Flops: "1 TFLOP", Payload: "4 GB"})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	distinct := map[units.Flops]bool{}
	for _, task := range wf.Tasks() {
		sum += float64(task.Work.Flops)
		distinct[task.Work.Flops] = true
	}
	mean := sum / float64(wf.TotalTasks())
	if mean < 0.6e12 || mean > 1.6e12 {
		t.Errorf("mean flops = %v, want ~1e12", mean)
	}
	if len(distinct) < 10 {
		t.Errorf("only %d distinct flop values; CV should vary tasks", len(distinct))
	}
	// The source has Width outgoing payload edges: its FSBytes must exceed
	// the 10 GB per-task default by roughly Width x 4 GB.
	src, err := wf.Task("source")
	if err != nil {
		t.Fatal(err)
	}
	if src.Work.FSBytes < 100*units.GB {
		t.Errorf("source FSBytes = %v, want payload-dominated", src.Work.FSBytes)
	}
	work, err := wf.Task("work0000")
	if err != nil {
		t.Fatal(err)
	}
	if work.Work.FSBytes <= 0 {
		t.Errorf("worker FSBytes = %v, want positive", work.Work.FSBytes)
	}
}

func TestSpecErrors(t *testing.T) {
	for _, tc := range []struct{ name, spec, want string }{
		{"bad json", `{`, "decode spec"},
		{"unknown field", `{"family":"chain","bogus":1}`, "bogus"},
		{"unknown family", `{"family":"butterfly"}`, "unknown family"},
		{"negative width", `{"family":"fanout","width":-2}`, "width"},
		{"montage width 1", `{"family":"montage","width":1}`, "montage"},
		{"bad units", `{"family":"chain","flops":"5 parsecs"}`, "flops"},
		{"huge", `{"family":"diamond","width":100000,"depth":100000}`, "cap"},
		{"overflow width", `{"family":"fanout","width":9223372036854775806}`, "width"},
		{"overflow product", `{"family":"epigenomics","width":4294967296,"depth":4294967296}`, "width"},
		{"bad cv", `{"family":"chain","cv":9}`, "cv"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.spec))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// Specs round-trip through JSON without drift: what ParseSpec accepts,
// Marshal re-emits equivalently.
func TestSpecRoundTrip(t *testing.T) {
	in := `{"family":"epigenomics","seed":42,"width":8,"depth":5,"cv":0.3,"payload":"1 GB"}`
	s, err := ParseSpec([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(enc)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if *s != *s2 {
		t.Errorf("round trip drifted: %+v vs %+v", s, s2)
	}
}
