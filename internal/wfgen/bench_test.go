package wfgen

import "testing"

// BenchmarkWfgen_Montage10k measures generation throughput and allocation
// pressure on a 10,000-task montage (width 3332 -> 3*3332+4 = 10000 tasks),
// the corpus generator's hot path.
func BenchmarkWfgen_Montage10k(b *testing.B) {
	spec := &Spec{
		Family: "montage", Width: 3332, Seed: 42, CV: 0.3,
		Flops: "1 TFLOP", Mem: "100 GB", Net: "1 GB", FS: "10 GB", Payload: "1 GB",
	}
	shape, err := spec.Shape()
	if err != nil {
		b.Fatal(err)
	}
	if shape.Tasks != 10000 {
		b.Fatalf("tasks = %d, want 10000", shape.Tasks)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wf, err := Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		if wf.TotalTasks() != 10000 {
			b.Fatal("wrong task count")
		}
	}
	b.ReportMetric(float64(shape.Tasks)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
}
