package wfgen

import "math"

// rng is a splitmix64 stream: a tiny, platform-independent generator whose
// output depends only on the seed and the draw index, so generation is
// bit-reproducible everywhere. The same finalizer backs internal/sweep's
// trial seeding.
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng { return &rng{state: seed} }

// next returns the next 64 uniform bits.
func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0,1) with 53 bits of precision.
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// normal returns a standard normal draw via Box-Muller. IEEE-754 makes the
// transcendental calls deterministic per platform/Go version, which is the
// reproducibility contract the corpus tests pin.
func (r *rng) normal() float64 {
	u1 := r.float64()
	for u1 == 0 {
		u1 = r.float64()
	}
	u2 := r.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
