package wfgen

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// FuzzWfgenSpec drives the strict spec parser with arbitrary bytes. For any
// input the parser must not panic; every error must be attributed to the
// package (or be a JSON syntax/type error); and any accepted spec must have
// a consistent closed-form shape, survive a Marshal/ParseSpec round trip,
// and — when small enough to build quickly — generate a DAG matching that
// shape.
func FuzzWfgenSpec(f *testing.F) {
	seeds := []string{
		`{"family":"chain","depth":5,"seed":1}`,
		`{"family":"fanout","width":32,"seed":7,"cv":0.3}`,
		`{"family":"diamond","width":4,"depth":3,"payload":"1 GB"}`,
		`{"family":"montage","width":8,"flops":"2 TFLOP","mem":"100 GB"}`,
		`{"family":"epigenomics","width":6,"depth":4,"fs":"20 GB","net":"2 GB"}`,
		`{"family":"chain","nodes_per_task":4,"partition":"gpu"}`,
		`{"family":"fanout","width":-1}`,
		`{"family":"butterfly"}`,
		`{"family":"chain","flops":"5 parsecs"}`,
		`{"family":"diamond","width":99999,"depth":99999}`,
		`{"family":"fanout","width":9223372036854775806}`,
		`{"family":"epigenomics","width":4294967296,"depth":4294967296}`,
		`{}`,
		`[]`,
		`{"family":"chain","cv":1e308}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			var syn *json.SyntaxError
			var typ *json.UnmarshalTypeError
			if errors.As(err, &syn) || errors.As(err, &typ) {
				return
			}
			if !strings.Contains(err.Error(), "wfgen") &&
				!strings.Contains(err.Error(), "units") &&
				!strings.Contains(err.Error(), "json") {
				t.Fatalf("unattributed error: %v", err)
			}
			return
		}
		shape, err := spec.Shape()
		if err != nil {
			t.Fatalf("accepted spec has no shape: %v", err)
		}
		if shape.Tasks < 1 || shape.Width < 1 || shape.Levels < 1 ||
			shape.Tasks > MaxTasks || shape.Width > shape.Tasks || shape.Levels > shape.Tasks {
			t.Fatalf("inconsistent shape %+v for %+v", shape, spec)
		}
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal accepted spec: %v", err)
		}
		spec2, err := ParseSpec(enc)
		if err != nil {
			t.Fatalf("re-parse of marshaled spec failed: %v", err)
		}
		if *spec != *spec2 {
			t.Fatalf("round trip drifted: %+v vs %+v", spec, spec2)
		}
		if shape.Tasks <= 2000 {
			wf, err := Generate(spec)
			if err != nil {
				t.Fatalf("accepted spec failed to generate: %v", err)
			}
			if wf.TotalTasks() != shape.Tasks {
				t.Fatalf("generated %d tasks, shape says %d", wf.TotalTasks(), shape.Tasks)
			}
			if _, err := wf.Graph().TopoSort(); err != nil {
				t.Fatalf("generated graph not a DAG: %v", err)
			}
		}
	})
}
